package pfair_test

import (
	"fmt"
	"time"

	pfair "desyncpfair"
)

// The headline result: under the DVQ model, deadlines are missed by less
// than one quantum even when subtasks yield early at adversarial moments.
func Example() {
	// The paper's Fig. 2 task set: utilization exactly 2 on 2 processors.
	sys := pfair.Periodic([]pfair.Weight{
		pfair.W(1, 6), pfair.W(1, 6), pfair.W(1, 6),
		pfair.W(1, 2), pfair.W(1, 2), pfair.W(1, 2),
	}, 6)
	delta := pfair.NewRat(1, 4)
	yield := pfair.AdversarialYield(delta, func(s *pfair.Subtask) bool {
		return (s.Task.Name == "A" || s.Task.Name == "F") && s.Index == 1
	})
	s, err := pfair.RunDVQ(sys, pfair.DVQOptions{M: 2, Yield: yield})
	if err != nil {
		panic(err)
	}
	fmt.Println("misses:", s.MissCount())
	fmt.Println("max tardiness:", s.MaxTardiness()) // = 1 − δ, tight
	// Output:
	// misses: 1
	// max tardiness: 3/4
}

// Windows of the canonical weight-3/4 task of Fig. 1(a).
func ExampleSubtask() {
	tk := pfair.Periodic([]pfair.Weight{pfair.W(3, 4)}, 4).Tasks[0]
	for i := int64(1); i <= 3; i++ {
		s := pfair.Subtask{Task: tk, Index: i}
		fmt.Printf("T_%d: [%d,%d) b=%d D=%d\n", i, s.Release(), s.Deadline(), s.BBit(), s.GroupDeadline())
	}
	// Output:
	// T_1: [0,2) b=1 D=4
	// T_2: [1,3) b=1 D=4
	// T_3: [2,4) b=0 D=4
}

// Admission control answers "who can take this workload, and with what
// guarantee" before any simulation.
func ExampleAdmit() {
	// Three tasks of weight 6/11 ≈ 0.545: total ≈ 1.64 on two processors.
	ws := []pfair.Weight{pfair.W(6, 11), pfair.W(6, 11), pfair.W(6, 11)}
	for _, d := range pfair.Admit(ws, 2) {
		fmt.Printf("%-8s admitted=%v guarantee=%s\n", d.Scheduler, d.Admitted, d.Guarantee)
	}
	// Output:
	// PD2/SFQ  admitted=true guarantee=hard
	// PD2/DVQ  admitted=true guarantee=soft (tardiness ≤ 1 quantum)
	// EPDF     admitted=true guarantee=hard
	// P-EDF    admitted=false guarantee=none
	// P-RM     admitted=false guarantee=none
}

// The online executive schedules jobs that arrive at runtime.
func ExampleExecutive() {
	ex := pfair.NewExecutive(1, nil)
	web, err := ex.Register("web", pfair.W(1, 2))
	if err != nil {
		panic(err)
	}
	if err := ex.SubmitJob(web, pfair.IntRat(0)); err != nil {
		panic(err)
	}
	if err := ex.Run(pfair.IntRat(4), nil, nil); err != nil {
		panic(err)
	}
	fmt.Println("dispatched:", ex.Schedule().Len(), "pending:", ex.Pending())
	// Output:
	// dispatched: 1 pending: 0
}

// Replay a schedule against a fake clock: each assignment becomes timed
// dispatch/complete callbacks — the bridge to a real dispatcher.
func ExampleReplay() {
	sys := pfair.Periodic([]pfair.Weight{pfair.W(1, 2)}, 4)
	s, err := pfair.RunDVQ(sys, pfair.DVQOptions{M: 1})
	if err != nil {
		panic(err)
	}
	clk := &pfair.FakeClock{}
	n, err := pfair.Replay(s, pfair.ReplayOptions{
		Quantum: time.Millisecond,
		Clock:   clk,
		OnEvent: func(e pfair.ReplayEvent) {
			fmt.Printf("%s %s at %s\n", e.Kind, e.Asg.Sub, e.At)
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("events:", n)
	// Output:
	// dispatch A_1 at 0
	// complete A_1 at 1
	// dispatch A_2 at 2
	// complete A_2 at 3
	// events: 4
}
