package pfair

import (
	"desyncpfair/internal/admission"
	"desyncpfair/internal/drift"
)

// Admission decisions: analytical schedulability tests for each scheduler
// family (see internal/admission).
type AdmissionDecision = admission.Decision

// Guarantee classifies what an admission decision certifies.
type Guarantee = admission.Guarantee

// Guarantee levels.
const (
	HardRealTime = admission.HardRealTime
	SoftRealTime = admission.SoftRealTime
	NoGuarantee  = admission.NoGuarantee
)

// Admit runs every analytical admission test (Pfair SFQ/DVQ, EPDF,
// partitioned EDF, partitioned RM) on the weight set.
func Admit(ws []Weight, m int) []AdmissionDecision { return admission.All(ws, m) }

// AdmitPfairDVQ is the paper's planning rule: Σwt ≤ M buys a soft
// guarantee of at most one quantum of tardiness under PD²-DVQ (Theorem 3).
func AdmitPfairDVQ(ws []Weight, m int) AdmissionDecision { return admission.PfairDVQ(ws, m) }

// DriftOptions configures the unsynchronized-clock SFQ simulator of
// internal/drift — the failure mode that motivates the DVQ model.
type DriftOptions = drift.Options

// RunDriftedSFQ simulates SFQ with per-processor clock drift and phase
// offsets (no global resynchronization).
func RunDriftedSFQ(sys *System, opts DriftOptions) (*Schedule, error) { return drift.Run(sys, opts) }
