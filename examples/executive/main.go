// Executive: the online layer — schedule work that arrives at runtime.
//
// The offline engines need the whole task system up front; real systems
// admit jobs as they come. This example drives the online executive like a
// small control system: periodic sensor tasks plus an aperiodic "alarm"
// task whose jobs arrive at unpredictable instants. Admission control
// keeps total utilization ≤ M, so Theorem 3's one-quantum tardiness bound
// holds for everything the executive ever dispatches.
//
// Run with: go run ./examples/executive
package main

import (
	"fmt"
	"log"
	"math/rand"

	pfair "desyncpfair"
)

func main() {
	const m = 2
	ex := pfair.NewExecutive(m, nil)

	sensorA, err := ex.Register("sensorA", pfair.W(1, 2))
	check(err)
	sensorB, err := ex.Register("sensorB", pfair.W(1, 3))
	check(err)
	control, err := ex.Register("control", pfair.W(2, 3))
	check(err)
	alarm, err := ex.Register("alarm", pfair.W(1, 4))
	check(err)
	// Total utilization: 1/2 + 1/3 + 2/3 + 1/4 = 7/4 ≤ 2. One more heavy
	// task would be refused:
	if _, err := ex.Register("greedy", pfair.W(1, 2)); err == nil {
		log.Fatal("admission control failed to refuse overload")
	} else {
		fmt.Println("admission control refused the 5th task:", err)
	}

	rng := rand.New(rand.NewSource(9))
	dispatched := 0
	onDispatch := func(d pfair.Dispatch) { dispatched++ }

	// Drive 30 time units: periodic submissions for the sensors and the
	// controller; alarm jobs arrive sporadically (gaps ≥ its period).
	nextAlarm := int64(1)
	for t := int64(0); t < 30; t++ {
		if t%2 == 0 {
			check(ex.SubmitJob(sensorA, pfair.IntRat(t)))
		}
		if t%3 == 0 {
			check(ex.SubmitJob(sensorB, pfair.IntRat(t)))
			check(ex.SubmitJob(control, pfair.IntRat(t)))
		}
		if t == nextAlarm {
			check(ex.SubmitJob(alarm, pfair.IntRat(t)))
			nextAlarm = t + 4 + rng.Int63n(4) // sporadic
		}
		// Execution times vary; the DVQ rule reclaims the slack instantly.
		check(ex.Run(pfair.IntRat(t+1), pfair.UniformYield(3, 8), onDispatch))
	}
	if _, err := ex.Drain(pfair.UniformYield(3, 8)); err != nil {
		log.Fatal(err)
	}

	s := ex.Schedule()
	if err := s.ValidateDVQ(); err != nil {
		log.Fatal(err)
	}
	sum := pfair.Summarize(s)
	fmt.Printf("\ndispatched %d subtasks over %s time units\n", dispatched, ex.Now())
	fmt.Printf("deadline misses: %d, max tardiness: %s (Theorem 3: ≤ 1)\n",
		sum.Misses, sum.MaxTardiness)
	fmt.Printf("mean response: %.2f quanta, busy fraction: %.2f\n",
		sum.MeanResponse, sum.BusyFraction)
	if pfair.IntRat(1).Less(sum.MaxTardiness) {
		log.Fatal("bound violated?!")
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
