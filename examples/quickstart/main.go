// Quickstart: schedule a small periodic task system under both the SFQ and
// DVQ models and inspect the outcome.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pfair "desyncpfair"
)

func main() {
	// Six periodic tasks on two processors, total utilization exactly 2 —
	// the running example from the paper's Fig. 2.
	weights := []pfair.Weight{
		pfair.W(1, 6), pfair.W(1, 6), pfair.W(1, 6), // A, B, C
		pfair.W(1, 2), pfair.W(1, 2), pfair.W(1, 2), // D, E, F
	}
	sys := pfair.Periodic(weights, 12)
	fmt.Printf("total utilization: %s on M=2 (feasible: %v)\n\n",
		sys.TotalUtilization(), sys.Feasible(2))

	// 1. Classical Pfair: synchronized fixed-size quanta, PD² priorities.
	//    PD² is optimal here — zero misses, guaranteed.
	sfq, err := pfair.RunSFQ(sys, pfair.SFQOptions{M: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SFQ model, PD² (all deadlines met):")
	fmt.Print(pfair.RenderSlots(sfq))
	fmt.Printf("max tardiness: %s\n\n", sfq.MaxTardiness())

	// 2. The paper's DVQ model: when a subtask finishes early, the
	//    processor immediately starts the next quantum instead of idling.
	//    Some deadlines may now be missed — but by less than one quantum
	//    (Theorem 3).
	delta := pfair.NewRat(1, 4)
	yield := pfair.AdversarialYield(delta, func(s *pfair.Subtask) bool {
		return (s.Task.Name == "A" || s.Task.Name == "F") && s.Index == 1
	})
	dvq, err := pfair.RunDVQ(sys, pfair.DVQOptions{M: 2, Yield: yield})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DVQ model, PD², A_1 and F_1 yield early:")
	fmt.Print(pfair.RenderTimeline(dvq))
	sum := pfair.Summarize(dvq)
	fmt.Printf("misses: %d, max tardiness: %s (< 1 quantum, as Theorem 3 promises)\n",
		sum.Misses, sum.MaxTardiness)

	// 3. Every miss is explained by a priority inversion that the paper
	//    classifies; list them.
	fmt.Println("\npriority inversions in the DVQ schedule:")
	for _, e := range pfair.FindBlocking(dvq, pfair.PD2()) {
		fmt.Println("  ", e)
	}
}
