// Overload: intra-sporadic and generalized-intra-sporadic dynamics.
//
// A sensor-fusion pipeline tracks objects from several cameras. Frames
// arrive with network jitter (IS behaviour: windows shift right) and are
// sometimes dropped at the source (GIS behaviour: subtasks are absent).
// This example builds such a GIS system explicitly through the public API,
// schedules it under PD²-DVQ with noisy execution times, and shows that
// the one-quantum tardiness bound of Theorem 3 still holds — the theorem
// covers every feasible GIS system, not just periodic ones.
//
// Run with: go run ./examples/overload
package main

import (
	"fmt"
	"log"
	"math/rand"

	pfair "desyncpfair"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	sys := pfair.NewSystem()
	const m = 3
	horizon := int64(36)

	// Three fusion pipelines (weight 2/3) and three camera feeds
	// (weight 1/3): utilization 3 on 3 processors.
	specs := []struct {
		name string
		w    pfair.Weight
	}{
		{"fuse0", pfair.W(2, 3)}, {"fuse1", pfair.W(2, 3)}, {"fuse2", pfair.W(2, 3)},
		{"cam0", pfair.W(1, 3)}, {"cam1", pfair.W(1, 3)}, {"cam2", pfair.W(1, 3)},
	}
	dropped, jittered := 0, 0
	for _, spec := range specs {
		task := sys.AddTask(spec.name, spec.w)
		theta := int64(0)
		for i := int64(1); ; i++ {
			// Cameras drop ~15% of frames (GIS omission).
			if i > 1 && spec.name[0] == 'c' && rng.Intn(100) < 15 {
				dropped++
				continue
			}
			// Network jitter right-shifts ~20% of windows (IS offset).
			if rng.Intn(100) < 20 {
				theta += rng.Int63n(2) + 1
				jittered++
			}
			s := pfair.Subtask{Task: task, Index: i, Theta: theta}
			if s.Release() >= horizon {
				break
			}
			sys.AddSubtask(task, i, theta, s.Release())
		}
	}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GIS system: %d tasks, %d subtasks (%d frames dropped, %d windows jittered)\n",
		len(sys.Tasks), sys.NumSubtasks(), dropped, jittered)
	fmt.Printf("utilization %s on M=%d\n\n", sys.TotalUtilization(), m)

	// Render one camera's windows to show the IS/GIS structure.
	fmt.Println(pfair.RenderWindows(sys, sys.Tasks[3]))

	// Noisy execution times: fusion occasionally finishes very early.
	yield := pfair.UniformYield(7, 8)
	dvq, err := pfair.RunDVQ(sys, pfair.DVQOptions{M: m, Yield: yield})
	if err != nil {
		log.Fatal(err)
	}
	if err := dvq.ValidateDVQ(); err != nil {
		log.Fatal(err)
	}
	sum := pfair.Summarize(dvq)
	fmt.Printf("misses: %d of %d, max tardiness: %s\n", sum.Misses, sum.Subtasks, sum.MaxTardiness)
	if pfair.IntRat(1).Less(sum.MaxTardiness) {
		log.Fatal("Theorem 3 violated on a GIS system?!")
	}
	fmt.Println("Theorem 3 holds for the full GIS dynamics: tardiness ≤ one quantum.")

	// The proof machinery is available on arbitrary schedules too:
	tr := pfair.BuildSB(dvq)
	if err := tr.CheckLemma3(); err != nil {
		log.Fatal(err)
	}
	if err := pfair.CheckPropertyPB(dvq, pfair.PD2()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Lemma 3 and Property PB verified on this run's schedule.")
}
