// Deploy: the full pipeline from real task parameters to a running,
// closed-loop Pfair system.
//
//  1. quantize microsecond-scale task parameters onto the quantum grid,
//     picking the largest feasible quantum under per-quantum overhead;
//  2. run the analytical admission tests;
//  3. host the workload closed-loop: Work callbacks execute each quantum,
//     their measured durations become actual costs, and the DVQ rule
//     reclaims every early completion;
//  4. verify Theorem 3 on what actually ran and replay the schedule as
//     timed events.
//
// Run with: go run ./examples/deploy
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	pfair "desyncpfair"
)

func main() {
	// 1. A control workload in microseconds.
	rts := []pfair.RealTask{
		{Name: "lidar", C: 2700, T: 10000},
		{Name: "vision", C: 2700, T: 10000},
		{Name: "fusion", C: 900, T: 5000},
		{Name: "plan", C: 850, T: 20000},
	}
	const m = 1
	const overheadUS = 20
	q, err := pfair.BestQuantum(rts, m, overheadUS, []int64{125, 250, 500, 1000, 2000})
	if err != nil {
		log.Fatal(err)
	}
	ws, err := pfair.QuantizeWeights(rts, q, overheadUS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quantum: %d µs; quantized weights:", q)
	for i, w := range ws {
		fmt.Printf(" %s=%s", rts[i].Name, w)
	}
	fmt.Println()

	// 2. Admission: who takes this workload, with what guarantee?
	for _, d := range pfair.Admit(ws, m) {
		fmt.Printf("  %-8s admitted=%-5v guarantee=%s\n", d.Scheduler, d.Admitted, d.Guarantee)
	}

	// 3. Closed-loop host on a fake clock (deterministic demo; use
	//    pfair.WallClock() in production). Work functions report the time
	//    they really needed — here randomized below the WCET, exactly the
	//    pessimism the DVQ model reclaims.
	clk := &pfair.FakeClock{}
	quantum := time.Duration(q) * time.Microsecond
	h, err := pfair.NewHost(pfair.HostConfig{M: m, Quantum: quantum, Clock: clk})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	tasks := make([]*pfair.Task, len(rts))
	for i, w := range ws {
		tasks[i], err = h.Register(rts[i].Name, w, func(budget time.Duration) time.Duration {
			// Use 40–100% of the budget.
			return budget * time.Duration(40+rng.Intn(61)) / 100
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	// Drive 3 hyperperiods of job arrivals.
	horizon := 3 * ws[3].P // plan has the longest period
	for slot := int64(0); slot < horizon; slot++ {
		for i, w := range ws {
			if slot%w.P == 0 {
				if err := h.Submit(tasks[i]); err != nil {
					log.Fatal(err)
				}
			}
		}
		if err := h.RunFor(quantum); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := h.Drain(); err != nil {
		log.Fatal(err)
	}

	// 4. Verify and replay.
	s := h.Schedule()
	if err := s.ValidateDVQ(); err != nil {
		log.Fatal(err)
	}
	sum := pfair.Summarize(s)
	fmt.Printf("ran %d quanta over %s schedule units; misses=%d max-tardiness=%s\n",
		sum.Subtasks, sum.Makespan, sum.Misses, sum.MaxTardiness)
	if pfair.IntRat(1).Less(sum.MaxTardiness) {
		log.Fatal("Theorem 3 violated?!")
	}
	events, err := pfair.Replay(s, pfair.ReplayOptions{
		Quantum: quantum,
		Clock:   &pfair.FakeClock{},
		OnEvent: func(pfair.ReplayEvent) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d timed events; with a %v quantum no job is ever more than %v late\n",
		events, quantum, quantum)
}
