// Videoserver: the paper's motivating scenario for the DVQ model.
//
// A media server decodes several streams on a multiprocessor. Each stream
// is a periodic task whose worst-case execution time is provisioned
// pessimistically, so most frames finish well before their quantum ends.
// Under the classical SFQ model that slack is stranded — the processor
// idles to the slot boundary. Under the DVQ model it is reclaimed, at the
// price of deadline misses bounded by one quantum — exactly the soft
// real-time deal a media server wants.
//
// Run with: go run ./examples/videoserver
package main

import (
	"fmt"
	"log"

	pfair "desyncpfair"
)

func main() {
	// Eight streams on four processors. Rates differ per codec/resolution:
	// heavy 4K decodes (weight 3/4), mainstream HD (1/2), previews (1/4).
	weights := []pfair.Weight{
		pfair.W(3, 4), pfair.W(3, 4), // two 4K streams
		pfair.W(1, 2), pfair.W(1, 2), pfair.W(1, 2), pfair.W(1, 2), // four HD streams
		pfair.W(1, 4), pfair.W(1, 4), // two previews
	}
	const m = 4
	horizon := int64(40)
	sys := pfair.Periodic(weights, horizon)
	fmt.Printf("streams: %d, utilization %s on M=%d processors\n\n",
		len(weights), sys.TotalUtilization(), m)

	// 70% of frames are "easy" and use their whole budget only 30% of the
	// time — the pessimistic-WCET effect the paper describes.
	yield := pfair.BimodalYield(2026, 30, 16)

	sfq, err := pfair.RunSFQ(sys, pfair.SFQOptions{M: m, Yield: yield})
	if err != nil {
		log.Fatal(err)
	}
	dvq, err := pfair.RunDVQ(sys, pfair.DVQOptions{M: m, Yield: yield})
	if err != nil {
		log.Fatal(err)
	}

	s1, s2 := pfair.Summarize(sfq), pfair.Summarize(dvq)
	fmt.Printf("%-22s %12s %12s\n", "", "SFQ (classic)", "DVQ (paper)")
	fmt.Printf("%-22s %12d %12d\n", "frames (subtasks)", s1.Subtasks, s2.Subtasks)
	fmt.Printf("%-22s %12s %12s\n", "stranded time", pfair.QuantumResidue(sfq).String(), "0 (reclaimed)")
	fmt.Printf("%-22s %12s %12s\n", "makespan", s1.Makespan, s2.Makespan)
	fmt.Printf("%-22s %12.2f %12.2f\n", "mean frame response", s1.MeanResponse, s2.MeanResponse)
	fmt.Printf("%-22s %12d %12d\n", "deadline misses", s1.Misses, s2.Misses)
	fmt.Printf("%-22s %12s %12s\n", "max tardiness", s1.MaxTardiness.String(), s2.MaxTardiness.String())

	fmt.Println()
	if pfair.IntRat(1).Less(s2.MaxTardiness) {
		log.Fatal("Theorem 3 violated?!")
	}
	fmt.Println("Theorem 3 caps any DVQ miss below one quantum: with a 1 ms quantum,")
	fmt.Println("no frame is ever more than a millisecond late, while reclaiming the")
	fmt.Printf("stranded slack cuts the mean frame response to %.0f%% of SFQ's.\n",
		100*s2.MeanResponse/s1.MeanResponse)
}
