module desyncpfair

go 1.22
