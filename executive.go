package pfair

import (
	"desyncpfair/internal/online"
	"desyncpfair/internal/prio"
)

// Executive is the online (incremental) PD²-DVQ scheduler: register tasks,
// submit jobs as they arrive, and advance virtual time. As long as total
// registered utilization stays at most M, Theorem 3's one-quantum tardiness
// bound applies to every dispatched subtask. See internal/online for the
// full semantics.
type Executive = online.Executive

// Dispatch reports one executive scheduling decision.
type Dispatch = online.Dispatch

// NewExecutive creates an online executive on m processors. A nil policy
// selects PD².
func NewExecutive(m int, policy Policy) *Executive {
	if policy == nil {
		policy = prio.PD2{}
	}
	return online.New(m, policy)
}
