// Package autoscale closes the loop between pfaird's observability and
// its elastic capacity: a Scaler periodically scrapes /metrics, rebuilds
// each tenant's pfaird_tenant_dispatch_lag_quanta histogram with the obs
// parser, and turns *windowed* lag quantiles — the difference between
// consecutive cumulative scrapes, so old load can never mask or fake a
// current signal — into POST /v1/tenants/{id}/resize calls.
//
// The control loop is deliberately conservative, because capacity changes
// are journaled state transitions, not free knob twiddles:
//
//   - Hysteresis: growing needs the windowed quantile at or above GrowAt
//     for HoldUp consecutive windows; shrinking needs it at or below
//     ShrinkAt (or an idle window) for HoldDown windows. The dead band
//     between the thresholds resets both streaks.
//   - Cooldown: after any action a tenant is left alone for Cooldown, so
//     the scaler observes the effect of one change before making another.
//   - Token-bucket admission: all actions pass a shared bucket (Rate per
//     second, Burst deep). When the bucket is empty the action is shed —
//     counted, not queued — so a fleet-wide lag spike cannot turn the
//     scaler into a resize storm.
//   - Overload shedding: a 429 or 503 from the server puts the tenant in
//     a Cooldown-long backoff. Backpressure means the server needs fewer
//     commands, so the scaler stops sending them; it never retries into
//     an overloaded ring.
//
// Shrinks always use drain mode: the server applies them only when
// feasible (Σwt ≤ target) and otherwise queues the target, so the scaler
// can never violate the admission invariant — feasibility stays enforced
// in exactly one place.
package autoscale

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"desyncpfair/internal/client"
	"desyncpfair/internal/obs"
)

// Config bounds and tunes the control loop. The zero value of every
// field is replaced by the listed default in New.
type Config struct {
	// MinM and MaxM bound every target the scaler will request.
	// Defaults 1 and 64.
	MinM, MaxM int
	// Quantile of the windowed lag distribution the thresholds compare
	// against. Default 0.9.
	Quantile float64
	// GrowAt is the lag (in quanta) at or above which a window votes to
	// grow. Theorem 3 bounds steady-state tardiness by one quantum, so
	// sustained lag near 1 means the tenant is running at the edge of its
	// bound. Default 0.75.
	GrowAt float64
	// ShrinkAt is the lag at or below which a window votes to shrink.
	// Default 0.25. Idle windows (no dispatches) also vote to shrink.
	ShrinkAt float64
	// HoldUp / HoldDown are how many consecutive windows must vote the
	// same way before the scaler acts. Defaults 2 and 3 — shedding
	// capacity is cheaper to delay than missing deadlines.
	HoldUp, HoldDown int
	// GrowStep is how many processors a grow adds; shrinks always step
	// down by one. Default 1.
	GrowStep int
	// Cooldown is the per-tenant quiet period after an action, and the
	// backoff applied when the server answers with overload. Default 30s.
	Cooldown time.Duration
	// Rate and Burst parameterize the shared token bucket all actions
	// pass through. Defaults 1 action/s with a burst of 4.
	Rate  float64
	Burst int
}

func (c Config) withDefaults() Config {
	if c.MinM <= 0 {
		c.MinM = 1
	}
	if c.MaxM <= 0 {
		c.MaxM = 64
	}
	if c.Quantile == 0 {
		c.Quantile = 0.9
	}
	if c.GrowAt == 0 {
		c.GrowAt = 0.75
	}
	if c.ShrinkAt == 0 {
		c.ShrinkAt = 0.25
	}
	if c.HoldUp <= 0 {
		c.HoldUp = 2
	}
	if c.HoldDown <= 0 {
		c.HoldDown = 3
	}
	if c.GrowStep <= 0 {
		c.GrowStep = 1
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Rate <= 0 {
		c.Rate = 1
	}
	if c.Burst <= 0 {
		c.Burst = 4
	}
	return c
}

// Action is one resize the scaler attempted during a Tick.
type Action struct {
	Tenant string
	Target int
	Drain  bool // always true for shrinks
	Err    error
}

// Report summarizes one Tick.
type Report struct {
	Actions []Action
	// Shed counts decisions dropped by the empty token bucket. Shed
	// decisions keep their streaks, so the intent survives to the next
	// tick — only the API call is suppressed.
	Shed int
}

// bucket is a standard token bucket, refilled continuously.
type bucket struct {
	tokens float64
	rate   float64
	burst  float64
	last   time.Time
}

func (b *bucket) take(now time.Time) bool {
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
	}
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// tenantState is the controller memory for one tenant.
type tenantState struct {
	prev         obs.Snapshot // cumulative lag histogram at the last tick
	havePrev     bool
	up, down     int       // consecutive grow / shrink votes
	quiet        time.Time // no actions before this instant
	lastObserved time.Time // for garbage-collecting deleted tenants
}

// verdict is one window's vote.
type verdict int

const (
	hold verdict = iota
	growVote
	shrinkVote
)

// classify turns one windowed snapshot into a vote. An empty window (no
// dispatches) is a shrink vote: a tenant that dispatched nothing all
// window has no use for spare processors.
func classify(window obs.Snapshot, cfg Config) verdict {
	if window.Count == 0 {
		return shrinkVote
	}
	q := window.Quantile(cfg.Quantile)
	switch {
	case q >= cfg.GrowAt:
		return growVote
	case q <= cfg.ShrinkAt:
		return shrinkVote
	default:
		return hold
	}
}

// diffWindow subtracts the previous cumulative snapshot from the current
// one, yielding the distribution of only this window's observations. A
// shrunk count or changed bucket layout means the counter reset (server
// restart or failover); the whole current snapshot is the window then.
func diffWindow(cur, prev obs.Snapshot) obs.Snapshot {
	if len(cur.Buckets) != len(prev.Buckets) || cur.Count < prev.Count {
		return cur
	}
	out := obs.Snapshot{
		Bounds:  cur.Bounds,
		Buckets: make([]uint64, len(cur.Buckets)),
		Count:   cur.Count - prev.Count,
		Sum:     cur.Sum - prev.Sum,
	}
	for i := range cur.Buckets {
		if cur.Buckets[i] < prev.Buckets[i] {
			return cur
		}
		out.Buckets[i] = cur.Buckets[i] - prev.Buckets[i]
	}
	return out
}

// Scaler is the autoscaling control loop. Create one with New (against a
// live server through a client) or NewFuncs (tests inject scrape/resize
// and a fake clock), then call Tick on whatever cadence the deployment
// wants — the scaler is cadence-agnostic because all its signals are
// windowed deltas.
type Scaler struct {
	cfg     Config
	clock   obs.Clock
	scrape  func(ctx context.Context) (string, error)
	resize  func(ctx context.Context, tenant string, m int, drain bool) error
	bucket  bucket
	tenants map[string]*tenantState
}

// New builds a scaler that scrapes and resizes through cl.
func New(cfg Config, cl *client.Client) *Scaler {
	return NewFuncs(cfg, obs.Real{},
		func(ctx context.Context) (string, error) { return cl.Metrics(ctx) },
		func(ctx context.Context, tenant string, m int, drain bool) error {
			_, err := cl.Resize(ctx, tenant, m, drain)
			return err
		})
}

// NewFuncs builds a scaler from its raw dependencies.
func NewFuncs(cfg Config, clock obs.Clock,
	scrape func(ctx context.Context) (string, error),
	resize func(ctx context.Context, tenant string, m int, drain bool) error) *Scaler {
	cfg = cfg.withDefaults()
	return &Scaler{
		cfg:     cfg,
		clock:   clock,
		scrape:  scrape,
		resize:  resize,
		bucket:  bucket{tokens: float64(cfg.Burst), rate: cfg.Rate, burst: float64(cfg.Burst)},
		tenants: map[string]*tenantState{},
	}
}

// tenantSample is what one scrape says about one tenant.
type tenantSample struct {
	id       string
	m        int
	pendingM int
	lag      obs.Snapshot
}

// parseScrape extracts every tenant's capacity gauges and cumulative lag
// histogram from one /metrics page. The pfaird_tenant_m gauge is the
// tenant roster: a tenant without it has nothing to resize.
func parseScrape(text string) ([]tenantSample, error) {
	exp, err := obs.ParseExposition(text)
	if err != nil {
		return nil, err
	}
	mf := exp.Family("pfaird_tenant_m")
	if mf == nil {
		return nil, errors.New("autoscale: scrape has no pfaird_tenant_m family (server too old?)")
	}
	var out []tenantSample
	for _, s := range mf.Samples {
		id := s.Label("tenant")
		if id == "" {
			continue
		}
		ts := tenantSample{id: id, m: int(s.Value)}
		if pf := exp.Family("pfaird_tenant_pending_m"); pf != nil {
			for _, p := range pf.Samples {
				if p.Label("tenant") == id {
					ts.pendingM = int(p.Value)
				}
			}
		}
		lag, err := exp.Histogram("pfaird_tenant_dispatch_lag_quanta",
			[]obs.Label{{Name: "tenant", Value: id}})
		if err != nil {
			return nil, fmt.Errorf("autoscale: tenant %s: %v", id, err)
		}
		ts.lag = lag
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out, nil
}

// isOverload reports whether err is the server telling us to back off:
// ring-full backpressure (429) or unavailability (503).
func isOverload(err error) bool {
	var ae *client.APIError
	if !errors.As(err, &ae) {
		return false
	}
	return ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable
}

// Tick runs one control round: scrape, window, vote, act. It returns
// what it did; a scrape or parse failure returns an error and changes
// nothing (the previous snapshots are kept, so the next successful tick
// windows across the gap instead of losing it).
func (s *Scaler) Tick(ctx context.Context) (Report, error) {
	var rep Report
	text, err := s.scrape(ctx)
	if err != nil {
		return rep, err
	}
	samples, err := parseScrape(text)
	if err != nil {
		return rep, err
	}
	now := s.clock.Now()

	for _, sm := range samples {
		st := s.tenants[sm.id]
		if st == nil {
			st = &tenantState{}
			s.tenants[sm.id] = st
		}
		st.lastObserved = now
		if !st.havePrev {
			// First sighting: everything in the cumulative histogram is
			// pre-history. Establish the baseline and vote next tick.
			st.prev, st.havePrev = sm.lag, true
			continue
		}
		window := diffWindow(sm.lag, st.prev)
		st.prev = sm.lag

		switch classify(window, s.cfg) {
		case growVote:
			st.up, st.down = st.up+1, 0
		case shrinkVote:
			st.down, st.up = st.down+1, 0
		default:
			st.up, st.down = 0, 0
		}
		if now.Before(st.quiet) {
			continue
		}

		target, drain := 0, false
		switch {
		case st.up >= s.cfg.HoldUp && sm.m < s.cfg.MaxM:
			target = min(sm.m+s.cfg.GrowStep, s.cfg.MaxM)
		case st.down >= s.cfg.HoldDown && sm.m > s.cfg.MinM && sm.pendingM == 0:
			target, drain = sm.m-1, true
		default:
			continue
		}
		if !s.bucket.take(now) {
			rep.Shed++ // streaks survive; the next tick retries
			continue
		}
		err := s.resize(ctx, sm.id, target, drain)
		rep.Actions = append(rep.Actions, Action{Tenant: sm.id, Target: target, Drain: drain, Err: err})
		st.up, st.down = 0, 0
		st.quiet = now.Add(s.cfg.Cooldown)
		if isOverload(err) {
			// Backpressure: the server wants fewer commands, so the
			// tenant backs off twice as long as a normal cooldown.
			st.quiet = now.Add(2 * s.cfg.Cooldown)
		}
	}

	// Forget tenants that disappeared from the exposition.
	for id, st := range s.tenants {
		if !st.lastObserved.Equal(now) {
			delete(s.tenants, id)
		}
	}
	return rep, nil
}

// Run ticks the scaler every interval until ctx is cancelled, reporting
// actions and errors through logf (nil discards). It is what pfaird's
// -autoscale flag starts.
func (s *Scaler) Run(ctx context.Context, interval time.Duration, logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		rep, err := s.Tick(ctx)
		if err != nil {
			logf("autoscale: tick: %v", err)
			continue
		}
		for _, a := range rep.Actions {
			if a.Err != nil {
				logf("autoscale: resize %s → %d (drain=%v): %v", a.Tenant, a.Target, a.Drain, a.Err)
			} else {
				logf("autoscale: resized %s → %d (drain=%v)", a.Tenant, a.Target, a.Drain)
			}
		}
		if rep.Shed > 0 {
			logf("autoscale: shed %d action(s) at the token bucket", rep.Shed)
		}
	}
}
