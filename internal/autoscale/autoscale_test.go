package autoscale

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"desyncpfair/internal/client"
	"desyncpfair/internal/obs"
)

// lagHist builds a cumulative lag snapshot over obs.QuantaBuckets from
// per-bucket (non-cumulative) observation counts; extra observations land
// in +Inf.
func lagHist(perBucket [5]uint64, inf uint64) obs.Snapshot {
	s := obs.Snapshot{Bounds: obs.QuantaBuckets, Buckets: make([]uint64, 5)}
	var cum uint64
	for i, n := range perBucket {
		cum += n
		s.Buckets[i] = cum
		s.Sum += float64(n) * obs.QuantaBuckets[i]
	}
	s.Count = cum + inf
	s.Sum += float64(inf) * 2
	return s
}

// addLag accumulates more observations onto a cumulative snapshot.
func addLag(base obs.Snapshot, perBucket [5]uint64, inf uint64) obs.Snapshot {
	more := lagHist(perBucket, inf)
	out := obs.Snapshot{Bounds: base.Bounds, Buckets: make([]uint64, 5)}
	for i := range base.Buckets {
		out.Buckets[i] = base.Buckets[i] + more.Buckets[i]
	}
	out.Count = base.Count + more.Count
	out.Sum = base.Sum + more.Sum
	return out
}

// fakeTenant is the synthetic backend one scrape line describes.
type fakeTenant struct {
	m, pending int
	lag        obs.Snapshot
}

// renderScrape emits exactly the server's exposition shape for the
// families the scaler reads (ParseExposition enforces the structure).
func renderScrape(tenants map[string]*fakeTenant) string {
	ids := make([]string, 0, len(tenants))
	for id := range tenants {
		ids = append(ids, id)
	}
	// Deterministic order, as the server's sorted exposition has.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var b strings.Builder
	obs.WriteHeader(&b, "pfaird_tenant_m", "Current processor count, per tenant.", "gauge")
	for _, id := range ids {
		obs.WriteSample(&b, "pfaird_tenant_m",
			[]obs.Label{{Name: "tenant", Value: id}}, strconv.Itoa(tenants[id].m))
	}
	obs.WriteHeader(&b, "pfaird_tenant_pending_m", "Queued shrink target, per tenant.", "gauge")
	for _, id := range ids {
		obs.WriteSample(&b, "pfaird_tenant_pending_m",
			[]obs.Label{{Name: "tenant", Value: id}}, strconv.Itoa(tenants[id].pending))
	}
	obs.WriteHeader(&b, "pfaird_tenant_dispatch_lag_quanta", "Dispatch tardiness in quanta, per tenant.", "histogram")
	for _, id := range ids {
		obs.WriteHistogram(&b, "pfaird_tenant_dispatch_lag_quanta",
			[]obs.Label{{Name: "tenant", Value: id}}, tenants[id].lag)
	}
	return b.String()
}

// harness wires a Scaler to a synthetic backend and a manual clock.
type harness struct {
	tenants map[string]*fakeTenant
	clock   *obs.Fake
	scaler  *Scaler
	calls   []Action
	fail    error // returned by the next resize calls when non-nil
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{
		tenants: map[string]*fakeTenant{},
		clock:   obs.NewFake(time.Unix(1000, 0), 0),
	}
	h.scaler = NewFuncs(cfg, h.clock,
		func(context.Context) (string, error) { return renderScrape(h.tenants), nil },
		func(_ context.Context, tenant string, m int, drain bool) error {
			h.calls = append(h.calls, Action{Tenant: tenant, Target: m, Drain: drain})
			if h.fail != nil {
				return h.fail
			}
			ft := h.tenants[tenant]
			if drain && ft.pending == 0 && m < ft.m {
				ft.m = m // the synthetic tenant is always feasible
			} else if !drain {
				ft.m = m
			}
			return nil
		})
	return h
}

func (h *harness) tick(t *testing.T) Report {
	t.Helper()
	rep, err := h.scaler.Tick(context.Background())
	if err != nil {
		t.Fatalf("Tick: %v", err)
	}
	return rep
}

// high is one window's worth of near-bound lag: p90 lands in the
// (0.75, 1] bucket, a grow vote. low is all-zero lag, a shrink vote.
var (
	high = [5]uint64{0, 0, 0, 2, 8}
	low  = [5]uint64{5, 0, 0, 0, 0}
)

func TestDiffWindowSubtractsAndHandlesReset(t *testing.T) {
	prev := lagHist([5]uint64{3, 1, 0, 0, 0}, 0)
	cur := addLag(prev, high, 0)
	w := diffWindow(cur, prev)
	if w.Count != 10 {
		t.Fatalf("window count %d, want 10", w.Count)
	}
	if q := w.Quantile(0.9); q < 0.75 {
		t.Fatalf("windowed p90 %g polluted by pre-window observations", q)
	}
	// Counter reset (failover): the current snapshot IS the window.
	w = diffWindow(prev, cur)
	if w.Count != prev.Count {
		t.Fatalf("reset window count %d, want %d", w.Count, prev.Count)
	}
}

func TestClassifyHysteresisBand(t *testing.T) {
	cfg := Config{}.withDefaults()
	if v := classify(lagHist(high, 0), cfg); v != growVote {
		t.Fatalf("high lag classified %v, want grow", v)
	}
	if v := classify(lagHist(low, 0), cfg); v != shrinkVote {
		t.Fatalf("zero lag classified %v, want shrink", v)
	}
	if v := classify(obs.Snapshot{}, cfg); v != shrinkVote {
		t.Fatalf("idle window classified %v, want shrink", v)
	}
	// p90 in the dead band between ShrinkAt and GrowAt: hold.
	if v := classify(lagHist([5]uint64{0, 0, 10, 0, 0}, 0), cfg); v != hold {
		t.Fatalf("mid lag classified %v, want hold", v)
	}
}

// TestScalerGrowThenShrinkCycle walks the full control loop: two high-lag
// windows grow the tenant, cooldown holds further action, and sustained
// idle windows then shrink it back — with drain, never bypassing
// feasibility.
func TestScalerGrowThenShrinkCycle(t *testing.T) {
	cfg := Config{MinM: 1, MaxM: 8, HoldUp: 2, HoldDown: 2, Cooldown: 10 * time.Second, Rate: 100, Burst: 10}
	h := newHarness(t, cfg)
	h.tenants["T"] = &fakeTenant{m: 2, lag: lagHist([5]uint64{}, 0)}

	if rep := h.tick(t); len(rep.Actions) != 0 {
		t.Fatalf("baseline tick acted: %+v", rep.Actions)
	}
	h.tenants["T"].lag = addLag(h.tenants["T"].lag, high, 0)
	h.clock.Advance(time.Second)
	if rep := h.tick(t); len(rep.Actions) != 0 {
		t.Fatalf("first high window acted before HoldUp: %+v", rep.Actions)
	}
	h.tenants["T"].lag = addLag(h.tenants["T"].lag, high, 0)
	h.clock.Advance(time.Second)
	rep := h.tick(t)
	if len(rep.Actions) != 1 || rep.Actions[0].Target != 3 || rep.Actions[0].Drain {
		t.Fatalf("after HoldUp windows: %+v, want grow to 3", rep.Actions)
	}
	if h.tenants["T"].m != 3 {
		t.Fatalf("backend m %d after grow", h.tenants["T"].m)
	}

	// Still-high lag inside the cooldown: votes accrue, no action.
	h.tenants["T"].lag = addLag(h.tenants["T"].lag, high, 0)
	h.clock.Advance(time.Second)
	if rep := h.tick(t); len(rep.Actions) != 0 {
		t.Fatalf("acted inside cooldown: %+v", rep.Actions)
	}

	// Past the cooldown, two idle windows shrink by one, drain mode.
	h.clock.Advance(cfg.Cooldown)
	h.tick(t)
	h.clock.Advance(time.Second)
	rep = h.tick(t)
	if len(rep.Actions) != 1 || rep.Actions[0].Target != 2 || !rep.Actions[0].Drain {
		t.Fatalf("after HoldDown idle windows: %+v, want drain shrink to 2", rep.Actions)
	}
	if len(h.calls) != 2 {
		t.Fatalf("resize calls: %+v", h.calls)
	}
}

// TestScalerBoundsAndPendingGate pins the guard rails: no grow above
// MaxM, no shrink below MinM, and no shrink while a drain target is
// already queued.
func TestScalerBoundsAndPendingGate(t *testing.T) {
	cfg := Config{MinM: 2, MaxM: 3, HoldUp: 1, HoldDown: 1, Cooldown: time.Millisecond, Rate: 100, Burst: 10}
	h := newHarness(t, cfg)
	h.tenants["T"] = &fakeTenant{m: 3, lag: lagHist([5]uint64{}, 0)}

	h.tick(t) // baseline
	h.tenants["T"].lag = addLag(h.tenants["T"].lag, high, 0)
	h.clock.Advance(time.Second)
	if rep := h.tick(t); len(rep.Actions) != 0 {
		t.Fatalf("grew past MaxM: %+v", rep.Actions)
	}

	// Idle windows shrink 3 → 2, then stop at MinM.
	for i := 0; i < 4; i++ {
		h.clock.Advance(time.Second)
		h.tick(t)
	}
	if h.tenants["T"].m != 2 {
		t.Fatalf("m %d, want clamped at MinM 2", h.tenants["T"].m)
	}

	// A queued drain target gates further shrinks entirely.
	h.tenants["T"] = &fakeTenant{m: 3, pending: 2, lag: lagHist([5]uint64{}, 0)}
	h.scaler.tenants = map[string]*tenantState{}
	h.calls = nil
	for i := 0; i < 4; i++ {
		h.clock.Advance(time.Second)
		h.tick(t)
	}
	if len(h.calls) != 0 {
		t.Fatalf("shrank a tenant with a pending drain target: %+v", h.calls)
	}
}

// TestScalerTokenBucketSheds: with a one-deep bucket and no refill, a
// fleet-wide lag spike produces exactly one action; the rest are shed but
// keep their streaks for later ticks.
func TestScalerTokenBucketSheds(t *testing.T) {
	cfg := Config{MinM: 1, MaxM: 8, HoldUp: 1, HoldDown: 99, Cooldown: time.Second,
		Rate: 1e-9, Burst: 1}
	h := newHarness(t, cfg)
	for _, id := range []string{"A", "B", "C"} {
		h.tenants[id] = &fakeTenant{m: 2, lag: lagHist([5]uint64{}, 0)}
	}
	h.tick(t) // baseline
	for _, ft := range h.tenants {
		ft.lag = addLag(ft.lag, high, 0)
	}
	h.clock.Advance(time.Second)
	rep := h.tick(t)
	if len(rep.Actions) != 1 || rep.Shed != 2 {
		t.Fatalf("actions %d shed %d, want 1 action + 2 shed", len(rep.Actions), rep.Shed)
	}
}

// TestScalerOverloadBacksOff: a 429 from the server doubles the quiet
// period — the scaler sheds its own traffic instead of retrying into
// backpressure.
func TestScalerOverloadBacksOff(t *testing.T) {
	cfg := Config{MinM: 1, MaxM: 8, HoldUp: 1, HoldDown: 99, Cooldown: 10 * time.Second, Rate: 100, Burst: 10}
	h := newHarness(t, cfg)
	h.tenants["T"] = &fakeTenant{m: 2, lag: lagHist([5]uint64{}, 0)}
	h.tick(t)
	h.fail = &client.APIError{Status: http.StatusTooManyRequests, Msg: "ring full"}
	h.tenants["T"].lag = addLag(h.tenants["T"].lag, high, 0)
	h.clock.Advance(time.Second)
	rep := h.tick(t)
	if len(rep.Actions) != 1 || rep.Actions[0].Err == nil {
		t.Fatalf("overloaded resize not reported: %+v", rep.Actions)
	}
	h.fail = nil

	// One normal cooldown later the tenant is still backing off...
	h.tenants["T"].lag = addLag(h.tenants["T"].lag, high, 0)
	h.clock.Advance(cfg.Cooldown + time.Second)
	if rep := h.tick(t); len(rep.Actions) != 0 {
		t.Fatalf("acted inside the overload backoff: %+v", rep.Actions)
	}
	// ...and after the doubled backoff it acts again.
	h.tenants["T"].lag = addLag(h.tenants["T"].lag, high, 0)
	h.clock.Advance(cfg.Cooldown)
	if rep := h.tick(t); len(rep.Actions) != 1 {
		t.Fatalf("did not recover after the overload backoff: %+v", rep.Actions)
	}
}

// syncLogf is a race-safe log collector for Run.
type syncLogf struct {
	mu    sync.Mutex
	lines []string
}

func (l *syncLogf) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, format)
}

// TestRunLoopStops covers the pfaird wiring surface: Run ticks until the
// context is cancelled and never panics on scrape errors.
func TestRunLoopStops(t *testing.T) {
	s := NewFuncs(Config{}, obs.NewFake(time.Unix(0, 0), 0),
		func(context.Context) (string, error) { return "", context.DeadlineExceeded },
		func(context.Context, string, int, bool) error { return nil })
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var lg syncLogf
	go func() {
		defer close(done)
		s.Run(ctx, time.Millisecond, lg.logf)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop on context cancellation")
	}
}
