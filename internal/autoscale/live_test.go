package autoscale_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"desyncpfair/internal/autoscale"
	"desyncpfair/internal/client"
	"desyncpfair/internal/model"
	"desyncpfair/internal/server"
)

// TestScalerAgainstLiveServer closes the real loop: the scaler scrapes a
// live pfaird /metrics exposition (not a synthetic one), reassembles the
// per-tenant lag histogram through the obs parser, and drives the actual
// resize endpoint. An idle tenant on 3 processors is walked down to
// MinM=1 one drain-mode shrink at a time, and never below.
func TestScalerAgainstLiveServer(t *testing.T) {
	srv := server.New()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	defer srv.Shutdown()
	cl := client.New(hts.URL, nil)
	ctx := context.Background()

	if _, err := cl.CreateTenant(ctx, "T", 3, ""); err != nil {
		t.Fatalf("CreateTenant: %v", err)
	}
	if _, err := cl.RegisterTask(ctx, "T", "x", model.Weight{E: 1, P: 2}); err != nil {
		t.Fatalf("RegisterTask: %v", err)
	}
	if _, err := cl.SubmitJob(ctx, "T", "x", ""); err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if _, err := cl.Drain(ctx, "T"); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	s := autoscale.New(autoscale.Config{
		MinM: 1, MaxM: 8, HoldUp: 99, HoldDown: 1,
		Cooldown: time.Millisecond, Rate: 100, Burst: 10,
	}, cl)

	// Tick 1 establishes the baseline; each later tick sees an idle
	// window and sheds one processor, feasibly (Σwt = 1/2 ≤ every target).
	for i := 0; i < 5; i++ {
		if _, err := s.Tick(ctx); err != nil {
			t.Fatalf("Tick %d: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond) // let the cooldown lapse
	}
	info, err := cl.Tenant(ctx, "T")
	if err != nil {
		t.Fatalf("Tenant: %v", err)
	}
	if info.M != 1 || info.PendingM != 0 {
		t.Fatalf("idle tenant scaled to M=%d PendingM=%d, want M=1 (MinM) applied", info.M, info.PendingM)
	}
}
