package model

import (
	"encoding/json"
	"fmt"
)

// JSON interchange for task systems. The format is explicit about the GIS
// structure so systems round-trip exactly:
//
//	{
//	  "tasks": [
//	    {"name": "A", "e": 1, "p": 2,
//	     "subtasks": [{"i": 1, "theta": 0, "elig": 0}, …]},
//	    {"name": "B", "e": 3, "p": 4, "periodicUntil": 12}
//	  ]
//	}
//
// A task carries either an explicit subtask list (IS/GIS) or
// "periodicUntil" (synchronous periodic: all subtasks with release <
// horizon are generated on load). Decoding validates the result.

type jsonSubtask struct {
	Index int64 `json:"i"`
	Theta int64 `json:"theta,omitempty"`
	Elig  int64 `json:"elig"`
}

type jsonTask struct {
	Name          string        `json:"name"`
	E             int64         `json:"e"`
	P             int64         `json:"p"`
	Subtasks      []jsonSubtask `json:"subtasks,omitempty"`
	PeriodicUntil int64         `json:"periodicUntil,omitempty"`
}

type jsonSystem struct {
	Tasks []jsonTask `json:"tasks"`
}

// MarshalJSON encodes the system with explicit subtask lists.
func (sys *System) MarshalJSON() ([]byte, error) {
	out := jsonSystem{Tasks: make([]jsonTask, 0, len(sys.Tasks))}
	for _, t := range sys.Tasks {
		jt := jsonTask{Name: t.Name, E: t.W.E, P: t.W.P}
		for _, s := range sys.Subtasks(t) {
			jt.Subtasks = append(jt.Subtasks, jsonSubtask{Index: s.Index, Theta: s.Theta, Elig: s.Elig})
		}
		out.Tasks = append(out.Tasks, jt)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes either representation and validates the system.
func (sys *System) UnmarshalJSON(data []byte) error {
	var in jsonSystem
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*sys = *NewSystem()
	for _, jt := range in.Tasks {
		w := W(jt.E, jt.P)
		if err := w.Validate(); err != nil {
			return err
		}
		if len(jt.Subtasks) > 0 && jt.PeriodicUntil > 0 {
			return fmt.Errorf("model: task %q has both subtasks and periodicUntil", jt.Name)
		}
		if len(jt.Subtasks) == 0 && jt.PeriodicUntil == 0 {
			return fmt.Errorf("model: task %q has neither subtasks nor periodicUntil", jt.Name)
		}
		t := sys.AddTask(jt.Name, w)
		if jt.PeriodicUntil > 0 {
			for i := int64(1); ; i++ {
				s := Subtask{Task: t, Index: i}
				if s.Release() >= jt.PeriodicUntil {
					break
				}
				sys.AddSubtask(t, i, 0, s.Release())
			}
			continue
		}
		for _, js := range jt.Subtasks {
			sys.AddSubtask(t, js.Index, js.Theta, js.Elig)
		}
	}
	return sys.Validate()
}
