// Package model implements the task models of Pfair scheduling: periodic,
// sporadic, intra-sporadic (IS) and generalized intra-sporadic (GIS) task
// systems, exactly as defined in Sec. 2 of Devi & Anderson (IPPS 2005) and
// the prior work it builds on (Baruah et al. 1996; Anderson & Srinivasan
// 2000–2004; Srinivasan & Anderson 2002).
//
// A task T has an integer execution cost T.e and period T.p with weight
// wt(T) = e/p ∈ (0, 1]. Each task is divided into quantum-length subtasks
// T_1, T_2, …; subtask T_i has
//
//	release   r(T_i) = θ(T_i) + ⌊(i−1)/wt(T)⌋            (eq. 3)
//	deadline  d(T_i) = θ(T_i) + ⌈ i   /wt(T)⌉            (eq. 4)
//
// where the offset θ(T_i) right-shifts the window for IS/GIS behaviour and
// must be non-decreasing in i (eq. 5). The eligibility time e(T_i) ≤ r(T_i)
// with e(T_i) ≤ e(T_{i+1}) (eq. 6) bounds how early the subtask may be
// scheduled ("early releasing"). [r, d) is the PF-window; [e, d) the
// IS-window.
//
// The package also provides the two PD² tie-break parameters: the successor
// bit b(T_i) and the group deadline D(T_i) (see Subtask.BBit and
// Subtask.GroupDeadline).
package model

import (
	"fmt"
	"sort"

	"desyncpfair/internal/rat"
)

// Weight is a task weight (utilization) E/P with 0 < E ≤ P.
type Weight struct {
	E int64 // per-job execution cost, in quanta
	P int64 // period, in quanta
}

// W is shorthand for constructing a Weight.
func W(e, p int64) Weight { return Weight{E: e, P: p} }

// Rat returns the weight as an exact rational.
func (w Weight) Rat() rat.Rat { return rat.New(w.E, w.P) }

// IsHeavy reports whether wt ≥ 1/2. Heavy tasks are the ones with
// overlapping successive windows, for which the PD² group deadline matters.
func (w Weight) IsHeavy() bool { return 2*w.E >= w.P }

// Validate checks 0 < E ≤ P.
func (w Weight) Validate() error {
	if w.E <= 0 || w.P <= 0 {
		return fmt.Errorf("model: weight %d/%d has non-positive component", w.E, w.P)
	}
	if w.E > w.P {
		return fmt.Errorf("model: weight %d/%d exceeds 1", w.E, w.P)
	}
	return nil
}

func (w Weight) String() string { return fmt.Sprintf("%d/%d", w.E, w.P) }

// Task is a recurrent task. Its subtask sequence (including IS offsets and
// GIS omissions) lives in the System that owns it.
type Task struct {
	ID   int    // dense index within its System
	Name string // display name ("A", "B", … in the paper's figures)
	W    Weight
}

func (t *Task) String() string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("T%d", t.ID)
}

// Subtask is one quantum-length unit of work of a task.
type Subtask struct {
	Task  *Task
	Index int64 // i ≥ 1; GIS systems may skip indices
	Theta int64 // offset θ(T_i) ≥ 0, non-decreasing along the released sequence
	Elig  int64 // eligibility time e(T_i) ≤ r(T_i), non-decreasing
	Seq   int   // position in the task's released sequence (0-based); Seq-1 is the predecessor
	// GID is the dense system-wide index assigned by System.AddSubtask, in
	// release-registration order: 0 ≤ GID < System.NumSubtasks(). Engines
	// use it to index precomputed per-subtask state (e.g. prio.Key caches).
	// Subtask values constructed outside a System have GID 0.
	GID int
}

// Release returns the pseudo-release r(T_i) per eq. (3).
func (s *Subtask) Release() int64 {
	return s.Theta + rat.FloorDiv((s.Index-1)*s.Task.W.P, s.Task.W.E)
}

// Deadline returns the pseudo-deadline d(T_i) per eq. (4).
func (s *Subtask) Deadline() int64 {
	return s.Theta + rat.CeilDiv(s.Index*s.Task.W.P, s.Task.W.E)
}

// WindowLength returns |w(T_i)| = d(T_i) − r(T_i).
func (s *Subtask) WindowLength() int64 { return s.Deadline() - s.Release() }

// BBit returns the successor bit b(T_i): 1 if the PF-window of T_i would
// overlap that of T_{i+1} when released as early as possible (i.e. when
// i/wt(T) is not integral), else 0. The bit depends only on the weight and
// index, not on offsets — exactly the definition used by PD².
func (s *Subtask) BBit() int {
	if (s.Index*s.Task.W.P)%s.Task.W.E != 0 {
		return 1
	}
	return 0
}

// GroupDeadline returns the PD² group deadline D(T_i).
//
// For a heavy task (wt ≥ 1/2, wt < 1) it is the earliest time t ≥ d(T_i) at
// which a cascade of forced single-slot schedulings must end: the earliest
// t ≥ d(T_i) such that t = d(T_j) for some j ≥ i with b(T_j) = 0, or
// t = d(T_j) − 1 for some j with |w(T_j)| = 3. In closed form,
//
//	D(T_i) = θ(T_i) + ⌈ P·(⌈iP/E⌉ − i) / (P − E) ⌉.
//
// Light tasks (wt < 1/2) and weight-1 tasks never reach the group-deadline
// comparison in PD² (their b-bits resolve the tie first, or — for light
// tasks — PD² defines D = 0), so 0 is returned for them.
func (s *Subtask) GroupDeadline() int64 {
	w := s.Task.W
	if !w.IsHeavy() || w.E == w.P {
		return 0
	}
	d0 := rat.CeilDiv(s.Index*w.P, w.E) // deadline without θ
	return s.Theta + rat.CeilDiv(w.P*(d0-s.Index), w.P-w.E)
}

// GroupDeadlineByScan computes D(T_i) from the windows-based definition by
// scanning successors; it exists to cross-check the closed form in tests.
func (s *Subtask) GroupDeadlineByScan() int64 {
	w := s.Task.W
	if !w.IsHeavy() || w.E == w.P {
		return 0
	}
	for j := s.Index; ; j++ {
		v := Subtask{Task: s.Task, Index: j, Theta: s.Theta}
		if v.BBit() == 0 {
			return v.Deadline()
		}
		if next := (Subtask{Task: s.Task, Index: j + 1, Theta: s.Theta}); next.WindowLength() >= 3 {
			// A length-3 window w(T_{j+1}) breaks the cascade one slot
			// before its deadline.
			return next.Deadline() - 1
		}
	}
}

func (s *Subtask) String() string {
	return fmt.Sprintf("%s_%d", s.Task, s.Index)
}

// Label returns the paper-style label with window info, e.g. "A_1[0,6)".
func (s *Subtask) Label() string {
	return fmt.Sprintf("%s_%d[%d,%d)", s.Task, s.Index, s.Release(), s.Deadline())
}

// System is a GIS task system: a set of tasks, each with an explicit
// released-subtask sequence. Periodic and IS systems are special cases
// (no omissions; and additionally zero offsets for periodic).
type System struct {
	Tasks []*Task
	seqs  [][]*Subtask // per task ID, in released order
	nsubs int          // released-subtask count; the next GID
}

// NewSystem creates an empty system.
func NewSystem() *System { return &System{} }

// AddTask appends a task with the given name and weight and returns it.
// It panics on an invalid weight, which is a programming error.
func (sys *System) AddTask(name string, w Weight) *Task {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	t := &Task{ID: len(sys.Tasks), Name: name, W: w}
	sys.Tasks = append(sys.Tasks, t)
	sys.seqs = append(sys.seqs, nil)
	return t
}

// AddSubtask appends the released subtask (index, θ, e) to t's sequence and
// returns it. Constraint violations (eqs. 5, 6, the GIS index rule) are
// reported by Validate, not here, so that tests can construct bad systems.
func (sys *System) AddSubtask(t *Task, index, theta, elig int64) *Subtask {
	s := &Subtask{Task: t, Index: index, Theta: theta, Elig: elig, Seq: len(sys.seqs[t.ID]), GID: sys.nsubs}
	sys.nsubs++
	sys.seqs[t.ID] = append(sys.seqs[t.ID], s)
	return s
}

// Subtasks returns t's released sequence in order.
func (sys *System) Subtasks(t *Task) []*Subtask { return sys.seqs[t.ID] }

// All returns every released subtask of every task.
func (sys *System) All() []*Subtask {
	var out []*Subtask
	for _, seq := range sys.seqs {
		out = append(out, seq...)
	}
	return out
}

// NumSubtasks returns the total number of released subtasks.
func (sys *System) NumSubtasks() int { return sys.nsubs }

// Predecessor returns the predecessor of s in its task's released sequence,
// or nil if s is the first released subtask of its task.
func (sys *System) Predecessor(s *Subtask) *Subtask {
	if s.Seq == 0 {
		return nil
	}
	return sys.seqs[s.Task.ID][s.Seq-1]
}

// Successor returns the successor of s, or nil if s is the last released
// subtask of its task.
func (sys *System) Successor(s *Subtask) *Subtask {
	seq := sys.seqs[s.Task.ID]
	if s.Seq+1 >= len(seq) {
		return nil
	}
	return seq[s.Seq+1]
}

// TotalUtilization returns Σ wt(T), exactly.
func (sys *System) TotalUtilization() rat.Rat {
	u := rat.Zero
	for _, t := range sys.Tasks {
		u = u.Add(t.W.Rat())
	}
	return u
}

// Feasible reports whether the system is feasible on m processors, i.e.
// total utilization ≤ m (the exact iff condition for GIS systems).
func (sys *System) Feasible(m int) bool {
	return sys.TotalUtilization().LessEq(rat.FromInt(int64(m)))
}

// Horizon returns the latest deadline of any released subtask (0 if none).
func (sys *System) Horizon() int64 {
	var h int64
	for _, s := range sys.All() {
		if d := s.Deadline(); d > h {
			h = d
		}
	}
	return h
}

// Validate checks every structural constraint of the GIS model:
//   - weights valid; subtask indices ≥ 1 and strictly increasing per task;
//   - offsets θ non-negative and non-decreasing along each sequence (eq. 5,
//     which for omitted indices is exactly the GIS release-separation rule);
//   - eligibility times e(T_i) ≤ r(T_i) and non-decreasing (eq. 6);
//   - Seq fields consistent.
func (sys *System) Validate() error {
	for _, t := range sys.Tasks {
		if err := t.W.Validate(); err != nil {
			return err
		}
		seq := sys.seqs[t.ID]
		for k, s := range seq {
			if s.Seq != k {
				return fmt.Errorf("model: %s has Seq %d, want %d", s, s.Seq, k)
			}
			if s.Index < 1 {
				return fmt.Errorf("model: %s has index < 1", s)
			}
			if s.Theta < 0 {
				return fmt.Errorf("model: %s has negative offset %d", s, s.Theta)
			}
			if s.Elig > s.Release() {
				return fmt.Errorf("model: %s eligible at %d after release %d (violates eq. 6)", s, s.Elig, s.Release())
			}
			if k > 0 {
				p := seq[k-1]
				if s.Index <= p.Index {
					return fmt.Errorf("model: %s index not greater than predecessor %s", s, p)
				}
				if s.Theta < p.Theta {
					return fmt.Errorf("model: %s offset %d decreases from predecessor's %d (violates eq. 5)", s, s.Theta, p.Theta)
				}
				if s.Elig < p.Elig {
					return fmt.Errorf("model: %s eligibility %d decreases from predecessor's %d (violates eq. 6)", s, s.Elig, p.Elig)
				}
			}
		}
	}
	return nil
}

// AddPeriodic adds a periodic task (θ = 0, e = r, consecutive indices) with
// all subtasks whose release is < horizon, and returns the task.
func (sys *System) AddPeriodic(name string, w Weight, horizon int64) *Task {
	t := sys.AddTask(name, w)
	for i := int64(1); ; i++ {
		s := Subtask{Task: t, Index: i}
		if s.Release() >= horizon {
			break
		}
		sys.AddSubtask(t, i, 0, s.Release())
	}
	return t
}

// Periodic builds a periodic system from weights, releasing every subtask
// with release time < horizon. Names are "A", "B", … then "T26", ….
func Periodic(weights []Weight, horizon int64) *System {
	sys := NewSystem()
	for k, w := range weights {
		sys.AddPeriodic(taskName(k), w, horizon)
	}
	return sys
}

func taskName(k int) string {
	if k < 26 {
		return string(rune('A' + k))
	}
	return fmt.Sprintf("T%d", k)
}

// Hyperperiod returns the LCM of all task periods (1 for an empty system).
// Useful for choosing simulation horizons for periodic systems.
func (sys *System) Hyperperiod() int64 {
	l := int64(1)
	for _, t := range sys.Tasks {
		l = lcm(l, t.W.P)
	}
	return l
}

func lcm(a, b int64) int64 {
	return a / gcd(a, b) * b
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// SortSubtasks orders subtasks deterministically by (task ID, sequence
// position); used by engines to make iteration order reproducible.
func SortSubtasks(subs []*Subtask) {
	sort.Slice(subs, func(i, j int) bool {
		if subs[i].Task.ID != subs[j].Task.ID {
			return subs[i].Task.ID < subs[j].Task.ID
		}
		return subs[i].Seq < subs[j].Seq
	})
}

// JobIndex returns the 1-based job number the subtask belongs to: job j of
// a task with per-job cost E consists of subtasks (j−1)E+1 … jE.
func (s *Subtask) JobIndex() int64 {
	return rat.CeilDiv(s.Index, s.Task.W.E)
}

// JobDeadline returns the deadline of the subtask's job under the sporadic
// interpretation: the job released at θ + (j−1)·P is due at θ + j·P. It
// coincides with the last subtask's pseudo-deadline when the whole job
// shares one offset (periodic and sporadic systems; AddSporadic guarantees
// this). For general IS/GIS offsets, per-subtask pseudo-deadlines are the
// meaningful notion instead.
func (s *Subtask) JobDeadline() int64 {
	return s.Theta + s.JobIndex()*s.Task.W.P
}

// AddSporadic adds a task whose jobs are released at the given times. Job
// releases must be non-decreasing and separated by at least the period
// (the sporadic constraint); the first release may be any time ≥ 0. All E
// subtasks of a job share the job's offset, so their windows are the
// periodic windows right-shifted by the job's lateness.
func (sys *System) AddSporadic(name string, w Weight, releases []int64) (*Task, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	for j := 1; j < len(releases); j++ {
		if releases[j] < releases[j-1]+w.P {
			return nil, fmt.Errorf("model: sporadic releases %d and %d of %s closer than the period %d",
				releases[j-1], releases[j], name, w.P)
		}
	}
	if len(releases) > 0 && releases[0] < 0 {
		return nil, fmt.Errorf("model: negative first release for %s", name)
	}
	t := sys.AddTask(name, w)
	for j, rel := range releases {
		theta := rel - int64(j)*w.P // job j (0-based) starts at (j)·P with θ = 0
		for k := int64(0); k < w.E; k++ {
			i := int64(j)*w.E + k + 1
			s := sys.AddSubtask(t, i, theta, 0)
			s.Elig = s.Release()
		}
	}
	return t, nil
}
