package model

import (
	"testing"
	"testing/quick"

	"desyncpfair/internal/rat"
)

// fig1a is the canonical example of Fig. 1(a): the first job of a periodic
// task of weight 3/4 consists of subtasks T_1..T_3 with windows [0,2),
// [1,3), [2,4).
func TestFig1aWindows(t *testing.T) {
	sys := NewSystem()
	tk := sys.AddTask("T", W(3, 4))
	want := []struct {
		i, r, d int64
		b       int
	}{
		{1, 0, 2, 1},
		{2, 1, 3, 1},
		{3, 2, 4, 0},
		// second job repeats the pattern shifted by the period
		{4, 4, 6, 1},
		{5, 5, 7, 1},
		{6, 6, 8, 0},
	}
	for _, w := range want {
		s := Subtask{Task: tk, Index: w.i}
		if s.Release() != w.r || s.Deadline() != w.d {
			t.Errorf("T_%d window = [%d,%d), want [%d,%d)", w.i, s.Release(), s.Deadline(), w.r, w.d)
		}
		if s.BBit() != w.b {
			t.Errorf("b(T_%d) = %d, want %d", w.i, s.BBit(), w.b)
		}
	}
}

// Fig. 1(b): the IS variant where T_3 becomes eligible one time unit late,
// i.e. its window is right-shifted by one: [3,5).
func TestFig1bISShift(t *testing.T) {
	sys := NewSystem()
	tk := sys.AddTask("T", W(3, 4))
	sys.AddSubtask(tk, 1, 0, 0)
	sys.AddSubtask(tk, 2, 0, 1)
	s3 := sys.AddSubtask(tk, 3, 1, 3)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if s3.Release() != 3 || s3.Deadline() != 5 {
		t.Errorf("IS-shifted T_3 window = [%d,%d), want [3,5)", s3.Release(), s3.Deadline())
	}
}

// Fig. 1(c): the GIS variant where T_2 is absent and T_3 is one unit late.
func TestFig1cGISOmission(t *testing.T) {
	sys := NewSystem()
	tk := sys.AddTask("T", W(3, 4))
	s1 := sys.AddSubtask(tk, 1, 0, 0)
	s3 := sys.AddSubtask(tk, 3, 1, 3)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Successor(s1); got != s3 {
		t.Errorf("successor of T_1 = %v, want T_3", got)
	}
	if got := sys.Predecessor(s3); got != s1 {
		t.Errorf("predecessor of T_3 = %v, want T_1", got)
	}
	if sys.Predecessor(s1) != nil {
		t.Error("T_1 should have no predecessor")
	}
	if sys.Successor(s3) != nil {
		t.Error("T_3 should have no successor")
	}
}

func TestWeightValidate(t *testing.T) {
	for _, w := range []Weight{{0, 1}, {1, 0}, {-1, 2}, {3, 2}} {
		if err := w.Validate(); err == nil {
			t.Errorf("Weight %v should be invalid", w)
		}
	}
	for _, w := range []Weight{{1, 1}, {1, 2}, {999, 1000}} {
		if err := w.Validate(); err != nil {
			t.Errorf("Weight %v should be valid: %v", w, err)
		}
	}
}

func TestIsHeavy(t *testing.T) {
	cases := []struct {
		w     Weight
		heavy bool
	}{
		{W(1, 2), true},
		{W(1, 1), true},
		{W(3, 4), true},
		{W(1, 3), false},
		{W(49, 100), false},
		{W(50, 100), true},
	}
	for _, c := range cases {
		if got := c.w.IsHeavy(); got != c.heavy {
			t.Errorf("IsHeavy(%v) = %v, want %v", c.w, got, c.heavy)
		}
	}
}

func TestGroupDeadlineClosedFormExamples(t *testing.T) {
	cases := []struct {
		w    Weight
		i, d int64
	}{
		{W(3, 4), 1, 4}, // cascade [0,2),[1,3),[2,4) ends at 4
		{W(3, 4), 2, 4},
		{W(3, 4), 3, 4},
		{W(3, 4), 4, 8},
		{W(5, 7), 1, 4},
		{W(7, 9), 1, 5}, // ends one slot before the length-3 window [3,6)
		{W(4, 7), 1, 3},
		{W(1, 2), 1, 0}, // b-bit always 0: D unused, defined 0 here? no — wt 1/2 is heavy
	}
	for _, c := range cases[:len(cases)-1] {
		s := Subtask{Task: &Task{W: c.w}, Index: c.i}
		if got := s.GroupDeadline(); got != c.d {
			t.Errorf("D(%v, i=%d) = %d, want %d", c.w, c.i, got, c.d)
		}
	}
	// wt = 1/2 is heavy but its cascade ends immediately at its own deadline
	// (all b-bits are 0): D(T_i) = d(T_i).
	s := Subtask{Task: &Task{W: W(1, 2)}, Index: 1}
	if got := s.GroupDeadline(); got != 2 {
		t.Errorf("D(1/2, i=1) = %d, want 2", got)
	}
}

func TestGroupDeadlineLightAndFullWeight(t *testing.T) {
	light := Subtask{Task: &Task{W: W(1, 3)}, Index: 1}
	if got := light.GroupDeadline(); got != 0 {
		t.Errorf("light task D = %d, want 0", got)
	}
	full := Subtask{Task: &Task{W: W(1, 1)}, Index: 5}
	if got := full.GroupDeadline(); got != 0 {
		t.Errorf("weight-1 task D = %d, want 0", got)
	}
	if full.BBit() != 0 {
		t.Error("weight-1 task should have b = 0")
	}
}

// The closed form must agree with the windows-based scan definition for all
// heavy weights and indices.
func TestPropGroupDeadlineClosedFormMatchesScan(t *testing.T) {
	f := func(e, p uint8, iRaw uint16) bool {
		E, P := int64(e%50)+1, int64(p%50)+1
		if E > P {
			E, P = P, E
		}
		if 2*E < P || E == P {
			return true // not heavy, or weight 1: D = 0 by definition
		}
		i := int64(iRaw%200) + 1
		s := Subtask{Task: &Task{W: Weight{E, P}}, Index: i, Theta: int64(iRaw % 7)}
		return s.GroupDeadline() == s.GroupDeadlineByScan()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Window invariants for arbitrary weights, indices, offsets:
// r < d, windows of consecutive indices are ordered, window length ∈
// {⌈1/w⌉−? …}: at least ⌊1/w⌋ and at most ⌈1/w⌉+1... we assert the tight
// classical bounds: |w(T_i)| ∈ {⌈p/e⌉, ⌈p/e⌉+1} when e ∤ ip boundaries vary;
// we check the weaker exact facts that are load-bearing for the schedulers.
func TestPropWindowInvariants(t *testing.T) {
	f := func(e, p uint8, iRaw uint16, th uint8) bool {
		E, P := int64(e%30)+1, int64(p%30)+1
		if E > P {
			E, P = P, E
		}
		i := int64(iRaw%500) + 1
		tk := &Task{W: Weight{E, P}}
		s := Subtask{Task: tk, Index: i, Theta: int64(th % 11)}
		next := Subtask{Task: tk, Index: i + 1, Theta: s.Theta}
		if s.Release() >= s.Deadline() {
			return false // windows are non-empty
		}
		if next.Release() < s.Release() || next.Deadline() < s.Deadline() {
			return false // releases and deadlines are non-decreasing in i
		}
		// b = 1 iff the next window (same offset) starts before this deadline.
		overlap := next.Release() < s.Deadline()
		if (s.BBit() == 1) != overlap {
			return false
		}
		// Group deadline, when defined, is ≥ the deadline.
		if D := s.GroupDeadline(); D != 0 && D < s.Deadline() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

// Over any span of L consecutive slots a periodic task has at most ⌈L·w⌉+1
// subtask windows intersecting it — sanity of the lag arithmetic used later.
func TestPropReleaseDensity(t *testing.T) {
	f := func(e, p uint8, jRaw uint16) bool {
		E, P := int64(e%20)+1, int64(p%20)+1
		if E > P {
			E, P = P, E
		}
		j := int64(jRaw%8) + 1
		tk := &Task{W: Weight{E, P}}
		// Exactly E subtasks have deadlines within each period.
		count := int64(0)
		for i := int64(1); i <= 10*E; i++ {
			s := Subtask{Task: tk, Index: i}
			if s.Deadline() <= j*P && s.Deadline() > (j-1)*P {
				count++
			}
		}
		return count == E
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	mk := func() (*System, *Task) {
		sys := NewSystem()
		return sys, sys.AddTask("T", W(1, 2))
	}

	sys, tk := mk()
	sys.AddSubtask(tk, 2, 0, 2)
	sys.AddSubtask(tk, 1, 0, 0) // index decreases
	if sys.Validate() == nil {
		t.Error("decreasing index not caught")
	}

	sys, tk = mk()
	sys.AddSubtask(tk, 1, 3, 3)
	sys.AddSubtask(tk, 2, 1, 3) // offset decreases: violates eq. (5)
	if sys.Validate() == nil {
		t.Error("decreasing offset not caught")
	}

	sys, tk = mk()
	sys.AddSubtask(tk, 1, 0, 1) // e > r: violates eq. (6)
	if sys.Validate() == nil {
		t.Error("e > r not caught")
	}

	sys, tk = mk()
	sys.AddSubtask(tk, 1, 0, 0)
	sys.AddSubtask(tk, 2, 0, -1) // e decreases (and is below predecessor's)
	if sys.Validate() == nil {
		t.Error("decreasing eligibility not caught")
	}

	sys, tk = mk()
	sys.AddSubtask(tk, 1, 0, 0)
	sys.AddSubtask(tk, 3, 2, 4) // legal GIS omission: θ non-decreasing
	if err := sys.Validate(); err != nil {
		t.Errorf("legal GIS omission rejected: %v", err)
	}
}

func TestPeriodicConstruction(t *testing.T) {
	sys := Periodic([]Weight{W(1, 2), W(3, 4)}, 8)
	if got := len(sys.Tasks); got != 2 {
		t.Fatalf("task count = %d", got)
	}
	// wt 1/2 over horizon 8: subtasks with r < 8 are i=1..4 (r = 0,2,4,6).
	if got := len(sys.Subtasks(sys.Tasks[0])); got != 4 {
		t.Errorf("wt 1/2 subtask count = %d, want 4", got)
	}
	// wt 3/4 over horizon 8: r(i) = 0,1,2,4,5,6 for i=1..6; r(7)=8 excluded.
	if got := len(sys.Subtasks(sys.Tasks[1])); got != 6 {
		t.Errorf("wt 3/4 subtask count = %d, want 6", got)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := sys.TotalUtilization(), rat.New(5, 4); !got.Equal(want) {
		t.Errorf("total utilization = %s, want %s", got, want)
	}
	if !sys.Feasible(2) || sys.Feasible(1) {
		t.Error("feasibility misjudged")
	}
}

func TestHyperperiodAndHorizon(t *testing.T) {
	sys := Periodic([]Weight{W(1, 6), W(1, 2), W(3, 4)}, 12)
	if got := sys.Hyperperiod(); got != 12 {
		t.Errorf("hyperperiod = %d, want 12", got)
	}
	if got := sys.Horizon(); got != 12 {
		t.Errorf("horizon = %d, want 12", got)
	}
}

func TestNumSubtasksAndAll(t *testing.T) {
	sys := Periodic([]Weight{W(1, 6), W(1, 2)}, 6)
	if got := sys.NumSubtasks(); got != 4 {
		t.Errorf("NumSubtasks = %d, want 4", got)
	}
	if got := len(sys.All()); got != 4 {
		t.Errorf("len(All) = %d, want 4", got)
	}
}

func TestTaskNames(t *testing.T) {
	sys := NewSystem()
	a := sys.AddTask("A", W(1, 2))
	if a.String() != "A" {
		t.Errorf("named task String = %q", a.String())
	}
	anon := sys.AddTask("", W(1, 2))
	if anon.String() != "T1" {
		t.Errorf("anonymous task String = %q", anon.String())
	}
	s := Subtask{Task: a, Index: 3}
	if s.String() != "A_3" {
		t.Errorf("subtask String = %q", s.String())
	}
	if s.Label() != "A_3[4,6)" {
		t.Errorf("subtask Label = %q", s.Label())
	}
}

func TestSortSubtasks(t *testing.T) {
	sys := Periodic([]Weight{W(1, 2), W(1, 2)}, 4)
	subs := sys.All()
	// reverse
	for i, j := 0, len(subs)-1; i < j; i, j = i+1, j-1 {
		subs[i], subs[j] = subs[j], subs[i]
	}
	SortSubtasks(subs)
	for k := 1; k < len(subs); k++ {
		a, b := subs[k-1], subs[k]
		if a.Task.ID > b.Task.ID || (a.Task.ID == b.Task.ID && a.Seq >= b.Seq) {
			t.Fatalf("not sorted at %d: %v %v", k, a, b)
		}
	}
}

func TestJobIndexAndDeadline(t *testing.T) {
	tk := &Task{W: W(3, 4)}
	cases := []struct {
		i, job, jobD int64
	}{
		{1, 1, 4}, {2, 1, 4}, {3, 1, 4},
		{4, 2, 8}, {6, 2, 8}, {7, 3, 12},
	}
	for _, c := range cases {
		s := Subtask{Task: tk, Index: c.i}
		if s.JobIndex() != c.job {
			t.Errorf("JobIndex(T_%d) = %d, want %d", c.i, s.JobIndex(), c.job)
		}
		if s.JobDeadline() != c.jobD {
			t.Errorf("JobDeadline(T_%d) = %d, want %d", c.i, s.JobDeadline(), c.jobD)
		}
	}
	// The last subtask of each job has pseudo-deadline equal to the job
	// deadline (θ constant across the job).
	last := Subtask{Task: tk, Index: 3, Theta: 2}
	if last.Deadline() != last.JobDeadline() {
		t.Errorf("pseudo-deadline %d != job deadline %d", last.Deadline(), last.JobDeadline())
	}
}

func TestAddSporadic(t *testing.T) {
	sys := NewSystem()
	// Period 4, releases at 0, 5 (one late), 9.
	tk, err := sys.AddSporadic("S", W(2, 4), []int64{0, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	seq := sys.Subtasks(tk)
	if len(seq) != 6 {
		t.Fatalf("subtasks = %d, want 6", len(seq))
	}
	// Job 2 released at 5 (1 late): its subtasks' windows shift by 1.
	if seq[2].Release() != 5 {
		t.Errorf("S_3 release = %d, want 5", seq[2].Release())
	}
	if seq[3].JobDeadline() != 9 {
		t.Errorf("job 2 deadline = %d, want 9", seq[3].JobDeadline())
	}
	// Job 3 released at 9 (θ = 1, not reset): window pattern continues.
	if seq[4].Release() != 9 {
		t.Errorf("S_5 release = %d, want 9", seq[4].Release())
	}

	// Violating the sporadic separation is rejected.
	if _, err := sys.AddSporadic("bad", W(1, 4), []int64{0, 3}); err == nil {
		t.Error("sub-period separation accepted")
	}
	if _, err := sys.AddSporadic("neg", W(1, 4), []int64{-1}); err == nil {
		t.Error("negative release accepted")
	}
	if _, err := sys.AddSporadic("badw", W(0, 4), nil); err == nil {
		t.Error("invalid weight accepted")
	}
}

func TestSporadicScheduledOptimally(t *testing.T) {
	// A sporadic system at utilization ≤ M is feasible; PD² must meet all
	// pseudo-deadlines. (Exercised through the sfq engine in that package;
	// here we check the structural invariants used by the engines.)
	sys := NewSystem()
	if _, err := sys.AddSporadic("S1", W(1, 2), []int64{0, 2, 5, 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddSporadic("S2", W(2, 3), []int64{1, 4, 7}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, sub := range sys.All() {
		if sub.Elig != sub.Release() {
			t.Errorf("%s eligibility %d != release %d", sub, sub.Elig, sub.Release())
		}
	}
}

// Hand-computed window tables for representative weights over the first
// period(s) — the paper-anchored ground truth the schedulers stand on.
func TestWindowTablesHandVerified(t *testing.T) {
	type row struct {
		i, r, d int64
		b       int
		D       int64 // 0 where unused
	}
	cases := []struct {
		w    Weight
		rows []row
	}{
		{W(1, 6), []row{ // the A/B/C tasks of Fig. 2
			{1, 0, 6, 0, 0}, {2, 6, 12, 0, 0},
		}},
		{W(1, 2), []row{ // the D/E/F tasks of Fig. 2 (heavy, b always 0)
			{1, 0, 2, 0, 2}, {2, 2, 4, 0, 4}, {3, 4, 6, 0, 6},
		}},
		{W(2, 3), []row{
			{1, 0, 2, 1, 3}, {2, 1, 3, 0, 3}, {3, 3, 5, 1, 6}, {4, 4, 6, 0, 6},
		}},
		{W(5, 7), []row{
			{1, 0, 2, 1, 4}, {2, 1, 3, 1, 4}, {3, 2, 5, 1, 7},
			{4, 4, 6, 1, 7}, {5, 5, 7, 0, 7},
		}},
		{W(7, 9), []row{
			{1, 0, 2, 1, 5}, {2, 1, 3, 1, 5}, {3, 2, 4, 1, 5},
			{4, 3, 6, 1, 9}, {5, 5, 7, 1, 9}, {6, 6, 8, 1, 9}, {7, 7, 9, 0, 9},
		}},
		{W(3, 7), []row{ // light: D = 0 everywhere
			{1, 0, 3, 1, 0}, {2, 2, 5, 1, 0}, {3, 4, 7, 0, 0},
		}},
	}
	for _, c := range cases {
		tk := &Task{W: c.w}
		for _, r := range c.rows {
			s := Subtask{Task: tk, Index: r.i}
			if s.Release() != r.r || s.Deadline() != r.d {
				t.Errorf("%v T_%d window [%d,%d), want [%d,%d)", c.w, r.i, s.Release(), s.Deadline(), r.r, r.d)
			}
			if s.BBit() != r.b {
				t.Errorf("%v b(T_%d) = %d, want %d", c.w, r.i, s.BBit(), r.b)
			}
			if got := s.GroupDeadline(); got != r.D {
				t.Errorf("%v D(T_%d) = %d, want %d", c.w, r.i, got, r.D)
			}
		}
	}
}
