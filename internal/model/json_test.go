package model

import (
	"encoding/json"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	sys := NewSystem()
	tk := sys.AddTask("A", W(3, 4))
	sys.AddSubtask(tk, 1, 0, 0)
	sys.AddSubtask(tk, 3, 1, 3) // GIS omission + IS shift
	sys.AddPeriodic("B", W(1, 2), 8)

	data, err := json.Marshal(sys)
	if err != nil {
		t.Fatal(err)
	}
	var back System
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(back.Tasks))
	}
	if back.NumSubtasks() != sys.NumSubtasks() {
		t.Fatalf("subtasks %d vs %d", back.NumSubtasks(), sys.NumSubtasks())
	}
	for ti, task := range sys.Tasks {
		bt := back.Tasks[ti]
		if bt.Name != task.Name || bt.W != task.W {
			t.Errorf("task %d differs: %v vs %v", ti, bt, task)
		}
		bs, os := back.Subtasks(bt), sys.Subtasks(task)
		for k := range os {
			if bs[k].Index != os[k].Index || bs[k].Theta != os[k].Theta || bs[k].Elig != os[k].Elig {
				t.Errorf("subtask %d of %s differs", k, task)
			}
		}
	}
}

func TestJSONPeriodicShorthand(t *testing.T) {
	data := []byte(`{"tasks":[{"name":"T","e":3,"p":4,"periodicUntil":8}]}`)
	var sys System
	if err := json.Unmarshal(data, &sys); err != nil {
		t.Fatal(err)
	}
	want := Periodic([]Weight{W(3, 4)}, 8)
	if sys.NumSubtasks() != want.NumSubtasks() {
		t.Fatalf("subtasks %d, want %d", sys.NumSubtasks(), want.NumSubtasks())
	}
	for k, s := range sys.Subtasks(sys.Tasks[0]) {
		w := want.Subtasks(want.Tasks[0])[k]
		if s.Index != w.Index || s.Elig != w.Elig {
			t.Errorf("subtask %d differs", k)
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"tasks":[{"name":"T","e":3,"p":2,"periodicUntil":8}]}`,                              // weight > 1
		`{"tasks":[{"name":"T","e":1,"p":2}]}`,                                                // neither form
		`{"tasks":[{"name":"T","e":1,"p":2,"periodicUntil":4,"subtasks":[{"i":1}]}]}`,         // both forms
		`{"tasks":[{"name":"T","e":1,"p":2,"subtasks":[{"i":1,"elig":5}]}]}`,                  // e > r
		`{"tasks":[{"name":"T","e":1,"p":2,"subtasks":[{"i":2,"elig":0},{"i":1,"elig":0}]}]}`, // index order
		`not json`,
	}
	for _, c := range cases {
		var sys System
		if err := json.Unmarshal([]byte(c), &sys); err == nil {
			t.Errorf("accepted invalid input %q", c)
		}
	}
}
