package online

import (
	"fmt"

	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
)

// Checkpoint is a serializable image of an Executive's full micro-state:
// everything a Restore needs to continue making byte-identical scheduling
// decisions. Dispatched history (the schedule itself) is deliberately NOT
// part of it — a restored executive starts an empty schedule and only the
// dispatch cursors, completion times, and event queue carry forward. That
// keeps checkpoints proportional to live state while preserving the
// determinism recovery relies on: same checkpoint + same subsequent calls
// ⇒ same dispatch sequence. Rationals travel as exact strings.
type Checkpoint struct {
	M        int              `json:"m"`
	Policy   string           `json:"policy"`
	Now      string           `json:"now"`
	FreeAt   []string         `json:"freeAt"`
	Decision int              `json:"decision"`
	Pending  int              `json:"pending"`
	Events   []string         `json:"events,omitempty"` // queued event times, sorted
	Tasks    []TaskCheckpoint `json:"tasks,omitempty"`
}

// TaskCheckpoint captures one task's registration and dispatch cursor.
type TaskCheckpoint struct {
	Name    string              `json:"name"`
	E       int64               `json:"e"`
	P       int64               `json:"p"`
	Active  bool                `json:"active"`
	Cursor  int                 `json:"cursor"`
	LastFin string              `json:"lastFin"`
	NextIdx int64               `json:"nextIdx"`
	Subs    []SubtaskCheckpoint `json:"subs,omitempty"`
}

// SubtaskCheckpoint is one released subtask's window parameters. The full
// released sequence is kept (not just the undispatched tail) because eq.
// (5)/(6) monotonicity and the cursor both index into it.
type SubtaskCheckpoint struct {
	Index int64 `json:"i"`
	Theta int64 `json:"theta"`
	Elig  int64 `json:"elig"`
}

// Checkpoint snapshots the executive. Like every other method it must run
// on the executive's single goroutine.
func (e *Executive) Checkpoint() Checkpoint {
	cp := Checkpoint{
		M:        e.m,
		Policy:   e.policy.Name(),
		Now:      e.now.String(),
		Decision: e.decision,
		Pending:  e.pending,
	}
	for _, f := range e.freeAt {
		cp.FreeAt = append(cp.FreeAt, f.String())
	}
	for _, ev := range e.tl.all() {
		cp.Events = append(cp.Events, ev.String())
	}
	for _, t := range e.sys.Tasks {
		tc := TaskCheckpoint{
			Name:    t.Name,
			E:       t.W.E,
			P:       t.W.P,
			Active:  e.active[t.ID],
			Cursor:  e.cursor[t.ID],
			LastFin: e.lastFin[t.ID].String(),
			NextIdx: e.nextIdx[t.ID],
		}
		for _, s := range e.sys.Subtasks(t) {
			tc.Subs = append(tc.Subs, SubtaskCheckpoint{Index: s.Index, Theta: s.Theta, Elig: s.Elig})
		}
		cp.Tasks = append(cp.Tasks, tc)
	}
	return cp
}

// Restore rebuilds an executive from a checkpoint. The result continues
// exactly where the checkpointed one would have: identical Register/
// SubmitJob/Run/Drain calls produce identical dispatch decisions. Every
// field is validated on the way in — a checkpoint that went through disk
// is untrusted input.
func Restore(cp Checkpoint) (*Executive, error) {
	pol := prio.ByName(cp.Policy)
	if pol == nil {
		return nil, fmt.Errorf("online: checkpoint has unknown policy %q", cp.Policy)
	}
	if cp.M < 1 {
		return nil, fmt.Errorf("online: checkpoint has m=%d", cp.M)
	}
	if len(cp.FreeAt) != cp.M {
		return nil, fmt.Errorf("online: checkpoint has %d freeAt entries for m=%d", len(cp.FreeAt), cp.M)
	}
	e := New(cp.M, pol)
	var err error
	if e.now, err = rat.Parse(cp.Now); err != nil {
		return nil, fmt.Errorf("online: checkpoint now: %v", err)
	}
	for p, s := range cp.FreeAt {
		if e.freeAt[p], err = rat.Parse(s); err != nil {
			return nil, fmt.Errorf("online: checkpoint freeAt[%d]: %v", p, err)
		}
	}
	e.decision = cp.Decision

	pending := 0
	for _, tc := range cp.Tasks {
		w := model.Weight{E: tc.E, P: tc.P}
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("online: checkpoint task %q: %v", tc.Name, err)
		}
		t := e.sys.AddTask(tc.Name, w)
		for _, sc := range tc.Subs {
			e.sys.AddSubtask(t, sc.Index, sc.Theta, sc.Elig)
		}
		nsubs := len(e.sys.Subtasks(t))
		if tc.Cursor < 0 || tc.Cursor > nsubs {
			return nil, fmt.Errorf("online: checkpoint task %q cursor %d of %d subtasks", tc.Name, tc.Cursor, nsubs)
		}
		lastFin, err := rat.Parse(tc.LastFin)
		if err != nil {
			return nil, fmt.Errorf("online: checkpoint task %q lastFin: %v", tc.Name, err)
		}
		e.cursor = append(e.cursor, tc.Cursor)
		e.lastFin = append(e.lastFin, lastFin)
		e.nextIdx = append(e.nextIdx, tc.NextIdx)
		e.active = append(e.active, tc.Active)
		if tc.Active {
			e.activeUtil = e.activeUtil.Add(w.Rat())
		}
		pending += nsubs - tc.Cursor
	}
	if pending != cp.Pending {
		return nil, fmt.Errorf("online: checkpoint pending=%d but cursors imply %d", cp.Pending, pending)
	}
	e.pending = pending
	if rat.FromInt(int64(e.m)).Less(e.activeUtil) {
		return nil, fmt.Errorf("online: checkpoint active utilization %s > M=%d", e.activeUtil, e.m)
	}
	if err := e.sys.Validate(); err != nil {
		return nil, fmt.Errorf("online: checkpoint system invalid: %v", err)
	}
	for _, s := range cp.Events {
		ev, err := rat.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("online: checkpoint event %q: %v", s, err)
		}
		e.push(ev) // rebuilds the dedup set as a side effect
	}
	return e, nil
}
