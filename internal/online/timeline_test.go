package online

import (
	"encoding/json"
	"fmt"
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// timelineRegime configures which event-queue regime a test executive
// runs in: the int64 lattice fast path (the default), the exact rat heap
// (the oracle), or a mid-run forced fallback.
type timelineRegime int

const (
	regimeLattice timelineRegime = iota
	regimeExact
	regimeFallbackMidRun
)

// runRegime drives one executive through a fractional-yield workload and
// returns the dispatch transcript plus the final checkpoint JSON.
func runRegime(t *testing.T, reg timelineRegime) ([]string, string) {
	t.Helper()
	ex := New(2, nil)
	if reg == regimeExact {
		ex.tl.fallback()
	}
	weights := []model.Weight{model.W(1, 3), model.W(2, 5), model.W(3, 4), model.W(1, 2)}
	tasks := make([]*model.Task, len(weights))
	for i, w := range weights {
		task, err := ex.Register(fmt.Sprintf("T%d", i), w)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	var log []string
	record := func(d Dispatch) {
		log = append(log, fmt.Sprintf("%s.%d@%s+%s proc%d dec%d",
			d.Sub.Task.Name, d.Sub.Index, d.Start, d.Finish.Sub(d.Start), d.Proc, d.Decision))
	}
	// Fractional yields on a 1/8 grid force non-integer quantum
	// boundaries, so the lattice has to extend past the integer grid.
	y := gen.UniformYield(41, 8)
	const horizon = 30
	for slot := int64(0); slot < horizon; slot++ {
		for i, w := range weights {
			if slot%w.P == 0 {
				if err := ex.SubmitJob(tasks[i], rat.FromInt(slot)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := ex.Run(rat.FromInt(slot+1), y, record); err != nil {
			t.Fatal(err)
		}
		if reg == regimeFallbackMidRun && slot == horizon/2 && !ex.tl.exact {
			ex.tl.fallback()
		}
	}
	if _, err := ex.Drain(y); err != nil {
		t.Fatal(err)
	}
	cp, err := json.Marshal(ex.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	return log, string(cp)
}

// TestTimelineLatticeMatchesExact pins the lattice fast path to the exact
// rat engine: the same workload, dispatched decision for decision, must be
// identical whether quantum boundaries are compared as int64 ticks, as
// exact rationals, or switched from one to the other mid-run. The final
// checkpoints (which serialize the queued event times) must also agree,
// so recovery is regime-invariant.
func TestTimelineLatticeMatchesExact(t *testing.T) {
	latLog, latCp := runRegime(t, regimeLattice)
	exLog, exCp := runRegime(t, regimeExact)
	fbLog, fbCp := runRegime(t, regimeFallbackMidRun)
	if len(latLog) == 0 {
		t.Fatal("workload dispatched nothing")
	}
	if len(latLog) != len(exLog) {
		t.Fatalf("lattice dispatched %d subtasks, exact %d", len(latLog), len(exLog))
	}
	for i := range latLog {
		if latLog[i] != exLog[i] {
			t.Fatalf("dispatch %d differs:\n  lattice: %s\n  exact:   %s", i, latLog[i], exLog[i])
		}
		if latLog[i] != fbLog[i] {
			t.Fatalf("dispatch %d differs:\n  lattice:  %s\n  fallback: %s", i, latLog[i], fbLog[i])
		}
	}
	if latCp != exCp {
		t.Fatalf("checkpoints differ:\n  lattice: %s\n  exact:   %s", latCp, exCp)
	}
	if latCp != fbCp {
		t.Fatalf("checkpoints differ:\n  lattice:  %s\n  fallback: %s", latCp, fbCp)
	}
}

// TestTimelineStaysOnLattice asserts the fast path actually engages: an
// all-integer workload (full-cost quanta) never leaves the integer
// lattice, and a 1/8-grid yield workload extends the lattice rather than
// falling back to the exact heap.
func TestTimelineStaysOnLattice(t *testing.T) {
	ex := New(1, nil)
	task, err := ex.Register("a", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	for s := int64(0); s < 10; s += 2 {
		if err := ex.SubmitJob(task, rat.FromInt(s)); err != nil {
			t.Fatal(err)
		}
		if err := ex.Run(rat.FromInt(s+2), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if ex.tl.exact {
		t.Fatal("integer workload fell back to exact regime")
	}
	if got := ex.tl.lat.Den(); got != 1 {
		t.Fatalf("integer workload on lattice den %d, want 1", got)
	}

	ex2 := New(1, nil)
	task2, err := ex2.Register("b", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	y := gen.UniformYield(7, 8)
	for s := int64(0); s < 10; s += 2 {
		if err := ex2.SubmitJob(task2, rat.FromInt(s)); err != nil {
			t.Fatal(err)
		}
		if err := ex2.Run(rat.FromInt(s+2), y, nil); err != nil {
			t.Fatal(err)
		}
	}
	if ex2.tl.exact {
		t.Fatal("1/8-grid workload fell back to exact regime")
	}
	if got := ex2.tl.lat.Den(); got < 2 || 8%got != 0 && got%2 != 0 {
		t.Fatalf("fractional workload on lattice den %d", got)
	}
}

// TestTimelineOverflowFallsBack drives the lattice denominator into
// overflow and checks the queue migrates to the exact regime without
// losing or reordering events.
func TestTimelineOverflowFallsBack(t *testing.T) {
	tl := newTimeline()
	tl.push(rat.New(1, 3))
	tl.push(rat.New(1, 1<<31))
	tl.push(rat.New(5, 7))
	// LCM(3·2^31, next prime power) overflows: 1/(2^31+1) is coprime to
	// 2^31, so the LCM needs ~2^62·3 — representable — then one more
	// coprime factor pushes it over.
	tl.push(rat.New(1, (1<<31)+1))
	if !tl.exact {
		t.Skip("lattice absorbed all denominators; extend the sequence")
	}
	want := []string{"1/2147483649", "1/2147483648", "1/3", "5/7"}
	for i, w := range want {
		if tl.len() == 0 {
			t.Fatalf("queue drained after %d events, want %d", i, len(want))
		}
		got := tl.min().String()
		tl.popMin()
		if got != w {
			t.Fatalf("event %d = %s, want %s", i, got, w)
		}
	}
	if tl.len() != 0 {
		t.Fatalf("%d events left over", tl.len())
	}
	// A fallen-back timeline stays exact.
	tl.push(rat.FromInt(1))
	if !tl.exact {
		t.Fatal("timeline left exact regime")
	}
}
