package online

import (
	"fmt"
	"sort"

	"desyncpfair/internal/rat"
)

// M returns the current processor count.
func (e *Executive) M() int { return e.m }

// Resize changes the processor count to m. Capacity changes are safe at
// quantum boundaries because PD²-DVQ recomputes allocations there anyway
// (Cho & Easwaran's flow-network argument), so:
//
//   - A grow adds processors that become free at the next quantum boundary
//     ⌈now⌉ (immediately when now is integral), and queues a boundary event
//     so stalled pending work is picked up without waiting for an unrelated
//     completion.
//   - A shrink is admission-checked first: it is rejected while the active
//     utilization Σwt exceeds m, because Theorem 3's tardiness bound would
//     be lost for every admitted task. A feasible shrink keeps the m
//     busiest processors (latest freeAt, ties broken by index — a stable,
//     deterministic rule WAL replay reproduces exactly): in-flight quanta
//     run to completion, and from the shrink on at most m new quanta start
//     per slot.
//
// Like every Executive method it must run on the executive's single
// goroutine. A no-op resize (m unchanged) returns nil without touching any
// state.
func (e *Executive) Resize(m int) error {
	if m < 1 {
		return fmt.Errorf("online: resize to m=%d; need m ≥ 1", m)
	}
	if m == e.m {
		return nil
	}
	if m < e.m {
		if rat.FromInt(int64(m)).Less(e.activeUtil) {
			return fmt.Errorf("online: shrink to m=%d infeasible: active utilization %s > %d would void the tardiness bound",
				m, e.activeUtil, m)
		}
		// Keep the m latest-free processors so no in-flight quantum loses
		// its completion record and no new work starts while dropped
		// processors wind down.
		sort.SliceStable(e.freeAt, func(i, j int) bool { return e.freeAt[j].Less(e.freeAt[i]) })
		e.freeAt = e.freeAt[:m:m]
	} else {
		boundary := rat.FromInt(e.now.Ceil())
		for p := e.m; p < m; p++ {
			e.freeAt = append(e.freeAt, boundary)
		}
		e.push(boundary)
	}
	e.m = m
	// The schedule's M is the validation bound for per-slot parallelism and
	// processor indices over the whole history, so it only ever grows.
	if m > e.schedule.M {
		e.schedule.M = m
	}
	return nil
}
