package online

import (
	"testing"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// The persistent OnDispatch hook must see every decision, whether driven by
// Run or Drain, and in addition to any per-Run callback.
func TestOnDispatchHook(t *testing.T) {
	ex := New(1, nil)
	task, err := ex.Register("a", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	var hooked, perRun []Dispatch
	ex.SetOnDispatch(func(d Dispatch) { hooked = append(hooked, d) })

	if err := ex.SubmitJob(task, rat.Zero); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(rat.FromInt(2), nil, func(d Dispatch) { perRun = append(perRun, d) }); err != nil {
		t.Fatal(err)
	}
	if err := ex.SubmitJob(task, rat.FromInt(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Drain(nil); err != nil {
		t.Fatal(err)
	}

	if len(hooked) != 2 {
		t.Fatalf("hook saw %d dispatches, want 2 (one via Run, one via Drain)", len(hooked))
	}
	if len(perRun) != 1 {
		t.Fatalf("per-Run callback saw %d dispatches, want 1", len(perRun))
	}
	if hooked[0] != perRun[0] {
		t.Errorf("hook and per-Run callback disagree: %+v vs %+v", hooked[0], perRun[0])
	}
	for i, d := range hooked {
		if d.Sub.Task != task || d.Sub.Index != int64(i+1) {
			t.Errorf("dispatch %d is %s, want %s_%d", i, d.Sub, task, i+1)
		}
	}

	ex.SetOnDispatch(nil) // removable
	if err := ex.SubmitJob(task, ex.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Drain(nil); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 2 {
		t.Errorf("hook fired after removal: saw %d dispatches", len(hooked))
	}
}

func TestUnregisterReclaimsCapacity(t *testing.T) {
	ex := New(1, nil)
	a, err := ex.Register("a", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ex.Register("b", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Full: 1/2 + 1/2 = 1 = M.
	if _, err := ex.Register("c", model.W(1, 4)); err == nil {
		t.Fatal("over-utilization register accepted")
	}

	if err := ex.SubmitJob(a, rat.Zero); err != nil {
		t.Fatal(err)
	}
	// a has pending work: unregister must refuse.
	if err := ex.Unregister(a); err == nil {
		t.Fatal("unregister with pending subtasks accepted")
	}
	if _, err := ex.Drain(nil); err != nil {
		t.Fatal(err)
	}
	if err := ex.Unregister(a); err != nil {
		t.Fatal(err)
	}
	if ex.Active(a) {
		t.Error("a still active after unregister")
	}
	if err := ex.Unregister(a); err == nil {
		t.Error("double unregister accepted")
	}
	if got, want := ex.ActiveUtilization(), rat.New(1, 2); !got.Equal(want) {
		t.Errorf("active utilization %s, want %s", got, want)
	}

	// Capacity reclaimed: a same-weight replacement fits again.
	c, err := ex.Register("c", model.W(1, 2))
	if err != nil {
		t.Fatalf("re-admission after unregister rejected: %v", err)
	}
	if err := ex.SubmitJob(c, ex.Now()); err != nil {
		t.Fatal(err)
	}
	// But the unregistered task may no longer submit.
	if err := ex.SubmitJob(a, ex.Now()); err == nil {
		t.Error("job for unregistered task accepted")
	}
	if _, err := ex.Drain(nil); err != nil {
		t.Fatal(err)
	}
	if err := ex.SubmitJob(b, ex.Now()); err != nil {
		t.Errorf("untouched task b rejected: %v", err)
	}
}
