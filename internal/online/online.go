// Package online provides a real-time executive on top of the DVQ-model
// scheduler: tasks are registered with weights, jobs arrive dynamically
// (sporadic/IS behaviour), subtask windows are derived lazily, and
// scheduling decisions are made incrementally as virtual time advances.
//
// The offline engines in internal/core and internal/sfq need the whole
// released-subtask sequence up front; a system that admits work at runtime
// cannot use them directly. The executive closes that gap while keeping
// the paper's guarantee: as long as total registered utilization stays
// ≤ M, every job's subtasks miss their Pfair pseudo-deadlines by at most
// one quantum (Theorem 3), because the generated release pattern is a
// legal IS task system and the dispatch rule is exactly PD²-DVQ.
//
// Typical use:
//
//	ex := online.New(2, nil)                  // two processors, PD²
//	web := ex.Register("web", model.W(1, 2))
//	ex.SubmitJob(web, rat.Zero)               // job arrives at time 0
//	ex.Run(rat.FromInt(10), nil)              // advance virtual time
//	ex.SubmitJob(web, rat.FromInt(10))        // next job arrives late — fine
//	ex.Run(rat.FromInt(50), nil)
//	fmt.Println(ex.Schedule().MaxTardiness())
//
// # Concurrency contract
//
// An Executive is single-goroutine: every method — Register, Unregister,
// SubmitJob, Run, Drain, and the accessors — must be called from one
// goroutine (or under one external lock). The OnDispatch hook set with
// SetOnDispatch is invoked synchronously on that same goroutine, while the
// executive's internal state is mid-update; the hook must not call back
// into the Executive. Callers that need concurrent access should wrap the
// Executive the way internal/server.Tenant does, with a single mutex
// around every call.
package online

import (
	"fmt"

	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// Executive is an incremental PD²-DVQ scheduler for dynamically arriving
// jobs. It is not safe for concurrent use; drive it from one goroutine.
type Executive struct {
	m      int
	policy prio.Policy

	sys      *model.System
	schedule *sched.Schedule

	active     []bool  // per task: still registered (accepting jobs, counted in utilization)
	activeUtil rat.Rat // Σ wt over active tasks
	onDispatch func(Dispatch)

	now      rat.Rat
	freeAt   []rat.Rat
	cursor   []int     // per task: next undispatched subtask in its sequence
	lastFin  []rat.Rat // per task: completion of the last dispatched subtask
	nextIdx  []int64   // per task: next subtask index to generate (1-based)
	pending  int       // released, undispatched subtasks
	decision int

	tl timeline
}

// Dispatch reports one scheduling decision to the Run callback.
// Decision is the executive-wide 1-based decision number (the same
// counter the schedule's assignments carry), so observability layers can
// correlate a hook invocation with its position in the dispatch sequence
// without holding extra state.
type Dispatch struct {
	Sub      *model.Subtask
	Proc     int
	Start    rat.Rat
	Finish   rat.Rat
	Decision int
}

// New creates an executive for m processors. A nil policy selects PD².
func New(m int, policy prio.Policy) *Executive {
	if m < 1 {
		panic("online: m must be ≥ 1")
	}
	if policy == nil {
		policy = prio.PD2{}
	}
	sys := model.NewSystem()
	e := &Executive{
		m:          m,
		policy:     policy,
		sys:        sys,
		schedule:   sched.New(sys, m, policy.Name(), "DVQ-online"),
		activeUtil: rat.Zero,
		freeAt:     make([]rat.Rat, m),
		tl:         newTimeline(),
	}
	return e
}

// Register adds a task with the given weight. Registration is admission
// control: it fails if the new total utilization of *active* tasks would
// exceed M, since the tardiness bound (and any schedulability statement)
// would be lost. Tasks removed with Unregister no longer count.
func (e *Executive) Register(name string, w model.Weight) (*model.Task, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if newTotal := e.activeUtil.Add(w.Rat()); rat.FromInt(int64(e.m)).Less(newTotal) {
		return nil, fmt.Errorf("online: registering %s (weight %s) would raise utilization to %s > M=%d",
			name, w, newTotal, e.m)
	}
	t := e.sys.AddTask(name, w)
	e.cursor = append(e.cursor, 0)
	e.lastFin = append(e.lastFin, rat.Zero)
	e.nextIdx = append(e.nextIdx, 1)
	e.active = append(e.active, true)
	e.activeUtil = e.activeUtil.Add(w.Rat())
	return t, nil
}

// Unregister removes t from the active set: its weight stops counting
// toward admission and further SubmitJob calls for it are rejected. It
// fails while t still has released-but-undispatched subtasks, because
// reclaiming the capacity of a task with queued work would void the
// tardiness bound for everyone else. Already-dispatched work stays in the
// schedule.
func (e *Executive) Unregister(t *model.Task) error {
	if t.ID < 0 || t.ID >= len(e.active) {
		return fmt.Errorf("online: unknown task %s", t)
	}
	if !e.active[t.ID] {
		return fmt.Errorf("online: task %s already unregistered", t)
	}
	if e.cursor[t.ID] < len(e.sys.Subtasks(t)) {
		return fmt.Errorf("online: task %s has %d undispatched subtasks; drain before unregistering",
			t, len(e.sys.Subtasks(t))-e.cursor[t.ID])
	}
	e.active[t.ID] = false
	e.activeUtil = e.activeUtil.Sub(t.W.Rat())
	return nil
}

// Active reports whether t is currently registered (counted in utilization
// and accepting jobs).
func (e *Executive) Active(t *model.Task) bool {
	return t.ID >= 0 && t.ID < len(e.active) && e.active[t.ID]
}

// ActiveUtilization returns Σ wt over currently registered tasks — the
// quantity Register admission-checks against M.
func (e *Executive) ActiveUtilization() rat.Rat { return e.activeUtil }

// Undispatched returns how many released subtasks of t have not been
// dispatched yet (the count that blocks Unregister).
func (e *Executive) Undispatched(t *model.Task) int {
	if t.ID < 0 || t.ID >= len(e.cursor) {
		return 0
	}
	return len(e.sys.Subtasks(t)) - e.cursor[t.ID]
}

// SetOnDispatch installs a persistent hook invoked for every scheduling
// decision, regardless of whether it was driven by Run or Drain (and in
// addition to any per-Run callback). The hook runs synchronously on the
// executive's goroutine — see the package comment's concurrency contract —
// so it must be fast and must not call back into the Executive. A nil
// hook removes it.
func (e *Executive) SetOnDispatch(fn func(Dispatch)) { e.onDispatch = fn }

// Now returns the executive's current virtual time.
func (e *Executive) Now() rat.Rat { return e.now }

// Schedule returns the schedule of everything dispatched so far.
func (e *Executive) Schedule() *sched.Schedule { return e.schedule }

// System returns the task system built up by job submissions.
func (e *Executive) System() *model.System { return e.sys }

// Pending returns the number of released but undispatched subtasks.
func (e *Executive) Pending() int { return e.pending }

// SubmitJob releases one job of t (W.E subtasks) no earlier than `at`. The
// subtasks get the smallest IS offsets consistent with eq. (5) and the
// arrival time, so a stream of SubmitJob calls at period boundaries yields
// exactly the periodic window pattern, and late calls yield the sporadic/IS
// right-shifted pattern. `at` must not precede virtual time.
func (e *Executive) SubmitJob(t *model.Task, at rat.Rat) error {
	return e.submit(t, at, 0)
}

// SubmitJobEarly is SubmitJob with early releasing: each subtask's
// eligibility is set up to `earliness` slots before its pseudo-release
// (but never before the arrival), per eq. (6). Early releasing lets PD²
// pull the job forward into slack without a second scheduler (the paper's
// Sec. 1 remark, experiment E13); optimality is unaffected.
func (e *Executive) SubmitJobEarly(t *model.Task, at rat.Rat, earliness int64) error {
	if earliness < 0 {
		return fmt.Errorf("online: negative earliness %d", earliness)
	}
	return e.submit(t, at, earliness)
}

func (e *Executive) submit(t *model.Task, at rat.Rat, earliness int64) error {
	if !e.Active(t) {
		return fmt.Errorf("online: job submitted for unregistered task %s", t)
	}
	if at.Less(e.now) {
		return fmt.Errorf("online: job of %s submitted at %s, before virtual time %s", t, at, e.now)
	}
	arrival := at.Ceil() // windows are integral; a mid-slot arrival rounds up
	seq := e.sys.Subtasks(t)
	prevTheta := int64(0)
	prevElig := int64(0)
	if len(seq) > 0 {
		prevTheta = seq[len(seq)-1].Theta
		prevElig = seq[len(seq)-1].Elig
	}
	for k := int64(0); k < t.W.E; k++ {
		i := e.nextIdx[t.ID]
		base := rat.FloorDiv((i-1)*t.W.P, t.W.E) // release with θ = 0
		theta := arrival - base
		if theta < prevTheta {
			theta = prevTheta // eq. (5): offsets never decrease
		}
		s := e.sys.AddSubtask(t, i, theta, 0)
		elig := s.Release() - earliness
		if elig < arrival {
			elig = arrival
		}
		if elig < prevElig {
			elig = prevElig
		}
		s.Elig = elig
		prevTheta = theta
		prevElig = elig
		e.nextIdx[t.ID] = i + 1
		e.pending++
		e.push(rat.FromInt(s.Elig))
	}
	return nil
}

// Run advances virtual time to `until`, dispatching work as processors free
// and subtasks become ready. The yield function supplies each dispatched
// subtask's actual cost (nil means full quanta). Each dispatch is reported
// to onDispatch if non-nil. Events beyond `until` stay queued for the next
// call.
func (e *Executive) Run(until rat.Rat, yield sched.YieldFn, onDispatch func(Dispatch)) error {
	if until.Less(e.now) {
		return fmt.Errorf("online: cannot run to %s, already at %s", until, e.now)
	}
	if yield == nil {
		yield = sched.FullCost
	}
	for e.tl.len() > 0 {
		next := e.tl.min()
		if until.Less(next) {
			break
		}
		e.tl.popMin()
		e.now = next
		e.dispatchAt(next, yield, onDispatch)
	}
	e.now = until
	return nil
}

// dispatchAt makes scheduling decisions for every processor free at time t.
func (e *Executive) dispatchAt(t rat.Rat, yield sched.YieldFn, onDispatch func(Dispatch)) {
	for p := 0; p < e.m; p++ {
		if t.Less(e.freeAt[p]) {
			continue
		}
		sub := e.bestReady(t)
		if sub == nil {
			return // nothing ready; no later processor can have work either
		}
		cost := yield(sub)
		e.decision++
		a := e.schedule.Add(sched.Assignment{
			Sub: sub, Proc: p, Start: t, Cost: cost, Decision: e.decision,
		})
		e.cursor[sub.Task.ID]++
		e.lastFin[sub.Task.ID] = a.Finish()
		e.freeAt[p] = a.Finish()
		e.pending--
		e.push(a.Finish())
		d := Dispatch{Sub: sub, Proc: p, Start: t, Finish: a.Finish(), Decision: e.decision}
		if onDispatch != nil {
			onDispatch(d)
		}
		if e.onDispatch != nil {
			e.onDispatch(d)
		}
	}
}

func (e *Executive) bestReady(t rat.Rat) *model.Subtask {
	var best *model.Subtask
	for _, task := range e.sys.Tasks {
		seq := e.sys.Subtasks(task)
		c := e.cursor[task.ID]
		if c >= len(seq) {
			continue
		}
		head := seq[c]
		if t.Less(rat.FromInt(head.Elig)) {
			continue
		}
		if c > 0 && t.Less(e.lastFin[task.ID]) {
			continue
		}
		if best == nil || prio.Order(e.policy, head, best) {
			best = head
		}
	}
	return best
}

// Drain runs until every released subtask has been dispatched and
// completed, returning the final virtual time. It is the natural way to
// finish a simulation after the last SubmitJob.
func (e *Executive) Drain(yield sched.YieldFn) (rat.Rat, error) {
	guard := 0
	for e.pending > 0 {
		if e.tl.len() == 0 {
			return e.now, fmt.Errorf("online: %d subtasks pending with no events", e.pending)
		}
		next := e.tl.min()
		if err := e.Run(next, yield, nil); err != nil {
			return e.now, err
		}
		guard++
		if guard > 4*e.schedule.Len()+4*e.pending+64 {
			return e.now, fmt.Errorf("online: drain did not converge")
		}
	}
	// Advance past the last completion so the schedule's makespan is final.
	// A restored executive's schedule restarts empty, but freeAt still
	// carries the pre-checkpoint completions; max(freeAt) is the makespan
	// of everything ever dispatched, so using it keeps Drain's final time
	// identical to an uninterrupted run's.
	end := e.schedule.Makespan()
	for _, f := range e.freeAt {
		end = rat.Max(end, f)
	}
	if e.now.Less(end) {
		if err := e.Run(end, yield, nil); err != nil {
			return e.now, err
		}
	}
	return e.now, nil
}

func (e *Executive) push(t rat.Rat) { e.tl.push(t) }
