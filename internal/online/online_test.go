package online

import (
	"math/rand"
	"testing"

	"desyncpfair/internal/core"
	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

func TestRegisterAdmissionControl(t *testing.T) {
	ex := New(2, nil)
	if _, err := ex.Register("a", model.W(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Register("b", model.W(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Register("c", model.W(1, 100)); err == nil {
		t.Error("utilization 2 + 1/100 on M=2 accepted")
	}
	if _, err := ex.Register("bad", model.W(3, 2)); err == nil {
		t.Error("invalid weight accepted")
	}
}

func TestNewPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0, nil)
}

// Submitting jobs exactly at their period boundaries reproduces the
// synchronous periodic window pattern, and the executive's dispatch matches
// the offline DVQ engine exactly.
func TestPeriodicSubmissionMatchesOfflineDVQ(t *testing.T) {
	weights := []model.Weight{model.W(1, 2), model.W(3, 4), model.W(1, 4), model.W(1, 2)}
	const m, horizon = 2, 12

	ex := New(m, nil)
	tasks := make([]*model.Task, len(weights))
	for i, w := range weights {
		task, err := ex.Register(string(rune('A'+i)), w)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	y := gen.UniformYield(17, 8)
	// Submit each task's jobs at its period boundaries, advancing time.
	for slot := int64(0); slot < horizon; slot++ {
		for i, w := range weights {
			if slot%w.P == 0 {
				if err := ex.SubmitJob(tasks[i], rat.FromInt(slot)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := ex.Run(rat.FromInt(slot+1), yieldByLabel(y), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ex.Drain(yieldByLabel(y)); err != nil {
		t.Fatal(err)
	}
	if err := ex.System().Validate(); err != nil {
		t.Fatalf("generated system invalid: %v", err)
	}
	if err := ex.Schedule().ValidateDVQ(); err != nil {
		t.Fatal(err)
	}

	// Offline reference on the equivalent periodic system.
	ref := model.Periodic(weights, horizon)
	refSched, err := core.RunDVQ(ref, core.DVQOptions{M: m, Yield: yieldByLabel(y)})
	if err != nil {
		t.Fatal(err)
	}
	// Compare per-subtask start times through (task name, index) keys.
	refStarts := map[string]rat.Rat{}
	for _, a := range refSched.Assignments() {
		refStarts[a.Sub.String()] = a.Start
	}
	for _, a := range ex.Schedule().Assignments() {
		want, ok := refStarts[a.Sub.String()]
		if !ok {
			t.Fatalf("online dispatched %s, absent offline", a.Sub)
		}
		if !a.Start.Equal(want) {
			t.Errorf("%s online at %s, offline at %s", a.Sub, a.Start, want)
		}
	}
	if ex.Schedule().Len() != refSched.Len() {
		t.Errorf("dispatched %d, offline %d", ex.Schedule().Len(), refSched.Len())
	}
}

// yieldByLabel makes a yield function keyed by the subtask's (name, index)
// label so online and offline runs (distinct Subtask pointers and task IDs)
// see identical costs.
func yieldByLabel(base sched.YieldFn) sched.YieldFn {
	type key struct {
		name string
		idx  int64
	}
	memo := map[key]rat.Rat{}
	return func(s *model.Subtask) rat.Rat {
		k := key{s.Task.Name, s.Index}
		if c, ok := memo[k]; ok {
			return c
		}
		// Derive deterministically from the label, not the pointer: rehash
		// through a fixed fake subtask identity.
		fake := &model.Subtask{Task: &model.Task{ID: int(k.name[0])}, Index: k.idx}
		c := base(fake)
		memo[k] = c
		return c
	}
}

// Sporadic arrivals: jobs submitted late produce right-shifted (IS) windows
// and the Theorem 3 bound still holds.
func TestSporadicArrivalsBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		ex := New(2, nil)
		weights := []model.Weight{model.W(1, 2), model.W(1, 2), model.W(1, 3), model.W(2, 3)}
		tasks := make([]*model.Task, len(weights))
		for i, w := range weights {
			task, err := ex.Register(string(rune('A'+i)), w)
			if err != nil {
				t.Fatal(err)
			}
			tasks[i] = task
		}
		y := gen.UniformYield(int64(trial), 8)
		next := make([]int64, len(weights))
		for slot := int64(0); slot < 24; slot++ {
			for i, w := range weights {
				if slot >= next[i] {
					if err := ex.SubmitJob(tasks[i], rat.FromInt(slot)); err != nil {
						t.Fatal(err)
					}
					next[i] = slot + w.P + rng.Int63n(3) // sporadic: ≥ period apart
				}
			}
			if err := ex.Run(rat.FromInt(slot+1), y, nil); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ex.Drain(y); err != nil {
			t.Fatal(err)
		}
		if err := ex.System().Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ex.Schedule().ValidateDVQ(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := ex.Schedule().MaxTardiness(); rat.One.Less(got) {
			t.Fatalf("trial %d: online tardiness %s > 1", trial, got)
		}
	}
}

func TestSubmitJobRejectsPast(t *testing.T) {
	ex := New(1, nil)
	task, err := ex.Register("T", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.SubmitJob(task, rat.Zero); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(rat.FromInt(5), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := ex.SubmitJob(task, rat.FromInt(3)); err == nil {
		t.Error("submission in the past accepted")
	}
}

func TestRunRejectsBackwards(t *testing.T) {
	ex := New(1, nil)
	if err := ex.Run(rat.FromInt(5), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(rat.FromInt(4), nil, nil); err == nil {
		t.Error("running backwards accepted")
	}
}

func TestDispatchCallbackAndPending(t *testing.T) {
	ex := New(1, nil)
	task, err := ex.Register("T", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.SubmitJob(task, rat.Zero); err != nil {
		t.Fatal(err)
	}
	if ex.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (weight 1/2 job has one subtask)", ex.Pending())
	}
	var got []Dispatch
	if err := ex.Run(rat.FromInt(4), nil, func(d Dispatch) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Sub.Index != 1 || !got[0].Start.Equal(rat.Zero) {
		t.Errorf("dispatches = %+v", got)
	}
	if ex.Pending() != 0 {
		t.Errorf("pending = %d after drain", ex.Pending())
	}
	if !ex.Now().Equal(rat.FromInt(4)) {
		t.Errorf("now = %s, want 4", ex.Now())
	}
}

// A mid-slot submission rounds to the next boundary (windows are integral).
func TestMidSlotSubmissionRoundsUp(t *testing.T) {
	ex := New(1, nil)
	task, err := ex.Register("T", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(rat.New(5, 2), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := ex.SubmitJob(task, rat.New(5, 2)); err != nil {
		t.Fatal(err)
	}
	seq := ex.System().Subtasks(task)
	if len(seq) != 1 || seq[0].Release() != 3 {
		t.Fatalf("release = %d, want 3 (⌈5/2⌉)", seq[0].Release())
	}
}

// Back-to-back bursty submission (several jobs queued at once) serializes
// correctly through the IS offsets.
func TestBurstSubmission(t *testing.T) {
	ex := New(1, nil)
	task, err := ex.Register("T", model.W(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if err := ex.SubmitJob(task, rat.Zero); err != nil {
			t.Fatal(err)
		}
	}
	if err := ex.System().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Drain(nil); err != nil {
		t.Fatal(err)
	}
	// Three jobs of cost 2 on one processor at weight 1/2: windows follow
	// the periodic pattern (offsets never decrease, releases every 2).
	seq := ex.System().Subtasks(task)
	if len(seq) != 6 {
		t.Fatalf("subtasks = %d", len(seq))
	}
	for k := 1; k < len(seq); k++ {
		if seq[k].Release() < seq[k-1].Release() {
			t.Error("releases decreased")
		}
	}
	if got := ex.Schedule().MaxTardiness(); rat.One.Less(got) {
		t.Errorf("burst tardiness %s > 1", got)
	}
}

func TestDrainOnEmptyExecutive(t *testing.T) {
	ex := New(2, nil)
	if _, err := ex.Drain(nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitJobEarly(t *testing.T) {
	ex := New(1, nil)
	task, err := ex.Register("T", model.W(2, 6))
	if err != nil {
		t.Fatal(err)
	}
	// Job arrives at 0; second subtask's release is 3, eligibility pulled
	// to 1 with earliness 2.
	if err := ex.SubmitJobEarly(task, rat.Zero, 2); err != nil {
		t.Fatal(err)
	}
	seq := ex.System().Subtasks(task)
	if len(seq) != 2 {
		t.Fatalf("subtasks = %d", len(seq))
	}
	if seq[1].Release() != 3 || seq[1].Elig != 1 {
		t.Errorf("T_2 r=%d e=%d, want r=3 e=1", seq[1].Release(), seq[1].Elig)
	}
	if err := ex.System().Validate(); err != nil {
		t.Fatal(err)
	}
	// On an otherwise idle processor, the early-released subtask runs well
	// before its pseudo-release.
	if _, err := ex.Drain(nil); err != nil {
		t.Fatal(err)
	}
	a := ex.Schedule().Of(seq[1])
	if !a.Start.Equal(rat.One) {
		t.Errorf("T_2 started at %s, want 1 (early released)", a.Start)
	}
	if err := ex.SubmitJobEarly(task, rat.FromInt(6), -1); err == nil {
		t.Error("negative earliness accepted")
	}
}

// Eligibility never precedes the arrival even with large earliness.
func TestSubmitJobEarlyClampsToArrival(t *testing.T) {
	ex := New(1, nil)
	task, err := ex.Register("T", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(rat.FromInt(5), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := ex.SubmitJobEarly(task, rat.FromInt(5), 100); err != nil {
		t.Fatal(err)
	}
	sub := ex.System().Subtasks(task)[0]
	if sub.Elig != 5 {
		t.Errorf("eligibility %d, want clamped to arrival 5", sub.Elig)
	}
}

// FuzzExecutive drives random register/submit/run sequences through the
// online executive and asserts the structural invariants and the Theorem 3
// bound on whatever was dispatched.
func FuzzExecutive(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(4))
	f.Add(int64(9), uint8(2), uint8(8))
	f.Add(int64(-3), uint8(1), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, mRaw, steps uint8) {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + int(mRaw%3)
		ex := New(m, nil)
		var tasks []*model.Task
		now := int64(0)
		for step := 0; step < int(steps%24)+1; step++ {
			switch rng.Intn(4) {
			case 0: // register (may be refused by admission control)
				p := int64(2 + rng.Intn(5))
				e := 1 + rng.Int63n(p)
				if task, err := ex.Register("t", model.W(e, p)); err == nil {
					tasks = append(tasks, task)
				}
			case 1: // submit, possibly early-released
				if len(tasks) > 0 {
					task := tasks[rng.Intn(len(tasks))]
					if rng.Intn(2) == 0 {
						_ = ex.SubmitJob(task, rat.FromInt(now))
					} else {
						_ = ex.SubmitJobEarly(task, rat.FromInt(now), rng.Int63n(3))
					}
				}
			default: // advance time
				now += rng.Int63n(3) + 1
				if err := ex.Run(rat.FromInt(now), gen.UniformYield(seed, 8), nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := ex.Drain(gen.UniformYield(seed, 8)); err != nil {
			t.Fatal(err)
		}
		if err := ex.System().Validate(); err != nil {
			t.Fatalf("executive built an invalid system: %v", err)
		}
		if err := ex.Schedule().ValidateDVQ(); err != nil {
			t.Fatal(err)
		}
		if got := ex.Schedule().MaxTardiness(); rat.One.Less(got) {
			t.Fatalf("online tardiness %s > 1", got)
		}
	})
}
