package online

import (
	"fmt"
	"testing"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

func TestResizeValidation(t *testing.T) {
	e := New(2, nil)
	if err := e.Resize(0); err == nil {
		t.Fatal("Resize(0) accepted")
	}
	if err := e.Resize(-3); err == nil {
		t.Fatal("Resize(-3) accepted")
	}
	if err := e.Resize(2); err != nil {
		t.Fatalf("no-op resize failed: %v", err)
	}
	if e.M() != 2 {
		t.Fatalf("M() = %d, want 2", e.M())
	}
}

func TestResizeShrinkBelowUtilizationRejected(t *testing.T) {
	e := New(2, nil)
	if _, err := e.Register("a", model.W(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("b", model.W(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Σwt = 3/2 > 1: the shrink must be rejected and the state untouched.
	if err := e.Resize(1); err == nil {
		t.Fatal("shrink below Σwt accepted")
	}
	if e.M() != 2 || len(e.freeAt) != 2 {
		t.Fatalf("rejected shrink mutated state: m=%d freeAt=%d", e.M(), len(e.freeAt))
	}
	if err := e.Resize(2); err != nil {
		t.Fatal(err)
	}
}

// TestResizeGrowAddsCapacityAtBoundary: on one processor two weight-1/2
// tasks serialize; after growing to two processors mid-run, released work
// runs in parallel from the next quantum boundary on.
func TestResizeGrowAddsCapacityAtBoundary(t *testing.T) {
	e := New(1, nil)
	a, err := e.Register("a", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Register("b", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	var log []Dispatch
	e.SetOnDispatch(func(d Dispatch) { log = append(log, d) })
	for _, task := range []*model.Task{a, b} {
		if err := e.SubmitJob(task, rat.Zero); err != nil {
			t.Fatal(err)
		}
		if err := e.SubmitJob(task, rat.Zero); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(rat.New(1, 2), nil, nil); err != nil { // mid-slot: boundary is 1
		t.Fatal(err)
	}
	if err := e.Resize(2); err != nil {
		t.Fatal(err)
	}
	if e.M() != 2 || len(e.freeAt) != 2 {
		t.Fatalf("after grow: m=%d freeAt=%d", e.M(), len(e.freeAt))
	}
	if _, err := e.Drain(nil); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after drain", e.Pending())
	}
	// The new processor joined at ⌈1/2⌉ = 1, so two dispatches share a
	// start time from slot 1 on.
	starts := map[string]int{}
	for _, d := range log {
		starts[d.Start.String()]++
	}
	parallel := false
	for _, n := range starts {
		if n > 1 {
			parallel = true
		}
	}
	if !parallel {
		t.Fatalf("no parallel dispatches after grow: %d decisions, starts %v", len(log), starts)
	}
	if one := rat.One; one.Less(e.Schedule().MaxTardiness()) {
		t.Fatalf("tardiness %s > 1 across grow", e.Schedule().MaxTardiness())
	}
}

// TestResizeShrinkKeepsInFlightWork: a feasible shrink drops idle
// processors, keeps the busiest, and the remaining capacity still serves
// everything within the bound.
func TestResizeShrinkKeepsInFlightWork(t *testing.T) {
	e := New(3, nil)
	a, err := e.Register("a", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitJob(a, rat.Zero); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(rat.New(1, 4), nil, nil); err != nil {
		t.Fatal(err)
	}
	busy := rat.Zero
	for _, f := range e.freeAt {
		busy = rat.Max(busy, f)
	}
	if err := e.Resize(1); err != nil {
		t.Fatalf("feasible shrink rejected: %v", err)
	}
	if e.M() != 1 || len(e.freeAt) != 1 {
		t.Fatalf("after shrink: m=%d freeAt=%d", e.M(), len(e.freeAt))
	}
	// The kept processor is the busiest one (latest freeAt).
	if !e.freeAt[0].Equal(busy) {
		t.Fatalf("shrink kept freeAt=%s, want the busiest %s", e.freeAt[0], busy)
	}
	if err := e.SubmitJob(a, e.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Drain(nil); err != nil {
		t.Fatal(err)
	}
	if one := rat.One; one.Less(e.Schedule().MaxTardiness()) {
		t.Fatalf("tardiness %s > 1 across shrink", e.Schedule().MaxTardiness())
	}
}

// TestResizeCheckpointRoundTrip: a resized executive checkpoints with the
// new M and restores to identical state.
func TestResizeCheckpointRoundTrip(t *testing.T) {
	e := New(1, nil)
	a, err := e.Register("a", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitJob(a, rat.Zero); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(rat.New(1, 2), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Resize(3); err != nil {
		t.Fatal(err)
	}
	cp := e.Checkpoint()
	if cp.M != 3 || len(cp.FreeAt) != 3 {
		t.Fatalf("checkpoint m=%d freeAt=%d after resize", cp.M, len(cp.FreeAt))
	}
	r, err := Restore(cp)
	if err != nil {
		t.Fatal(err)
	}
	if r.M() != 3 {
		t.Fatalf("restored m=%d", r.M())
	}
}

// FuzzResize drives arbitrary grow/shrink sequences interleaved with
// submits and runs: no input may panic, a shrink below Σwt must always be
// rejected with no state change, and every accepted resize must leave
// m == len(freeAt) and keep the one-quantum tardiness bound.
func FuzzResize(f *testing.F) {
	f.Add([]byte{0, 1, 10, 3, 17, 2, 4})
	f.Add([]byte{0, 0, 9, 1, 1, 25, 2, 33, 4, 8})
	f.Add([]byte{16, 3, 3, 3, 24, 1, 2, 40, 4})
	f.Fuzz(func(t *testing.T, ops []byte) {
		e := New(2, nil)
		weights := []model.Weight{model.W(1, 2), model.W(2, 3), model.W(1, 4), model.W(1, 1)}
		var tasks []*model.Task
		for _, b := range ops {
			switch b % 5 {
			case 0: // register (admission may reject; either way no panic)
				w := weights[int(b>>3)%len(weights)]
				if task, err := e.Register(fmt.Sprintf("t%d", len(tasks)), w); err == nil {
					tasks = append(tasks, task)
				}
			case 1: // submit
				if len(tasks) > 0 {
					_ = e.SubmitJob(tasks[int(b>>3)%len(tasks)], e.Now())
				}
			case 2: // run forward
				if err := e.Run(e.Now().Add(rat.New(int64(1+int(b>>3)%4), 2)), nil, nil); err != nil {
					t.Fatalf("run: %v", err)
				}
			case 3: // resize
				target := 1 + int(b>>3)%6
				before := e.M()
				err := e.Resize(target)
				infeasible := rat.FromInt(int64(target)).Less(e.ActiveUtilization())
				if infeasible && err == nil {
					t.Fatalf("shrink to %d below Σwt=%s silently applied", target, e.ActiveUtilization())
				}
				if !infeasible && err != nil {
					t.Fatalf("feasible resize %d→%d rejected: %v", before, target, err)
				}
				if err != nil && e.M() != before {
					t.Fatalf("rejected resize mutated m: %d → %d", before, e.M())
				}
				if err == nil && e.M() != target {
					t.Fatalf("accepted resize left m=%d, want %d", e.M(), target)
				}
				if len(e.freeAt) != e.M() {
					t.Fatalf("m=%d but %d freeAt entries", e.M(), len(e.freeAt))
				}
			case 4: // drain
				if _, err := e.Drain(nil); err != nil {
					t.Fatalf("drain: %v", err)
				}
			}
		}
		if _, err := e.Drain(nil); err != nil {
			t.Fatalf("final drain: %v", err)
		}
		if one := rat.One; one.Less(e.Schedule().MaxTardiness()) {
			t.Fatalf("tardiness %s > 1 across resize sequence", e.Schedule().MaxTardiness())
		}
	})
}
