package online

import (
	"encoding/json"
	"math/rand"
	"testing"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// driveScript applies a deterministic mixed workload to an executive,
// returning every dispatch it produced. Steps are keyed off a seeded rng
// so different seeds give different interleavings of submit/run/drain and
// of grow/shrink resizes (targets 2..4 stay feasible for the Σwt = 17/12
// task set every caller registers).
func driveScript(t *testing.T, e *Executive, tasks []*model.Task, rng *rand.Rand, steps int, from int) []Dispatch {
	t.Helper()
	var out []Dispatch
	e.SetOnDispatch(func(d Dispatch) { out = append(out, d) })
	defer e.SetOnDispatch(nil)
	for i := from; i < steps; i++ {
		switch i % 5 {
		case 0, 1:
			task := tasks[rng.Intn(len(tasks))]
			if err := e.SubmitJob(task, e.Now()); err != nil {
				t.Fatalf("step %d submit: %v", i, err)
			}
		case 2:
			by := rat.New(int64(1+rng.Intn(4)), 2) // 1/2 .. 2
			if err := e.Run(e.Now().Add(by), nil, nil); err != nil {
				t.Fatalf("step %d run: %v", i, err)
			}
		case 3:
			if _, err := e.Drain(nil); err != nil {
				t.Fatalf("step %d drain: %v", i, err)
			}
		case 4:
			if err := e.Resize(2 + rng.Intn(3)); err != nil {
				t.Fatalf("step %d resize: %v", i, err)
			}
		}
	}
	return out
}

func key(d Dispatch) [6]string {
	return [6]string{
		d.Sub.Task.Name,
		rat.FromInt(d.Sub.Index).String(),
		rat.FromInt(int64(d.Proc)).String(),
		d.Start.String(),
		d.Finish.String(),
		"",
	}
}

// TestCheckpointRestoreContinuesIdentically pins the determinism contract
// recovery is built on: checkpoint an executive mid-run, restore it, feed
// both the same remaining script — the dispatch sequences must match
// decision for decision. The script includes mid-run Resize calls, so the
// contract covers capacity changes: a checkpoint taken after (or between)
// resizes restores to the resized M and continues identically.
func TestCheckpointRestoreContinuesIdentically(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		// Reference: one uninterrupted run of the full script.
		ref := New(2, nil)
		refTasks := []*model.Task{}
		for _, w := range []model.Weight{model.W(1, 2), model.W(2, 3), model.W(1, 4)} {
			task, err := ref.Register("t"+w.String(), w)
			if err != nil {
				t.Fatal(err)
			}
			refTasks = append(refTasks, task)
		}
		const steps, cut = 40, 17
		rng := rand.New(rand.NewSource(seed))
		refAll := driveScript(t, ref, refTasks, rng, steps, 0)

		// Interrupted: same prefix, checkpoint through JSON (the form that
		// reaches disk), restore, same suffix. The rng must be re-seeded
		// and re-consumed identically, so re-run the prefix on a twin.
		twin := New(2, nil)
		twinTasks := []*model.Task{}
		for _, w := range []model.Weight{model.W(1, 2), model.W(2, 3), model.W(1, 4)} {
			task, _ := twin.Register("t"+w.String(), w)
			twinTasks = append(twinTasks, task)
		}
		rng2 := rand.New(rand.NewSource(seed))
		prefix := driveScript(t, twin, twinTasks, rng2, cut, 0)

		buf, err := json.Marshal(twin.Checkpoint())
		if err != nil {
			t.Fatal(err)
		}
		var cp Checkpoint
		if err := json.Unmarshal(buf, &cp); err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(cp)
		if err != nil {
			t.Fatalf("seed %d: Restore: %v", seed, err)
		}
		if !restored.Now().Equal(twin.Now()) {
			t.Fatalf("seed %d: restored now %s != %s", seed, restored.Now(), twin.Now())
		}
		if restored.Pending() != twin.Pending() {
			t.Fatalf("seed %d: restored pending %d != %d", seed, restored.Pending(), twin.Pending())
		}
		if !restored.ActiveUtilization().Equal(twin.ActiveUtilization()) {
			t.Fatalf("seed %d: restored utilization %s != %s", seed, restored.ActiveUtilization(), twin.ActiveUtilization())
		}
		if restored.M() != twin.M() {
			t.Fatalf("seed %d: restored m %d != %d", seed, restored.M(), twin.M())
		}
		// Tasks in a restored executive are new objects; look them up by
		// position (registration order is preserved).
		resTasks := restored.System().Tasks[:len(twinTasks)]
		suffix := driveScript(t, restored, resTasks, rng2, steps, cut)

		if len(prefix)+len(suffix) != len(refAll) {
			t.Fatalf("seed %d: %d+%d dispatches across checkpoint, reference made %d",
				seed, len(prefix), len(suffix), len(refAll))
		}
		for i, d := range refAll {
			var got Dispatch
			if i < len(prefix) {
				got = prefix[i]
			} else {
				got = suffix[i-len(prefix)]
			}
			if key(got) != key(d) {
				t.Fatalf("seed %d: decision %d diverged: got %s[%d] p%d %s→%s, want %s[%d] p%d %s→%s",
					seed, i,
					got.Sub.Task.Name, got.Sub.Index, got.Proc, got.Start, got.Finish,
					d.Sub.Task.Name, d.Sub.Index, d.Proc, d.Start, d.Finish)
			}
		}

		// And the tardiness bound survives the restore (Theorem 3).
		if one := rat.One; one.Less(restored.Schedule().MaxTardiness()) {
			t.Fatalf("seed %d: post-restore tardiness %s > 1", seed, restored.Schedule().MaxTardiness())
		}
	}
}

// TestRestoreRejectsCorruptCheckpoints exercises the validation that makes
// disk input untrusted.
func TestRestoreRejectsCorruptCheckpoints(t *testing.T) {
	e := New(2, nil)
	task, err := e.Register("a", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitJob(task, rat.Zero); err != nil {
		t.Fatal(err)
	}
	good := e.Checkpoint()

	mutate := []struct {
		name string
		fn   func(cp *Checkpoint)
	}{
		{"unknown policy", func(cp *Checkpoint) { cp.Policy = "FIFO" }},
		{"bad m", func(cp *Checkpoint) { cp.M = 0 }},
		{"freeAt length", func(cp *Checkpoint) { cp.FreeAt = cp.FreeAt[:1] }},
		{"bad now", func(cp *Checkpoint) { cp.Now = "not-a-rat" }},
		{"bad weight", func(cp *Checkpoint) { cp.Tasks[0].E = 0 }},
		{"cursor out of range", func(cp *Checkpoint) { cp.Tasks[0].Cursor = 99 }},
		{"pending mismatch", func(cp *Checkpoint) { cp.Pending += 1 }},
		{"overload", func(cp *Checkpoint) {
			cp.Tasks = append(cp.Tasks, TaskCheckpoint{Name: "b", E: 9, P: 4, Active: true, LastFin: "0", NextIdx: 1})
		}},
		{"theta regression", func(cp *Checkpoint) {
			cp.Tasks[0].Subs = append(cp.Tasks[0].Subs, SubtaskCheckpoint{Index: 99, Theta: -5})
			cp.Pending++
		}},
	}
	for _, m := range mutate {
		t.Run(m.name, func(t *testing.T) {
			buf, _ := json.Marshal(good)
			var cp Checkpoint
			if err := json.Unmarshal(buf, &cp); err != nil {
				t.Fatal(err)
			}
			m.fn(&cp)
			if _, err := Restore(cp); err == nil {
				t.Fatalf("Restore accepted a checkpoint with %s", m.name)
			}
		})
	}

	// The unmutated original restores fine.
	if _, err := Restore(good); err != nil {
		t.Fatalf("Restore rejected a healthy checkpoint: %v", err)
	}
}
