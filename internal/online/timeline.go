package online

import (
	"container/heap"
	"sort"

	"desyncpfair/internal/rat"
)

// timeline is the executive's event queue: the set of future quantum
// boundaries (eligibility times and completion times) at which scheduling
// decisions are made. It has two regimes.
//
// In the lattice regime — the common case, where every queued time lives
// on one fixed-point grid k/L — events are int64 tick counts in a
// hand-rolled binary min-heap: sift comparisons are single integer
// compares instead of Rat.Less cross multiplications, and deduplication
// hashes an int64 instead of a two-word struct. The lattice grows by LCM
// as new denominators arrive (rescaling the queued ticks, which preserves
// heap order because the scale factor is positive).
//
// When a time cannot be represented — the LCM of denominators or a tick
// count overflows int64 — the timeline migrates every queued tick to the
// exact rat heap and stays in the exact regime permanently. The exact
// engine is the oracle: both regimes pop identical values in identical
// order, so dispatch decisions (and therefore checkpoints, WAL replay,
// and the Theorem 3 bound) are invariant under the regime switch.
type timeline struct {
	lat   rat.Lattice
	ticks []int64
	tseen map[int64]struct{}

	exact  bool
	events eventHeap
	seen   map[rat.Rat]bool
}

func newTimeline() timeline {
	return timeline{tseen: map[int64]struct{}{}}
}

func (tl *timeline) len() int {
	if tl.exact {
		return len(tl.events)
	}
	return len(tl.ticks)
}

// min returns the earliest queued time. Call only when len() > 0. Both
// regimes return the same canonical reduced rational.
func (tl *timeline) min() rat.Rat {
	if tl.exact {
		return tl.events[0]
	}
	return tl.lat.ToRat(tl.ticks[0])
}

// popMin removes the earliest queued time.
func (tl *timeline) popMin() {
	if tl.exact {
		t := tl.events[0]
		heap.Pop(&tl.events)
		delete(tl.seen, t)
		return
	}
	t := tl.ticks[0]
	delete(tl.tseen, t)
	n := len(tl.ticks) - 1
	tl.ticks[0] = tl.ticks[n]
	tl.ticks = tl.ticks[:n]
	tl.down(0)
}

// push queues a time, deduplicating. In the lattice regime it extends the
// lattice as needed; any overflow falls back to the exact regime.
func (tl *timeline) push(r rat.Rat) {
	if !tl.exact {
		if t, ok := tl.tick(r); ok {
			if _, dup := tl.tseen[t]; !dup {
				tl.tseen[t] = struct{}{}
				tl.ticks = append(tl.ticks, t)
				tl.up(len(tl.ticks) - 1)
			}
			return
		}
		tl.fallback()
	}
	if !tl.seen[r] {
		if tl.seen == nil {
			tl.seen = map[rat.Rat]bool{}
		}
		tl.seen[r] = true
		heap.Push(&tl.events, r)
	}
}

// all returns the queued times sorted ascending — the checkpoint order.
func (tl *timeline) all() []rat.Rat {
	if tl.exact {
		out := append([]rat.Rat(nil), tl.events...)
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		return out
	}
	ts := append([]int64(nil), tl.ticks...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := make([]rat.Rat, len(ts))
	for i, t := range ts {
		out[i] = tl.lat.ToRat(t)
	}
	return out
}

// tick converts r to ticks on the current lattice, extending the lattice
// (and rescaling the queued ticks) when r's denominator is new. ok=false
// means r cannot be represented — the caller must fall back.
func (tl *timeline) tick(r rat.Rat) (int64, bool) {
	if t, ok := tl.lat.FromRat(r); ok {
		return t, true
	}
	ext, ok := tl.lat.Extend(r.Den())
	if !ok {
		return 0, false
	}
	t, ok := ext.FromRat(r)
	if !ok {
		return 0, false
	}
	scaled := make([]int64, len(tl.ticks))
	for i, q := range tl.ticks {
		s, ok := tl.lat.Rescale(q, ext)
		if !ok {
			return 0, false
		}
		scaled[i] = s
	}
	// Commit: positive uniform scaling preserves heap order, so the
	// rescaled slice is still a valid min-heap.
	tl.lat = ext
	tl.ticks = scaled
	tl.tseen = make(map[int64]struct{}, len(scaled))
	for _, q := range scaled {
		tl.tseen[q] = struct{}{}
	}
	return t, true
}

// fallback migrates the queue to the exact regime, permanently.
func (tl *timeline) fallback() {
	tl.exact = true
	if tl.seen == nil {
		tl.seen = make(map[rat.Rat]bool, len(tl.ticks))
	}
	for _, t := range tl.ticks {
		r := tl.lat.ToRat(t)
		if !tl.seen[r] {
			tl.seen[r] = true
			heap.Push(&tl.events, r)
		}
	}
	tl.ticks, tl.tseen = nil, nil
}

func (tl *timeline) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if tl.ticks[p] <= tl.ticks[i] {
			return
		}
		tl.ticks[p], tl.ticks[i] = tl.ticks[i], tl.ticks[p]
		i = p
	}
}

func (tl *timeline) down(i int) {
	n := len(tl.ticks)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && tl.ticks[l] < tl.ticks[s] {
			s = l
		}
		if r < n && tl.ticks[r] < tl.ticks[s] {
			s = r
		}
		if s == i {
			return
		}
		tl.ticks[i], tl.ticks[s] = tl.ticks[s], tl.ticks[i]
		i = s
	}
}

type eventHeap []rat.Rat

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].Less(h[j]) }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(rat.Rat)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
