package baseline

import (
	"math/rand"
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
)

func TestGlobalEDFScedulesLowUtilization(t *testing.T) {
	// Utilization 1 on 2 processors: global EDF has no trouble.
	ws := []model.Weight{model.W(1, 2), model.W(1, 4), model.W(1, 4)}
	r := GlobalEDF(ws, 2, 8)
	if r.Misses != 0 {
		t.Errorf("misses = %d, want 0", r.Misses)
	}
	if r.Jobs != 4+2+2 {
		t.Errorf("jobs = %d, want 8", r.Jobs)
	}
}

// The Dhall effect: M light tasks with slightly earlier deadlines starve a
// heavy task under global EDF even though total utilization ≤ M.
func TestGlobalEDFDhallEffect(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		ws := make([]model.Weight, 0, m+1)
		for i := 0; i < m; i++ {
			ws = append(ws, model.W(1, 9))
		}
		ws = append(ws, model.W(10, 10)) // weight-1 task
		// Total utilization m/9 + 1 ≤ m for m ≥ 2.
		r := GlobalEDF(ws, m, 10)
		if r.Misses == 0 {
			t.Errorf("M=%d: expected Dhall-effect misses under global EDF", m)
		}
	}
}

func TestGlobalEDFTardinessTracked(t *testing.T) {
	ws := []model.Weight{model.W(1, 9), model.W(1, 9), model.W(10, 10)}
	r := GlobalEDF(ws, 2, 10)
	if r.MaxTardiness < 1 {
		t.Errorf("max tardiness = %d, want ≥ 1", r.MaxTardiness)
	}
}

func TestPartitionFFDPacksWhenPossible(t *testing.T) {
	ws := []model.Weight{model.W(1, 2), model.W(1, 2), model.W(1, 2), model.W(1, 2)}
	bins, err := PartitionFFD(ws, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins[0]) != 2 || len(bins[1]) != 2 {
		t.Errorf("bins = %v, want 2+2", bins)
	}
}

// M+1 tasks of weight just over 1/2 cannot be partitioned onto M
// processors even though total utilization ≈ (M+1)/2 ≤ M: the classical
// ~50% utilization cap of partitioned schemes (paper's Sec. 1).
func TestPartitionFFDUtilizationCap(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		ws := make([]model.Weight, m+1)
		for i := range ws {
			ws[i] = model.W(6, 11) // 6/11 > 1/2
		}
		if _, err := PartitionFFD(ws, m); err == nil {
			t.Errorf("M=%d: %d tasks of weight 6/11 should not partition", m, m+1)
		}
	}
}

func TestPartitionedEDFZeroMissesWhenPartitioned(t *testing.T) {
	ws := []model.Weight{model.W(1, 2), model.W(1, 3), model.W(1, 2), model.W(1, 3)}
	r, err := PartitionedEDF(ws, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if r.Misses != 0 {
		t.Errorf("misses = %d, want 0", r.Misses)
	}
	if r.Jobs == 0 {
		t.Error("no jobs simulated")
	}
}

func TestPartitionedEDFErrorWhenUnpartitionable(t *testing.T) {
	ws := []model.Weight{model.W(6, 11), model.W(6, 11), model.W(6, 11)}
	if _, err := PartitionedEDF(ws, 2, 22); err == nil {
		t.Error("expected partition failure")
	}
}

// DFS at full utilization behaves like EPDF: on two processors it meets all
// pseudo-deadlines; its misses stay bounded elsewhere.
func TestDFSOnTwoProcessors(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		q := int64(6 + rng.Intn(6))
		n := 3 + rng.Intn(4)
		if int64(n) > 2*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, 2*q, gen.MixedWeights)
		r := DFS(ws, 2, 2*q, false)
		if r.Misses != 0 {
			t.Errorf("trial %d: DFS misses = %d on M=2 (EPDF is optimal there)", trial, r.Misses)
		}
	}
}

// The auxiliary scheduler only activates when the system has slack.
func TestDFSAuxiliaryScheduler(t *testing.T) {
	// Utilization 1 on 2 processors: one processor is always idle for the
	// primary scheduler; the auxiliary one hands it to ineligible tasks.
	// Weights 2/4 (not 1/2) so jobs span two quanta and run-ahead within an
	// arrived job is possible.
	ws := []model.Weight{model.W(2, 4), model.W(2, 4)}
	strict := DFS(ws, 2, 12, false)
	wc := DFS(ws, 2, 12, true)
	if strict.AuxQuanta != 0 {
		t.Errorf("non-work-conserving DFS granted %d aux quanta", strict.AuxQuanta)
	}
	if wc.AuxQuanta == 0 {
		t.Error("work-conserving DFS granted no aux quanta despite slack")
	}
	if wc.Misses != 0 {
		t.Errorf("work-conserving DFS misses = %d, want 0", wc.Misses)
	}
}

// At full utilization there is no slack, so work conservation changes
// nothing and all deadlines are met on M = 2.
func TestDFSFullUtilizationNoAux(t *testing.T) {
	ws := []model.Weight{model.W(1, 2), model.W(1, 2), model.W(1, 2), model.W(1, 2)}
	r := DFS(ws, 2, 12, true)
	if r.AuxQuanta != 0 {
		t.Errorf("aux quanta = %d at full utilization", r.AuxQuanta)
	}
	if r.Misses != 0 {
		t.Errorf("misses = %d", r.Misses)
	}
}

func TestDFSSubtaskAccounting(t *testing.T) {
	ws := []model.Weight{model.W(3, 4)}
	r := DFS(ws, 1, 8, false)
	if r.Subtasks != 6 { // two jobs of cost 3
		t.Errorf("subtasks = %d, want 6", r.Subtasks)
	}
	if r.Misses != 0 {
		t.Errorf("misses = %d", r.Misses)
	}
}

func TestEDFMissRate(t *testing.T) {
	r := EDFResult{Jobs: 10, Misses: 3}
	if got := r.MissRate(); got != 0.3 {
		t.Errorf("miss rate = %f", got)
	}
	var zero EDFResult
	if zero.MissRate() != 0 {
		t.Error("zero jobs miss rate should be 0")
	}
}
