package baseline

import (
	"fmt"
	"math"
	"sort"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// Rate-monotonic baselines. The paper's Sec. 1 cites the ~50% worst-case
// utilization caps of non-Pfair approaches via Lopez et al. (EDF), Baruah
// (fixed-priority) and Andersson & Jonsson (partitioned/global
// static-priority). RM is the canonical static-priority policy, and the
// original Dhall effect was exhibited under global RM; these schedulers
// complete the comparison set of experiment E10.

// GlobalRM schedules the periodic system with global, preemptive,
// job-level rate-monotonic priorities (shorter period = higher priority,
// fixed per task) at quantum granularity.
func GlobalRM(weights []model.Weight, m int, horizon int64) EDFResult {
	jobs := jobsOf(weights, horizon)
	return runJobEDF(jobs, func(t int64, active []*Job) []*Job {
		sort.SliceStable(active, func(i, j int) bool {
			pi, pj := weights[active[i].Task].P, weights[active[j].Task].P
			if pi != pj {
				return pi < pj
			}
			return active[i].Task < active[j].Task
		})
		if len(active) > m {
			active = active[:m]
		}
		return active
	})
}

// LiuLaylandBound returns the classical uniprocessor RM utilization bound
// n·(2^{1/n} − 1) for n tasks.
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// PartitionFFDRM partitions tasks onto m processors first-fit decreasing,
// admitting a task to a processor only if the bin's utilization stays
// within the Liu–Layland bound for its new task count — the standard
// sufficient schedulability test for per-processor RM.
func PartitionFFDRM(weights []model.Weight, m int) ([][]int, error) {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := weights[order[a]], weights[order[b]]
		return wa.E*wb.P > wb.E*wa.P
	})
	bins := make([][]int, m)
	loads := make([]rat.Rat, m)
	for _, ti := range order {
		placed := false
		for b := 0; b < m; b++ {
			newLoad := loads[b].Add(weights[ti].Rat())
			if newLoad.Float64() <= LiuLaylandBound(len(bins[b])+1) {
				bins[b] = append(bins[b], ti)
				loads[b] = newLoad
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("baseline: task %d (weight %s) admitted by no processor under Liu–Layland", ti, weights[ti])
		}
	}
	return bins, nil
}

// PartitionedRM partitions with PartitionFFDRM and runs per-processor RM.
// A successful Liu–Layland partition guarantees zero misses; the simulation
// is still performed so results are uniformly empirical.
func PartitionedRM(weights []model.Weight, m int, horizon int64) (EDFResult, error) {
	bins, err := PartitionFFDRM(weights, m)
	if err != nil {
		return EDFResult{}, err
	}
	var total EDFResult
	for _, bin := range bins {
		sub := make([]model.Weight, len(bin))
		for i, ti := range bin {
			sub[i] = weights[ti]
		}
		r := GlobalRM(sub, 1, horizon)
		total.Jobs += r.Jobs
		total.Misses += r.Misses
		if r.MaxTardiness > total.MaxTardiness {
			total.MaxTardiness = r.MaxTardiness
		}
	}
	return total, nil
}

// DhallWeights returns the classical Dhall-effect task set for m
// processors: m light tasks (1 quantum every period−1 slots) plus one
// weight-1 task. Total utilization is 1 + m/(period−1) ≤ m for m ≥ 2, yet
// both global RM and global EDF miss the heavy task's deadline.
func DhallWeights(m int, period int64) []model.Weight {
	ws := make([]model.Weight, 0, m+1)
	for i := 0; i < m; i++ {
		ws = append(ws, model.W(1, period-1))
	}
	return append(ws, model.W(period, period))
}
