// Package baseline implements the comparison schedulers the paper positions
// Pfair against:
//
//   - global EDF and partitioned EDF, the non-Pfair approaches whose
//     worst-case schedulable utilization is only slightly above M/2
//     (Sec. 1 of the paper, citing Lopez et al. and Baruah/Andersson);
//   - DFS, the Deadline Fair Scheduling policy of Chandra, Adler & Shenoy
//     (2001), the first work to address the SFQ model's limitations: Pfair
//     deadlines with an auxiliary scheduler that hands otherwise-idle
//     processors to runnable but ineligible tasks. The original is an
//     empirical Linux scheduler; this is a faithful reconstruction of its
//     published rule set on the quantum model (see DESIGN.md §5).
//
// All baselines here schedule synchronous periodic task systems at quantum
// granularity.
package baseline

import (
	"fmt"
	"sort"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// Job is one invocation of a periodic task in the job-level schedulers.
type Job struct {
	Task     int
	Index    int64 // 1-based job number
	Release  int64
	Deadline int64
	Cost     int64
	// scheduling state
	remaining int64
	finish    int64 // slot after last quantum; 0 until complete
}

// jobsOf expands weights into all jobs released before horizon.
func jobsOf(weights []model.Weight, horizon int64) []*Job {
	var jobs []*Job
	for ti, w := range weights {
		for j := int64(1); (j-1)*w.P < horizon; j++ {
			jobs = append(jobs, &Job{
				Task:      ti,
				Index:     j,
				Release:   (j - 1) * w.P,
				Deadline:  j * w.P,
				Cost:      w.E,
				remaining: w.E,
			})
		}
	}
	return jobs
}

// EDFResult summarizes a job-level run.
type EDFResult struct {
	Jobs         int
	Misses       int
	MaxTardiness int64
}

// MissRate returns Misses / Jobs.
func (r EDFResult) MissRate() float64 {
	if r.Jobs == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Jobs)
}

// GlobalEDF schedules the periodic system on m processors with global,
// preemptive, job-level EDF at quantum granularity: each slot runs the m
// released unfinished jobs with the earliest deadlines (one processor per
// job). It keeps running past misses to measure tardiness.
func GlobalEDF(weights []model.Weight, m int, horizon int64) EDFResult {
	jobs := jobsOf(weights, horizon)
	return runJobEDF(jobs, func(t int64, active []*Job) []*Job {
		sort.SliceStable(active, func(i, j int) bool {
			if active[i].Deadline != active[j].Deadline {
				return active[i].Deadline < active[j].Deadline
			}
			return active[i].Task < active[j].Task
		})
		if len(active) > m {
			active = active[:m]
		}
		return active
	})
}

// runJobEDF drives a slot loop: pick returns the jobs to run in slot t from
// the released unfinished set (already one-per-task disjoint because a
// task's jobs are serialized by their releases and we never run two jobs of
// one task concurrently — enforced below).
func runJobEDF(jobs []*Job, pick func(t int64, active []*Job) []*Job) EDFResult {
	res := EDFResult{Jobs: len(jobs)}
	remaining := len(jobs)
	// Serialize jobs of the same task: a job is dispatchable only when its
	// task's earlier jobs are complete.
	byTask := map[int][]*Job{}
	for _, j := range jobs {
		byTask[j.Task] = append(byTask[j.Task], j)
	}
	for _, list := range byTask {
		sort.Slice(list, func(a, b int) bool { return list[a].Index < list[b].Index })
	}
	cursor := map[int]int{}
	var horizon int64
	for _, j := range jobs {
		if j.Deadline > horizon {
			horizon = j.Deadline
		}
	}
	safety := horizon + int64(totalCost(jobs)) + 1
	for t := int64(0); remaining > 0 && t <= safety; t++ {
		var active []*Job
		for task, list := range byTask {
			c := cursor[task]
			if c < len(list) && list[c].Release <= t {
				active = append(active, list[c])
			}
		}
		for _, j := range pick(t, active) {
			j.remaining--
			if j.remaining == 0 {
				j.finish = t + 1
				cursor[j.Task]++
				remaining--
				if j.finish > j.Deadline {
					res.Misses++
					if tard := j.finish - j.Deadline; tard > res.MaxTardiness {
						res.MaxTardiness = tard
					}
				}
			}
		}
	}
	return res
}

func totalCost(jobs []*Job) int64 {
	var c int64
	for _, j := range jobs {
		c += j.Cost
	}
	return c
}

// PartitionFFD assigns tasks to m processors first-fit with tasks
// considered in decreasing utilization, the standard partitioning
// heuristic. It returns per-processor task index lists, or an error when
// some task fits on no processor — the situation that caps partitioned
// schemes near 50% utilization.
func PartitionFFD(weights []model.Weight, m int) ([][]int, error) {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := weights[order[a]], weights[order[b]]
		return wa.E*wb.P > wb.E*wa.P // decreasing utilization
	})
	bins := make([][]int, m)
	loads := make([]rat.Rat, m)
	one := rat.One
	for _, ti := range order {
		placed := false
		for b := 0; b < m; b++ {
			if loads[b].Add(weights[ti].Rat()).LessEq(one) {
				bins[b] = append(bins[b], ti)
				loads[b] = loads[b].Add(weights[ti].Rat())
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("baseline: task %d (weight %s) fits on no processor", ti, weights[ti])
		}
	}
	return bins, nil
}

// PartitionedEDF partitions with FFD and runs uniprocessor EDF per bin.
// Uniprocessor EDF is optimal, so a successful partition implies zero
// misses; the run is still performed to report them uniformly.
func PartitionedEDF(weights []model.Weight, m int, horizon int64) (EDFResult, error) {
	bins, err := PartitionFFD(weights, m)
	if err != nil {
		return EDFResult{}, err
	}
	var total EDFResult
	for _, bin := range bins {
		sub := make([]model.Weight, len(bin))
		for i, ti := range bin {
			sub[i] = weights[ti]
		}
		r := GlobalEDF(sub, 1, horizon)
		total.Jobs += r.Jobs
		total.Misses += r.Misses
		if r.MaxTardiness > total.MaxTardiness {
			total.MaxTardiness = r.MaxTardiness
		}
	}
	return total, nil
}

// DFSResult summarizes a Deadline-Fair-Scheduling run at subtask
// granularity.
type DFSResult struct {
	Subtasks     int
	Misses       int   // subtask pseudo-deadline misses
	MaxTardiness int64 // in quanta
	AuxQuanta    int   // quanta handed out by the auxiliary scheduler
}

// DFS reconstructs Chandra et al.'s Deadline Fair Scheduling on a
// synchronous periodic system: each task's next quantum has the Pfair
// pseudo-release ⌊alloc/wt⌋ and pseudo-deadline ⌈(alloc+1)/wt⌉; each slot
// runs the m eligible tasks with the earliest deadlines. When
// workConserving is set, processors left over (eligible tasks exhausted)
// are handed by the auxiliary scheduler to runnable-but-ineligible tasks —
// tasks whose current job has been released but whose fair share is spent —
// in deadline order.
func DFS(weights []model.Weight, m int, horizon int64, workConserving bool) DFSResult {
	n := len(weights)
	alloc := make([]int64, n) // quanta granted so far
	var res DFSResult
	type cand struct {
		task     int
		deadline int64
		eligible bool
	}
	// Total quanta each task should receive by the horizon (completed jobs
	// only, so the run drains).
	quota := make([]int64, n)
	for i, w := range weights {
		quota[i] = (horizon / w.P) * w.E
		res.Subtasks += int(quota[i])
	}
	for t := int64(0); t < horizon; t++ {
		var cands []cand
		for i, w := range weights {
			if alloc[i] >= quota[i] {
				continue
			}
			release := rat.FloorDiv(alloc[i]*w.P, w.E)
			deadline := rat.CeilDiv((alloc[i]+1)*w.P, w.E)
			eligible := release <= t
			// Runnable: the job containing the next quantum has arrived.
			jobRelease := (alloc[i] / w.E) * w.P
			if !eligible && (!workConserving || jobRelease > t) {
				continue
			}
			cands = append(cands, cand{task: i, deadline: deadline, eligible: eligible})
		}
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].eligible != cands[b].eligible {
				return cands[a].eligible // eligible tasks first
			}
			if cands[a].deadline != cands[b].deadline {
				return cands[a].deadline < cands[b].deadline
			}
			return cands[a].task < cands[b].task
		})
		if len(cands) > m {
			cands = cands[:m]
		}
		for _, c := range cands {
			w := weights[c.task]
			deadline := rat.CeilDiv((alloc[c.task]+1)*w.P, w.E)
			if t+1 > deadline {
				res.Misses++
				if tard := t + 1 - deadline; tard > res.MaxTardiness {
					res.MaxTardiness = tard
				}
			}
			if !c.eligible {
				res.AuxQuanta++
			}
			alloc[c.task]++
		}
	}
	// Quanta never granted by the horizon count as misses too.
	for i := range weights {
		res.Misses += int(quota[i] - alloc[i])
	}
	return res
}
