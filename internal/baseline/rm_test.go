package baseline

import (
	"math"
	"testing"

	"desyncpfair/internal/model"
	"desyncpfair/internal/sfq"
)

func TestLiuLaylandBound(t *testing.T) {
	if got := LiuLaylandBound(1); got != 1 {
		t.Errorf("n=1 bound = %f, want 1", got)
	}
	if got := LiuLaylandBound(2); math.Abs(got-0.8284) > 1e-3 {
		t.Errorf("n=2 bound = %f, want ≈0.828", got)
	}
	// Monotone decreasing toward ln 2.
	prev := LiuLaylandBound(1)
	for n := 2; n <= 30; n++ {
		cur := LiuLaylandBound(n)
		if cur >= prev {
			t.Fatalf("bound not decreasing at n=%d", n)
		}
		prev = cur
	}
	if prev < math.Ln2-1e-9 {
		t.Errorf("bound fell below ln 2: %f", prev)
	}
	if LiuLaylandBound(0) != 0 {
		t.Error("n=0 should be 0")
	}
}

func TestGlobalRMSchedulesLowUtilization(t *testing.T) {
	ws := []model.Weight{model.W(1, 4), model.W(1, 4), model.W(1, 2)}
	r := GlobalRM(ws, 2, 8)
	if r.Misses != 0 {
		t.Errorf("misses = %d", r.Misses)
	}
}

// The original Dhall effect was an RM phenomenon: the canonical task set
// defeats both global RM and global EDF while Pfair schedules it.
func TestDhallEffectRMvsPfair(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		ws := DhallWeights(m, 10)
		if rm := GlobalRM(ws, m, 10); rm.Misses == 0 {
			t.Errorf("M=%d: global RM should miss on the Dhall set", m)
		}
		if edf := GlobalEDF(ws, m, 10); edf.Misses == 0 {
			t.Errorf("M=%d: global EDF should miss on the Dhall set", m)
		}
		sys := model.Periodic(ws, 10)
		if !sys.Feasible(m) {
			t.Fatalf("M=%d: Dhall set infeasible (util %s)", m, sys.TotalUtilization())
		}
		s, err := sfq.Run(sys, sfq.Options{M: m})
		if err != nil {
			t.Fatal(err)
		}
		if s.MissCount() != 0 {
			t.Errorf("M=%d: PD² missed on the Dhall set", m)
		}
	}
}

func TestPartitionFFDRMAdmission(t *testing.T) {
	// Two tasks of utilization 0.4 fit one processor under Liu–Layland for
	// n=2 (bound ≈ 0.828); a third does not (3×0.4 = 1.2 > 0.78).
	ws := []model.Weight{model.W(2, 5), model.W(2, 5), model.W(2, 5)}
	bins, err := PartitionFFDRM(ws, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins[0])+len(bins[1]) != 3 {
		t.Errorf("not all tasks placed: %v", bins)
	}
	if len(bins[0]) > 2 || len(bins[1]) > 2 {
		t.Errorf("Liu–Ayland cap violated: %v", bins)
	}
	// Infeasible under the bound on one processor.
	if _, err := PartitionFFDRM(ws, 1); err == nil {
		t.Error("three 0.4-tasks on one processor should fail Liu–Layland")
	}
}

func TestPartitionedRMZeroMisses(t *testing.T) {
	ws := []model.Weight{model.W(1, 4), model.W(1, 2), model.W(1, 4), model.W(1, 2)}
	r, err := PartitionedRM(ws, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Misses != 0 {
		t.Errorf("misses = %d", r.Misses)
	}
	if r.Jobs == 0 {
		t.Error("no jobs simulated")
	}
}

// Partitioned RM's admissible utilization collapses toward ~50–69% while
// Pfair schedules 100%: the Sec. 1 comparison, static-priority edition.
func TestPartitionedRMUtilizationCap(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		ws := make([]model.Weight, m+1)
		for i := range ws {
			ws[i] = model.W(6, 11) // just over 1/2 each
		}
		if _, err := PartitionFFDRM(ws, m); err == nil {
			t.Errorf("M=%d: %d tasks of weight 6/11 should not partition under RM", m, m+1)
		}
	}
}
