package sched

import (
	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// YieldFn gives the actual execution cost c(T_i) ∈ (0, 1] of a subtask —
// the fraction of its quantum it really uses before yielding. Under the SFQ
// model an early yield strands the residue of the quantum (the processor
// idles until the slot boundary); under the DVQ model a new quantum begins
// immediately. Randomized yield models live in internal/gen; this package
// provides only the degenerate ones.
type YieldFn func(*model.Subtask) rat.Rat

// FullCost is the yield model in which every subtask uses its entire
// quantum (c = 1). Under FullCost the DVQ and SFQ models coincide.
func FullCost(*model.Subtask) rat.Rat { return rat.One }

// ConstCost returns a yield model with the same cost c for every subtask.
// It panics unless 0 < c ≤ 1.
func ConstCost(c rat.Rat) YieldFn {
	if c.Sign() <= 0 || rat.One.Less(c) {
		panic("sched: ConstCost outside (0,1]")
	}
	return func(*model.Subtask) rat.Rat { return c }
}
