package sched

import (
	"strings"
	"testing"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// twoTask builds a system with two weight-1/2 tasks over one hyperperiod.
func twoTask() *model.System {
	return model.Periodic([]model.Weight{model.W(1, 2), model.W(1, 2)}, 4)
}

func asg(sub *model.Subtask, proc int, start, cost rat.Rat) Assignment {
	return Assignment{Sub: sub, Proc: proc, Start: start, Cost: cost, Decision: -1}
}

func TestAddAndLookup(t *testing.T) {
	sys := twoTask()
	s := New(sys, 1, "test", "SFQ")
	a := sys.Subtasks(sys.Tasks[0])[0]
	added := s.Add(asg(a, 0, rat.Zero, rat.One))
	if s.Of(a) != added {
		t.Error("Of should return the added assignment")
	}
	if s.Len() != 1 || s.Complete() {
		t.Error("length/completeness wrong")
	}
}

func TestAddPanicsOnDuplicate(t *testing.T) {
	sys := twoTask()
	s := New(sys, 1, "test", "SFQ")
	a := sys.Subtasks(sys.Tasks[0])[0]
	s.Add(asg(a, 0, rat.Zero, rat.One))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	s.Add(asg(a, 0, rat.One, rat.One))
}

// schedule the two-task system legally on one processor:
// A_1@0, B_1@1, A_2@2, B_2@3.
func legalSFQ(t *testing.T) (*model.System, *Schedule) {
	t.Helper()
	sys := twoTask()
	s := New(sys, 1, "test", "SFQ")
	a := sys.Subtasks(sys.Tasks[0])
	b := sys.Subtasks(sys.Tasks[1])
	s.Add(asg(a[0], 0, rat.Zero, rat.One))
	s.Add(asg(b[0], 0, rat.One, rat.One))
	s.Add(asg(a[1], 0, rat.FromInt(2), rat.One))
	s.Add(asg(b[1], 0, rat.FromInt(3), rat.One))
	return sys, s
}

func TestValidateSFQAccepts(t *testing.T) {
	_, s := legalSFQ(t)
	if err := s.ValidateSFQ(); err != nil {
		t.Errorf("legal SFQ schedule rejected: %v", err)
	}
	if err := s.ValidateDVQ(); err != nil {
		t.Errorf("legal schedule rejected by DVQ check: %v", err)
	}
}

func TestValidatePfairWindowCheck(t *testing.T) {
	_, s := legalSFQ(t)
	// B_1 window is [0,2) but B_1 is scheduled in slot 1 — inside. A_2
	// window [2,4) slot 2 — inside. All good:
	if err := s.ValidatePfair(); err != nil {
		t.Errorf("Pfair-valid schedule rejected: %v", err)
	}

	// Now a schedule with a deadline miss: B_1 in slot 2 (window [0,2)).
	sys := twoTask()
	s2 := New(sys, 1, "test", "SFQ")
	a := sys.Subtasks(sys.Tasks[0])
	b := sys.Subtasks(sys.Tasks[1])
	s2.Add(asg(a[0], 0, rat.Zero, rat.One))
	s2.Add(asg(a[1], 0, rat.One, rat.One)) // A_2 early? window [2,4): violates e
	s2.Add(asg(b[0], 0, rat.FromInt(2), rat.One))
	s2.Add(asg(b[1], 0, rat.FromInt(3), rat.One))
	if err := s2.ValidatePfair(); err == nil {
		t.Error("schedule with window violations accepted")
	}
}

func TestValidateCatchesStructuralErrors(t *testing.T) {
	sys := twoTask()
	a := sys.Subtasks(sys.Tasks[0])
	b := sys.Subtasks(sys.Tasks[1])

	// Incomplete.
	s := New(sys, 1, "test", "SFQ")
	s.Add(asg(a[0], 0, rat.Zero, rat.One))
	if err := s.ValidateSFQ(); err == nil || !strings.Contains(err.Error(), "subtasks scheduled") {
		t.Errorf("incomplete schedule accepted: %v", err)
	}

	// Over capacity: 2 subtasks in one slot on M=1.
	s = New(sys, 1, "test", "SFQ")
	s.Add(asg(a[0], 0, rat.Zero, rat.One))
	s.Add(asg(b[0], 0, rat.Zero, rat.One))
	s.Add(asg(a[1], 0, rat.FromInt(2), rat.One))
	s.Add(asg(b[1], 0, rat.FromInt(3), rat.One))
	if err := s.ValidateSFQ(); err == nil {
		t.Error("over-capacity slot accepted")
	}

	// Same task twice in a slot (parallelism) on M=2.
	s = New(sys, 2, "test", "SFQ")
	s.Add(asg(a[0], 0, rat.FromInt(2), rat.One))
	s.Add(asg(a[1], 1, rat.FromInt(2), rat.One))
	s.Add(asg(b[0], 0, rat.Zero, rat.One))
	s.Add(asg(b[1], 1, rat.FromInt(3), rat.One))
	if err := s.ValidateSFQ(); err == nil {
		t.Error("intra-task parallelism accepted")
	}

	// Start before eligibility.
	s = New(sys, 1, "test", "SFQ")
	s.Add(asg(a[1], 0, rat.Zero, rat.One)) // A_2 eligible at 2
	s.Add(asg(a[0], 0, rat.One, rat.One))
	s.Add(asg(b[0], 0, rat.FromInt(2), rat.One))
	s.Add(asg(b[1], 0, rat.FromInt(3), rat.One))
	if err := s.ValidateSFQ(); err == nil {
		t.Error("pre-eligibility start accepted")
	}

	// Cost outside (0,1].
	s = New(sys, 1, "test", "SFQ")
	s.Add(asg(a[0], 0, rat.Zero, rat.New(3, 2)))
	s.Add(asg(b[0], 0, rat.One, rat.One))
	s.Add(asg(a[1], 0, rat.FromInt(2), rat.One))
	s.Add(asg(b[1], 0, rat.FromInt(3), rat.One))
	if err := s.ValidateSFQ(); err == nil {
		t.Error("cost > 1 accepted")
	}

	// Bad processor index.
	s = New(sys, 1, "test", "SFQ")
	s.Add(asg(a[0], 7, rat.Zero, rat.One))
	s.Add(asg(b[0], 0, rat.One, rat.One))
	s.Add(asg(a[1], 0, rat.FromInt(2), rat.One))
	s.Add(asg(b[1], 0, rat.FromInt(3), rat.One))
	if err := s.ValidateSFQ(); err == nil {
		t.Error("out-of-range processor accepted")
	}
}

func TestValidateDVQOverlap(t *testing.T) {
	sys := twoTask()
	a := sys.Subtasks(sys.Tasks[0])
	b := sys.Subtasks(sys.Tasks[1])
	s := New(sys, 1, "test", "DVQ")
	// A_1 runs [0, 1), B_1 starts at 1/2 on the same processor: overlap.
	s.Add(asg(a[0], 0, rat.Zero, rat.One))
	s.Add(asg(b[0], 0, rat.New(1, 2), rat.One))
	s.Add(asg(a[1], 0, rat.FromInt(2), rat.One))
	s.Add(asg(b[1], 0, rat.FromInt(3), rat.One))
	if err := s.ValidateDVQ(); err == nil {
		t.Error("overlapping execution on one processor accepted")
	}
}

func TestValidateDVQPredecessorOrder(t *testing.T) {
	sys := twoTask()
	a := sys.Subtasks(sys.Tasks[0])
	b := sys.Subtasks(sys.Tasks[1])
	s := New(sys, 2, "test", "DVQ")
	// A_2 (eligible at 2) must also wait for A_1, which here finishes at 5/2.
	s.Add(asg(a[0], 0, rat.New(3, 2), rat.One))
	s.Add(asg(a[1], 1, rat.FromInt(2), rat.One)) // starts before A_1 finishes
	s.Add(asg(b[0], 1, rat.Zero, rat.One))
	s.Add(asg(b[1], 0, rat.FromInt(3), rat.One))
	if err := s.ValidateDVQ(); err == nil {
		t.Error("start before predecessor completion accepted")
	}
}

func TestTardiness(t *testing.T) {
	sys := twoTask()
	a := sys.Subtasks(sys.Tasks[0])
	b := sys.Subtasks(sys.Tasks[1])
	s := New(sys, 1, "test", "DVQ")
	// B_1 (deadline 2) completes at 5/2: tardiness 1/2.
	s.Add(asg(a[0], 0, rat.Zero, rat.One))
	s.Add(asg(b[0], 0, rat.New(3, 2), rat.One))
	s.Add(asg(a[1], 0, rat.New(5, 2), rat.One))
	s.Add(asg(b[1], 0, rat.New(7, 2), rat.New(1, 2)))
	if got, want := s.Tardiness(b[0]), rat.New(1, 2); !got.Equal(want) {
		t.Errorf("tardiness(B_1) = %s, want %s", got, want)
	}
	if got := s.Tardiness(a[0]); got.Sign() != 0 {
		t.Errorf("tardiness(A_1) = %s, want 0", got)
	}
	// A_2 deadline 4, completes 7/2: on time. B_2 deadline 4, completes 4.
	if got, want := s.MaxTardiness(), rat.New(1, 2); !got.Equal(want) {
		t.Errorf("max tardiness = %s, want %s", got, want)
	}
	if got := s.MissCount(); got != 1 {
		t.Errorf("miss count = %d, want 1", got)
	}
	tardy := s.TardySubtasks()
	if len(tardy) != 1 || tardy[0] != b[0] {
		t.Errorf("tardy list = %v", tardy)
	}
}

func TestBusyIdleMakespan(t *testing.T) {
	_, s := legalSFQ(t)
	if got := s.BusyTime(); !got.Equal(rat.FromInt(4)) {
		t.Errorf("busy = %s", got)
	}
	if got := s.Makespan(); !got.Equal(rat.FromInt(4)) {
		t.Errorf("makespan = %s", got)
	}
	if got := s.IdleTime(); got.Sign() != 0 {
		t.Errorf("idle = %s, want 0", got)
	}
}

func TestRanksAndInSlot(t *testing.T) {
	sys := model.Periodic([]model.Weight{model.W(1, 2), model.W(1, 2)}, 2)
	a := sys.Subtasks(sys.Tasks[0])[0]
	b := sys.Subtasks(sys.Tasks[1])[0]
	s := New(sys, 2, "test", "SFQ")
	// Added out of slot order; decisions set explicitly.
	s.Add(Assignment{Sub: b, Proc: 1, Start: rat.One, Cost: rat.One, Decision: 2})
	s.Add(Assignment{Sub: a, Proc: 0, Start: rat.Zero, Cost: rat.One, Decision: 1})
	ranks := s.Ranks()
	if ranks[0] != a || ranks[1] != b {
		t.Errorf("ranks = %v", ranks)
	}
	if got := s.InSlot(1); len(got) != 1 || got[0].Sub != b {
		t.Errorf("InSlot(1) wrong: %v", got)
	}
	if got := s.InSlot(5); len(got) != 0 {
		t.Errorf("InSlot(5) should be empty")
	}
}

func TestDiffAndEqual(t *testing.T) {
	sys := twoTask()
	a := sys.Subtasks(sys.Tasks[0])
	b := sys.Subtasks(sys.Tasks[1])
	mk := func(firstProc int, start rat.Rat) *Schedule {
		s := New(sys, 2, "test", "SFQ")
		s.Add(asg(a[0], firstProc, start, rat.One))
		s.Add(asg(b[0], 1, rat.One, rat.One))
		return s
	}
	s1 := mk(0, rat.Zero)
	s2 := mk(0, rat.Zero)
	if !Equal(s1, s2) {
		t.Error("identical schedules not equal")
	}
	// Different processor.
	s3 := mk(1, rat.Zero)
	ds := Diff(s1, s3)
	if len(ds) != 1 || ds[0].Sub != a[0] {
		t.Errorf("diff = %v", ds)
	}
	if ds[0].String() == "" {
		t.Error("empty diff string")
	}
	// One side unscheduled.
	s4 := New(sys, 2, "test", "SFQ")
	s4.Add(asg(a[0], 0, rat.Zero, rat.One))
	ds = Diff(s1, s4)
	if len(ds) != 1 || ds[0].B != nil {
		t.Errorf("unscheduled diff = %v", ds)
	}
	if got := ds[0].String(); !strings.Contains(got, "unscheduled") {
		t.Errorf("diff string %q", got)
	}
}

func TestDiffPanicsAcrossSystems(t *testing.T) {
	s1 := New(twoTask(), 1, "a", "SFQ")
	s2 := New(twoTask(), 1, "b", "SFQ")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for different systems")
		}
	}()
	Diff(s1, s2)
}
