// Package sched defines the schedule objects shared by every engine in this
// repository, together with the validity checks and the tardiness metric of
// eq. (7) of Devi & Anderson (IPPS 2005).
//
// Under the SFQ model a schedule is the function of eq. (1): S(T, t) ∈ {0,1}
// with at most M ones per slot. Under the DVQ model the paper overloads S to
// map each subtask to the (rational) time at which it commences execution,
// together with its actual execution cost c(T_i) ≤ 1. A sched.Schedule
// stores the DVQ form — one Assignment per scheduled subtask — which
// subsumes the SFQ form (all starts integral, all costs accounted to full
// slots).
package sched

import (
	"fmt"
	"sort"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// Assignment records one scheduling decision: subtask Sub commences on
// processor Proc at time Start and executes for Cost ≤ 1 time units.
type Assignment struct {
	Sub   *model.Subtask
	Proc  int
	Start rat.Rat
	Cost  rat.Rat
	// Decision is the index of the scheduling decision that produced this
	// assignment, in engine order. For slot-based engines it encodes the
	// total order used by the paper's rank function (Sec. 3.3): decisions
	// within a slot are numbered in selection order. −1 when untracked.
	Decision int
}

// Finish returns Start + Cost, the completion time.
func (a *Assignment) Finish() rat.Rat { return a.Start.Add(a.Cost) }

// Slot returns ⌊Start⌋, the slot in which the assignment begins.
func (a *Assignment) Slot() int64 { return a.Start.Floor() }

// Schedule is a complete (or partial) schedule of a task system on M
// processors.
type Schedule struct {
	M     int
	Sys   *model.System
	Algo  string // engine/policy label, for reports
	Model string // "SFQ", "DVQ", "SFQ-staggered", …

	asgs  []*Assignment
	bySub map[*model.Subtask]*Assignment
}

// New creates an empty schedule for sys on m processors.
func New(sys *model.System, m int, algo, mdl string) *Schedule {
	return &Schedule{
		M:     m,
		Sys:   sys,
		Algo:  algo,
		Model: mdl,
		bySub: make(map[*model.Subtask]*Assignment, sys.NumSubtasks()),
	}
}

// Add records an assignment. It panics if the subtask was already scheduled
// — engines must schedule each subtask exactly once.
func (s *Schedule) Add(a Assignment) *Assignment {
	if _, dup := s.bySub[a.Sub]; dup {
		panic(fmt.Sprintf("sched: %s scheduled twice", a.Sub))
	}
	if a.Decision == 0 {
		a.Decision = len(s.asgs)
	}
	cp := a
	s.asgs = append(s.asgs, &cp)
	s.bySub[a.Sub] = &cp
	return &cp
}

// Of returns the assignment of sub, or nil if sub is unscheduled.
func (s *Schedule) Of(sub *model.Subtask) *Assignment { return s.bySub[sub] }

// Assignments returns all assignments in decision order.
func (s *Schedule) Assignments() []*Assignment { return s.asgs }

// Len returns the number of scheduled subtasks.
func (s *Schedule) Len() int { return len(s.asgs) }

// Complete reports whether every released subtask of the system has been
// scheduled.
func (s *Schedule) Complete() bool { return len(s.asgs) == s.Sys.NumSubtasks() }

// Tardiness returns the tardiness of sub per eq. (7): max(0, finish − d).
// Unscheduled subtasks have undefined tardiness; this returns 0 for them
// (callers should check Complete first).
func (s *Schedule) Tardiness(sub *model.Subtask) rat.Rat {
	a := s.bySub[sub]
	if a == nil {
		return rat.Zero
	}
	t := a.Finish().Sub(rat.FromInt(sub.Deadline()))
	return rat.Max(rat.Zero, t)
}

// MaxTardiness returns the maximum tardiness over all scheduled subtasks.
func (s *Schedule) MaxTardiness() rat.Rat {
	m := rat.Zero
	for _, a := range s.asgs {
		m = rat.Max(m, s.Tardiness(a.Sub))
	}
	return m
}

// MissCount returns the number of subtasks with positive tardiness.
func (s *Schedule) MissCount() int {
	n := 0
	for _, a := range s.asgs {
		if s.Tardiness(a.Sub).Sign() > 0 {
			n++
		}
	}
	return n
}

// TardySubtasks returns the subtasks with positive tardiness, sorted by
// decreasing tardiness then task order.
func (s *Schedule) TardySubtasks() []*model.Subtask {
	var out []*model.Subtask
	for _, a := range s.asgs {
		if s.Tardiness(a.Sub).Sign() > 0 {
			out = append(out, a.Sub)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := s.Tardiness(out[i]), s.Tardiness(out[j])
		if c := ti.Cmp(tj); c != 0 {
			return c > 0
		}
		if out[i].Task.ID != out[j].Task.ID {
			return out[i].Task.ID < out[j].Task.ID
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// BusyTime returns the total processor time consumed (Σ cost).
func (s *Schedule) BusyTime() rat.Rat {
	b := rat.Zero
	for _, a := range s.asgs {
		b = b.Add(a.Cost)
	}
	return b
}

// Makespan returns the latest completion time (0 for an empty schedule).
func (s *Schedule) Makespan() rat.Rat {
	m := rat.Zero
	for _, a := range s.asgs {
		m = rat.Max(m, a.Finish())
	}
	return m
}

// IdleTime returns M·makespan − busy time: processor time left idle before
// the last completion. Under SFQ this includes the non-work-conserving
// residue of early-completing quanta.
func (s *Schedule) IdleTime() rat.Rat {
	return rat.FromInt(int64(s.M)).Mul(s.Makespan()).Sub(s.BusyTime())
}

// validateCommon checks the constraints shared by both models:
//   - every released subtask is scheduled exactly once (Complete);
//   - 0 < cost ≤ 1 (quanta have maximum size one);
//   - no subtask starts before its eligibility time;
//   - no subtask starts before its predecessor completes (subtasks of a
//     task execute in sequence — "migration allowed, parallelism not");
//   - processor indices in range.
func (s *Schedule) validateCommon() error {
	if !s.Complete() {
		return fmt.Errorf("sched: %d of %d subtasks scheduled", len(s.asgs), s.Sys.NumSubtasks())
	}
	for _, a := range s.asgs {
		if a.Proc < 0 || a.Proc >= s.M {
			return fmt.Errorf("sched: %s on processor %d of %d", a.Sub, a.Proc, s.M)
		}
		if a.Cost.Sign() <= 0 || rat.One.Less(a.Cost) {
			return fmt.Errorf("sched: %s has cost %s outside (0,1]", a.Sub, a.Cost)
		}
		if a.Start.Less(rat.FromInt(a.Sub.Elig)) {
			return fmt.Errorf("sched: %s starts at %s before eligibility %d", a.Sub, a.Start, a.Sub.Elig)
		}
		if pred := s.Sys.Predecessor(a.Sub); pred != nil {
			pa := s.bySub[pred]
			if pa == nil {
				return fmt.Errorf("sched: %s scheduled but predecessor %s is not", a.Sub, pred)
			}
			if a.Start.Less(s.predReady(pa)) {
				return fmt.Errorf("sched: %s starts at %s before predecessor completes at %s",
					a.Sub, a.Start, s.predReady(pa))
			}
		}
	}
	return nil
}

// predReady returns the time at which pa's successor may start. Under DVQ
// that is the actual completion time; under SFQ the processor is held until
// the end of the slot, but the successor may start at the next slot
// boundary either way, so the actual finish is the right bound for both.
func (s *Schedule) predReady(pa *Assignment) rat.Rat { return pa.Finish() }

// ValidateDVQ checks that the schedule is structurally legal under the DVQ
// model: the common constraints plus non-overlap of execution intervals on
// each processor. (Deadline misses are legal — they are what we measure.)
func (s *Schedule) ValidateDVQ() error {
	if err := s.validateCommon(); err != nil {
		return err
	}
	byProc := make([][]*Assignment, s.M)
	for _, a := range s.asgs {
		byProc[a.Proc] = append(byProc[a.Proc], a)
	}
	for p, list := range byProc {
		sort.Slice(list, func(i, j int) bool { return list[i].Start.Less(list[j].Start) })
		for k := 1; k < len(list); k++ {
			if list[k].Start.Less(list[k-1].Finish()) {
				return fmt.Errorf("sched: processor %d overlap: %s [%s,%s) then %s at %s",
					p, list[k-1].Sub, list[k-1].Start, list[k-1].Finish(), list[k].Sub, list[k].Start)
			}
		}
	}
	return nil
}

// ValidateSFQ checks legality under the SFQ model: the common constraints
// plus integral starts, at most M subtasks per slot, at most one subtask
// per processor per slot, and predecessors in strictly earlier slots.
func (s *Schedule) ValidateSFQ() error {
	if err := s.validateCommon(); err != nil {
		return err
	}
	type key struct {
		slot int64
		proc int
	}
	perSlot := map[int64]int{}
	perCell := map[key]*Assignment{}
	for _, a := range s.asgs {
		if !a.Start.IsInt() {
			return fmt.Errorf("sched: SFQ start %s of %s is not integral", a.Start, a.Sub)
		}
		slot := a.Start.Int()
		perSlot[slot]++
		if perSlot[slot] > s.M {
			return fmt.Errorf("sched: more than M=%d subtasks in slot %d", s.M, slot)
		}
		k := key{slot, a.Proc}
		if other := perCell[k]; other != nil {
			return fmt.Errorf("sched: processor %d slot %d double-booked: %s and %s", a.Proc, slot, other.Sub, a.Sub)
		}
		perCell[k] = a
		if pred := s.Sys.Predecessor(a.Sub); pred != nil {
			if pa := s.bySub[pred]; pa != nil && pa.Start.Int() >= slot {
				return fmt.Errorf("sched: %s in slot %d not after predecessor's slot %d", a.Sub, slot, pa.Start.Int())
			}
		}
	}
	return nil
}

// ValidatePfair checks full Pfair validity under the SFQ model per Sec. 3.3
// of the paper: structural SFQ legality and every subtask scheduled in a
// slot within its IS-window [e(T_i), d(T_i)).
func (s *Schedule) ValidatePfair() error {
	if err := s.ValidateSFQ(); err != nil {
		return err
	}
	for _, a := range s.asgs {
		slot := a.Start.Int()
		if slot < a.Sub.Elig || slot >= a.Sub.Deadline() {
			return fmt.Errorf("sched: %s scheduled in slot %d outside IS-window [%d,%d)",
				a.Sub, slot, a.Sub.Elig, a.Sub.Deadline())
		}
	}
	return nil
}

// InSlot returns the assignments beginning in slot t, in decision order.
func (s *Schedule) InSlot(t int64) []*Assignment {
	var out []*Assignment
	for _, a := range s.asgs {
		if a.Slot() == t {
			out = append(out, a)
		}
	}
	return out
}

// Ranks returns the paper's rank order (Sec. 3.3): the irreflexive total
// order on subtasks given by the sequence in which they are scheduled —
// slot by slot, and within a slot by selection order. The returned slice is
// rank → subtask.
func (s *Schedule) Ranks() []*model.Subtask {
	asgs := append([]*Assignment(nil), s.asgs...)
	sort.Slice(asgs, func(i, j int) bool {
		si, sj := asgs[i].Slot(), asgs[j].Slot()
		if si != sj {
			return si < sj
		}
		return asgs[i].Decision < asgs[j].Decision
	})
	out := make([]*model.Subtask, len(asgs))
	for i, a := range asgs {
		out[i] = a.Sub
	}
	return out
}
