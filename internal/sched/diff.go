package sched

import (
	"fmt"

	"desyncpfair/internal/model"
)

// Difference describes one subtask scheduled differently by two schedules.
type Difference struct {
	Sub  *model.Subtask
	A, B *Assignment // nil when the subtask is unscheduled on that side
}

func (d Difference) String() string {
	describe := func(a *Assignment) string {
		if a == nil {
			return "unscheduled"
		}
		return fmt.Sprintf("P%d@%s", a.Proc, a.Start)
	}
	return fmt.Sprintf("%s: %s vs %s", d.Sub, describe(d.A), describe(d.B))
}

// Diff compares two schedules of the same task system subtask by subtask,
// returning every subtask whose start time or processor differs (or that
// is scheduled on only one side). Both schedules must be over the same
// *model.System; comparing schedules of structurally equal but distinct
// systems is the caller's job (compare labels instead).
func Diff(a, b *Schedule) []Difference {
	if a.Sys != b.Sys {
		panic("sched: Diff requires schedules over the same system")
	}
	var out []Difference
	for _, sub := range a.Sys.All() {
		aa, ba := a.Of(sub), b.Of(sub)
		switch {
		case aa == nil && ba == nil:
		case aa == nil || ba == nil:
			out = append(out, Difference{Sub: sub, A: aa, B: ba})
		case !aa.Start.Equal(ba.Start) || aa.Proc != ba.Proc:
			out = append(out, Difference{Sub: sub, A: aa, B: ba})
		}
	}
	return out
}

// Equal reports whether the two schedules place every subtask identically
// (same start, same processor).
func Equal(a, b *Schedule) bool { return len(Diff(a, b)) == 0 }
