// Package gen generates random task systems and yield (actual execution
// cost) models for the experiments. The paper argues its results for all
// feasible GIS task systems; the generators here sample that space —
// periodic systems at exact total utilization, IS systems with random
// release jitter, GIS systems with random subtask omissions — plus the
// yield behaviours that distinguish SFQ from DVQ (early-completing jobs,
// including the adversarial 1−δ yields of the tightness construction).
//
// Everything is deterministic given a seed. Yield models hash the subtask
// identity rather than consuming a shared RNG stream, so two engines
// simulating the same system observe identical per-subtask costs
// regardless of the order in which they schedule.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// WeightClass selects the utilization profile of generated tasks.
type WeightClass int

const (
	// MixedWeights draws weights uniformly over the grid (any e/p).
	MixedWeights WeightClass = iota
	// LightWeights draws weights < 1/2.
	LightWeights
	// HeavyWeights draws weights ≥ 1/2.
	HeavyWeights
)

// GridWeights returns n weights, each a multiple of 1/q in (0, 1], summing
// exactly to util (given as an integral multiple of 1/q: util = sum/q).
// It panics if the request is infeasible (sum < n or sum > n·q).
func GridWeights(rng *rand.Rand, n int, q int64, sum int64, class WeightClass) []model.Weight {
	if int64(n) > sum || sum > int64(n)*q {
		panic("gen: infeasible grid weight request")
	}
	lo, hi := int64(1), q
	switch class {
	case LightWeights:
		hi = (q - 1) / 2
		if hi < 1 {
			hi = 1
		}
	case HeavyWeights:
		lo = (q + 1) / 2
	}
	// Start from the minimum allocation and spread the remainder one unit
	// at a time over tasks that still have headroom. If class bounds make
	// the exact sum unreachable, relax them (the class is a preference).
	parts := make([]int64, n)
	for i := range parts {
		parts[i] = lo
	}
	remaining := sum - int64(n)*lo
	if remaining < 0 {
		for i := range parts {
			parts[i] = 1
		}
		remaining = sum - int64(n)
		hi = q
	}
	for remaining > 0 {
		progressed := false
		for attempts := 0; attempts < 4*n && remaining > 0; attempts++ {
			i := rng.Intn(n)
			if parts[i] < hi {
				parts[i]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			hi = q // relax the class cap to absorb the rest
		}
	}
	ws := make([]model.Weight, n)
	for i, e := range parts {
		ws[i] = model.W(e, q)
	}
	return ws
}

// VariedWeights returns n weights e/p with p drawn from [2, maxP] and e
// from [1, p] (clamped per class). The sum is unconstrained.
func VariedWeights(rng *rand.Rand, n int, maxP int64, class WeightClass) []model.Weight {
	ws := make([]model.Weight, n)
	for i := range ws {
		p := 2 + rng.Int63n(maxP-1)
		var e int64
		switch class {
		case LightWeights:
			e = 1 + rng.Int63n(max64(1, (p-1)/2))
		case HeavyWeights:
			e = (p+1)/2 + rng.Int63n(p-(p+1)/2+1)
		default:
			e = 1 + rng.Int63n(p)
		}
		ws[i] = model.W(e, p)
	}
	return ws
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SystemOptions configures random task-system generation.
type SystemOptions struct {
	Horizon int64 // release subtasks with r < Horizon
	// JitterProb (percent, 0–100) is the chance that each subtask's window
	// is right-shifted relative to its predecessor (IS behaviour).
	JitterProb int
	MaxJitter  int64 // maximum per-step right shift
	// OmitProb (percent, 0–100) is the chance each subtask index is
	// skipped (GIS behaviour). The first index of each task is kept.
	OmitProb int
	// EarlyRelease (number of slots) lowers eligibility times below
	// releases by up to this much, respecting eq. (6).
	EarlyRelease int64
}

// System builds a random task system from weights per opts. With the zero
// options it produces the synchronous periodic system over horizon 0
// (empty), so callers must set Horizon.
func System(rng *rand.Rand, weights []model.Weight, opts SystemOptions) *model.System {
	sys := model.NewSystem()
	for k, w := range weights {
		t := sys.AddTask(taskName(k), w)
		theta := int64(0)
		prevElig := int64(0)
		for i := int64(1); ; i++ {
			if i > 1 && opts.OmitProb > 0 && rng.Intn(100) < opts.OmitProb {
				continue
			}
			if opts.JitterProb > 0 && opts.MaxJitter > 0 && rng.Intn(100) < opts.JitterProb {
				theta += 1 + rng.Int63n(opts.MaxJitter)
			}
			s := model.Subtask{Task: t, Index: i, Theta: theta}
			r := s.Release()
			if r >= opts.Horizon {
				break
			}
			elig := r
			if opts.EarlyRelease > 0 {
				elig = r - rng.Int63n(opts.EarlyRelease+1)
				if elig < 0 {
					elig = 0
				}
			}
			if elig < prevElig {
				elig = prevElig // keep eq. (6) monotone
			}
			prevElig = elig
			sys.AddSubtask(t, i, theta, elig)
		}
	}
	return sys
}

func taskName(k int) string {
	if k < 26 {
		return string(rune('A' + k))
	}
	return "T" + itoa(k)
}

func itoa(k int) string {
	if k == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for k > 0 {
		i--
		b[i] = byte('0' + k%10)
		k /= 10
	}
	return string(b[i:])
}

// splitmix64 is the standard 64-bit mix used to derive per-subtask values.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func subHash(seed int64, s *model.Subtask) uint64 {
	return splitmix64(uint64(seed) ^ splitmix64(uint64(s.Task.ID)*0x100000001b3) ^ splitmix64(uint64(s.Index)))
}

// UniformYield returns a yield model with c(T_i) uniform on the grid
// {1/den, 2/den, …, den/den}, hashed per subtask from seed.
func UniformYield(seed int64, den int64) sched.YieldFn {
	if den < 1 {
		panic("gen: UniformYield needs den ≥ 1")
	}
	return func(s *model.Subtask) rat.Rat {
		k := int64(subHash(seed, s)%uint64(den)) + 1
		return rat.New(k, den)
	}
}

// BimodalYield returns a yield model in which each subtask uses its full
// quantum with probability pFull (percent) and otherwise yields early with
// cost uniform on {1/den, …, ⌈den/2⌉/den}. This models the paper's second
// motivation: pessimistic WCETs mean many jobs complete well early.
func BimodalYield(seed int64, pFull int, den int64) sched.YieldFn {
	if den < 2 {
		panic("gen: BimodalYield needs den ≥ 2")
	}
	return func(s *model.Subtask) rat.Rat {
		h := subHash(seed, s)
		if int(h%100) < pFull {
			return rat.One
		}
		k := int64((h>>32)%uint64(den/2)) + 1
		return rat.New(k, den)
	}
}

// AdversarialYield returns the tightness construction's yield model: each
// selected subtask yields δ before the end of its quantum (c = 1 − δ) and
// every other subtask uses its full quantum. A nil victim selects all.
func AdversarialYield(delta rat.Rat, victim func(*model.Subtask) bool) sched.YieldFn {
	c := rat.One.Sub(delta)
	if c.Sign() <= 0 || rat.One.Less(c) {
		panic("gen: adversarial cost outside (0,1]")
	}
	return func(s *model.Subtask) rat.Rat {
		if victim == nil || victim(s) {
			return c
		}
		return rat.One
	}
}

// InflateWeights accounts for preemption/migration overhead the way the
// paper prescribes (Sec. 3, citing Holman): each task's execution cost is
// inflated by the factor (1 + overhead), rounded up to keep costs integral,
// capped at weight 1. The inflated system's schedulability then implies the
// original's under the overhead assumption.
func InflateWeights(ws []model.Weight, overhead rat.Rat) ([]model.Weight, error) {
	if overhead.Sign() < 0 {
		return nil, fmt.Errorf("gen: negative overhead %s", overhead)
	}
	factor := rat.One.Add(overhead)
	out := make([]model.Weight, len(ws))
	for i, w := range ws {
		e := factor.Mul(rat.New(w.E, 1)).Ceil()
		if e > w.P {
			return nil, fmt.Errorf("gen: inflating weight %s by %s exceeds 1", w, overhead)
		}
		out[i] = model.W(e, w.P)
	}
	return out, nil
}

// UUniFastGrid draws n task weights summing exactly to sum/q using the
// UUniFast algorithm (Bini & Buttazzo), the field-standard unbiased
// utilization sampler, discretized to the 1/q grid: the recurrence runs in
// units of 1/q and each task receives at least one unit and at most q
// (weight ≤ 1). Compared with GridWeights (which spreads units one at a
// time), UUniFast produces the heavy-tailed weight spreads typical of
// published evaluations.
func UUniFastGrid(rng *rand.Rand, n int, q int64, sum int64) []model.Weight {
	if int64(n) > sum || sum > int64(n)*q {
		panic("gen: infeasible UUniFast request")
	}
	// Work with the spare units above the per-task minimum of one.
	spare := sum - int64(n)
	ws := make([]model.Weight, n)
	for i := 0; i < n-1; i++ {
		// next = spare · U^(1/(n-1-i)) with U uniform: the UUniFast step.
		u := rng.Float64()
		next := int64(float64(spare) * math.Pow(u, 1/float64(n-1-i)))
		take := spare - next
		// Clamp to the per-task cap and push the excess back to the pool.
		if take > q-1 {
			take = q - 1
		}
		ws[i] = model.W(1+take, q)
		spare -= take
	}
	// Last task absorbs the remainder; redistribute any excess over the cap.
	last := spare
	for last > q-1 {
		moved := false
		for i := 0; i < n-1 && last > q-1; i++ {
			if ws[i].E < q {
				ws[i].E++
				last--
				moved = true
			}
		}
		if !moved {
			panic("gen: UUniFast redistribution failed") // impossible: sum ≤ n·q
		}
	}
	ws[n-1] = model.W(1+last, q)
	return ws
}
