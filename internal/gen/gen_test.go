package gen

import (
	"math/rand"
	"testing"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

func TestGridWeightsSumExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		q := int64(4 + rng.Intn(13))
		m := int64(1 + rng.Intn(4))
		sum := m * q
		if sum < int64(n) || m > int64(n) {
			continue
		}
		for _, class := range []WeightClass{MixedWeights, LightWeights, HeavyWeights} {
			ws := GridWeights(rng, n, q, sum, class)
			total := rat.Zero
			for _, w := range ws {
				if err := w.Validate(); err != nil {
					t.Fatalf("invalid weight %v: %v", w, err)
				}
				total = total.Add(w.Rat())
			}
			if !total.Equal(rat.FromInt(m)) {
				t.Fatalf("class %v: total = %s, want %d", class, total, m)
			}
		}
	}
}

func TestGridWeightsClassPreference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// With plenty of headroom, class constraints are satisfiable and must hold.
	ws := GridWeights(rng, 8, 12, 2*12, LightWeights) // util 2 over 8 tasks: avg 1/4
	for _, w := range ws {
		if w.IsHeavy() {
			t.Errorf("light class produced heavy weight %v", w)
		}
	}
	ws = GridWeights(rng, 3, 12, 2*12, HeavyWeights) // util 2 over 3 tasks
	for _, w := range ws {
		if !w.IsHeavy() {
			t.Errorf("heavy class produced light weight %v", w)
		}
	}
}

func TestGridWeightsPanicsWhenInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for sum > n*q")
		}
	}()
	GridWeights(rng, 2, 4, 100, MixedWeights)
}

func TestVariedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, class := range []WeightClass{MixedWeights, LightWeights, HeavyWeights} {
		for _, w := range VariedWeights(rng, 50, 16, class) {
			if err := w.Validate(); err != nil {
				t.Fatalf("invalid weight: %v", err)
			}
			if class == LightWeights && w.IsHeavy() {
				t.Errorf("light class produced %v", w)
			}
			if class == HeavyWeights && !w.IsHeavy() {
				t.Errorf("heavy class produced %v", w)
			}
		}
	}
}

func TestSystemPeriodicMatchesModelPeriodic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ws := []model.Weight{model.W(1, 2), model.W(3, 4)}
	got := System(rng, ws, SystemOptions{Horizon: 8})
	want := model.Periodic(ws, 8)
	if got.NumSubtasks() != want.NumSubtasks() {
		t.Fatalf("subtask counts differ: %d vs %d", got.NumSubtasks(), want.NumSubtasks())
	}
	for ti, task := range got.Tasks {
		gs, wsub := got.Subtasks(task), want.Subtasks(want.Tasks[ti])
		for k := range gs {
			if gs[k].Index != wsub[k].Index || gs[k].Theta != 0 || gs[k].Elig != wsub[k].Elig {
				t.Errorf("subtask %d of task %d differs", k, ti)
			}
		}
	}
}

func TestSystemISAndGISAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ws := VariedWeights(rng, 10, 12, MixedWeights)
	for trial := 0; trial < 50; trial++ {
		sys := System(rng, ws, SystemOptions{
			Horizon:      40,
			JitterProb:   30,
			MaxJitter:    3,
			OmitProb:     20,
			EarlyRelease: 2,
		})
		if err := sys.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid system: %v", trial, err)
		}
	}
}

func TestSystemGISOmitsIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := []model.Weight{model.W(9, 10)}
	sys := System(rng, ws, SystemOptions{Horizon: 200, OmitProb: 50})
	seq := sys.Subtasks(sys.Tasks[0])
	if len(seq) == 0 {
		t.Fatal("no subtasks generated")
	}
	gap := false
	for k := 1; k < len(seq); k++ {
		if seq[k].Index > seq[k-1].Index+1 {
			gap = true
		}
	}
	if !gap {
		t.Error("OmitProb 50 produced no index gaps over 200 slots")
	}
}

func TestYieldDeterminismAndRange(t *testing.T) {
	sys := model.Periodic([]model.Weight{model.W(3, 4), model.W(1, 2)}, 40)
	for _, y := range []struct {
		name string
		fn   func() func(*model.Subtask) rat.Rat
	}{
		{"uniform", func() func(*model.Subtask) rat.Rat { return UniformYield(42, 16) }},
		{"bimodal", func() func(*model.Subtask) rat.Rat { return BimodalYield(42, 70, 16) }},
	} {
		a, b := y.fn(), y.fn()
		for _, s := range sys.All() {
			ca, cb := a(s), b(s)
			if !ca.Equal(cb) {
				t.Errorf("%s: nondeterministic cost for %s", y.name, s)
			}
			if ca.Sign() <= 0 || rat.One.Less(ca) {
				t.Errorf("%s: cost %s outside (0,1]", y.name, ca)
			}
		}
	}
}

func TestUniformYieldSpreads(t *testing.T) {
	sys := model.Periodic([]model.Weight{model.W(9, 10)}, 400)
	y := UniformYield(1, 4)
	counts := map[string]int{}
	for _, s := range sys.All() {
		counts[y(s).String()]++
	}
	for _, v := range []string{"1/4", "1/2", "3/4", "1"} {
		if counts[v] == 0 {
			t.Errorf("value %s never drawn (counts %v)", v, counts)
		}
	}
}

func TestAdversarialYield(t *testing.T) {
	sys := model.Periodic([]model.Weight{model.W(1, 2), model.W(1, 3)}, 12)
	delta := rat.New(1, 64)
	y := AdversarialYield(delta, func(s *model.Subtask) bool { return s.Task.ID == 0 })
	for _, s := range sys.All() {
		want := rat.One
		if s.Task.ID == 0 {
			want = rat.One.Sub(delta)
		}
		if got := y(s); !got.Equal(want) {
			t.Errorf("cost(%s) = %s, want %s", s, got, want)
		}
	}
	yAll := AdversarialYield(delta, nil)
	if got := yAll(sys.All()[0]); !got.Equal(rat.One.Sub(delta)) {
		t.Error("nil victim should select all")
	}
}

func TestAdversarialYieldPanicsOnBadDelta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("δ = 1 should panic (cost 0)")
		}
	}()
	AdversarialYield(rat.One, nil)
}

func TestTaskNames(t *testing.T) {
	if taskName(0) != "A" || taskName(25) != "Z" {
		t.Error("letter names wrong")
	}
	if taskName(26) != "T26" || taskName(260) != "T260" {
		t.Errorf("numeric names wrong: %s %s", taskName(26), taskName(260))
	}
}

func TestInflateWeights(t *testing.T) {
	ws := []model.Weight{model.W(2, 10), model.W(5, 10)}
	out, err := InflateWeights(ws, rat.New(1, 10)) // 10% overhead
	if err != nil {
		t.Fatal(err)
	}
	// 2 × 1.1 = 2.2 → 3; 5 × 1.1 = 5.5 → 6.
	if out[0] != model.W(3, 10) || out[1] != model.W(6, 10) {
		t.Errorf("inflated = %v", out)
	}
	// Zero overhead is identity.
	same, err := InflateWeights(ws, rat.Zero)
	if err != nil || same[0] != ws[0] || same[1] != ws[1] {
		t.Errorf("zero overhead changed weights: %v %v", same, err)
	}
	// Overflowing weight 1 errors.
	if _, err := InflateWeights([]model.Weight{model.W(10, 10)}, rat.New(1, 10)); err == nil {
		t.Error("inflation past weight 1 accepted")
	}
	if _, err := InflateWeights(ws, rat.New(-1, 10)); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestUUniFastGridSumsExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		q := int64(4 + rng.Intn(20))
		m := int64(1 + rng.Intn(4))
		sum := m * q
		if sum < int64(n) || m > int64(n) {
			continue
		}
		ws := UUniFastGrid(rng, n, q, sum)
		total := rat.Zero
		for _, w := range ws {
			if err := w.Validate(); err != nil {
				t.Fatalf("invalid weight %v: %v", w, err)
			}
			total = total.Add(w.Rat())
		}
		if !total.Equal(rat.FromInt(m)) {
			t.Fatalf("trial %d: total %s, want %d", trial, total, m)
		}
	}
}

func TestUUniFastGridSpread(t *testing.T) {
	// UUniFast should produce genuinely varied weights, not near-uniform
	// ones: over many draws with util 2 across 8 tasks on a /64 grid, the
	// largest and smallest task weights should differ substantially.
	rng := rand.New(rand.NewSource(10))
	varied := 0
	for trial := 0; trial < 50; trial++ {
		ws := UUniFastGrid(rng, 8, 64, 2*64)
		min, max := ws[0].E, ws[0].E
		for _, w := range ws {
			if w.E < min {
				min = w.E
			}
			if w.E > max {
				max = w.E
			}
		}
		if max >= 3*min {
			varied++
		}
	}
	if varied < 25 {
		t.Errorf("only %d/50 draws showed a 3× weight spread", varied)
	}
}

func TestUUniFastGridPanicsWhenInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	UUniFastGrid(rng, 2, 4, 100)
}
