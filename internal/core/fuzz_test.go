package core

import (
	"math/rand"
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// fuzzSystem derives a feasible full-utilization GIS system and yield model
// from raw fuzz bytes.
func fuzzSystem(seed int64, mRaw, qRaw, dyn uint8) (int, *gen.SystemOptions, []func() sched.YieldFn, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	m := 2 + int(mRaw%3)
	q := int64(6 + qRaw%8)
	opts := &gen.SystemOptions{Horizon: 3 * q}
	if dyn&1 != 0 {
		opts.JitterProb = 25
		opts.MaxJitter = 2
	}
	if dyn&2 != 0 {
		opts.OmitProb = 15
	}
	yields := []func() sched.YieldFn{
		func() sched.YieldFn { return sched.FullCost },
		func() sched.YieldFn { return gen.UniformYield(seed, 8) },
		func() sched.YieldFn { return gen.BimodalYield(seed, 50, 8) },
		func() sched.YieldFn { return gen.AdversarialYield(rat.New(1, 16), nil) },
	}
	return m, opts, yields, rng
}

// FuzzTheorem3 throws arbitrary feasible GIS systems and yield behaviours
// at PD²-DVQ and asserts the paper's headline bound. Runs its seed corpus
// under plain `go test`; expand with `go test -fuzz=FuzzTheorem3`.
func FuzzTheorem3(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(int64(7), uint8(1), uint8(3), uint8(3), uint8(1))
	f.Add(int64(42), uint8(2), uint8(7), uint8(1), uint8(2))
	f.Add(int64(-9), uint8(0), uint8(5), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, mRaw, qRaw, dyn, ysel uint8) {
		m, opts, yields, rng := fuzzSystem(seed, mRaw, qRaw, dyn)
		q := opts.Horizon / 3
		n := m + 1 + int(seed&3)
		if int64(n) > int64(m)*q {
			t.Skip()
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(int(dyn)%3))
		sys := gen.System(rng, ws, *opts)
		if err := sys.Validate(); err != nil {
			t.Fatalf("generator produced invalid system: %v", err)
		}
		y := yields[int(ysel)%len(yields)]()
		s, err := RunDVQ(sys, DVQOptions{M: m, Yield: y})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ValidateDVQ(); err != nil {
			t.Fatal(err)
		}
		if got := s.MaxTardiness(); rat.One.Less(got) {
			t.Fatalf("Theorem 3 violated: tardiness %s on M=%d", got, m)
		}
		if err := CheckWorkConserving(s); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzTheorem2 does the same for PD^B under both resolutions.
func FuzzTheorem2(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(0), false)
	f.Add(int64(13), uint8(1), uint8(4), uint8(2), true)
	f.Add(int64(99), uint8(2), uint8(6), uint8(3), false)
	f.Fuzz(func(t *testing.T, seed int64, mRaw, qRaw, dyn uint8, randomize bool) {
		m, opts, _, rng := fuzzSystem(seed, mRaw, qRaw, dyn)
		q := opts.Horizon / 3
		n := m + 1 + int(seed&3)
		if int64(n) > int64(m)*q {
			t.Skip()
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(int(dyn)%3))
		sys := gen.System(rng, ws, *opts)
		popts := PDBOptions{M: m}
		if randomize {
			popts.Resolution = Randomized{Rng: rand.New(rand.NewSource(seed))}
		}
		res, err := RunPDB(sys, popts)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.ValidateSFQ(); err != nil {
			t.Fatal(err)
		}
		if got := res.Schedule.MaxTardiness(); rat.One.Less(got) {
			t.Fatalf("Theorem 2 violated: tardiness %s", got)
		}
	})
}
