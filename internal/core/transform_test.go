package core

import (
	"math/rand"
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

func TestClassify(t *testing.T) {
	sub := &model.Subtask{Task: &model.Task{W: model.W(1, 2)}, Index: 1}
	cases := []struct {
		start, cost rat.Rat
		want        Class
	}{
		{rat.FromInt(3), rat.One, ClassAligned},
		{rat.FromInt(3), rat.New(1, 2), ClassAligned},
		{rat.New(7, 2), rat.One, ClassOlapped},         // [3.5, 4.5) crosses 4
		{rat.New(7, 2), rat.New(1, 4), ClassFree},      // [3.5, 3.75) inside slot 3
		{rat.New(7, 2), rat.New(1, 2), ClassFree},      // completes exactly at 4
		{rat.New(13, 4), rat.New(9, 10), ClassOlapped}, // [3.25, 4.15) crosses 4
	}
	for _, c := range cases {
		a := &sched.Assignment{Sub: sub, Start: c.start, Cost: c.cost}
		if got := Classify(a); got != c.want {
			t.Errorf("Classify(start=%s cost=%s) = %s, want %s", c.start, c.cost, got, c.want)
		}
	}
}

// Build S_B from the Fig. 2(b) DVQ schedule and check its shape: in the
// limit construction, B_1 and C_1 (Olapped, started at 2−δ) postpone to
// slot 2 — exactly the Fig. 2(c) schedule.
func TestFig2TransformMatchesFig2c(t *testing.T) {
	sys := fig2System(6)
	delta := rat.New(1, 4)
	dq, err := RunDVQ(sys, DVQOptions{M: 2, Yield: fig2Yield(sys, delta)})
	if err != nil {
		t.Fatal(err)
	}
	tr := BuildSB(dq)
	if err := tr.CheckLemma3(); err != nil {
		t.Error(err)
	}
	if err := tr.CheckLemma4(); err != nil {
		t.Error(err)
	}
	if err := tr.CheckSBStructure(); err != nil {
		t.Error(err)
	}
	// A_1 and F_1 start at integral 1 → Aligned. B_1, C_1 start at 2−δ and
	// run a full quantum → Olapped, postponed to slot 2. D_2/E_2 start at
	// 3−δ crossing 3 → Olapped, postponed to slot 3. F_2 starts 4−δ
	// crossing 4 → postponed to slot 4. E_3 at 5−δ → slot 5.
	wantSlots := map[string]int64{
		"D_1": 0, "E_1": 0,
		"A_1": 1, "F_1": 1,
		"B_1": 2, "C_1": 2,
		"D_2": 3, "E_2": 3,
		"F_2": 4, "D_3": 4,
		"E_3": 5, "F_3": 5,
	}
	for _, sub := range sys.All() {
		b, charged := tr.B[sub]
		if !charged {
			t.Errorf("%s not charged; in the full-quantum-after-yield trace every subtask crosses or starts a boundary", sub)
			continue
		}
		if got := b.Start.Int(); got != wantSlots[sub.String()] {
			t.Errorf("S_B(%s) = slot %d, want %d", sub, got, wantSlots[sub.String()])
		}
	}
	// F_2's S_B tardiness: completes at 4 + 1 = 5 vs deadline 4 → 1.
	f2 := subByName(t, sys, "F", 2)
	if got := tr.TardinessB(f2); !got.Equal(rat.One) {
		t.Errorf("S_B tardiness of F_2 = %s, want 1", got)
	}
}

func TestTransformClassCounts(t *testing.T) {
	sys := fig2System(6)
	dq, err := RunDVQ(sys, DVQOptions{M: 2, Yield: gen.UniformYield(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	tr := BuildSB(dq)
	aligned, olapped, free := tr.CountByClass()
	if aligned+olapped+free != sys.NumSubtasks() {
		t.Errorf("class counts %d+%d+%d != %d", aligned, olapped, free, sys.NumSubtasks())
	}
	if aligned == 0 {
		t.Error("expected at least the slot-0 subtasks to be Aligned")
	}
}

// Lemmas 3, 4 and the structural part of Lemma 5 at scale, across yield
// models and system shapes.
func TestTransformLemmasAtScale(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(3)
		q := int64(6 + rng.Intn(8))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(rng.Intn(3)))
		sys := gen.System(rng, ws, gen.SystemOptions{
			Horizon:    3 * q,
			JitterProb: rng.Intn(25),
			MaxJitter:  2,
			OmitProb:   rng.Intn(15),
		})
		var y sched.YieldFn
		switch trial % 3 {
		case 0:
			y = gen.UniformYield(int64(trial), 8)
		case 1:
			y = gen.BimodalYield(int64(trial), 50, 8)
		default:
			y = gen.AdversarialYield(rat.New(1, 8), nil)
		}
		dq, err := RunDVQ(sys, DVQOptions{M: m, Yield: y})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tr := BuildSB(dq)
		if err := tr.CheckLemma3(); err != nil {
			t.Fatalf("trial %d: Lemma 3: %v", trial, err)
		}
		if err := tr.CheckLemma4(); err != nil {
			t.Fatalf("trial %d: Lemma 4: %v", trial, err)
		}
		if err := tr.CheckSBStructure(); err != nil {
			t.Fatalf("trial %d: Lemma 5 (structure): %v", trial, err)
		}
		// Theorem 1 consequence: S_DQ tardiness ≤ ⌈max S_B tardiness⌉, and
		// both stay within one quantum (Theorems 2+3).
		if got := tr.MaxTardinessB(); rat.One.Less(got) {
			t.Fatalf("trial %d: S_B tardiness %s > 1", trial, got)
		}
	}
}

func TestTardinessBPanicsOnFree(t *testing.T) {
	sys := fig2System(6)
	dq, err := RunDVQ(sys, DVQOptions{M: 2, Yield: gen.UniformYield(5, 16)})
	if err != nil {
		t.Fatal(err)
	}
	tr := BuildSB(dq)
	var free *model.Subtask
	for sub, cl := range tr.Class {
		if cl == ClassFree {
			free = sub
			break
		}
	}
	if free == nil {
		t.Skip("no Free subtask in this trace")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TardinessB on Free subtask did not panic")
		}
	}()
	tr.TardinessB(free)
}
