package core

import (
	"math/rand"
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/oracle"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// TestTheorem3Property pins the paper's headline result as a property over
// 200 seeded random feasible GIS systems small enough for the exhaustive
// oracle: Σwt ≤ M makes the instance schedulable (the oracle finds a valid
// Pfair schedule by brute force — ground truth, no shared code with the
// engines), PD²-DVQ then meets Theorem 3's bound of at most one quantum of
// tardiness on every one of them, and the fast and reference engines agree
// on the observed maximum tardiness exactly.
//
// Instances draw utilization anywhere in (0, M] — not only the
// full-utilization corner the fuzz corpus favours — with IS jitter and
// omitted subtasks (GIS), across yield models from full-cost quanta to
// adversarial partial quanta.
func TestTheorem3Property(t *testing.T) {
	const instances = 200
	ran := 0
	for seed := int64(0); seed < instances; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + int(seed%2)
		q := int64(4 + rng.Intn(5)) // weight denominator and horizon, 4..8
		maxUnits := int64(m) * q
		n := 2 + rng.Intn(3) // tasks
		if int64(n) > maxUnits {
			n = int(maxUnits)
		}
		// Total utilization in units of 1/q: anywhere from one unit per
		// task up to full capacity.
		units := int64(n) + rng.Int63n(maxUnits-int64(n)+1)
		ws := gen.GridWeights(rng, n, q, units, gen.WeightClass(int(seed)%3))

		opts := gen.SystemOptions{Horizon: q}
		if seed%3 == 1 {
			opts.JitterProb, opts.MaxJitter = 30, 2
		}
		if seed%4 == 2 {
			opts.OmitProb = 20
		}
		sys := gen.System(rng, ws, opts)
		if err := sys.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid system: %v", seed, err)
		}
		if sys.NumSubtasks() == 0 || sys.NumSubtasks() > oracle.MaxSubtasks {
			continue // outside the exhaustive oracle's reach
		}
		ran++

		// Ground truth: a feasible-by-weight GIS system has a valid Pfair
		// schedule (the feasibility iff the admission layer relies on).
		ok, err := oracle.Exists(sys, m)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: oracle found no schedule for a feasible system (Σwt = %d/%d ≤ M = %d)",
				seed, units, q, m)
		}

		yields := []struct {
			name string
			y    sched.YieldFn
		}{
			{"full", sched.FullCost},
			{"uniform", gen.UniformYield(seed, 8)},
			{"adversarial", gen.AdversarialYield(rat.New(1, 16), nil)},
		}
		y := yields[int(seed)%len(yields)]

		fast, err := RunDVQ(sys, DVQOptions{M: m, Yield: y.y})
		if err != nil {
			t.Fatalf("seed %d: fast engine: %v", seed, err)
		}
		ref, err := RunDVQReference(sys, DVQOptions{M: m, Yield: y.y})
		if err != nil {
			t.Fatalf("seed %d: reference engine: %v", seed, err)
		}
		if err := fast.ValidateDVQ(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Theorem 3: tardiness never exceeds one quantum.
		if tar := fast.MaxTardiness(); rat.One.Less(tar) {
			t.Fatalf("seed %d (m=%d, yield %s): DVQ tardiness %s exceeds one quantum", seed, m, y.name, tar)
		}
		// And both engines observe the same worst case, exactly.
		if ft, rt := fast.MaxTardiness(), ref.MaxTardiness(); !ft.Equal(rt) {
			t.Fatalf("seed %d (yield %s): fast engine max tardiness %s, reference %s", seed, y.name, ft, rt)
		}
	}
	// The parameter ranges are chosen to keep nearly every draw inside
	// the oracle's cap; make sure the property actually got exercised.
	if ran < instances*3/4 {
		t.Fatalf("only %d/%d instances were oracle-checkable; tighten the generator", ran, instances)
	}
	t.Logf("verified Theorem 3 against the oracle on %d/%d instances", ran, instances)
}
