package core

import (
	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
)

// readyHeap is a binary min-heap of ready task heads ordered by the
// engine's deterministic total priority order (prio.Comparer.Order over
// cached keys). At most one subtask per task — the head of its released
// sequence — is ever in the heap, so its size is bounded by the task count
// and pop returns exactly the subtask the seed engine's O(n) rescan of all
// tasks would have selected.
type readyHeap struct {
	cmp  *prio.Comparer
	subs []*model.Subtask
}

func (h *readyHeap) len() int { return len(h.subs) }

func (h *readyHeap) push(s *model.Subtask) {
	xs := append(h.subs, s)
	i := len(xs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.cmp.Order(xs[i], xs[p]) {
			break
		}
		xs[i], xs[p] = xs[p], xs[i]
		i = p
	}
	h.subs = xs
}

// pop removes and returns the highest-priority ready head. It panics on an
// empty heap.
func (h *readyHeap) pop() *model.Subtask {
	xs := h.subs
	top := xs[0]
	n := len(xs) - 1
	xs[0] = xs[n]
	xs[n] = nil
	xs = xs[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.cmp.Order(xs[l], xs[min]) {
			min = l
		}
		if r < n && h.cmp.Order(xs[r], xs[min]) {
			min = r
		}
		if min == i {
			break
		}
		xs[i], xs[min] = xs[min], xs[i]
		i = min
	}
	h.subs = xs
	return top
}

// pendingHeap holds task heads that are not yet ready, keyed by the time
// they become so: max(eligibility, predecessor completion). Entries whose
// time has arrived are drained into the readyHeap at each event. Ties in
// activation time may pop in any order — the readyHeap re-orders them by
// priority before any scheduling decision reads them.
type pendingHeap []pendingEntry

type pendingEntry struct {
	at  rat.Rat
	sub *model.Subtask
}

func (h pendingHeap) len() int { return len(h) }

// top returns the earliest activation time. It panics on an empty heap.
func (h pendingHeap) top() rat.Rat { return h[0].at }

func (h *pendingHeap) push(at rat.Rat, s *model.Subtask) {
	xs := append(*h, pendingEntry{at, s})
	i := len(xs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !xs[i].at.Less(xs[p].at) {
			break
		}
		xs[i], xs[p] = xs[p], xs[i]
		i = p
	}
	*h = xs
}

// pop removes and returns the head with the earliest activation time. It
// panics on an empty heap.
func (h *pendingHeap) pop() *model.Subtask {
	xs := *h
	top := xs[0].sub
	n := len(xs) - 1
	xs[0] = xs[n]
	xs[n] = pendingEntry{}
	xs = xs[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && xs[l].at.Less(xs[min].at) {
			min = l
		}
		if r < n && xs[r].at.Less(xs[min].at) {
			min = r
		}
		if min == i {
			break
		}
		xs[i], xs[min] = xs[min], xs[i]
		i = min
	}
	*h = xs
	return top
}
