package core

import (
	"math/rand"
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// Fig. 2(b) exhibits eligibility blocking: at time 2, D_2 and E_2 (and F_2)
// are ready with deadline 4 but both processors run B_1 and C_1 (deadline
// 6), whose quanta began at 2−δ.
func TestFig2bEligibilityBlockingDetected(t *testing.T) {
	sys := fig2System(6)
	delta := rat.New(1, 4)
	dq, err := RunDVQ(sys, DVQOptions{M: 2, Yield: fig2Yield(sys, delta)})
	if err != nil {
		t.Fatal(err)
	}
	events := FindBlocking(dq, prio.PD2{})
	found := map[string]bool{}
	for _, e := range events {
		if e.Kind == EligibilityBlocked && e.T == 2 {
			found[e.Sub.String()] = true
			if e.By.Task.Name != "B" && e.By.Task.Name != "C" {
				t.Errorf("blocked by %s, want B_1 or C_1", e.By)
			}
		}
	}
	for _, w := range []string{"D_2", "E_2", "F_2"} {
		if !found[w] {
			t.Errorf("eligibility blocking of %s at t=2 not detected (events: %v)", w, events)
		}
	}
}

// With full quanta the DVQ schedule equals the SFQ PD² schedule, which has
// no priority inversions at all.
func TestNoBlockingWithFullQuanta(t *testing.T) {
	sys := fig2System(12)
	dq, err := RunDVQ(sys, DVQOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if events := FindBlocking(dq, prio.PD2{}); len(events) != 0 {
		t.Errorf("unexpected blocking events in synchronous schedule: %v", events)
	}
	if err := CheckPropertyPB(dq, prio.PD2{}); err != nil {
		t.Error(err)
	}
}

// Lemma 1 / Property PB at scale: every predecessor-blocking situation in a
// PD²-DVQ schedule carries its witness sets.
func TestPropertyPBAtScale(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	sawPredecessorBlocking := false
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(3)
		q := int64(6 + rng.Intn(8))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(rng.Intn(3)))
		sys := gen.System(rng, ws, gen.SystemOptions{
			Horizon:    3 * q,
			JitterProb: rng.Intn(25),
			MaxJitter:  2,
		})
		var y sched.YieldFn
		if trial%2 == 0 {
			y = gen.UniformYield(int64(trial), 8)
		} else {
			y = gen.AdversarialYield(rat.New(1, 16), nil)
		}
		dq, err := RunDVQ(sys, DVQOptions{M: m, Yield: y})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckPropertyPB(dq, prio.PD2{}); err != nil {
			t.Fatalf("trial %d (M=%d): %v", trial, m, err)
		}
		if CountBlocking(dq, prio.PD2{}).Predecessor > 0 {
			sawPredecessorBlocking = true
		}
	}
	if !sawPredecessorBlocking {
		t.Log("note: no predecessor blocking arose in this sample (eligibility blocking dominates)")
	}
}

func TestCountBlocking(t *testing.T) {
	sys := fig2System(6)
	dq, err := RunDVQ(sys, DVQOptions{M: 2, Yield: fig2Yield(sys, rat.New(1, 4))})
	if err != nil {
		t.Fatal(err)
	}
	st := CountBlocking(dq, prio.PD2{})
	if st.Eligibility < 3 {
		t.Errorf("eligibility blocking count = %d, want ≥ 3 (D_2, E_2, F_2 at t=2)", st.Eligibility)
	}
}

func TestBlockingEventString(t *testing.T) {
	sys := fig2System(6)
	sub := sys.All()[0]
	e := BlockingEvent{T: 2, Kind: EligibilityBlocked, Sub: sub, By: sub}
	if e.String() == "" {
		t.Error("empty event string")
	}
	if EligibilityBlocked.String() != "eligibility" || PredecessorBlocked.String() != "predecessor" {
		t.Error("kind strings wrong")
	}
}

// Lemma 2 must hold on every PD^B run, under both resolutions.
func TestLemma2OnFig6System(t *testing.T) {
	res, err := RunPDB(fig2System(6), PDBOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLemma2(res, prio.PD2{}); err != nil {
		t.Fatal(err)
	}
}

func TestLemma2AtScale(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(3)
		q := int64(6 + rng.Intn(8))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(rng.Intn(3)))
		sys := gen.System(rng, ws, gen.SystemOptions{
			Horizon:    3 * q,
			JitterProb: rng.Intn(30),
			MaxJitter:  2,
			OmitProb:   rng.Intn(15),
		})
		opts := PDBOptions{M: m}
		if trial%2 == 1 {
			opts.Resolution = Randomized{Rng: rand.New(rand.NewSource(int64(trial)))}
		}
		res, err := RunPDB(sys, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckLemma2(res, prio.PD2{}); err != nil {
			t.Fatalf("trial %d (M=%d): %v", trial, m, err)
		}
	}
}
