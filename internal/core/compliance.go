package core

import (
	"fmt"

	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// This file implements the k-compliance machinery of Sec. 3.3, the proof
// vehicle for Theorem 2 (PD^B ensures tardiness ≤ one quantum).
//
// Given a PD^B schedule S_B for τ^B, define the rank of each subtask as its
// position in the order S_B schedules them (slot by slot, then by decision
// order within the slot). τ^k ("k-compliant to τ^B") right-shifts every
// subtask's release and deadline by one slot and restores the *original*
// eligibility time for the k lowest-ranked subtasks (the rest stay shifted
// by one). A schedule is k-compliant to S_B when the k lowest-ranked
// subtasks sit in exactly their S_B slots, everything else is scheduled by
// PD², and no subtask misses its (shifted) deadline.
//
// Lemma 6 says a valid k-compliant schedule exists for every k; at k = n
// the whole of S_B is pinned, and validity against the shifted deadlines is
// precisely "tardiness at most one quantum" for S_B. RunCompliant builds
// the k-compliant schedule directly (pinned prefix + PD² fill), making the
// induction executable.

// ComplianceResult is the outcome of constructing a k-compliant schedule.
type ComplianceResult struct {
	K        int
	System   *model.System // τ^k
	Schedule *sched.Schedule
	// Image maps each subtask of τ^B to its counterpart in τ^k.
	Image map[*model.Subtask]*model.Subtask
}

// RunCompliant constructs τ^k and its k-compliant schedule from a PD^B run.
// The returned schedule has been structurally checked; use
// Schedule.ValidatePfair to assert full validity (the Lemma 6 claim).
func RunCompliant(sysB *model.System, pdb *PDBResult, k int) (*ComplianceResult, error) {
	sb := pdb.Schedule
	ranks := sb.Ranks()
	n := len(ranks)
	if k < 0 || k > n {
		return nil, fmt.Errorf("core: k = %d outside [0,%d]", k, n)
	}
	rankOf := make(map[*model.Subtask]int, n)
	for i, sub := range ranks {
		rankOf[sub] = i + 1 // ranks are 1-based in the paper
	}

	// Build τ^k with the image map.
	sysK := model.NewSystem()
	image := make(map[*model.Subtask]*model.Subtask, n)
	for _, task := range sysB.Tasks {
		tk := sysK.AddTask(task.Name+"'", task.W)
		for _, sub := range sysB.Subtasks(task) {
			elig := sub.Elig + 1
			if rankOf[sub] <= k {
				elig = sub.Elig
			}
			image[sub] = sysK.AddSubtask(tk, sub.Index, sub.Theta+1, elig)
		}
	}
	if err := sysK.Validate(); err != nil {
		return nil, fmt.Errorf("core: τ^%d invalid: %w", k, err)
	}

	// Pin the k lowest-ranked images to their S_B slots.
	pinned := make(map[*model.Subtask]int64) // image → slot
	for _, sub := range ranks[:k] {
		pinned[image[sub]] = sb.Of(sub).Slot()
	}

	s := sched.New(sysK, sb.M, fmt.Sprintf("PD2/%d-compliant", k), "SFQ")
	nTasks := len(sysK.Tasks)
	cursor := make([]int, nTasks)
	lastSlot := make([]int64, nTasks)
	for i := range lastSlot {
		lastSlot[i] = -1
	}
	remaining := sysK.NumSubtasks()
	pd2 := prio.PD2{}
	horizon := sysK.Horizon() + int64(remaining) + 2
	decision := 0

	for t := int64(0); remaining > 0; t++ {
		if t > horizon {
			return nil, fmt.Errorf("core: %d-compliant construction ran past horizon with %d pending", k, remaining)
		}
		used := 0
		schedule := func(sub *model.Subtask) {
			decision++
			s.Add(sched.Assignment{
				Sub: sub, Proc: used, Start: rat.FromInt(t), Cost: rat.One, Decision: decision,
			})
			used++
			cursor[sub.Task.ID]++
			lastSlot[sub.Task.ID] = t
			remaining--
		}
		// Place pins due this slot. Pins are heads by construction (ranks
		// within a task increase with sequence position).
		for _, task := range sysK.Tasks {
			seq := sysK.Subtasks(task)
			c := cursor[task.ID]
			if c >= len(seq) {
				continue
			}
			head := seq[c]
			slot, isPinned := pinned[head]
			if !isPinned {
				continue
			}
			if slot < t {
				return nil, fmt.Errorf("core: pin for %s at slot %d missed (now %d)", head, slot, t)
			}
			if slot == t {
				if head.Elig > t {
					return nil, fmt.Errorf("core: pinned %s not eligible in slot %d", head, t)
				}
				if c > 0 && lastSlot[task.ID] >= t {
					return nil, fmt.Errorf("core: pinned %s collides with predecessor in slot %d", head, t)
				}
				schedule(head)
			}
		}
		if used > sb.M {
			return nil, fmt.Errorf("core: %d pins in slot %d exceed M=%d", used, t, sb.M)
		}
		// Fill the remaining capacity with unpinned ready heads by PD².
		var ready []*model.Subtask
		for _, task := range sysK.Tasks {
			seq := sysK.Subtasks(task)
			c := cursor[task.ID]
			if c >= len(seq) {
				continue
			}
			head := seq[c]
			if _, isPinned := pinned[head]; isPinned {
				continue
			}
			if head.Elig > t {
				continue
			}
			if c > 0 && lastSlot[task.ID] >= t {
				continue
			}
			ready = append(ready, head)
		}
		sortPD2(ready, pd2)
		for _, sub := range ready {
			if used >= sb.M {
				break
			}
			schedule(sub)
		}
	}
	return &ComplianceResult{K: k, System: sysK, Schedule: s, Image: image}, nil
}

// CheckLemma6 runs the whole induction: for every k in [0, n] it constructs
// the k-compliant schedule and validates it (every subtask inside its
// shifted IS-window). The k = n case is exactly Theorem 2 for this S_B.
func CheckLemma6(sysB *model.System, pdb *PDBResult) error {
	n := sysB.NumSubtasks()
	for k := 0; k <= n; k++ {
		res, err := RunCompliant(sysB, pdb, k)
		if err != nil {
			return fmt.Errorf("k=%d: %w", k, err)
		}
		if err := res.Schedule.ValidatePfair(); err != nil {
			return fmt.Errorf("k=%d: schedule invalid: %w", k, err)
		}
	}
	return nil
}

// CheckClaim5 verifies, for every induction step k, the trichotomy that the
// appendix's Claim 5 extracts for the slot t = S_B(T_i) of the rank-(k+1)
// subtask T_i in the k-compliant schedule S_k:
//
//	(C1) there is a hole (an idle processor) in slot t of S_k, or
//	(C2/C3) some subtask U'_j is scheduled at t in S_k whose preimage U_j
//	        is not scheduled at t in S_B and T'_i ≼ U'_j under PD²,
//
// unless T'_i is already scheduled at t in S_k (no move needed). This is
// the executable content of the Lemma 6 induction step: it guarantees the
// (k+1)-compliant schedule can be formed by inserting T'_i into slot t.
func CheckClaim5(sysB *model.System, pdb *PDBResult) error {
	ranks := pdb.Schedule.Ranks()
	pd2 := prio.PD2{}
	for k := 0; k < len(ranks); k++ {
		res, err := RunCompliant(sysB, pdb, k)
		if err != nil {
			return fmt.Errorf("k=%d: %w", k, err)
		}
		ti := ranks[k] // the rank-(k+1) subtask of τ^B
		t := pdb.Schedule.Of(ti).Slot()
		tiImg := res.Image[ti]
		if a := res.Schedule.Of(tiImg); a != nil && a.Slot() == t {
			continue // already in place
		}
		// (C1): hole in slot t of S_k?
		if len(res.Schedule.InSlot(t)) < res.Schedule.M {
			continue
		}
		// (C2/C3): a displaceable U'_j of equal-or-lower PD² priority whose
		// preimage is elsewhere in S_B.
		found := false
		for _, a := range res.Schedule.InSlot(t) {
			var pre *model.Subtask
			for bSub, img := range res.Image {
				if img == a.Sub {
					pre = bSub
					break
				}
			}
			if pre == nil {
				return fmt.Errorf("k=%d: image %s has no preimage", k, a.Sub)
			}
			if pdb.Schedule.Of(pre).Slot() == t {
				continue // its preimage occupies t in S_B too: not displaceable
			}
			if pd2.Cmp(tiImg, a.Sub) <= 0 {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("k=%d: no hole and no displaceable subtask in slot %d for %s", k, t, ti)
		}
	}
	return nil
}
