package core

import (
	"container/heap"
	"fmt"

	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// RunDVQReference is the seed implementation of RunDVQ, retained verbatim
// as the golden oracle for the fast-path engine: an O(n) rescan of every
// task per scheduling decision with priorities recomputed via prio.Order on
// each comparison, a container/heap event queue, and map-based duplicate
// elimination. It is deliberately naive — its only job is to define the
// semantics that RunDVQ must reproduce assignment-for-assignment (see
// TestEngineEquivalence). Do not optimize it.
func RunDVQReference(sys *model.System, opts DVQOptions) (*sched.Schedule, error) {
	if err := opts.fill(sys); err != nil {
		return nil, err
	}
	s := sched.New(sys, opts.M, opts.Policy.Name(), "DVQ")

	n := len(sys.Tasks)
	cursor := make([]int, n)
	lastFinish := make([]rat.Rat, n)
	freeAt := make([]rat.Rat, opts.M)
	remaining := sys.NumSubtasks()

	events := &refRatHeap{}
	heap.Init(events)
	seen := map[rat.Rat]bool{}
	push := func(t rat.Rat) {
		if !seen[t] {
			seen[t] = true
			heap.Push(events, t)
		}
	}
	push(rat.Zero)
	for _, sub := range sys.All() {
		push(rat.FromInt(sub.Elig))
	}

	bestReady := func(now rat.Rat) *model.Subtask {
		var best *model.Subtask
		for _, task := range sys.Tasks {
			seq := sys.Subtasks(task)
			c := cursor[task.ID]
			if c >= len(seq) {
				continue
			}
			head := seq[c]
			if now.Less(rat.FromInt(head.Elig)) {
				continue
			}
			if c > 0 && now.Less(lastFinish[task.ID]) {
				continue
			}
			if best == nil || prio.Order(opts.Policy, head, best) {
				best = head
			}
		}
		return best
	}

	decision := 0
	horizon := rat.FromInt(opts.Horizon)
	for remaining > 0 {
		if events.Len() == 0 {
			return s, fmt.Errorf("core: event queue drained with %d subtasks pending", remaining)
		}
		now := heap.Pop(events).(rat.Rat)
		delete(seen, now)
		if horizon.Less(now) {
			return s, fmt.Errorf("core: horizon %s exhausted with %d subtasks pending", horizon, remaining)
		}
		for p := 0; p < opts.M; p++ {
			if now.Less(freeAt[p]) {
				continue // still executing its current quantum
			}
			sub := bestReady(now)
			if sub == nil {
				continue
			}
			decision++
			a := s.Add(sched.Assignment{
				Sub:      sub,
				Proc:     p,
				Start:    now,
				Cost:     opts.Yield(sub),
				Decision: decision,
			})
			cursor[sub.Task.ID]++
			lastFinish[sub.Task.ID] = a.Finish()
			freeAt[p] = a.Finish()
			push(a.Finish())
			remaining--
		}
	}
	return s, nil
}

// refRatHeap is the seed engine's boxed min-heap of rational times; it
// exists only to keep RunDVQReference byte-for-byte naive.
type refRatHeap []rat.Rat

func (h refRatHeap) Len() int            { return len(h) }
func (h refRatHeap) Less(i, j int) bool  { return h[i].Less(h[j]) }
func (h refRatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refRatHeap) Push(x interface{}) { *h = append(*h, x.(rat.Rat)) }
func (h *refRatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
