package core

import (
	"fmt"

	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// This file implements the blocking analysis of Sec. 3.1: detecting the two
// kinds of priority inversion a DVQ schedule can exhibit, and verifying the
// structural guarantee (Property PB / Lemma 1) that predecessor blocking
// can only occur when matching higher-priority subtasks with eligibility
// exactly t are scheduled at t.

// BlockingKind distinguishes the paper's two priority-inversion types.
type BlockingKind int

const (
	// EligibilityBlocked: a subtask was ready at the first slot t of its
	// IS-window (e = t) but every processor was running a quantum started
	// just before t, at least one of them on a lower-priority subtask.
	EligibilityBlocked BlockingKind = iota
	// PredecessorBlocked: a subtask released earlier (e < t) became ready
	// exactly at t (its predecessor completed at t) and lost its processor
	// to a lower-priority subtask.
	PredecessorBlocked
)

func (k BlockingKind) String() string {
	if k == EligibilityBlocked {
		return "eligibility"
	}
	return "predecessor"
}

// BlockingEvent records one priority inversion observed in a DVQ schedule:
// at integral time T, subtask Sub (ready, unscheduled) waited while the
// strictly lower-priority subtask By was executing.
type BlockingEvent struct {
	T    int64
	Kind BlockingKind
	Sub  *model.Subtask
	By   *model.Subtask
}

func (e BlockingEvent) String() string {
	return fmt.Sprintf("t=%d: %s %s-blocked by %s", e.T, e.Sub, e.Kind, e.By)
}

// readyBy reports whether sub is ready at or before time x in dq: eligible
// and its predecessor (if any) has completed by x.
func readyBy(dq *sched.Schedule, sub *model.Subtask, x rat.Rat) bool {
	if x.Less(rat.FromInt(sub.Elig)) {
		return false
	}
	if pred := dq.Sys.Predecessor(sub); pred != nil {
		pa := dq.Of(pred)
		if pa == nil || x.Less(pa.Finish()) {
			return false
		}
	}
	return true
}

// executingAt returns the assignments executing at integral time t in the
// paper's sense: scheduled in the interval (t−1, t].
func executingAt(dq *sched.Schedule, t int64) []*sched.Assignment {
	var out []*sched.Assignment
	lo, hi := rat.FromInt(t-1), rat.FromInt(t)
	for _, a := range dq.Assignments() {
		if lo.Less(a.Start) && a.Start.LessEq(hi) {
			out = append(out, a)
		}
	}
	return out
}

// FindBlocking scans a DVQ schedule and returns every priority inversion at
// integral times, classified per the paper. The policy is the one the
// schedule was produced with (PD² in the paper).
func FindBlocking(dq *sched.Schedule, pol prio.Policy) []BlockingEvent {
	var events []BlockingEvent
	horizon := dq.Makespan().Ceil()
	for t := int64(0); t <= horizon; t++ {
		running := executingAt(dq, t)
		for _, sub := range dq.Sys.All() {
			a := dq.Of(sub)
			if a == nil || !rat.FromInt(t).Less(a.Start) {
				continue // scheduled at or before t
			}
			if !readyBy(dq, sub, rat.FromInt(t)) {
				continue
			}
			// sub is ready at t yet unscheduled: find a strictly
			// lower-priority subtask executing at t.
			for _, r := range running {
				if r.Sub == sub || !prio.Prec(pol, sub, r.Sub) {
					continue
				}
				kind := EligibilityBlocked
				if sub.Elig < t {
					kind = PredecessorBlocked
				}
				events = append(events, BlockingEvent{T: t, Kind: kind, Sub: sub, By: r.Sub})
				break // one witness per (t, sub) suffices
			}
		}
	}
	return events
}

// CheckPropertyPB verifies Lemma 1 on a DVQ schedule: for every integral
// time t and every subtask T_i executing at t, let 𝒰 be the set of
// subtasks with e ≤ t−1 that are ready at or before t, have strictly
// higher PD² priority than T_i, and are scheduled after t. Then
//
//	(a) every U ∈ 𝒰 has a predecessor completing exactly at t, and
//	(b) there is a set 𝒱 of at least |𝒰| subtasks with e(V) = t that are
//	    scheduled exactly at t, each with PD² priority ≥ every U ∈ 𝒰.
func CheckPropertyPB(dq *sched.Schedule, pol prio.Policy) error {
	horizon := dq.Makespan().Ceil()
	tRat := func(t int64) rat.Rat { return rat.FromInt(t) }
	for t := int64(1); t <= horizon; t++ {
		running := executingAt(dq, t)
		for _, ti := range running {
			// Build 𝒰 for this T_i.
			var U []*model.Subtask
			for _, sub := range dq.Sys.All() {
				a := dq.Of(sub)
				if a == nil || !tRat(t).Less(a.Start) {
					continue // (16) requires S(U_j) > t
				}
				if sub.Elig > t-1 {
					continue // (13): e(U_j) ≤ t−1
				}
				if !readyBy(dq, sub, tRat(t)) {
					continue // (13): ready at or before t
				}
				if !prio.Prec(pol, sub, ti.Sub) {
					continue // (14): U_j ≺ T_i
				}
				U = append(U, sub)
			}
			if len(U) == 0 {
				continue
			}
			// (a): each U_j's predecessor completes exactly at t.
			for _, u := range U {
				pred := dq.Sys.Predecessor(u)
				if pred == nil {
					return fmt.Errorf("core: PropertyPB(a) violated at t=%d: %s blocked (by %s) has no predecessor", t, u, ti.Sub)
				}
				if !dq.Of(pred).Finish().Equal(tRat(t)) {
					return fmt.Errorf("core: PropertyPB(a) violated at t=%d: predecessor of %s completes at %s, not t",
						t, u, dq.Of(pred).Finish())
				}
			}
			// (b): find 𝒱.
			var V []*model.Subtask
			for _, a := range dq.Assignments() {
				if !a.Start.Equal(tRat(t)) || a.Sub.Elig != t {
					continue
				}
				ok := true
				for _, u := range U {
					if pol.Cmp(a.Sub, u) > 0 {
						ok = false
						break
					}
				}
				if ok {
					V = append(V, a.Sub)
				}
			}
			if len(V) < len(U) {
				return fmt.Errorf("core: PropertyPB(b) violated at t=%d: |𝒰|=%d but only %d witnesses scheduled at t",
					t, len(U), len(V))
			}
		}
	}
	return nil
}

// BlockingStats summarizes the inversions in a schedule.
type BlockingStats struct {
	Eligibility int
	Predecessor int
}

// CountBlocking tallies FindBlocking events by kind.
func CountBlocking(dq *sched.Schedule, pol prio.Policy) BlockingStats {
	var st BlockingStats
	for _, e := range FindBlocking(dq, pol) {
		if e.Kind == EligibilityBlocked {
			st.Eligibility++
		} else {
			st.Predecessor++
		}
	}
	return st
}

// CheckLemma2 verifies Lemma 2 — the PD^B counterpart of Property PB — on
// a PD^B run: for every slot t, every scheduled subtask T_i and every set
// 𝒰 of subtasks with e ≤ t−1 that are ready at t, have strictly higher
// PD² priority than T_i, and are scheduled after t, there is a set 𝒱 of
// at least |𝒰| subtasks with eligibility exactly t that are scheduled at
// t, each of PD² priority ≥ every member of 𝒰, with T_i selected before
// every member of 𝒱 in the slot's decision order.
func CheckLemma2(res *PDBResult, pol prio.Policy) error {
	s := res.Schedule
	for _, slot := range res.Slots {
		t := slot.T
		// Ready-but-later-scheduled subtasks with e ≤ t−1: members of the
		// slot's PB ∪ DB that were not picked.
		var later []*model.Subtask
		for _, u := range append(append([]*model.Subtask{}, slot.PB...), slot.DB...) {
			if a := s.Of(u); a != nil && a.Slot() > t {
				later = append(later, u)
			}
		}
		if len(later) == 0 {
			continue
		}
		for pos, ti := range slot.Picks {
			// 𝒰 for this T_i.
			var U []*model.Subtask
			for _, u := range later {
				if prio.Prec(pol, u, ti) {
					U = append(U, u)
				}
			}
			if len(U) == 0 {
				continue
			}
			// 𝒱: picks with e = t, selected after T_i, ≼ every U member.
			V := 0
			for vpos, v := range slot.Picks {
				if vpos <= pos || v.Elig != t {
					continue
				}
				ok := true
				for _, u := range U {
					if pol.Cmp(v, u) > 0 {
						ok = false
						break
					}
				}
				if ok {
					V++
				}
			}
			if V < len(U) {
				return fmt.Errorf("core: Lemma 2 violated at t=%d: %s scheduled over |𝒰|=%d higher-priority subtasks with only %d witnesses",
					t, ti, len(U), V)
			}
		}
	}
	return nil
}
