package core

import (
	"fmt"
	"sort"

	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// CheckWorkConserving verifies the defining property of the DVQ model: at
// no moment does a processor idle while a ready, unscheduled subtask
// exists. Each assignment must start either the moment its subtask became
// ready (eligibility or predecessor completion, whichever is later) or
// after a waiting interval throughout which every processor was executing.
//
// The SFQ model deliberately fails this check whenever a subtask yields
// early (the quantum residue is idled away), which is exactly the
// inefficiency the paper's model removes — see experiment E7.
func CheckWorkConserving(s *sched.Schedule) error {
	type interval struct{ lo, hi rat.Rat }
	// Merge each processor's busy intervals (touching intervals join).
	merged := make([][]interval, s.M)
	for p := 0; p < s.M; p++ {
		var ivs []interval
		for _, a := range s.Assignments() {
			if a.Proc == p {
				ivs = append(ivs, interval{a.Start, a.Finish()})
			}
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo.Less(ivs[j].lo) })
		for _, iv := range ivs {
			if n := len(merged[p]); n > 0 && !merged[p][n-1].hi.Less(iv.lo) {
				merged[p][n-1].hi = rat.Max(merged[p][n-1].hi, iv.hi)
			} else {
				merged[p] = append(merged[p], iv)
			}
		}
	}
	// covers reports whether processor p executes throughout [lo, hi].
	covers := func(p int, lo, hi rat.Rat) bool {
		for _, iv := range merged[p] {
			if !lo.Less(iv.lo) && !iv.hi.Less(hi) {
				return true
			}
		}
		return false
	}
	for _, a := range s.Assignments() {
		ready := rat.FromInt(a.Sub.Elig)
		if pred := s.Sys.Predecessor(a.Sub); pred != nil {
			pa := s.Of(pred)
			if pa == nil {
				return fmt.Errorf("core: %s scheduled without predecessor", a.Sub)
			}
			ready = rat.Max(ready, pa.Finish())
		}
		if a.Start.Equal(ready) {
			continue
		}
		if a.Start.Less(ready) {
			return fmt.Errorf("core: %s starts at %s before ready time %s", a.Sub, a.Start, ready)
		}
		for p := 0; p < s.M; p++ {
			if !covers(p, ready, a.Start) {
				return fmt.Errorf("core: %s ready at %s but started %s while processor %d idled in between",
					a.Sub, ready, a.Start, p)
			}
		}
	}
	return nil
}
