package core

import "desyncpfair/internal/rat"

// ratHeap is a typed binary min-heap of rational times — the DVQ event
// queue. The seed engine drove a ratHeap through container/heap, which
// boxes every pushed time into an interface{} (one allocation per event)
// and dedupped with a map[rat.Rat]bool; the typed methods here allocate
// nothing beyond amortized slice growth, and duplicates are instead pushed
// freely and skipped lazily on pop (popEq). It is reused by the DVQ
// engine's event queue and is available to any future rational-time engine
// in this package.
type ratHeap []rat.Rat

func (h ratHeap) len() int { return len(h) }

// top returns the minimum without removing it. It panics on an empty heap.
func (h ratHeap) top() rat.Rat { return h[0] }

// push inserts t, keeping the heap invariant.
func (h *ratHeap) push(t rat.Rat) {
	xs := append(*h, t)
	i := len(xs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !xs[i].Less(xs[p]) {
			break
		}
		xs[i], xs[p] = xs[p], xs[i]
		i = p
	}
	*h = xs
}

// pop removes and returns the minimum. It panics on an empty heap.
func (h *ratHeap) pop() rat.Rat {
	xs := *h
	top := xs[0]
	n := len(xs) - 1
	xs[0] = xs[n]
	xs = xs[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && xs[l].Less(xs[min]) {
			min = l
		}
		if r < n && xs[r].Less(xs[min]) {
			min = r
		}
		if min == i {
			break
		}
		xs[i], xs[min] = xs[min], xs[i]
		i = min
	}
	*h = xs
	return top
}

// popEq discards every copy of t at the top of the heap — the lazy half of
// duplicate elimination: push never checks for duplicates, popEq drops them
// when their time comes.
func (h *ratHeap) popEq(t rat.Rat) {
	for h.len() > 0 && h.top().Equal(t) {
		h.pop()
	}
}
