package core

import (
	"math/rand"
	"testing"

	"desyncpfair/internal/gen"
)

// Fig. 6: the full induction on the 3×(1/6) + 3×(1/2) system. k = 0 is the
// plain PD² schedule of the right-shifted system (Fig. 6(b)); k = 4 is the
// 4-compliant system of Fig. 6(c); k = n pins all of S_B and certifies
// Theorem 2 for it.
func TestFig6ComplianceInduction(t *testing.T) {
	sys := fig2System(6)
	res, err := RunPDB(sys, PDBOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLemma6(sys, res); err != nil {
		t.Fatal(err)
	}
}

func TestComplianceK0IsPlainPD2(t *testing.T) {
	sys := fig2System(6)
	pdb, err := RunPDB(sys, PDBOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCompliant(sys, pdb, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every image is right-shifted by one slot, including eligibility.
	for _, sub := range sys.All() {
		img := res.Image[sub]
		if img.Theta != sub.Theta+1 || img.Elig != sub.Elig+1 {
			t.Errorf("image of %s has θ=%d e=%d, want θ=%d e=%d", sub, img.Theta, img.Elig, sub.Theta+1, sub.Elig+1)
		}
		if img.Deadline() != sub.Deadline()+1 || img.Release() != sub.Release()+1 {
			t.Errorf("image window of %s not shifted by one", sub)
		}
	}
	if err := res.Schedule.ValidatePfair(); err != nil {
		t.Errorf("0-compliant (plain PD²) schedule invalid: %v", err)
	}
}

func TestComplianceKNPinsAllOfSB(t *testing.T) {
	sys := fig2System(6)
	pdb, err := RunPDB(sys, PDBOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := sys.NumSubtasks()
	res, err := RunCompliant(sys, pdb, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range sys.All() {
		img := res.Image[sub]
		if img.Elig != sub.Elig {
			t.Errorf("image of %s should have original eligibility at k=n", sub)
		}
		want := pdb.Schedule.Of(sub).Slot()
		if got := res.Schedule.Of(img).Slot(); got != want {
			t.Errorf("image of %s in slot %d, want pinned slot %d", sub, got, want)
		}
	}
	if err := res.Schedule.ValidatePfair(); err != nil {
		t.Errorf("n-compliant schedule invalid (would contradict Theorem 2): %v", err)
	}
}

func TestComplianceRejectsBadK(t *testing.T) {
	sys := fig2System(6)
	pdb, err := RunPDB(sys, PDBOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCompliant(sys, pdb, -1); err == nil {
		t.Error("k = -1 accepted")
	}
	if _, err := RunCompliant(sys, pdb, sys.NumSubtasks()+1); err == nil {
		t.Error("k > n accepted")
	}
}

// Lemma 6 at scale: the full induction over random feasible GIS systems.
func TestLemma6AtScale(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(2)
		q := int64(6 + rng.Intn(4))
		n := m + 1 + rng.Intn(m+1)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{
			Horizon:    2 * q,
			JitterProb: rng.Intn(20),
			MaxJitter:  2,
			OmitProb:   rng.Intn(10),
		})
		pdb, err := RunPDB(sys, PDBOptions{M: m})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckLemma6(sys, pdb); err != nil {
			t.Fatalf("trial %d (M=%d): %v", trial, m, err)
		}
	}
}

// The appendix's Claim 5 trichotomy must hold at every induction step.
func TestClaim5OnFig6System(t *testing.T) {
	sys := fig2System(6)
	pdb, err := RunPDB(sys, PDBOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckClaim5(sys, pdb); err != nil {
		t.Fatal(err)
	}
}

func TestClaim5AtScale(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.Intn(2)
		q := int64(6 + rng.Intn(4))
		n := m + 1 + rng.Intn(m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{Horizon: 2 * q, JitterProb: 15, MaxJitter: 2})
		pdb, err := RunPDB(sys, PDBOptions{M: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckClaim5(sys, pdb); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
