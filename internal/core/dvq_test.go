package core

import (
	"math/rand"
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
	"desyncpfair/internal/sfq"
)

// fig2System is the running example of Fig. 2: A, B, C of weight 1/6 and
// D, E, F of weight 1/2, total utilization two, on two processors.
func fig2System(horizon int64) *model.System {
	return model.Periodic([]model.Weight{
		model.W(1, 6), model.W(1, 6), model.W(1, 6),
		model.W(1, 2), model.W(1, 2), model.W(1, 2),
	}, horizon)
}

// fig2Yield makes A_1 and F_1 yield δ early, as in Fig. 2(b).
func fig2Yield(sys *model.System, delta rat.Rat) sched.YieldFn {
	c := rat.One.Sub(delta)
	return func(s *model.Subtask) rat.Rat {
		if (s.Task.Name == "A" || s.Task.Name == "F") && s.Index == 1 {
			return c
		}
		return rat.One
	}
}

// TestFig2bDVQTrace replays Fig. 2(b) exactly: the work-conserving DVQ
// scheduler starts B_1 and C_1 at 2−δ, which blocks D_2 and E_2 at time 2
// (eligibility blocking) and ultimately makes F_2 miss its deadline at 4,
// completing at 5−δ.
func TestFig2bDVQTrace(t *testing.T) {
	sys := fig2System(6)
	delta := rat.New(1, 4)
	s, err := RunDVQ(sys, DVQOptions{M: 2, Yield: fig2Yield(sys, delta)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDVQ(); err != nil {
		t.Fatal(err)
	}
	byName := func(name string, idx int64) *model.Subtask {
		for _, sub := range sys.All() {
			if sub.Task.Name == name && sub.Index == idx {
				return sub
			}
		}
		t.Fatalf("no subtask %s_%d", name, idx)
		return nil
	}
	twoMinusDelta := rat.FromInt(2).Sub(delta)
	wantStarts := []struct {
		name  string
		idx   int64
		start rat.Rat
	}{
		{"D", 1, rat.Zero},
		{"E", 1, rat.Zero},
		{"F", 1, rat.One},
		{"A", 1, rat.One},
		{"B", 1, twoMinusDelta},
		{"C", 1, twoMinusDelta},
		{"D", 2, rat.FromInt(3).Sub(delta)},
		{"E", 2, rat.FromInt(3).Sub(delta)},
		{"F", 2, rat.FromInt(4).Sub(delta)},
		{"D", 3, rat.FromInt(4)},
		{"E", 3, rat.FromInt(5).Sub(delta)},
		{"F", 3, rat.FromInt(5)},
	}
	for _, w := range wantStarts {
		a := s.Of(byName(w.name, w.idx))
		if a == nil {
			t.Fatalf("%s_%d unscheduled", w.name, w.idx)
		}
		if !a.Start.Equal(w.start) {
			t.Errorf("S(%s_%d) = %s, want %s", w.name, w.idx, a.Start, w.start)
		}
	}
	// F_2 (deadline 4) completes at 5−δ: tardiness 1−δ.
	f2 := byName("F", 2)
	if got, want := s.Tardiness(f2), rat.One.Sub(delta); !got.Equal(want) {
		t.Errorf("tardiness(F_2) = %s, want %s", got, want)
	}
	if got := s.MaxTardiness(); !got.Equal(rat.One.Sub(delta)) {
		t.Errorf("max tardiness = %s, want %s", got, rat.One.Sub(delta))
	}
}

// With full quanta the DVQ model degenerates to the SFQ model: every
// decision happens on a slot boundary and PD² meets all deadlines.
func TestDVQWithFullQuantaEqualsSFQ(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(3)
		q := int64(6 + rng.Intn(8))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{Horizon: 3 * q})
		dvq, err := RunDVQ(sys, DVQOptions{M: m})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range dvq.Assignments() {
			if !a.Start.IsInt() {
				t.Fatalf("trial %d: full-quanta DVQ start %s not integral", trial, a.Start)
			}
		}
		if err := dvq.ValidatePfair(); err != nil {
			t.Fatalf("trial %d: full-quanta PD²-DVQ missed a deadline: %v", trial, err)
		}
		want, err := sfq.Run(sys, sfq.Options{M: m})
		if err != nil {
			t.Fatal(err)
		}
		for _, sub := range sys.All() {
			if !dvq.Of(sub).Start.Equal(want.Of(sub).Start) {
				t.Fatalf("trial %d: %s scheduled at %s under DVQ but %s under SFQ",
					trial, sub, dvq.Of(sub).Start, want.Of(sub).Start)
			}
		}
	}
}

// Theorem 3 at scale: PD²-DVQ tardiness is at most one quantum for every
// feasible GIS task system, under arbitrary yield behaviour.
func TestTheorem3TardinessAtMostOneQuantum(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	one := rat.One
	for trial := 0; trial < 80; trial++ {
		m := 2 + rng.Intn(3)
		q := int64(6 + rng.Intn(8))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(rng.Intn(3)))
		sys := gen.System(rng, ws, gen.SystemOptions{
			Horizon:    3 * q,
			JitterProb: rng.Intn(30),
			MaxJitter:  2,
			OmitProb:   rng.Intn(20),
		})
		var yield sched.YieldFn
		switch trial % 3 {
		case 0:
			yield = gen.UniformYield(int64(trial), 8)
		case 1:
			yield = gen.BimodalYield(int64(trial), 60, 8)
		default:
			yield = gen.AdversarialYield(rat.New(1, 16), nil)
		}
		s, err := RunDVQ(sys, DVQOptions{M: m, Yield: yield})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.ValidateDVQ(); err != nil {
			t.Fatalf("trial %d: invalid DVQ schedule: %v", trial, err)
		}
		if got := s.MaxTardiness(); one.Less(got) {
			t.Fatalf("trial %d (M=%d): tardiness %s exceeds one quantum", trial, m, got)
		}
	}
}

// The DVQ scheduler is work-conserving: no processor idles at any moment
// when a ready, unscheduled subtask exists. We verify on the Fig. 2 system
// by checking that every assignment's start is either its eligibility, its
// predecessor's finish, or the moment a processor became free.
func TestDVQWorkConserving(t *testing.T) {
	sys := fig2System(6)
	delta := rat.New(1, 8)
	s, err := RunDVQ(sys, DVQOptions{M: 2, Yield: fig2Yield(sys, delta)})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range s.Assignments() {
		start := a.Start
		// Lower bound on feasible start: max(eligibility, predecessor finish).
		lb := rat.FromInt(a.Sub.Elig)
		if pred := sys.Predecessor(a.Sub); pred != nil {
			lb = rat.Max(lb, s.Of(pred).Finish())
		}
		if start.Equal(lb) {
			continue // started the moment it became ready
		}
		// Otherwise the subtask waited for a processor: at start⁻ both
		// processors must have been executing quanta that end at start.
		busyUntil := 0
		for _, b := range s.Assignments() {
			if b == a {
				continue
			}
			if b.Start.Less(start) && !b.Finish().Less(start) {
				busyUntil++
			}
		}
		if busyUntil < s.M {
			t.Errorf("%s started at %s though ready at %s with a processor free", a.Sub, start, lb)
		}
	}
}

func TestDVQDeterministic(t *testing.T) {
	sys := fig2System(12)
	y := gen.UniformYield(7, 8)
	s1, err1 := RunDVQ(sys, DVQOptions{M: 2, Yield: y})
	s2, err2 := RunDVQ(sys, DVQOptions{M: 2, Yield: y})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for _, sub := range sys.All() {
		a1, a2 := s1.Of(sub), s2.Of(sub)
		if !a1.Start.Equal(a2.Start) || a1.Proc != a2.Proc {
			t.Fatalf("nondeterministic schedule for %s", sub)
		}
	}
}

func TestDVQRejectsBadOptions(t *testing.T) {
	if _, err := RunDVQ(fig2System(6), DVQOptions{M: 0}); err == nil {
		t.Error("M = 0 accepted")
	}
}

func TestDVQHorizonExhaustion(t *testing.T) {
	sys := model.Periodic([]model.Weight{model.W(1, 1), model.W(1, 1), model.W(1, 1)}, 10)
	if _, err := RunDVQ(sys, DVQOptions{M: 2, Horizon: 12}); err == nil {
		t.Error("expected horizon exhaustion on infeasible system")
	}
}

// EPDF under DVQ also stays within one quantum of its SFQ tardiness on two
// processors (where EPDF is optimal): tardiness ≤ 1.
func TestEPDFDVQOnTwoProcessors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		q := int64(6 + rng.Intn(6))
		n := 3 + rng.Intn(4)
		if int64(n) > 2*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, 2*q, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{Horizon: 3 * q})
		s, err := RunDVQ(sys, DVQOptions{M: 2, Policy: prio.EPDF{}, Yield: gen.UniformYield(int64(trial), 8)})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.MaxTardiness(); rat.One.Less(got) {
			t.Fatalf("trial %d: EPDF-DVQ tardiness %s > 1 on M=2", trial, got)
		}
	}
}

// Long-period, near-weight-1 tasks with fine yield grids stress the exact
// rational arithmetic (large denominators, many events) without overflow.
func TestDVQLongPeriodsStress(t *testing.T) {
	sys := model.Periodic([]model.Weight{
		model.W(999, 1000), model.W(499, 500), model.W(1, 1000), model.W(1, 500),
	}, 1000)
	if !sys.Feasible(2) {
		t.Fatalf("utilization %s > 2", sys.TotalUtilization())
	}
	s, err := RunDVQ(sys, DVQOptions{M: 2, Yield: gen.UniformYield(3, 128)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDVQ(); err != nil {
		t.Fatal(err)
	}
	if got := s.MaxTardiness(); rat.One.Less(got) {
		t.Fatalf("tardiness %s > 1", got)
	}
	if s.Len() < 1990 {
		t.Fatalf("only %d subtasks scheduled", s.Len())
	}
}

// The two PD^B resolutions may diverge yet both must satisfy Theorem 2;
// at least one diverging system exists in a small sample (otherwise the
// Resolution abstraction would be dead weight).
func TestResolutionsDivergeButBothHold(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	diverged := false
	for trial := 0; trial < 25 && !diverged; trial++ {
		m := 2 + rng.Intn(2)
		q := int64(6 + rng.Intn(6))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{Horizon: 3 * q, JitterProb: 25, MaxJitter: 2})
		a, err := RunPDB(sys, PDBOptions{M: m})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunPDB(sys, PDBOptions{M: m, Resolution: Randomized{Rng: rand.New(rand.NewSource(int64(trial)))}})
		if err != nil {
			t.Fatal(err)
		}
		if !sched.Equal(a.Schedule, b.Schedule) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("MaxBlocking and Randomized never diverged across 25 systems")
	}
}
