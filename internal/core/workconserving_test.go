package core

import (
	"math/rand"
	"strings"
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
	"desyncpfair/internal/sfq"
)

func TestDVQSchedulesAreWorkConserving(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(3)
		q := int64(6 + rng.Intn(8))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(rng.Intn(3)))
		sys := gen.System(rng, ws, gen.SystemOptions{
			Horizon:    3 * q,
			JitterProb: rng.Intn(25),
			MaxJitter:  2,
			OmitProb:   rng.Intn(15),
		})
		var y sched.YieldFn
		switch trial % 3 {
		case 0:
			y = gen.UniformYield(int64(trial), 8)
		case 1:
			y = gen.BimodalYield(int64(trial), 50, 8)
		default:
			y = gen.AdversarialYield(rat.New(1, 8), nil)
		}
		dq, err := RunDVQ(sys, DVQOptions{M: m, Yield: y})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckWorkConserving(dq); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// The SFQ model strands quantum residue: with early yields it must fail the
// work-conservation check (the fig-2 construction makes the failure
// definite — B_1 is ready at 0 but slots 0 and 1 contain early yields).
func TestSFQWithEarlyYieldsIsNotWorkConserving(t *testing.T) {
	sys := fig2System(6)
	s, err := sfq.Run(sys, sfq.Options{M: 2, Yield: fig2Yield(sys, rat.New(1, 4))})
	if err != nil {
		t.Fatal(err)
	}
	err = CheckWorkConserving(s)
	if err == nil {
		t.Fatal("SFQ schedule with early yields passed the work-conservation check")
	}
	if !strings.Contains(err.Error(), "idled") {
		t.Errorf("unexpected error: %v", err)
	}
}

// With full quanta the SFQ schedule is work-conserving at full utilization
// (no slot idles until the workload drains).
func TestSFQFullQuantaFullUtilizationIsWorkConserving(t *testing.T) {
	sys := fig2System(6)
	s, err := sfq.Run(sys, sfq.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckWorkConserving(s); err != nil {
		t.Fatal(err)
	}
}

// The online executive inherits work conservation from the DVQ rule.
func TestStaggeredIsNotGenerallyWorkConserving(t *testing.T) {
	// Staggered quanta wait for the processor's own grid point even when
	// work is ready: the check must fail on a contended system with
	// desynchronized readiness.
	sys := fig2System(6)
	s, err := sfq.Run(sys, sfq.Options{M: 2, Staggered: true, Yield: fig2Yield(sys, rat.New(1, 4))})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckWorkConserving(s); err == nil {
		t.Log("note: this staggered run happened to be work-conserving")
	}
}
