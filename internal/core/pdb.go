package core

import (
	"fmt"
	"math/rand"
	"sort"

	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// PD^B (Sec. 3.1 of the paper) is an SFQ-model algorithm that mimics, at
// slot boundaries, the two priority inversions a subtask can suffer under
// PD²-DVQ:
//
//   - eligibility blocking — a subtask whose IS-window begins at t can find
//     every processor taken because quanta began just before t;
//   - predecessor blocking — a subtask released earlier but held up by its
//     predecessor until t can lose its processor to a lower-priority
//     subtask, provided (Property PB) an equal-or-higher-priority subtask
//     with eligibility exactly t is scheduled at t.
//
// At each slot t, the ready subtasks are partitioned into
//
//	EB(t) = { T_i ready : e(T_i) = t }                            (eq. 9)
//	PB(t) = { T_i ready : e(T_i) < t ∧ predecessor ran in t−1 }   (eq. 10)
//	DB(t) = remaining ready subtasks                              (eq. 11)
//
// and M scheduling decisions are made in sequence. With p = |PB(t)| fixed
// before the first decision, Table 1 of the paper constrains decision r:
// in the first M−p decisions, DB subtasks may (and, to mimic blocking, do)
// precede everything, EB subtasks may be overtaken by DB ones regardless of
// PD² priority, and PB subtasks are excluded unless nothing else remains;
// the final p decisions are strictly by PD².
//
// Table 1 defines a family of behaviours ("may be scheduled prior to …");
// a Resolution picks one. The schedule PD^B produces is valid in the SFQ
// sense and, by Theorem 2, never misses a deadline by more than one
// quantum.

// Resolution selects a subtask for one PD^B scheduling decision among the
// legal candidates allowed by Table 1.
type Resolution interface {
	Name() string
	// PickFree selects for a decision r ≤ M−p. db and eb are the remaining
	// DB(t,r) and EB(t,r) sets in PD² order (highest priority first); pb is
	// non-empty only when both db and eb are empty (the forced case).
	PickFree(db, eb, pb []*model.Subtask) *model.Subtask
	// PickStrict selects for a decision r > M−p from the PD²-maximal
	// candidates (all of equal PD² priority).
	PickStrict(maximal []*model.Subtask) *model.Subtask
}

// MaxBlocking is the default resolution: it schedules, in the free phase,
// all of DB(t) (in PD² order) before any EB subtask — the legal behaviour
// that maximizes both blocking types and therefore stresses the Theorem 2
// bound hardest. Strict-phase ties go to the deterministic engine order.
type MaxBlocking struct{}

func (MaxBlocking) Name() string { return "max-blocking" }

func (MaxBlocking) PickFree(db, eb, pb []*model.Subtask) *model.Subtask {
	if len(db) > 0 {
		return db[0]
	}
	if len(eb) > 0 {
		return eb[0]
	}
	return pb[0]
}

func (MaxBlocking) PickStrict(maximal []*model.Subtask) *model.Subtask { return maximal[0] }

// Randomized samples other legal Table-1 behaviours; used by property tests
// to check Theorem 2 over the whole PD^B family, not just MaxBlocking.
type Randomized struct{ Rng *rand.Rand }

func (Randomized) Name() string { return "randomized" }

func (r Randomized) PickFree(db, eb, pb []*model.Subtask) *model.Subtask {
	// Legal free-phase picks: the PD²-maximal DB subtask (and its ties), or
	// any EB subtask that is maximal within EB and not strictly preceded by
	// a remaining DB subtask. Collect and choose uniformly.
	var cands []*model.Subtask
	pd2 := prio.PD2{}
	if len(db) > 0 {
		cands = append(cands, equivClass(db, pd2)...)
	}
	if len(eb) > 0 {
		for _, s := range equivClass(eb, pd2) {
			if len(db) == 0 || pd2.Cmp(s, db[0]) <= 0 {
				cands = append(cands, s)
			}
		}
	}
	if len(cands) == 0 {
		cands = equivClass(pb, pd2)
	}
	return cands[r.Rng.Intn(len(cands))]
}

func (r Randomized) PickStrict(maximal []*model.Subtask) *model.Subtask {
	return maximal[r.Rng.Intn(len(maximal))]
}

// equivClass returns the leading subtasks of the PD²-sorted slice xs that
// are of equal PD² priority with xs[0].
func equivClass(xs []*model.Subtask, p prio.Policy) []*model.Subtask {
	if len(xs) == 0 {
		return nil
	}
	end := 1
	for end < len(xs) && p.Cmp(xs[end], xs[0]) == 0 {
		end++
	}
	return xs[:end]
}

// PDBOptions configures a PD^B run.
type PDBOptions struct {
	M          int
	Yield      sched.YieldFn // affects recorded costs only; PD^B is slot-based
	Resolution Resolution    // nil defaults to MaxBlocking
	Horizon    int64         // 0 derives a safe bound
}

// SlotInfo records the PD^B partition and decisions of one slot, for the
// blocking analysis and the k-compliance machinery.
type SlotInfo struct {
	T          int64
	EB, PB, DB []*model.Subtask // partition at the start of the slot, PD²-sorted
	P          int              // p = |PB(T)|
	Picks      []*model.Subtask // scheduled subtasks in decision order
}

// PDBResult bundles the schedule with the per-slot decision trace.
type PDBResult struct {
	Schedule *sched.Schedule
	Slots    []SlotInfo
}

// RunPDB schedules sys under algorithm PD^B in the SFQ model.
func RunPDB(sys *model.System, opts PDBOptions) (*PDBResult, error) {
	if opts.M < 1 {
		return nil, fmt.Errorf("core: M = %d", opts.M)
	}
	if opts.Yield == nil {
		opts.Yield = sched.FullCost
	}
	if opts.Resolution == nil {
		opts.Resolution = MaxBlocking{}
	}
	if opts.Horizon == 0 {
		opts.Horizon = sys.Horizon() + int64(sys.NumSubtasks()) + 2
	}
	s := sched.New(sys, opts.M, "PDB/"+opts.Resolution.Name(), "SFQ")
	res := &PDBResult{Schedule: s}

	n := len(sys.Tasks)
	cursor := make([]int, n)
	lastSlot := make([]int64, n)
	for i := range lastSlot {
		lastSlot[i] = -2
	}
	remaining := sys.NumSubtasks()
	pd2 := prio.PD2{}
	decision := 0

	for t := int64(0); remaining > 0; t++ {
		if t > opts.Horizon {
			return res, fmt.Errorf("core: horizon %d exhausted with %d subtasks pending", opts.Horizon, remaining)
		}
		// Partition the ready heads.
		var eb, pb, db []*model.Subtask
		for _, task := range sys.Tasks {
			seq := sys.Subtasks(task)
			c := cursor[task.ID]
			if c >= len(seq) {
				continue
			}
			head := seq[c]
			if head.Elig > t {
				continue
			}
			if c > 0 && lastSlot[task.ID] >= t {
				continue // cannot run in the same slot as its predecessor
			}
			switch {
			case head.Elig == t:
				eb = append(eb, head)
			case c > 0 && lastSlot[task.ID] == t-1:
				pb = append(pb, head)
			default:
				db = append(db, head)
			}
		}
		sortPD2(eb, pd2)
		sortPD2(pb, pd2)
		sortPD2(db, pd2)
		p := len(pb)
		info := SlotInfo{
			T:  t,
			EB: append([]*model.Subtask(nil), eb...),
			PB: append([]*model.Subtask(nil), pb...),
			DB: append([]*model.Subtask(nil), db...),
			P:  p,
		}

		for r := 1; r <= opts.M; r++ {
			if len(eb)+len(pb)+len(db) == 0 {
				break
			}
			var pick *model.Subtask
			if r <= opts.M-p {
				pick = opts.Resolution.PickFree(db, eb, pb)
			} else {
				all := mergePD2(eb, pb, db, pd2)
				pick = opts.Resolution.PickStrict(equivClass(all, pd2))
			}
			eb = removeSub(eb, pick)
			pb = removeSub(pb, pick)
			db = removeSub(db, pick)

			decision++
			s.Add(sched.Assignment{
				Sub:      pick,
				Proc:     r - 1,
				Start:    rat.FromInt(t),
				Cost:     opts.Yield(pick),
				Decision: decision,
			})
			cursor[pick.Task.ID]++
			lastSlot[pick.Task.ID] = t
			remaining--
			info.Picks = append(info.Picks, pick)
		}
		res.Slots = append(res.Slots, info)
	}
	return res, nil
}

func sortPD2(xs []*model.Subtask, p prio.Policy) {
	sort.SliceStable(xs, func(i, j int) bool { return prio.Order(p, xs[i], xs[j]) })
}

// mergePD2 returns the concatenation of the three sets re-sorted by PD²
// engine order.
func mergePD2(eb, pb, db []*model.Subtask, p prio.Policy) []*model.Subtask {
	all := make([]*model.Subtask, 0, len(eb)+len(pb)+len(db))
	all = append(all, eb...)
	all = append(all, pb...)
	all = append(all, db...)
	sortPD2(all, p)
	return all
}

func removeSub(xs []*model.Subtask, s *model.Subtask) []*model.Subtask {
	for i, v := range xs {
		if v == s {
			return append(xs[:i:i], xs[i+1:]...)
		}
	}
	return xs
}
