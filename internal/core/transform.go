package core

import (
	"fmt"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// This file implements the schedule transform of Sec. 3.2: reducing a
// PD²-DVQ schedule S_DQ to an SFQ-model schedule S_B whose tardiness
// dominates it (up to a ceiling).
//
// Subtasks of S_DQ are classified as
//
//	Aligned — commence execution on a slot boundary;
//	Olapped — neither commence nor complete on a boundary but are in the
//	          middle of execution at one;
//	Free    — everything else (executed strictly inside one slot).
//
// Charged = Aligned ∪ Olapped. The task system τ′ consists of the Charged
// subtasks only, and S_B schedules each at its S_DQ time if Aligned, or
// postponed to the next boundary if Olapped. Lemma 3 (commencement and
// completion only move later), Lemma 4 (every S_DQ tardiness is bounded by
// the ceiling of some S_B tardiness) and the structural part of Lemma 5
// (S_B is an SFQ-legal schedule for τ′) all have executable checkers here.

// Class is the Sec. 3.2 classification of a DVQ assignment.
type Class int

const (
	ClassAligned Class = iota
	ClassOlapped
	ClassFree
)

func (c Class) String() string {
	switch c {
	case ClassAligned:
		return "Aligned"
	case ClassOlapped:
		return "Olapped"
	default:
		return "Free"
	}
}

// Classify returns the Sec. 3.2 class of a DVQ assignment.
func Classify(a *sched.Assignment) Class {
	if a.Start.IsInt() {
		return ClassAligned
	}
	boundary := rat.FromInt(a.Start.Floor() + 1)
	if boundary.Less(a.Finish()) { // strictly mid-execution at the boundary
		return ClassOlapped
	}
	return ClassFree
}

// Transform is the result of building S_B from a DVQ schedule.
type Transform struct {
	DQ *sched.Schedule
	// B maps each Charged subtask to its S_B assignment (same processor
	// and cost; start postponed to the next boundary for Olapped ones).
	B map[*model.Subtask]sched.Assignment
	// Class maps every scheduled subtask to its classification.
	Class map[*model.Subtask]Class
}

// BuildSB constructs S_B from a DVQ schedule per the Sec. 3.2 definition.
func BuildSB(dq *sched.Schedule) *Transform {
	tr := &Transform{
		DQ:    dq,
		B:     make(map[*model.Subtask]sched.Assignment),
		Class: make(map[*model.Subtask]Class),
	}
	for _, a := range dq.Assignments() {
		cl := Classify(a)
		tr.Class[a.Sub] = cl
		switch cl {
		case ClassAligned:
			tr.B[a.Sub] = *a
		case ClassOlapped:
			b := *a
			b.Start = rat.FromInt(a.Start.Ceil())
			tr.B[a.Sub] = b
		}
	}
	return tr
}

// Charged reports whether sub is in τ′ (Aligned or Olapped).
func (tr *Transform) Charged(sub *model.Subtask) bool {
	_, ok := tr.B[sub]
	return ok
}

// TardinessB returns sub's tardiness in S_B (sub must be Charged).
func (tr *Transform) TardinessB(sub *model.Subtask) rat.Rat {
	b, ok := tr.B[sub]
	if !ok {
		panic(fmt.Sprintf("core: %s is not Charged", sub))
	}
	return rat.Max(rat.Zero, b.Finish().Sub(rat.FromInt(sub.Deadline())))
}

// MaxTardinessB returns the maximum tardiness over τ′ in S_B.
func (tr *Transform) MaxTardinessB() rat.Rat {
	m := rat.Zero
	for sub := range tr.B {
		m = rat.Max(m, tr.TardinessB(sub))
	}
	return m
}

// CheckLemma3 verifies that every Charged subtask's commencement and
// completion times in S_B are at least their values in S_DQ.
func (tr *Transform) CheckLemma3() error {
	for sub, b := range tr.B {
		a := tr.DQ.Of(sub)
		if b.Start.Less(a.Start) {
			return fmt.Errorf("core: %s commences at %s in S_B before %s in S_DQ", sub, b.Start, a.Start)
		}
		if b.Finish().Less(a.Finish()) {
			return fmt.Errorf("core: %s completes at %s in S_B before %s in S_DQ", sub, b.Finish(), a.Finish())
		}
	}
	return nil
}

// CheckLemma4 verifies that for every subtask T_i of τ,
// tardiness(T_i, S_DQ) ≤ ⌈tardiness(U_j, S_B)⌉ for some U_j in τ′.
// For Charged subtasks the witness is the subtask itself (via Lemma 3);
// for Free subtasks the natural witness is the Charged subtask executing at
// the enclosing slot boundary on the same processor, but since the lemma
// only asserts existence, the checker accepts any Charged witness.
func (tr *Transform) CheckLemma4() error {
	// Precompute the best available bound: the max ⌈tardiness⌉ over τ′.
	best := int64(0)
	for sub := range tr.B {
		if c := tr.TardinessB(sub).Ceil(); c > best {
			best = c
		}
	}
	for _, a := range tr.DQ.Assignments() {
		tard := tr.DQ.Tardiness(a.Sub)
		if tard.Sign() == 0 {
			continue
		}
		if tr.Charged(a.Sub) {
			if tr.TardinessB(a.Sub).Less(tard) {
				return fmt.Errorf("core: charged %s tardier in S_DQ (%s) than in S_B (%s)",
					a.Sub, tard, tr.TardinessB(a.Sub))
			}
			continue
		}
		if rat.FromInt(best).Less(tard) {
			return fmt.Errorf("core: free %s has tardiness %s with no charged witness (max ⌈tardiness⌉ in S_B is %d)",
				a.Sub, tard, best)
		}
	}
	return nil
}

// CheckSBStructure verifies the structural half of Lemma 5: S_B is a legal
// SFQ-model schedule for τ′ — integral starts, at most one subtask per
// processor per slot, at most M per slot, eligibility respected, and
// consecutive Charged subtasks of a task in order.
func (tr *Transform) CheckSBStructure() error {
	type cell struct {
		slot int64
		proc int
	}
	perCell := map[cell]*model.Subtask{}
	perSlot := map[int64]int{}
	lastOfTask := map[int]*sched.Assignment{}

	// Walk in S_B start order for the per-task sequencing check.
	subs := make([]*model.Subtask, 0, len(tr.B))
	for sub := range tr.B {
		subs = append(subs, sub)
	}
	model.SortSubtasks(subs)

	for _, sub := range subs {
		b := tr.B[sub]
		if !b.Start.IsInt() {
			return fmt.Errorf("core: S_B start %s of %s not integral", b.Start, sub)
		}
		slot := b.Start.Int()
		if slot < sub.Elig {
			return fmt.Errorf("core: %s in S_B slot %d before eligibility %d", sub, slot, sub.Elig)
		}
		c := cell{slot, b.Proc}
		if other := perCell[c]; other != nil {
			return fmt.Errorf("core: S_B processor %d slot %d holds both %s and %s", b.Proc, slot, other, sub)
		}
		perCell[c] = sub
		perSlot[slot]++
		if perSlot[slot] > tr.DQ.M {
			return fmt.Errorf("core: S_B slot %d exceeds M=%d", slot, tr.DQ.M)
		}
		if prev := lastOfTask[sub.Task.ID]; prev != nil {
			if b.Start.Less(prev.Finish()) {
				return fmt.Errorf("core: %s starts at %s in S_B before τ′-predecessor %s completes at %s",
					sub, b.Start, prev.Sub, prev.Finish())
			}
		}
		bCopy := b
		lastOfTask[sub.Task.ID] = &bCopy
	}
	return nil
}

// CountByClass returns how many scheduled subtasks fall in each class.
func (tr *Transform) CountByClass() (aligned, olapped, free int) {
	for _, cl := range tr.Class {
		switch cl {
		case ClassAligned:
			aligned++
		case ClassOlapped:
			olapped++
		default:
			free++
		}
	}
	return
}
