package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
)

func subByName(t *testing.T, sys *model.System, name string, idx int64) *model.Subtask {
	t.Helper()
	for _, sub := range sys.All() {
		if sub.Task.Name == name && sub.Index == idx {
			return sub
		}
	}
	t.Fatalf("no subtask %s_%d", name, idx)
	return nil
}

// TestFig6aPDBSchedule replays Fig. 6(a) (equivalently Fig. 2(c)): the PD^B
// schedule of the 3×(1/6) + 3×(1/2) system on two processors. B_1 and C_1
// occupy slot 2 (mimicking the eligibility blocking of Fig. 2(b)), F_2
// slips to slot 4 and misses its deadline by exactly one quantum, and F_3
// is predecessor-blocked into the strict phase of slot 5 but still meets
// its deadline.
func TestFig6aPDBSchedule(t *testing.T) {
	sys := fig2System(6)
	res, err := RunPDB(sys, PDBOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schedule
	if err := s.ValidateSFQ(); err != nil {
		t.Fatal(err)
	}
	want := []struct {
		name string
		idx  int64
		slot int64
	}{
		{"D", 1, 0}, {"E", 1, 0},
		{"F", 1, 1}, {"A", 1, 1},
		{"B", 1, 2}, {"C", 1, 2},
		{"D", 2, 3}, {"E", 2, 3},
		{"F", 2, 4}, {"D", 3, 4},
		{"E", 3, 5}, {"F", 3, 5},
	}
	for _, w := range want {
		a := s.Of(subByName(t, sys, w.name, w.idx))
		if a.Slot() != w.slot {
			t.Errorf("%s_%d in slot %d, want %d", w.name, w.idx, a.Slot(), w.slot)
		}
	}
	f2 := subByName(t, sys, "F", 2)
	if got := s.Tardiness(f2); !got.Equal(rat.One) {
		t.Errorf("tardiness(F_2) = %s, want exactly 1", got)
	}
	if got := s.MissCount(); got != 1 {
		t.Errorf("miss count = %d, want 1 (only F_2)", got)
	}
}

// The paper's running example of the EB/PB/DB classification: "at time 2,
// {B_1, C_1, D_2, E_2, F_2} is the set of all subtasks that are ready. Of
// these, D_2, E_2, and F_2 are in EB(2), and the remaining are in DB(2)."
func TestPDBPartitionAtSlot2MatchesPaper(t *testing.T) {
	sys := fig2System(6)
	res, err := RunPDB(sys, PDBOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	var slot2 *SlotInfo
	for i := range res.Slots {
		if res.Slots[i].T == 2 {
			slot2 = &res.Slots[i]
		}
	}
	if slot2 == nil {
		t.Fatal("no slot 2 in trace")
	}
	names := func(subs []*model.Subtask) map[string]bool {
		m := map[string]bool{}
		for _, s := range subs {
			m[s.String()] = true
		}
		return m
	}
	eb := names(slot2.EB)
	for _, w := range []string{"D_2", "E_2", "F_2"} {
		if !eb[w] {
			t.Errorf("EB(2) missing %s (got %v)", w, eb)
		}
	}
	db := names(slot2.DB)
	for _, w := range []string{"B_1", "C_1"} {
		if !db[w] {
			t.Errorf("DB(2) missing %s (got %v)", w, db)
		}
	}
	if len(slot2.PB) != 0 || slot2.P != 0 {
		t.Errorf("PB(2) should be empty, got %v (p=%d)", slot2.PB, slot2.P)
	}
}

// F_3 at slot 5: predecessor F_2 ran in slot 4, eligibility 4 < 5 → PB(5).
func TestPDBPredecessorBlockedSetAtSlot5(t *testing.T) {
	sys := fig2System(6)
	res, err := RunPDB(sys, PDBOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	var slot5 *SlotInfo
	for i := range res.Slots {
		if res.Slots[i].T == 5 {
			slot5 = &res.Slots[i]
		}
	}
	if slot5 == nil {
		t.Fatal("no slot 5")
	}
	if slot5.P != 1 || len(slot5.PB) != 1 || slot5.PB[0].String() != "F_3" {
		t.Errorf("PB(5) = %v (p=%d), want {F_3}", slot5.PB, slot5.P)
	}
}

// Theorem 2 at scale: PD^B ensures tardiness ≤ 1 for every feasible GIS
// system, under the blocking-maximizing resolution.
func TestTheorem2PDBTardinessAtMostOne(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 80; trial++ {
		m := 2 + rng.Intn(3)
		q := int64(6 + rng.Intn(8))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(rng.Intn(3)))
		sys := gen.System(rng, ws, gen.SystemOptions{
			Horizon:    3 * q,
			JitterProb: rng.Intn(30),
			MaxJitter:  2,
			OmitProb:   rng.Intn(20),
		})
		res, err := RunPDB(sys, PDBOptions{M: m})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Schedule.ValidateSFQ(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := res.Schedule.MaxTardiness(); rat.One.Less(got) {
			t.Fatalf("trial %d (M=%d): PD^B tardiness %s > 1", trial, m, got)
		}
	}
}

// Theorem 2 must hold for every legal Table-1 resolution, not just
// MaxBlocking: sample random resolutions.
func TestTheorem2HoldsForRandomizedResolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(2)
		q := int64(6 + rng.Intn(6))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{Horizon: 3 * q, JitterProb: 20, MaxJitter: 2})
		res, err := RunPDB(sys, PDBOptions{
			M:          m,
			Resolution: Randomized{Rng: rand.New(rand.NewSource(int64(trial)))},
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Schedule.ValidateSFQ(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := res.Schedule.MaxTardiness(); rat.One.Less(got) {
			t.Fatalf("trial %d: randomized PD^B tardiness %s > 1", trial, got)
		}
	}
}

// Within each slot, the picks made in the strict phase (r > M−p) must be
// PD²-maximal among what remained: no remaining subtask may strictly
// precede a strict-phase pick at the moment it was picked.
func TestPDBStrictPhaseRespectsPD2(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pd2 := prio.PD2{}
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(2)
		q := int64(6 + rng.Intn(6))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{Horizon: 3 * q, JitterProb: 25, MaxJitter: 2})
		res, err := RunPDB(sys, PDBOptions{M: m})
		if err != nil {
			t.Fatal(err)
		}
		for _, slot := range res.Slots {
			remaining := map[*model.Subtask]bool{}
			for _, s := range slot.EB {
				remaining[s] = true
			}
			for _, s := range slot.PB {
				remaining[s] = true
			}
			for _, s := range slot.DB {
				remaining[s] = true
			}
			for r, pick := range slot.Picks {
				delete(remaining, pick)
				if r+1 <= res.Schedule.M-slot.P {
					continue // free phase: inversions are the point
				}
				for other := range remaining {
					if pd2.Cmp(other, pick) < 0 {
						t.Fatalf("slot %d decision %d: strict phase picked %s while %s strictly precedes",
							slot.T, r+1, pick, other)
					}
				}
			}
		}
	}
}

// PD^B with no early eligibilities and no blocking opportunities degrades
// gracefully: on a system where every subtask's predecessor finished well
// before and all eligibility times are releases, slots where EB and PB are
// empty schedule exactly by PD².
func TestPDBRejectsBadOptions(t *testing.T) {
	if _, err := RunPDB(fig2System(6), PDBOptions{M: 0}); err == nil {
		t.Error("M = 0 accepted")
	}
}

func TestPDBHorizonExhaustion(t *testing.T) {
	sys := model.Periodic([]model.Weight{model.W(1, 1), model.W(1, 1), model.W(1, 1)}, 10)
	if _, err := RunPDB(sys, PDBOptions{M: 2, Horizon: 12}); err == nil {
		t.Error("expected horizon exhaustion on infeasible system")
	}
}

// Claims 1 and 2 of the paper, verified on PD^B traces: when a free-phase
// decision schedules T_i from DB (or EB) while a strictly higher-priority
// U_j waits in PB, every subtask remaining in DB (resp. DB ∪ EB) at later
// decisions also has lower priority than U_j — so the final p decisions
// can never be forced to prefer a remaining subtask over U_j.
func TestClaims1And2OnTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	pd2 := prio.PD2{}
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(3)
		q := int64(6 + rng.Intn(8))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(rng.Intn(3)))
		sys := gen.System(rng, ws, gen.SystemOptions{Horizon: 3 * q, JitterProb: 25, MaxJitter: 2})
		res, err := RunPDB(sys, PDBOptions{M: m})
		if err != nil {
			t.Fatal(err)
		}
		for _, slot := range res.Slots {
			inPB := map[*model.Subtask]bool{}
			for _, u := range slot.PB {
				inPB[u] = true
			}
			inEB := map[*model.Subtask]bool{}
			for _, s := range slot.EB {
				inEB[s] = true
			}
			free := res.Schedule.M - slot.P
			for r, pick := range slot.Picks {
				if r+1 > free || inPB[pick] {
					continue // strict phase, or the forced-PB corner
				}
				// U_j: highest-priority PB member strictly preceding pick.
				for _, u := range slot.PB {
					if pd2.Cmp(u, pick) >= 0 {
						continue
					}
					// Claim: every LATER pick from DB (Claim 1) or DB ∪ EB
					// (Claim 2, when pick ∈ EB) has priority below u.
					// (The check below is Claim 2's stronger form — it covers
					// later picks from both DB and EB — which subsumes Claim 1.)
					for _, later := range slot.Picks[r+1:] {
						if inPB[later] {
							continue
						}
						if pd2.Cmp(u, later) > 0 {
							t.Fatalf("t=%d: %s (PB) ≺ free-phase pick %s, yet later pick %s strictly precedes %s",
								slot.T, u, pick, later, u)
						}
					}
				}
			}
		}
	}
}

// Theorem 3 as a testing/quick property over the core engine: any seed
// maps to a feasible GIS system + yield model, and the bound must hold.
func TestQuickTheorem3(t *testing.T) {
	f := func(seed int64, mRaw, dyn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + int(mRaw%3)
		q := int64(6 + rng.Intn(6))
		n := m + 1 + rng.Intn(m)
		if int64(n) > int64(m)*q {
			return true
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(int(dyn)%3))
		sys := gen.System(rng, ws, gen.SystemOptions{Horizon: 2 * q, JitterProb: int(dyn) % 30, MaxJitter: 2})
		s, err := RunDVQ(sys, DVQOptions{M: m, Yield: gen.UniformYield(seed, 8)})
		if err != nil {
			return false
		}
		return !rat.One.Less(s.MaxTardiness()) && s.ValidateDVQ() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
