// Package core implements the contribution of Devi & Anderson (IPPS 2005):
//
//   - the DVQ model — desynchronized, variable-size quanta — as an
//     event-driven, work-conserving scheduler over exact rational time
//     (this file);
//   - algorithm PD^B, the SFQ-model algorithm that mimics the priority
//     inversions possible under PD²-DVQ (pdb.go);
//   - the S_DQ → S_B schedule transform of Sec. 3.2, with executable
//     checkers for Lemmas 3–5 (transform.go);
//   - blocking analysis: detection of eligibility- and predecessor-blocked
//     subtasks and of the Property-PB witness sets (blocking.go);
//   - the k-compliance machinery of Sec. 3.3 / Lemma 6 (compliance.go).
package core

import (
	"fmt"

	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// DVQOptions configures a DVQ-model run.
type DVQOptions struct {
	M      int           // number of processors (≥ 1)
	Policy prio.Policy   // nil defaults to PD² (the paper's PD²-DVQ)
	Yield  sched.YieldFn // nil defaults to full quanta
	// Horizon caps simulated time; 0 derives a safe bound.
	Horizon int64
}

func (o *DVQOptions) fill(sys *model.System) error {
	if o.M < 1 {
		return fmt.Errorf("core: M = %d", o.M)
	}
	if o.Policy == nil {
		o.Policy = prio.PD2{}
	}
	if o.Yield == nil {
		o.Yield = sched.FullCost
	}
	if o.Horizon == 0 {
		o.Horizon = sys.Horizon() + int64(sys.NumSubtasks()) + 2
	}
	return nil
}

// RunDVQ simulates sys under the DVQ model: whenever a processor becomes
// available (at any rational time), a new quantum begins immediately and is
// allocated to the highest-priority ready subtask; if a subtask yields an
// interval δ before the end of its quantum, that time is reclaimed rather
// than wasted. Decisions at equal times are made in processor-index order.
//
// With opts.Policy == PD² this is the paper's PD²-DVQ. The returned
// schedule satisfies Schedule.ValidateDVQ for any valid task system.
//
// This is the fast-path engine: priorities are compared through cached
// prio.Keys, the ready set is an indexed heap updated incrementally as task
// heads arrive and advance, and the event queue is a typed, allocation-free
// min-heap with lazy duplicate elimination. RunDVQReference retains the
// seed implementation; TestEngineEquivalence pins the two to identical
// schedules.
func RunDVQ(sys *model.System, opts DVQOptions) (*sched.Schedule, error) {
	if err := opts.fill(sys); err != nil {
		return nil, err
	}
	s := sched.New(sys, opts.M, opts.Policy.Name(), "DVQ")

	cmp := prio.NewComparer(opts.Policy, sys)
	freeAt := make([]rat.Rat, opts.M)
	remaining := sys.NumSubtasks()

	// Seed the event queue with time zero and every eligibility time;
	// quantum completions are pushed as they are created. Any moment at
	// which a scheduling decision could newly succeed is one of these.
	// A task head waits in pending until its activation time — the moment
	// it becomes ready: its eligibility for the first subtask of a task,
	// max(eligibility, predecessor completion) afterwards. Both components
	// are always in the event queue, so heads are drained into the ready
	// heap exactly when the seed engine's rescan would first see them.
	events := make(ratHeap, 0, remaining+1)
	events.push(rat.Zero)
	pending := make(pendingHeap, 0, len(sys.Tasks))
	ready := readyHeap{cmp: cmp, subs: make([]*model.Subtask, 0, len(sys.Tasks))}
	for _, task := range sys.Tasks {
		for _, sub := range sys.Subtasks(task) {
			events.push(rat.FromInt(sub.Elig))
		}
		if seq := sys.Subtasks(task); len(seq) > 0 {
			pending.push(rat.FromInt(seq[0].Elig), seq[0])
		}
	}

	decision := 0
	horizon := rat.FromInt(opts.Horizon)
	for remaining > 0 {
		if events.len() == 0 {
			return s, fmt.Errorf("core: event queue drained with %d subtasks pending", remaining)
		}
		now := events.pop()
		events.popEq(now)
		if horizon.Less(now) {
			return s, fmt.Errorf("core: horizon %s exhausted with %d subtasks pending", horizon, remaining)
		}
		for pending.len() > 0 && !now.Less(pending.top()) {
			ready.push(pending.pop())
		}
		for p := 0; p < opts.M && ready.len() > 0; p++ {
			if now.Less(freeAt[p]) {
				continue // still executing its current quantum
			}
			sub := ready.pop()
			decision++
			a := s.Add(sched.Assignment{
				Sub:      sub,
				Proc:     p,
				Start:    now,
				Cost:     opts.Yield(sub),
				Decision: decision,
			})
			fin := a.Finish()
			if next := sys.Successor(sub); next != nil {
				// fin > now ≥ any time processed so far, so the successor's
				// activation (and its event) lies strictly in the future.
				pending.push(rat.Max(rat.FromInt(next.Elig), fin), next)
			}
			freeAt[p] = fin
			events.push(fin)
			remaining--
		}
	}
	return s, nil
}
