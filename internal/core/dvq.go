// Package core implements the contribution of Devi & Anderson (IPPS 2005):
//
//   - the DVQ model — desynchronized, variable-size quanta — as an
//     event-driven, work-conserving scheduler over exact rational time
//     (this file);
//   - algorithm PD^B, the SFQ-model algorithm that mimics the priority
//     inversions possible under PD²-DVQ (pdb.go);
//   - the S_DQ → S_B schedule transform of Sec. 3.2, with executable
//     checkers for Lemmas 3–5 (transform.go);
//   - blocking analysis: detection of eligibility- and predecessor-blocked
//     subtasks and of the Property-PB witness sets (blocking.go);
//   - the k-compliance machinery of Sec. 3.3 / Lemma 6 (compliance.go).
package core

import (
	"container/heap"
	"fmt"

	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// DVQOptions configures a DVQ-model run.
type DVQOptions struct {
	M      int           // number of processors (≥ 1)
	Policy prio.Policy   // nil defaults to PD² (the paper's PD²-DVQ)
	Yield  sched.YieldFn // nil defaults to full quanta
	// Horizon caps simulated time; 0 derives a safe bound.
	Horizon int64
}

func (o *DVQOptions) fill(sys *model.System) error {
	if o.M < 1 {
		return fmt.Errorf("core: M = %d", o.M)
	}
	if o.Policy == nil {
		o.Policy = prio.PD2{}
	}
	if o.Yield == nil {
		o.Yield = sched.FullCost
	}
	if o.Horizon == 0 {
		o.Horizon = sys.Horizon() + int64(sys.NumSubtasks()) + 2
	}
	return nil
}

// RunDVQ simulates sys under the DVQ model: whenever a processor becomes
// available (at any rational time), a new quantum begins immediately and is
// allocated to the highest-priority ready subtask; if a subtask yields an
// interval δ before the end of its quantum, that time is reclaimed rather
// than wasted. Decisions at equal times are made in processor-index order.
//
// With opts.Policy == PD² this is the paper's PD²-DVQ. The returned
// schedule satisfies Schedule.ValidateDVQ for any valid task system.
func RunDVQ(sys *model.System, opts DVQOptions) (*sched.Schedule, error) {
	if err := opts.fill(sys); err != nil {
		return nil, err
	}
	s := sched.New(sys, opts.M, opts.Policy.Name(), "DVQ")

	n := len(sys.Tasks)
	cursor := make([]int, n)
	lastFinish := make([]rat.Rat, n)
	freeAt := make([]rat.Rat, opts.M)
	remaining := sys.NumSubtasks()

	// Seed the event queue with every distinct eligibility time; quantum
	// completions are pushed as they are created. Any moment at which a
	// scheduling decision could newly succeed is one of these.
	events := &ratHeap{}
	heap.Init(events)
	seen := map[rat.Rat]bool{}
	push := func(t rat.Rat) {
		if !seen[t] {
			seen[t] = true
			heap.Push(events, t)
		}
	}
	push(rat.Zero)
	for _, sub := range sys.All() {
		push(rat.FromInt(sub.Elig))
	}

	bestReady := func(now rat.Rat) *model.Subtask {
		var best *model.Subtask
		for _, task := range sys.Tasks {
			seq := sys.Subtasks(task)
			c := cursor[task.ID]
			if c >= len(seq) {
				continue
			}
			head := seq[c]
			if now.Less(rat.FromInt(head.Elig)) {
				continue
			}
			if c > 0 && now.Less(lastFinish[task.ID]) {
				continue
			}
			if best == nil || prio.Order(opts.Policy, head, best) {
				best = head
			}
		}
		return best
	}

	decision := 0
	horizon := rat.FromInt(opts.Horizon)
	for remaining > 0 {
		if events.Len() == 0 {
			return s, fmt.Errorf("core: event queue drained with %d subtasks pending", remaining)
		}
		now := heap.Pop(events).(rat.Rat)
		delete(seen, now)
		if horizon.Less(now) {
			return s, fmt.Errorf("core: horizon %s exhausted with %d subtasks pending", horizon, remaining)
		}
		for p := 0; p < opts.M; p++ {
			if now.Less(freeAt[p]) {
				continue // still executing its current quantum
			}
			sub := bestReady(now)
			if sub == nil {
				continue
			}
			decision++
			a := s.Add(sched.Assignment{
				Sub:      sub,
				Proc:     p,
				Start:    now,
				Cost:     opts.Yield(sub),
				Decision: decision,
			})
			cursor[sub.Task.ID]++
			lastFinish[sub.Task.ID] = a.Finish()
			freeAt[p] = a.Finish()
			push(a.Finish())
			remaining--
		}
	}
	return s, nil
}

// ratHeap is a min-heap of rational times.
type ratHeap []rat.Rat

func (h ratHeap) Len() int            { return len(h) }
func (h ratHeap) Less(i, j int) bool  { return h[i].Less(h[j]) }
func (h ratHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ratHeap) Push(x interface{}) { *h = append(*h, x.(rat.Rat)) }
func (h *ratHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
