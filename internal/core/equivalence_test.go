package core

import (
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/sched"
)

// enginePolicies is every policy the equivalence tests exercise: the four
// paper policies (PF goes through the Comparer's exact-fallback memo) and
// the ablations (which have no key fast path at all).
func enginePolicies() []prio.Policy {
	return append(prio.All(), prio.PD2NoGroup{}, prio.PD2NoBBit{})
}

// TestEngineEquivalence pins the fast-path RunDVQ (indexed ready heap,
// cached priority keys, typed event queue) to the retained seed
// implementation RunDVQReference: on the fuzz-corpus configurations —
// extended with a few more drawn from the same space — the two must
// produce schedules that are equal assignment-for-assignment, for every
// policy and yield model.
func TestEngineEquivalence(t *testing.T) {
	corpus := []struct {
		seed                  int64
		mRaw, qRaw, dyn, ysel uint8
	}{
		// The FuzzTheorem3 seed corpus.
		{1, 0, 0, 0, 0},
		{7, 1, 3, 3, 1},
		{42, 2, 7, 1, 2},
		{-9, 0, 5, 2, 3},
		// The FuzzTheorem2 seed corpus (reused as system draws).
		{13, 1, 4, 2, 0},
		{99, 2, 6, 3, 1},
		// Additional draws from the same space.
		{2026, 0, 2, 1, 2},
		{512, 2, 1, 0, 3},
		{-77, 1, 6, 3, 0},
	}
	for _, c := range corpus {
		m, opts, yields, rng := fuzzSystem(c.seed, c.mRaw, c.qRaw, c.dyn)
		q := opts.Horizon / 3
		n := m + 1 + int(c.seed&3)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(int(c.dyn)%3))
		sys := gen.System(rng, ws, *opts)
		y := yields[int(c.ysel)%len(yields)]()
		for _, pol := range enginePolicies() {
			fast, err := RunDVQ(sys, DVQOptions{M: m, Policy: pol, Yield: y})
			if err != nil {
				t.Fatalf("seed %d policy %s: fast engine: %v", c.seed, pol.Name(), err)
			}
			ref, err := RunDVQReference(sys, DVQOptions{M: m, Policy: pol, Yield: y})
			if err != nil {
				t.Fatalf("seed %d policy %s: reference engine: %v", c.seed, pol.Name(), err)
			}
			if !sched.Equal(fast, ref) {
				for _, d := range sched.Diff(fast, ref) {
					t.Errorf("seed %d policy %s: %s", c.seed, pol.Name(), d)
				}
				t.Fatalf("seed %d policy %s: fast DVQ diverges from reference", c.seed, pol.Name())
			}
			if err := fast.ValidateDVQ(); err != nil {
				t.Fatalf("seed %d policy %s: %v", c.seed, pol.Name(), err)
			}
		}
	}
}
