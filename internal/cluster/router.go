package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"desyncpfair/internal/server"
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// Groups is the backend topology: one replica group per entry, each a
	// list of pfaird base URLs (leader candidates — the health loop
	// discovers which one currently leads). A tenant lives in exactly one
	// group.
	Groups [][]string
	// Policy places new tenants across groups. Nil means rendezvous.
	Policy Placement
	// HealthInterval is the probe period for /v1/replication/status.
	// Default 100ms.
	HealthInterval time.Duration
	// FailoverAfter is how long a group may be leaderless before the
	// router promotes the most caught-up follower. Zero disables
	// auto-promotion.
	FailoverAfter time.Duration
	// RetryWindow bounds how long a proxied idempotent request waits for a
	// leader to (re)appear before giving up with 503. Default 3s.
	RetryWindow time.Duration
	// HTTPClient is used for probes and proxied requests. Nil means
	// http.DefaultClient.
	HTTPClient *http.Client
	// Logf, if set, receives router events (failovers, promotions).
	Logf func(format string, args ...any)
}

// ParseGroups parses the -backends CLI syntax: groups separated by ';',
// backends within a group separated by ','.
//
//	"http://a:8080,http://a2:8080;http://b:8080"
func ParseGroups(s string) ([][]string, error) {
	var groups [][]string
	for _, g := range strings.Split(s, ";") {
		var urls []string
		for _, u := range strings.Split(g, ",") {
			u = strings.TrimRight(strings.TrimSpace(u), "/")
			if u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) > 0 {
			groups = append(groups, urls)
		}
	}
	if len(groups) == 0 {
		return nil, errors.New("cluster: no backends")
	}
	return groups, nil
}

// backendView is one probe's result for one backend; a routeTable is an
// immutable snapshot of the whole topology, rebuilt by the health loop
// and read lock-free by request handlers.
type backendView struct {
	url           string
	healthy       bool
	role          string
	term          uint64
	appliedLSN    uint64
	bootstrapping bool
	tenants       int
	capacityM     int  // ΣM across the backend's tenants (pfaird_tenant_m)
	tenantsKnown  bool // the tenant-gauge scrape succeeded this probe
}

type groupView struct {
	backends []backendView
	leader   int // index into backends, -1 while leaderless
}

type routeTable struct {
	groups []groupView
}

func (t *routeTable) loads() []Load {
	loads := make([]Load, len(t.groups))
	for i, g := range t.groups {
		loads[i].Healthy = g.leader >= 0
		if g.leader >= 0 {
			loads[i].Tenants = g.backends[g.leader].tenants
			loads[i].TenantsKnown = g.backends[g.leader].tenantsKnown
			loads[i].CapacityM = g.backends[g.leader].capacityM
		}
	}
	return loads
}

// Router is a stateless front for a set of pfaird replica groups: it
// shards tenants across groups under a Placement policy, proxies writes
// to each group's current leader, fails reads over to the most caught-up
// follower, and — when a group stays leaderless past FailoverAfter —
// promotes the follower with the highest applied LSN. "Stateless" means
// no durable state: the tenant→group map is either recomputed (hashing
// policies) or relearned by probing, so routers can be restarted or run
// in parallel freely.
type Router struct {
	opts   RouterOptions
	hc     *http.Client
	table  atomic.Pointer[routeTable]
	placed sync.Map // tenant id → group index (learned locations)

	lastLeader []time.Time // per group: last instant a leader was visible
	promoting  []bool      // per group: promotion request in flight

	cancel context.CancelFunc
	done   chan struct{}
}

// NewRouter validates opts and builds a router; Start begins health
// probing.
func NewRouter(opts RouterOptions) (*Router, error) {
	if len(opts.Groups) == 0 {
		return nil, errors.New("cluster: router needs at least one backend group")
	}
	if opts.Policy == nil {
		opts.Policy = &Rendezvous{}
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = 100 * time.Millisecond
	}
	if opts.RetryWindow <= 0 {
		opts.RetryWindow = 3 * time.Second
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	r := &Router{
		opts:       opts,
		hc:         hc,
		lastLeader: make([]time.Time, len(opts.Groups)),
		promoting:  make([]bool, len(opts.Groups)),
		done:       make(chan struct{}),
	}
	// Start from an all-unknown table so requests arriving before the
	// first probe round wait in the retry loop instead of crashing.
	t := &routeTable{groups: make([]groupView, len(opts.Groups))}
	now := time.Now()
	for i, urls := range opts.Groups {
		t.groups[i].leader = -1
		for _, u := range urls {
			t.groups[i].backends = append(t.groups[i].backends, backendView{url: u})
		}
		r.lastLeader[i] = now
	}
	r.table.Store(t)
	return r, nil
}

// Start launches the health loop. Close stops it.
func (r *Router) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	go r.healthLoop(ctx)
}

// Close stops the health loop and waits for it.
func (r *Router) Close() {
	if r.cancel != nil {
		r.cancel()
		<-r.done
	}
}

func (r *Router) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

func (r *Router) healthLoop(ctx context.Context) {
	defer close(r.done)
	r.scan(ctx) // probe immediately so the first requests can route
	tick := time.NewTicker(r.opts.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			r.scan(ctx)
		}
	}
}

// scan probes every backend once, publishes a fresh route table, and
// kicks auto-promotion for groups that have been leaderless too long.
func (r *Router) scan(ctx context.Context) {
	scrapeTenants := r.opts.Policy.Name() == "least-loaded"
	t := &routeTable{groups: make([]groupView, len(r.opts.Groups))}
	var wg sync.WaitGroup
	for gi, urls := range r.opts.Groups {
		g := &t.groups[gi]
		g.backends = make([]backendView, len(urls))
		for bi, u := range urls {
			wg.Add(1)
			go func(v *backendView, u string) {
				defer wg.Done()
				*v = r.probe(ctx, u, scrapeTenants)
			}(&g.backends[bi], u)
		}
	}
	wg.Wait()

	now := time.Now()
	for gi := range t.groups {
		g := &t.groups[gi]
		g.leader = -1
		for bi, b := range g.backends {
			if !b.healthy || b.role != "leader" || b.bootstrapping {
				continue
			}
			// Split brain between probe rounds: the higher term is the
			// real timeline, the lower one is fenced.
			if g.leader < 0 || b.term > g.backends[g.leader].term {
				g.leader = bi
			}
		}
		if g.leader >= 0 {
			r.lastLeader[gi] = now
			r.promoting[gi] = false
		} else if r.opts.FailoverAfter > 0 && !r.promoting[gi] &&
			now.Sub(r.lastLeader[gi]) > r.opts.FailoverAfter {
			if bi := bestFollower(g.backends); bi >= 0 {
				r.promoting[gi] = true
				go r.promote(ctx, gi, g.backends[bi].url)
			}
		}
	}
	r.table.Store(t)
}

// bestFollower picks the healthy, caught-up follower with the highest
// applied LSN — the candidate that loses the fewest acked writes (none,
// when it has applied the leader's full durable prefix).
func bestFollower(backends []backendView) int {
	best := -1
	for bi, b := range backends {
		if !b.healthy || b.role != "follower" || b.bootstrapping {
			continue
		}
		if best < 0 || b.appliedLSN > backends[best].appliedLSN {
			best = bi
		}
	}
	return best
}

func (r *Router) probe(ctx context.Context, url string, scrapeTenants bool) backendView {
	v := backendView{url: url}
	ctx, cancel := context.WithTimeout(ctx, r.opts.HealthInterval*5)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/replication/status", nil)
	if err != nil {
		return v
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return v
	}
	defer resp.Body.Close()
	var st server.ReplStatusResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		return v
	}
	v.healthy = true
	v.role = st.Role
	v.term = st.Term
	v.appliedLSN = st.AppliedLSN
	v.bootstrapping = st.Bootstrapping
	if scrapeTenants && st.Role == "leader" {
		v.tenants, v.capacityM, v.tenantsKnown = r.scrapeTenantGauges(ctx, url)
	}
	return v
}

// scrapeTenantGauges reads the placement gauges from a backend's
// /metrics: the pfaird_tenants count and the sum of the per-tenant
// pfaird_tenant_m capacity gauges (which move under resize and the
// autoscaler). The final return distinguishes "gauges read 0" from
// "scrape failed or the count gauge is missing" — the placement policy
// treats only the former as an empty group.
func (r *Router) scrapeTenantGauges(ctx context.Context, url string) (tenants, capacityM int, ok bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return 0, 0, false
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, false
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, found := strings.CutPrefix(line, "pfaird_tenants "); found {
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				return 0, 0, false
			}
			tenants, ok = n, true
			continue
		}
		if strings.HasPrefix(line, "pfaird_tenant_m{") {
			if sp := strings.LastIndexByte(line, ' '); sp >= 0 {
				if n, err := strconv.Atoi(strings.TrimSpace(line[sp+1:])); err == nil {
					capacityM += n
				}
			}
		}
	}
	if !ok {
		return 0, 0, false
	}
	return tenants, capacityM, true
}

func (r *Router) promote(ctx context.Context, gi int, url string) {
	r.logf("group %d leaderless past %v: promoting %s", gi, r.opts.FailoverAfter, url)
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/cluster/promote", nil)
	if err != nil {
		return
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		r.logf("promote %s: %v", url, err)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusOK {
		r.logf("promote %s: HTTP %d: %s", url, resp.StatusCode, body)
		return
	}
	r.logf("promoted %s: %s", url, bytes.TrimSpace(body))
}

// Handler returns the router's HTTP front.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/v1/tenants", r.handleTenantsRoot)
	mux.HandleFunc("/v1/tenants/", r.handleTenant)
	return mux
}

// RouterHealth is the router's /healthz body.
type RouterHealth struct {
	Status string              `json:"status"`
	Policy string              `json:"policy"`
	Groups []RouterGroupHealth `json:"groups"`
}

type RouterGroupHealth struct {
	Leader  string `json:"leader,omitempty"`
	Healthy int    `json:"healthy"`
	Total   int    `json:"total"`
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	t := r.table.Load()
	resp := RouterHealth{Status: "ok", Policy: r.opts.Policy.Name()}
	for _, g := range t.groups {
		gh := RouterGroupHealth{Total: len(g.backends)}
		for _, b := range g.backends {
			if b.healthy {
				gh.Healthy++
			}
		}
		if g.leader >= 0 {
			gh.Leader = g.backends[g.leader].url
		} else {
			resp.Status = "degraded"
		}
		resp.Groups = append(resp.Groups, gh)
	}
	w.Header().Set("Content-Type", "application/json")
	if resp.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		r.logf("cluster: writing healthz body: %v", err)
	}
}

// handleTenantsRoot serves the unsharded root: POST creates a tenant on
// the group the policy picks; GET merges every group's tenant list.
func (r *Router) handleTenantsRoot(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(req.Body, maxProxyBody))
		if err != nil {
			r.httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		var cr server.CreateTenantRequest
		if err := json.Unmarshal(body, &cr); err != nil || cr.ID == "" {
			r.httpError(w, http.StatusBadRequest, "cluster: malformed create-tenant body")
			return
		}
		gi := r.opts.Policy.Pick(cr.ID, r.table.Load().loads())
		r.placed.Store(cr.ID, gi)
		r.proxyToGroup(w, req, gi, body, true)
	case http.MethodGet:
		r.handleTenantsMerged(w, req)
	default:
		r.httpError(w, http.StatusMethodNotAllowed, "cluster: method not allowed")
	}
}

func (r *Router) handleTenantsMerged(w http.ResponseWriter, req *http.Request) {
	t := r.table.Load()
	merged := []server.TenantInfo{}
	for gi, g := range t.groups {
		bi := g.leader
		if bi < 0 {
			bi = bestFollower(g.backends)
		}
		if bi < 0 {
			r.httpError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("cluster: group %d has no servable backend", gi))
			return
		}
		var infos []server.TenantInfo
		if err := r.getJSON(req.Context(), g.backends[bi].url+"/v1/tenants", &infos); err != nil {
			r.httpError(w, http.StatusBadGateway, fmt.Sprintf("cluster: group %d: %v", gi, err))
			return
		}
		merged = append(merged, infos...)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(merged); err != nil {
		r.logf("cluster: writing merged tenant list: %v", err)
	}
}

func (r *Router) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// maxProxyBody bounds buffered request bodies; buffering is what lets the
// router resend an idempotent request to a freshly promoted leader.
const maxProxyBody = 1 << 20

// handleTenant proxies /v1/tenants/{id}/... to the tenant's group.
func (r *Router) handleTenant(w http.ResponseWriter, req *http.Request) {
	id := strings.TrimPrefix(req.URL.Path, "/v1/tenants/")
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[:i]
	}
	if id == "" {
		r.httpError(w, http.StatusNotFound, "cluster: missing tenant id")
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, maxProxyBody))
	if err != nil {
		r.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	gi, ok := r.locate(req.Context(), id)
	if !ok {
		r.httpError(w, http.StatusNotFound, fmt.Sprintf("cluster: unknown tenant %q", id))
		return
	}
	if req.Method == http.MethodDelete && strings.Count(req.URL.Path, "/") == 2 {
		defer r.placed.Delete(id) // tenant delete: drop the learned location
	}
	r.proxyToGroup(w, req, gi, body, r.idempotent(req, body))
}

// idempotent reports whether a request may be resent after an ambiguous
// failure. GETs always are; a job submit is when it carries a
// client-supplied idempotency key (the backend dedupes the resend).
func (r *Router) idempotent(req *http.Request, body []byte) bool {
	if req.Method == http.MethodGet {
		return true
	}
	if req.Method == http.MethodPost && strings.HasSuffix(req.URL.Path, "/jobs") {
		var sr server.SubmitJobRequest
		if json.Unmarshal(body, &sr) == nil && sr.Key != "" {
			return true
		}
	}
	return false
}

// locate resolves a tenant to its group: deterministic policies answer
// directly, otherwise the learned map, otherwise probe every group.
func (r *Router) locate(ctx context.Context, id string) (int, bool) {
	if gi, ok := r.opts.Policy.Locate(id, len(r.opts.Groups)); ok {
		return gi, true
	}
	if v, ok := r.placed.Load(id); ok {
		return v.(int), true
	}
	t := r.table.Load()
	for gi, g := range t.groups {
		bi := g.leader
		if bi < 0 {
			bi = bestFollower(g.backends)
		}
		if bi < 0 {
			continue
		}
		var info server.TenantInfo
		if r.getJSON(ctx, g.backends[bi].url+"/v1/tenants/"+id, &info) == nil {
			r.placed.Store(id, gi)
			return gi, true
		}
	}
	return 0, false
}

// proxyToGroup forwards one buffered request to its group, re-resolving
// the target each attempt so a promotion mid-request is picked up. Reads
// fail over to the most caught-up follower; writes wait (inside
// RetryWindow, idempotent requests only) for a leader.
func (r *Router) proxyToGroup(w http.ResponseWriter, req *http.Request, gi int, body []byte, idempotent bool) {
	isRead := req.Method == http.MethodGet
	deadline := time.Now().Add(r.opts.RetryWindow)
	var lastErr error
	for attempt := 0; ; attempt++ {
		t := r.table.Load()
		g := t.groups[gi]
		bi := g.leader
		if isRead && bi < 0 {
			bi = bestFollower(g.backends)
		}
		if bi >= 0 {
			err := r.proxyOnce(w, req, g.backends[bi].url, body)
			if err == nil {
				return
			}
			lastErr = err
		} else {
			lastErr = fmt.Errorf("group %d has no leader", gi)
		}
		if !idempotent || time.Now().After(deadline) || req.Context().Err() != nil {
			break
		}
		select {
		case <-req.Context().Done():
		case <-time.After(50 * time.Millisecond):
		}
	}
	w.Header().Set("Retry-After", "1")
	r.httpError(w, http.StatusServiceUnavailable, fmt.Sprintf("cluster: %v", lastErr))
}

// proxyOnce sends the buffered request to one backend and streams the
// reply. A returned error means nothing was written to w, so the caller
// is free to retry another backend. Backend 5xx/503 replies on retryable
// requests are reported as errors (not streamed) so a request racing a
// promotion retries instead of surfacing the follower's refusal.
func (r *Router) proxyOnce(w http.ResponseWriter, req *http.Request, backend string, body []byte) error {
	out, err := http.NewRequestWithContext(req.Context(), req.Method,
		backend+req.URL.Path+queryString(req), bytes.NewReader(body))
	if err != nil {
		return err
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	resp, err := r.hc.Do(out)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("%s: HTTP %d: %s", backend, resp.StatusCode, bytes.TrimSpace(b))
	}
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
	return nil
}

func queryString(req *http.Request) string {
	if req.URL.RawQuery == "" {
		return ""
	}
	return "?" + req.URL.RawQuery
}

// flushCopy streams src to w, flushing after every chunk so NDJSON
// dispatch feeds stay live through the proxy hop.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// httpError writes a JSON error body. An Encode failure here means the
// client hung up mid-error (or the connection broke); the status line was
// already committed, so all that remains is to record it in the request
// log rather than drop it silently.
func (r *Router) httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(server.ErrorResponse{Error: msg}); err != nil {
		r.logf("cluster: writing %d error body: %v", code, err)
	}
}
