package cluster_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"desyncpfair/internal/client"
	"desyncpfair/internal/cluster"
	"desyncpfair/internal/model"
	"desyncpfair/internal/server"
)

// TestClusterSmoke is the cluster-smoke CI job: one leader, two
// followers, and a router in front; traffic flows, the leader is killed,
// and the router must promote a caught-up follower in under two seconds
// with zero acked-write loss and the schedule's one-quantum tardiness
// bound intact across the failover.
func TestClusterSmoke(t *testing.T) {
	lsrv, lhs := openLeader(t, t.TempDir(), nil)
	defer lhs.Close()
	defer lsrv.Close()
	f1srv, f1hs, _ := openFollower(t, t.TempDir(), lhs.URL)
	defer f1hs.Close()
	defer f1srv.Close()
	f2srv, f2hs, _ := openFollower(t, t.TempDir(), lhs.URL)
	defer f2hs.Close()
	defer f2srv.Close()

	router, err := cluster.NewRouter(cluster.RouterOptions{
		Groups:         [][]string{{lhs.URL, f1hs.URL, f2hs.URL}},
		HealthInterval: 25 * time.Millisecond,
		FailoverAfter:  300 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	router.Start()
	defer router.Close()
	rhs := httptest.NewServer(router.Handler())
	defer rhs.Close()

	ctx := context.Background()
	rc := client.New(rhs.URL, nil).WithRetry(client.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
	})
	if _, err := rc.CreateTenant(ctx, "t", 1, ""); err != nil {
		t.Fatalf("CreateTenant through router: %v", err)
	}
	if _, err := rc.RegisterTask(ctx, "t", "x", model.Weight{E: 1, P: 2}); err != nil {
		t.Fatalf("RegisterTask through router: %v", err)
	}

	// Phase 1: traffic through the router into the original leader.
	issued, acked := 0, 0
	for i := 0; i < 30; i++ {
		issued++
		if _, err := rc.SubmitJobKeyed(ctx, "t", server.SubmitJobRequest{Task: "x", Key: fmt.Sprintf("pre%d", i)}); err != nil {
			t.Fatalf("submit %d through router: %v", i, err)
		}
		acked++
		if i%4 == 3 {
			if _, err := rc.AdvanceBy(ctx, "t", "1"); err != nil {
				t.Fatalf("advance through router: %v", err)
			}
		}
	}

	// Quiesce and let both followers drain the leader's durable prefix —
	// the precondition for a lossless failover.
	waitCaughtUp(t, f1srv, f1hs.URL, lhs.URL)
	waitCaughtUp(t, f2srv, f2hs.URL, lhs.URL)

	// Kill the leader.
	lsrv.Shutdown()
	lhs.Close()
	killed := time.Now()

	// Reads fail over to a follower while the group is leaderless.
	if _, err := rc.Tenant(ctx, "t"); err != nil {
		t.Fatalf("read during the outage: %v", err)
	}

	// The first write after the kill measures failover: router detects
	// the dead leader, promotes the most caught-up follower, and the
	// retried keyed submit lands on the new timeline.
	subCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if _, err := rc.SubmitJobKeyed(subCtx, "t", server.SubmitJobRequest{Task: "x", Key: "post0"}); err != nil {
		cancel()
		t.Fatalf("first write after leader kill never succeeded: %v", err)
	}
	cancel()
	issued++
	acked++
	if d := time.Since(killed); d >= 2*time.Second {
		t.Fatalf("promotion took %v, want < 2s", d)
	} else {
		t.Logf("first post-kill write acked after %v", d)
	}

	// Exactly one follower was promoted.
	promoted := 0
	for _, u := range []string{f1hs.URL, f2hs.URL} {
		if h, _ := health(t, u); h.Role == "leader" {
			promoted++
		}
	}
	if promoted != 1 {
		t.Fatalf("%d nodes claim leadership after failover, want exactly 1", promoted)
	}

	// Phase 2: traffic continues through the router into the new leader.
	for i := 1; i < 30; i++ {
		issued++
		if _, err := rc.SubmitJobKeyed(ctx, "t", server.SubmitJobRequest{Task: "x", Key: fmt.Sprintf("post%d", i)}); err != nil {
			t.Fatalf("submit %d after failover: %v", i, err)
		}
		acked++
		if i%4 == 3 {
			if _, err := rc.AdvanceBy(ctx, "t", "1"); err != nil {
				t.Fatalf("advance after failover: %v", err)
			}
		}
	}

	if _, err := rc.Drain(ctx, "t"); err != nil {
		t.Fatalf("Drain through router: %v", err)
	}
	info, err := rc.Tenant(ctx, "t")
	if err != nil {
		t.Fatalf("Tenant through router: %v", err)
	}
	recovered := int(info.Dispatches) // one E=1 subtask per job
	if recovered < acked || recovered > issued {
		t.Fatalf("acked ≤ recovered ≤ issued violated across failover: acked %d, recovered %d, issued %d",
			acked, recovered, issued)
	}
	assertTardinessBound(t, info)
}

// TestRouterShardsTenants pins the sharding front: tenants land on the
// group rendezvous hashing predicts, follow-up requests route there, and
// the router merges every group's tenant list.
func TestRouterShardsTenants(t *testing.T) {
	backends := make([]*httptest.Server, 2)
	for i := range backends {
		srv := server.New()
		defer srv.Shutdown()
		backends[i] = httptest.NewServer(srv.Handler())
		defer backends[i].Close()
	}

	router, err := cluster.NewRouter(cluster.RouterOptions{
		Groups:         [][]string{{backends[0].URL}, {backends[1].URL}},
		HealthInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	router.Start()
	defer router.Close()
	rhs := httptest.NewServer(router.Handler())
	defer rhs.Close()

	ctx := context.Background()
	rc := client.New(rhs.URL, nil)
	var placement cluster.Rendezvous
	const n = 8
	seen := map[int]int{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("t%d", i)
		if _, err := rc.CreateTenant(ctx, id, 1, ""); err != nil {
			t.Fatalf("CreateTenant %s: %v", id, err)
		}
		want, _ := placement.Locate(id, 2)
		seen[want]++
		// The tenant must exist on the predicted backend and only there.
		bc := client.New(backends[want].URL, nil)
		if _, err := bc.Tenant(ctx, id); err != nil {
			t.Fatalf("tenant %s missing from predicted group %d: %v", id, want, err)
		}
		oc := client.New(backends[1-want].URL, nil)
		if _, err := oc.Tenant(ctx, id); err == nil {
			t.Fatalf("tenant %s present on both groups", id)
		}
		// A follow-up write through the router reaches the right group.
		if _, err := rc.RegisterTask(ctx, id, "x", model.Weight{E: 1, P: 2}); err != nil {
			t.Fatalf("RegisterTask %s through router: %v", id, err)
		}
		if info, err := bc.Tenant(ctx, id); err != nil || info.Tasks != 1 {
			t.Fatalf("tenant %s on group %d has %d tasks (err %v), want 1", id, want, info.Tasks, err)
		}
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Fatalf("rendezvous put all %d tenants on one group: %v", n, seen)
	}

	infos, err := rc.Tenants(ctx)
	if err != nil {
		t.Fatalf("merged tenant list: %v", err)
	}
	if len(infos) != n {
		t.Fatalf("router merged %d tenants, want %d", len(infos), n)
	}
}
