package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"desyncpfair/internal/server"
	"desyncpfair/internal/wal"
)

// Bootstrap prepares dataDir for follower duty: it fetches the leader's
// latest journal snapshot and installs it, so the subsequent server.Open
// recovers the leader's checkpointed state through the exact replay path
// a crash recovery would use. A data dir whose journal already reaches
// the snapshot's LSN is left alone — a re-joining follower resumes from
// its own prefix (which term fencing guarantees is a prefix of the
// leader's log) instead of rewinding.
func Bootstrap(dataDir, leader string, hc *http.Client, fs wal.FS) error {
	if hc == nil {
		hc = http.DefaultClient
	}
	snap, err := fetchSnapshot(context.Background(), leader, hc)
	if err != nil {
		return fmt.Errorf("cluster: bootstrap: %w", err)
	}
	l, _, err := wal.Open(dataDir, wal.Options{FS: fs})
	if err != nil {
		return fmt.Errorf("cluster: bootstrap: %w", err)
	}
	defer l.Close()
	if l.WrittenLSN() >= snap.LSN {
		return nil
	}
	if err := l.InstallSnapshot(snap.Payload, snap.LSN, snap.Term); err != nil {
		return fmt.Errorf("cluster: bootstrap: %w", err)
	}
	return nil
}

func fetchSnapshot(ctx context.Context, leader string, hc *http.Client) (server.ReplSnapshotResponse, error) {
	var snap server.ReplSnapshotResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, leader+"/v1/replication/snapshot", nil)
	if err != nil {
		return snap, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return snap, fmt.Errorf("leader snapshot: HTTP %d: %s", resp.StatusCode, body)
	}
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

// Follower tails a leader's journal into a server opened with
// Options{Follower: true}: one goroutine streams /v1/replication/log,
// CRC-verifies every frame, and feeds records through ApplyReplicated;
// a second polls /v1/replication/status to maintain the lag gauge and
// flip the node out of bootstrap once it reaches the leader's durable
// tip. Seal stops both permanently (the step promotion runs first);
// Promote is Seal plus the server-side term bump.
type Follower struct {
	srv    *server.Server
	leader string
	hc     *http.Client

	cancel   context.CancelFunc
	tailDone chan struct{}
	statDone chan struct{}
	sealOnce sync.Once
}

// StartFollower begins replicating from leader into srv and registers
// itself as srv's promote hook, so POST /v1/cluster/promote on the
// follower seals the stream before flipping writable.
func StartFollower(srv *server.Server, leader string, hc *http.Client) *Follower {
	if hc == nil {
		hc = http.DefaultClient
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		srv:      srv,
		leader:   leader,
		hc:       hc,
		cancel:   cancel,
		tailDone: make(chan struct{}),
		statDone: make(chan struct{}),
	}
	srv.SetPromoteHook(f.Seal)
	go f.tailLoop(ctx)
	go f.statusLoop(ctx)
	return f
}

// Seal permanently stops the tail and status loops and waits for them:
// after Seal returns, no further ApplyReplicated can happen, which is
// the precondition for a race-free term bump. Idempotent; always nil.
func (f *Follower) Seal() error {
	f.sealOnce.Do(func() {
		f.cancel()
		<-f.tailDone
		<-f.statDone
	})
	return nil
}

// Promote seals the stream and flips the server writable under a fresh
// term.
func (f *Follower) Promote() error {
	_ = f.Seal()
	return f.srv.Promote()
}

// tailLoop streams the leader's journal, reconnecting with backoff on
// transport errors. Two conditions end it besides Seal: a stale-term
// rejection (this node was promoted or fenced — replicating further
// would be wrong) and a 410 Gone (the leader compacted past our cursor;
// live re-bootstrap would have to rebuild all tenant state, so the node
// degrades and an operator restarts it to re-bootstrap from scratch).
func (f *Follower) tailLoop(ctx context.Context) {
	defer close(f.tailDone)
	for ctx.Err() == nil {
		err := f.tailOnce(ctx)
		switch {
		case ctx.Err() != nil:
			return
		case errors.Is(err, wal.ErrStaleTerm):
			f.srv.SetReplicationError(fmt.Sprintf("fenced: %v", err))
			return
		case errors.Is(err, errSnapshotHorizon):
			f.srv.SetReplicationError(err.Error())
			return
		case err != nil:
			f.srv.SetReplicationError(err.Error())
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

var errSnapshotHorizon = errors.New("cluster: leader compacted past our cursor; restart the follower to re-bootstrap")

// tailOnce opens one log stream from the next needed LSN and applies
// records until the stream breaks.
func (f *Follower) tailOnce(ctx context.Context) error {
	from := f.srv.AppliedLSN() + 1
	url := fmt.Sprintf("%s/v1/replication/log?from=%d&follow=true", f.leader, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return errSnapshotHorizon
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("cluster: log stream: HTTP %d: %s", resp.StatusCode, body)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	applied := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var frame server.ReplFrame
		if err := json.Unmarshal(line, &frame); err != nil {
			return fmt.Errorf("cluster: log stream: %v", err)
		}
		rec, err := frame.Verify()
		if err != nil {
			return err
		}
		if err := f.srv.ApplyReplicated(rec); err != nil {
			return err
		}
		f.srv.SetReplicationError("") // healthy again after any past fault
		if applied++; applied%256 == 0 {
			f.srv.MaybeCompact()
		}
	}
	return sc.Err()
}

// statusLoop polls the leader for its durable tip, maintaining the lag
// gauge and ending bootstrap the first time this node has applied
// everything the leader has made durable.
func (f *Follower) statusLoop(ctx context.Context) {
	defer close(f.statDone)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		st, err := f.leaderStatus(ctx)
		if err != nil {
			continue // transport faults surface via the tail loop
		}
		lag := int64(st.DurableLSN) - int64(f.srv.AppliedLSN())
		if lag < 0 {
			lag = 0
		}
		f.srv.SetReplicationLag(lag)
		if lag == 0 {
			f.srv.SetCaughtUp()
		}
	}
}

func (f *Follower) leaderStatus(ctx context.Context) (server.ReplStatusResponse, error) {
	var st server.ReplStatusResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.leader+"/v1/replication/status", nil)
	if err != nil {
		return st, err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return st, fmt.Errorf("cluster: status: HTTP %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
