package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"desyncpfair/internal/client"
	"desyncpfair/internal/cluster"
	"desyncpfair/internal/faultfs"
	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/server"
	"desyncpfair/internal/wal"
)

// openLeader starts a durable leader with FsyncEvery=1 (every ack is
// durable, the precondition for the acked ⊆ recovered invariant).
func openLeader(t *testing.T, dir string, fs wal.FS) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.Open(server.Options{DataDir: dir, FsyncEvery: 1, FS: fs})
	if err != nil {
		t.Fatalf("open leader: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	return srv, hs
}

// openFollower bootstraps a follower from leaderURL and starts it tailing.
func openFollower(t *testing.T, dir, leaderURL string) (*server.Server, *httptest.Server, *cluster.Follower) {
	t.Helper()
	if err := cluster.Bootstrap(dir, leaderURL, nil, nil); err != nil {
		t.Fatalf("bootstrap follower: %v", err)
	}
	srv, err := server.Open(server.Options{DataDir: dir, FsyncEvery: 1, Follower: true})
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	fol := cluster.StartFollower(srv, leaderURL, nil)
	return srv, hs, fol
}

func replStatus(t *testing.T, url string) server.ReplStatusResponse {
	t.Helper()
	var st server.ReplStatusResponse
	getJSON(t, url+"/v1/replication/status", &st)
	return st
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	stop := time.Now().Add(d)
	for time.Now().Before(stop) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// waitCaughtUp waits until the follower has applied the leader's full
// durable prefix AND left bootstrap (its status loop observed lag 0, so
// /healthz answers 200). The leader must be quiesced for this to be
// stable.
func waitCaughtUp(t *testing.T, fsrv *server.Server, followerURL, leaderURL string) {
	t.Helper()
	waitFor(t, 10*time.Second, "follower catch-up", func() bool {
		if fsrv.AppliedLSN() < replStatus(t, leaderURL).DurableLSN {
			return false
		}
		return !replStatus(t, followerURL).Bootstrapping
	})
}

func health(t *testing.T, url string) (server.HealthResponse, int) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h server.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode /healthz: %v", err)
	}
	return h, resp.StatusCode
}

func assertTardinessBound(t *testing.T, info server.TenantInfo) {
	t.Helper()
	if info.MaxTardiness == "" {
		return
	}
	td, err := rat.Parse(info.MaxTardiness)
	if err != nil {
		t.Fatalf("parse MaxTardiness %q: %v", info.MaxTardiness, err)
	}
	if td.Cmp(rat.New(1, 1)) > 0 {
		t.Fatalf("max tardiness %s exceeds the one-quantum bound (Theorem 3)", info.MaxTardiness)
	}
}

// TestFollowerReplicatesAndPromotes is the seeded leader-kill acceptance
// test: a follower tails a live leader; an injected fsync failure wedges
// the leader mid-traffic; the follower drains the durable prefix, is
// promoted over HTTP, and must hold acked ≤ recovered ≤ issued across
// the boundary while its dispatch sequence stays a legal one-quantum-
// tardiness continuation.
func TestFollowerReplicatesAndPromotes(t *testing.T) {
	ffs := faultfs.New(faultfs.Options{Seed: 7, FailSyncAt: 60})
	lsrv, lhs := openLeader(t, t.TempDir(), ffs)
	defer lhs.Close()
	defer lsrv.Close()

	ctx := context.Background()
	lc := client.New(lhs.URL, nil)
	if _, err := lc.CreateTenant(ctx, "t", 1, ""); err != nil {
		t.Fatalf("CreateTenant: %v", err)
	}
	if _, err := lc.RegisterTask(ctx, "t", "x", model.Weight{E: 1, P: 2}); err != nil {
		t.Fatalf("RegisterTask: %v", err)
	}

	fsrv, fhs, _ := openFollower(t, t.TempDir(), lhs.URL)
	defer fhs.Close()
	defer fsrv.Close()

	// Drive keyed submits (with periodic advances) into the leader until
	// the injected fsync failure wedges it.
	issued, acked := 0, 0
	for i := 0; i < 200; i++ {
		issued++
		if _, err := lc.SubmitJobKeyed(ctx, "t", server.SubmitJobRequest{Task: "x", Key: fmt.Sprintf("k%d", i)}); err != nil {
			break
		}
		acked++
		if i%4 == 3 {
			if _, err := lc.AdvanceBy(ctx, "t", "1"); err != nil {
				break
			}
		}
	}
	if acked == issued {
		t.Fatalf("leader never wedged: %d/%d submits acked", acked, issued)
	}
	t.Logf("leader wedged: issued %d, acked %d", issued, acked)

	// The wedged leader's durable prefix is still servable; the follower
	// must drain it completely — that is what makes promotion lossless.
	waitCaughtUp(t, fsrv, fhs.URL, lhs.URL)

	if h, code := health(t, lhs.URL); code != http.StatusServiceUnavailable || h.Status != "wal-failed" {
		t.Fatalf("wedged leader /healthz = %q (%d), want wal-failed 503", h.Status, code)
	}
	if h, code := health(t, fhs.URL); code != http.StatusOK || h.Role != "follower" {
		t.Fatalf("follower /healthz = role %q (%d), want follower 200", h.Role, code)
	}
	// Followers answer 503 to mutations so the router never writes to one.
	fc := client.New(fhs.URL, nil)
	if _, err := fc.SubmitJob(ctx, "t", "x", ""); err == nil {
		t.Fatal("follower accepted a mutation")
	}

	// Promote over the wire, as the router would.
	resp, err := http.Post(fhs.URL+"/v1/cluster/promote", "application/json", nil)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	var pr server.PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: HTTP %d, decode err %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if pr.Role != "leader" || pr.Term == 0 {
		t.Fatalf("promote returned role %q term %d, want leader with a bumped term", pr.Role, pr.Term)
	}
	if h, code := health(t, fhs.URL); code != http.StatusOK || h.Role != "leader" {
		t.Fatalf("promoted /healthz = role %q (%d), want leader 200", h.Role, code)
	}

	// A key acked by the old leader must be deduped by the new one: the
	// idempotency memory replicated with the journal.
	before, err := fc.Tenant(ctx, "t")
	if err != nil {
		t.Fatalf("Tenant: %v", err)
	}
	if _, err := fc.SubmitJobKeyed(ctx, "t", server.SubmitJobRequest{Task: "x", Key: "k0"}); err != nil {
		t.Fatalf("resubmit of an acked key on the new leader: %v", err)
	}
	after, err := fc.Tenant(ctx, "t")
	if err != nil {
		t.Fatalf("Tenant: %v", err)
	}
	if after.Pending != before.Pending || after.Dispatches != before.Dispatches {
		t.Fatalf("resent acked key changed state: pending %d→%d, dispatches %d→%d",
			before.Pending, after.Pending, before.Dispatches, after.Dispatches)
	}

	// The new leader continues the schedule: more traffic, then a full
	// drain, then the cross-boundary invariant.
	for i := 0; i < 20; i++ {
		issued++
		if _, err := fc.SubmitJobKeyed(ctx, "t", server.SubmitJobRequest{Task: "x", Key: fmt.Sprintf("post%d", i)}); err != nil {
			t.Fatalf("submit on new leader: %v", err)
		}
		acked++
	}
	if _, err := fc.Drain(ctx, "t"); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	info, err := fc.Tenant(ctx, "t")
	if err != nil {
		t.Fatalf("Tenant: %v", err)
	}
	// Each job is one E=1 subtask, so total dispatches == recovered jobs.
	recovered := int(info.Dispatches)
	if recovered < acked || recovered > issued {
		t.Fatalf("acked ≤ recovered ≤ issued violated: acked %d, recovered %d, issued %d", acked, recovered, issued)
	}
	assertTardinessBound(t, info)

	// The dispatch history must be a legal continuation: one gap-free,
	// duplicate-free sequence spanning the leader→follower boundary.
	st, err := fc.StreamDispatches(ctx, "t", 0, false)
	if err != nil {
		t.Fatalf("StreamDispatches: %v", err)
	}
	defer st.Close()
	for want := int64(0); want < int64(recovered); want++ {
		ev, err := st.Next()
		if err != nil {
			t.Fatalf("dispatch stream ended at seq %d of %d: %v", want, recovered, err)
		}
		if ev.Seq != want {
			t.Fatalf("dispatch seq %d out of order (want %d): not a legal continuation", ev.Seq, want)
		}
	}
}

// TestStaleLeaderFenced pins term fencing end to end: after a promotion,
// a deposed leader that kept appending to its own timeline cannot ship
// that divergent suffix into a node that has adopted the new term.
func TestStaleLeaderFenced(t *testing.T) {
	asrv, ahs := openLeader(t, t.TempDir(), nil)
	defer ahs.Close()
	defer asrv.Close()

	ctx := context.Background()
	ac := client.New(ahs.URL, nil)
	if _, err := ac.CreateTenant(ctx, "t", 1, ""); err != nil {
		t.Fatalf("CreateTenant: %v", err)
	}
	if _, err := ac.RegisterTask(ctx, "t", "x", model.Weight{E: 1, P: 2}); err != nil {
		t.Fatalf("RegisterTask: %v", err)
	}

	// B replicates A, catches up, and is promoted: term 1.
	bsrv, bhs, bfol := openFollower(t, t.TempDir(), ahs.URL)
	defer bhs.Close()
	defer bsrv.Close()
	waitCaughtUp(t, bsrv, bhs.URL, ahs.URL)
	if err := bfol.Promote(); err != nil {
		t.Fatalf("promote B: %v", err)
	}

	// C adopts B's timeline — including the OpTerm fence record.
	csrv, chs, cfol := openFollower(t, t.TempDir(), bhs.URL)
	defer chs.Close()
	defer csrv.Close()
	waitCaughtUp(t, csrv, chs.URL, bhs.URL)
	cApplied := csrv.AppliedLSN()
	if err := cfol.Seal(); err != nil {
		t.Fatalf("seal C: %v", err)
	}

	// A, deposed but unaware, keeps appending term-0 records on its own
	// divergent timeline…
	for i := 0; i < 3; i++ {
		if _, err := ac.SubmitJob(ctx, "t", "x", ""); err != nil {
			t.Fatalf("stale leader submit: %v", err)
		}
	}
	// …and C is (mis)pointed at it. The very first shipped record must
	// be rejected by term, leaving C's state untouched.
	cluster.StartFollower(csrv, ahs.URL, nil)
	waitFor(t, 5*time.Second, "C to fence the stale leader", func() bool {
		return strings.Contains(csrv.ReplicationError(), "fenced")
	})
	if got := csrv.AppliedLSN(); got != cApplied {
		t.Fatalf("C applied %d records from a fenced leader (LSN %d → %d)", got-cApplied, cApplied, got)
	}
	if h, _ := health(t, chs.URL); h.Status != "degraded" {
		t.Fatalf("fenced follower /healthz = %q, want degraded", h.Status)
	}
}
