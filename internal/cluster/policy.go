// Package cluster turns single-node pfaird into a replicated, routed
// service: a Follower tails a leader's journal over the replication
// endpoints (internal/server) and can be promoted on failure, and a
// Router fronts several leader groups, sharding tenants across them
// under a pluggable placement policy. The paper's desynchronized model
// is what makes this cheap — tenants share no time base, so a tenant is
// a free unit of placement and an entire group's schedule replays
// deterministically from its journal.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// Load is one group's placement-relevant state, assembled by the router
// from health checks and /metrics scrapes.
type Load struct {
	// Healthy reports whether the group currently has a servable leader.
	Healthy bool
	// Tenants is the group leader's pfaird_tenants gauge.
	Tenants int
}

// Placement decides which group owns a tenant. Pick places a new tenant;
// Locate finds an existing one — deterministic policies answer directly
// (ok=true), stateful ones defer to the router's learned map and probing
// (ok=false).
type Placement interface {
	Name() string
	Pick(id string, loads []Load) int
	Locate(id string, n int) (int, bool)
}

// PolicyByName maps a CLI policy name to a Placement.
func PolicyByName(name string) (Placement, error) {
	switch name {
	case "", "rendezvous", "hash":
		return &Rendezvous{}, nil
	case "round-robin", "rr":
		return &RoundRobin{}, nil
	case "least-loaded", "least":
		return &LeastLoaded{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown placement policy %q (want rendezvous, round-robin or least-loaded)", name)
	}
}

// Rendezvous is highest-random-weight hashing: every router instance maps
// a tenant to the same group with no shared state, and removing a group
// only moves that group's tenants. The weight of (tenant, group) is a
// hash of both, and the tenant lives in the argmax group.
type Rendezvous struct{}

func (*Rendezvous) Name() string { return "rendezvous" }

func (*Rendezvous) Pick(id string, loads []Load) int {
	best, bestW := 0, uint64(0)
	for g := range loads {
		if w := rendezvousWeight(id, g); w >= bestW {
			// ties broken toward the higher index, deterministically
			best, bestW = g, w
		}
	}
	return best
}

func (p *Rendezvous) Locate(id string, n int) (int, bool) {
	return p.Pick(id, make([]Load, n)), true
}

func rendezvousWeight(id string, group int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", id, group)
	return h.Sum64()
}

// RoundRobin places tenants in creation order, cycling through groups.
// Location is learned by the router (ok=false).
type RoundRobin struct {
	next atomic.Uint64
}

func (*RoundRobin) Name() string { return "round-robin" }

func (p *RoundRobin) Pick(id string, loads []Load) int {
	n := len(loads)
	if n == 0 {
		return 0
	}
	start := int(p.next.Add(1)-1) % n
	// Skip unhealthy groups, falling back to the raw slot when all are
	// down (the proxy will answer 503 with a precise error).
	for i := 0; i < n; i++ {
		g := (start + i) % n
		if loads[g].Healthy {
			return g
		}
	}
	return start
}

func (*RoundRobin) Locate(string, int) (int, bool) { return 0, false }

// LeastLoaded places a new tenant on the healthy group with the fewest
// tenants (scraped from the leader's /metrics). Location is learned by
// the router (ok=false).
type LeastLoaded struct{}

func (*LeastLoaded) Name() string { return "least-loaded" }

func (*LeastLoaded) Pick(id string, loads []Load) int {
	best, bestN, found := 0, 0, false
	for g, l := range loads {
		if !l.Healthy {
			continue
		}
		if !found || l.Tenants < bestN {
			best, bestN, found = g, l.Tenants, true
		}
	}
	return best
}

func (*LeastLoaded) Locate(string, int) (int, bool) { return 0, false }
