// Package cluster turns single-node pfaird into a replicated, routed
// service: a Follower tails a leader's journal over the replication
// endpoints (internal/server) and can be promoted on failure, and a
// Router fronts several leader groups, sharding tenants across them
// under a pluggable placement policy. The paper's desynchronized model
// is what makes this cheap — tenants share no time base, so a tenant is
// a free unit of placement and an entire group's schedule replays
// deterministically from its journal.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// Load is one group's placement-relevant state, assembled by the router
// from health checks and /metrics scrapes.
type Load struct {
	// Healthy reports whether the group currently has a servable leader.
	Healthy bool
	// Tenants is the group leader's pfaird_tenants gauge. Meaningful only
	// when TenantsKnown is true.
	Tenants int
	// TenantsKnown reports whether the gauge scrape actually succeeded. A
	// failed scrape is NOT zero tenants — load-sensitive policies must not
	// prefer a group just because its metrics endpoint was unreachable.
	TenantsKnown bool
	// CapacityM is the sum of the leader's pfaird_tenant_m gauges: the
	// total processors the group has committed across its tenants. With
	// elastic capacity (resize + autoscaler) tenant counts alone misstate
	// load — one tenant on 32 processors outweighs ten on 1 — so
	// least-loaded uses CapacityM to break tenant-count ties. Meaningful
	// only when TenantsKnown is true (same scrape).
	CapacityM int
}

// Placement decides which group owns a tenant. Pick places a new tenant;
// Locate finds an existing one — deterministic policies answer directly
// (ok=true), stateful ones defer to the router's learned map and probing
// (ok=false).
type Placement interface {
	Name() string
	Pick(id string, loads []Load) int
	Locate(id string, n int) (int, bool)
}

// PolicyByName maps a CLI policy name to a Placement.
func PolicyByName(name string) (Placement, error) {
	switch name {
	case "", "rendezvous", "hash":
		return &Rendezvous{}, nil
	case "round-robin", "rr":
		return &RoundRobin{}, nil
	case "least-loaded", "least":
		return &LeastLoaded{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown placement policy %q (want rendezvous, round-robin or least-loaded)", name)
	}
}

// Rendezvous is highest-random-weight hashing: every router instance maps
// a tenant to the same group with no shared state, and removing a group
// only moves that group's tenants. The weight of (tenant, group) is a
// hash of both, and the tenant lives in the argmax group.
type Rendezvous struct{}

func (*Rendezvous) Name() string { return "rendezvous" }

func (*Rendezvous) Pick(id string, loads []Load) int {
	return rendezvousPick(id, loads, false)
}

// rendezvousPick is argmax-weight placement, optionally restricted to
// healthy groups; ties break toward the higher index, deterministically.
func rendezvousPick(id string, loads []Load, healthyOnly bool) int {
	best, bestW, started := 0, uint64(0), false
	for g := range loads {
		if healthyOnly && !loads[g].Healthy {
			continue
		}
		if w := rendezvousWeight(id, g); !started || w >= bestW {
			best, bestW, started = g, w, true
		}
	}
	return best
}

func (p *Rendezvous) Locate(id string, n int) (int, bool) {
	return p.Pick(id, make([]Load, n)), true
}

func rendezvousWeight(id string, group int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", id, group)
	return h.Sum64()
}

// RoundRobin places tenants in creation order, cycling through groups.
// Location is learned by the router (ok=false).
type RoundRobin struct {
	next atomic.Uint64
}

func (*RoundRobin) Name() string { return "round-robin" }

func (p *RoundRobin) Pick(id string, loads []Load) int {
	n := len(loads)
	if n == 0 {
		return 0
	}
	start := int(p.next.Add(1)-1) % n
	// Skip unhealthy groups, falling back to the raw slot when all are
	// down (the proxy will answer 503 with a precise error).
	for i := 0; i < n; i++ {
		g := (start + i) % n
		if loads[g].Healthy {
			return g
		}
	}
	return start
}

func (*RoundRobin) Locate(string, int) (int, bool) { return 0, false }

// LeastLoaded places a new tenant on the healthy group with the fewest
// tenants (scraped from the leader's /metrics). Groups whose gauge scrape
// failed are not candidates — an unreachable /metrics must not read as
// "empty" — and when no healthy group has a live gauge the policy falls
// back to rendezvous over the healthy groups, which is deterministic and
// spreads load instead of dog-piling group 0. Location is learned by the
// router (ok=false).
type LeastLoaded struct{}

func (*LeastLoaded) Name() string { return "least-loaded" }

func (*LeastLoaded) Pick(id string, loads []Load) int {
	best, bestN, bestM, found := 0, 0, 0, false
	anyHealthy := false
	for g, l := range loads {
		if !l.Healthy {
			continue
		}
		anyHealthy = true
		if !l.TenantsKnown {
			continue
		}
		// Fewest tenants first; equal counts break toward the group with
		// less committed capacity (ΣM over its tenants), so elastic
		// resizes steer placement away from groups that grew.
		if !found || l.Tenants < bestN || (l.Tenants == bestN && l.CapacityM < bestM) {
			best, bestN, bestM, found = g, l.Tenants, l.CapacityM, true
		}
	}
	if found {
		return best
	}
	return rendezvousPick(id, loads, anyHealthy)
}

func (*LeastLoaded) Locate(string, int) (int, bool) { return 0, false }
