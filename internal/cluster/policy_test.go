package cluster

import (
	"fmt"
	"testing"
)

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"":             "rendezvous",
		"hash":         "rendezvous",
		"rendezvous":   "rendezvous",
		"rr":           "round-robin",
		"round-robin":  "round-robin",
		"least":        "least-loaded",
		"least-loaded": "least-loaded",
	} {
		p, err := PolicyByName(name)
		if err != nil || p.Name() != want {
			t.Fatalf("PolicyByName(%q) = %v, %v; want %s", name, p, err, want)
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRendezvousDeterministicAndSpread(t *testing.T) {
	p := &Rendezvous{}
	loads := make([]Load, 3)
	seen := map[int]int{}
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		g := p.Pick(id, loads)
		if again := p.Pick(id, loads); again != g {
			t.Fatalf("Pick(%q) unstable: %d then %d", id, g, again)
		}
		if lg, ok := p.Locate(id, 3); !ok || lg != g {
			t.Fatalf("Locate(%q) = (%d, %v), want (%d, true)", id, lg, ok, g)
		}
		seen[g]++
	}
	for g := 0; g < 3; g++ {
		if seen[g] == 0 {
			t.Fatalf("group %d got no tenants out of 100: %v", g, seen)
		}
	}
}

func TestRoundRobinSkipsUnhealthy(t *testing.T) {
	p := &RoundRobin{}
	loads := []Load{{Healthy: true}, {Healthy: false}, {Healthy: true}}
	for i := 0; i < 10; i++ {
		if g := p.Pick(fmt.Sprint(i), loads); g == 1 {
			t.Fatal("round-robin placed a tenant on an unhealthy group")
		}
	}
	if _, ok := p.Locate("x", 3); ok {
		t.Fatal("round-robin claims deterministic location")
	}
}

func TestLeastLoadedPicksMinAmongHealthy(t *testing.T) {
	p := &LeastLoaded{}
	loads := []Load{
		{Healthy: true, Tenants: 5},
		{Healthy: false, Tenants: 0}, // least loaded but down
		{Healthy: true, Tenants: 2},
	}
	if g := p.Pick("x", loads); g != 2 {
		t.Fatalf("least-loaded picked group %d, want 2", g)
	}
	if _, ok := p.Locate("x", 3); ok {
		t.Fatal("least-loaded claims deterministic location")
	}
}
