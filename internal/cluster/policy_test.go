package cluster

import (
	"fmt"
	"testing"
)

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"":             "rendezvous",
		"hash":         "rendezvous",
		"rendezvous":   "rendezvous",
		"rr":           "round-robin",
		"round-robin":  "round-robin",
		"least":        "least-loaded",
		"least-loaded": "least-loaded",
	} {
		p, err := PolicyByName(name)
		if err != nil || p.Name() != want {
			t.Fatalf("PolicyByName(%q) = %v, %v; want %s", name, p, err, want)
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRendezvousDeterministicAndSpread(t *testing.T) {
	p := &Rendezvous{}
	loads := make([]Load, 3)
	seen := map[int]int{}
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		g := p.Pick(id, loads)
		if again := p.Pick(id, loads); again != g {
			t.Fatalf("Pick(%q) unstable: %d then %d", id, g, again)
		}
		if lg, ok := p.Locate(id, 3); !ok || lg != g {
			t.Fatalf("Locate(%q) = (%d, %v), want (%d, true)", id, lg, ok, g)
		}
		seen[g]++
	}
	for g := 0; g < 3; g++ {
		if seen[g] == 0 {
			t.Fatalf("group %d got no tenants out of 100: %v", g, seen)
		}
	}
}

func TestRoundRobinSkipsUnhealthy(t *testing.T) {
	p := &RoundRobin{}
	loads := []Load{{Healthy: true}, {Healthy: false}, {Healthy: true}}
	for i := 0; i < 10; i++ {
		if g := p.Pick(fmt.Sprint(i), loads); g == 1 {
			t.Fatal("round-robin placed a tenant on an unhealthy group")
		}
	}
	if _, ok := p.Locate("x", 3); ok {
		t.Fatal("round-robin claims deterministic location")
	}
}

func TestLeastLoadedPicksMinAmongHealthy(t *testing.T) {
	p := &LeastLoaded{}
	loads := []Load{
		{Healthy: true, Tenants: 5, TenantsKnown: true},
		{Healthy: false, Tenants: 0, TenantsKnown: true}, // least loaded but down
		{Healthy: true, Tenants: 2, TenantsKnown: true},
	}
	if g := p.Pick("x", loads); g != 2 {
		t.Fatalf("least-loaded picked group %d, want 2", g)
	}
	if _, ok := p.Locate("x", 3); ok {
		t.Fatal("least-loaded claims deterministic location")
	}
}

// TestLeastLoadedBreaksTiesByCapacity: with equal tenant counts the
// placement goes to the group with less committed capacity (ΣM across
// tenants), so an autoscaler-grown group stops attracting new tenants.
func TestLeastLoadedBreaksTiesByCapacity(t *testing.T) {
	p := &LeastLoaded{}
	loads := []Load{
		{Healthy: true, Tenants: 3, TenantsKnown: true, CapacityM: 24},
		{Healthy: true, Tenants: 3, TenantsKnown: true, CapacityM: 6},
		{Healthy: true, Tenants: 4, TenantsKnown: true, CapacityM: 4},
	}
	if g := p.Pick("x", loads); g != 1 {
		t.Fatalf("least-loaded picked group %d, want 1 (fewest tenants, least ΣM)", g)
	}
}

// TestLeastLoadedIgnoresStaleGauges: a healthy group whose /metrics
// scrape failed reports Tenants=0 with TenantsKnown=false. It must not
// win placement on that phantom zero — the group with a live gauge does,
// even though its count is higher.
func TestLeastLoadedIgnoresStaleGauges(t *testing.T) {
	p := &LeastLoaded{}
	loads := []Load{
		{Healthy: true, Tenants: 0, TenantsKnown: false}, // scrape failed
		{Healthy: true, Tenants: 7, TenantsKnown: true},
	}
	if g := p.Pick("x", loads); g != 1 {
		t.Fatalf("least-loaded picked group %d (stale gauge read as empty), want 1", g)
	}
}

// TestLeastLoadedFallsBackToRendezvous: when no healthy group has a live
// tenant gauge, placement must degrade to rendezvous over the healthy
// groups — deterministic and spread out, never a dog-pile on group 0.
func TestLeastLoadedFallsBackToRendezvous(t *testing.T) {
	p := &LeastLoaded{}
	loads := []Load{
		{Healthy: true},
		{Healthy: false},
		{Healthy: true},
	}
	seen := map[int]int{}
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		g := p.Pick(id, loads)
		if g == 1 {
			t.Fatalf("Pick(%q) chose the unhealthy group", id)
		}
		if again := p.Pick(id, loads); again != g {
			t.Fatalf("fallback Pick(%q) unstable: %d then %d", id, g, again)
		}
		seen[g]++
	}
	if seen[0] == 0 || seen[2] == 0 {
		t.Fatalf("fallback placement dog-piled one group: %v", seen)
	}
	// All groups down (startup): still deterministic, over all groups.
	down := []Load{{}, {}, {}}
	if a, b := p.Pick("x", down), p.Pick("x", down); a != b {
		t.Fatalf("all-down Pick unstable: %d then %d", a, b)
	}
}
