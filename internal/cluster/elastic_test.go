package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"desyncpfair/internal/client"
	"desyncpfair/internal/faultfs"
	"desyncpfair/internal/model"
	"desyncpfair/internal/server"
)

// capState is the capacity pair the harness tracks through the storm:
// the applied processor count and any queued drain target.
type capState struct{ m, pending int }

// apply folds one resize outcome into the mirror, matching the admission
// controller: grow or feasible shrink applies and cancels any pending
// target; an infeasible drain shrink queues.
func (c capState) apply(target int, outcome string) capState {
	switch outcome {
	case "applied":
		return capState{m: target}
	case "queued":
		return capState{m: c.m, pending: target}
	}
	return c
}

// TestElasticFailoverReplaysCapacityHistory is the failover leg of the
// resize-safety harness: a follower tails a leader through a storm of
// grows, feasible shrinks, and drain-queued shrinks interleaved with
// submits until an injected fsync failure wedges the leader mid-storm.
// After promotion the follower's capacity state (M and the pending drain
// target) must equal the acked prefix of the resize history — or the
// acked prefix plus the single in-flight resize the crash cut off, the
// capacity analog of acked ≤ recovered ≤ issued. The promoted leader
// must then keep enforcing feasibility (an infeasible shrink is still
// rejected, never silently applied), keep scheduling within the
// one-quantum tardiness bound, and export the new M on /metrics.
func TestElasticFailoverReplaysCapacityHistory(t *testing.T) {
	ffs := faultfs.New(faultfs.Options{Seed: 9, FailSyncAt: 70})
	lsrv, lhs := openLeader(t, t.TempDir(), ffs)
	defer lhs.Close()
	defer lsrv.Close()

	ctx := context.Background()
	lc := client.New(lhs.URL, nil)
	if _, err := lc.CreateTenant(ctx, "t", 2, ""); err != nil {
		t.Fatalf("CreateTenant: %v", err)
	}
	// Σwt = 4/3, so shrinking to 1 is infeasible: rejected without drain,
	// queued with it.
	for _, name := range []string{"x", "y"} {
		if _, err := lc.RegisterTask(ctx, "t", name, model.Weight{E: 2, P: 3}); err != nil {
			t.Fatalf("RegisterTask %s: %v", name, err)
		}
	}

	fsrv, fhs, _ := openFollower(t, t.TempDir(), lhs.URL)
	defer fhs.Close()
	defer fsrv.Close()

	// Storm the leader until the injected fsync failure wedges it. acked
	// is the last acked capacity state; alt additionally applies the one
	// resize (if any) that was in flight when the leader died.
	acked := capState{m: 2}
	alt := acked
	resizes := []struct {
		target int
		drain  bool
	}{{3, false}, {4, false}, {2, false}, {1, true}, {3, false}}
	issuedJobs, ackedJobs, wedged := 0, 0, false
	for i := 0; i < 300 && !wedged; i++ {
		issuedJobs++
		if _, err := lc.SubmitJobKeyed(ctx, "t", server.SubmitJobRequest{Task: "x", Key: fmt.Sprintf("k%d", i)}); err != nil {
			wedged = true
			break
		}
		ackedJobs++
		if i%3 == 2 {
			if _, err := lc.AdvanceBy(ctx, "t", "1"); err != nil {
				wedged = true
				break
			}
		}
		if i%4 == 3 {
			r := resizes[(i/4)%len(resizes)]
			resp, err := lc.Resize(ctx, "t", r.target, r.drain)
			if err != nil {
				alt = acked.apply(r.target, map[bool]string{true: "queued", false: "applied"}[r.drain])
				wedged = true
				break
			}
			acked = acked.apply(r.target, resp.Outcome)
			alt = acked
			// The infeasible non-drain shrink never appears acked: with
			// Σwt = 4/3 every non-drain target here is ≥ 2.
			if resp.Outcome == "rejected" {
				t.Fatalf("resize %d (drain=%v) rejected with Σwt=4/3: %+v", r.target, r.drain, resp)
			}
		}
	}
	if !wedged {
		t.Fatalf("leader never wedged: %d/%d submits acked", ackedJobs, issuedJobs)
	}
	t.Logf("leader wedged: issued %d, acked %d, capacity acked=%+v alt=%+v", issuedJobs, ackedJobs, acked, alt)

	// The follower drains the wedged leader's durable prefix, then takes
	// over.
	waitCaughtUp(t, fsrv, fhs.URL, lhs.URL)
	resp, err := http.Post(fhs.URL+"/v1/cluster/promote", "application/json", nil)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: HTTP %d", resp.StatusCode)
	}

	// The replayed capacity history must be exactly the acked prefix,
	// possibly extended by the one cut-off resize.
	fc := client.New(fhs.URL, nil)
	info, err := fc.Tenant(ctx, "t")
	if err != nil {
		t.Fatalf("Tenant on new leader: %v", err)
	}
	got := capState{m: info.M, pending: info.PendingM}
	if got != acked && got != alt {
		t.Fatalf("promoted capacity state %+v, want %+v (acked) or %+v (acked + in-flight)", got, acked, alt)
	}

	// Feasibility survives the failover: shrinking below Σwt = 4/3 is
	// still rejected, and the tenant's M is untouched by the attempt.
	if _, err := fc.Resize(ctx, "t", 1, false); !client.IsReject(err) {
		t.Fatalf("infeasible shrink on promoted leader: err=%v, want 409 reject", err)
	}
	after, err := fc.Tenant(ctx, "t")
	if err != nil {
		t.Fatalf("Tenant: %v", err)
	}
	if after.M != got.m || after.PendingM != got.pending {
		t.Fatalf("rejected shrink changed capacity: %+v → M=%d PendingM=%d", got, after.M, after.PendingM)
	}

	// The new leader remains elastic: grow (cancelling any queued drain),
	// admit a task that only fits post-grow, keep scheduling, and hold the
	// one-quantum tardiness bound across the boundary.
	if _, err := fc.Resize(ctx, "t", 6, false); err != nil {
		t.Fatalf("grow on promoted leader: %v", err)
	}
	if _, err := fc.RegisterTask(ctx, "t", "z", model.Weight{E: 1, P: 3}); err != nil {
		t.Fatalf("register on promoted leader: %v", err)
	}
	for i := 0; i < 12; i++ {
		if _, err := fc.SubmitJobKeyed(ctx, "t", server.SubmitJobRequest{Task: "z", Key: fmt.Sprintf("post%d", i)}); err != nil {
			t.Fatalf("submit on promoted leader: %v", err)
		}
	}
	if _, err := fc.Drain(ctx, "t"); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	final, err := fc.Tenant(ctx, "t")
	if err != nil {
		t.Fatalf("Tenant: %v", err)
	}
	if final.M != 6 || final.PendingM != 0 {
		t.Fatalf("grow after failover: M=%d PendingM=%d, want 6/0", final.M, final.PendingM)
	}
	assertTardinessBound(t, final)

	// The router's capacity gauges follow the promoted leader.
	metrics, err := fc.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if !strings.Contains(metrics, `pfaird_tenant_m{tenant="t"} 6`) {
		t.Fatalf("promoted leader /metrics missing pfaird_tenant_m gauge for the resized tenant")
	}
}
