package drift

import (
	"testing"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sfq"
)

func fig2System(h int64) *model.System {
	return model.Periodic([]model.Weight{
		model.W(1, 6), model.W(1, 6), model.W(1, 6),
		model.W(1, 2), model.W(1, 2), model.W(1, 2),
	}, h)
}

// With zero drift and zero phase the engine is exactly the SFQ engine.
func TestZeroDriftEqualsSFQ(t *testing.T) {
	sys := fig2System(12)
	d, err := Run(sys, Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sfq.Run(sys, sfq.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range sys.All() {
		if !d.Of(sub).Start.Equal(ref.Of(sub).Start) {
			t.Fatalf("%s at %s under drift-0, %s under SFQ", sub, d.Of(sub).Start, ref.Of(sub).Start)
		}
	}
	if got := d.MaxTardiness(); got.Sign() != 0 {
		t.Errorf("zero-drift tardiness %s", got)
	}
}

// Pure phase offsets (no rate drift) reproduce the staggered model's
// behaviour class: bounded tardiness, no capacity loss.
func TestPhaseOnlyBoundedTardiness(t *testing.T) {
	sys := fig2System(12)
	d, err := Run(sys, Options{
		M:     2,
		Phase: []rat.Rat{rat.Zero, rat.New(1, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ValidateDVQ(); err != nil {
		t.Fatal(err)
	}
	if got := d.MaxTardiness(); rat.One.Less(got) {
		t.Errorf("phase-only tardiness %s > 1", got)
	}
}

// Rate drift loses capacity: at full utilization, tardiness grows with the
// horizon — the failure the paper's synchronization requirement prevents.
func TestDriftTardinessGrowsWithHorizon(t *testing.T) {
	eps := []rat.Rat{rat.New(1, 20), rat.New(1, 20)}
	tardAt := func(h int64) rat.Rat {
		sys := fig2System(h)
		d, err := Run(sys, Options{M: 2, Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		return d.MaxTardiness()
	}
	short, long := tardAt(12), tardAt(48)
	if !short.Less(long) {
		t.Errorf("drift tardiness did not grow: %s at h=12, %s at h=48", short, long)
	}
	if !rat.One.Less(long) {
		t.Errorf("drifted full-utilization tardiness %s should exceed one quantum by h=48", long)
	}
}

func TestDriftValidatesOptions(t *testing.T) {
	sys := fig2System(6)
	if _, err := Run(sys, Options{M: 0}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := Run(sys, Options{M: 2, Epsilon: []rat.Rat{rat.New(-1, 10)}}); err == nil {
		t.Error("negative drift accepted")
	}
	if _, err := Run(sys, Options{M: 2, Phase: []rat.Rat{rat.FromInt(2)}}); err == nil {
		t.Error("phase ≥ 1 accepted")
	}
}

func TestDriftBoundaryCap(t *testing.T) {
	sys := fig2System(12)
	_, err := Run(sys, Options{M: 1, MaxBoundaries: 3}) // M=1 is overloaded
	if err == nil {
		t.Error("expected boundary cap error on overloaded run")
	}
}

func TestDriftScheduleStructurallyValid(t *testing.T) {
	sys := fig2System(12)
	d, err := Run(sys, Options{
		M:       2,
		Epsilon: []rat.Rat{rat.New(1, 100), rat.New(3, 100)},
		Phase:   []rat.Rat{rat.Zero, rat.New(1, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ValidateDVQ(); err != nil {
		t.Fatal(err)
	}
}
