// Package drift simulates the SFQ model on processors whose timer
// interrupts are NOT synchronized — the failure mode behind the paper's
// first motivation for the DVQ model:
//
//	"[The SFQ model] requires periodic timer interrupts that delineate
//	 quanta to be synchronized across all processors and drifts in the
//	 timing of interrupts on any one processor to be propagated to other
//	 processors as well."
//
// Here processor k's quantum boundaries occur at φ_k + j·(1 + ε_k) for
// j = 0, 1, …: a phase offset φ_k and a relative clock drift ε_k ≥ 0. The
// scheduler still behaves SFQ-locally — each processor picks the highest
// priority ready subtask at each of its own boundaries and idles any
// quantum residue — but no global resynchronization happens.
//
// A drifting processor delivers one quantum per 1 + ε time units, i.e.
// capacity 1/(1+ε) < 1, so a task system with total utilization M is
// overloaded and its tardiness grows with the horizon: the SFQ guarantee
// genuinely depends on synchronized interrupts. The DVQ model needs no
// quantum boundaries at all, so it is immune by construction — experiment
// E15 quantifies both facts side by side.
package drift

import (
	"fmt"

	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// Options configures a drifting-SFQ run.
type Options struct {
	M      int
	Policy prio.Policy   // nil defaults to PD²
	Yield  sched.YieldFn // nil defaults to full quanta
	// Epsilon is the per-processor relative clock drift ε_k ≥ 0
	// (processor k's quanta last 1 + ε_k). Missing entries default to 0.
	Epsilon []rat.Rat
	// Phase is the per-processor boundary offset φ_k ∈ [0, 1). Missing
	// entries default to 0.
	Phase []rat.Rat
	// MaxBoundaries caps each processor's decision count; 0 derives a safe
	// bound from the workload size.
	MaxBoundaries int64
}

func (o *Options) fill(sys *model.System) error {
	if o.M < 1 {
		return fmt.Errorf("drift: M = %d", o.M)
	}
	if o.Policy == nil {
		o.Policy = prio.PD2{}
	}
	if o.Yield == nil {
		o.Yield = sched.FullCost
	}
	for _, e := range o.Epsilon {
		if e.Sign() < 0 {
			return fmt.Errorf("drift: negative drift %s", e)
		}
	}
	for _, p := range o.Phase {
		if p.Sign() < 0 || !p.Less(rat.One) {
			return fmt.Errorf("drift: phase %s outside [0,1)", p)
		}
	}
	if o.MaxBoundaries == 0 {
		o.MaxBoundaries = sys.Horizon() + 2*int64(sys.NumSubtasks()) + 4
	}
	return nil
}

func (o *Options) eps(k int) rat.Rat {
	if k < len(o.Epsilon) {
		return o.Epsilon[k]
	}
	return rat.Zero
}

func (o *Options) phase(k int) rat.Rat {
	if k < len(o.Phase) {
		return o.Phase[k]
	}
	return rat.Zero
}

// Run simulates sys under per-processor drifting quantum clocks. The
// returned schedule is complete (the engine drains the released workload)
// unless the boundary cap is hit, in which case an error is returned along
// with the partial schedule.
func Run(sys *model.System, opts Options) (*sched.Schedule, error) {
	if err := opts.fill(sys); err != nil {
		return nil, err
	}
	s := sched.New(sys, opts.M, opts.Policy.Name(), "SFQ-drift")

	n := len(sys.Tasks)
	cursor := make([]int, n)
	lastFinish := make([]rat.Rat, n)
	remaining := sys.NumSubtasks()

	// Per-processor boundary counters; the next decision of processor k is
	// at φ_k + j_k · (1 + ε_k).
	j := make([]int64, opts.M)
	boundary := func(k int) rat.Rat {
		return opts.phase(k).Add(rat.FromInt(j[k]).Mul(rat.One.Add(opts.eps(k))))
	}

	bestReady := func(now rat.Rat) *model.Subtask {
		var best *model.Subtask
		for _, task := range sys.Tasks {
			seq := sys.Subtasks(task)
			c := cursor[task.ID]
			if c >= len(seq) {
				continue
			}
			head := seq[c]
			if now.Less(rat.FromInt(head.Elig)) {
				continue
			}
			if c > 0 && now.Less(lastFinish[task.ID]) {
				continue
			}
			if best == nil || prio.Order(opts.Policy, head, best) {
				best = head
			}
		}
		return best
	}

	decision := 0
	for remaining > 0 {
		// The next decision happens on the earliest pending boundary.
		k := 0
		for p := 1; p < opts.M; p++ {
			if boundary(p).Less(boundary(k)) {
				k = p
			}
		}
		if j[k] > opts.MaxBoundaries {
			return s, fmt.Errorf("drift: boundary cap %d hit with %d subtasks pending", opts.MaxBoundaries, remaining)
		}
		now := boundary(k)
		j[k]++
		sub := bestReady(now)
		if sub == nil {
			continue // this processor idles its whole quantum
		}
		decision++
		a := s.Add(sched.Assignment{
			Sub:      sub,
			Proc:     k,
			Start:    now,
			Cost:     opts.Yield(sub),
			Decision: decision,
		})
		cursor[sub.Task.ID]++
		lastFinish[sub.Task.ID] = a.Finish()
		remaining--
	}
	return s, nil
}
