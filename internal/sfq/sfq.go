// Package sfq implements Pfair scheduling under the SFQ model — the
// synchronized, fixed-size-quantum model of classical Pfair work that the
// paper relaxes. Scheduling decisions are made at slot boundaries only; if
// a subtask yields before the end of its quantum, the residue of the
// quantum is wasted (the model is non-work-conserving).
//
// The package also implements the *staggered* variant of Holman & Anderson
// (2004): quanta remain uniform in size and synchronized, but the quantum
// start points on successive processors are offset by 1/M, spreading
// scheduler invocations (and bus traffic) over the slot.
package sfq

import (
	"fmt"
	"slices"

	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// Options configures an SFQ run.
type Options struct {
	M      int         // number of processors (≥ 1)
	Policy prio.Policy // subtask priority; nil defaults to PD²
	Yield  sched.YieldFn
	// Staggered offsets the quantum start on processor k by k/M within
	// each slot (Holman & Anderson). Selection is still slot-synchronous.
	Staggered bool
	// Horizon caps the number of slots simulated; 0 derives a safe bound
	// (latest deadline + number of subtasks + 1, enough for any
	// work-conserving slot scheduler to drain).
	Horizon int64
}

func (o *Options) fill(sys *model.System) error {
	if o.M < 1 {
		return fmt.Errorf("sfq: M = %d", o.M)
	}
	if o.Policy == nil {
		o.Policy = prio.PD2{}
	}
	if o.Yield == nil {
		o.Yield = sched.FullCost
	}
	if o.Horizon == 0 {
		o.Horizon = sys.Horizon() + int64(sys.NumSubtasks()) + 1
	}
	return nil
}

// Run simulates sys on opts.M processors under the SFQ model and returns
// the complete schedule. An error is returned only if the horizon is
// exhausted before every subtask is scheduled (which cannot happen with the
// default horizon) or options are invalid.
//
// This is the fast-path engine: the per-slot ready set is ordered by
// slices.SortFunc over cached prio.Keys instead of the seed's insertion
// sort with priorities recomputed on every comparison. RunReference
// retains the seed implementation; TestEngineEquivalence pins the two to
// identical schedules.
func Run(sys *model.System, opts Options) (*sched.Schedule, error) {
	if err := opts.fill(sys); err != nil {
		return nil, err
	}
	if opts.Staggered {
		return runStaggered(sys, opts)
	}
	s := sched.New(sys, opts.M, opts.Policy.Name(), "SFQ")

	st := newState(sys, opts.M)
	cmp := prio.NewComparer(opts.Policy, sys)
	decision := 0
	for t := int64(0); st.remaining > 0; t++ {
		if t > opts.Horizon {
			return s, fmt.Errorf("sfq: horizon %d exhausted with %d subtasks pending", opts.Horizon, st.remaining)
		}
		ready := st.readyAt(t)
		// cmp.Total is a strict total order on distinct subtasks, so the
		// result is exactly the seed's stable insertion sort by prio.Order.
		slices.SortFunc(ready, cmp.Total)

		free := st.freeProcs()
		for _, sub := range ready {
			if len(free) == 0 {
				break
			}
			proc := st.pickProc(free, sub)
			free = remove(free, proc)
			decision++
			a := s.Add(sched.Assignment{
				Sub:      sub,
				Proc:     proc,
				Start:    rat.FromInt(t),
				Cost:     opts.Yield(sub),
				Decision: decision,
			})
			st.commit(sub, a, t)
		}
	}
	return s, nil
}

// runStaggered simulates the staggered model of Holman & Anderson: quanta
// remain uniform (size one) and synchronized, but processor k's quanta
// occupy [t + k/M, t+1 + k/M). Each processor makes its own scheduling
// decision at its own quantum boundaries, choosing the highest-priority
// subtask that is eligible and whose predecessor has completed by that
// moment. If a subtask yields early, the residue of the quantum is still
// wasted — the model keeps SFQ's fixed-size quanta, only the alignment
// across processors changes.
func runStaggered(sys *model.System, opts Options) (*sched.Schedule, error) {
	s := sched.New(sys, opts.M, opts.Policy.Name(), "SFQ-staggered")
	st := newState(sys, opts.M)
	cmp := prio.NewComparer(opts.Policy, sys)
	m := int64(opts.M)
	decision := 0
	finish := make([]rat.Rat, len(sys.Tasks)) // actual completion of last-scheduled subtask per task
	for t := int64(0); st.remaining > 0; t++ {
		if t > opts.Horizon {
			return s, fmt.Errorf("sfq: horizon %d exhausted with %d subtasks pending", opts.Horizon, st.remaining)
		}
		for k := int64(0); k < m; k++ {
			now := rat.FromInt(t).Add(rat.New(k, m))
			best := st.bestReadyStaggered(now, finish, cmp)
			if best == nil {
				continue
			}
			decision++
			a := s.Add(sched.Assignment{
				Sub:      best,
				Proc:     int(k),
				Start:    now,
				Cost:     opts.Yield(best),
				Decision: decision,
			})
			st.commit(best, a, t)
			finish[best.Task.ID] = a.Finish()
		}
	}
	return s, nil
}

// bestReadyStaggered returns the highest-priority subtask ready at the
// rational time now: its head status, eligibility, and its predecessor's
// actual completion (tracked in finish) are all checked against now.
func (st *state) bestReadyStaggered(now rat.Rat, finish []rat.Rat, cmp *prio.Comparer) *model.Subtask {
	var best *model.Subtask
	for _, task := range st.sys.Tasks {
		seq := st.sys.Subtasks(task)
		c := st.cursor[task.ID]
		if c >= len(seq) {
			continue
		}
		head := seq[c]
		if now.Less(rat.FromInt(head.Elig)) {
			continue
		}
		if c > 0 && now.Less(finish[task.ID]) {
			continue // predecessor still executing
		}
		if best == nil || cmp.Order(head, best) {
			best = head
		}
	}
	return best
}

// state tracks per-task progress during a slot-based run.
type state struct {
	sys       *model.System
	cursor    []int   // per task: next unscheduled seq index
	lastSlot  []int64 // per task: slot of most recent assignment (−1 none)
	lastProc  []int   // per task: processor of most recent assignment (affinity)
	m         int
	remaining int
	ready     []*model.Subtask // reusable readyAt buffer
	free      []int            // reusable freeProcs buffer
}

func newState(sys *model.System, m int) *state {
	n := len(sys.Tasks)
	st := &state{
		sys:      sys,
		cursor:   make([]int, n),
		lastSlot: make([]int64, n),
		lastProc: make([]int, n),
		m:        m,
	}
	for i := range st.lastSlot {
		st.lastSlot[i] = -1
		st.lastProc[i] = -1
	}
	st.remaining = sys.NumSubtasks()
	return st
}

// readyAt returns the ready heads at slot t: each task's next unscheduled
// released subtask, provided it is eligible and its predecessor (if any)
// was scheduled in an earlier slot. (Only heads can be ready — subtasks of
// a task execute in released order.) The returned slice aliases a buffer
// reused across slots.
func (st *state) readyAt(t int64) []*model.Subtask {
	ready := st.ready[:0]
	for _, task := range st.sys.Tasks {
		seq := st.sys.Subtasks(task)
		c := st.cursor[task.ID]
		if c >= len(seq) {
			continue
		}
		head := seq[c]
		if head.Elig > t {
			continue
		}
		if c > 0 && st.lastSlot[task.ID] >= t {
			continue // predecessor occupies this slot
		}
		ready = append(ready, head)
	}
	st.ready = ready
	return ready
}

// freeProcs returns the free-processor list for a fresh slot; it aliases a
// buffer reused across slots (the caller shrinks it via remove).
func (st *state) freeProcs() []int {
	free := st.free[:0]
	for i := 0; i < st.m; i++ {
		free = append(free, i)
	}
	st.free = free
	return free
}

// pickProc chooses a processor for sub from the (non-empty) free list,
// preferring the task's previous processor to minimize notional migrations.
func (st *state) pickProc(free []int, sub *model.Subtask) int {
	if prev := st.lastProc[sub.Task.ID]; prev >= 0 {
		for _, p := range free {
			if p == prev {
				return p
			}
		}
	}
	return free[0]
}

func (st *state) commit(sub *model.Subtask, a *sched.Assignment, t int64) {
	id := sub.Task.ID
	st.cursor[id]++
	st.lastSlot[id] = t
	st.lastProc[id] = a.Proc
	st.remaining--
}

func remove(xs []int, x int) []int {
	for i, v := range xs {
		if v == x {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}
