package sfq

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// fig2System is the running example of Fig. 2: tasks A, B, C of weight 1/6
// and D, E, F of weight 1/2, total utilization 2, on two processors.
func fig2System(horizon int64) *model.System {
	return model.Periodic([]model.Weight{
		model.W(1, 6), model.W(1, 6), model.W(1, 6),
		model.W(1, 2), model.W(1, 2), model.W(1, 2),
	}, horizon)
}

func TestFig2aSFQScheduleIsPfairValid(t *testing.T) {
	sys := fig2System(6)
	s, err := Run(sys, Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidatePfair(); err != nil {
		t.Fatalf("PD² SFQ schedule not Pfair-valid: %v", err)
	}
	if got := s.MaxTardiness(); got.Sign() != 0 {
		t.Errorf("max tardiness = %s, want 0", got)
	}
	// Utilization is exactly 2: no slot may idle before the horizon.
	for slot := int64(0); slot < 6; slot++ {
		if got := len(s.InSlot(slot)); got != 2 {
			t.Errorf("slot %d has %d assignments, want 2", slot, got)
		}
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	sys := fig2System(6)
	if _, err := Run(sys, Options{M: 0}); err == nil {
		t.Error("M = 0 accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	sys := fig2System(6)
	s, err := Run(sys, Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Algo != "PD2" || s.Model != "SFQ" {
		t.Errorf("labels = %s/%s", s.Algo, s.Model)
	}
}

// The load-bearing anchor: PD² is optimal under SFQ, so every feasible
// system must be scheduled with zero misses. This exercises the window
// formulas, the b-bit, the group deadline and the engine together.
func TestPD2OptimalOnRandomPeriodicSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(3) // 2..4 processors
		n := m + 1 + rng.Intn(3*m)
		q := int64(6 + rng.Intn(10))
		class := gen.WeightClass(rng.Intn(3))
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, class)
		sys := gen.System(rng, ws, gen.SystemOptions{Horizon: 3 * q})
		s, err := Run(sys, Options{M: m})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.ValidatePfair(); err != nil {
			t.Fatalf("trial %d (M=%d, q=%d, class=%v): PD² missed a deadline: %v", trial, m, q, class, err)
		}
	}
}

func TestPD2OptimalOnRandomISAndGISSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(3)
		n := m + 1 + rng.Intn(2*m)
		q := int64(6 + rng.Intn(8))
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{
			Horizon:    4 * q,
			JitterProb: 25,
			MaxJitter:  3,
			OmitProb:   15,
		})
		if err := sys.Validate(); err != nil {
			t.Fatal(err)
		}
		s, err := Run(sys, Options{M: m})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.ValidatePfair(); err != nil {
			t.Fatalf("trial %d: PD² missed on IS/GIS system: %v", trial, err)
		}
	}
}

// PF and PD are likewise optimal; EPDF is not (no assertion for it).
func TestPFAndPDOptimalOnRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, pol := range []prio.Policy{prio.PF{}, prio.PD{}} {
		for trial := 0; trial < 25; trial++ {
			m := 2 + rng.Intn(2)
			q := int64(6 + rng.Intn(6))
			n := m + 1 + rng.Intn(2*m)
			if int64(n) > int64(m)*q {
				continue
			}
			ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
			sys := gen.System(rng, ws, gen.SystemOptions{Horizon: 3 * q})
			s, err := Run(sys, Options{M: m, Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.ValidatePfair(); err != nil {
				t.Fatalf("%s trial %d: missed deadline: %v", pol.Name(), trial, err)
			}
		}
	}
}

// EPDF on two processors is optimal (Anderson & Srinivasan); our engine
// should reproduce that, and it anchors the E8 experiment.
func TestEPDFOnTwoProcessors(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		q := int64(6 + rng.Intn(6))
		n := 3 + rng.Intn(4)
		if int64(n) > 2*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, 2*q, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{Horizon: 3 * q})
		s, err := Run(sys, Options{M: 2, Policy: prio.EPDF{}})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ValidatePfair(); err != nil {
			t.Fatalf("trial %d: EPDF missed on M=2: %v", trial, err)
		}
	}
}

func TestEarlyYieldWastesQuantumResidue(t *testing.T) {
	sys := fig2System(6)
	half := rat.New(1, 2)
	s, err := Run(sys, Options{M: 2, Yield: sched.ConstCost(half)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateSFQ(); err != nil {
		t.Fatal(err)
	}
	// Every subtask still occupies a full slot: starts integral and one
	// subtask per processor per slot. Busy time is half the allocation.
	if got, want := s.BusyTime(), rat.FromInt(6); !got.Equal(want) {
		t.Errorf("busy = %s, want %s", got, want)
	}
	// Idle time = M·makespan − busy. Makespan here is 5.5 (last subtask
	// starts at 5 and runs 1/2), so idle = 11 − 6 = 5.
	if got, want := s.IdleTime(), rat.FromInt(5); !got.Equal(want) {
		t.Errorf("idle = %s, want %s", got, want)
	}
}

func TestStaggeredOffsetsStarts(t *testing.T) {
	sys := fig2System(6)
	s, err := Run(sys, Options{M: 2, Staggered: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Model != "SFQ-staggered" {
		t.Errorf("model label = %s", s.Model)
	}
	if err := s.ValidateDVQ(); err != nil {
		t.Fatalf("staggered schedule structurally invalid: %v", err)
	}
	sawOffset := false
	for _, a := range s.Assignments() {
		off := a.Start.Sub(rat.FromInt(a.Start.Floor()))
		want := rat.New(int64(a.Proc), 2)
		if !off.Equal(want) {
			t.Errorf("%s on proc %d starts at %s (offset %s, want %s)", a.Sub, a.Proc, a.Start, off, want)
		}
		if off.Sign() > 0 {
			sawOffset = true
		}
	}
	if !sawOffset {
		t.Error("no staggered starts observed")
	}
}

func TestStaggeredBoundedTardiness(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 20; trial++ {
		q := int64(6 + rng.Intn(6))
		m := 2 + rng.Intn(2)
		n := m + 1 + rng.Intn(m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{Horizon: 2 * q})
		s, err := Run(sys, Options{M: m, Staggered: true})
		if err != nil {
			t.Fatal(err)
		}
		// Staggering delays a completion by at most the largest offset,
		// (M−1)/M < 1, beyond the Pfair deadline.
		if got := s.MaxTardiness(); rat.One.Less(got) {
			t.Fatalf("trial %d: staggered tardiness %s > 1", trial, got)
		}
	}
}

func TestDecisionOrderIsRankOrder(t *testing.T) {
	sys := fig2System(6)
	s, err := Run(sys, Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	ranks := s.Ranks()
	if len(ranks) != sys.NumSubtasks() {
		t.Fatalf("rank count %d", len(ranks))
	}
	// Ranks must be non-decreasing in slot.
	prev := int64(-1)
	for _, sub := range ranks {
		slot := s.Of(sub).Slot()
		if slot < prev {
			t.Fatal("ranks out of slot order")
		}
		prev = slot
	}
}

func TestHorizonExhaustion(t *testing.T) {
	// An infeasible system (utilization 3 on 2 processors) cannot drain by
	// the given horizon: Run must report an error rather than loop.
	sys := model.Periodic([]model.Weight{
		model.W(1, 1), model.W(1, 1), model.W(1, 1),
	}, 10)
	_, err := Run(sys, Options{M: 2, Horizon: 12})
	if err == nil {
		t.Fatal("expected horizon exhaustion error")
	}
}

// At full utilization with full quanta, the PD² SFQ schedule of a
// synchronous periodic system is cyclic with the hyperperiod: the engine's
// state (per-task progress relative to the window pattern) recurs at t = H,
// so slots t and t+H hold the same task sets.
func TestPD2ScheduleIsHyperperiodic(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 15; trial++ {
		m := 2 + rng.Intn(3)
		q := int64(4 + rng.Intn(5))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		sys := model.Periodic(ws, 2*q) // uniform periods: H = q
		s, err := Run(sys, Options{M: m})
		if err != nil {
			t.Fatal(err)
		}
		for slot := int64(0); slot < q; slot++ {
			first := taskSetInSlot(s, slot)
			second := taskSetInSlot(s, slot+q)
			if first != second {
				t.Fatalf("trial %d: slot %d tasks %q but slot %d tasks %q",
					trial, slot, first, slot+q, second)
			}
		}
	}
}

func taskSetInSlot(s *sched.Schedule, slot int64) string {
	var names []string
	for _, a := range s.InSlot(slot) {
		names = append(names, a.Sub.Task.Name)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}
