package sfq

import (
	"fmt"

	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// RunReference is the seed implementation of Run (aligned and staggered),
// retained verbatim as the golden oracle for the fast-path engine: per-slot
// insertion sort and linear best-ready scans, with every priority component
// recomputed by prio.Order on each comparison. Its only job is to define
// the semantics that Run must reproduce assignment-for-assignment (see
// TestEngineEquivalence). Do not optimize it.
func RunReference(sys *model.System, opts Options) (*sched.Schedule, error) {
	if err := opts.fill(sys); err != nil {
		return nil, err
	}
	if opts.Staggered {
		return runStaggeredReference(sys, opts)
	}
	s := sched.New(sys, opts.M, opts.Policy.Name(), "SFQ")

	st := newState(sys, opts.M)
	decision := 0
	for t := int64(0); st.remaining > 0; t++ {
		if t > opts.Horizon {
			return s, fmt.Errorf("sfq: horizon %d exhausted with %d subtasks pending", opts.Horizon, st.remaining)
		}
		ready := st.readyAt(t)
		sortSubtasksReference(ready, opts.Policy)

		free := st.freeProcs()
		for _, sub := range ready {
			if len(free) == 0 {
				break
			}
			proc := st.pickProc(free, sub)
			free = remove(free, proc)
			decision++
			a := s.Add(sched.Assignment{
				Sub:      sub,
				Proc:     proc,
				Start:    rat.FromInt(t),
				Cost:     opts.Yield(sub),
				Decision: decision,
			})
			st.commit(sub, a, t)
		}
	}
	return s, nil
}

func runStaggeredReference(sys *model.System, opts Options) (*sched.Schedule, error) {
	s := sched.New(sys, opts.M, opts.Policy.Name(), "SFQ-staggered")
	st := newState(sys, opts.M)
	m := int64(opts.M)
	decision := 0
	finish := make([]rat.Rat, len(sys.Tasks))
	for t := int64(0); st.remaining > 0; t++ {
		if t > opts.Horizon {
			return s, fmt.Errorf("sfq: horizon %d exhausted with %d subtasks pending", opts.Horizon, st.remaining)
		}
		for k := int64(0); k < m; k++ {
			now := rat.FromInt(t).Add(rat.New(k, m))
			best := st.bestReadyStaggeredReference(now, finish, opts.Policy)
			if best == nil {
				continue
			}
			decision++
			a := s.Add(sched.Assignment{
				Sub:      best,
				Proc:     int(k),
				Start:    now,
				Cost:     opts.Yield(best),
				Decision: decision,
			})
			st.commit(best, a, t)
			finish[best.Task.ID] = a.Finish()
		}
	}
	return s, nil
}

func (st *state) bestReadyStaggeredReference(now rat.Rat, finish []rat.Rat, pol prio.Policy) *model.Subtask {
	var best *model.Subtask
	for _, task := range st.sys.Tasks {
		seq := st.sys.Subtasks(task)
		c := st.cursor[task.ID]
		if c >= len(seq) {
			continue
		}
		head := seq[c]
		if now.Less(rat.FromInt(head.Elig)) {
			continue
		}
		if c > 0 && now.Less(finish[task.ID]) {
			continue // predecessor still executing
		}
		if best == nil || prio.Order(pol, head, best) {
			best = head
		}
	}
	return best
}

func sortSubtasksReference(subs []*model.Subtask, p prio.Policy) {
	// Insertion sort keeps the common small ready sets cheap and avoids an
	// allocation; ready sets are one head per task.
	for i := 1; i < len(subs); i++ {
		for j := i; j > 0 && prio.Order(p, subs[j], subs[j-1]); j-- {
			subs[j], subs[j-1] = subs[j-1], subs[j]
		}
	}
}
