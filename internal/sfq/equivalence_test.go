package sfq

import (
	"math/rand"
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// TestEngineEquivalence pins the fast-path Run (key-sorted ready sets) to
// the retained seed implementation RunReference across random feasible GIS
// systems, every policy, both quantum alignments and all yield models.
func TestEngineEquivalence(t *testing.T) {
	pols := append(prio.All(), prio.PD2NoGroup{}, prio.PD2NoBBit{})
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		q := int64(6 + rng.Intn(8))
		n := m + 1 + rng.Intn(2*m)
		for int64(n) > int64(m)*q {
			n--
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(int(seed)%3))
		sys := gen.System(rng, ws, gen.SystemOptions{
			Horizon:    3 * q,
			JitterProb: int(seed % 2 * 25),
			MaxJitter:  2,
			OmitProb:   int(seed % 3 * 10),
		})
		yields := []sched.YieldFn{
			sched.FullCost,
			gen.UniformYield(seed, 8),
			gen.BimodalYield(seed, 50, 8),
			gen.AdversarialYield(rat.New(1, 16), nil),
		}
		y := yields[int(seed)%len(yields)]
		for _, pol := range pols {
			for _, staggered := range []bool{false, true} {
				opts := Options{M: m, Policy: pol, Yield: y, Staggered: staggered}
				fast, err := Run(sys, opts)
				if err != nil {
					t.Fatalf("seed %d policy %s staggered=%v: fast engine: %v", seed, pol.Name(), staggered, err)
				}
				ref, err := RunReference(sys, opts)
				if err != nil {
					t.Fatalf("seed %d policy %s staggered=%v: reference engine: %v", seed, pol.Name(), staggered, err)
				}
				if !sched.Equal(fast, ref) {
					for _, d := range sched.Diff(fast, ref) {
						t.Errorf("seed %d policy %s staggered=%v: %s", seed, pol.Name(), staggered, d)
					}
					t.Fatalf("seed %d policy %s staggered=%v: fast SFQ diverges from reference", seed, pol.Name(), staggered)
				}
			}
		}
	}
}
