package prio

import (
	"testing"

	"desyncpfair/internal/model"
)

func TestPD2NoGroupDropsOnlyGroupDeadline(t *testing.T) {
	// Same deadline, same b-bit, different group deadlines: full PD²
	// separates them, the ablation does not.
	longer := sub(model.W(7, 9), 1)  // d=2, b=1, D=5
	shorter := sub(model.W(3, 4), 1) // d=2, b=1, D=4
	if pd2.Cmp(longer, shorter) == 0 {
		t.Fatal("setup: PD2 should separate these")
	}
	if (PD2NoGroup{}).Cmp(longer, shorter) != 0 {
		t.Error("PD2-noD should tie when only group deadlines differ")
	}
	// The b-bit is kept.
	overlap := sub(model.W(3, 4), 1)
	noOverlap := sub(model.W(1, 2), 1)
	if !Prec(PD2NoGroup{}, overlap, noOverlap) {
		t.Error("PD2-noD should keep the b-bit tie-break")
	}
}

func TestPD2NoBBitIsEPDF(t *testing.T) {
	a := sub(model.W(3, 4), 1)
	b := sub(model.W(1, 2), 1)
	if (PD2NoBBit{}).Cmp(a, b) != (EPDF{}).Cmp(a, b) {
		t.Error("PD2-nob must order exactly like EPDF")
	}
	if (PD2NoBBit{}).Cmp(a, b) != 0 {
		t.Error("equal deadlines should tie without the b-bit")
	}
}

func TestAblationNames(t *testing.T) {
	if (PD2NoGroup{}).Name() != "PD2-noD" || (PD2NoBBit{}).Name() != "PD2-nob" {
		t.Error("ablation names wrong")
	}
}
