package prio

import "desyncpfair/internal/model"

// Key is the precomputed, immutable priority data of one subtask. Every
// quantity a policy's Cmp consults — pseudo-deadline, successor bit, group
// deadline, weight — costs integer divisions to derive from the subtask,
// and the seed engines re-derived them on every comparison. A Key is
// computed once per subtask per run and compared with plain integer
// arithmetic afterwards.
//
// Keys are only meaningful for subtasks owned by a model.System (their GID
// and Seq are set by AddSubtask); the hypothetical successor subtasks that
// PF's chain walk constructs never get keys — that walk is the one exact
// fallback (see KeyCmp).
type Key struct {
	Deadline int64 // d(T_i), eq. (4)
	GroupD   int64 // D(T_i), the PD² group deadline (0 for light tasks)
	WE, WP   int64 // task weight e/p, for PD's larger-weight tie-break
	TaskID   int32 // engine tie-break: task ID …
	Seq      int32 // … then sequence position
	B        uint8 // successor bit b(T_i)
	Heavy    bool  // wt ≥ 1/2, for PD's heavy-before-light tie-break
}

// KeyOf computes the priority key of s.
func KeyOf(s *model.Subtask) Key {
	return Key{
		Deadline: s.Deadline(),
		GroupD:   s.GroupDeadline(),
		WE:       s.Task.W.E,
		WP:       s.Task.W.P,
		TaskID:   int32(s.Task.ID),
		Seq:      int32(s.Seq),
		B:        uint8(s.BBit()),
		Heavy:    s.Task.W.IsHeavy(),
	}
}

// keyKind is a policy's key-comparison strategy, resolved once per
// Comparer so the hot path switches on an integer instead of an interface
// type.
type keyKind uint8

const (
	kindFallback keyKind = iota // no key fast path: always exact Cmp
	kindEPDF
	kindPD2
	kindPD
	kindPF // fast prefix; exact chain walk for b = 1 ties
)

func keyKindOf(p Policy) keyKind {
	switch p.(type) {
	case EPDF:
		return kindEPDF
	case PD2:
		return kindPD2
	case PD:
		return kindPD
	case PF:
		return kindPF
	}
	return kindFallback
}

// KeyCmp compares two subtasks under p using only their precomputed keys.
// The boolean reports whether the comparison is decided: false means the
// caller must fall back to the exact p.Cmp — PF ties among b = 1 subtasks
// (the successor-chain walk), and any policy without a key fast path (the
// ablation policies).
func KeyCmp(p Policy, a, b Key) (int, bool) {
	return keyCmp(keyKindOf(p), &a, &b)
}

func keyCmp(k keyKind, a, b *Key) (int, bool) {
	switch k {
	case kindEPDF:
		return cmp64(a.Deadline, b.Deadline), true
	case kindPD2:
		return pd2KeyCmp(a, b), true
	case kindPD:
		if c := pd2KeyCmp(a, b); c != 0 {
			return c, true
		}
		if a.Heavy != b.Heavy {
			if a.Heavy {
				return -1, true
			}
			return 1, true
		}
		// Larger weight first: a.W > b.W ⇔ aE·bP > bE·aP.
		return -cmp64(a.WE*b.WP, b.WE*a.WP), true
	case kindPF:
		if c := cmp64(a.Deadline, b.Deadline); c != 0 {
			return c, true
		}
		if a.B != b.B {
			return keyBBitCmp(a.B, b.B), true
		}
		if a.B == 0 { // both bits 0: the tie stands
			return 0, true
		}
		return 0, false // both bits 1: only the chain walk decides
	}
	return 0, false
}

// pd2KeyCmp is PD2.Cmp over keys: deadline, then successor bit (1 wins),
// then — among b = 1 subtasks — later group deadline wins.
func pd2KeyCmp(a, b *Key) int {
	if c := cmp64(a.Deadline, b.Deadline); c != 0 {
		return c
	}
	if a.B != b.B {
		return keyBBitCmp(a.B, b.B)
	}
	if a.B == 1 {
		return cmp64(b.GroupD, a.GroupD)
	}
	return 0
}

func keyBBitCmp(a, b uint8) int {
	if a == 1 {
		return -1
	}
	return 1
}

// Comparer evaluates one policy's priority order over one task system with
// per-subtask keys computed once up front, and memoizes the exact-Cmp
// fallback so repeated comparisons of the same pair (as a heap makes) never
// re-walk PF's successor chain. Engines create one Comparer per run; a
// Comparer is NOT safe for concurrent use (the memo mutates).
type Comparer struct {
	pol   Policy
	kind  keyKind
	keys  []Key
	nsubs uint64
	memo  map[uint64]int8 // exact-fallback results, keyed by GID pair
}

// NewComparer precomputes the keys of every released subtask of sys.
func NewComparer(p Policy, sys *model.System) *Comparer {
	keys := make([]Key, sys.NumSubtasks())
	for _, t := range sys.Tasks {
		for _, s := range sys.Subtasks(t) {
			keys[s.GID] = KeyOf(s)
		}
	}
	return &Comparer{pol: p, kind: keyKindOf(p), keys: keys, nsubs: uint64(len(keys))}
}

// Policy returns the policy the comparer evaluates.
func (c *Comparer) Policy() Policy { return c.pol }

// Key returns the cached key of s.
func (c *Comparer) Key(s *model.Subtask) Key { return c.keys[s.GID] }

// Cmp is the policy's partial order (Policy.Cmp) with cached keys.
func (c *Comparer) Cmp(a, b *model.Subtask) int {
	if r, ok := keyCmp(c.kind, &c.keys[a.GID], &c.keys[b.GID]); ok {
		return r
	}
	return c.exact(a, b)
}

func (c *Comparer) exact(a, b *model.Subtask) int {
	k := uint64(a.GID)*c.nsubs + uint64(b.GID)
	if r, ok := c.memo[k]; ok {
		return int(r)
	}
	r := c.pol.Cmp(a, b)
	if c.memo == nil {
		c.memo = make(map[uint64]int8)
	}
	c.memo[k] = int8(r)
	return r
}

// Total is the engines' deterministic total order as a three-way compare:
// Cmp with remaining ties broken by task ID, then sequence position. It
// agrees with Order(c.Policy(), a, b) on every pair.
func (c *Comparer) Total(a, b *model.Subtask) int {
	ka, kb := &c.keys[a.GID], &c.keys[b.GID]
	if r, ok := keyCmp(c.kind, ka, kb); ok && r != 0 {
		return r
	} else if !ok {
		if r := c.exact(a, b); r != 0 {
			return r
		}
	}
	if ka.TaskID != kb.TaskID {
		if ka.TaskID < kb.TaskID {
			return -1
		}
		return 1
	}
	switch {
	case ka.Seq < kb.Seq:
		return -1
	case ka.Seq > kb.Seq:
		return 1
	default:
		return 0
	}
}

// Order reports whether a should be scheduled before b; it is prio.Order
// with cached keys.
func (c *Comparer) Order(a, b *model.Subtask) bool { return c.Total(a, b) < 0 }
