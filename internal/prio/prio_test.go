package prio

import (
	"testing"
	"testing/quick"

	"desyncpfair/internal/model"
)

var (
	epdf = EPDF{}
	pd2  = PD2{}
	pd   = PD{}
	pf   = PF{}
)

func sub(w model.Weight, i int64) *model.Subtask {
	return &model.Subtask{Task: &model.Task{W: w}, Index: i}
}

func subTheta(w model.Weight, i, th int64) *model.Subtask {
	return &model.Subtask{Task: &model.Task{W: w}, Index: i, Theta: th}
}

func TestEPDFIsDeadlineOnly(t *testing.T) {
	a := sub(model.W(1, 2), 1) // d = 2
	b := sub(model.W(1, 3), 1) // d = 3
	if !Prec(epdf, a, b) || Prec(epdf, b, a) {
		t.Error("EPDF should order d=2 before d=3")
	}
	c := sub(model.W(3, 4), 1) // d = 2, b-bit 1
	if epdf.Cmp(a, c) != 0 {
		t.Error("EPDF should consider equal deadlines equal priority")
	}
}

func TestPD2BBitTieBreak(t *testing.T) {
	// Both deadlines 2; weight 3/4 has b(T_1)=1, weight 1/2 has b(T_1)=0.
	heavyOverlap := sub(model.W(3, 4), 1)
	noOverlap := sub(model.W(1, 2), 1)
	if !Prec(pd2, heavyOverlap, noOverlap) {
		t.Error("PD2 should prefer b=1 on a deadline tie")
	}
	if Prec(pd2, noOverlap, heavyOverlap) {
		t.Error("PD2 ordering should be antisymmetric")
	}
}

func TestPD2GroupDeadlineTieBreak(t *testing.T) {
	// Two subtasks with d = 2 and b = 1 but different group deadlines:
	// wt 7/9: D(T_1) = 5; wt 3/4: D(T_1) = 4. Later group deadline wins.
	longer := sub(model.W(7, 9), 1)
	shorter := sub(model.W(3, 4), 1)
	if longer.Deadline() != 2 || shorter.Deadline() != 2 {
		t.Fatal("test setup: deadlines differ")
	}
	if longer.GroupDeadline() != 5 || shorter.GroupDeadline() != 4 {
		t.Fatalf("test setup: group deadlines %d,%d", longer.GroupDeadline(), shorter.GroupDeadline())
	}
	if !Prec(pd2, longer, shorter) {
		t.Error("PD2 should prefer the later group deadline")
	}
}

func TestPD2EqualPriority(t *testing.T) {
	a := sub(model.W(3, 4), 1)
	b := sub(model.W(3, 4), 1)
	b.Task.ID = 1
	if pd2.Cmp(a, b) != 0 {
		t.Error("identical windows should be equal priority under PD2")
	}
	// Order still deterministically breaks the tie by task ID.
	if !Order(pd2, a, b) || Order(pd2, b, a) {
		t.Error("Order should break ties by task ID")
	}
}

func TestPDRefinesPD2(t *testing.T) {
	f := func(e1, p1, e2, p2 uint8, i1, i2 uint8) bool {
		a := sub(wclamp(e1, p1), int64(i1%20)+1)
		b := sub(wclamp(e2, p2), int64(i2%20)+1)
		c2 := pd2.Cmp(a, b)
		cd := pd.Cmp(a, b)
		if c2 < 0 && cd >= 0 {
			return false
		}
		if c2 > 0 && cd <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPDHeavyBeforeLightOnFullTie(t *testing.T) {
	// Construct a PD² tie between a heavy and a light subtask: both b = 0
	// and equal deadlines. wt 1/2 (heavy, d=2, b=0) vs wt 2/4 is same task;
	// use wt 1/2 vs light wt 2/4? 2/4 reduces. Use i=1 of 1/2 (d=2, b=0)
	// and i=1 of 2/4-like light... light with d=2, b=0 needs wt=1/2 again.
	// Instead use i=2 of light 2/3 is heavy. Take d=6, b=0: heavy 1/2 i=3
	// (d=6, b=0) vs light 1/3 i=2 (d=6, b=0).
	heavy := sub(model.W(1, 2), 3)
	light := sub(model.W(1, 3), 2)
	if heavy.Deadline() != 6 || light.Deadline() != 6 || heavy.BBit() != 0 || light.BBit() != 0 {
		t.Fatal("test setup wrong")
	}
	if pd2.Cmp(heavy, light) != 0 {
		t.Fatal("expected PD2 tie")
	}
	if !Prec(pd, heavy, light) {
		t.Error("PD should prefer heavy on a full PD2 tie")
	}
}

func TestPFMatchesPD2OnDeadlineAndBit(t *testing.T) {
	a := sub(model.W(3, 4), 1)
	b := sub(model.W(1, 2), 1)
	if !Prec(pf, a, b) {
		t.Error("PF should prefer b=1 on a deadline tie")
	}
}

func TestPFChainComparison(t *testing.T) {
	// wt 7/9 vs wt 3/4, both d=2, b=1. Chains:
	//   7/9: d(T_2)=3, b=1; d(T_3)=4, b=1; d(T_4)=6 …
	//   3/4: d(T_2)=3, b=1; d(T_3)=4, b=0 → chain decided at step 3:
	// at index+2 both have d=4; bits differ (7/9 has b=1, 3/4 has b=0), so
	// 7/9 wins — matching PD² (group deadlines 5 vs 4).
	a := sub(model.W(7, 9), 1)
	b := sub(model.W(3, 4), 1)
	if !Prec(pf, a, b) {
		t.Error("PF chain comparison should prefer 7/9's T_1")
	}
	if got, want := pf.Cmp(a, b), pd2.Cmp(a, b); got != want {
		t.Errorf("PF = %d, PD2 = %d; should agree on heavy tasks", got, want)
	}
}

func TestPFEqualChains(t *testing.T) {
	a := sub(model.W(3, 4), 1)
	b := sub(model.W(3, 4), 1)
	if pf.Cmp(a, b) != 0 {
		t.Error("identical chains should be equal priority")
	}
	// Same weight, different phase within the period: indices 1 and 4 of
	// wt 3/4 have deadlines 2 and 6 — not a tie; shift θ to align: T_4 with
	// θ = -4 is not allowed, so compare T_1 (θ=4) vs T_4 (θ=0): both d = 6.
	x := subTheta(model.W(3, 4), 1, 4)
	y := sub(model.W(3, 4), 4)
	if x.Deadline() != y.Deadline() {
		t.Fatal("setup: deadlines differ")
	}
	if pf.Cmp(x, y) != 0 {
		t.Error("same-weight same-phase chains should tie")
	}
}

// PF and PD² agree whenever both decide strictly, for heavy tasks — the
// group deadline is a closed form for the chain comparison.
func TestPropPFAgreesWithPD2OnHeavy(t *testing.T) {
	f := func(e1, p1, e2, p2, i1, i2 uint8) bool {
		w1, w2 := wclamp(e1, p1), wclamp(e2, p2)
		if !w1.IsHeavy() || !w2.IsHeavy() || w1.E == w1.P || w2.E == w2.P {
			return true
		}
		a := sub(w1, int64(i1%20)+1)
		b := sub(w2, int64(i2%20)+1)
		pf, pd2 := pf.Cmp(a, b), pd2.Cmp(a, b)
		if pd2 != 0 && pf != 0 && pf != pd2 {
			return false
		}
		// When PD² decides strictly via deadline or b-bit, PF must agree.
		if a.Deadline() != b.Deadline() || a.BBit() != b.BBit() {
			return pf == pd2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// All policies must be antisymmetric and respect the deadline primary key.
func TestPropPolicyLaws(t *testing.T) {
	for _, p := range All() {
		p := p
		f := func(e1, p1, e2, p2, i1, i2, th1, th2 uint8) bool {
			a := subTheta(wclamp(e1, p1), int64(i1%20)+1, int64(th1%5))
			b := subTheta(wclamp(e2, p2), int64(i2%20)+1, int64(th2%5))
			if p.Cmp(a, b) != -p.Cmp(b, a) {
				return false
			}
			if p.Cmp(a, a) != 0 {
				return false
			}
			if a.Deadline() < b.Deadline() && !Prec(p, a, b) {
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

// Order must be a strict total order (irreflexive, antisymmetric, total).
func TestPropOrderTotal(t *testing.T) {
	for _, p := range All() {
		p := p
		f := func(e1, p1, e2, p2, i1, i2 uint8) bool {
			a := sub(wclamp(e1, p1), int64(i1%20)+1)
			b := sub(wclamp(e2, p2), int64(i2%20)+1)
			b.Task.ID = 1
			ab, ba := Order(p, a, b), Order(p, b, a)
			if ab == ba { // distinct subtasks: exactly one direction
				return false
			}
			return !Order(p, a, a)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"EPDF", "PF", "PD", "PD2"} {
		p := ByName(name)
		if p == nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v", name, p)
		}
	}
	if ByName("nope") != nil {
		t.Error("unknown name should return nil")
	}
	if ByName("pd2").Name() != "PD2" {
		t.Error("lowercase alias broken")
	}
}

func wclamp(e, p uint8) model.Weight {
	E, P := int64(e%16)+1, int64(p%16)+1
	if E > P {
		E, P = P, E
	}
	return model.Weight{E: E, P: P}
}

// PF strictly refines PD² on light tasks: PD²'s tie-break chain stops at
// the group deadline (defined 0 for light tasks) while PF keeps comparing
// successor windows. The pair below ties under PD² but not under PF.
func TestPFRefinesPD2OnLightTasks(t *testing.T) {
	a := sub(model.W(2, 5), 1) // d=3, b=1, light ⇒ D=0
	b := sub(model.W(3, 7), 1) // d=3, b=1, light ⇒ D=0
	if a.Deadline() != 3 || b.Deadline() != 3 || a.BBit() != 1 || b.BBit() != 1 {
		t.Fatal("setup wrong")
	}
	if pd2.Cmp(a, b) != 0 {
		t.Fatal("expected PD2 tie")
	}
	// Successors: 2/5's T_2 has d=5, b=0; 3/7's T_2 has d=5, b=1 → PF
	// prefers 3/7's T_1.
	if !Prec(pf, b, a) {
		t.Errorf("PF should order 3/7 before 2/5 (Cmp=%d)", pf.Cmp(b, a))
	}
}
