// Package prio implements the Pfair priority policies used by the paper:
// EPDF, PF, PD and PD².
//
// All the algorithms prioritize subtasks with earlier pseudo-deadlines and
// differ only in how they break deadline ties (Sec. 2 of the paper). Each
// policy exposes the *partial* order ≺/≼ of the paper via Cmp (0 means the
// two subtasks have genuinely equal priority under the policy), because
// PD^B and the Property-PB machinery reason about "equal or higher
// priority" (≼) explicitly. Engines that need a deterministic schedule use
// Order, which refines Cmp with a (task ID, sequence) tie-break — any such
// refinement of an optimal policy remains optimal.
package prio

import (
	"desyncpfair/internal/model"
)

// Policy is a Pfair subtask priority.
type Policy interface {
	// Name identifies the policy ("EPDF", "PF", "PD", "PD2").
	Name() string
	// Cmp returns −1 if a ≺ b (a has strictly higher priority), +1 if
	// b ≺ a, and 0 if the policy considers them equal priority.
	Cmp(a, b *model.Subtask) int
}

// Prec reports the paper's a ≺ b (a strictly higher priority) under p.
func Prec(p Policy, a, b *model.Subtask) bool { return p.Cmp(a, b) < 0 }

// PrecEq reports a ≼ b (priority of a at least that of b) under p.
func PrecEq(p Policy, a, b *model.Subtask) bool { return p.Cmp(a, b) <= 0 }

// Order is the deterministic total order used by the engines: the policy's
// Cmp with remaining ties broken by task ID, then sequence position. It
// reports whether a should be scheduled before b.
func Order(p Policy, a, b *model.Subtask) bool {
	if c := p.Cmp(a, b); c != 0 {
		return c < 0
	}
	if a.Task.ID != b.Task.ID {
		return a.Task.ID < b.Task.ID
	}
	return a.Seq < b.Seq
}

// EPDF is the earliest-pseudo-deadline-first policy: no tie-breaking rules.
// It is suboptimal on more than two processors but cheap; the paper's
// "extends to most prior work" remark covers it (experiment E8).
type EPDF struct{}

func (EPDF) Name() string { return "EPDF" }

// Cmp compares by pseudo-deadline only.
func (EPDF) Cmp(a, b *model.Subtask) int {
	return cmp64(a.Deadline(), b.Deadline())
}

// PD2 is the PD² policy of Anderson & Srinivasan: earliest deadline first;
// ties broken first by the successor bit (b = 1 wins — intuitively, a
// subtask whose window overlaps its successor's is more urgent) and then,
// among b = 1 subtasks, by the group deadline (later D wins — a longer
// cascade of forced schedulings is more urgent). PD² is optimal under the
// SFQ model; it is the algorithm the paper runs under the DVQ model.
type PD2 struct{}

func (PD2) Name() string { return "PD2" }

func (PD2) Cmp(a, b *model.Subtask) int {
	if c := cmp64(a.Deadline(), b.Deadline()); c != 0 {
		return c
	}
	if c := cmpInt(b.BBit(), a.BBit()); c != 0 { // b = 1 beats b = 0
		return c
	}
	if a.BBit() == 1 { // both 1: later group deadline wins
		return cmp64(b.GroupDeadline(), a.GroupDeadline())
	}
	return 0
}

// PD is the policy of Baruah, Gehrke & Plaxton (1995). Its tie-breaking
// rules form a superset of PD²'s; the historical formulation carries two
// further rules whose effect is subsumed by any deterministic refinement of
// PD² (Anderson & Srinivasan proved the PD² subset suffices for
// optimality). We implement PD as the documented refinement: PD²'s rules,
// then heavy-before-light, then larger weight first. See DESIGN.md §4.
type PD struct{}

func (PD) Name() string { return "PD" }

func (PD) Cmp(a, b *model.Subtask) int {
	if c := (PD2{}).Cmp(a, b); c != 0 {
		return c
	}
	ah, bh := a.Task.W.IsHeavy(), b.Task.W.IsHeavy()
	if ah != bh {
		if ah {
			return -1
		}
		return 1
	}
	// Larger weight first: a.W > b.W ⇔ aE·bP > bE·aP ⇒ a higher priority.
	return -cmp64(a.Task.W.E*b.Task.W.P, b.Task.W.E*a.Task.W.P)
}

// PF is the original proportionate-fair policy of Baruah et al. (1996):
// earliest deadline first; ties broken by the successor bit; and among
// b = 1 subtasks by lexicographically comparing the successor chain — the
// deadlines (and bits) of T_{i+1}, T_{i+2}, … as if released as early as
// possible. PD²'s group deadline is a closed form for where this chain
// comparison is decided, so PF and PD² order heavy subtasks identically;
// PF additionally keeps comparing for light tasks.
type PF struct{}

func (PF) Name() string { return "PF" }

// pfChainCap bounds the successor-chain comparison. Two chains that agree
// this long belong to tasks of equal weight and phase and remain equal
// forever, so declaring them equal is exact, not an approximation.
const pfChainCap = 4096

func (PF) Cmp(a, b *model.Subtask) int {
	x, y := *a, *b // shallow copies so we can walk the hypothetical chain
	for step := 0; step < pfChainCap; step++ {
		if c := cmp64(x.Deadline(), y.Deadline()); c != 0 {
			return c
		}
		if c := cmpInt(y.BBit(), x.BBit()); c != 0 {
			return c
		}
		if x.BBit() == 0 { // both bits 0: tie stands
			return 0
		}
		x.Index++
		y.Index++
	}
	return 0
}

func cmp64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// ByName returns the policy with the given name, or nil.
func ByName(name string) Policy {
	switch name {
	case "EPDF", "epdf":
		return EPDF{}
	case "PF", "pf":
		return PF{}
	case "PD", "pd":
		return PD{}
	case "PD2", "pd2", "PD^2":
		return PD2{}
	}
	return nil
}

// All returns every policy, for table-driven experiments.
func All() []Policy { return []Policy{EPDF{}, PF{}, PD{}, PD2{}} }
