package prio_test

import (
	"math/rand"
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
)

// keyTestSystems draws task systems spanning the weight classes, IS jitter
// and GIS omissions, so every branch of the key comparators (heavy/light,
// b-bit, group deadline, PF chain ties) is hit.
func keyTestSystems(t *testing.T) []*model.System {
	t.Helper()
	var out []*model.System
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		q := int64(6 + rng.Intn(8))
		n := m + 1 + rng.Intn(2*m)
		for int64(n) > int64(m)*q {
			n--
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(int(seed)%3))
		out = append(out, gen.System(rng, ws, gen.SystemOptions{
			Horizon:    3 * q,
			JitterProb: int(seed%2) * 25,
			MaxJitter:  2,
			OmitProb:   int(seed%3) * 10,
		}))
	}
	// A hand-built system with equal-weight tasks at different phases, to
	// force exact PF chain ties and identical keys across tasks.
	sys := model.NewSystem()
	sys.AddPeriodic("A", model.W(3, 4), 16)
	sys.AddPeriodic("B", model.W(3, 4), 16)
	sys.AddPeriodic("C", model.W(1, 4), 16)
	sys.AddPeriodic("D", model.W(7, 9), 18)
	out = append(out, sys)
	return out
}

func keyPolicies() []prio.Policy {
	return append(prio.All(), prio.PD2NoGroup{}, prio.PD2NoBBit{})
}

// TestKeyOf checks that a Key caches exactly the quantities the policies
// consult.
func TestKeyOf(t *testing.T) {
	for _, sys := range keyTestSystems(t) {
		for _, s := range sys.All() {
			k := prio.KeyOf(s)
			if k.Deadline != s.Deadline() || k.GroupD != s.GroupDeadline() || int(k.B) != s.BBit() {
				t.Fatalf("%s: key %+v does not match subtask", s, k)
			}
			if k.WE != s.Task.W.E || k.WP != s.Task.W.P || k.Heavy != s.Task.W.IsHeavy() {
				t.Fatalf("%s: key weight fields wrong: %+v", s, k)
			}
			if int(k.TaskID) != s.Task.ID || int(k.Seq) != s.Seq {
				t.Fatalf("%s: key identity fields wrong: %+v", s, k)
			}
		}
	}
}

// TestKeyCmpAgreesWithCmp checks, over every subtask pair of every test
// system, that a decided KeyCmp equals the policy's exact Cmp — and that
// the key fast path is decided for the closed-form policies.
func TestKeyCmpAgreesWithCmp(t *testing.T) {
	for _, sys := range keyTestSystems(t) {
		subs := sys.All()
		for _, pol := range keyPolicies() {
			for _, a := range subs {
				for _, b := range subs {
					ka, kb := prio.KeyOf(a), prio.KeyOf(b)
					got, decided := prio.KeyCmp(pol, ka, kb)
					want := pol.Cmp(a, b)
					if decided && got != want {
						t.Fatalf("%s: KeyCmp(%s, %s) = %d, Cmp = %d", pol.Name(), a, b, got, want)
					}
					switch pol.(type) {
					case prio.EPDF, prio.PD2, prio.PD:
						if !decided {
							t.Fatalf("%s: KeyCmp(%s, %s) undecided for closed-form policy", pol.Name(), a, b)
						}
					}
				}
			}
		}
	}
}

// TestComparerAgreesWithOrder checks that the Comparer's memoized,
// key-cached total order agrees with prio.Order on every pair under every
// policy — including the ablation policies, which exercise the pure
// exact-fallback path. Each pair is compared twice to cover the memo-hit
// path.
func TestComparerAgreesWithOrder(t *testing.T) {
	for _, sys := range keyTestSystems(t) {
		subs := sys.All()
		for _, pol := range keyPolicies() {
			c := prio.NewComparer(pol, sys)
			if c.Policy() != pol {
				t.Fatalf("Policy() = %v, want %v", c.Policy(), pol)
			}
			for pass := 0; pass < 2; pass++ {
				for _, a := range subs {
					for _, b := range subs {
						if got, want := c.Cmp(a, b), pol.Cmp(a, b); got != want {
							t.Fatalf("%s pass %d: Comparer.Cmp(%s, %s) = %d, want %d", pol.Name(), pass, a, b, got, want)
						}
						if got, want := c.Order(a, b), prio.Order(pol, a, b); got != want {
							t.Fatalf("%s pass %d: Comparer.Order(%s, %s) = %v, want %v", pol.Name(), pass, a, b, got, want)
						}
						if a.GID == b.GID && c.Total(a, b) != 0 {
							t.Fatalf("%s: Total(%s, %s) != 0 for identical subtask", pol.Name(), a, b)
						}
					}
				}
			}
			if k := c.Key(subs[0]); k != prio.KeyOf(subs[0]) {
				t.Fatalf("Key(%s) = %+v, want %+v", subs[0], k, prio.KeyOf(subs[0]))
			}
		}
	}
}
