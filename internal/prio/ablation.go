package prio

import "desyncpfair/internal/model"

// Ablation policies: deliberately weakened variants of PD² used by the
// ablation experiments to show that each of PD²'s two tie-breaking rules is
// load-bearing for optimality. Neither is part of the paper's algorithm
// set; both are *expected to miss deadlines* on suitable task systems.

// PD2NoGroup is PD² without the group-deadline tie-break: deadline, then
// successor bit, then nothing. Anderson & Srinivasan's optimality proof
// needs the group deadline to order cascades among heavy tasks; dropping it
// loses optimality on three or more processors.
type PD2NoGroup struct{}

func (PD2NoGroup) Name() string { return "PD2-noD" }

func (PD2NoGroup) Cmp(a, b *model.Subtask) int {
	if c := cmp64(a.Deadline(), b.Deadline()); c != 0 {
		return c
	}
	return cmpInt(b.BBit(), a.BBit())
}

// PD2NoBBit is PD² without the successor-bit tie-break (and hence without
// the group deadline, which only refines b = 1 ties): plain EPDF. It exists
// as a named ablation so experiment tables read uniformly.
type PD2NoBBit struct{}

func (PD2NoBBit) Name() string { return "PD2-nob" }

func (PD2NoBBit) Cmp(a, b *model.Subtask) int {
	return cmp64(a.Deadline(), b.Deadline())
}
