package host

import (
	"testing"
	"time"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/replay"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{M: 0, Quantum: time.Millisecond}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := New(Config{M: 1, Quantum: 0}); err == nil {
		t.Error("zero quantum accepted")
	}
}

func TestRegisterRequiresWorkAndAdmission(t *testing.T) {
	h, err := New(Config{M: 1, Quantum: time.Millisecond, Clock: &replay.FakeClock{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Register("x", model.W(1, 2), nil); err == nil {
		t.Error("nil work accepted")
	}
	busy := func(budget time.Duration) time.Duration { return budget }
	if _, err := h.Register("a", model.W(1, 1), busy); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Register("b", model.W(1, 2), busy); err == nil {
		t.Error("overload admitted")
	}
}

// A closed-loop run on the fake clock: work that uses half its budget
// produces cost-1/2 quanta, the executive reclaims the residue (DVQ), and
// measured budgets arrive as exactly one quantum.
func TestClosedLoopMeasuredCosts(t *testing.T) {
	clk := &replay.FakeClock{T: time.Unix(0, 0)}
	h, err := New(Config{M: 1, Quantum: time.Millisecond, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	var budgets []time.Duration
	halfWork := func(budget time.Duration) time.Duration {
		budgets = append(budgets, budget)
		return budget / 2
	}
	// Two tasks, both eligible at 0, one processor: when A_1 yields at
	// 1/2, the DVQ rule hands the residue to B_1 immediately.
	a, err := h.Register("A", model.W(1, 2), halfWork)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Register("B", model.W(1, 2), halfWork)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(b); err != nil {
		t.Fatal(err)
	}
	if err := h.RunFor(4 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	s := h.Schedule()
	if s.Len() != 2 {
		t.Fatalf("dispatched %d subtasks, want 2", s.Len())
	}
	for _, bd := range budgets {
		if bd != time.Millisecond {
			t.Errorf("budget = %v, want 1ms", bd)
		}
	}
	for _, asg := range s.Assignments() {
		if !asg.Cost.Equal(rat.New(1, 2)) {
			t.Errorf("%s cost = %s, want 1/2", asg.Sub, asg.Cost)
		}
	}
	// DVQ reclamation: B_1 starts the moment A_1's half-quantum ends.
	second := s.Assignments()[1]
	if !second.Start.Equal(rat.New(1, 2)) {
		t.Errorf("B_1 started at %s, want 1/2 (residue reclaimed)", second.Start)
	}
	if err := s.ValidateDVQ(); err != nil {
		t.Fatal(err)
	}
}

// RunFor paces the fake clock quantum by quantum up to the deadline.
func TestRunForPacesClock(t *testing.T) {
	clk := &replay.FakeClock{T: time.Unix(0, 0)}
	h, err := New(Config{M: 1, Quantum: time.Millisecond, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.RunFor(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := clk.Now().Sub(time.Unix(0, 0)); got != 5*time.Millisecond {
		t.Errorf("clock advanced %v, want 5ms", got)
	}
}

// Cost clamping: work reporting zero or overlong usage stays in (0, 1].
func TestCostClamping(t *testing.T) {
	clk := &replay.FakeClock{T: time.Unix(0, 0)}
	h, err := New(Config{M: 2, Quantum: time.Millisecond, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	zero := func(time.Duration) time.Duration { return 0 }
	over := func(budget time.Duration) time.Duration { return 5 * budget }
	a, err := h.Register("A", model.W(1, 2), zero)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Register("B", model.W(1, 2), over)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(b); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, asg := range h.Schedule().Assignments() {
		if asg.Cost.Sign() <= 0 || rat.One.Less(asg.Cost) {
			t.Errorf("%s cost %s outside (0,1]", asg.Sub, asg.Cost)
		}
	}
}

// Theorem 3 end to end through the host: sporadic submissions, noisy work,
// tardiness stays within a quantum.
func TestHostBoundHolds(t *testing.T) {
	clk := &replay.FakeClock{T: time.Unix(0, 0)}
	h, err := New(Config{M: 2, Quantum: time.Millisecond, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	kinds := []struct {
		name string
		w    model.Weight
		frac int64 // used = budget·frac/8
	}{
		{"a", model.W(1, 2), 8}, {"b", model.W(1, 2), 5},
		{"c", model.W(1, 3), 3}, {"d", model.W(2, 3), 7},
	}
	tasks := make([]*model.Task, len(kinds))
	for i, k := range kinds {
		frac := k.frac
		tasks[i], err = h.Register(k.name, k.w, func(budget time.Duration) time.Duration {
			return budget / 8 * time.Duration(frac)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 8; round++ {
		for i, k := range kinds {
			if int64(round)%k.w.P == 0 {
				if err := h.Submit(tasks[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := h.RunFor(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	s := h.Schedule()
	if err := s.ValidateDVQ(); err != nil {
		t.Fatal(err)
	}
	if got := s.MaxTardiness(); rat.One.Less(got) {
		t.Fatalf("host tardiness %s > 1", got)
	}
	if h.Executive() == nil {
		t.Fatal("executive accessor broken")
	}
}
