// Package host closes the loop between the online executive and real
// durations: tasks are registered with a Work function, one schedule
// quantum corresponds to a configured clock duration, and the time each
// Work call reports consuming becomes the subtask's actual execution cost
// — which is exactly what the DVQ model reclaims when a quantum ends
// early. With the fake clock the host is a deterministic simulation; with
// the wall clock it paces dispatches in real time.
package host

import (
	"fmt"
	"time"

	"desyncpfair/internal/model"
	"desyncpfair/internal/online"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/replay"
	"desyncpfair/internal/sched"
)

// Work executes (or simulates) one quantum of a task's job and returns how
// much of the budget it actually used. Returns ≤ 0 or > budget are clamped
// into (0, budget].
type Work func(budget time.Duration) time.Duration

// Config configures a Host.
type Config struct {
	M       int
	Quantum time.Duration // real duration of one schedule time unit
	Policy  prio.Policy   // nil selects PD²
	Clock   replay.Clock  // nil selects the wall clock
}

// Host drives an online executive against a clock.
type Host struct {
	cfg   Config
	ex    *online.Executive
	work  map[int]Work
	start time.Time
}

// New creates a host. The quantum must be positive.
func New(cfg Config) (*Host, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("host: M = %d", cfg.M)
	}
	if cfg.Quantum <= 0 {
		return nil, fmt.Errorf("host: quantum %v", cfg.Quantum)
	}
	if cfg.Clock == nil {
		cfg.Clock = replay.WallClock{}
	}
	h := &Host{
		cfg:  cfg,
		ex:   online.New(cfg.M, cfg.Policy),
		work: map[int]Work{},
	}
	h.start = cfg.Clock.Now()
	return h, nil
}

// Register adds a task (admission-controlled by the executive) with its
// work function.
func (h *Host) Register(name string, w model.Weight, fn Work) (*model.Task, error) {
	if fn == nil {
		return nil, fmt.Errorf("host: task %s has no work function", name)
	}
	t, err := h.ex.Register(name, w)
	if err != nil {
		return nil, err
	}
	h.work[t.ID] = fn
	return t, nil
}

// Submit releases one job of t at the clock's current virtual time.
func (h *Host) Submit(t *model.Task) error {
	return h.ex.SubmitJob(t, h.virtualNow())
}

// virtualNow converts elapsed clock time to schedule time.
func (h *Host) virtualNow() rat.Rat {
	elapsed := h.cfg.Clock.Now().Sub(h.start)
	return rat.New(int64(elapsed), int64(h.cfg.Quantum))
}

// yield runs the dispatched subtask's work function and converts the used
// duration to an exact cost in (0, 1].
func (h *Host) yield(sub *model.Subtask) rat.Rat {
	used := h.work[sub.Task.ID](h.cfg.Quantum)
	if used <= 0 {
		used = 1 // at least a nanosecond: costs must be positive
	}
	if used > h.cfg.Quantum {
		used = h.cfg.Quantum
	}
	return rat.New(int64(used), int64(h.cfg.Quantum))
}

// RunFor advances the host by d of clock time, pacing quantum by quantum:
// it sleeps the clock to each upcoming schedule boundary and lets the
// executive dispatch everything due, feeding measured costs back in.
func (h *Host) RunFor(d time.Duration) error {
	deadline := h.cfg.Clock.Now().Add(d)
	for {
		now := h.cfg.Clock.Now()
		if !now.Before(deadline) {
			return h.ex.Run(h.virtualNow(), h.yield, nil)
		}
		// Next quantum boundary after now (in clock time).
		elapsed := now.Sub(h.start)
		next := h.start.Add((elapsed/h.cfg.Quantum + 1) * h.cfg.Quantum)
		if next.After(deadline) {
			next = deadline
		}
		h.cfg.Clock.Sleep(next.Sub(now))
		if err := h.ex.Run(h.virtualNow(), h.yield, nil); err != nil {
			return err
		}
	}
}

// Drain dispatches everything still pending (without pacing) and returns
// the completed schedule time.
func (h *Host) Drain() (rat.Rat, error) { return h.ex.Drain(h.yield) }

// Schedule exposes the executive's schedule for analysis.
func (h *Host) Schedule() *sched.Schedule { return h.ex.Schedule() }

// Executive exposes the underlying executive (e.g. for SubmitJobEarly).
func (h *Host) Executive() *online.Executive { return h.ex }
