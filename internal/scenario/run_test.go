package scenario

import (
	"bytes"
	"context"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"desyncpfair/internal/client"
	"desyncpfair/internal/server"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

func loadSpec(t *testing.T, name string) *Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestScenarioGoldenTrace is the acceptance check for determinism: the
// smoke spec's trace must match the checked-in golden bytes exactly, and
// two runs in the same process must agree byte for byte. Regenerate with
// go test ./internal/scenario -run GoldenTrace -update after an
// intentional schema or generator change.
func TestScenarioGoldenTrace(t *testing.T) {
	spec := loadSpec(t, "smoke.json")
	encode := func() []byte {
		w, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w, NewExecTarget())
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeTrace(res.Records)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first, second := encode(), encode()
	if !bytes.Equal(first, second) {
		t.Fatal("two runs of the same spec produced different trace bytes")
	}

	golden := filepath.Join("testdata", "smoke.trace")
	if *update {
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(first, want) {
		t.Fatalf("trace diverged from golden %s (%d vs %d bytes); run with -update if the change is intentional",
			golden, len(first), len(want))
	}
}

// TestReplayReproducesDispatches: replaying a recorded trace must land on
// the exact recorded dispatch sequence, and a tampered dispatch record
// must make the replay fail.
func TestReplayReproducesDispatches(t *testing.T) {
	recs := sampleRecords(t)
	res, err := Replay(recs)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Report.Dispatches == 0 {
		t.Fatal("replay produced no dispatches")
	}

	tampered := append([]Record{}, recs...)
	for i := range tampered {
		if tampered[i].Kind == KindDispatch {
			tampered[i].Proc++
			break
		}
	}
	if _, err := Replay(tampered); err == nil {
		t.Fatal("replay accepted a tampered dispatch record")
	}
}

// TestExecAndHTTPTargetsAgree: the same workload driven through a live
// pfaird must produce the identical dispatch log (and therefore the
// identical trace) as the in-process executive — the server is the
// executive behind an API, not a different scheduler.
func TestExecAndHTTPTargetsAgree(t *testing.T) {
	spec := loadSpec(t, "smoke.json")
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	execRes, err := Run(w, NewExecTarget())
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New()
	defer srv.Shutdown()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	httpRes, err := Run(w, &HTTPTarget{Ctx: context.Background(), C: client.New(hs.URL, hs.Client())})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(execRes.Dispatches, httpRes.Dispatches) {
		t.Fatal("in-process and HTTP targets disagree on the dispatch log")
	}
	if !reflect.DeepEqual(execRes.Records, httpRes.Records) {
		t.Fatal("in-process and HTTP targets disagree on the trace records")
	}
}
