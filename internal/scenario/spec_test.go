package scenario

import (
	"reflect"
	"strings"
	"testing"

	"desyncpfair/internal/rat"
)

func validSpec() *Spec {
	return &Spec{
		Name:    "t",
		Seed:    7,
		M:       2,
		Horizon: 16,
		Classes: []ClassSpec{{Name: "gold", MaxTardiness: "0"}},
		Cohorts: []CohortSpec{
			{
				Name:    "web",
				Clients: 2,
				Class:   "gold",
				Tasks:   []TaskSpec{{Name: "a", E: 1, P: 4}},
				Arrival: ArrivalSpec{Process: ProcPoisson, Mean: "5"},
				Burst:   &BurstSpec{On: "4", Off: "2"},
				Phases:  []PhaseSpec{{Duration: "8", Rate: 1}, {Duration: "8", Rate: 0}},
			},
			{
				Name:    "batch",
				Clients: 1,
				Tasks:   []TaskSpec{{Name: "b", E: 2, P: 5}},
				Arrival: ArrivalSpec{Process: ProcGamma, Mean: "6", Shape: 0.5},
			},
		},
	}
}

func TestSpecRoundTrip(t *testing.T) {
	want := validSpec()
	data, err := EncodeSpec(want)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip changed the spec:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string // substring of the error
	}{
		{"garbage", "not json", "parse spec"},
		{"unknown field", `{"name":"x","seed":1,"m":1,"horizon":4,"bogus":1,"cohorts":[]}`, "bogus"},
		{"trailing data", `{"name":"x","seed":1,"m":1,"horizon":4,"cohorts":[{"name":"c","clients":1,"tasks":[{"name":"a","e":1,"p":2}],"arrival":{"process":"periodic"}}]}{}`, "trailing"},
		{"no cohorts", `{"name":"x","m":1,"horizon":4}`, "no cohorts"},
	}
	for _, tc := range cases {
		_, err := ParseSpec([]byte(tc.data))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"m zero", func(s *Spec) { s.M = 0 }, "m = 0"},
		{"horizon zero", func(s *Spec) { s.Horizon = 0 }, "horizon"},
		{"horizon cap", func(s *Spec) { s.Horizon = MaxHorizon + 1 }, "horizon"},
		{"bad policy", func(s *Spec) { s.Policy = "FIFO" }, "unknown policy"},
		{"unnamed class", func(s *Spec) { s.Classes[0].Name = "" }, "no name"},
		{"dup class", func(s *Spec) { s.Classes = append(s.Classes, ClassSpec{Name: "gold"}) }, "duplicate class"},
		{"negative slo", func(s *Spec) { s.Classes[0].MaxTardiness = "-1" }, "negative"},
		{"undeclared class", func(s *Spec) { s.Cohorts[1].Class = "platinum" }, "undeclared class"},
		{"dup cohort", func(s *Spec) { s.Cohorts[1].Name = "web" }, "duplicate cohort"},
		{"zero clients", func(s *Spec) { s.Cohorts[0].Clients = 0 }, "clients"},
		{"client cap", func(s *Spec) { s.Cohorts[0].Clients = MaxClientsPerCoho + 1 }, "clients"},
		{"no tasks", func(s *Spec) { s.Cohorts[0].Tasks = nil }, "tasks"},
		{"dup task", func(s *Spec) {
			s.Cohorts[0].Tasks = append(s.Cohorts[0].Tasks, TaskSpec{Name: "a", E: 1, P: 8})
		}, "duplicate task"},
		{"bad weight", func(s *Spec) { s.Cohorts[0].Tasks[0] = TaskSpec{Name: "a", E: 5, P: 4} }, "task"},
		{"period cap", func(s *Spec) { s.Cohorts[0].Tasks[0] = TaskSpec{Name: "a", E: 1, P: MaxHorizon + 1} }, "period"},
		{"overloaded client", func(s *Spec) {
			s.M = 1
			s.Cohorts[0].Tasks = []TaskSpec{{Name: "a", E: 3, P: 4}, {Name: "b", E: 3, P: 4}}
		}, "utilization"},
		{"bad process", func(s *Spec) { s.Cohorts[0].Arrival.Process = "pareto" }, "arrival process"},
		{"bad mean", func(s *Spec) { s.Cohorts[0].Arrival.Mean = "zero" }, "mean"},
		{"nonpositive mean", func(s *Spec) { s.Cohorts[0].Arrival.Mean = "0" }, "mean"},
		{"negative shape", func(s *Spec) { s.Cohorts[1].Arrival.Shape = -2 }, "shape"},
		{"bad burst", func(s *Spec) { s.Cohorts[0].Burst = &BurstSpec{On: "0", Off: "1"} }, "burst"},
		{"bad phase duration", func(s *Spec) { s.Cohorts[0].Phases[0].Duration = "0" }, "duration"},
		{"negative rate", func(s *Spec) { s.Cohorts[0].Phases[0].Rate = -1 }, "rate"},
		{"all phases silent", func(s *Spec) {
			s.Cohorts[0].Phases = []PhaseSpec{{Duration: "4", Rate: 0}}
		}, "every rate is 0"},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestClassTarget(t *testing.T) {
	s := validSpec()
	if got := s.ClassTarget("gold"); got.Sign() != 0 {
		t.Fatalf("gold target = %s, want 0", got)
	}
	if got := s.ClassTarget(DefaultClass); !got.Equal(rat.One) {
		t.Fatalf("default target = %s, want 1", got)
	}
	if names := s.ClassNames(); !reflect.DeepEqual(names, []string{"default", "gold"}) {
		t.Fatalf("ClassNames = %v", names)
	}
}

// FuzzScenarioSpec: any input either parses into a spec that validates,
// round-trips through EncodeSpec, and generates without panicking — or
// errors cleanly. Panics and resource blowups are the bugs hunted here.
func FuzzScenarioSpec(f *testing.F) {
	seed, err := EncodeSpec(validSpec())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"name":"x","seed":3,"m":1,"horizon":8,"cohorts":[{"name":"c","clients":1,"tasks":[{"name":"a","e":1,"p":2}],"arrival":{"process":"weibull","shape":0.4}}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return // malformed input must error, never panic
		}
		out, err := EncodeSpec(spec)
		if err != nil {
			t.Fatalf("valid spec failed to encode: %v", err)
		}
		again, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("encoded spec failed to re-parse: %v", err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("spec round trip diverged:\n1st %+v\n2nd %+v", spec, again)
		}
		// Generation must terminate (the caps bound the work) and its
		// outcome must be deterministic in shape.
		w, err := Generate(spec)
		if err != nil {
			return // over-cap specs error cleanly
		}
		for i, a := range w.Arrivals {
			if a.Seq != i {
				t.Fatalf("arrival %d has Seq %d", i, a.Seq)
			}
			if a.At.Sign() < 0 || !a.At.Less(rat.FromInt(spec.Horizon)) {
				t.Fatalf("arrival %d at %s outside [0, %d)", i, a.At, spec.Horizon)
			}
		}
	})
}
