package scenario

import "math"

// stream is a splitmix64-based random stream. The generator derives one
// stream per (seed, cohort, client, task) by hashing the indices into the
// initial state, so streams are independent and insertion of a new cohort
// does not shift the draws of existing ones. splitmix64 plus the inverse
// transforms below use only IEEE-754 double arithmetic and math functions
// whose values are identical across the platforms we run on, keeping
// golden traces portable — unlike math/rand's global stream, which would
// also couple every consumer to consumption order.
type stream struct {
	state     uint64
	spare     float64 // cached second Box–Muller normal
	haveSpare bool
}

// newStream mixes the parts into a well-separated initial state.
func newStream(parts ...uint64) *stream {
	s := uint64(0x6a09e667f3bcc909) // √2 offset basis, arbitrary non-zero
	for _, p := range parts {
		s = splitmix64(s ^ splitmix64(p))
	}
	return &stream{state: s}
}

// splitmix64 is the standard 64-bit finalizer (same constants as
// internal/gen uses for per-subtask yield hashing).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *stream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (s *stream) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// exp returns a standard exponential draw (mean 1) by inversion. 1−u is
// in (0, 1], so the log argument is never zero.
func (s *stream) exp() float64 {
	return -math.Log(1 - s.float64())
}

// normal returns a standard normal draw via Box–Muller; the second value
// of each pair is cached.
func (s *stream) normal() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	// u in (0, 1] keeps the log finite.
	u := 1 - s.float64()
	v := s.float64()
	r := math.Sqrt(-2 * math.Log(u))
	s.spare = r * math.Sin(2*math.Pi*v)
	s.haveSpare = true
	return r * math.Cos(2*math.Pi*v)
}

// gamma returns a Gamma(k, 1) draw using Marsaglia–Tsang squeeze for
// k ≥ 1 and the boost Gamma(k) = Gamma(k+1)·U^(1/k) below 1.
func (s *stream) gamma(k float64) float64 {
	if k < 1 {
		u := 1 - s.float64() // (0, 1]: pow of 0 would stick at 0 forever
		return s.gamma(k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := 1 - s.float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// weibull returns a Weibull(k, 1) draw by inversion.
func (s *stream) weibull(k float64) float64 {
	return math.Pow(-math.Log(1-s.float64()), 1/k)
}
