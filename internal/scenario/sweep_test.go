package scenario

import (
	"testing"

	"desyncpfair/internal/rat"
)

// sweepTrace records one run of a workload whose per-client Σwt = 3/2,
// so M=1 is infeasible and M=2 is the exact feasibility edge.
func sweepTrace(t *testing.T) []Record {
	t.Helper()
	spec := &Spec{
		Name: "sweep", Seed: 7, M: 3, Horizon: 16,
		Cohorts: []CohortSpec{{
			Name: "c", Clients: 2,
			Tasks: []TaskSpec{
				{Name: "a", E: 3, P: 4},
				{Name: "b", E: 3, P: 4},
			},
			Arrival: ArrivalSpec{Process: ProcPeriodic},
		}},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, NewExecTarget())
	if err != nil {
		t.Fatal(err)
	}
	return res.Records
}

func TestSweepMFindsFeasibilityEdge(t *testing.T) {
	recs := sweepTrace(t)
	sw, err := SweepM(recs, "PD2", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 4 {
		t.Fatalf("swept %d points, want 4", len(sw.Points))
	}
	if sw.Points[0].Feasible {
		t.Fatal("M=1 admitted a client with Σwt = 3/2")
	}
	if !sw.Points[1].Feasible {
		t.Fatal("M=2 rejected a client with Σwt = 3/2")
	}
	if sw.MinFeasibleM != 2 {
		t.Fatalf("MinFeasibleM = %d, want 2", sw.MinFeasibleM)
	}
	// Theorem 3: PD² meets the one-quantum bound at the feasibility edge.
	if sw.MinBoundM != 2 {
		t.Fatalf("PD² MinBoundM = %d, want 2 (Theorem 3 at the edge)", sw.MinBoundM)
	}
	one := rat.FromInt(1)
	for _, pt := range sw.Points[1:] {
		if pt.MaxTardiness.Cmp(one) > 0 {
			t.Fatalf("PD² at M=%d exceeded one quantum: %s", pt.M, pt.MaxTardiness)
		}
	}
}

// TestSweepMHeuristicNeverBeatsFeasibility: whatever a heuristic policy
// does, its minimal bound-meeting M cannot be below the feasibility edge,
// and every swept policy agrees on that edge (it is a property of the
// workload, not the policy).
func TestSweepMHeuristicNeverBeatsFeasibility(t *testing.T) {
	recs := sweepTrace(t)
	for _, policy := range []string{"EPDF", "PF", "PD"} {
		sw, err := SweepM(recs, policy, 1, 4)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if sw.MinFeasibleM != 2 {
			t.Fatalf("%s: MinFeasibleM = %d, want 2", policy, sw.MinFeasibleM)
		}
		if sw.MinBoundM != 0 && sw.MinBoundM < sw.MinFeasibleM {
			t.Fatalf("%s: bound met at M=%d below the feasibility edge %d", policy, sw.MinBoundM, sw.MinFeasibleM)
		}
	}
}

func TestSweepMValidation(t *testing.T) {
	recs := sweepTrace(t)
	if _, err := SweepM(recs, "PD2", 0, 2); err == nil {
		t.Fatal("lo=0 accepted")
	}
	if _, err := SweepM(recs, "PD2", 3, 2); err == nil {
		t.Fatal("hi<lo accepted")
	}
	if _, err := SweepM(recs, "PD2", 1, 2+MaxSweepSpan); err == nil {
		t.Fatal("oversized span accepted")
	}
	if _, err := SweepM(recs, "NOPE", 1, 2); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
