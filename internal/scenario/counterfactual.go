package scenario

import (
	"fmt"
	"sort"

	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/server"
)

// ReconstructWorkload rebuilds a workload from a recorded trace: the
// clients come from the embedded spec, the arrivals from the arrival
// records themselves (NOT regenerated — a replay must reproduce what was
// recorded even if the generator's sampling ever changes). It also
// returns the recorded per-client dispatch logs, in recorded order.
func ReconstructWorkload(recs []Record) (*Workload, map[string][]server.DispatchEvent, error) {
	if err := checkShape(recs); err != nil {
		return nil, nil, err
	}
	spec := recs[0].Spec
	if err := spec.Validate(); err != nil {
		return nil, nil, fmt.Errorf("scenario: trace header: %w", err)
	}
	w := &Workload{Spec: spec, Clients: expandClients(spec)}
	known := map[string]bool{}
	for _, c := range w.Clients {
		known[c.ID] = true
	}
	disp := map[string][]server.DispatchEvent{}
	for i, rec := range recs[1:] {
		switch rec.Kind {
		case KindArrival:
			if !known[rec.Client] {
				return nil, nil, fmt.Errorf("scenario: trace record %d: arrival for unknown client %s", i+2, rec.Client)
			}
			at, err := rat.Parse(rec.At)
			if err != nil {
				return nil, nil, fmt.Errorf("scenario: trace record %d: bad arrival time: %w", i+2, err)
			}
			w.Arrivals = append(w.Arrivals, Arrival{
				Seq: len(w.Arrivals), Client: rec.Client, Task: rec.Task, At: at, Class: rec.Class,
			})
		case KindDispatch:
			if !known[rec.Client] {
				return nil, nil, fmt.Errorf("scenario: trace record %d: dispatch for unknown client %s", i+2, rec.Client)
			}
			disp[rec.Client] = append(disp[rec.Client], dispatchEvent(rec))
		}
	}
	return w, disp, nil
}

// expandClients lists a spec's clients in cohort order — the same order
// Generate produces, which replay must preserve because setup and
// submission order fix the IS offsets.
func expandClients(spec *Spec) []ClientSetup {
	var out []ClientSetup
	for i := range spec.Cohorts {
		co := &spec.Cohorts[i]
		class := co.Class
		if class == "" {
			class = DefaultClass
		}
		for k := 0; k < co.Clients; k++ {
			out = append(out, ClientSetup{
				ID: fmt.Sprintf("%s-%d", co.Name, k), Class: class, Tasks: co.Tasks,
			})
		}
	}
	return out
}

// Replay re-runs a recorded trace against the in-process executive under
// the recorded policy and verifies the replay reproduces the recorded
// dispatch sequence exactly, client by client, decision by decision. The
// returned result's trace bytes equal the recording's (minus any
// recording-side truncation): a trace is a complete, closed description
// of its run.
func Replay(recs []Record) (*Result, error) {
	w, recorded, err := ReconstructWorkload(recs)
	if err != nil {
		return nil, err
	}
	res, err := Run(w, NewExecTarget())
	if err != nil {
		return nil, err
	}
	if err := sameDispatches(recorded, res.Dispatches); err != nil {
		return nil, fmt.Errorf("scenario: replay diverged from recording: %w", err)
	}
	return res, nil
}

// sameDispatches demands the two per-client logs be identical, reporting
// the first divergence.
func sameDispatches(want, got map[string][]server.DispatchEvent) error {
	ids := map[string]bool{}
	for id := range want {
		ids[id] = true
	}
	for id := range got {
		ids[id] = true
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	for _, id := range sorted {
		a, b := want[id], got[id]
		if len(a) != len(b) {
			return fmt.Errorf("client %s: %d recorded dispatches, %d replayed", id, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				return fmt.Errorf("client %s decision %d: recorded %+v, replayed %+v", id, i, a[i], b[i])
			}
		}
	}
	return nil
}

// Counterfactual is a recorded run re-dispatched under another policy.
type Counterfactual struct {
	Policy string
	Result *Result
	// Diffs lists, quantum by quantum, where the counterfactual schedule
	// departed from the recording. Empty means the policies made identical
	// decisions on this workload.
	Diffs []SlotDiff
}

// Rerun replays a recorded workload under an alternate priority policy
// and diffs the two schedules.
func Rerun(recs []Record, policy string) (*Counterfactual, error) {
	if prio.ByName(policy) == nil {
		return nil, fmt.Errorf("scenario: unknown policy %q", policy)
	}
	w, recorded, err := ReconstructWorkload(recs)
	if err != nil {
		return nil, err
	}
	// The spec is copied so the counterfactual's own trace header names
	// the policy that actually produced it.
	alt := *w.Spec
	alt.Policy = policy
	cw := &Workload{Spec: &alt, Clients: w.Clients, Arrivals: w.Arrivals}
	res, err := Run(cw, NewExecTarget())
	if err != nil {
		return nil, err
	}
	diffs, err := DiffDispatches(recorded, res.Dispatches)
	if err != nil {
		return nil, err
	}
	return &Counterfactual{Policy: policy, Result: res, Diffs: diffs}, nil
}

// SlotDiff is one integral quantum where two schedules disagree about
// which subtasks run. Entries are "client/task.index", sorted.
type SlotDiff struct {
	Slot         int64
	OnlyRecorded []string
	OnlyRerun    []string
}

// DiffDispatches compares two dispatch maps quantum by quantum: each
// dispatch is charged to the integral slot containing its start, and a
// slot is reported when the (client, task, index) sets differ. Processor
// numbers are deliberately ignored — Pfair correctness is about which
// subtasks get a quantum, not which identical processor serves them.
func DiffDispatches(rec, alt map[string][]server.DispatchEvent) ([]SlotDiff, error) {
	a, err := bySlot(rec)
	if err != nil {
		return nil, err
	}
	b, err := bySlot(alt)
	if err != nil {
		return nil, err
	}
	slots := map[int64]bool{}
	for s := range a {
		slots[s] = true
	}
	for s := range b {
		slots[s] = true
	}
	order := make([]int64, 0, len(slots))
	for s := range slots {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	var diffs []SlotDiff
	for _, s := range order {
		onlyA := minus(a[s], b[s])
		onlyB := minus(b[s], a[s])
		if len(onlyA) > 0 || len(onlyB) > 0 {
			diffs = append(diffs, SlotDiff{Slot: s, OnlyRecorded: onlyA, OnlyRerun: onlyB})
		}
	}
	return diffs, nil
}

func bySlot(disp map[string][]server.DispatchEvent) (map[int64]map[string]bool, error) {
	out := map[int64]map[string]bool{}
	for client, evs := range disp {
		for _, ev := range evs {
			start, err := rat.Parse(ev.Start)
			if err != nil {
				return nil, fmt.Errorf("scenario: client %s dispatch %d: bad start: %w", client, ev.Seq, err)
			}
			slot := start.Floor()
			if out[slot] == nil {
				out[slot] = map[string]bool{}
			}
			out[slot][fmt.Sprintf("%s/%s.%d", client, ev.Task, ev.Index)] = true
		}
	}
	return out, nil
}

func minus(a, b map[string]bool) []string {
	var out []string
	for k := range a {
		if !b[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
