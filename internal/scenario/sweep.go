package scenario

import (
	"fmt"

	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
)

// MaxSweepSpan bounds how many processor counts one sweep may evaluate:
// each point is a full counterfactual re-dispatch of the workload.
const MaxSweepSpan = 64

// SweepPoint is one (policy, M) evaluation of a recorded workload.
type SweepPoint struct {
	M int
	// Feasible reports whether every client's Σwt fits M — computed
	// exactly from the task weights, the same test admission applies.
	// Infeasible points are not dispatched.
	Feasible bool
	// MaxTardiness and Violations come from the counterfactual run
	// (zero values when !Feasible).
	MaxTardiness rat.Rat
	Violations   int64
	// MeetsBound reports MaxTardiness ≤ 1 quantum — Theorem 3's bound,
	// which PD² guarantees at any feasible M and heuristic policies may
	// need spare capacity to reach.
	MeetsBound bool
}

// Sweep is a capacity sweep of one policy over a recorded trace.
type Sweep struct {
	Policy string
	Lo, Hi int
	Points []SweepPoint
	// MinFeasibleM is the smallest swept M that admits the workload
	// (0 when none in range).
	MinFeasibleM int
	// MinBoundM is the smallest swept M at which the policy also keeps
	// max tardiness within one quantum (0 when none in range). For PD²
	// the two coincide; the gap MinBoundM − MinFeasibleM is what the
	// sweep exists to measure for the heuristics.
	MinBoundM int
}

// SweepM re-dispatches a recorded workload under `policy` at every
// M in [lo, hi], answering "what is the minimal capacity this policy
// needs for this trace?". The workload (clients, task weights, exact
// arrival times) is reconstructed from the trace, so the sweep varies
// only M — same inputs, one knob.
func SweepM(recs []Record, policy string, lo, hi int) (*Sweep, error) {
	if lo < 1 || hi < lo {
		return nil, fmt.Errorf("scenario: bad sweep range %d:%d (want 1 ≤ lo ≤ hi)", lo, hi)
	}
	if hi-lo+1 > MaxSweepSpan {
		return nil, fmt.Errorf("scenario: sweep range %d:%d spans %d points (max %d)", lo, hi, hi-lo+1, MaxSweepSpan)
	}
	if prio.ByName(policy) == nil {
		return nil, fmt.Errorf("scenario: unknown policy %q", policy)
	}
	w, _, err := ReconstructWorkload(recs)
	if err != nil {
		return nil, err
	}
	// The binding constraint is the heaviest client: every client gets its
	// own executive on M processors, so feasibility is max Σwt ≤ M.
	maxUtil := rat.Zero
	for _, c := range w.Clients {
		util := rat.Zero
		for _, t := range c.Tasks {
			util = util.Add(rat.New(t.E, t.P))
		}
		if maxUtil.Less(util) {
			maxUtil = util
		}
	}

	bound := rat.FromInt(1)
	sw := &Sweep{Policy: policy, Lo: lo, Hi: hi}
	for m := lo; m <= hi; m++ {
		pt := SweepPoint{M: m, Feasible: !rat.FromInt(int64(m)).Less(maxUtil)}
		if pt.Feasible {
			alt := *w.Spec
			alt.Policy = policy
			alt.M = m
			cw := &Workload{Spec: &alt, Clients: w.Clients, Arrivals: w.Arrivals}
			res, err := Run(cw, NewExecTarget())
			if err != nil {
				return nil, fmt.Errorf("scenario: sweep M=%d: %w", m, err)
			}
			pt.MaxTardiness = res.Report.MaxTardiness
			for _, c := range res.Report.Classes {
				pt.Violations += c.Violations
			}
			pt.MeetsBound = pt.MaxTardiness.Cmp(bound) <= 0
			if sw.MinFeasibleM == 0 {
				sw.MinFeasibleM = m
			}
			if pt.MeetsBound && sw.MinBoundM == 0 {
				sw.MinBoundM = m
			}
		}
		sw.Points = append(sw.Points, pt)
	}
	return sw, nil
}
