package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"desyncpfair/internal/obs"
	"desyncpfair/internal/server"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},                      // no clients served
		{[]float64{0, 0, 0}, 1},       // all-zero margins: equally (un)served
		{[]float64{2, 2, 2, 2}, 1},    // perfect equality
		{[]float64{1, 0, 0, 0}, 0.25}, // one client hoards: 1/n
		{[]float64{1, 3}, 0.8},        // (1+3)²/(2·(1+9))
	}
	for _, tc := range cases {
		if got := jain(tc.xs); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("jain(%v) = %v, want %v", tc.xs, got, tc.want)
		}
	}
}

// reportFixture builds a two-class workload with hand-written dispatch
// logs, so every aggregation rule is checkable by eye.
func reportFixture() (*Workload, map[string][]server.DispatchEvent) {
	spec := validSpec() // classes: gold (slo 0) and default (slo 1)
	w := &Workload{
		Spec: spec,
		Clients: []ClientSetup{
			{ID: "web-0", Class: "gold"},
			{ID: "web-1", Class: "gold"},
			{ID: "batch-0", Class: DefaultClass},
		},
		Arrivals: make([]Arrival, 5),
	}
	disp := map[string][]server.DispatchEvent{
		// On time: tardiness 0, margin (deadline+1)−finish = 1.
		"web-0": {{Task: "a", Index: 1, Start: "0", Finish: "1", Deadline: 1, Tardiness: "0"}},
		// Half a quantum late: a gold violation (slo 0).
		"web-1": {{Task: "a", Index: 1, Start: "1", Finish: "3/2", Deadline: 1, Tardiness: "1/2"}},
		// One quantum late: within the default slo of 1, not a violation.
		"batch-0": {{Task: "b", Index: 1, Start: "2", Finish: "3", Deadline: 2, Tardiness: "1"}},
	}
	return w, disp
}

func TestBuildReportAggregation(t *testing.T) {
	w, disp := reportFixture()
	rep := BuildReport(w, disp)

	if rep.Arrivals != 5 || rep.Dispatches != 3 {
		t.Fatalf("arrivals/dispatches = %d/%d, want 5/3", rep.Arrivals, rep.Dispatches)
	}
	if rep.MaxTardiness.String() != "1" {
		t.Fatalf("max tardiness = %s, want 1", rep.MaxTardiness)
	}
	if len(rep.Classes) != 2 || rep.Classes[0].Class != DefaultClass || rep.Classes[1].Class != "gold" {
		t.Fatalf("classes = %+v, want sorted [default gold]", rep.Classes)
	}
	def, gold := rep.Classes[0], rep.Classes[1]
	if def.Dispatches != 1 || def.Violations != 0 || def.MaxTardiness.String() != "1" {
		t.Fatalf("default class = %+v", def)
	}
	if gold.Dispatches != 2 || gold.Violations != 1 || gold.MaxTardiness.String() != "1/2" {
		t.Fatalf("gold class = %+v", gold)
	}
	// Margins: web-0 → 1, web-1 → 1/2, batch-0 → 0; Jain of {1, 1/2, 0}.
	want := (1.5 * 1.5) / (3 * 1.25)
	if math.Abs(rep.Jain-want) > 1e-12 {
		t.Fatalf("jain = %v, want %v", rep.Jain, want)
	}

	// Histogram: gold has one on-time dispatch (bucket le=0) and both its
	// dispatches within one quantum.
	snap := gold.Hist.Snapshot()
	if snap.Count != 2 || snap.Buckets[0] != 1 {
		t.Fatalf("gold histogram = %+v", snap)
	}
}

// TestWriteMetricsParses: the exposition must satisfy the same parser and
// structural checks the daemon's /metrics endpoint is held to, and carry
// the per-class tardiness histograms plus the Jain gauge.
func TestWriteMetricsParses(t *testing.T) {
	w, disp := reportFixture()
	rep := BuildReport(w, disp)
	var buf bytes.Buffer
	rep.WriteMetrics(&buf)

	ex, err := obs.ParseExposition(buf.String())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if err := ex.Check(); err != nil {
		t.Fatalf("structural check: %v\n%s", err, buf.String())
	}
	for _, class := range []string{"default", "gold"} {
		snap, err := ex.Histogram("scenario_tardiness_quanta", []obs.Label{{Name: "class", Value: class}})
		if err != nil {
			t.Fatalf("class %s histogram: %v", class, err)
		}
		if snap.Count == 0 {
			t.Fatalf("class %s histogram is empty", class)
		}
	}
	if !strings.Contains(buf.String(), "scenario_jain_index ") {
		t.Fatalf("no jain gauge in exposition:\n%s", buf.String())
	}
}

func TestReportWriteText(t *testing.T) {
	w, disp := reportFixture()
	var buf bytes.Buffer
	BuildReport(w, disp).WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"jain index", "class default", "class gold", "violations=1", "max tard"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
