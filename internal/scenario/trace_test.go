package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleRecords(t *testing.T) []Record {
	t.Helper()
	w, err := Generate(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, NewExecTarget())
	if err != nil {
		t.Fatal(err)
	}
	return res.Records
}

func TestTraceRoundTrip(t *testing.T) {
	recs := sampleRecords(t)
	data, err := EncodeTrace(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Fatal("trace round trip changed the records")
	}
	// Every line is a frame; blank lines are tolerated between frames.
	withBlank := bytes.ReplaceAll(data, []byte("\n"), []byte("\n\n"))
	if _, err := ReadTrace(bytes.NewReader(withBlank)); err != nil {
		t.Fatalf("blank separator lines rejected: %v", err)
	}
}

func TestTraceDetectsCorruption(t *testing.T) {
	data, err := EncodeTrace(sampleRecords(t))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second line: the CRC must catch it and
	// name the line.
	lines := bytes.Split(data, []byte("\n"))
	i := bytes.LastIndexByte(lines[1], '}') - 2
	corrupted := append([]byte{}, data...)
	off := len(lines[0]) + 1 + i
	if corrupted[off] == 'x' {
		corrupted[off] = 'y'
	} else {
		corrupted[off] = 'x'
	}
	_, err = ReadTrace(bytes.NewReader(corrupted))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("corrupted line 2 not caught: %v", err)
	}

	// Non-JSON garbage on a line.
	garbage := append(append([]byte{}, data...), []byte("not a frame\n")...)
	if _, err := ReadTrace(bytes.NewReader(garbage)); err == nil {
		t.Fatal("garbage trailing line accepted")
	}
}

func TestTraceShapeChecks(t *testing.T) {
	recs := sampleRecords(t)

	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty trace accepted")
	}

	headerless, err := EncodeTrace(recs[1:])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(bytes.NewReader(headerless)); err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("headerless trace accepted: %v", err)
	}

	future := append([]Record{}, recs...)
	future[0].Version = TraceVersion + 1
	data, err := EncodeTrace(future)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version trace accepted: %v", err)
	}

	unknown := append([]Record{}, recs...)
	unknown[1].Kind = "telemetry"
	data, err = EncodeTrace(unknown)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("unknown-kind record accepted: %v", err)
	}
}
