// Package scenario turns pfaird (and the in-process executive) into a
// scheduling-policy lab: a declarative workload spec describes multi-client
// cohorts with stochastic inter-arrival processes, on/off bursts, diurnal
// phase schedules and per-class SLO targets; a seeded generator expands the
// spec into a deterministic arrival sequence; a runner drives either the
// in-process executive or a live pfaird through internal/client; and every
// run emits a CRC-framed NDJSON trace that can be replayed bit-identically
// or fed to a counterfactual engine that re-dispatches the same arrivals
// under a different priority policy and diffs decisions quantum-by-quantum.
//
// The paper's tardiness bound (Theorem 3) is only interesting under
// adversarial arrival patterns; this package is how those patterns are
// produced, recorded, and re-litigated. Everything is exact: arrival times
// are rationals on a fixed 1/64-quantum grid, virtual-time detail travels
// as rat strings, and the trace contains no wall-clock timestamps — which
// is what makes "same seed + same spec ⇒ byte-identical trace" a testable
// property rather than an aspiration.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
)

// Resource caps enforced by Validate and Generate so adversarial specs
// (fuzzed or user-supplied) error out instead of exhausting memory. They
// are generous for real experiments and tiny next to what a hostile spec
// could otherwise request.
const (
	MaxCohorts        = 64
	MaxClientsPerCoho = 256
	MaxTasksPerClient = 64
	MaxHorizon        = 1 << 16
	MaxArrivals       = 200_000
	MaxPhases         = 32
)

// DefaultClass is the SLO class of cohorts that name none. Its default
// target is Theorem 3's bound of one quantum.
const DefaultClass = "default"

// Spec is a declarative scenario: who arrives, how, and what they are
// owed. The zero value is invalid; build specs in Go or decode them from
// JSON with ParseSpec.
type Spec struct {
	// Name labels the scenario in traces and reports.
	Name string `json:"name"`
	// Seed drives every random draw. Same seed + same spec ⇒ the same
	// arrival sequence, bit for bit.
	Seed int64 `json:"seed"`
	// M is the processor count of every client's executive/tenant.
	M int `json:"m"`
	// Policy is the recording priority policy ("PD2" when empty; also
	// "PD", "PF", "EPDF").
	Policy string `json:"policy,omitempty"`
	// Horizon bounds arrival times: jobs arrive at virtual times in
	// [0, Horizon) quanta.
	Horizon int64 `json:"horizon"`
	// Classes declares the SLO classes cohorts may reference. A cohort
	// with an empty class lands in DefaultClass (target: 1 quantum).
	Classes []ClassSpec `json:"classes,omitempty"`
	// Cohorts are the workload: each expands to Clients independent
	// tenants running the same task mix under the same arrival process.
	Cohorts []CohortSpec `json:"cohorts"`
}

// ClassSpec is one SLO class: a named per-subtask tardiness target.
type ClassSpec struct {
	Name string `json:"name"`
	// MaxTardiness is the class's per-subtask tardiness target in quanta
	// (exact rat string, default "1" — Theorem 3's bound). Dispatches
	// exceeding it count as SLO violations in the report.
	MaxTardiness string `json:"maxTardiness,omitempty"`
}

// CohortSpec is a group of identically-shaped clients.
type CohortSpec struct {
	Name string `json:"name"`
	// Clients is how many independent clients (tenants) the cohort
	// expands to; each gets its own derived RNG streams.
	Clients int `json:"clients"`
	// Class names the cohort's SLO class ("" = DefaultClass).
	Class string `json:"class,omitempty"`
	// Tasks is the task mix registered for every client of the cohort.
	Tasks []TaskSpec `json:"tasks"`
	// Arrival is the per-task job inter-arrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// Burst, when set, gates arrivals through an on/off (interrupted)
	// process per client: arrivals landing in an off window slide to the
	// window's end, which is what produces the arrival bursts at
	// on-transitions.
	Burst *BurstSpec `json:"burst,omitempty"`
	// Phases, when set, is a cyclic diurnal schedule of rate multipliers:
	// during a phase, inter-arrival means are divided by Rate. A Rate of
	// 0 silences the phase entirely.
	Phases []PhaseSpec `json:"phases,omitempty"`
}

// TaskSpec is one recurrent task of weight E/P.
type TaskSpec struct {
	Name string `json:"name"`
	E    int64  `json:"e"`
	P    int64  `json:"p"`
}

// Arrival process names.
const (
	ProcPeriodic = "periodic"
	ProcPoisson  = "poisson"
	ProcGamma    = "gamma"
	ProcWeibull  = "weibull"
)

// ArrivalSpec describes the job inter-arrival process of each task.
type ArrivalSpec struct {
	// Process is one of "periodic", "poisson", "gamma", "weibull".
	Process string `json:"process"`
	// Mean is the mean inter-arrival gap in quanta (exact rat string).
	// Empty means the task's period P — the open-loop rate that exactly
	// matches the task's weight.
	Mean string `json:"mean,omitempty"`
	// Shape is the gamma/weibull shape parameter k (default 1, which
	// degenerates both to the exponential). Ignored by periodic/poisson.
	Shape float64 `json:"shape,omitempty"`
}

// BurstSpec is a two-state Markov-modulated gate: on and off dwell times
// are exponential with the given means (quanta, exact rat strings).
type BurstSpec struct {
	On  string `json:"on"`
	Off string `json:"off"`
}

// PhaseSpec is one segment of a cyclic diurnal schedule.
type PhaseSpec struct {
	// Duration is the phase length in quanta (exact rat string).
	Duration string `json:"duration"`
	// Rate multiplies the cohort's arrival rate during the phase. 0
	// silences it; 1 is neutral.
	Rate float64 `json:"rate"`
}

// ParseSpec decodes and validates a JSON spec. Unknown fields are
// rejected, so a typo fails loudly instead of silently meaning defaults.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	// Trailing garbage after the object is a malformed spec, not an
	// extension point.
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse spec: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// EncodeSpec renders a spec as canonical indented JSON (the format the
// golden traces embed and ParseSpec round-trips).
func EncodeSpec(s *Spec) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Validate checks the spec is well-formed, within the resource caps, and
// feasible: every client's Σ e/p must be ≤ M, since otherwise admission
// would reject tasks and the scenario could not run as written.
func (s *Spec) Validate() error {
	if s.M < 1 {
		return fmt.Errorf("scenario: m = %d, want ≥ 1", s.M)
	}
	if s.Horizon < 1 || s.Horizon > MaxHorizon {
		return fmt.Errorf("scenario: horizon %d outside [1, %d]", s.Horizon, MaxHorizon)
	}
	if s.Policy != "" && prio.ByName(s.Policy) == nil {
		return fmt.Errorf("scenario: unknown policy %q", s.Policy)
	}
	classes := map[string]bool{DefaultClass: true}
	for i, c := range s.Classes {
		if c.Name == "" {
			return fmt.Errorf("scenario: class %d has no name", i)
		}
		if classes[c.Name] && c.Name != DefaultClass {
			return fmt.Errorf("scenario: duplicate class %q", c.Name)
		}
		classes[c.Name] = true
		if c.MaxTardiness != "" {
			tar, err := rat.Parse(c.MaxTardiness)
			if err != nil {
				return fmt.Errorf("scenario: class %q maxTardiness: %v", c.Name, err)
			}
			if tar.Sign() < 0 {
				return fmt.Errorf("scenario: class %q maxTardiness %s is negative", c.Name, c.MaxTardiness)
			}
		}
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("scenario: no cohorts")
	}
	if len(s.Cohorts) > MaxCohorts {
		return fmt.Errorf("scenario: %d cohorts exceeds the cap of %d", len(s.Cohorts), MaxCohorts)
	}
	seenCohort := map[string]bool{}
	for i := range s.Cohorts {
		if err := s.validateCohort(&s.Cohorts[i], classes); err != nil {
			return err
		}
		if seenCohort[s.Cohorts[i].Name] {
			return fmt.Errorf("scenario: duplicate cohort %q", s.Cohorts[i].Name)
		}
		seenCohort[s.Cohorts[i].Name] = true
	}
	return nil
}

func (s *Spec) validateCohort(c *CohortSpec, classes map[string]bool) error {
	if c.Name == "" {
		return fmt.Errorf("scenario: cohort has no name")
	}
	if c.Clients < 1 || c.Clients > MaxClientsPerCoho {
		return fmt.Errorf("scenario: cohort %q has %d clients, want 1..%d", c.Name, c.Clients, MaxClientsPerCoho)
	}
	if c.Class != "" && !classes[c.Class] {
		return fmt.Errorf("scenario: cohort %q references undeclared class %q", c.Name, c.Class)
	}
	if len(c.Tasks) == 0 || len(c.Tasks) > MaxTasksPerClient {
		return fmt.Errorf("scenario: cohort %q has %d tasks, want 1..%d", c.Name, len(c.Tasks), MaxTasksPerClient)
	}
	util := rat.Zero
	seenTask := map[string]bool{}
	for _, task := range c.Tasks {
		if task.Name == "" {
			return fmt.Errorf("scenario: cohort %q has an unnamed task", c.Name)
		}
		if seenTask[task.Name] {
			return fmt.Errorf("scenario: cohort %q has duplicate task %q", c.Name, task.Name)
		}
		seenTask[task.Name] = true
		w := model.W(task.E, task.P)
		if err := w.Validate(); err != nil {
			return fmt.Errorf("scenario: cohort %q task %q: %v", c.Name, task.Name, err)
		}
		// Cap P so window arithmetic over the horizon stays far from
		// overflow even under fuzzed inputs.
		if task.P > MaxHorizon {
			return fmt.Errorf("scenario: cohort %q task %q period %d exceeds %d", c.Name, task.Name, task.P, MaxHorizon)
		}
		util = util.Add(w.Rat())
	}
	if rat.FromInt(int64(s.M)).Less(util) {
		return fmt.Errorf("scenario: cohort %q client utilization %s exceeds M = %d (admission would reject)",
			c.Name, util, s.M)
	}
	if err := validateArrival(c); err != nil {
		return err
	}
	return nil
}

func validateArrival(c *CohortSpec) error {
	a := c.Arrival
	switch a.Process {
	case ProcPeriodic, ProcPoisson:
	case ProcGamma, ProcWeibull:
		if a.Shape != 0 && (!isFinite(a.Shape) || a.Shape <= 0) {
			return fmt.Errorf("scenario: cohort %q %s shape %v, want > 0", c.Name, a.Process, a.Shape)
		}
	default:
		return fmt.Errorf("scenario: cohort %q has unknown arrival process %q", c.Name, a.Process)
	}
	if a.Mean != "" {
		mean, err := rat.Parse(a.Mean)
		if err != nil {
			return fmt.Errorf("scenario: cohort %q arrival mean: %v", c.Name, err)
		}
		if mean.Sign() <= 0 {
			return fmt.Errorf("scenario: cohort %q arrival mean %s, want > 0", c.Name, a.Mean)
		}
	}
	if b := c.Burst; b != nil {
		for _, d := range []struct{ field, v string }{{"on", b.On}, {"off", b.Off}} {
			mean, err := rat.Parse(d.v)
			if err != nil {
				return fmt.Errorf("scenario: cohort %q burst %s: %v", c.Name, d.field, err)
			}
			if mean.Sign() <= 0 {
				return fmt.Errorf("scenario: cohort %q burst %s %s, want > 0", c.Name, d.field, d.v)
			}
		}
	}
	if len(c.Phases) > MaxPhases {
		return fmt.Errorf("scenario: cohort %q has %d phases, cap is %d", c.Name, len(c.Phases), MaxPhases)
	}
	anyOn := len(c.Phases) == 0
	for i, ph := range c.Phases {
		dur, err := rat.Parse(ph.Duration)
		if err != nil {
			return fmt.Errorf("scenario: cohort %q phase %d duration: %v", c.Name, i, err)
		}
		if dur.Sign() <= 0 {
			return fmt.Errorf("scenario: cohort %q phase %d duration %s, want > 0", c.Name, i, ph.Duration)
		}
		if !isFinite(ph.Rate) || ph.Rate < 0 {
			return fmt.Errorf("scenario: cohort %q phase %d rate %v, want finite ≥ 0", c.Name, i, ph.Rate)
		}
		if ph.Rate > 0 {
			anyOn = true
		}
	}
	if !anyOn {
		return fmt.Errorf("scenario: cohort %q has phases but every rate is 0", c.Name)
	}
	return nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// ClassTarget returns the SLO tardiness target of class (DefaultClass
// semantics included): the declared MaxTardiness, or 1 quantum.
func (s *Spec) ClassTarget(class string) rat.Rat {
	for _, c := range s.Classes {
		if c.Name == class && c.MaxTardiness != "" {
			tar, err := rat.Parse(c.MaxTardiness)
			if err == nil {
				return tar
			}
		}
	}
	return rat.One
}

// ClassNames returns every class the spec's cohorts actually use, sorted,
// always including classes that at least one cohort maps to.
func (s *Spec) ClassNames() []string {
	seen := map[string]bool{}
	var out []string
	for i := range s.Cohorts {
		cl := s.Cohorts[i].Class
		if cl == "" {
			cl = DefaultClass
		}
		if !seen[cl] {
			seen[cl] = true
			out = append(out, cl)
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
