package scenario

import (
	"math"
	"reflect"
	"testing"

	"desyncpfair/internal/rat"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations of the same spec differ")
	}
	if len(a.Arrivals) == 0 {
		t.Fatal("spec generated no arrivals at all")
	}
}

func TestGenerateSeedChangesArrivals(t *testing.T) {
	a, err := Generate(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	other := validSpec()
	other.Seed = 8
	b, err := Generate(other)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Arrivals, b.Arrivals) {
		t.Fatal("changing the seed left every arrival identical")
	}
}

func TestGenerateSortedWithinHorizon(t *testing.T) {
	w, err := Generate(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	horizon := rat.FromInt(w.Spec.Horizon)
	for i, a := range w.Arrivals {
		if a.Seq != i {
			t.Fatalf("arrival %d has Seq %d", i, a.Seq)
		}
		if a.At.Sign() < 0 || !a.At.Less(horizon) {
			t.Fatalf("arrival %d at %s outside [0, %d)", i, a.At, w.Spec.Horizon)
		}
		if AtDen%a.At.Den() != 0 {
			t.Fatalf("arrival %d at %s is off the 1/%d grid", i, a.At, AtDen)
		}
		if i > 0 && w.Arrivals[i-1].At.Cmp(a.At) > 0 {
			t.Fatalf("arrivals unsorted at %d: %s after %s", i, a.At, w.Arrivals[i-1].At)
		}
	}
}

// TestPeriodicExact: a periodic process with no bursts or phases is the
// fully deterministic base case — arrivals at exact multiples of the mean.
func TestPeriodicExact(t *testing.T) {
	spec := &Spec{
		Name: "p", Seed: 1, M: 1, Horizon: 16,
		Cohorts: []CohortSpec{{
			Name: "c", Clients: 1,
			Tasks:   []TaskSpec{{Name: "a", E: 1, P: 4}},
			Arrival: ArrivalSpec{Process: ProcPeriodic, Mean: "4"},
		}},
	}
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, a := range w.Arrivals {
		got = append(got, a.At.String())
	}
	want := []string{"4", "8", "12"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("periodic arrivals = %v, want %v", got, want)
	}
}

// TestPhasesSilenceZeroRate: no arrival may land strictly inside a
// zero-rate diurnal phase — the generator steps over silent intervals.
func TestPhasesSilenceZeroRate(t *testing.T) {
	spec := validSpec()
	spec.Cohorts = spec.Cohorts[:1]
	spec.Cohorts[0].Burst = nil
	spec.Cohorts[0].Arrival = ArrivalSpec{Process: ProcPoisson, Mean: "1"}
	// Cycle of 16: on during [0, 8), silent during [8, 16).
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Arrivals) == 0 {
		t.Fatal("no arrivals generated")
	}
	cycleTicks := int64(16 * AtDen)
	onTicks := int64(8 * AtDen)
	for _, a := range w.Arrivals {
		ticks := a.At.Num() * (AtDen / a.At.Den())
		pos := ticks % cycleTicks
		if pos > onTicks { // the boundary instant itself may be hit exactly
			t.Fatalf("arrival at %s lands inside the silent phase (pos %d ticks)", a.At, pos)
		}
	}
}

// TestBurstClumpsArrivals: the burst gate is shared by all of a client's
// tasks, so when long off dwells dominate, independently sampled instants
// from different tasks slide onto the same window-end resume points —
// the burst. That shows up as distinct tasks arriving at the identical
// quantized instant, which never happens for these processes without the
// gate.
func TestBurstClumpsArrivals(t *testing.T) {
	spec := &Spec{
		Name: "b", Seed: 5, M: 1, Horizon: 256,
		Cohorts: []CohortSpec{{
			Name: "c", Clients: 1,
			Tasks:   []TaskSpec{{Name: "a", E: 1, P: 8}, {Name: "b", E: 1, P: 8}},
			Arrival: ArrivalSpec{Process: ProcPoisson, Mean: "2"},
			Burst:   &BurstSpec{On: "1", Off: "30"},
		}},
	}
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	clumped := false
	for i := 1; i < len(w.Arrivals); i++ {
		if w.Arrivals[i].At.Equal(w.Arrivals[i-1].At) && w.Arrivals[i].Task != w.Arrivals[i-1].Task {
			clumped = true
			break
		}
	}
	if !clumped {
		t.Fatalf("dominant off dwells produced no clumped arrivals (%d arrivals)", len(w.Arrivals))
	}
}

// TestSampleGapMeans: each inverse-transform sampler's empirical mean must
// land near the requested mean — the property the spec's "mean" field
// promises regardless of process shape.
func TestSampleGapMeans(t *testing.T) {
	const n = 20000
	for _, tc := range []struct {
		process string
		shape   float64
	}{
		{ProcPeriodic, 1},
		{ProcPoisson, 1},
		{ProcGamma, 0.5},
		{ProcGamma, 3},
		{ProcWeibull, 0.7},
		{ProcWeibull, 2},
	} {
		str := newStream(1, 2, 3)
		sum := 0.0
		for i := 0; i < n; i++ {
			g, err := sampleGap(tc.process, str, 5, tc.shape)
			if err != nil {
				t.Fatal(err)
			}
			if g < 0 || math.IsNaN(g) || math.IsInf(g, 0) {
				t.Fatalf("%s(shape %v): bad gap %v", tc.process, tc.shape, g)
			}
			sum += g
		}
		if mean := sum / n; math.Abs(mean-5) > 0.35 {
			t.Errorf("%s(shape %v): empirical mean %.3f, want ≈ 5", tc.process, tc.shape, mean)
		}
	}
}
