package scenario

import (
	"fmt"
	"testing"

	"desyncpfair/internal/oracle"
	"desyncpfair/internal/rat"
)

// oracleSpec builds a tiny scenario for one seed, varied across processor
// counts, client counts, task mixes, arrival processes, bursts and phases
// — small enough that the exhaustive oracle can usually check the
// generated GIS systems.
func oracleSpec(seed int64) *Spec {
	u := uint64(seed)
	m := 1 + int(u%2)
	procs := []string{ProcPoisson, ProcPeriodic, ProcGamma, ProcWeibull}
	co := CohortSpec{
		Name:    "c",
		Clients: 1 + int(u/2%2),
		Tasks:   []TaskSpec{{Name: "a", E: 1, P: 2 + int64(u%3)}},
		Arrival: ArrivalSpec{Process: procs[u%4], Mean: fmt.Sprint(3 + u%3), Shape: 0.5 + float64(u%5)/2},
	}
	if m == 2 {
		co.Tasks = append(co.Tasks, TaskSpec{Name: "b", E: 1, P: 3 + int64(u%2)})
	}
	if u%5 == 0 {
		co.Burst = &BurstSpec{On: "3", Off: "2"}
	}
	if u%7 == 0 {
		co.Phases = []PhaseSpec{{Duration: "3", Rate: 2}, {Duration: "3", Rate: 0.5}}
	}
	return &Spec{
		Name: fmt.Sprintf("oracle-%d", seed), Seed: seed, M: m,
		Horizon: 6 + seed%4,
		Cohorts: []CohortSpec{co},
	}
}

// TestCounterfactualMatchesOracle is the end-to-end verification sweep
// demanded by the scenario engine's contract, over ≥100 seeded systems:
//
//  1. replaying a recorded trace reproduces the exact dispatch sequence;
//  2. a counterfactual under the recorded policy makes identical
//     decisions (zero differing quanta);
//  3. PD² and EPDF counterfactuals both satisfy Theorem 3's bound
//     (tardiness ≤ 1 quantum; EPDF is optimal here because m ≤ 2);
//  4. the exhaustive oracle confirms each generated GIS system is
//     feasible — the workloads being replayed are real instances of the
//     paper's model, not degenerate ones.
func TestCounterfactualMatchesOracle(t *testing.T) {
	const seeds = 120
	oracleChecked, withDispatches := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		spec := oracleSpec(seed)
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: bad test spec: %v", seed, err)
		}
		w, err := Generate(spec)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		tgt := NewExecTarget()
		res, err := Run(w, tgt)
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if res.Report.Dispatches > 0 {
			withDispatches++
		}

		// (1) Replay must reproduce the recorded dispatch sequence exactly.
		if _, err := Replay(res.Records); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// (2) Same policy ⇒ same decisions, quantum by quantum.
		same, err := Rerun(res.Records, "PD2")
		if err != nil {
			t.Fatalf("seed %d: rerun PD2: %v", seed, err)
		}
		if len(same.Diffs) != 0 {
			t.Fatalf("seed %d: PD2 counterfactual of a PD2 recording differs in %d quanta: %+v",
				seed, len(same.Diffs), same.Diffs[0])
		}

		// (3) Theorem 3 must hold for both PD² and EPDF (m ≤ 2).
		for _, policy := range []string{"PD2", "EPDF"} {
			cf, err := Rerun(res.Records, policy)
			if err != nil {
				t.Fatalf("seed %d: rerun %s: %v", seed, policy, err)
			}
			if rat.One.Less(cf.Result.Report.MaxTardiness) {
				t.Fatalf("seed %d: %s counterfactual has max tardiness %s > 1 quantum (Theorem 3)",
					seed, policy, cf.Result.Report.MaxTardiness)
			}
		}

		// (4) The generated GIS systems are oracle-feasible.
		for id, ex := range tgt.Execs {
			sys := ex.System()
			n := sys.NumSubtasks()
			if n == 0 || n > oracle.MaxSubtasks {
				continue
			}
			ok, err := oracle.Exists(sys, spec.M)
			if err != nil {
				t.Fatalf("seed %d client %s: oracle: %v", seed, id, err)
			}
			if !ok {
				t.Fatalf("seed %d client %s: oracle found no schedule for a feasible system", seed, id)
			}
			oracleChecked++
		}
	}
	// The sweep must actually exercise its subjects, not vacuously pass.
	if withDispatches < seeds*3/4 {
		t.Fatalf("only %d/%d seeds produced dispatches", withDispatches, seeds)
	}
	if oracleChecked < 75 {
		t.Fatalf("only %d oracle-checked systems, want ≥ 75 — shrink the specs", oracleChecked)
	}
}
