package scenario

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"desyncpfair/internal/client"
	"desyncpfair/internal/model"
	"desyncpfair/internal/online"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/server"
)

// Target abstracts what a scenario drives: the in-process executive
// (ExecTarget) or a live pfaird over HTTP (HTTPTarget). Submission order
// is the workload's global arrival order; Finish drains the client and
// returns its complete dispatch log in decision order.
type Target interface {
	Setup(c ClientSetup, m int, policy string) error
	Submit(clientID, task string, at rat.Rat) error
	Finish(clientID string) ([]server.DispatchEvent, error)
}

// ExecTarget drives one online.Executive per client, all in-process. It
// retains the executives after the run so tests can cross-examine the
// generated task systems (e.g. against the exhaustive oracle).
type ExecTarget struct {
	Execs map[string]*online.Executive
	tasks map[string]map[string]*model.Task
}

// NewExecTarget returns an empty in-process target.
func NewExecTarget() *ExecTarget {
	return &ExecTarget{
		Execs: map[string]*online.Executive{},
		tasks: map[string]map[string]*model.Task{},
	}
}

// Setup creates the client's executive and registers its tasks.
func (e *ExecTarget) Setup(c ClientSetup, m int, policy string) error {
	p := prio.ByName(policy)
	if policy == "" {
		p = prio.PD2{}
	}
	if p == nil {
		return fmt.Errorf("scenario: unknown policy %q", policy)
	}
	ex := online.New(m, p)
	byName := map[string]*model.Task{}
	for _, ts := range c.Tasks {
		t, err := ex.Register(ts.Name, model.W(ts.E, ts.P))
		if err != nil {
			return fmt.Errorf("scenario: client %s: %w", c.ID, err)
		}
		byName[ts.Name] = t
	}
	e.Execs[c.ID] = ex
	e.tasks[c.ID] = byName
	return nil
}

// Submit releases one job.
func (e *ExecTarget) Submit(clientID, task string, at rat.Rat) error {
	ex := e.Execs[clientID]
	if ex == nil {
		return fmt.Errorf("scenario: unknown client %s", clientID)
	}
	t := e.tasks[clientID][task]
	if t == nil {
		return fmt.Errorf("scenario: client %s has no task %s", clientID, task)
	}
	return ex.SubmitJob(t, at)
}

// Finish drains the client's executive and converts its schedule into the
// wire dispatch-event shape, exactly as internal/server records it.
func (e *ExecTarget) Finish(clientID string) ([]server.DispatchEvent, error) {
	ex := e.Execs[clientID]
	if ex == nil {
		return nil, fmt.Errorf("scenario: unknown client %s", clientID)
	}
	if _, err := ex.Drain(nil); err != nil {
		return nil, fmt.Errorf("scenario: drain %s: %w", clientID, err)
	}
	asgs := ex.Schedule().Assignments()
	evs := make([]server.DispatchEvent, 0, len(asgs))
	for i, a := range asgs {
		deadline := a.Sub.Deadline()
		tard := a.Finish().Sub(rat.FromInt(deadline))
		if tard.Sign() < 0 {
			tard = rat.Zero
		}
		evs = append(evs, server.DispatchEvent{
			Seq:       int64(i),
			Task:      a.Sub.Task.Name,
			Index:     a.Sub.Index,
			Proc:      a.Proc,
			Start:     a.Start.String(),
			Finish:    a.Finish().String(),
			Deadline:  deadline,
			Tardiness: tard.String(),
		})
	}
	return evs, nil
}

// HTTPTarget drives a live pfaird (or a router front) through the typed
// client: one tenant per scenario client. Dispatch logs are collected by
// replaying the tenant's dispatch stream from decision 0 after the drain,
// so the recorded trace reflects what the service actually did, not what
// the generator hoped.
type HTTPTarget struct {
	Ctx context.Context
	C   *client.Client
}

// Setup creates the tenant and registers its tasks, failing on any
// admission rejection — a validated spec fits by construction, so a
// rejection means the server disagrees and the scenario is void.
func (h *HTTPTarget) Setup(c ClientSetup, m int, policy string) error {
	if _, err := h.C.CreateTenant(h.Ctx, c.ID, m, policy); err != nil {
		return fmt.Errorf("scenario: create tenant %s: %w", c.ID, err)
	}
	for _, ts := range c.Tasks {
		resp, err := h.C.RegisterTask(h.Ctx, c.ID, ts.Name, model.W(ts.E, ts.P))
		if err != nil {
			return fmt.Errorf("scenario: register %s/%s: %w", c.ID, ts.Name, err)
		}
		if !resp.Admitted {
			return fmt.Errorf("scenario: register %s/%s rejected: %s", c.ID, ts.Name, resp.Reason)
		}
	}
	return nil
}

// Submit releases one job at an explicit virtual time.
func (h *HTTPTarget) Submit(clientID, task string, at rat.Rat) error {
	if _, err := h.C.SubmitJob(h.Ctx, clientID, task, at.String()); err != nil {
		return fmt.Errorf("scenario: submit %s/%s: %w", clientID, task, err)
	}
	return nil
}

// Finish drains the tenant and replays its full dispatch log.
func (h *HTTPTarget) Finish(clientID string) ([]server.DispatchEvent, error) {
	if _, err := h.C.Drain(h.Ctx, clientID); err != nil {
		return nil, fmt.Errorf("scenario: drain %s: %w", clientID, err)
	}
	st, err := h.C.StreamDispatches(h.Ctx, clientID, 0, false)
	if err != nil {
		return nil, fmt.Errorf("scenario: stream %s: %w", clientID, err)
	}
	defer st.Close()
	var evs []server.DispatchEvent
	for {
		ev, err := st.Next()
		if errors.Is(err, io.EOF) {
			return evs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: stream %s: %w", clientID, err)
		}
		evs = append(evs, ev)
	}
}

// Result is one scenario run: the workload, the per-client dispatch logs,
// the report, and the full framed-trace record sequence.
type Result struct {
	Workload   *Workload
	Dispatches map[string][]server.DispatchEvent
	Report     *Report
	Records    []Record
}

// Run executes a workload against a target: set up every client (sorted),
// submit every arrival in global order, drain every client, then build
// the report and the trace. The trace layout is header, arrivals in
// submission order, dispatches grouped by client (clients sorted by id,
// decisions in order), end summary — a deterministic function of the
// dispatch logs.
func Run(w *Workload, tgt Target) (*Result, error) {
	for _, c := range w.Clients {
		if err := tgt.Setup(c, w.Spec.M, w.Spec.Policy); err != nil {
			return nil, err
		}
	}
	for _, a := range w.Arrivals {
		if err := tgt.Submit(a.Client, a.Task, a.At); err != nil {
			return nil, fmt.Errorf("scenario: arrival %d: %w", a.Seq, err)
		}
	}
	disp := make(map[string][]server.DispatchEvent, len(w.Clients))
	for _, c := range w.Clients {
		evs, err := tgt.Finish(c.ID)
		if err != nil {
			return nil, err
		}
		disp[c.ID] = evs
	}
	rep := BuildReport(w, disp)
	return &Result{
		Workload:   w,
		Dispatches: disp,
		Report:     rep,
		Records:    buildRecords(w, disp, rep),
	}, nil
}

// buildRecords lays out the trace record sequence for a run.
func buildRecords(w *Workload, disp map[string][]server.DispatchEvent, rep *Report) []Record {
	recs := make([]Record, 0, 2+len(w.Arrivals))
	recs = append(recs, Record{Kind: KindHeader, Version: TraceVersion, Spec: w.Spec})
	for _, a := range w.Arrivals {
		recs = append(recs, Record{
			Kind: KindArrival, Client: a.Client, Task: a.Task, Class: a.Class, At: a.At.String(),
		})
	}
	classOf := classIndex(w)
	ids := sortedClientIDs(w)
	for _, id := range ids {
		for _, ev := range disp[id] {
			recs = append(recs, dispatchRecord(id, classOf[id], ev))
		}
	}
	recs = append(recs, rep.endRecord())
	return recs
}

func classIndex(w *Workload) map[string]string {
	out := make(map[string]string, len(w.Clients))
	for _, c := range w.Clients {
		out[c.ID] = c.Class
	}
	return out
}

func sortedClientIDs(w *Workload) []string {
	ids := make([]string, 0, len(w.Clients))
	for _, c := range w.Clients {
		ids = append(ids, c.ID)
	}
	sort.Strings(ids)
	return ids
}
