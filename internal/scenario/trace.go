package scenario

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"desyncpfair/internal/server"
)

// TraceVersion is the trace format version stamped into every header
// record; readers reject traces from a future format.
const TraceVersion = 1

// castagnoli is the CRC-32C table, the same polynomial the WAL frames
// records with.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record kinds. A trace is: one header, the arrival sequence, the
// dispatch sequence (grouped per client, in decision order), one end
// summary.
const (
	KindHeader   = "header"
	KindArrival  = "arrival"
	KindDispatch = "dispatch"
	KindEnd      = "end"
)

// Record is one NDJSON trace record. Field presence depends on Kind; the
// schema deliberately extends the PR 4 trace-ring event shape (virtual
// times as exact rat strings, per-client monotone sequence numbers) and,
// like the ring, carries no wall-clock time — a trace re-recorded from
// the same seed is byte-identical.
type Record struct {
	Kind string `json:"kind"`

	// Header fields.
	Version int   `json:"version,omitempty"`
	Spec    *Spec `json:"spec,omitempty"`

	// Arrival and dispatch fields.
	Client string `json:"client,omitempty"`
	Task   string `json:"task,omitempty"`
	Class  string `json:"class,omitempty"`
	// At is the arrival's virtual time (arrival records).
	At string `json:"at,omitempty"`

	// Dispatch fields, mirroring server.DispatchEvent: DSeq is the
	// decision's 0-based index within its client, Index the subtask index,
	// Start/Finish/Tardiness exact rat strings.
	DSeq      int64  `json:"dseq,omitempty"`
	Index     int64  `json:"index,omitempty"`
	Proc      int    `json:"proc,omitempty"`
	Start     string `json:"start,omitempty"`
	Finish    string `json:"finish,omitempty"`
	Deadline  int64  `json:"deadline,omitempty"`
	Tardiness string `json:"tardiness,omitempty"`

	// End-summary fields.
	Arrivals     int64       `json:"arrivals,omitempty"`
	Dispatches   int64       `json:"dispatches,omitempty"`
	MaxTardiness string      `json:"maxTardiness,omitempty"`
	Jain         string      `json:"jain,omitempty"`
	Classes      []ClassSumm `json:"classes,omitempty"`
}

// ClassSumm is the end record's per-SLO-class rollup.
type ClassSumm struct {
	Class        string `json:"class"`
	SLO          string `json:"slo"`
	Dispatches   int64  `json:"dispatches"`
	Violations   int64  `json:"violations"`
	MaxTardiness string `json:"maxTardiness"`
}

// frame is the CRC envelope of one trace line: C is the CRC-32C of the
// exact bytes of R. json.RawMessage preserves those bytes verbatim on
// decode, so verification does not depend on re-marshalling stability.
type frame struct {
	C string          `json:"c"`
	R json.RawMessage `json:"r"`
}

// TraceWriter frames records onto an io.Writer, one CRC-checked NDJSON
// line per record.
type TraceWriter struct {
	w *bufio.Writer
}

// NewTraceWriter wraps w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriter(w)}
}

// Write appends one framed record.
func (t *TraceWriter) Write(rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("scenario: encode trace record: %w", err)
	}
	crc := crc32.Checksum(b, castagnoli)
	if _, err := fmt.Fprintf(t.w, `{"c":"%08x","r":%s}`+"\n", crc, b); err != nil {
		return err
	}
	return nil
}

// Flush flushes the underlying buffer.
func (t *TraceWriter) Flush() error { return t.w.Flush() }

// WriteTrace frames a whole record sequence to w.
func WriteTrace(w io.Writer, recs []Record) error {
	tw := NewTraceWriter(w)
	for _, rec := range recs {
		if err := tw.Write(rec); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// EncodeTrace renders a record sequence as trace bytes (the exact bytes
// WriteTrace would emit — what the golden tests byte-compare).
func EncodeTrace(recs []Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadTrace decodes and CRC-verifies a framed trace. Any malformed or
// corrupt line fails the whole read with its 1-based line number: a trace
// is a proof artifact, so unlike the WAL (where a torn tail is an
// expected crash shape) there is no valid-prefix recovery here.
func ReadTrace(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var fr frame
		if err := json.Unmarshal(raw, &fr); err != nil {
			return nil, fmt.Errorf("scenario: trace line %d: malformed frame: %w", line, err)
		}
		want := crc32.Checksum(fr.R, castagnoli)
		if fmt.Sprintf("%08x", want) != fr.C {
			return nil, fmt.Errorf("scenario: trace line %d: CRC mismatch (frame says %s, payload is %08x)", line, fr.C, want)
		}
		var rec Record
		if err := json.Unmarshal(fr.R, &rec); err != nil {
			return nil, fmt.Errorf("scenario: trace line %d: malformed record: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: read trace: %w", err)
	}
	if err := checkShape(recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// checkShape validates the record sequence's gross structure.
func checkShape(recs []Record) error {
	if len(recs) == 0 {
		return fmt.Errorf("scenario: empty trace")
	}
	if recs[0].Kind != KindHeader || recs[0].Spec == nil {
		return fmt.Errorf("scenario: trace does not start with a header record")
	}
	if recs[0].Version > TraceVersion {
		return fmt.Errorf("scenario: trace version %d is newer than this reader (%d)", recs[0].Version, TraceVersion)
	}
	for i, rec := range recs[1:] {
		switch rec.Kind {
		case KindArrival, KindDispatch, KindEnd:
		default:
			return fmt.Errorf("scenario: trace record %d has unknown kind %q", i+2, rec.Kind)
		}
	}
	return nil
}

// dispatchRecord converts one server.DispatchEvent into its trace record.
func dispatchRecord(client, class string, ev server.DispatchEvent) Record {
	return Record{
		Kind: KindDispatch, Client: client, Class: class,
		Task: ev.Task, DSeq: ev.Seq, Index: ev.Index, Proc: ev.Proc,
		Start: ev.Start, Finish: ev.Finish, Deadline: ev.Deadline, Tardiness: ev.Tardiness,
	}
}

// dispatchEvent is the inverse of dispatchRecord.
func dispatchEvent(rec Record) server.DispatchEvent {
	return server.DispatchEvent{
		Seq: rec.DSeq, Task: rec.Task, Index: rec.Index, Proc: rec.Proc,
		Start: rec.Start, Finish: rec.Finish, Deadline: rec.Deadline, Tardiness: rec.Tardiness,
	}
}
