package scenario

import (
	"fmt"
	"math"
	"sort"

	"desyncpfair/internal/rat"
)

// AtDen is the arrival-time grid: sampled (float) arrival instants are
// quantized to multiples of 1/AtDen quantum before anything downstream
// sees them, so traces stay exact and platform-independent.
const AtDen = 64

// Arrival is one job arrival of the expanded workload.
type Arrival struct {
	// Seq is the arrival's index in the globally sorted sequence.
	Seq int
	// Client is the owning tenant id ("<cohort>-<k>").
	Client string
	// Task is the task name within the client.
	Task string
	// At is the arrival's virtual time on the 1/AtDen grid.
	At rat.Rat
	// Class is the client's SLO class.
	Class string
}

// ClientSetup is everything a Target needs to create one client.
type ClientSetup struct {
	ID    string
	Class string
	Tasks []TaskSpec
}

// Workload is a fully expanded scenario: the deterministic product of
// (spec, seed), ready to drive any Target.
type Workload struct {
	Spec    *Spec
	Clients []ClientSetup // in spec cohort order (what replay must preserve)
	// Arrivals is globally sorted by (At, Client, Task, sample order), the
	// order in which the runner submits — which fixes the IS offsets
	// (eq. 5) and therefore the entire downstream schedule.
	Arrivals []Arrival
}

// Generate expands a validated spec into its workload. It is a pure
// function of the spec (including its seed): per-(cohort, client, task)
// RNG streams are derived by hashing indices, not by consuming a shared
// stream, so reordering cohorts in the spec does not ripple across
// unrelated clients.
func Generate(spec *Spec) (*Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	w := &Workload{Spec: spec}
	horizon := float64(spec.Horizon)
	total := 0
	for ci := range spec.Cohorts {
		co := &spec.Cohorts[ci]
		class := co.Class
		if class == "" {
			class = DefaultClass
		}
		phases, err := parsePhases(co.Phases)
		if err != nil {
			return nil, err
		}
		for k := 0; k < co.Clients; k++ {
			id := fmt.Sprintf("%s-%d", co.Name, k)
			w.Clients = append(w.Clients, ClientSetup{ID: id, Class: class, Tasks: co.Tasks})
			// The burst gate is per client: all of a client's tasks go
			// quiet and resume together, which is what makes the resume
			// instant a genuine burst.
			gate, err := buildGate(co.Burst, newStream(uint64(spec.Seed), uint64(ci), uint64(k), 0xb0), horizon)
			if err != nil {
				return nil, err
			}
			for ti, task := range co.Tasks {
				str := newStream(uint64(spec.Seed), uint64(ci), uint64(k), uint64(ti))
				n, err := genTask(w, co, task, id, class, str, gate, phases, horizon, total)
				if err != nil {
					return nil, err
				}
				total += n
			}
		}
	}
	sortArrivals(w.Arrivals)
	for i := range w.Arrivals {
		w.Arrivals[i].Seq = i
	}
	return w, nil
}

// genTask samples one task's arrival instants and appends them to the
// workload, returning how many it added.
func genTask(w *Workload, co *CohortSpec, task TaskSpec, client, class string,
	str *stream, gate *gate, phases []phase, horizon float64, total int) (int, error) {
	mean := float64(task.P)
	if co.Arrival.Mean != "" {
		m, err := rat.Parse(co.Arrival.Mean)
		if err != nil {
			return 0, err
		}
		mean = m.Float64()
	}
	shape := co.Arrival.Shape
	if shape == 0 {
		shape = 1
	}
	n := 0
	t := 0.0
	for {
		gap, err := sampleGap(co.Arrival.Process, str, mean, shape)
		if err != nil {
			return n, err
		}
		// Diurnal scaling: the gap is consumed faster in high-rate phases
		// and not at all in zero-rate ones (no arrivals land there).
		t = advance(t, gap, phases, horizon)
		if t >= horizon {
			return n, nil
		}
		if gate != nil {
			t = gate.slide(t)
			if t >= horizon {
				return n, nil
			}
		}
		if total+n >= MaxArrivals {
			return n, fmt.Errorf("scenario: spec generates more than %d arrivals; shrink horizon or rates", MaxArrivals)
		}
		ticks := int64(math.Floor(t*AtDen + 0.5))
		// Rounding can push an instant just under the horizon onto it;
		// arrivals live in [0, horizon), so that one (and everything after
		// it) is cut.
		if ticks >= w.Spec.Horizon*AtDen {
			return n, nil
		}
		// Seq carries the generation order until Generate renumbers after
		// the global sort; it is the stable tiebreak for equal instants.
		w.Arrivals = append(w.Arrivals, Arrival{
			Seq: total + n, Client: client, Task: task.Name, At: rat.New(ticks, AtDen), Class: class,
		})
		n++
	}
}

// sampleGap draws one inter-arrival gap with the given mean.
func sampleGap(process string, str *stream, mean, shape float64) (float64, error) {
	switch process {
	case ProcPeriodic:
		return mean, nil
	case ProcPoisson:
		return mean * str.exp(), nil
	case ProcGamma:
		// Gamma(k, θ) has mean kθ; θ = mean/k keeps the requested mean at
		// every shape. Small k ⇒ heavy clumping, large k ⇒ near-periodic.
		return mean / shape * str.gamma(shape), nil
	case ProcWeibull:
		// Scale λ = mean / Γ(1 + 1/k) gives mean exactly `mean`.
		return mean / math.Gamma(1+1/shape) * str.weibull(shape), nil
	default:
		return 0, fmt.Errorf("scenario: unknown arrival process %q", process)
	}
}

// phase is a parsed diurnal segment.
type phase struct {
	dur  float64
	rate float64
}

func parsePhases(specs []PhaseSpec) ([]phase, error) {
	out := make([]phase, 0, len(specs))
	for _, p := range specs {
		d, err := rat.Parse(p.Duration)
		if err != nil {
			return nil, err
		}
		out = append(out, phase{dur: d.Float64(), rate: p.Rate})
	}
	return out, nil
}

// advance moves t forward by a gap measured in *unscaled* arrival-process
// time, stretching it through the diurnal schedule: while inside a phase
// of rate ρ > 0 the gap is consumed ρ times faster (higher rate ⇒ denser
// arrivals), and zero-rate phases are stepped over without consuming any
// gap-budget — no arrivals land in them. Once t reaches horizon the rest
// of the gap is irrelevant (the arrival is cut), so it returns early —
// which also bounds the loop for adversarial gap/rate combinations.
func advance(t, gap float64, phases []phase, horizon float64) float64 {
	if len(phases) == 0 {
		return t + gap
	}
	cycle := 0.0
	for _, p := range phases {
		cycle += p.dur
	}
	remaining := gap
	for remaining > 0 && t < horizon {
		// Locate t's phase and the time left inside it.
		pos := math.Mod(t, cycle)
		if pos < 0 {
			pos = 0
		}
		var cur phase
		left := 0.0
		acc := 0.0
		for _, p := range phases {
			if pos < acc+p.dur {
				cur = p
				left = acc + p.dur - pos
				break
			}
			acc += p.dur
		}
		if left <= 0 { // float edge: nudge past the boundary
			t = math.Nextafter(t, math.Inf(1))
			continue
		}
		if cur.rate <= 0 {
			t += left
			continue
		}
		// Inside this phase, `need` unscaled time passes per real time
		// unit times rate.
		if consume := left * cur.rate; consume < remaining {
			remaining -= consume
			t += left
		} else {
			t += remaining / cur.rate
			remaining = 0
		}
	}
	return t
}

// gate is a precomputed on/off burst schedule: sorted, disjoint off
// windows within the horizon.
type gate struct {
	off [][2]float64
}

// buildGate samples alternating on/off dwell times over the horizon.
func buildGate(b *BurstSpec, str *stream, horizon float64) (*gate, error) {
	if b == nil {
		return nil, nil
	}
	on, err := rat.Parse(b.On)
	if err != nil {
		return nil, err
	}
	off, err := rat.Parse(b.Off)
	if err != nil {
		return nil, err
	}
	onMean, offMean := on.Float64(), off.Float64()
	g := &gate{}
	t := 0.0
	for t < horizon {
		t += onMean * str.exp() // on dwell
		if t >= horizon {
			break
		}
		d := offMean * str.exp() // off dwell
		g.off = append(g.off, [2]float64{t, t + d})
		t += d
		if len(g.off) > 4*MaxArrivals {
			return nil, fmt.Errorf("scenario: burst schedule exceeds %d windows", 4*MaxArrivals)
		}
	}
	return g, nil
}

// slide moves an arrival instant landing inside an off window to the
// window's end — the bursty resume.
func (g *gate) slide(t float64) float64 {
	if g == nil {
		return t
	}
	// Binary search for the last window starting at or before t; the
	// windows are sorted and disjoint.
	i := sort.Search(len(g.off), func(i int) bool { return g.off[i][0] > t })
	if i > 0 && t < g.off[i-1][1] {
		return g.off[i-1][1]
	}
	return t
}

// sortArrivals orders arrivals by (At, Client, Task, generation order) —
// a total order, so the result is deterministic regardless of sort
// algorithm internals.
func sortArrivals(a []Arrival) {
	sort.Slice(a, func(i, j int) bool {
		if c := a[i].At.Cmp(a[j].At); c != 0 {
			return c < 0
		}
		if a[i].Client != a[j].Client {
			return a[i].Client < a[j].Client
		}
		if a[i].Task != a[j].Task {
			return a[i].Task < a[j].Task
		}
		return a[i].Seq < a[j].Seq
	})
}
