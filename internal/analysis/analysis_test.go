package analysis

import (
	"math/rand"
	"strings"
	"testing"

	"desyncpfair/internal/core"
	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sfq"
)

func fig2System(h int64) *model.System {
	return model.Periodic([]model.Weight{
		model.W(1, 6), model.W(1, 6), model.W(1, 6),
		model.W(1, 2), model.W(1, 2), model.W(1, 2),
	}, h)
}

func TestIdealLagOfPD2Schedule(t *testing.T) {
	sys := fig2System(6)
	s, err := sfq.Run(sys, sfq.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	// PD² SFQ schedules of periodic systems are Pfair: |lag| < 1 always.
	if err := CheckPfairness(s); err != nil {
		t.Fatal(err)
	}
	if got := MaxAbsIdealLag(s); !got.Less(rat.One) {
		t.Errorf("max |lag| = %s, want < 1", got)
	}
	// Task D (wt 1/2) after 2 slots has exactly 1 quantum: lag = 0.
	d := sys.Tasks[3]
	if got := IdealLag(s, d, 2); got.Sign() != 0 {
		t.Errorf("lag(D, 2) = %s, want 0", got)
	}
}

func TestPfairnessAtScale(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(3)
		q := int64(6 + rng.Intn(6))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		sys := model.Periodic(ws, 2*q)
		s, err := sfq.Run(sys, sfq.Options{M: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckPfairness(s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestCheckPfairnessRejectsNonPeriodic(t *testing.T) {
	sys := model.NewSystem()
	tk := sys.AddTask("T", model.W(1, 2))
	sys.AddSubtask(tk, 1, 0, 0)
	sys.AddSubtask(tk, 3, 1, 5) // GIS omission
	s, err := sfq.Run(sys, sfq.Options{M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPfairness(s); err == nil {
		t.Error("GIS system accepted by periodic-only Pfairness check")
	}
}

func TestQuantumResidue(t *testing.T) {
	sys := fig2System(6)
	// Every subtask yields at half a quantum: residue = 12 × 1/2 = 6.
	s, err := sfq.Run(sys, sfq.Options{M: 2, Yield: func(*model.Subtask) rat.Rat { return rat.New(1, 2) }})
	if err != nil {
		t.Fatal(err)
	}
	if got := QuantumResidue(s); !got.Equal(rat.FromInt(6)) {
		t.Errorf("residue = %s, want 6", got)
	}
	full, err := sfq.Run(sys, sfq.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := QuantumResidue(full); got.Sign() != 0 {
		t.Errorf("full-cost residue = %s, want 0", got)
	}
}

func TestSlotLoad(t *testing.T) {
	sys := fig2System(6)
	s, err := sfq.Run(sys, sfq.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	for slot := int64(0); slot < 6; slot++ {
		if got := SlotLoad(s, slot); got != 2 {
			t.Errorf("slot %d load = %d, want 2", slot, got)
		}
	}
}

func TestSummarize(t *testing.T) {
	sys := fig2System(6)
	y := gen.AdversarialYield(rat.New(1, 4), func(s *model.Subtask) bool {
		return (s.Task.Name == "A" || s.Task.Name == "F") && s.Index == 1
	})
	dq, err := core.RunDVQ(sys, core.DVQOptions{M: 2, Yield: y})
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(dq)
	if sum.Subtasks != 12 {
		t.Errorf("subtasks = %d", sum.Subtasks)
	}
	if sum.Misses != 1 { // F_2
		t.Errorf("misses = %d, want 1", sum.Misses)
	}
	if got := sum.MissRate(); got <= 0 || got > 1 {
		t.Errorf("miss rate = %f", got)
	}
	if !sum.MaxTardiness.Equal(rat.New(3, 4)) {
		t.Errorf("max tardiness = %s, want 3/4", sum.MaxTardiness)
	}
	if sum.MeanResponse <= 0 {
		t.Error("mean response should be positive")
	}
	if sum.BusyFraction <= 0 || sum.BusyFraction > 1 {
		t.Errorf("busy fraction = %f", sum.BusyFraction)
	}
}

func TestResponses(t *testing.T) {
	sys := fig2System(6)
	s, err := sfq.Run(sys, sfq.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := Responses(s)
	if st.Mean <= 0 || st.Max < st.Mean {
		t.Errorf("responses mean=%f max=%f", st.Mean, st.Max)
	}
}

func TestMissRateEmpty(t *testing.T) {
	var s Summary
	if s.MissRate() != 0 {
		t.Error("empty summary miss rate should be 0")
	}
}

func TestMigrations(t *testing.T) {
	sys := fig2System(6)
	s, err := sfq.Run(sys, sfq.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Task affinity keeps migrations low but the count must be well-defined
	// and bounded by (#subtasks − #tasks).
	m := Migrations(s)
	if m < 0 || m > sys.NumSubtasks()-len(sys.Tasks) {
		t.Errorf("migrations = %d out of range", m)
	}
}

func TestLagSeriesAndCSV(t *testing.T) {
	sys := fig2System(6)
	s, err := sfq.Run(sys, sfq.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	series := LagSeries(s, sys.Tasks[3]) // task D, weight 1/2
	if len(series) != 7 {                // t = 0..6
		t.Fatalf("series length %d", len(series))
	}
	if series[0].Lag.Sign() != 0 {
		t.Error("lag at 0 should be 0")
	}
	for _, p := range series {
		if !p.Lag.Less(rat.One) || !p.Lag.Neg().Less(rat.One) {
			t.Errorf("lag(%d) = %s outside (−1,1)", p.T, p.Lag)
		}
	}
	var b strings.Builder
	if err := WriteLagCSV(&b, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1+len(sys.Tasks)*7 {
		t.Errorf("csv rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "task,time,lag") {
		t.Errorf("header %q", lines[0])
	}
}

func TestTardinessHistogram(t *testing.T) {
	sys := fig2System(6)
	y := func(s *model.Subtask) rat.Rat {
		if (s.Task.Name == "A" || s.Task.Name == "F") && s.Index == 1 {
			return rat.New(3, 4)
		}
		return rat.One
	}
	dq, err := core.RunDVQ(sys, core.DVQOptions{M: 2, Yield: y})
	if err != nil {
		t.Fatal(err)
	}
	h := TardinessHistogram(dq)
	if h.Total != 12 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Buckets[0] != 11 {
		t.Errorf("on-time = %d, want 11", h.Buckets[0])
	}
	// F_2's tardiness is 3/4 ∈ (5/8, 6/8] → bucket 5.
	if h.Buckets[5] != 1 {
		t.Errorf("bucket 5 = %d, want 1 (histogram %s)", h.Buckets[5], h)
	}
	var merged Histogram
	merged.Merge(h)
	merged.Merge(h)
	if merged.Total != 24 || merged.Buckets[5] != 2 {
		t.Errorf("merge wrong: %s", merged)
	}
	if h.String() == "" {
		t.Error("empty histogram string")
	}
}

// For synchronous periodic systems the per-subtask fluid schedule must
// reduce exactly to wt·t, i.e. ISLag == IdealLag everywhere.
func TestFluidReducesToPeriodicIdeal(t *testing.T) {
	sys := fig2System(6)
	s, err := sfq.Run(sys, sfq.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range sys.Tasks {
		for tt := int64(0); tt <= 6; tt++ {
			if got, want := ISLag(s, task, tt), IdealLag(s, task, tt); !got.Equal(want) {
				t.Fatalf("ISLag(%s,%d)=%s but IdealLag=%s", task, tt, got, want)
			}
		}
	}
	if err := CheckISPfairness(s); err != nil {
		t.Fatal(err)
	}
}

func TestFluidAllocationPartials(t *testing.T) {
	// wt 3/4, T_1: fluid interval [0, 4/3): slot 0 gets 3/4·1 = 3/4 of a
	// quantum... rate w over [0,1) = 3/4; slot 1 gets (4/3−1)·3/4 = 1/4.
	sub := &model.Subtask{Task: &model.Task{W: model.W(3, 4)}, Index: 1}
	if got := FluidAllocation(sub, 0); !got.Equal(rat.New(3, 4)) {
		t.Errorf("slot 0 = %s", got)
	}
	if got := FluidAllocation(sub, 1); !got.Equal(rat.New(1, 4)) {
		t.Errorf("slot 1 = %s", got)
	}
	if got := FluidAllocation(sub, 2); got.Sign() != 0 {
		t.Errorf("slot 2 = %s", got)
	}
	// A full fluid interval sums to exactly one quantum.
	total := rat.Zero
	for u := int64(0); u < 4; u++ {
		total = total.Add(FluidAllocation(sub, u))
	}
	if !total.Equal(rat.One) {
		t.Errorf("total = %s", total)
	}
}

// Generalized Pfairness holds for PD² on random IS/GIS systems (no early
// release): every task's fluid lag stays in (−1, 1).
func TestISPfairnessAtScale(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(3)
		q := int64(6 + rng.Intn(6))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{
			Horizon:    3 * q,
			JitterProb: 25,
			MaxJitter:  2,
			OmitProb:   15,
		})
		s, err := sfq.Run(sys, sfq.Options{M: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ValidatePfair(); err != nil {
			t.Fatal(err)
		}
		if err := CheckISPfairness(s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestJobsAndJobTardiness(t *testing.T) {
	sys := fig2System(12) // two full periods for the 1/2-weight tasks
	y := gen.AdversarialYield(rat.New(1, 4), func(s *model.Subtask) bool {
		return (s.Task.Name == "A" || s.Task.Name == "F") && s.Index == 1
	})
	dq, err := core.RunDVQ(sys, core.DVQOptions{M: 2, Yield: y})
	if err != nil {
		t.Fatal(err)
	}
	jobs := Jobs(dq)
	// A,B,C (wt 1/6): 2 jobs each over horizon 12; D,E,F (wt 1/2): 6 each.
	if len(jobs) != 3*2+3*6 {
		t.Fatalf("jobs = %d, want 24", len(jobs))
	}
	// Subtask F_2's tardiness (3/4) is inside job 2 of F (deadline 4).
	found := false
	for _, j := range jobs {
		if j.Task.Name == "F" && j.Job == 2 {
			found = true
			if !j.Tardiness.Equal(rat.New(3, 4)) {
				t.Errorf("job tardiness = %s, want 3/4", j.Tardiness)
			}
		}
		if j.Deadline != j.Job*j.Task.W.P {
			t.Errorf("%s job %d deadline %d", j.Task, j.Job, j.Deadline)
		}
	}
	if !found {
		t.Fatal("F's job 2 missing")
	}
	if got := MaxJobTardiness(dq); !got.Equal(rat.New(3, 4)) {
		t.Errorf("max job tardiness = %s", got)
	}
}

// Job tardiness never exceeds subtask tardiness bounds: jobs inherit the
// one-quantum guarantee (the job deadline is its last subtask's deadline).
func TestJobTardinessInheritsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 15; trial++ {
		m := 2 + rng.Intn(2)
		q := int64(6 + rng.Intn(6))
		n := m + 1 + rng.Intn(m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		sys := model.Periodic(ws, 2*q)
		dq, err := core.RunDVQ(sys, core.DVQOptions{M: m, Yield: gen.UniformYield(int64(trial), 8)})
		if err != nil {
			t.Fatal(err)
		}
		if got := MaxJobTardiness(dq); rat.One.Less(got) {
			t.Fatalf("trial %d: job tardiness %s > 1", trial, got)
		}
	}
}
