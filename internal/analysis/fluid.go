package analysis

import (
	"fmt"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// The fluid (ideal processor-sharing) schedule underlying Pfairness, in
// its per-subtask IS/GIS form (Srinivasan & Anderson): a task of weight w
// executes at rate w, so its i-th quantum of work — subtask T_i — is
// delivered during [(i−1)/w + θ, i/w + θ). FluidAllocation integrates that
// rate over one slot; summing over a task's released subtasks gives the
// ideal allocation that lag compares against. For synchronous periodic
// systems this reduces exactly to wt·t (the quantity IdealLag uses), but
// unlike IdealLag it remains meaningful for IS windows and GIS omissions.

// FluidAllocation returns the ideal allocation subtask sub receives in
// slot u: wt(T) × |[max(fluidStart, u), min(fluidEnd, u+1))|, where the
// fluid interval of T_i is [θ + (i−1)/w, θ + i/w).
func FluidAllocation(sub *model.Subtask, u int64) rat.Rat {
	w := sub.Task.W.Rat()
	theta := rat.FromInt(sub.Theta)
	start := theta.Add(rat.FromInt(sub.Index - 1).Div(w))
	end := theta.Add(rat.FromInt(sub.Index).Div(w))
	lo := rat.Max(start, rat.FromInt(u))
	hi := rat.Min(end, rat.FromInt(u+1))
	if !lo.Less(hi) {
		return rat.Zero
	}
	return hi.Sub(lo).Mul(w)
}

// FluidUpTo returns the total ideal allocation of task's released subtasks
// over [0, t).
func FluidUpTo(sys *model.System, task *model.Task, t int64) rat.Rat {
	total := rat.Zero
	for _, sub := range sys.Subtasks(task) {
		for u := int64(0); u < t; u++ {
			total = total.Add(FluidAllocation(sub, u))
		}
	}
	return total
}

// ISLag returns the IS/GIS lag of task at integral time t in s: the fluid
// allocation of its released subtasks over [0, t) minus the quanta it
// actually received in slots before t.
func ISLag(s *sched.Schedule, task *model.Task, t int64) rat.Rat {
	allocated := int64(0)
	for _, sub := range s.Sys.Subtasks(task) {
		if a := s.Of(sub); a != nil && a.Slot() < t {
			allocated++
		}
	}
	return FluidUpTo(s.Sys, task, t).Sub(rat.FromInt(allocated))
}

// CheckISPfairness verifies the generalized Pfairness condition
// −1 < lag(T, t) < 1 at every integral time for every task, using the
// per-subtask fluid schedule. It applies to schedules whose subtasks all
// run inside their PF-windows [r, d) — early-released subtasks (e < r,
// ER-fair) legitimately drive lag below −1 and are out of scope here.
func CheckISPfairness(s *sched.Schedule) error {
	one := rat.One
	horizon := s.Makespan().Ceil()
	for _, task := range s.Sys.Tasks {
		for t := int64(0); t <= horizon; t++ {
			l := ISLag(s, task, t)
			if !l.Less(one) || !l.Neg().Less(one) {
				return fmt.Errorf("analysis: IS lag(%s, %d) = %s outside (−1, 1)", task, t, l)
			}
		}
	}
	return nil
}
