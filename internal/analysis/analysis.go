// Package analysis computes the quantitative measures used in the
// experiments: lag functions (the classical Pfair fairness measure),
// per-slot load, quantum-residue waste (the SFQ inefficiency the paper's
// DVQ model reclaims), response times, and roll-up summaries.
package analysis

import (
	"fmt"
	"io"
	"sort"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// IdealLag returns lag(T, t) = wt(T)·t − allocated(T, [0, t)) for a
// slot-based schedule, counting one quantum per scheduled subtask in slots
// before t. For synchronous periodic task systems, a schedule is Pfair iff
// −1 < lag(T, t) < 1 for all T and integral t.
func IdealLag(s *sched.Schedule, task *model.Task, t int64) rat.Rat {
	allocated := int64(0)
	for _, sub := range s.Sys.Subtasks(task) {
		if a := s.Of(sub); a != nil && a.Slot() < t {
			allocated++
		}
	}
	return task.W.Rat().Mul(rat.FromInt(t)).Sub(rat.FromInt(allocated))
}

// MaxAbsIdealLag returns the largest |lag(T, t)| over all tasks and all
// integral t up to the schedule's makespan.
func MaxAbsIdealLag(s *sched.Schedule) rat.Rat {
	m := rat.Zero
	horizon := s.Makespan().Ceil()
	for _, task := range s.Sys.Tasks {
		for t := int64(0); t <= horizon; t++ {
			l := IdealLag(s, task, t)
			if l.Sign() < 0 {
				l = l.Neg()
			}
			m = rat.Max(m, l)
		}
	}
	return m
}

// CheckPfairness verifies the classical Pfairness condition |lag| < 1 at
// every integral time for every task. It is meaningful for synchronous
// periodic task systems (no offsets, no omissions); for IS/GIS systems the
// ideal allocation is defined against released subtasks instead, and this
// check is skipped with an error describing why.
func CheckPfairness(s *sched.Schedule) error {
	for _, task := range s.Sys.Tasks {
		for k, sub := range s.Sys.Subtasks(task) {
			if sub.Theta != 0 || sub.Index != int64(k+1) {
				return fmt.Errorf("analysis: %s is not synchronous periodic (θ=%d, index %d at position %d)",
					task, sub.Theta, sub.Index, k)
			}
		}
	}
	one := rat.One
	horizon := s.Makespan().Ceil()
	for _, task := range s.Sys.Tasks {
		for t := int64(0); t <= horizon; t++ {
			l := IdealLag(s, task, t)
			if !l.Less(one) || !l.Neg().Less(one) {
				return fmt.Errorf("analysis: lag(%s, %d) = %s outside (−1, 1)", task, t, l)
			}
		}
	}
	return nil
}

// SlotLoad returns the number of subtasks whose quantum begins in slot t.
func SlotLoad(s *sched.Schedule, t int64) int { return len(s.InSlot(t)) }

// QuantumResidue returns Σ (1 − c(T_i)): the processor time stranded by
// early-yielding subtasks under the SFQ model (each occupies a full slot
// regardless of its actual cost). Under the DVQ model this time is
// reclaimed, so the residue of an SFQ schedule is exactly the reclaimable
// waste the paper's model eliminates.
func QuantumResidue(s *sched.Schedule) rat.Rat {
	w := rat.Zero
	for _, a := range s.Assignments() {
		w = w.Add(rat.One.Sub(a.Cost))
	}
	return w
}

// ResponseStats aggregates completion − release over all subtasks.
type ResponseStats struct {
	Mean, Max float64
}

// Responses computes subtask response times (finish − release).
func Responses(s *sched.Schedule) ResponseStats {
	var st ResponseStats
	n := 0
	for _, a := range s.Assignments() {
		r := a.Finish().Sub(rat.FromInt(a.Sub.Release())).Float64()
		st.Mean += r
		if r > st.Max {
			st.Max = r
		}
		n++
	}
	if n > 0 {
		st.Mean /= float64(n)
	}
	return st
}

// Summary rolls up the measures reported by the experiment tables.
type Summary struct {
	Algo, Model  string
	Subtasks     int
	Misses       int
	MaxTardiness rat.Rat
	MeanTardy    float64 // mean tardiness over all subtasks
	MeanResponse float64
	Makespan     rat.Rat
	BusyFraction float64 // busy time / (M × makespan)
	Residue      rat.Rat // SFQ quantum residue (0 under DVQ semantics)
}

// Summarize computes a Summary for a complete schedule.
func Summarize(s *sched.Schedule) Summary {
	sum := Summary{
		Algo:         s.Algo,
		Model:        s.Model,
		Subtasks:     s.Len(),
		Misses:       s.MissCount(),
		MaxTardiness: s.MaxTardiness(),
		Makespan:     s.Makespan(),
		Residue:      QuantumResidue(s),
	}
	tardy := 0.0
	for _, a := range s.Assignments() {
		tardy += s.Tardiness(a.Sub).Float64()
	}
	if s.Len() > 0 {
		sum.MeanTardy = tardy / float64(s.Len())
	}
	sum.MeanResponse = Responses(s).Mean
	if s.Makespan().Sign() > 0 {
		sum.BusyFraction = s.BusyTime().Float64() / (float64(s.M) * s.Makespan().Float64())
	}
	return sum
}

// MissRate returns Misses / Subtasks (0 for empty schedules).
func (s Summary) MissRate() float64 {
	if s.Subtasks == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Subtasks)
}

// Migrations counts inter-processor migrations: consecutive subtasks of a
// task executing on different processors. Pfair allows migration freely
// ("interprocessor migration is allowed but parallelism is not"); this
// counts how often the schedulers actually use it, the cost Holman &
// Anderson's staggering and task-affinity heuristics try to contain.
func Migrations(s *sched.Schedule) int {
	n := 0
	for _, task := range s.Sys.Tasks {
		prev := -1
		for _, sub := range s.Sys.Subtasks(task) {
			a := s.Of(sub)
			if a == nil {
				continue
			}
			if prev >= 0 && a.Proc != prev {
				n++
			}
			prev = a.Proc
		}
	}
	return n
}

// LagPoint is one sample of a task's lag trajectory.
type LagPoint struct {
	T   int64
	Lag rat.Rat
}

// LagSeries samples lag(T, t) at every integral time up to the makespan —
// the fluid-schedule deviation curve that Pfairness bounds to (−1, 1).
func LagSeries(s *sched.Schedule, task *model.Task) []LagPoint {
	horizon := s.Makespan().Ceil()
	out := make([]LagPoint, 0, horizon+1)
	for t := int64(0); t <= horizon; t++ {
		out = append(out, LagPoint{T: t, Lag: IdealLag(s, task, t)})
	}
	return out
}

// WriteLagCSV emits the lag trajectories of every task as CSV rows
// (task,time,lag) for external plotting.
func WriteLagCSV(w io.Writer, s *sched.Schedule) error {
	if _, err := fmt.Fprintln(w, "task,time,lag"); err != nil {
		return err
	}
	for _, task := range s.Sys.Tasks {
		for _, p := range LagSeries(s, task) {
			if _, err := fmt.Fprintf(w, "%s,%d,%s\n", task, p.T, p.Lag); err != nil {
				return err
			}
		}
	}
	return nil
}

// Histogram buckets subtask tardiness into eighths of a quantum:
// bucket k counts tardiness in (k/8, (k+1)/8], with bucket 0 also holding
// the on-time subtasks and bucket 8 anything above 7/8 (which by the
// paper's bounds never exceeds 1).
type Histogram struct {
	Buckets [9]int
	Total   int
}

// TardinessHistogram buckets every scheduled subtask of s.
func TardinessHistogram(s *sched.Schedule) Histogram {
	var h Histogram
	eighth := rat.New(1, 8)
	for _, a := range s.Assignments() {
		h.Total++
		t := s.Tardiness(a.Sub)
		if t.Sign() == 0 {
			h.Buckets[0]++
			continue
		}
		k := 0
		bound := eighth
		for k < 8 && bound.Less(t) {
			k++
			bound = bound.Add(eighth)
		}
		h.Buckets[k]++
	}
	return h
}

// Merge adds other's counts into h.
func (h *Histogram) Merge(other Histogram) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Total += other.Total
}

// String renders the histogram as one compact line.
func (h Histogram) String() string {
	out := fmt.Sprintf("n=%d [0:%d", h.Total, h.Buckets[0])
	for k := 1; k < len(h.Buckets); k++ {
		out += fmt.Sprintf(" ≤%d/8:%d", k, h.Buckets[k])
	}
	return out + "]"
}

// JobStat is one job's outcome: the job of task T with index j completes
// when its last subtask does, and its deadline is the sporadic job
// deadline θ + j·P (meaningful when the job's subtasks share one offset,
// as produced by model.AddSporadic, the online executive and periodic
// construction).
type JobStat struct {
	Task      *model.Task
	Job       int64
	Deadline  int64
	Finish    rat.Rat
	Tardiness rat.Rat
}

// Jobs aggregates per-job completion statistics from a schedule. Jobs with
// unscheduled subtasks are skipped.
func Jobs(s *sched.Schedule) []JobStat {
	var out []JobStat
	for _, task := range s.Sys.Tasks {
		perJob := map[int64]*JobStat{}
		complete := map[int64]int64{}
		for _, sub := range s.Sys.Subtasks(task) {
			a := s.Of(sub)
			if a == nil {
				continue
			}
			j := sub.JobIndex()
			complete[j]++
			st, ok := perJob[j]
			if !ok {
				st = &JobStat{Task: task, Job: j, Deadline: sub.JobDeadline()}
				perJob[j] = st
			}
			if st.Finish.Less(a.Finish()) {
				st.Finish = a.Finish()
			}
		}
		for j, st := range perJob {
			// GIS omissions mean a job may have fewer than E subtasks
			// released; the job completes when its released subtasks do.
			if complete[j] == 0 {
				continue
			}
			st.Tardiness = rat.Max(rat.Zero, st.Finish.Sub(rat.FromInt(st.Deadline)))
			out = append(out, *st)
		}
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Task.ID != out[k].Task.ID {
			return out[i].Task.ID < out[k].Task.ID
		}
		return out[i].Job < out[k].Job
	})
	return out
}

// MaxJobTardiness returns the largest per-job tardiness (0 if no jobs).
func MaxJobTardiness(s *sched.Schedule) rat.Rat {
	m := rat.Zero
	for _, j := range Jobs(s) {
		m = rat.Max(m, j.Tardiness)
	}
	return m
}
