package server

import (
	"errors"
	"fmt"

	"desyncpfair/internal/admission"
	"desyncpfair/internal/model"
	"desyncpfair/internal/obs"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/wal"
)

// ErrRingFull reports that a tenant's submit ring is at capacity: the
// single-writer loop is applying commands as fast as it can and the
// bounded MPSC ring refuses to queue more. It maps to HTTP 429 — explicit
// backpressure, distinct from a failure. Clients retry; load generators
// count it separately from errors.
var ErrRingFull = errors.New("server: tenant submit ring full")

// defaultSubmitRing is the per-tenant command-ring capacity when none is
// configured (Options.SubmitRing / pfaird -submit-ring).
const defaultSubmitRing = 256

// cmdKind discriminates the commands the tenant loop executes.
type cmdKind int

const (
	cmdSubmit cmdKind = iota
	cmdSubmitBatch
	cmdRegister
	cmdUnregister
	cmdAdvance
	cmdDrain
	cmdResize
	// cmdCtl runs an arbitrary closure on the loop goroutine with the
	// loop-owned state quiesced (checkpointing, the pre-delete flush).
	// Control commands arrive on their own unbuffered channel, never the
	// ring, so they cannot be starved by ring capacity.
	cmdCtl
	// cmdStop terminates the loop. Sent exactly once, by finishClose.
	cmdStop
)

// command is one queued request for a tenant's event loop. The HTTP
// handler validates the wire input, enqueues the command, and blocks on
// done; the loop journals, applies, and completes it. done has capacity
// 1 so the loop never blocks on a completion send.
type command struct {
	kind cmdKind

	submit    SubmitJobRequest   // cmdSubmit
	batch     []SubmitJobRequest // cmdSubmitBatch
	name      string             // cmdRegister / cmdUnregister
	w         model.Weight       // cmdRegister
	until, by string             // cmdAdvance
	resizeM   int                // cmdResize: target processor count
	drain     bool               // cmdResize: queue an infeasible shrink
	fn        func()             // cmdCtl

	done chan cmdResult
}

// cmdResult carries a command's outcome back to the enqueuing handler.
type cmdResult struct {
	submit SubmitJobResponse
	subs   SubmitJobsResponse
	adv    AdvanceResponse
	dec    admission.Decision
	resize ResizeResponse
	commit wal.Commit
	err    error
}

// journalHooks bundles the durability callbacks; the tenant holds them
// behind an atomic pointer so SetJournal needs no lock against the loop.
type journalHooks struct {
	append func(wal.Record) (wal.Commit, error)
	batch  func([]wal.Record) (wal.Commit, error)
	fail   func(error)
}

// exec enqueues c on the submit ring and waits for the loop to complete
// it. The enqueue is non-blocking: a full ring is reported as ErrRingFull
// (HTTP 429) instead of stalling the handler, which both bounds the
// tenant's queueing and — together with the closing gate — guarantees no
// sender is ever left stranded on a ring nobody drains.
func (t *Tenant) exec(c *command) cmdResult {
	c.done = make(chan cmdResult, 1)
	t.ringMu.RLock()
	if t.closing.Load() {
		t.ringMu.RUnlock()
		return cmdResult{err: errTenantGone}
	}
	select {
	case t.ring <- c:
		t.ringMu.RUnlock()
	default:
		t.ringMu.RUnlock()
		return cmdResult{err: ErrRingFull}
	}
	return <-c.done
}

// ctlExec runs c on the loop via the control channel (checkpoints and the
// close protocol; not subject to ring capacity). If the loop has already
// stopped, it reports errTenantGone instead of blocking forever.
func (t *Tenant) ctlExec(c *command) cmdResult {
	c.done = make(chan cmdResult, 1)
	select {
	case t.ctl <- c:
		return <-c.done
	case <-t.closed:
		return cmdResult{err: errTenantGone}
	}
}

// runLoop is the tenant's single-writer event loop: the only goroutine
// that touches the executive, the admission controller, the task map, and
// the dispatch log after start(). It drains the ring in opportunistic
// batches (coalescing consecutive submits into one journal frame group),
// applies each command, and publishes an immutable snapshot that every
// read path — /metrics, Info, stream replay, recovery verification —
// loads without synchronizing with this goroutine. The ring is biased
// over the control channel so a control barrier observes a fully drained
// backlog.
func (t *Tenant) runLoop() {
	batch := make([]*command, 0, 64)
	for {
		batch = batch[:0]
		var first *command
		select {
		case first = <-t.ring:
		default:
			select {
			case first = <-t.ring:
			case first = <-t.ctl:
			}
		}
		batch = append(batch, first)
		if first.kind != cmdCtl && first.kind != cmdStop {
			for len(batch) < cap(batch) {
				select {
				case c := <-t.ring:
					batch = append(batch, c)
				default:
					goto drained
				}
			}
		}
	drained:
		for i := 0; i < len(batch); i++ {
			c := batch[i]
			if c.kind == cmdSubmit {
				j := i
				for j+1 < len(batch) && batch[j+1].kind == cmdSubmit {
					j++
				}
				t.processSubmitRun(batch[i : j+1])
				i = j
				continue
			}
			if t.process(c) {
				return
			}
		}
	}
}

// process executes one non-submit command and reports whether the loop
// should stop.
func (t *Tenant) process(c *command) (stop bool) {
	switch c.kind {
	case cmdSubmitBatch:
		var res cmdResult
		res.subs, res.commit, res.err = t.applySubmitBatch(c.batch)
		t.finish(c, res)
	case cmdRegister:
		var res cmdResult
		res.dec, res.commit, res.err = t.applyRegister(c.name, c.w)
		t.finish(c, res)
	case cmdUnregister:
		var res cmdResult
		res.commit, res.err = t.applyUnregister(c.name)
		t.finish(c, res)
	case cmdAdvance:
		var res cmdResult
		res.adv, res.commit, res.err = t.applyAdvance(c.until, c.by)
		t.finish(c, res)
	case cmdDrain:
		var res cmdResult
		res.adv, res.commit, res.err = t.applyDrain()
		t.finish(c, res)
	case cmdResize:
		var res cmdResult
		res.resize, res.commit, res.err = t.applyResize(c.resizeM, c.drain)
		t.finish(c, res)
	case cmdCtl:
		c.fn()
		c.done <- cmdResult{}
	case cmdStop:
		close(t.closed)
		// Commands that slipped into the ring before the closing gate and
		// were not flushed fail cleanly rather than hang their senders.
		for {
			select {
			case q := <-t.ring:
				q.done <- cmdResult{err: errTenantGone}
			default:
				c.done <- cmdResult{}
				return true
			}
		}
	}
	return false
}

// finish flushes buffered dispatch records, publishes the post-command
// snapshot, wakes stream followers if the log grew, and completes c.
func (t *Tenant) finish(c *command, res cmdResult) {
	t.flushAfterApply()
	if t.publish() {
		t.pingSubs()
	}
	c.done <- res
}

// flushAfterApply journals the dispatch records the last apply buffered
// as one frame group (they follow their command record in the journal,
// preceding the next command).
func (t *Tenant) flushAfterApply() {
	if len(t.pendDisp) == 0 {
		return
	}
	if h := t.hooks.Load(); h != nil {
		// Dispatch records are verification-only: recovery regenerates
		// decisions by replaying commands and checks them against these.
		// An append error here already wedged the log, so the following
		// command will fail loudly; nothing to do with it now.
		_, _ = h.batch(t.pendDisp)
	}
	t.pendDisp = t.pendDisp[:0]
}

// processSubmitRun executes a maximal run of consecutive single submits
// drained from the ring in one go: each validates independently against
// the current state (submits only add pending work and never move virtual
// time, so independent validity implies sequential validity — the same
// argument the batch endpoint relies on), the valid ones journal as ONE
// frame group, and all of them share one commit and therefore one fsync.
// This is where the MPSC ring buys its throughput: under concurrent
// clients with FsyncEvery=1, a drained run of N submits costs one
// buffered write and one group-commit wait instead of N.
func (t *Tenant) processSubmitRun(run []*command) {
	if len(run) == 1 {
		// The common sequential case keeps the exact single-submit path
		// (and its pinned trace-event sequence).
		var res cmdResult
		res.submit, res.commit, res.err = t.applySubmit(run[0].submit)
		t.finish(run[0], res)
		return
	}
	type val struct {
		c    *command
		task *model.Task
		when rat.Rat
	}
	valid := make([]val, 0, len(run))
	recs := make([]wal.Record, 0, len(run))
	// Keyed retries never reach the group journal: a key already applied
	// answers from the idempotency memory, and a key repeated *within*
	// this drained run defers to the singleton path after the run applies
	// (which then dedupes against the first instance, or re-validates if
	// the first instance failed).
	var deferred []*command
	runKeys := map[string]struct{}{}
	for _, c := range run {
		if resp, seen := t.idemSeen(c.submit.Key); seen {
			c.done <- cmdResult{submit: resp}
			continue
		}
		if c.submit.Key != "" {
			if _, dup := runKeys[c.submit.Key]; dup {
				deferred = append(deferred, c)
				continue
			}
			runKeys[c.submit.Key] = struct{}{}
		}
		task, when, err := t.validateSubmit(c.submit)
		if err != nil {
			c.done <- cmdResult{err: err}
			continue
		}
		valid = append(valid, val{c, task, when})
		recs = append(recs, wal.Record{
			Op: wal.OpJobSubmit, Tenant: t.id,
			Name: c.submit.Task, At: when.String(), Earliness: c.submit.Earliness,
			Key: c.submit.Key,
		})
	}
	if len(valid) == 0 {
		for _, c := range deferred {
			var res cmdResult
			res.submit, res.commit, res.err = t.applySubmit(c.submit)
			t.finish(c, res)
		}
		return
	}
	var commit wal.Commit
	h := t.hooks.Load()
	if h != nil {
		c, jerr := h.batch(recs)
		if jerr != nil {
			t.traceBegin(wal.OpJobSubmit, fmt.Sprintf("run[%d]", len(valid)), "")
			t.traceFail(obs.StageWALAppend, jerr)
			for _, v := range valid {
				v.c.done <- cmdResult{err: jerr}
			}
			for _, c := range deferred {
				c.done <- cmdResult{err: jerr}
			}
			return
		}
		commit = c
	}
	for _, v := range valid {
		t.traceBegin(wal.OpJobSubmit, v.c.submit.Task, v.when.String())
		if h != nil {
			t.traceStage(obs.StageWALAppend)
		}
		if err := t.applySubmitJob(v.task, v.when, v.c.submit.Earliness); err != nil {
			// Unreachable after pre-validation; the record is journaled
			// but not applied, so wedge — same contract as the batch
			// endpoint.
			if h != nil && h.fail != nil {
				h.fail(err)
			}
			t.traceFail(obs.StageApply, err)
			v.c.done <- cmdResult{err: err}
			continue
		}
		t.traceStage(obs.StageApply)
		resp := SubmitJobResponse{At: v.when.String(), Pending: t.ex.Pending()}
		t.idemRemember(v.c.submit.Key, resp)
		v.c.done <- cmdResult{submit: resp, commit: commit}
	}
	for _, c := range deferred {
		var res cmdResult
		res.submit, res.commit, res.err = t.applySubmit(c.submit)
		c.done <- res
	}
	t.flushAfterApply()
	if t.publish() {
		t.pingSubs()
	}
}

// --- close protocol ---
//
// Deleting a tenant must journal its OpTenantDelete *after* every command
// already accepted into the ring (journal order is replay order), and no
// command may be accepted afterwards. The sequence:
//
//  1. beginClose wins the closing CAS and passes a ringMu write barrier:
//     after it returns, every in-flight exec has either enqueued or seen
//     closing and bailed — the ring can only shrink.
//  2. flushBacklog runs a control command that drains the ring to empty
//     through the normal paths, so everything accepted is journaled and
//     applied.
//  3. The caller journals the delete record (under its own locks).
//  4. finishClose sends cmdStop; the loop closes t.closed (ending streams
//     and unblocking control senders) and exits.
//
// abortClose reopens the gate if step 3 fails — the tenant then remains,
// fully consistent, as if the delete never happened.

func (t *Tenant) beginClose() bool {
	if !t.closing.CompareAndSwap(false, true) {
		return false
	}
	t.ringMu.Lock()
	//lint:ignore SA2001 write-lock barrier: flushes readers mid-enqueue.
	t.ringMu.Unlock()
	return true
}

func (t *Tenant) flushBacklog() {
	t.ctlExec(&command{kind: cmdCtl, fn: func() {
		for {
			select {
			case c := <-t.ring:
				if c.kind == cmdSubmit {
					t.processSubmitRun([]*command{c})
				} else {
					t.process(c)
				}
			default:
				return
			}
		}
	}})
}

func (t *Tenant) abortClose() {
	t.closing.Store(false)
}

func (t *Tenant) finishClose() {
	t.ctlExec(&command{kind: cmdStop})
}

// Close marks the tenant deleted: its backlog is flushed, pending streams
// end, the loop stops, and subsequent commands fail errTenantGone.
// Idempotent; concurrent callers wait for the first to finish.
func (t *Tenant) Close() {
	if !t.beginClose() {
		<-t.closed
		return
	}
	t.flushBacklog()
	t.finishClose()
}

// Closed returns a channel closed when the tenant is deleted.
func (t *Tenant) Closed() <-chan struct{} { return t.closed }
