package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"desyncpfair/internal/admission"
	"desyncpfair/internal/model"
	"desyncpfair/internal/obs"
	"desyncpfair/internal/online"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/wal"
)

// Options configures a durable server (Open). A server without durability
// is created with New instead.
type Options struct {
	// DataDir holds the write-ahead log and snapshots.
	DataDir string
	// FsyncEvery group-commits the journal: one fsync per this many
	// records (≤ 1 syncs every record).
	FsyncEvery int
	// FsyncMaxDelay bounds how long any record may sit unsynced when
	// FsyncEvery > 1: a timer flushes the partial tail group so an idle
	// log always converges to durable. 0 selects the 100ms default; a
	// negative value disables the timer (tests with fake clocks use this
	// to keep fsync counts deterministic).
	FsyncMaxDelay time.Duration
	// SnapshotEvery folds the log into a fresh snapshot after this many
	// records. Defaults to 4096.
	SnapshotEvery int
	// FS overrides the filesystem (internal/faultfs in the recovery
	// suite); nil selects the real one.
	FS wal.FS
	// Clock is the observability clock (request timing, histograms, trace
	// timestamps, journal timings). Nil selects the real clock; tests
	// inject an obs.Fake to make every exposed duration exact.
	Clock obs.Clock
	// TraceBuffer is the per-tenant trace-ring capacity in events.
	// Defaults to 4096.
	TraceBuffer int
	// SubmitRing is the per-tenant command-ring capacity. Defaults to 256.
	// A full ring surfaces as HTTP 429 backpressure.
	SubmitRing int
	// Follower opens the server as a read-only replica: mutating handlers
	// answer 503, the tenant journal hooks are disarmed (state changes
	// arrive pre-journaled from the leader via ApplyReplicated), and
	// /healthz reports 503 "bootstrapping" until the replication tailer
	// marks the node caught up. Promote() flips it writable.
	Follower bool
	// StreamMaxLag bounds how many records a following dispatch stream may
	// fall behind before it is evicted with an in-band 410 control line
	// (slow consumers must not pin the process). 0 selects the default
	// (DefaultStreamMaxLag); negative disables eviction. Replication
	// streams are never evicted — followers block instead.
	StreamMaxLag int64
	// StreamStallTimeout bounds how long one streamed write may block on a
	// wedged client before the connection is severed. 0 selects the
	// default (DefaultStreamStall); negative disables the deadline.
	StreamStallTimeout time.Duration
}

// RecoveryInfo reports what Open rebuilt from disk; /healthz serves it.
type RecoveryInfo struct {
	Durable     bool   `json:"durable"`
	SnapshotLSN uint64 `json:"snapshotLSN"`
	Tenants     int    `json:"tenants"`
	// RecordsReplayed counts all log-tail records applied over the
	// snapshot; CommandsReplayed the state-mutating subset.
	RecordsReplayed  int `json:"recordsReplayed"`
	CommandsReplayed int `json:"commandsReplayed"`
	// Commands is the total command count reflected in the recovered
	// state (snapshot + replayed tail). It resumes the live counter.
	Commands uint64 `json:"commands"`
	// TruncatedBytes were discarded at torn segment tails — expected
	// after a crash.
	TruncatedBytes int64 `json:"truncatedBytes"`
	// DispatchMismatches counts journaled dispatch records that did not
	// match the regenerated decision, and ReplayErrors commands that
	// failed to re-apply. Both are 0 on every healthy recovery; non-zero
	// values mean the journal and the executive disagree.
	DispatchMismatches int `json:"dispatchMismatches"`
	ReplayErrors       int `json:"replayErrors"`
}

// snapshotPayload is the wal snapshot body: the full tenant registry plus
// the command counter it corresponds to.
type snapshotPayload struct {
	Commands uint64             `json:"commands"`
	Tenants  []tenantCheckpoint `json:"tenants,omitempty"`
}

// tenantCheckpoint images one tenant: its executive micro-state plus the
// dispatch log (which ?from= stream replay serves) and counters.
type tenantCheckpoint struct {
	ID     string `json:"id"`
	Reject int64  `json:"rejections"`
	MaxTar string `json:"maxTardiness"`
	// PendingM is a queued drain-mode shrink target still waiting for
	// utilization to fall (0 when none). The current M travels in Exec.
	PendingM int               `json:"pendingM,omitempty"`
	Log      []DispatchEvent   `json:"log,omitempty"`
	Exec     online.Checkpoint `json:"exec"`
	// Idem preserves the idempotency-key memory across snapshots, in FIFO
	// order, so a keyed retry still dedupes after a restart that replays
	// nothing.
	Idem []idemEntry `json:"idem,omitempty"`
}

// idemEntry is one remembered keyed submit in a tenant checkpoint.
type idemEntry struct {
	Key     string `json:"key"`
	At      string `json:"at"`
	Pending int    `json:"pending"`
}

// checkpoint snapshots the tenant by running on its loop goroutine via a
// control command, which quiesces every loop-owned field (the executive's
// Checkpoint must run on its single goroutine). Compact holds the opMu
// write side, so no handler can be mid-command: the ring is empty and the
// control command runs immediately. A tenant deleted concurrently yields
// a zero checkpoint; the caller skips it.
func (t *Tenant) checkpoint() tenantCheckpoint {
	var cp tenantCheckpoint
	res := t.ctlExec(&command{kind: cmdCtl, fn: func() {
		cp = tenantCheckpoint{
			ID:       t.id,
			Reject:   t.reject,
			MaxTar:   t.maxTar.String(),
			PendingM: t.ctrl.PendingM(),
			Log:      append([]DispatchEvent(nil), t.log...),
			Exec:     t.ex.Checkpoint(),
		}
		for _, k := range t.idemQ {
			r := t.idem[k]
			cp.Idem = append(cp.Idem, idemEntry{Key: k, At: r.At, Pending: r.Pending})
		}
	}})
	if res.err != nil {
		return tenantCheckpoint{}
	}
	return cp
}

// restoreTenant rebuilds a tenant from its checkpoint. The admission
// controller is reconstructed by re-admitting every active task — the
// checkpoint's validated Σwt ≤ M guarantees each admission succeeds. The
// loop-owned fields are finished before start(), while no loop can be
// running.
func restoreTenant(cp tenantCheckpoint, ringSize int) (*Tenant, error) {
	if cp.ID == "" {
		return nil, fmt.Errorf("server: tenant checkpoint without id")
	}
	ex, err := online.Restore(cp.Exec)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: %v", cp.ID, err)
	}
	maxTar, err := rat.Parse(cp.MaxTar)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q maxTardiness: %v", cp.ID, err)
	}
	for i, ev := range cp.Log {
		if ev.Seq != int64(i) {
			return nil, fmt.Errorf("server: tenant %q dispatch log has seq %d at position %d", cp.ID, ev.Seq, i)
		}
	}
	t := newTenantCore(cp.ID, cp.Exec.Policy, cp.Exec.M, ex, admission.NewController(cp.Exec.M), ringSize)
	t.installLog(cp.Log)
	t.maxTar = maxTar
	t.reject = cp.Reject
	for _, e := range cp.Idem {
		t.idemRemember(e.Key, SubmitJobResponse{At: e.At, Pending: e.Pending})
	}
	for _, task := range ex.System().Tasks {
		if !ex.Active(task) {
			continue
		}
		d, err := t.ctrl.Register(task.Name, task.W)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q re-admitting %q: %v", cp.ID, task.Name, err)
		}
		if !d.Admitted {
			return nil, fmt.Errorf("server: tenant %q re-admitting %q: rejected (%s)", cp.ID, task.Name, d.Reason)
		}
		t.tasks[task.Name] = task
	}
	if err := t.ctrl.RestorePendingResize(cp.PendingM); err != nil {
		return nil, fmt.Errorf("server: tenant %q: %v", cp.ID, err)
	}
	t.start()
	return t, nil
}

// Open creates a durable server over opts.DataDir: it loads the latest
// snapshot, replays the journal tail through the real tenant code paths
// (the executive is deterministic, so replay regenerates the exact
// dispatch decisions the pre-crash server made — and verifies them against
// the journaled dispatch records), then folds the result into a fresh
// snapshot so the next boot starts from a compact directory.
func Open(opts Options) (*Server, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("server: Open needs a data dir")
	}
	snapEvery := opts.SnapshotEvery
	if snapEvery == 0 {
		snapEvery = 4096
	}
	maxDelay := opts.FsyncMaxDelay
	switch {
	case maxDelay == 0:
		maxDelay = 100 * time.Millisecond
	case maxDelay < 0:
		maxDelay = 0 // disabled
	}
	s := New()
	s.SetClock(opts.Clock)
	s.SetTraceBuffer(opts.TraceBuffer)
	s.SetSubmitRing(opts.SubmitRing)
	s.SetStreamPolicy(opts.StreamMaxLag, opts.StreamStallTimeout)
	l, rec, err := wal.Open(opts.DataDir, wal.Options{
		FS: opts.FS, FsyncEvery: opts.FsyncEvery, FsyncMaxDelay: maxDelay,
		SnapshotEvery: snapEvery,
		Now:           s.obs.clock.Now, Timings: walTimings{s.obs},
	})
	if err != nil {
		return nil, err
	}
	info := RecoveryInfo{
		Durable:        true,
		SnapshotLSN:    rec.SnapshotLSN,
		TruncatedBytes: rec.TruncatedBytes,
	}
	if rec.Snapshot != nil {
		var pay snapshotPayload
		if err := json.Unmarshal(rec.Snapshot, &pay); err != nil {
			l.Close()
			return nil, fmt.Errorf("server: snapshot payload: %v", err)
		}
		s.cmdSeq.Store(pay.Commands)
		for _, tc := range pay.Tenants {
			t, err := restoreTenant(tc, s.submitRing)
			if err != nil {
				l.Close()
				return nil, err
			}
			if _, err := s.addTenant(t); err != nil {
				t.Close()
				l.Close()
				return nil, err
			}
		}
	}
	for _, r := range rec.Records {
		s.applyRecord(r, &info)
	}
	info.Commands = s.cmdSeq.Load()
	info.Tenants = len(s.allTenants())

	// Arm durability only now: replay itself must not re-journal.
	s.wal = l
	s.recovery = &info
	for _, t := range s.allTenants() {
		t.SetJournal(s.journalRecord, s.journalBatch, s.failJournal)
	}
	s.appliedLSN.Store(l.WrittenLSN())
	if opts.Follower {
		// A follower applies records the leader already journaled: its
		// journal hooks stay disarmed (s.journaling false) and the node
		// reports bootstrapping until the replication tailer catches it up
		// to the leader's durable tip.
		s.role.Store(int32(RoleFollower))
		s.bootstrapping.Store(true)
		s.replLagLSN.Store(-1)
	} else {
		s.journaling.Store(true)
	}
	// Fold the replayed tail into a fresh snapshot so boot always starts
	// the journal from a compact directory.
	if err := s.compact(); err != nil {
		l.Close()
		return nil, fmt.Errorf("server: boot snapshot: %v", err)
	}
	return s, nil
}

// applyRecord replays one journal record during recovery. Command records
// re-apply through the same tenant methods that served them; dispatch
// records are verified against the regenerated decisions. Failures are
// counted, never fatal — a recovered server with non-zero counters is
// degraded, and /healthz says so.
func (s *Server) applyRecord(r wal.Record, info *RecoveryInfo) {
	info.RecordsReplayed++
	fail := func() { info.ReplayErrors++ }
	t := s.tenant(r.Tenant)
	switch r.Op {
	case wal.OpTenantCreate:
		nt, err := newTenant(r.Tenant, r.M, r.Policy, s.submitRing)
		if err == nil {
			if _, err = s.addTenant(nt); err != nil {
				nt.Close() // never installed; stop its loop goroutine
			}
		}
		if err != nil {
			fail()
			return
		}
	case wal.OpTenantDelete:
		if !s.dropTenant(r.Tenant) {
			fail()
			return
		}
	case wal.OpTaskRegister:
		if t == nil {
			fail()
			return
		}
		d, _, err := t.RegisterTask(r.Name, model.W(r.E, r.P))
		if err != nil || !d.Admitted {
			fail()
			return
		}
	case wal.OpTaskUnregister:
		if t == nil {
			fail()
			return
		}
		if _, err := t.UnregisterTask(r.Name); err != nil {
			fail()
			return
		}
	case wal.OpJobSubmit:
		if t == nil {
			fail()
			return
		}
		if _, _, err := t.SubmitJobReq(SubmitJobRequest{Task: r.Name, At: r.At, Earliness: r.Earliness, Key: r.Key}); err != nil {
			fail()
			return
		}
	case wal.OpAdvance:
		if t == nil {
			fail()
			return
		}
		if _, _, err := t.Advance(r.At, ""); err != nil {
			fail()
			return
		}
	case wal.OpDrain:
		if t == nil {
			fail()
			return
		}
		if _, _, err := t.Drain(); err != nil {
			fail()
			return
		}
	case wal.OpResize:
		if t == nil {
			fail()
			return
		}
		// A journaled resize was applied or queued on the pre-crash server;
		// replaying it against the same state must reproduce that outcome —
		// a rejection here means journal and state diverged.
		resp, _, err := t.Resize(r.M, r.Mode == "drain")
		if err != nil || resp.Outcome == admission.ResizeRejected.String() {
			fail()
			return
		}
	case wal.OpDispatch:
		if t == nil {
			info.DispatchMismatches++
			return
		}
		ev, ok := t.eventAt(r.DSeq)
		if !ok || ev.Task != r.Name || ev.Index != r.Index || ev.Finish != r.Finish {
			info.DispatchMismatches++
		}
		return // not a command; no cmdSeq bump
	case wal.OpTerm:
		// Leadership-change marker: no state to apply, no cmdSeq bump.
		return
	default:
		fail()
		return
	}
	s.cmdSeq.Add(1)
	info.CommandsReplayed++
}

// journalRecord is the tenants' durability hook: it *enqueues* the record
// (frame encode + buffered write, no fsync) and counts commands. The
// caller carries the returned commit out of its locks and waits on it via
// waitDurable before acking — compact's opMu quiesce still sees a cmdSeq
// consistent with applied state because enqueue and apply both happen
// under the tenant lock inside opMu's read side.
func (s *Server) journalRecord(r wal.Record) (wal.Commit, error) {
	if s.wal == nil || !s.journaling.Load() {
		// In-memory server, replay, or a follower applying replicated
		// records: the record is either not durable by design or already
		// journaled upstream — never append it again here.
		return wal.Commit{}, nil
	}
	c, err := s.wal.AppendAsync(r)
	if err != nil {
		return wal.Commit{}, err
	}
	if r.IsCommand() {
		s.cmdSeq.Add(1)
	}
	return c, nil
}

// journalBatch enqueues a frame group in one buffered write; the returned
// commit covers the whole batch, so N records ack after one fsync.
func (s *Server) journalBatch(rs []wal.Record) (wal.Commit, error) {
	if s.wal == nil || !s.journaling.Load() {
		return wal.Commit{}, nil
	}
	c, err := s.wal.AppendBatch(rs)
	if err != nil {
		return wal.Commit{}, err
	}
	n := uint64(0)
	for i := range rs {
		if rs[i].IsCommand() {
			n++
		}
	}
	if n > 0 {
		s.cmdSeq.Add(n)
	}
	return c, nil
}

// waitDurable blocks until the commit's record is covered by an fsync
// (group commit: the first waiter syncs for everyone queued behind it).
// Handlers call it after releasing opMu and every tenant lock, so a slow
// fsync stalls only the acking requests. A zero commit — in-memory
// server, non-journaled operation — returns immediately.
func (s *Server) waitDurable(c wal.Commit) error {
	if s.wal == nil || c.LSN == 0 {
		return nil
	}
	return s.wal.Wait(c)
}

// Recovery returns what Open rebuilt, or nil for a non-durable server.
func (s *Server) Recovery() *RecoveryInfo { return s.recovery }

// compact quiesces every mutating operation (opMu writer side), images the
// registry, and folds it into a fresh wal snapshot.
func (s *Server) compact() error {
	if s.wal == nil {
		return nil
	}
	s.opMu.Lock()
	defer s.opMu.Unlock()
	pay := snapshotPayload{Commands: s.cmdSeq.Load()}
	for _, t := range s.allTenants() {
		cp := t.checkpoint()
		if cp.ID == "" {
			continue // deleted while we walked the registry
		}
		pay.Tenants = append(pay.Tenants, cp)
	}
	buf, err := json.Marshal(pay)
	if err != nil {
		return err
	}
	return s.wal.Compact(buf)
}

// maybeCompact runs a snapshot when the journal says one is due. Called by
// mutating handlers after they release the opMu read side.
func (s *Server) maybeCompact() {
	if s.wal != nil && s.wal.ShouldCompact() {
		// A failed periodic snapshot is not fatal: the journal still has
		// every record, and the next mutation will retry.
		_ = s.compact()
	}
}

// Close gracefully stops a durable server: streams drain (Shutdown), a
// final snapshot captures the exact current state, and the journal closes.
// Safe on non-durable servers, where it is just Shutdown.
func (s *Server) Close() error {
	s.Shutdown()
	if s.wal == nil {
		return nil
	}
	err := s.compact()
	if errors.Is(err, wal.ErrWedged) {
		err = nil // already failed earlier; nothing more to preserve
	}
	// Stop every tenant loop after the final snapshot (checkpoint needs
	// the loops alive) and before the journal closes (the close flush may
	// still journal backlogged commands).
	for _, t := range s.allTenants() {
		t.Close()
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// WALStats exposes the journal counters for /metrics (zero for a
// non-durable server).
func (s *Server) WALStats() wal.Stats {
	if s.wal == nil {
		return wal.Stats{}
	}
	return s.wal.Stats()
}

// statusOf maps an operation error to its HTTP status: a wedged journal is
// the server's failure (503), a full submit ring is explicit backpressure
// (429, retryable), everything else keeps the handler's own fallback.
func statusOf(err error, fallback int) int {
	if errors.Is(err, wal.ErrWedged) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, ErrRingFull) {
		return http.StatusTooManyRequests
	}
	return fallback
}
