package server_test

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"desyncpfair/internal/client"
	"desyncpfair/internal/model"
	"desyncpfair/internal/server"
)

// TestShutdownDuringStreamLeavesRecoverableDir pins the graceful-shutdown
// edge the daemon hits on SIGTERM: a durable server is closed while a
// follower is blocked on a live NDJSON stream. The stream must end with a
// clean EOF after delivering a contiguous prefix of the dispatch log, and
// the data directory must reopen with nothing to replay and nothing lost.
func TestShutdownDuringStreamLeavesRecoverableDir(t *testing.T) {
	dir := t.TempDir()
	srv, err := server.Open(server.Options{DataDir: dir, FsyncEvery: 4, SnapshotEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	if _, err := c.CreateTenant(ctx, "t", 2, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterTask(ctx, "t", "w", model.W(1, 2)); err != nil {
		t.Fatal(err)
	}
	var produced int64
	for i := 0; i < 6; i++ {
		if _, err := c.SubmitJob(ctx, "t", "w", ""); err != nil {
			t.Fatal(err)
		}
		adv, err := c.AdvanceBy(ctx, "t", "1")
		if err != nil {
			t.Fatal(err)
		}
		produced += adv.Dispatched
	}
	if produced == 0 {
		t.Fatal("load produced no dispatches")
	}

	st, err := c.StreamDispatches(ctx, "t", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Consume the backlog, then close the server while the stream is
	// blocked waiting for live decisions.
	var got int64
	for got < produced {
		ev, err := st.Next()
		if err != nil {
			t.Fatalf("stream after %d events: %v", got, err)
		}
		if ev.Seq != got {
			t.Fatalf("stream delivered seq %d at position %d: not contiguous", ev.Seq, got)
		}
		got++
	}
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream must drain to EOF on shutdown, got %v", err)
		}
		if ev.Seq != got {
			t.Fatalf("stream delivered seq %d at position %d during shutdown", ev.Seq, got)
		}
		got++
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The final snapshot covers everything: reopen replays zero records
	// and serves the full history.
	srv2, err := server.Open(server.Options{DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer srv2.Close()
	if rec := srv2.Recovery(); rec.RecordsReplayed != 0 || rec.ReplayErrors != 0 {
		t.Fatalf("reopen replayed %d records with %d errors, want a snapshot-only boot", rec.RecordsReplayed, rec.ReplayErrors)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	st2, err := client.New(hs2.URL, hs2.Client()).StreamDispatches(ctx, "t", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var recovered int64
	for {
		if _, err := st2.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		recovered++
	}
	if recovered != produced {
		t.Fatalf("recovered %d dispatch events, want %d", recovered, produced)
	}
}

// TestCloseDuringSnapshotStorm closes the server while concurrent clients
// mutate under SnapshotEvery=1 — every command races a compaction, so
// Close overlaps snapshot writes by construction. Whatever was
// acknowledged must survive reopen, exactly.
func TestCloseDuringSnapshotStorm(t *testing.T) {
	dir := t.TempDir()
	srv, err := server.Open(server.Options{DataDir: dir, FsyncEvery: 1, SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	ctx := context.Background()
	c := client.New(hs.URL, hs.Client())

	if _, err := c.CreateTenant(ctx, "t", 2, ""); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	for i := 0; i < workers; i++ {
		if _, err := c.RegisterTask(ctx, "t", fmt.Sprintf("w%d", i), model.W(1, workers)); err != nil {
			t.Fatal(err)
		}
	}

	// acked counts commands the server acknowledged with a 2xx; every one
	// of them was journaled (or snapshotted) before the response.
	var acked atomic.Int64
	acked.Add(1 + workers) // create + registers above
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			task := fmt.Sprintf("w%d", w)
			for i := 0; i < 40; i++ {
				if _, err := c.SubmitJob(ctx, "t", task, ""); err != nil {
					return // shutdown reached this worker
				}
				acked.Add(1)
				if i%4 == 3 {
					if _, err := c.AdvanceBy(ctx, "t", "1/2"); err != nil {
						return
					}
					acked.Add(1)
				}
			}
		}(w)
	}
	close(start)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close amid the storm: %v", err)
	}
	wg.Wait()

	srv2, err := server.Open(server.Options{DataDir: dir})
	if err != nil {
		t.Fatalf("reopen after storm: %v", err)
	}
	defer srv2.Close()
	rec := srv2.Recovery()
	if rec.ReplayErrors != 0 || rec.DispatchMismatches != 0 {
		t.Fatalf("storm recovery: %d replay errors, %d dispatch mismatches", rec.ReplayErrors, rec.DispatchMismatches)
	}
	if rec.Commands != uint64(acked.Load()) {
		t.Fatalf("recovered %d commands, %d were acknowledged", rec.Commands, acked.Load())
	}
	if rec.Tenants != 1 {
		t.Fatalf("recovered %d tenants, want 1", rec.Tenants)
	}
}
