// Package server implements pfaird, a multi-tenant scheduling service
// over the online executive: each tenant is an isolated PD²-DVQ
// online.Executive (plus admission controller) behind a single-writer
// event loop fed by a bounded MPSC submit ring, and a stdlib net/http
// JSON API creates tenants, admits tasks, submits jobs, advances virtual
// time, and streams dispatch decisions as newline-delimited JSON. The service turns the paper's Theorem 3 into an
// operational contract: every admitted tenant's workload keeps the
// one-quantum tardiness bound, and /metrics exposes the observed maximum
// so the claim is monitorable, not just provable.
//
// Routes:
//
//	GET    /healthz
//	GET    /metrics
//	GET    /debug/pprof/*                       (after EnablePprof)
//	POST   /v1/tenants                          CreateTenantRequest → TenantInfo
//	GET    /v1/tenants                          → []TenantInfo
//	GET    /v1/tenants/{id}                     → TenantInfo
//	DELETE /v1/tenants/{id}
//	POST   /v1/tenants/{id}/tasks               RegisterTaskRequest → RegisterTaskResponse
//	DELETE /v1/tenants/{id}/tasks/{name}
//	POST   /v1/tenants/{id}/jobs                SubmitJobRequest → SubmitJobResponse
//	POST   /v1/tenants/{id}/jobs:batch          SubmitJobsRequest → SubmitJobsResponse
//	POST   /v1/tenants/{id}/advance             AdvanceRequest → AdvanceResponse
//	POST   /v1/tenants/{id}/drain               → AdvanceResponse
//	POST   /v1/tenants/{id}/resize              ResizeRequest → ResizeResponse
//	GET    /v1/tenants/{id}/dispatches          → DispatchEvent per line (chunked)
//	GET    /v1/tenants/{id}/trace               → obs.Event per line (chunked)
//
// The dispatch stream accepts ?from=N to replay the log from decision N
// (default 0) and ?follow=false to stop at the current end of log instead
// of following live decisions. On graceful shutdown (Server.Shutdown) all
// in-flight streams flush whatever the log holds and terminate cleanly.
package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"desyncpfair/internal/model"
	"desyncpfair/internal/wal"
)

// nshards is the tenant-registry shard count: tenant operations on
// different tenants contend only on their shard's lock, not a global one.
const nshards = 16

type shard struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// Server is the pfaird HTTP service. Create one with New, mount
// Handler(), and call Shutdown before closing the listener so in-flight
// dispatch streams drain instead of being cut.
type Server struct {
	shards  [nshards]shard
	mux     *http.ServeMux
	metrics *metrics
	obs     *serverObs

	// Durability (nil wal = in-memory server, the New() default). opMu's
	// read side brackets every journaled mutation; compact takes the
	// write side to get a stop-the-world-consistent image of the registry
	// and cmdSeq, the count of enqueued (journaled + applied) commands.
	// Lock order: opMu → shard.mu / Tenant.mu → wal's own lock. Mutations
	// only *enqueue* their record while holding those locks; the fsync
	// wait (waitDurable) happens after all of them are released, so one
	// request's fsync never blocks other tenants — concurrent waiters
	// coalesce into a single fsync inside wal.Log (group commit).
	wal      *wal.Log
	opMu     sync.RWMutex
	cmdSeq   atomic.Uint64
	recovery *RecoveryInfo

	// Replication / cluster role (replication.go). role defaults to
	// leader so New() keeps PR-1..6 single-node semantics. journaling
	// gates the tenant journal hooks: false on a follower, whose state
	// changes arrive pre-journaled from its leader (ApplyReplicated
	// appends them verbatim instead). appliedLSN is the highest journal
	// LSN reflected in served state; bootstrapping marks a follower that
	// has not yet caught up to its leader's durable tip (healthz answers
	// 503 so routers skip it). replLagLSN / replErr are maintained by the
	// cluster tailer via SetReplicationLag / SetReplicationError.
	role          atomic.Int32
	journaling    atomic.Bool
	appliedLSN    atomic.Uint64
	bootstrapping atomic.Bool
	replLagLSN    atomic.Int64
	replErr       atomic.Pointer[string]
	promoteMu     sync.Mutex
	promoteHook   atomic.Pointer[func() error]
	// replInfo accumulates apply-side counters for replicated records; it
	// is owned by the single tailer goroutine (ApplyReplicated's caller).
	replInfo RecoveryInfo

	// submitRing is the per-tenant command-ring capacity for tenants this
	// server creates (0 = defaultSubmitRing). Set before serving traffic.
	submitRing int

	// Egress stream policy (egress.go): streamMaxLag is the record-count
	// bound past which a following read stream is evicted (0 = never),
	// streamStall the per-write deadline on stream writes (0 = none).
	// Both are set before serving traffic; streamEvict counts evictions.
	streamMaxLag int64
	streamStall  time.Duration
	streamEvict  atomic.Int64

	shutdownOnce sync.Once
	shutdown     chan struct{}
}

// New creates a server with an empty tenant registry.
func New() *Server {
	s := &Server{
		mux:          http.NewServeMux(),
		metrics:      newMetrics(),
		obs:          newServerObs(),
		streamMaxLag: DefaultStreamMaxLag,
		streamStall:  DefaultStreamStall,
		shutdown:     make(chan struct{}),
	}
	for i := range s.shards {
		s.shards[i].tenants = map[string]*Tenant{}
	}
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("POST /v1/tenants", s.handleCreateTenant)
	s.route("GET /v1/tenants", s.handleListTenants)
	s.route("GET /v1/tenants/{id}", s.handleGetTenant)
	s.route("DELETE /v1/tenants/{id}", s.handleDeleteTenant)
	s.route("POST /v1/tenants/{id}/tasks", s.handleRegisterTask)
	s.route("DELETE /v1/tenants/{id}/tasks/{name}", s.handleUnregisterTask)
	s.route("POST /v1/tenants/{id}/jobs", s.handleSubmitJob)
	s.route("POST /v1/tenants/{id}/jobs:batch", s.handleSubmitJobs)
	s.route("POST /v1/tenants/{id}/advance", s.handleAdvance)
	s.route("POST /v1/tenants/{id}/drain", s.handleDrain)
	s.route("POST /v1/tenants/{id}/resize", s.handleResize)
	s.route("GET /v1/tenants/{id}/dispatches", s.handleDispatches)
	s.route("GET /v1/tenants/{id}/trace", s.handleTrace)
	s.route("GET /v1/replication/status", s.handleReplStatus)
	s.route("GET /v1/replication/log", s.handleReplLog)
	s.route("GET /v1/replication/snapshot", s.handleReplSnapshot)
	s.route("POST /v1/cluster/promote", s.handlePromote)
	return s
}

// Handler returns the root handler to mount on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// SetSubmitRing sets the per-tenant submit-ring capacity for tenants
// created after the call (0 restores the default). A full ring surfaces
// as HTTP 429 backpressure. Like SetClock, call it before serving
// traffic.
func (s *Server) SetSubmitRing(n int) { s.submitRing = n }

// Shutdown begins a graceful stop: dispatch streams flush their logs and
// end, and new streams terminate immediately after their replay. Call it
// before http.Server.Shutdown so stream handlers return and the listener
// can drain. Idempotent.
func (s *Server) Shutdown() {
	s.shutdownOnce.Do(func() { close(s.shutdown) })
}

// route mounts a handler with request timing/counting middleware. The
// route pattern (not the concrete URL) is the metrics label, so
// cardinality stays bounded. Durations come from the injected clock, so
// under an obs.Fake clock the request histograms are deterministic.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.metrics.register(pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := s.obs.clock.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.observe(pattern, s.obs.clock.Now().Sub(start), sw.status)
	})
}

// statusWriter captures the response status for metrics while passing
// Flush through so chunked streaming keeps working.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer, so
// stream handlers can arm per-write deadlines through the middleware.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (s *Server) shardOf(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &s.shards[h.Sum32()%nshards]
}

func (s *Server) tenant(id string) *Tenant {
	sh := s.shardOf(id)
	sh.mu.RLock()
	t := sh.tenants[id]
	sh.mu.RUnlock()
	return t
}

// addTenant installs t unless the id is taken, journaling the creation
// while the shard lock serializes it against racing creates and deletes of
// the same id (so journal order matches applied order). Installation
// attaches the server's observability (trace ring, per-tenant histograms)
// — both the live-create and the recovery-restore path come through here,
// so every served tenant is instrumented.
func (s *Server) addTenant(t *Tenant) (wal.Commit, error) {
	sh := s.shardOf(t.ID())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.tenants[t.ID()]; dup {
		return wal.Commit{}, fmt.Errorf("server: tenant %q already exists", t.ID())
	}
	commit, err := s.journalRecord(wal.Record{
		Op: wal.OpTenantCreate, Tenant: t.ID(), M: t.m, Policy: t.policy,
	})
	if err != nil {
		return wal.Commit{}, err
	}
	t.attachObs(s.obs)
	sh.tenants[t.ID()] = t
	if s.wal != nil {
		t.SetJournal(s.journalRecord, s.journalBatch, s.failJournal)
	}
	return commit, nil
}

// removeTenant deletes a tenant through the close protocol: win the
// tenant's close gate (so no further commands are accepted), flush its
// ring backlog (so every accepted command precedes the delete in the
// journal), journal the delete under the shard lock, unlink, and stop the
// loop. It reports whether the tenant existed; the error is a journal
// failure — the close gate then reopens and the tenant remains, fully
// consistent, as if the delete never happened.
func (s *Server) removeTenant(id string) (bool, wal.Commit, error) {
	t := s.tenant(id)
	if t == nil {
		return false, wal.Commit{}, nil
	}
	if !t.beginClose() {
		// A concurrent delete of the same id won the gate; wait for it and
		// report not-found, exactly as if we had arrived after it.
		<-t.closed
		return false, wal.Commit{}, nil
	}
	t.flushBacklog()
	sh := s.shardOf(id)
	sh.mu.Lock()
	commit, err := s.journalRecord(wal.Record{Op: wal.OpTenantDelete, Tenant: id})
	if err != nil {
		sh.mu.Unlock()
		t.abortClose()
		return true, wal.Commit{}, err
	}
	delete(sh.tenants, id)
	sh.mu.Unlock()
	t.finishClose()
	return true, commit, nil
}

// dropTenant removes and closes a tenant without journaling — the replay
// path, where the delete record is the input, not the output.
func (s *Server) dropTenant(id string) bool {
	sh := s.shardOf(id)
	sh.mu.Lock()
	t := sh.tenants[id]
	delete(sh.tenants, id)
	sh.mu.Unlock()
	if t == nil {
		return false
	}
	t.Close()
	return true
}

// failJournal wedges the journal (no-op for in-memory servers).
func (s *Server) failJournal(err error) {
	if s.wal != nil {
		s.wal.Fail(err)
	}
}

// allTenants snapshots the registry in id order.
func (s *Server) allTenants() []*Tenant {
	var out []*Tenant
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, t := range sh.tenants {
			out = append(out, t)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:     "ok",
		Role:       s.Role().String(),
		AppliedLSN: s.AppliedLSN(),
		Recovery:   s.recovery,
	}
	if s.wal != nil {
		resp.Term = s.wal.Term()
	}
	if s.Role() != RoleLeader {
		lag := s.replLagLSN.Load()
		resp.ReplicationLagLSN = &lag
	}
	status := http.StatusOK
	switch {
	case s.wal != nil && s.wal.Wedged():
		// The journal failed: reads still work but mutations 503.
		resp.Status = "wal-failed"
		status = http.StatusServiceUnavailable
	case s.bootstrapping.Load():
		// A follower that has not yet caught up to its leader's durable
		// tip: reads would serve stale state, so routers must not send
		// traffic here yet. 503 until the tailer reaches the tip.
		resp.Status = "bootstrapping"
		status = http.StatusServiceUnavailable
	case s.replErr.Load() != nil:
		resp.Status = "degraded"
	case s.recovery != nil && (s.recovery.ReplayErrors > 0 || s.recovery.DispatchMismatches > 0):
		resp.Status = "degraded"
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var infos []TenantInfo
	var snaps []tenantObsSnap
	for _, t := range s.allTenants() {
		infos = append(infos, t.Info())
		snaps = append(snaps, t.obsSnapshot())
	}
	bp := metricsBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = s.obs.appendBuildInfo(b)
	b = s.metrics.appendMetrics(b, infos)
	b = s.obs.appendObsMetrics(b, snaps)
	b = s.appendWALMetrics(b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b)
	*bp = b
	metricsBufPool.Put(bp)
}

// metricsBufPool recycles exposition buffers across scrapes: after the
// first scrape warms it, rendering /metrics costs zero allocations per
// sample (every value lands via strconv.Append* into the pooled slice).
var metricsBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 16<<10); return &b },
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	if !s.gateMutation(w) {
		return
	}
	var req CreateTenantRequest
	if !decode(w, r, &req) {
		return
	}
	t, err := newTenant(req.ID, req.M, req.Policy, s.submitRing)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.opMu.RLock()
	commit, err := s.addTenant(t)
	s.opMu.RUnlock()
	if err != nil {
		t.Close() // never installed; stop its loop goroutine
		writeErr(w, statusOf(err, http.StatusConflict), err)
		return
	}
	if err := s.waitDurable(commit); err != nil {
		writeErr(w, statusOf(err, http.StatusServiceUnavailable), err)
		return
	}
	s.maybeCompact()
	writeJSON(w, http.StatusCreated, t.Info())
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	infos := []TenantInfo{}
	for _, t := range s.allTenants() {
		infos = append(infos, t.Info())
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(r.PathValue("id"))
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: no tenant %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, t.Info())
}

func (s *Server) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	if !s.gateMutation(w) {
		return
	}
	s.opMu.RLock()
	found, commit, err := s.removeTenant(r.PathValue("id"))
	s.opMu.RUnlock()
	if err != nil {
		writeErr(w, statusOf(err, http.StatusServiceUnavailable), err)
		return
	}
	if !found {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: no tenant %q", r.PathValue("id")))
		return
	}
	if err := s.waitDurable(commit); err != nil {
		writeErr(w, statusOf(err, http.StatusServiceUnavailable), err)
		return
	}
	s.maybeCompact()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRegisterTask(w http.ResponseWriter, r *http.Request) {
	if !s.gateMutation(w) {
		return
	}
	t := s.tenant(r.PathValue("id"))
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: no tenant %q", r.PathValue("id")))
		return
	}
	var req RegisterTaskRequest
	if !decode(w, r, &req) {
		return
	}
	s.opMu.RLock()
	d, commit, err := t.RegisterTask(req.Name, model.W(req.E, req.P))
	s.opMu.RUnlock()
	if err != nil {
		writeErr(w, statusOf(err, http.StatusBadRequest), err)
		return
	}
	if err := s.waitDurable(commit); err != nil {
		writeErr(w, statusOf(err, http.StatusServiceUnavailable), err)
		return
	}
	s.maybeCompact()
	resp := RegisterTaskResponse{Admitted: d.Admitted, Guarantee: d.Guarantee.String(), Reason: d.Reason}
	if !d.Admitted {
		// 409: the request was well-formed but capacity says no.
		writeJSON(w, http.StatusConflict, resp)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleUnregisterTask(w http.ResponseWriter, r *http.Request) {
	if !s.gateMutation(w) {
		return
	}
	t := s.tenant(r.PathValue("id"))
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: no tenant %q", r.PathValue("id")))
		return
	}
	s.opMu.RLock()
	commit, err := t.UnregisterTask(r.PathValue("name"))
	s.opMu.RUnlock()
	if err != nil {
		writeErr(w, statusOf(err, http.StatusConflict), err)
		return
	}
	if err := s.waitDurable(commit); err != nil {
		writeErr(w, statusOf(err, http.StatusServiceUnavailable), err)
		return
	}
	s.maybeCompact()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if !s.gateMutation(w) {
		return
	}
	start := s.obs.clock.Now()
	t := s.tenant(r.PathValue("id"))
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: no tenant %q", r.PathValue("id")))
		return
	}
	var req SubmitJobRequest
	if !decode(w, r, &req) {
		return
	}
	s.opMu.RLock()
	resp, commit, err := t.SubmitJobReq(req)
	s.opMu.RUnlock()
	if err != nil {
		writeErr(w, statusOf(err, http.StatusBadRequest), err)
		return
	}
	// Durability wait happens here, outside every lock: concurrent submits
	// park together in the WAL and share one fsync (group commit).
	if err := s.waitDurable(commit); err != nil {
		writeErr(w, statusOf(err, http.StatusServiceUnavailable), err)
		return
	}
	s.maybeCompact()
	// Acknowledged: the job is accepted (and, on a durable server, its
	// record journaled). Only successful submissions land in the histogram
	// — rejections are counted elsewhere and would skew the latency series.
	t.observeSubmitAck(s.obs.clock.Now().Sub(start))
	writeJSON(w, http.StatusAccepted, resp)
}

// handleSubmitJobs is the batch submit path: all jobs validate, journal as
// one frame group, and apply under a single tenant-lock acquisition, then
// the whole batch acks after one durability wait.
func (s *Server) handleSubmitJobs(w http.ResponseWriter, r *http.Request) {
	if !s.gateMutation(w) {
		return
	}
	start := s.obs.clock.Now()
	t := s.tenant(r.PathValue("id"))
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: no tenant %q", r.PathValue("id")))
		return
	}
	var req SubmitJobsRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("server: empty batch"))
		return
	}
	if len(req.Jobs) > MaxBatchJobs {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("server: batch of %d jobs exceeds %d", len(req.Jobs), MaxBatchJobs))
		return
	}
	s.opMu.RLock()
	resp, commit, err := t.SubmitJobs(req.Jobs)
	s.opMu.RUnlock()
	if err != nil {
		writeErr(w, statusOf(err, http.StatusBadRequest), err)
		return
	}
	if err := s.waitDurable(commit); err != nil {
		writeErr(w, statusOf(err, http.StatusServiceUnavailable), err)
		return
	}
	s.maybeCompact()
	// One ack covers the batch; record one latency observation per job so
	// the submit-ack histogram stays comparable with the singular path.
	d := s.obs.clock.Now().Sub(start)
	for range resp.Results {
		t.observeSubmitAck(d)
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if !s.gateMutation(w) {
		return
	}
	t := s.tenant(r.PathValue("id"))
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: no tenant %q", r.PathValue("id")))
		return
	}
	var req AdvanceRequest
	if !decode(w, r, &req) {
		return
	}
	s.opMu.RLock()
	resp, commit, err := t.Advance(req.Until, req.By)
	s.opMu.RUnlock()
	if err != nil {
		writeErr(w, statusOf(err, http.StatusBadRequest), err)
		return
	}
	if err := s.waitDurable(commit); err != nil {
		writeErr(w, statusOf(err, http.StatusServiceUnavailable), err)
		return
	}
	s.maybeCompact()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if !s.gateMutation(w) {
		return
	}
	t := s.tenant(r.PathValue("id"))
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: no tenant %q", r.PathValue("id")))
		return
	}
	s.opMu.RLock()
	resp, commit, err := t.Drain()
	s.opMu.RUnlock()
	if err != nil {
		writeErr(w, statusOf(err, http.StatusConflict), err)
		return
	}
	if err := s.waitDurable(commit); err != nil {
		writeErr(w, statusOf(err, http.StatusServiceUnavailable), err)
		return
	}
	s.maybeCompact()
	writeJSON(w, http.StatusOK, resp)
}

// handleResize changes a tenant's processor count: 200 applied, 202
// queued behind a drain, 409 rejected (shrink below Σwt without drain).
func (s *Server) handleResize(w http.ResponseWriter, r *http.Request) {
	if !s.gateMutation(w) {
		return
	}
	t := s.tenant(r.PathValue("id"))
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: no tenant %q", r.PathValue("id")))
		return
	}
	var req ResizeRequest
	if !decode(w, r, &req) {
		return
	}
	s.opMu.RLock()
	resp, commit, err := t.Resize(req.M, req.Drain)
	s.opMu.RUnlock()
	if err != nil {
		writeErr(w, statusOf(err, http.StatusBadRequest), err)
		return
	}
	if err := s.waitDurable(commit); err != nil {
		writeErr(w, statusOf(err, http.StatusServiceUnavailable), err)
		return
	}
	s.maybeCompact()
	switch resp.Outcome {
	case "rejected":
		writeJSON(w, http.StatusConflict, resp)
	case "queued":
		writeJSON(w, http.StatusAccepted, resp)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

// handleDispatches streams the tenant's dispatch log as one JSON object
// per line: first the backlog from ?from (default 0), then live decisions
// as they are made, flushing after every batch. The stream ends when the
// client goes away, the tenant is deleted, ?follow=false exhausted the
// backlog, or the server shuts down — in the last two cases only after
// everything currently in the log has been written (the "drain" part of
// graceful shutdown).
//
// Every line is a cached frame the tenant loop encoded once at record
// time (Tenant.FramesSince); the handler only moves bytes. A following
// stream that lags more than streamMaxLag records behind the tip after a
// drain is evicted with a StreamGone control line; one that stops reading
// entirely dies on the frameWriter's stall deadline.
func (s *Server) handleDispatches(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(r.PathValue("id"))
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: no tenant %q", r.PathValue("id")))
		return
	}
	var from int64
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("server: bad from %q", v))
			return
		}
		from = n
	}
	follow := r.URL.Query().Get("follow") != "false"

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fw := newFrameWriter(w, s.streamStall)
	// Push the headers out now: a follower of an idle tenant must see the
	// stream open immediately, not on the first dispatch.
	fw.flush()

	sub := t.Subscribe()
	defer t.Unsubscribe(sub)

	pos := from
	for {
		frames := t.FramesSince(pos)
		wrote := len(frames) > 0
		for len(frames) > 0 {
			n := len(frames)
			if n > maxStreamBatch {
				n = maxStreamBatch
			}
			if err := fw.writeFrames(frames[:n]); err != nil {
				return // client went away or stalled past the deadline
			}
			pos += int64(n)
			frames = frames[n:]
		}
		if wrote {
			fw.flush()
		}
		if follow && s.streamMaxLag > 0 {
			if t.LogLen()-pos > s.streamMaxLag {
				// The log outgrew this follower by more than the bound
				// while it drained: cut it loose rather than chase it.
				s.streamEvict.Add(1)
				fw.writeGone(pos)
				return
			}
		}
		if !follow {
			return
		}
		select {
		case <-sub.ping:
		case <-r.Context().Done():
			return
		case <-t.Closed():
			follow = false // flush whatever landed, then stop
		case <-s.shutdown:
			follow = false
		}
	}
}

// --- plumbing ---

func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("server: bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	switch status {
	case http.StatusTooManyRequests:
		// Ring-full backpressure: the loop drains in microseconds, so an
		// immediate retry with the client's own backoff is right.
		w.Header().Set("Retry-After", "0")
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
