package server_test

// External test package: it drives the server through internal/client so
// the wire protocol is exercised end to end (client → HTTP → server →
// executive), and so these tests double as client tests. (An internal
// test package would create an import cycle, since client imports server
// for the wire types.)

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"desyncpfair/internal/client"
	"desyncpfair/internal/model"
	"desyncpfair/internal/online"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/server"
)

func newTestServer(t testing.TB) (*server.Server, *client.Client) {
	t.Helper()
	srv := server.New()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(srv.Shutdown)
	return srv, client.New(hs.URL, hs.Client())
}

func TestTenantLifecycle(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	info, err := c.CreateTenant(ctx, "acme", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if info.Policy != "PD2" || info.M != 2 || info.Now != "0" {
		t.Fatalf("unexpected tenant info %+v", info)
	}
	if _, err := c.CreateTenant(ctx, "acme", 1, ""); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if _, err := c.CreateTenant(ctx, "bad", 0, ""); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := c.CreateTenant(ctx, "bad", 1, "LLF"); err == nil {
		t.Fatal("unknown policy accepted")
	}

	if _, err := c.RegisterTask(ctx, "acme", "web", model.W(1, 2)); err != nil {
		t.Fatal(err)
	}
	// Capacity exceeded: 1/2 + 2×1 > 2 on the third register.
	if _, err := c.RegisterTask(ctx, "acme", "big1", model.W(1, 1)); err != nil {
		t.Fatal(err)
	}
	_, err = c.RegisterTask(ctx, "acme", "big2", model.W(1, 1))
	if !client.IsReject(err) {
		t.Fatalf("want admission rejection, got %v", err)
	}

	if _, err := c.SubmitJob(ctx, "acme", "web", ""); err != nil {
		t.Fatal(err)
	}
	adv, err := c.Advance(ctx, "acme", "4")
	if err != nil {
		t.Fatal(err)
	}
	if adv.Now != "4" || adv.Dispatched != 1 {
		t.Fatalf("advance: %+v", adv)
	}
	if _, err := c.SubmitJob(ctx, "acme", "ghost", ""); err == nil {
		t.Fatal("job for unknown task accepted")
	}

	// Unregister frees capacity; big2-sized task fits afterwards.
	if err := c.UnregisterTask(ctx, "acme", "big1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterTask(ctx, "acme", "big2", model.W(1, 1)); err != nil {
		t.Fatalf("re-admission after unregister failed: %v", err)
	}

	info, err = c.Tenant(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if info.Dispatches != 1 || info.Rejections != 1 {
		t.Fatalf("tenant info after workload: %+v", info)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`pfaird_tenant_dispatches_total{tenant="acme"} 1`,
		`pfaird_tenant_admission_rejections_total{tenant="acme"} 1`,
		`pfaird_tenant_max_tardiness{tenant="acme"}`,
		`pfaird_requests_total{route="POST /v1/tenants/{id}/jobs"}`,
		`pfaird_request_duration_seconds_count`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if err := c.DeleteTenant(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteTenant(ctx, "acme"); err == nil {
		t.Fatal("double delete accepted")
	}
	if _, err := c.Tenant(ctx, "acme"); err == nil {
		t.Fatal("deleted tenant still served")
	}
}

// A streamed dispatch sequence must match the same workload run on an
// in-process online.Executive decision for decision. The stream is opened
// in follow mode before any job is submitted, so it exercises the live
// push path, not just backlog replay.
func TestStreamMatchesInProcess(t *testing.T) {
	type op struct {
		task string // "" = advance instead of submit
		at   string
		to   string
	}
	weights := map[string]model.Weight{"a": model.W(1, 2), "b": model.W(3, 4), "c": model.W(1, 3)}
	names := []string{"a", "b", "c"} // registration order matters for tie-breaks
	script := []op{
		{task: "a", at: "0"}, {task: "b", at: "0"}, {to: "3"},
		{task: "c", at: "3"}, {to: "5"},
		{task: "a", at: "6"}, {task: "b", at: "7"}, {to: "12"},
		{task: "c", at: "12"}, {to: "20"},
	}

	// In-process reference run.
	ex := online.New(2, nil)
	tasks := map[string]*model.Task{}
	for _, n := range names {
		task, err := ex.Register(n, weights[n])
		if err != nil {
			t.Fatal(err)
		}
		tasks[n] = task
	}
	var want []server.DispatchEvent
	ex.SetOnDispatch(func(d online.Dispatch) {
		tard := d.Finish.Sub(rat.FromInt(d.Sub.Deadline()))
		if tard.Sign() < 0 {
			tard = rat.Zero
		}
		want = append(want, server.DispatchEvent{
			Seq: int64(len(want)), Task: d.Sub.Task.Name, Index: d.Sub.Index, Proc: d.Proc,
			Start: d.Start.String(), Finish: d.Finish.String(),
			Deadline: d.Sub.Deadline(), Tardiness: tard.String(),
		})
	})
	for _, o := range script {
		var err error
		if o.task != "" {
			at, perr := rat.Parse(o.at)
			if perr != nil {
				t.Fatal(perr)
			}
			err = ex.SubmitJob(tasks[o.task], at)
		} else {
			to, perr := rat.Parse(o.to)
			if perr != nil {
				t.Fatal(perr)
			}
			err = ex.Run(to, nil, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(want) == 0 {
		t.Fatal("reference run produced no dispatches; scripted workload is broken")
	}

	// Same workload over HTTP, with a live follower.
	_, c := newTestServer(t)
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, "ref", 2, "PD2"); err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, err := c.RegisterTask(ctx, "ref", n, weights[n]); err != nil {
			t.Fatal(err)
		}
	}
	stream, err := c.StreamDispatches(ctx, "ref", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	got := make([]server.DispatchEvent, 0, len(want))
	done := make(chan error, 1)
	go func() {
		for len(got) < len(want) {
			ev, err := stream.Next()
			if err != nil {
				done <- fmt.Errorf("stream ended after %d of %d events: %w", len(got), len(want), err)
				return
			}
			got = append(got, ev)
		}
		done <- nil
	}()

	for _, o := range script {
		var err error
		if o.task != "" {
			_, err = c.SubmitJob(ctx, "ref", o.task, o.at)
		} else {
			_, err = c.Advance(ctx, "ref", o.to)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("stream delivered %d of %d events before timeout", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decision %d differs:\n  http:       %+v\n  in-process: %+v", i, got[i], want[i])
		}
	}
}

// Eight concurrent clients hammer four tenants with interleaved register /
// submit / advance / status / stream / unregister traffic. Run under
// -race, this is the server's concurrency-safety test; the assertions
// check per-tenant dispatch conservation afterwards.
func TestConcurrentClients(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	const tenants = 4
	const clients = 8
	const iters = 40

	for i := 0; i < tenants; i++ {
		if _, err := c.CreateTenant(ctx, fmt.Sprintf("t%d", i), 2, ""); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%tenants)
			task := fmt.Sprintf("g%d", g)
			if _, err := c.RegisterTask(ctx, tenant, task, model.W(1, 8)); err != nil {
				errCh <- err
				return
			}
			for i := 0; i < iters; i++ {
				if _, err := c.SubmitJob(ctx, tenant, task, ""); err != nil {
					errCh <- fmt.Errorf("submit %s/%s: %w", tenant, task, err)
					return
				}
				if _, err := c.AdvanceBy(ctx, tenant, "1"); err != nil {
					errCh <- fmt.Errorf("advance %s: %w", tenant, err)
					return
				}
				switch i % 8 {
				case 3: // status read
					if _, err := c.Tenant(ctx, tenant); err != nil {
						errCh <- err
						return
					}
				case 5: // backlog stream read
					s, err := c.StreamDispatches(ctx, tenant, 0, false)
					if err != nil {
						errCh <- err
						return
					}
					prev := int64(-1)
					for {
						ev, err := s.Next()
						if err == io.EOF {
							break
						}
						if err != nil {
							errCh <- err
							s.Close()
							return
						}
						if ev.Seq != prev+1 {
							errCh <- fmt.Errorf("stream gap: %d after %d", ev.Seq, prev)
							s.Close()
							return
						}
						prev = ev.Seq
					}
					s.Close()
				case 7: // churn: admit and remove a side task with no work
					side := fmt.Sprintf("g%d-side%d", g, i)
					if _, err := c.RegisterTask(ctx, tenant, side, model.W(1, 16)); err != nil {
						errCh <- err
						return
					}
					if err := c.UnregisterTask(ctx, tenant, side); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Every tenant drained: dispatch log length equals total decisions and
	// Theorem 3 holds for each.
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t%d", i)
		if _, err := c.Drain(ctx, id); err != nil {
			t.Fatal(err)
		}
		info, err := c.Tenant(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Pending != 0 {
			t.Errorf("%s: %d pending after drain", id, info.Pending)
		}
		// 2 clients × iters jobs × 1 subtask each (E=1).
		if wantDisp := int64(2 * iters); info.Dispatches != wantDisp {
			t.Errorf("%s: %d dispatches, want %d", id, info.Dispatches, wantDisp)
		}
		maxTar, err := rat.Parse(info.MaxTardiness)
		if err != nil {
			t.Fatal(err)
		}
		if rat.One.Less(maxTar) {
			t.Errorf("%s: max tardiness %s > 1 — Theorem 3 violated", id, info.MaxTardiness)
		}
	}
}

// Graceful shutdown must drain in-flight streams: followers receive every
// logged decision and then clean EOF, rather than being cut mid-stream or
// hanging forever.
func TestShutdownDrainsStreams(t *testing.T) {
	srv, c := newTestServer(t)
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, "drain", 1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterTask(ctx, "drain", "w", model.W(1, 2)); err != nil {
		t.Fatal(err)
	}
	stream, err := c.StreamDispatches(ctx, "drain", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	const jobs = 5
	for i := 0; i < jobs; i++ {
		if _, err := c.SubmitJob(ctx, "drain", "w", ""); err != nil {
			t.Fatal(err)
		}
		if _, err := c.AdvanceBy(ctx, "drain", "2"); err != nil {
			t.Fatal(err)
		}
	}
	srv.Shutdown()

	type tail struct {
		n   int
		err error
	}
	done := make(chan tail, 1)
	go func() {
		n := 0
		for {
			_, err := stream.Next()
			if err != nil {
				done <- tail{n, err}
				return
			}
			n++
		}
	}()
	select {
	case got := <-done:
		if got.err != io.EOF {
			t.Fatalf("stream ended with %v, want io.EOF", got.err)
		}
		if got.n != jobs {
			t.Fatalf("received %d events before shutdown EOF, want %d", got.n, jobs)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not terminate after Shutdown")
	}

	// A stream opened after shutdown replays the backlog and ends at once.
	late, err := c.StreamDispatches(ctx, "drain", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	n := 0
	for {
		_, err := late.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != jobs {
		t.Fatalf("post-shutdown replay delivered %d events, want %d", n, jobs)
	}
}

// Deleting a tenant ends its followers with a full flush, like shutdown
// but scoped to one tenant.
func TestDeleteTenantEndsStreams(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, "doomed", 1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterTask(ctx, "doomed", "w", model.W(1, 2)); err != nil {
		t.Fatal(err)
	}
	stream, err := c.StreamDispatches(ctx, "doomed", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if _, err := c.SubmitJob(ctx, "doomed", "w", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drain(ctx, "doomed"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteTenant(ctx, "doomed"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	got := make(chan error, 1)
	go func() {
		n := 0
		for {
			_, err := stream.Next()
			if err != nil {
				if n != 1 {
					err = fmt.Errorf("saw %d events before close, want 1 (then %w)", n, err)
				} else if err != io.EOF {
					err = fmt.Errorf("stream ended with %w, want io.EOF", err)
				} else {
					err = nil
				}
				got <- err
				return
			}
			n++
		}
	}()
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-deadline:
		t.Fatal("stream did not end after tenant deletion")
	}
}
