package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"desyncpfair/internal/client"
	"desyncpfair/internal/model"
	"desyncpfair/internal/server"
)

// BenchmarkServerSubmit measures the submit hot path end to end — client
// marshal, HTTP round trip, tenant lock, executive release — with a
// periodic advance so the dispatch log keeps moving and the executive
// never accumulates an unbounded backlog.
func BenchmarkServerSubmit(b *testing.B) {
	srv := server.New()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Shutdown()
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	if _, err := c.CreateTenant(ctx, "bench", 2, ""); err != nil {
		b.Fatal(err)
	}
	const tasks = 8
	for i := 0; i < tasks; i++ {
		if _, err := c.RegisterTask(ctx, "bench", fmt.Sprintf("w%d", i), model.W(1, tasks)); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SubmitJob(ctx, "bench", fmt.Sprintf("w%d", i%tasks), ""); err != nil {
			b.Fatal(err)
		}
		if i%tasks == tasks-1 {
			if _, err := c.AdvanceBy(ctx, "bench", "1"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkServerSubmitWAL is BenchmarkServerSubmit against a durable
// server: every submit is journaled (group-commit, fsync once per 64
// records) before it is acknowledged. The delta against the in-memory
// benchmark is the full durability overhead on the hot path.
func BenchmarkServerSubmitWAL(b *testing.B) {
	srv, err := server.Open(server.Options{
		DataDir:       b.TempDir(),
		FsyncEvery:    64,
		SnapshotEvery: 1 << 30, // keep compaction out of the measured loop
	})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Close()
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	if _, err := c.CreateTenant(ctx, "bench", 2, ""); err != nil {
		b.Fatal(err)
	}
	const tasks = 8
	for i := 0; i < tasks; i++ {
		if _, err := c.RegisterTask(ctx, "bench", fmt.Sprintf("w%d", i), model.W(1, tasks)); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SubmitJob(ctx, "bench", fmt.Sprintf("w%d", i%tasks), ""); err != nil {
			b.Fatal(err)
		}
		if i%tasks == tasks-1 {
			if _, err := c.AdvanceBy(ctx, "bench", "1"); err != nil {
				b.Fatal(err)
			}
		}
	}
}
