package server_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"desyncpfair/internal/client"
	"desyncpfair/internal/model"
	"desyncpfair/internal/server"
	"desyncpfair/internal/wal"
)

// BenchmarkServerSubmit measures the submit hot path end to end — client
// marshal, HTTP round trip, tenant lock, executive release — with a
// periodic advance so the dispatch log keeps moving and the executive
// never accumulates an unbounded backlog.
func BenchmarkServerSubmit(b *testing.B) {
	srv := server.New()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Shutdown()
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	if _, err := c.CreateTenant(ctx, "bench", 2, ""); err != nil {
		b.Fatal(err)
	}
	const tasks = 8
	for i := 0; i < tasks; i++ {
		if _, err := c.RegisterTask(ctx, "bench", fmt.Sprintf("w%d", i), model.W(1, tasks)); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SubmitJob(ctx, "bench", fmt.Sprintf("w%d", i%tasks), ""); err != nil {
			b.Fatal(err)
		}
		if i%tasks == tasks-1 {
			if _, err := c.AdvanceBy(ctx, "bench", "1"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkServerSubmitWAL is BenchmarkServerSubmit against a durable
// server: every submit is journaled (group-commit, fsync once per 64
// records) before it is acknowledged. The delta against the in-memory
// benchmark is the full durability overhead on the hot path.
func BenchmarkServerSubmitWAL(b *testing.B) {
	srv, err := server.Open(server.Options{
		DataDir:       b.TempDir(),
		FsyncEvery:    64,
		SnapshotEvery: 1 << 30, // keep compaction out of the measured loop
	})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Close()
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	if _, err := c.CreateTenant(ctx, "bench", 2, ""); err != nil {
		b.Fatal(err)
	}
	const tasks = 8
	for i := 0; i < tasks; i++ {
		if _, err := c.RegisterTask(ctx, "bench", fmt.Sprintf("w%d", i), model.W(1, tasks)); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SubmitJob(ctx, "bench", fmt.Sprintf("w%d", i%tasks), ""); err != nil {
			b.Fatal(err)
		}
		if i%tasks == tasks-1 {
			if _, err := c.AdvanceBy(ctx, "bench", "1"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// slowFS wraps the real filesystem and adds a fixed latency to every
// file fsync, modeling a commodity disk whose cache flush costs ~2ms.
// The parallel benchmark needs the model: on CI filesystems an fsync is
// a sub-millisecond syscall, which on a small GOMAXPROCS never yields
// the processor, so the whole server serializes behind it and coalesced
// and per-record fsync become indistinguishable. A slept delay parks the
// leader like a real device wait would, letting concurrent submits queue
// behind it — the regime the group-commit pipeline exists for.
type slowFS struct {
	wal.OSFS
	delay time.Duration
}

func (s slowFS) Create(path string) (wal.File, error) {
	f, err := s.OSFS.Create(path)
	if err != nil {
		return nil, err
	}
	return slowFile{File: f, delay: s.delay}, nil
}

type slowFile struct {
	wal.File
	delay time.Duration
}

func (f slowFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// BenchmarkServerSubmitParallel measures durable-submit throughput under
// concurrent clients — the workload the group-commit pipeline exists for.
// The journal writes through slowFS (2ms per fsync, a realistic disk
// flush). Each client drives its own tenant over a shared keep-alive
// transport, so the only cross-client coupling is the WAL: with fsync=1
// every ack needs durability, and the reported fsyncs/op (≪ 1 at high
// concurrency) is the coalescing in action. ns/op is per submitted job
// across all clients, so dividing the clients=1 value by the clients=64
// value gives the scalability factor directly.
func BenchmarkServerSubmitParallel(b *testing.B) {
	for _, fsyncEvery := range []int{1, 32} {
		for _, clients := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("fsync=%d/clients=%d", fsyncEvery, clients), func(b *testing.B) {
				benchSubmitParallel(b, fsyncEvery, clients)
			})
		}
	}
}

func benchSubmitParallel(b *testing.B, fsyncEvery, clients int) {
	srv, err := server.Open(server.Options{
		DataDir:       b.TempDir(),
		FS:            slowFS{delay: 2 * time.Millisecond},
		FsyncEvery:    fsyncEvery,
		SnapshotEvery: 1 << 30, // keep compaction out of the measured loop
	})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Close()

	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = clients * 2
	tr.MaxIdleConnsPerHost = clients * 2
	defer tr.CloseIdleConnections()
	c := client.New(hs.URL, &http.Client{Transport: tr})
	ctx := context.Background()

	const tasks = 4
	for i := 0; i < clients; i++ {
		id := fmt.Sprintf("t%02d", i)
		if _, err := c.CreateTenant(ctx, id, 1, ""); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < tasks; j++ {
			if _, err := c.RegisterTask(ctx, id, fmt.Sprintf("w%d", j), model.W(1, tasks)); err != nil {
				b.Fatal(err)
			}
		}
	}
	before := srv.WALStats()

	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			n := 0
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				if _, err := c.SubmitJob(ctx, id, fmt.Sprintf("w%d", n%tasks), ""); err != nil {
					errc <- err
					return
				}
				n++
				if n%(2*tasks) == 0 {
					if _, err := c.AdvanceBy(ctx, id, "1"); err != nil {
						errc <- err
						return
					}
				}
			}
		}(fmt.Sprintf("t%02d", i))
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errc:
		b.Fatal(err)
	default:
	}
	after := srv.WALStats()
	b.ReportMetric(float64(after.Fsyncs-before.Fsyncs)/float64(b.N), "fsyncs/op")
	b.ReportMetric(float64(after.Appends-before.Appends)/float64(b.N), "appends/op")
}

// BenchmarkServerSubmitContended is the sharpest test of the single-writer
// event loop: every client submits to the SAME tenant, so all requests
// funnel through one MPSC ring and one loop goroutine. Under the old
// per-tenant mutex this serialized completely; the loop instead drains the
// concurrent arrivals as a run, validates each, journals them as one frame
// group and shares one commit — so fsyncs/op and appends/op fall as
// concurrency rises while every ack still waits for durability. A 429
// (ring full) is backpressure, not failure: the client retries, and the
// retry cost is part of the measured regime.
func BenchmarkServerSubmitContended(b *testing.B) {
	for _, clients := range []int{8, 64} {
		b.Run(fmt.Sprintf("fsync=1/clients=%d", clients), func(b *testing.B) {
			benchSubmitContended(b, clients)
		})
	}
}

func benchSubmitContended(b *testing.B, clients int) {
	srv, err := server.Open(server.Options{
		DataDir:       b.TempDir(),
		FS:            slowFS{delay: 2 * time.Millisecond},
		FsyncEvery:    1,
		SnapshotEvery: 1 << 30, // keep compaction out of the measured loop
	})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Close()

	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = clients * 2
	tr.MaxIdleConnsPerHost = clients * 2
	defer tr.CloseIdleConnections()
	c := client.New(hs.URL, &http.Client{Transport: tr})
	ctx := context.Background()

	const tasks = 4
	if _, err := c.CreateTenant(ctx, "hot", 1, ""); err != nil {
		b.Fatal(err)
	}
	for j := 0; j < tasks; j++ {
		if _, err := c.RegisterTask(ctx, "hot", fmt.Sprintf("w%d", j), model.W(1, tasks)); err != nil {
			b.Fatal(err)
		}
	}
	before := srv.WALStats()

	retry429 := func(do func() error) error {
		for {
			err := do()
			var ae *client.APIError
			if errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests {
				continue
			}
			return err
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				err := retry429(func() error {
					_, err := c.SubmitJob(ctx, "hot", fmt.Sprintf("w%d", n%tasks), "")
					return err
				})
				if err != nil {
					errc <- err
					return
				}
				n++
				if i%(8*int64(tasks)) == 0 {
					err := retry429(func() error {
						_, err := c.AdvanceBy(ctx, "hot", "1")
						return err
					})
					if err != nil {
						errc <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errc:
		b.Fatal(err)
	default:
	}
	after := srv.WALStats()
	b.ReportMetric(float64(after.Fsyncs-before.Fsyncs)/float64(b.N), "fsyncs/op")
	b.ReportMetric(float64(after.Appends-before.Appends)/float64(b.N), "appends/op")
}
