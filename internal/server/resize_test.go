package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"desyncpfair/internal/server"
)

// doJSON drives one request through the handler and decodes the response
// body into out (when non-nil), returning the status code.
func doJSON(t *testing.T, h http.Handler, method, path string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if out != nil {
		if err := json.Unmarshal(rw.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, rw.Body.String(), err)
		}
	}
	return rw.Code
}

// TestResizeEndpoint walks the full elastic-capacity lifecycle over HTTP:
// grow applies (200), an infeasible shrink is rejected (409) leaving
// state untouched, a drain-mode shrink queues (202) and gates new
// registrations by the pending target, and the unregister that brings
// Σwt within the target applies the shrink.
func TestResizeEndpoint(t *testing.T) {
	s := server.New()
	h := s.Handler()

	if code := doJSON(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "A", M: 2}, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	for _, r := range []server.RegisterTaskRequest{{Name: "a", E: 1, P: 1}, {Name: "b", E: 1, P: 2}} {
		if code := doJSON(t, h, "POST", "/v1/tenants/A/tasks", r, nil); code != http.StatusCreated {
			t.Fatalf("register %s: %d", r.Name, code)
		}
	}

	// Grow 2 → 4: applied.
	var resp server.ResizeResponse
	if code := doJSON(t, h, "POST", "/v1/tenants/A/resize", server.ResizeRequest{M: 4}, &resp); code != http.StatusOK {
		t.Fatalf("grow: %d %+v", code, resp)
	}
	if resp.Outcome != "applied" || resp.M != 4 {
		t.Fatalf("grow: %+v", resp)
	}

	// Shrink to 1 with Σwt = 3/2: rejected, nothing changes.
	if code := doJSON(t, h, "POST", "/v1/tenants/A/resize", server.ResizeRequest{M: 1}, &resp); code != http.StatusConflict {
		t.Fatalf("infeasible shrink: %d %+v", code, resp)
	}
	if resp.Outcome != "rejected" || resp.M != 4 {
		t.Fatalf("infeasible shrink: %+v", resp)
	}
	var info server.TenantInfo
	if code := doJSON(t, h, "GET", "/v1/tenants/A", nil, &info); code != http.StatusOK || info.M != 4 || info.PendingM != 0 {
		t.Fatalf("after rejection: %d %+v", code, info)
	}
	if info.Rejections != 1 {
		t.Fatalf("rejected resize not counted: %+v", info)
	}

	// Same shrink with drain: queued, M unchanged, pending target visible.
	if code := doJSON(t, h, "POST", "/v1/tenants/A/resize", server.ResizeRequest{M: 1, Drain: true}, &resp); code != http.StatusAccepted {
		t.Fatalf("drain shrink: %d %+v", code, resp)
	}
	if resp.Outcome != "queued" || resp.M != 4 || resp.PendingM != 1 {
		t.Fatalf("drain shrink: %+v", resp)
	}

	// New registrations are gated by the pending target of 1, not M = 4.
	var reg server.RegisterTaskResponse
	if code := doJSON(t, h, "POST", "/v1/tenants/A/tasks", server.RegisterTaskRequest{Name: "c", E: 1, P: 4}, &reg); code != http.StatusConflict {
		t.Fatalf("register during drain: %d %+v", code, reg)
	}

	// Unregistering the weight-1 task brings Σwt to 1/2 ≤ 1: the shrink
	// applies at that unregister.
	if code := doJSON(t, h, "DELETE", "/v1/tenants/A/tasks/a", nil, nil); code != http.StatusNoContent {
		t.Fatalf("unregister: %d", code)
	}
	info = server.TenantInfo{} // pendingM is omitempty; don't keep the stale value
	if code := doJSON(t, h, "GET", "/v1/tenants/A", nil, &info); code != http.StatusOK {
		t.Fatalf("info: %d", code)
	}
	if info.M != 1 || info.PendingM != 0 {
		t.Fatalf("drain did not apply: %+v", info)
	}

	// Out-of-range targets are 400s, not silent clamps.
	for _, m := range []int{0, -2, server.MaxM + 1} {
		if code := doJSON(t, h, "POST", "/v1/tenants/A/resize", server.ResizeRequest{M: m}, nil); code != http.StatusBadRequest {
			t.Fatalf("resize to %d: %d", m, code)
		}
	}
}

// TestResizeDurablePendingSurvivesRestart checks the snapshot path of the
// capacity history: current M and a queued drain target both survive a
// clean shutdown and reopen.
func TestResizeDurablePendingSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := server.Open(server.Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if code := doJSON(t, h, "POST", "/v1/tenants", server.CreateTenantRequest{ID: "A", M: 1}, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if code := doJSON(t, h, "POST", "/v1/tenants/A/tasks", server.RegisterTaskRequest{Name: "a", E: 1, P: 1}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}
	if code := doJSON(t, h, "POST", "/v1/tenants/A/tasks", server.RegisterTaskRequest{Name: "b", E: 1, P: 2}, nil); code != http.StatusConflict {
		t.Fatalf("register over m=1: %d", code)
	}
	var resp server.ResizeResponse
	if code := doJSON(t, h, "POST", "/v1/tenants/A/resize", server.ResizeRequest{M: 3}, &resp); code != http.StatusOK {
		t.Fatalf("grow: %d", code)
	}
	if code := doJSON(t, h, "POST", "/v1/tenants/A/tasks", server.RegisterTaskRequest{Name: "b", E: 1, P: 2}, nil); code != http.StatusCreated {
		t.Fatalf("register after grow: %d", code)
	}
	if code := doJSON(t, h, "POST", "/v1/tenants/A/resize", server.ResizeRequest{M: 1, Drain: true}, &resp); code != http.StatusAccepted {
		t.Fatalf("queue drain: %d", code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := server.Open(server.Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var info server.TenantInfo
	if code := doJSON(t, r.Handler(), "GET", "/v1/tenants/A", nil, &info); code != http.StatusOK {
		t.Fatalf("info after restart: %d", code)
	}
	if info.M != 3 || info.PendingM != 1 {
		t.Fatalf("capacity state lost across restart: %+v", info)
	}
	// The restored pending target still gates admission...
	if code := doJSON(t, r.Handler(), "POST", "/v1/tenants/A/tasks", server.RegisterTaskRequest{Name: "c", E: 1, P: 2}, nil); code != http.StatusConflict {
		t.Fatalf("register during restored drain: %d", code)
	}
	// ...and still applies at the releasing unregister.
	if code := doJSON(t, r.Handler(), "POST", "/v1/tenants/A/drain", nil, nil); code != http.StatusOK {
		t.Fatalf("drain: %d", code)
	}
	if code := doJSON(t, r.Handler(), "DELETE", "/v1/tenants/A/tasks/a", nil, nil); code != http.StatusNoContent {
		t.Fatalf("unregister: %d", code)
	}
	info = server.TenantInfo{} // pendingM is omitempty; don't keep the stale value
	if code := doJSON(t, r.Handler(), "GET", "/v1/tenants/A", nil, &info); code != http.StatusOK || info.M != 1 || info.PendingM != 0 {
		t.Fatalf("restored drain did not apply: %+v", info)
	}
}
