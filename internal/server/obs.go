package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"desyncpfair/internal/obs"
	"desyncpfair/internal/wal"
)

// serverObs bundles the server's observability state: the injected clock
// every measured path reads, the aggregate histograms, the build identity,
// and the trace-ring capacity handed to each new tenant. Per-tenant
// histograms and rings live on the tenants themselves (attached by
// addTenant), so tenant deletion reclaims them and /metrics reads them
// live, like the rest of the tenant series.
type serverObs struct {
	clock    obs.Clock
	build    obs.BuildInfo
	traceCap int

	submitAck   *obs.Histogram // submit→ack, all tenants
	dispatchLag *obs.Histogram // dispatch tardiness in quanta, all tenants

	walAppend     *obs.Histogram // journal frame-write duration
	walFsync      *obs.Histogram // fsync syscall duration
	walLogToFsync *obs.Histogram // append→durable group-commit latency
}

// defaultTraceCap is each tenant's trace-ring retention (events). At
// ~6 events per command it covers the last ~700 commands — enough to
// diagnose "what just happened" without unbounded memory.
const defaultTraceCap = 4096

func newServerObs() *serverObs {
	return &serverObs{
		clock:         obs.Real{},
		build:         obs.ReadBuildInfo(),
		traceCap:      defaultTraceCap,
		submitAck:     obs.NewHistogram(obs.DefaultLatencyBuckets),
		dispatchLag:   obs.NewHistogram(obs.QuantaBuckets),
		walAppend:     obs.NewHistogram(obs.DefaultLatencyBuckets),
		walFsync:      obs.NewHistogram(obs.DefaultLatencyBuckets),
		walLogToFsync: obs.NewHistogram(obs.DefaultLatencyBuckets),
	}
}

// walTimings adapts the serverObs histograms to the wal.Timings sink.
type walTimings struct{ o *serverObs }

func (t walTimings) ObserveAppend(d time.Duration)     { t.o.walAppend.Observe(d.Seconds()) }
func (t walTimings) ObserveFsync(d time.Duration)      { t.o.walFsync.Observe(d.Seconds()) }
func (t walTimings) ObserveLogToFsync(d time.Duration) { t.o.walLogToFsync.Observe(d.Seconds()) }

var _ wal.Timings = walTimings{}

// SetClock injects the clock every measured path reads: request timing,
// submit→ack histograms, trace timestamps (WAL timings are wired at Open
// via Options.Clock). With an obs.Fake clock every exposed metric is an
// exact function of the request sequence — the deterministic test
// harness depends on it. Call before the server takes traffic.
func (s *Server) SetClock(c obs.Clock) {
	if c != nil {
		s.obs.clock = c
	}
}

// SetBuildInfo overrides the pfaird_build_info labels (discovered from
// the runtime by default). Golden-exposition tests pin it so scrapes do
// not vary with the toolchain.
func (s *Server) SetBuildInfo(bi obs.BuildInfo) { s.obs.build = bi }

// SetTraceBuffer sets the per-tenant trace-ring capacity for tenants
// created after the call. Call before the server takes traffic.
func (s *Server) SetTraceBuffer(n int) {
	if n > 0 {
		s.obs.traceCap = n
	}
}

// EnablePprof mounts net/http/pprof's handlers at /debug/pprof/ on the
// server's mux, so one listener serves the API, /metrics, and profiles.
// The handlers bypass the request-metrics middleware: a 30-second CPU
// profile would distort the latency histograms it is being taken to
// explain.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// tenantObsSnap is one tenant's observability snapshot, taken at
// exposition time alongside TenantInfo.
type tenantObsSnap struct {
	id        string
	submitAck obs.Snapshot
	lag       obs.Snapshot
	traceLen  int64
}

// appendObsMetrics renders the observability families. The family order
// is fixed — the golden exposition test pins it — and every family is
// written exactly once, aggregate before per-tenant.
func (o *serverObs) appendObsMetrics(b []byte, snaps []tenantObsSnap) []byte {
	b = obs.AppendHeader(b, "pfaird_submit_ack_seconds",
		"Latency from job-submit request arrival to acknowledgment, all tenants.", "histogram")
	b = obs.AppendHistogram(b, "pfaird_submit_ack_seconds", nil, o.submitAck.Snapshot())
	b = obs.AppendHeader(b, "pfaird_dispatch_lag_quanta",
		"Dispatch tardiness in quanta, all tenants (Theorem 3 bounds it by 1).", "histogram")
	b = obs.AppendHistogram(b, "pfaird_dispatch_lag_quanta", nil, o.dispatchLag.Snapshot())
	b = obs.AppendHeader(b, "pfaird_tenant_submit_ack_seconds",
		"Latency from job-submit request arrival to acknowledgment, per tenant.", "histogram")
	for _, sn := range snaps {
		b = obs.AppendHistogram(b, "pfaird_tenant_submit_ack_seconds",
			[]obs.Label{{Name: "tenant", Value: sn.id}}, sn.submitAck)
	}
	b = obs.AppendHeader(b, "pfaird_tenant_dispatch_lag_quanta",
		"Dispatch tardiness in quanta, per tenant.", "histogram")
	for _, sn := range snaps {
		b = obs.AppendHistogram(b, "pfaird_tenant_dispatch_lag_quanta",
			[]obs.Label{{Name: "tenant", Value: sn.id}}, sn.lag)
	}
	b = obs.AppendHeader(b, "pfaird_trace_events_total",
		"Trace events recorded, per tenant (ring retention is bounded; this counts all ever recorded).", "counter")
	for _, sn := range snaps {
		b = obs.AppendSample(b, "pfaird_trace_events_total",
			[]obs.Label{{Name: "tenant", Value: sn.id}}, strconv.FormatInt(sn.traceLen, 10))
	}
	return b
}

// appendBuildInfo renders the info-metric identifying the binary.
func (o *serverObs) appendBuildInfo(b []byte) []byte {
	b = obs.AppendHeader(b, "pfaird_build_info",
		"Build identity of the serving binary; the value is always 1.", "gauge")
	return obs.AppendSample(b, "pfaird_build_info", []obs.Label{
		{Name: "version", Value: o.build.Version},
		{Name: "revision", Value: o.build.Revision},
		{Name: "go", Value: o.build.GoVersion},
	}, "1")
}

// appendWALTimingMetrics renders the journal latency histograms (durable
// servers only; the in-memory server's exposition is unchanged).
func (o *serverObs) appendWALTimingMetrics(b []byte) []byte {
	b = obs.AppendHeader(b, "pfaird_wal_append_seconds",
		"Journal frame-write duration.", "histogram")
	b = obs.AppendHistogram(b, "pfaird_wal_append_seconds", nil, o.walAppend.Snapshot())
	b = obs.AppendHeader(b, "pfaird_wal_fsync_seconds",
		"Journal fsync syscall duration.", "histogram")
	b = obs.AppendHistogram(b, "pfaird_wal_fsync_seconds", nil, o.walFsync.Snapshot())
	b = obs.AppendHeader(b, "pfaird_wal_log_to_fsync_seconds",
		"Per-record latency from journal append to the group-commit fsync that made it durable.", "histogram")
	return obs.AppendHistogram(b, "pfaird_wal_log_to_fsync_seconds", nil, o.walLogToFsync.Snapshot())
}

// handleTrace streams the tenant's trace ring as NDJSON, one obs.Event
// per line: first the retained backlog from ?from (default 0), then live
// events as commands execute. Ring retention is bounded, so a follower
// that asks for evicted history simply resumes at the oldest retained
// event — the Seq gap tells it how much it missed. ?follow=false stops
// at the current end instead of following. The stream ends with the
// client, the tenant, or the server, exactly like the dispatch stream.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(r.PathValue("id"))
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: no tenant %q", r.PathValue("id")))
		return
	}
	var from int64
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("server: bad from %q", v))
			return
		}
		from = n
	}
	follow := r.URL.Query().Get("follow") != "false"

	ring := t.traceRing()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fw := newFrameWriter(w, s.streamStall)
	fw.flush()

	sub := ring.Subscribe()
	defer ring.Unsubscribe(sub)

	// Trace frames come from the ring's memoized wire cache: each retained
	// event is encoded at most once no matter how many followers stream it.
	// No lag eviction here — the ring already bounds retention, so a slow
	// follower skips ahead past dropped history instead of pinning memory.
	pos := from
	for {
		frames, dropped := ring.FramesSince(pos)
		pos += dropped
		wrote := len(frames) > 0
		pos += int64(len(frames))
		for len(frames) > 0 {
			n := min(len(frames), maxStreamBatch)
			if err := fw.writeFrames(frames[:n]); err != nil {
				return // client went away
			}
			frames = frames[n:]
		}
		if wrote {
			fw.flush()
		}
		if !follow {
			return
		}
		select {
		case <-sub:
		case <-r.Context().Done():
			return
		case <-t.Closed():
			follow = false // flush whatever landed, then stop
		case <-s.shutdown:
			follow = false
		}
	}
}
