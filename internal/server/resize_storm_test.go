package server_test

import (
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"desyncpfair/internal/faultfs"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/server"
)

// stormCmd is one scripted call of a resize storm. expectReject marks a
// deliberately infeasible request (a shrink below Σwt without drain, or a
// registration over the effective cap): on a healthy server it must
// return 409 and journal nothing — that is the "never silently applied"
// half of the resize-safety contract.
type stormCmd struct {
	cmd
	expectReject bool
}

// resizeStormScript generates a seeded storm of capacity changes
// interleaved with load: grows, feasible shrinks, infeasible shrinks
// (both rejected and drain-queued, the queued ones then converged by
// unregisters), registrations gated by the pending target, submits,
// advances, and drains. The generator mirrors the admission controller's
// semantics exactly, so every command not marked expectReject succeeds on
// a healthy server — which is what makes "2xx responses" == "journaled
// commands" an exact invariant for the crash harness.
func resizeStormScript(seed int64) []stormCmd {
	rng := rand.New(rand.NewSource(seed))
	var sc []stormCmd
	add := func(method, path string, body any) {
		sc = append(sc, stormCmd{cmd: cmd{method, path, body}})
	}
	addReject := func(method, path string, body any) {
		sc = append(sc, stormCmd{cmd: cmd{method, path, body}, expectReject: true})
	}

	// Mirror of the tenant's admission state.
	type task struct {
		name string
		e, p int64
	}
	m, pending := 2, 0
	util := rat.Zero
	var tasks []task
	nextID := 0
	cap := func() int {
		if pending != 0 {
			return pending
		}
		return m
	}
	ceilUtil := func() int { return int(util.Ceil()) }
	weights := [][2]int64{{1, 2}, {1, 3}, {2, 3}, {1, 4}, {3, 4}}

	register := func() {
		w := weights[rng.Intn(len(weights))]
		name := fmt.Sprintf("t%d", nextID)
		newTotal := util.Add(rat.New(w[0], w[1]))
		if rat.FromInt(int64(cap())).Less(newTotal) {
			addReject("POST", "/v1/tenants/S/tasks", server.RegisterTaskRequest{Name: name, E: w[0], P: w[1]})
			return
		}
		nextID++
		tasks = append(tasks, task{name, w[0], w[1]})
		util = newTotal
		add("POST", "/v1/tenants/S/tasks", server.RegisterTaskRequest{Name: name, E: w[0], P: w[1]})
	}

	add("POST", "/v1/tenants", server.CreateTenantRequest{ID: "S", M: m})
	for len(tasks) < 3 {
		register()
	}

	for round := 0; round < 12; round++ {
		for n := 1 + rng.Intn(3); n > 0; n-- {
			add("POST", "/v1/tenants/S/jobs", server.SubmitJobRequest{Task: tasks[rng.Intn(len(tasks))].name})
		}
		add("POST", "/v1/tenants/S/advance", server.AdvanceRequest{By: []string{"1/2", "1", "3/2", "2"}[rng.Intn(4)]})

		switch rng.Intn(5) {
		case 0: // grow (cancels any pending shrink — the newest target wins)
			if target := m + 1 + rng.Intn(2); target <= 8 {
				add("POST", "/v1/tenants/S/resize", server.ResizeRequest{M: target})
				m, pending = target, 0
			}
		case 1: // feasible shrink to exactly ⌈Σwt⌉
			if target := ceilUtil(); target >= 1 && target < m && pending == 0 {
				add("POST", "/v1/tenants/S/resize", server.ResizeRequest{M: target})
				m = target
			}
		case 2: // infeasible shrink without drain: must be rejected
			if target := ceilUtil() - 1; target >= 1 && rat.FromInt(int64(target)).Less(util) {
				addReject("POST", "/v1/tenants/S/resize", server.ResizeRequest{M: target})
			}
		case 3: // infeasible shrink with drain: queued, then converged
			target := ceilUtil() - 1
			if target < 1 || !rat.FromInt(int64(target)).Less(util) || pending != 0 {
				break
			}
			add("POST", "/v1/tenants/S/resize", server.ResizeRequest{M: target, Drain: true})
			pending = target
			// Unregisters are only legal with no undispatched work.
			add("POST", "/v1/tenants/S/drain", nil)
			for rat.FromInt(int64(pending)).Less(util) {
				last := tasks[len(tasks)-1]
				tasks = tasks[:len(tasks)-1]
				util = util.Sub(rat.New(last.e, last.p))
				add("DELETE", "/v1/tenants/S/tasks/"+last.name, nil)
			}
			m, pending = pending, 0
			for len(tasks) == 0 {
				register()
			}
		case 4: // churn: register (possibly gated by a pending target)
			register()
		}
	}
	add("POST", "/v1/tenants/S/drain", nil)
	return sc
}

// normalizeStorm zeroes the rejection counters of a captured state:
// rejected requests journal nothing by design, so their count is restored
// from the last snapshot, not replayed — every other field must round-trip
// exactly.
func normalizeStorm(st serverState) serverState {
	out := serverState{Infos: map[string]server.TenantInfo{}, Events: st.Events}
	for id, ti := range st.Infos {
		ti.Rejections = 0
		out.Infos[id] = ti
	}
	return out
}

// TestResizeStormCrashRecovery is the resize-safety property harness: 50
// seeded storms of grows, shrinks, drain-queued shrinks, and load, each
// run against a durable server on a crash-at-byte filesystem so crashes
// land mid-resize and mid-drain, then recovered and continued. Each run
// asserts
//
//  1. an infeasible shrink without drain is always rejected with 409 and
//     never silently applied — on the live server, on the recovered
//     server, and in the continuation;
//  2. recovery is clean and acked ≤ recovered commands ≤ issued;
//  3. the recovered state — including the capacity history M/PendingM —
//     equals the uninterrupted reference run at the same command count,
//     so OpResize replay reproduces every capacity change exactly;
//  4. continuing the storm converges on the reference final state; and
//  5. max tardiness stays ≤ 1 quantum at every command boundary of the
//     reference run and across crash + recovery (Theorem 3, elastic M).
func TestResizeStormCrashRecovery(t *testing.T) {
	for seed := 0; seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			script := resizeStormScript(int64(seed))

			// Reference: uninterrupted in-memory run; states[k] is the
			// observable state after k journaled commands. Rejected requests
			// journal nothing and so add no state.
			ref := server.New()
			states := []serverState{captureState(t, ref.Handler())}
			counted := []int{} // script index of each counted command
			for i, c := range script {
				code := doCmd(t, ref.Handler(), c.cmd)
				if c.expectReject {
					if code != http.StatusConflict {
						t.Fatalf("reference command %d (%s %s): infeasible request answered %d, want 409",
							i, c.method, c.path, code)
					}
					continue
				}
				if code >= 300 {
					t.Fatalf("reference command %d (%s %s) failed: %d", i, c.method, c.path, code)
				}
				counted = append(counted, i)
				states = append(states, captureState(t, ref.Handler()))
			}
			for k, st := range states {
				for id, ti := range st.Infos {
					if k == len(states)-1 {
						assertTardinessBound(t, "reference final "+id, ti)
					} else {
						assertTardinessBound(t, fmt.Sprintf("reference %s after command %d", id, k), ti)
					}
				}
			}

			// Storm run on a crash-at-byte filesystem.
			dir := t.TempDir()
			budget := int64(64 + seed*seed*200)
			ffs := faultfs.New(faultfs.Options{Seed: int64(seed), CrashAtByte: budget})
			acked, issued := 0, 0
			srvA, err := server.Open(server.Options{
				DataDir: dir, FsyncEvery: 3, FsyncMaxDelay: -1, SnapshotEvery: 16, FS: ffs,
			})
			if err == nil {
			storm:
				for i, c := range script {
					code := doCmd(t, srvA.Handler(), c.cmd)
					switch {
					case c.expectReject && code == http.StatusConflict:
						// Correctly refused; journals nothing.
					case c.expectReject && code < 300:
						t.Fatalf("storm command %d (%s %s): infeasible shrink/register silently applied (%d)",
							i, c.method, c.path, code)
					case c.expectReject:
						break storm // crash-induced failure (503/500)
					case code < 300:
						issued++
						acked++
					default:
						issued++
						break storm
					}
				}
				_ = srvA.Close()
			}
			if !ffs.Crashed() && acked < len(counted) {
				t.Fatalf("storm stopped at %d/%d commands without a crash (budget %d)", acked, len(counted), budget)
			}

			// Recover from whatever survived.
			srvB, err := server.Open(server.Options{DataDir: dir, FsyncEvery: 3, SnapshotEvery: 16})
			if err != nil {
				t.Fatalf("recovery Open after crash at byte %d: %v", budget, err)
			}
			defer srvB.Close()
			rec := srvB.Recovery()
			if rec.ReplayErrors != 0 || rec.DispatchMismatches != 0 {
				t.Fatalf("recovery degraded: %d replay errors, %d dispatch mismatches (capacity history diverged?)",
					rec.ReplayErrors, rec.DispatchMismatches)
			}
			if rec.Commands < uint64(acked) || rec.Commands > uint64(issued) {
				t.Fatalf("recovered %d commands outside [acked %d, issued %d]", rec.Commands, acked, issued)
			}
			got := captureState(t, srvB.Handler())
			assertStateEqual(t, "recovered vs reference prefix",
				normalizeStorm(got), normalizeStorm(states[rec.Commands]))
			for id, ti := range got.Infos {
				assertTardinessBound(t, "recovered "+id, ti)
			}

			// Continue the storm where the recovered prefix ended.
			start := 0
			if rec.Commands > 0 {
				start = counted[rec.Commands-1] + 1
			}
			for i, c := range script[start:] {
				code := doCmd(t, srvB.Handler(), c.cmd)
				if c.expectReject {
					if code != http.StatusConflict {
						t.Fatalf("continuation command %d (%s %s): infeasible request answered %d, want 409",
							start+i, c.method, c.path, code)
					}
					continue
				}
				if code >= 300 {
					t.Fatalf("continuation command %d (%s %s) failed: %d", start+i, c.method, c.path, code)
				}
			}
			final := captureState(t, srvB.Handler())
			assertStateEqual(t, "continuation vs reference final",
				normalizeStorm(final), normalizeStorm(states[len(states)-1]))
			for id, ti := range final.Infos {
				assertTardinessBound(t, "final "+id, ti)
			}
		})
	}
}
