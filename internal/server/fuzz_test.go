package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"desyncpfair/internal/rat"
	"desyncpfair/internal/server"
)

// fuzzDo drives one request straight through the handler and returns the
// status code. A handler panic fails the fuzz run; a 5xx on a fuzzed body
// is treated as a bug by the callers below.
func fuzzDo(h http.Handler, method, path string, body []byte) int {
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw.Code
}

func fuzzUtil(t *testing.T, h http.Handler) rat.Rat {
	t.Helper()
	req := httptest.NewRequest("GET", "/v1/tenants/fz", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("get tenant: %d", rw.Code)
	}
	var info server.TenantInfo
	if err := json.Unmarshal(rw.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	u, err := rat.Parse(info.Utilization)
	if err != nil {
		t.Fatalf("reported utilization %q: %v", info.Utilization, err)
	}
	return u
}

// FuzzTaskParams throws arbitrary task-parameter streams at the admission
// boundary of a live server and pins the feasibility iff of the paper:
// a register is admitted exactly when Σwt + e/p ≤ M, the server's reported
// utilization always tracks the admitted set, and it never exceeds M.
// Fuzzed junk bodies on every mutating endpoint must be rejected with a
// 4xx — never a panic, never a 5xx, never a utilization change.
//
// Weights are decoded with denominators ≤ 40 so the oracle's exact
// rational arithmetic stays far from int64 overflow (lcm(1..40) ≈ 5.3e15);
// the admission invariant is about capacity accounting, not integer width.
func FuzzTaskParams(f *testing.F) {
	f.Add(uint8(2), []byte{0, 1, 2, 0, 39, 39, 1, 5, 7, 2, 0, 0})
	f.Add(uint8(1), []byte{0, 0, 0, 0, 0, 0, 3, 'j', 'u', 'n', 'k'})
	f.Add(uint8(3), []byte{1, 200, 13, 2, 9, 9, 0, 80, 80, 3, '{', '}'})
	f.Add(uint8(0), []byte(`{"name":"x","e":1,"p":1}`))
	f.Fuzz(func(t *testing.T, mRaw uint8, ops []byte) {
		if len(ops) > 512 {
			// The per-step oracle cross-check is quadratic in the op
			// count; long streams add no coverage, only wall clock.
			ops = ops[:512]
		}
		m := 1 + int(mRaw%3)
		srv := server.New()
		defer srv.Shutdown()
		h := srv.Handler()
		body, _ := json.Marshal(server.CreateTenantRequest{ID: "fz", M: m})
		if code := fuzzDo(h, "POST", "/v1/tenants", body); code != http.StatusCreated {
			t.Fatalf("create tenant: %d", code)
		}

		capacity := rat.FromInt(int64(m))
		util := rat.Zero // oracle mirror of the admitted Σwt
		weights := []rat.Rat{}
		names := []string{}
		seq := 0

		for i := 0; i+2 < len(ops); i += 3 {
			op, eb, pb := ops[i], ops[i+1], ops[i+2]
			switch op % 4 {
			case 0, 1: // register a bounded, always-valid weight
				p := 1 + int64(pb%40)
				e := 1 + int64(eb)%p
				name := fmt.Sprintf("t%d", seq)
				seq++
				body, _ := json.Marshal(server.RegisterTaskRequest{Name: name, E: e, P: p})
				code := fuzzDo(h, "POST", "/v1/tenants/fz/tasks", body)
				w := rat.New(e, p)
				fits := !capacity.Less(util.Add(w))
				switch code {
				case http.StatusCreated:
					if !fits {
						t.Fatalf("over-admission: %d/%d admitted at Σwt=%s, M=%d", e, p, util, m)
					}
					util = util.Add(w)
					weights = append(weights, w)
					names = append(names, name)
				case http.StatusConflict:
					if fits {
						t.Fatalf("under-admission: %d/%d rejected at Σwt=%s, M=%d (feasibility is an iff)", e, p, util, m)
					}
				default:
					t.Fatalf("register %d/%d: unexpected status %d", e, p, code)
				}
			case 2: // unregister: an admitted task if any, else a bogus name
				name := "no-such-task"
				var w rat.Rat
				pick := -1
				if len(names) > 0 {
					pick = int(eb) % len(names)
					name, w = names[pick], weights[pick]
				}
				code := fuzzDo(h, "DELETE", "/v1/tenants/fz/tasks/"+name, nil)
				if code >= 500 {
					t.Fatalf("unregister %q: server error %d", name, code)
				}
				if code < 300 {
					if pick < 0 {
						t.Fatalf("unregister of unknown task %q succeeded", name)
					}
					util = util.Sub(w)
					names = append(names[:pick], names[pick+1:]...)
					weights = append(weights[:pick], weights[pick+1:]...)
				}
			case 3: // raw fuzz body at a mutating endpoint: 4xx or benign 2xx
				paths := []string{"/v1/tenants/fz/tasks", "/v1/tenants/fz/jobs", "/v1/tenants/fz/advance", "/v1/tenants"}
				path := paths[int(eb)%len(paths)]
				raw := ops[i:]
				code := fuzzDo(h, "POST", path, raw)
				if code >= 500 {
					t.Fatalf("fuzz body %q on %s: server error %d", raw, path, code)
				}
				if path == "/v1/tenants/fz/tasks" && code == http.StatusCreated {
					// The raw bytes happened to be a valid register; fold it
					// into the oracle so the running total stays exact.
					var req server.RegisterTaskRequest
					if err := json.Unmarshal(raw, &req); err != nil {
						t.Fatalf("201 for unparseable body %q", raw)
					}
					w := rat.New(req.E, req.P)
					if capacity.Less(util.Add(w)) {
						t.Fatalf("over-admission via raw body %q at Σwt=%s, M=%d", raw, util, m)
					}
					util = util.Add(w)
					names = append(names, req.Name)
					weights = append(weights, w)
				}
			}

			got := fuzzUtil(t, h)
			if !got.Equal(util) {
				t.Fatalf("reported utilization %s, oracle says %s", got, util)
			}
			if capacity.Less(got) {
				t.Fatalf("utilization %s exceeds M=%d", got, m)
			}
		}
	})
}
