package server_test

// Deterministic observability harness. Every test here injects an
// obs.Fake clock that advances a fixed step per read, which makes each
// exposed duration an exact function of the request sequence: the full
// /metrics page can be compared against a golden file byte for byte, and
// every trace event's timestamp arithmetic can be checked exactly. The
// golden is regenerated with `go test ./internal/server -run Golden -update`.

import (
	"bufio"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"context"

	"desyncpfair/internal/client"
	"desyncpfair/internal/model"
	"desyncpfair/internal/obs"
	"desyncpfair/internal/server"
	"desyncpfair/internal/wal"
)

var update = flag.Bool("update", false, "rewrite golden files")

// newObsServer opens a durable server on a fake millisecond clock with
// pinned build info, so its /metrics output depends only on the request
// sequence driven through it.
func newObsServer(t testing.TB) *server.Server {
	t.Helper()
	srv, err := server.Open(server.Options{
		DataDir:    t.TempDir(),
		FsyncEvery: 1,
		// The idle-flush timer runs on the real clock; disable it so fsync
		// counts depend only on the request sequence under the fake clock.
		FsyncMaxDelay: -1,
		Clock:         obs.NewFake(time.Unix(1700000000, 0), time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetBuildInfo(obs.BuildInfo{Version: "v-test", Revision: "0000000", GoVersion: "go-test"})
	t.Cleanup(func() { srv.Close() })
	return srv
}

// obsWorkload is the fixed request script behind the golden exposition:
// two tenants, an admission rejection (for the error counter), jobs,
// integral and fractional advances, and a drain — every family the page
// exposes ends up non-trivial.
func obsWorkload() []cmd {
	return []cmd{
		{"POST", "/v1/tenants", server.CreateTenantRequest{ID: "acme", M: 2}},
		{"POST", "/v1/tenants", server.CreateTenantRequest{ID: "zeta", M: 1}},
		{"POST", "/v1/tenants/acme/tasks", server.RegisterTaskRequest{Name: "web", E: 1, P: 2}},
		{"POST", "/v1/tenants/acme/tasks", server.RegisterTaskRequest{Name: "db", E: 2, P: 3}},
		{"POST", "/v1/tenants/acme/tasks", server.RegisterTaskRequest{Name: "over", E: 1, P: 1}}, // rejected: 13/6 > 2
		{"POST", "/v1/tenants/zeta/tasks", server.RegisterTaskRequest{Name: "cron", E: 1, P: 4}},
		{"POST", "/v1/tenants/acme/jobs", server.SubmitJobRequest{Task: "web"}},
		{"POST", "/v1/tenants/acme/jobs", server.SubmitJobRequest{Task: "db"}},
		{"POST", "/v1/tenants/acme/advance", server.AdvanceRequest{By: "2"}},
		{"POST", "/v1/tenants/acme/jobs", server.SubmitJobRequest{Task: "web"}},
		{"POST", "/v1/tenants/acme/advance", server.AdvanceRequest{By: "1/2"}},
		{"POST", "/v1/tenants/zeta/jobs", server.SubmitJobRequest{Task: "cron"}},
		{"POST", "/v1/tenants/zeta/advance", server.AdvanceRequest{By: "4"}},
		{"POST", "/v1/tenants/acme/drain", nil},
		{"GET", "/healthz", nil},
		{"GET", "/v1/tenants/acme", nil},
	}
}

// TestMetricsGoldenExposition drives the fixed workload sequentially
// through the handler and compares the complete /metrics page against the
// golden file. Sequential requests on the fake clock leave nothing to
// vary: a byte of drift means an exposition change, which is exactly what
// the test is for. The page is then run through the package's own strict
// parser, so well-formedness (single HELP/TYPE per family, no reopened or
// duplicated families, internally consistent histograms) is pinned too.
func TestMetricsGoldenExposition(t *testing.T) {
	srv := newObsServer(t)
	h := srv.Handler()
	for i, c := range obsWorkload() {
		code := doCmd(t, h, c)
		wantOK := code >= 200 && code < 300
		if c.path == "/v1/tenants/acme/tasks" && c.body.(server.RegisterTaskRequest).Name == "over" {
			wantOK = code == http.StatusConflict
		}
		if !wantOK {
			t.Fatalf("workload step %d (%s %s): status %d", i, c.method, c.path, code)
		}
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rw.Code)
	}
	got := rw.Body.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden:\n%s", firstDiff(string(want), got))
	}

	ex, err := obs.ParseExposition(got)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if err := ex.Check(); err != nil {
		t.Fatalf("exposition is malformed: %v", err)
	}
	// Four successful submits landed in the aggregate ack histogram, and
	// each tenant's share reassembles from its labelled series.
	agg, err := ex.Histogram("pfaird_submit_ack_seconds", nil)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 4 {
		t.Errorf("aggregate submit-ack count %d, want 4", agg.Count)
	}
	acme, err := ex.Histogram("pfaird_tenant_submit_ack_seconds", []obs.Label{{Name: "tenant", Value: "acme"}})
	if err != nil {
		t.Fatal(err)
	}
	zeta, err := ex.Histogram("pfaird_tenant_submit_ack_seconds", []obs.Label{{Name: "tenant", Value: "zeta"}})
	if err != nil {
		t.Fatal(err)
	}
	if acme.Count != 3 || zeta.Count != 1 {
		t.Errorf("per-tenant submit-ack counts %d/%d, want 3/1", acme.Count, zeta.Count)
	}
	if agg.Sum != acme.Sum+zeta.Sum {
		t.Errorf("aggregate sum %g != tenant sums %g + %g", agg.Sum, acme.Sum, zeta.Sum)
	}
	// Theorem 3 in a histogram: every dispatch lag is ≤ 1 quantum, so the
	// le="1" bucket equals the count.
	lag, err := ex.Histogram("pfaird_dispatch_lag_quanta", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lag.Count == 0 {
		t.Fatal("no dispatch lag observations")
	}
	if got := lag.Buckets[len(lag.Buckets)-1]; got != lag.Count {
		t.Errorf("dispatch lag le=1 bucket %d < count %d: tardiness above one quantum", got, lag.Count)
	}
}

// firstDiff renders the first differing line of two texts.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return "line " + strings.TrimSpace(strings.Join([]string{
				`#` + itoa(i+1), "want:", w, "got:", g}, " "))
		}
	}
	return "(texts equal?)"
}

func itoa(n int) string {
	return string(appendInt(nil, n))
}

func appendInt(b []byte, n int) []byte {
	if n >= 10 {
		b = appendInt(b, n/10)
	}
	return append(b, byte('0'+n%10))
}

// traceEvents fetches and decodes a tenant's bounded trace stream.
func traceEvents(t *testing.T, h http.Handler, path string) []obs.Event {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("%s: status %d", path, rw.Code)
	}
	var out []obs.Event
	for _, line := range strings.Split(strings.TrimSpace(rw.Body.String()), "\n") {
		if line == "" {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

// TestTraceLifecycleExact runs one command of each kind and checks the
// trace stream event by event: sequence numbers, stage order, command
// correlation, and — because the clock is fake — the exact invariant
// DurNs == T − T(submit of the same command) on every staged event.
func TestTraceLifecycleExact(t *testing.T) {
	srv := newObsServer(t)
	h := srv.Handler()
	for i, c := range []cmd{
		{"POST", "/v1/tenants", server.CreateTenantRequest{ID: "acme", M: 1}},
		{"POST", "/v1/tenants/acme/tasks", server.RegisterTaskRequest{Name: "web", E: 1, P: 2}},
		{"POST", "/v1/tenants/acme/jobs", server.SubmitJobRequest{Task: "web"}},
		{"POST", "/v1/tenants/acme/advance", server.AdvanceRequest{By: "2"}},
	} {
		if code := doCmd(t, h, c); code >= 300 {
			t.Fatalf("step %d: status %d", i, code)
		}
	}

	events := traceEvents(t, h, "/v1/tenants/acme/trace?follow=false")
	want := []struct {
		cmd   int64
		op    string
		stage string
	}{
		{1, wal.OpTaskRegister, obs.StageSubmit},
		{1, wal.OpTaskRegister, obs.StageWALAppend},
		{1, wal.OpTaskRegister, obs.StageApply},
		{2, wal.OpJobSubmit, obs.StageSubmit},
		{2, wal.OpJobSubmit, obs.StageWALAppend},
		{2, wal.OpJobSubmit, obs.StageApply},
		{3, wal.OpAdvance, obs.StageSubmit},
		{3, wal.OpAdvance, obs.StageWALAppend},
		{3, wal.OpAdvance, obs.StageDispatch},
		{3, wal.OpAdvance, obs.StageApply},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
	}
	submitT := map[int64]int64{}
	var lastT int64
	for i, ev := range events {
		w := want[i]
		if ev.Seq != int64(i) {
			t.Errorf("event %d: seq %d", i, ev.Seq)
		}
		if ev.Cmd != w.cmd || ev.Op != w.op || ev.Stage != w.stage {
			t.Errorf("event %d: got (cmd=%d op=%s stage=%s), want (%d %s %s)",
				i, ev.Cmd, ev.Op, ev.Stage, w.cmd, w.op, w.stage)
		}
		if ev.Tenant != "acme" {
			t.Errorf("event %d: tenant %q", i, ev.Tenant)
		}
		if ev.T <= lastT {
			t.Errorf("event %d: timestamp %d not increasing past %d", i, ev.T, lastT)
		}
		lastT = ev.T
		if ev.Err != "" {
			t.Errorf("event %d: unexpected error %q", i, ev.Err)
		}
		switch ev.Stage {
		case obs.StageSubmit:
			submitT[ev.Cmd] = ev.T
			if ev.DurNs != 0 {
				t.Errorf("event %d: submit stage has DurNs %d", i, ev.DurNs)
			}
		default:
			if wantDur := ev.T - submitT[ev.Cmd]; ev.DurNs != wantDur {
				t.Errorf("event %d: DurNs %d, want %d (T − submit T, exact under the fake clock)",
					i, ev.DurNs, wantDur)
			}
		}
	}
	// Per-stage payloads: the register and submit name their task, the
	// submit and advance carry exact virtual times, and the dispatch ties
	// to decision 0 of the log with zero tardiness.
	if events[0].Task != "web" || events[3].Task != "web" {
		t.Errorf("task fields: register %q, submit %q", events[0].Task, events[3].Task)
	}
	if events[3].At != "0" || events[6].At != "2" {
		t.Errorf("at fields: submit %q, advance %q", events[3].At, events[6].At)
	}
	disp := events[8]
	if disp.Task != "web" || disp.DSeq != 0 || disp.Lag != "0" {
		t.Errorf("dispatch event payload: %+v", disp)
	}

	// ?from resumes mid-stream with the same sequence numbers.
	tail := traceEvents(t, h, "/v1/tenants/acme/trace?follow=false&from=6")
	if len(tail) != 4 || tail[0].Seq != 6 {
		t.Fatalf("from=6 tail: %+v", tail)
	}

	if code := doCmd(t, h, cmd{"GET", "/v1/tenants/acme/trace?from=-1", nil}); code != http.StatusBadRequest {
		t.Errorf("negative from: status %d", code)
	}
	if code := doCmd(t, h, cmd{"GET", "/v1/tenants/ghost/trace", nil}); code != http.StatusNotFound {
		t.Errorf("unknown tenant trace: status %d", code)
	}
}

// TestTraceFollowLive covers the streaming side: a follower sees the
// backlog, then events from commands issued while it is attached, and the
// stream ends cleanly when the tenant is deleted.
func TestTraceFollowLive(t *testing.T) {
	srv := newObsServer(t)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	if _, err := c.CreateTenant(ctx, "acme", 1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterTask(ctx, "acme", "web", model.W(1, 2)); err != nil {
		t.Fatal(err)
	}

	resp, err := hs.Client().Get(hs.URL + "/v1/tenants/acme/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	read := func() obs.Event {
		t.Helper()
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		var ev obs.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("stream line %q: %v", line, err)
		}
		return ev
	}
	for i := 0; i < 3; i++ { // the register command's backlog
		if ev := read(); ev.Cmd != 1 {
			t.Fatalf("backlog event %d: %+v", i, ev)
		}
	}

	if _, err := c.SubmitJob(ctx, "acme", "web", ""); err != nil {
		t.Fatal(err)
	}
	stages := []string{obs.StageSubmit, obs.StageWALAppend, obs.StageApply}
	for i, want := range stages { // the live command, as it happens
		ev := read()
		if ev.Cmd != 2 || ev.Stage != want {
			t.Fatalf("live event %d: got (cmd=%d stage=%s), want (2 %s)", i, ev.Cmd, ev.Stage, want)
		}
	}

	if err := c.DeleteTenant(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := br.ReadBytes('\n'); err == nil {
		t.Fatal("stream kept going after tenant deletion")
	}
}

// TestObsConcurrentScrapes is the -race workout: 8 scrapers pull and
// strictly parse /metrics while submitters mutate state, every scrape must
// be well-formed, and pfaird_commands_total must be monotone within each
// scraper. A close/reopen cycle afterwards checks the counter also
// survives recovery.
func TestObsConcurrentScrapes(t *testing.T) {
	dir := t.TempDir()
	srv, err := server.Open(server.Options{DataDir: dir, FsyncEvery: 4, SnapshotEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, "acme", 2, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterTask(ctx, "acme", "web", model.W(1, 2)); err != nil {
		t.Fatal(err)
	}

	const (
		scrapers   = 8
		submitters = 4
		iters      = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, scrapers+submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				if _, err := c.SubmitJob(ctx, "acme", "web", ""); err != nil {
					errs <- err
					return
				}
				// Concurrent relative advances serialize under the tenant
				// lock, so each resolves a fresh valid target.
				if _, err := postAdvance(hs, "acme", "2"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	scrapeOnce := func() (float64, error) {
		text, err := c.Metrics(ctx)
		if err != nil {
			return 0, err
		}
		ex, err := obs.ParseExposition(text)
		if err != nil {
			return 0, err
		}
		if err := ex.Check(); err != nil {
			return 0, err
		}
		f := ex.Family("pfaird_commands_total")
		if f == nil || len(f.Samples) != 1 {
			return 0, errMissingCommands
		}
		return f.Samples[0].Value, nil
	}
	var lastMu sync.Mutex
	var last float64
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := -1.0
			for j := 0; j < iters; j++ {
				v, err := scrapeOnce()
				if err != nil {
					errs <- err
					return
				}
				if v < prev {
					errs <- errNonMonotone
					return
				}
				prev = v
			}
			lastMu.Lock()
			if prev > last {
				last = prev
			}
			lastMu.Unlock()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	final, err := scrapeOnce()
	if err != nil {
		t.Fatal(err)
	}
	if final < last {
		t.Fatalf("final scrape %g below a concurrent scrape %g", final, last)
	}
	hs.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery must restore at least the acknowledged commands every
	// scrape saw; the counter never moves backwards across a restart.
	srv2, err := server.Open(server.Options{DataDir: dir, FsyncEvery: 4, SnapshotEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rw := httptest.NewRecorder()
	srv2.Handler().ServeHTTP(rw, req)
	ex, err := obs.ParseExposition(rw.Body.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Check(); err != nil {
		t.Fatal(err)
	}
	f := ex.Family("pfaird_commands_total")
	if f == nil || len(f.Samples) != 1 {
		t.Fatal("recovered server exposes no pfaird_commands_total")
	}
	if got := f.Samples[0].Value; got < final {
		t.Fatalf("commands_total after recovery %g < pre-restart %g", got, final)
	}
}

var (
	errMissingCommands = &obsErr{"scrape has no single pfaird_commands_total sample"}
	errNonMonotone     = &obsErr{"pfaird_commands_total moved backwards within one scraper"}
)

type obsErr struct{ s string }

func (e *obsErr) Error() string { return e.s }

// postAdvance issues a relative advance over the real HTTP server (the
// client API takes absolute targets, which would race here).
func postAdvance(hs *httptest.Server, id, by string) (*http.Response, error) {
	b, _ := json.Marshal(server.AdvanceRequest{By: by})
	resp, err := hs.Client().Post(hs.URL+"/v1/tenants/"+id+"/advance", "application/json", strings.NewReader(string(b)))
	if err != nil {
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, &obsErr{"advance: status " + itoa(resp.StatusCode)}
	}
	return resp, nil
}
