package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"desyncpfair/internal/faultfs"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/server"
)

// cmd is one scripted API call. The crash script is a fixed, always-valid
// command sequence: every call succeeds on a healthy server, so the only
// possible failure is the injected crash. That is what makes "number of
// 2xx responses" == "number of journaled commands" an exact invariant.
type cmd struct {
	method, path string
	body         any
}

// crashScript builds the deterministic load: three tenants (one of them
// created, used, and deleted), task churn after drains, integral and
// fractional advances, and early releasing — every journaled op kind.
func crashScript() []cmd {
	var sc []cmd
	add := func(method, path string, body any) { sc = append(sc, cmd{method, path, body}) }

	add("POST", "/v1/tenants", server.CreateTenantRequest{ID: "A", M: 2})
	add("POST", "/v1/tenants", server.CreateTenantRequest{ID: "B", M: 2, Policy: "PD2"})
	add("POST", "/v1/tenants/A/tasks", server.RegisterTaskRequest{Name: "a1", E: 1, P: 2})
	add("POST", "/v1/tenants/A/tasks", server.RegisterTaskRequest{Name: "a2", E: 2, P: 3})
	add("POST", "/v1/tenants/A/tasks", server.RegisterTaskRequest{Name: "a3", E: 1, P: 4})
	add("POST", "/v1/tenants/B/tasks", server.RegisterTaskRequest{Name: "b1", E: 3, P: 4})
	add("POST", "/v1/tenants/B/tasks", server.RegisterTaskRequest{Name: "b2", E: 1, P: 2})

	// A short-lived tenant exercises delete replay.
	add("POST", "/v1/tenants", server.CreateTenantRequest{ID: "C", M: 1})
	add("POST", "/v1/tenants/C/tasks", server.RegisterTaskRequest{Name: "c1", E: 1, P: 1})
	add("POST", "/v1/tenants/C/jobs", server.SubmitJobRequest{Task: "c1"})
	add("POST", "/v1/tenants/C/advance", server.AdvanceRequest{By: "2"})
	add("POST", "/v1/tenants/C/drain", nil)
	add("DELETE", "/v1/tenants/C", nil)

	for r := 0; r < 8; r++ {
		add("POST", "/v1/tenants/A/jobs", server.SubmitJobRequest{Task: "a1"})
		add("POST", "/v1/tenants/A/jobs", server.SubmitJobRequest{Task: "a2"})
		add("POST", "/v1/tenants/A/advance", server.AdvanceRequest{By: "1"})
		add("POST", "/v1/tenants/A/jobs", server.SubmitJobRequest{Task: "a3", Earliness: 1})
		add("POST", "/v1/tenants/A/advance", server.AdvanceRequest{By: "1/2"})
		add("POST", "/v1/tenants/B/jobs", server.SubmitJobRequest{Task: "b1"})
		add("POST", "/v1/tenants/B/advance", server.AdvanceRequest{By: "1"})
		add("POST", "/v1/tenants/B/jobs", server.SubmitJobRequest{Task: "b2"})
		add("POST", "/v1/tenants/B/advance", server.AdvanceRequest{By: "3/2"})
	}
	add("POST", "/v1/tenants/A/drain", nil)
	add("POST", "/v1/tenants/B/drain", nil)

	// Task churn is only legal right after a drain (no undispatched work).
	add("DELETE", "/v1/tenants/A/tasks/a3", nil)
	add("POST", "/v1/tenants/A/tasks", server.RegisterTaskRequest{Name: "a4", E: 1, P: 3})
	for r := 0; r < 4; r++ {
		add("POST", "/v1/tenants/A/jobs", server.SubmitJobRequest{Task: "a4"})
		add("POST", "/v1/tenants/A/jobs", server.SubmitJobRequest{Task: "a1"})
		add("POST", "/v1/tenants/A/advance", server.AdvanceRequest{By: "2"})
		add("POST", "/v1/tenants/B/jobs", server.SubmitJobRequest{Task: "b1"})
		add("POST", "/v1/tenants/B/advance", server.AdvanceRequest{By: "1/2"})
	}
	add("POST", "/v1/tenants/A/drain", nil)
	add("POST", "/v1/tenants/B/drain", nil)
	return sc
}

// doCmd drives one scripted call straight through the handler.
func doCmd(t *testing.T, h http.Handler, c cmd) int {
	t.Helper()
	var body io.Reader
	if c.body != nil {
		b, err := json.Marshal(c.body)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(b)
	}
	req := httptest.NewRequest(c.method, c.path, body)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw.Code
}

// serverState is everything observable about a server's tenants: the info
// snapshots and the complete dispatch logs.
type serverState struct {
	Infos  map[string]server.TenantInfo
	Events map[string][]server.DispatchEvent
}

func captureState(t *testing.T, h http.Handler) serverState {
	t.Helper()
	st := serverState{Infos: map[string]server.TenantInfo{}, Events: map[string][]server.DispatchEvent{}}
	req := httptest.NewRequest("GET", "/v1/tenants", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("list tenants: %d", rw.Code)
	}
	var infos []server.TenantInfo
	if err := json.Unmarshal(rw.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	for _, ti := range infos {
		st.Infos[ti.ID] = ti
		req := httptest.NewRequest("GET", "/v1/tenants/"+ti.ID+"/dispatches?follow=false", nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			t.Fatalf("dispatches %s: %d", ti.ID, rw.Code)
		}
		var evs []server.DispatchEvent
		sc := bufio.NewScanner(bytes.NewReader(rw.Body.Bytes()))
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ev server.DispatchEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("dispatch line: %v", err)
			}
			evs = append(evs, ev)
		}
		st.Events[ti.ID] = evs
	}
	return st
}

// TestCrashRecoveryPrefixConsistent is the fault-injection suite of the
// tentpole: for 50 seeded crash points it runs the scripted load against a
// durable server on a crash-at-byte-N filesystem, then recovers from the
// surviving directory and asserts
//
//  1. recovery is clean (no replay errors, no dispatch mismatches),
//  2. acked ≤ recovered commands ≤ issued — nothing acknowledged is ever
//     lost, and the only thing recovery may add beyond the acked prefix
//     is the in-flight suffix: commands journaled and applied whose
//     durability ack the crash cut off (the pipelined ack path makes this
//     window real; log-before-apply makes it safe),
//  3. the recovered state — every tenant's info and complete dispatch
//     log — equals the uninterrupted reference run after the same
//     command count, which makes the recovered dispatch stream a
//     prefix-consistent continuation of the reference run,
//  4. re-applying the rest of the script converges on the reference's
//     final state decision for decision, and
//  5. no tenant ever exceeds Theorem 3's one-quantum tardiness bound.
//
// Crash budgets grow quadratically so the 50 points cluster where the
// journal is young (boot, snapshot writes, first commands) and still
// reach far past the script's total write volume (a no-crash control).
func TestCrashRecoveryPrefixConsistent(t *testing.T) {
	script := crashScript()

	// Reference: uninterrupted in-memory run, capturing the observable
	// state after every command prefix.
	ref := server.New()
	states := make([]serverState, 0, len(script)+1)
	states = append(states, captureState(t, ref.Handler()))
	for i, c := range script {
		if code := doCmd(t, ref.Handler(), c); code >= 300 {
			t.Fatalf("reference script command %d (%s %s) failed: %d", i, c.method, c.path, code)
		}
		states = append(states, captureState(t, ref.Handler()))
	}
	for id, ti := range states[len(script)].Infos {
		assertTardinessBound(t, "reference "+id, ti)
	}

	for seed := 0; seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			budget := int64(64 + seed*seed*160)
			ffs := faultfs.New(faultfs.Options{Seed: int64(seed), CrashAtByte: budget})

			acked, issued := 0, 0
			srvA, err := server.Open(server.Options{
				DataDir: dir, FsyncEvery: 3, FsyncMaxDelay: -1, SnapshotEvery: 16, FS: ffs,
			})
			if err == nil {
				for _, c := range script {
					issued++
					if code := doCmd(t, srvA.Handler(), c); code >= 300 {
						break
					}
					acked++
				}
				_ = srvA.Close() // releases descriptors; errors expected post-crash
			}
			if !ffs.Crashed() && acked < len(script) {
				t.Fatalf("script stopped at command %d without a crash (budget %d)", acked, budget)
			}

			// Recover on the real filesystem from whatever survived.
			srvB, err := server.Open(server.Options{DataDir: dir, FsyncEvery: 3, SnapshotEvery: 16})
			if err != nil {
				t.Fatalf("recovery Open after crash at byte %d: %v", budget, err)
			}
			defer srvB.Close()
			rec := srvB.Recovery()
			if rec == nil || !rec.Durable {
				t.Fatal("recovered server reports no recovery info")
			}
			if rec.ReplayErrors != 0 {
				t.Fatalf("recovery replayed with %d errors", rec.ReplayErrors)
			}
			if rec.DispatchMismatches != 0 {
				t.Fatalf("recovery saw %d dispatch mismatches: the regenerated decisions contradict the journal", rec.DispatchMismatches)
			}
			if rec.Commands < uint64(acked) || rec.Commands > uint64(issued) {
				t.Fatalf("recovered %d commands outside [acked %d, issued %d] (crash at byte %d, %d truncated)",
					rec.Commands, acked, issued, budget, rec.TruncatedBytes)
			}

			got := captureState(t, srvB.Handler())
			assertStateEqual(t, "recovered vs reference prefix", got, states[rec.Commands])

			var health server.HealthResponse
			hreq := httptest.NewRequest("GET", "/healthz", nil)
			hrw := httptest.NewRecorder()
			srvB.Handler().ServeHTTP(hrw, hreq)
			if hrw.Code != http.StatusOK {
				t.Fatalf("healthz after clean recovery: %d", hrw.Code)
			}
			if json.Unmarshal(hrw.Body.Bytes(), &health); health.Status != "ok" {
				t.Fatalf("healthz status %q after clean recovery", health.Status)
			}

			// Continue the script where the recovered prefix ended (not the
			// acked prefix: an in-flight command that survived must not be
			// replayed twice); the recovered server must converge on the
			// reference final state.
			done := int(rec.Commands)
			for i, c := range script[done:] {
				if code := doCmd(t, srvB.Handler(), c); code >= 300 {
					t.Fatalf("continuation command %d (%s %s) failed: %d", done+i, c.method, c.path, code)
				}
			}
			final := captureState(t, srvB.Handler())
			assertStateEqual(t, "continuation vs reference final", final, states[len(script)])
			for id, ti := range final.Infos {
				assertTardinessBound(t, "recovered "+id, ti)
			}

			// A clean shutdown snapshots everything: the next boot replays
			// nothing and still serves the same state.
			if err := srvB.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			srvC, err := server.Open(server.Options{DataDir: dir})
			if err != nil {
				t.Fatalf("reopen after clean shutdown: %v", err)
			}
			defer srvC.Close()
			if rc := srvC.Recovery(); rc.RecordsReplayed != 0 {
				t.Fatalf("reopen after clean shutdown replayed %d records, want 0", rc.RecordsReplayed)
			}
			assertStateEqual(t, "reopen vs reference final", captureState(t, srvC.Handler()), states[len(script)])
		})
	}
}

// TestCrashRecoveryBatchSubmit is the batch-path seed batch: the same
// prefix-consistency contract as above, but the load submits jobs through
// POST /v1/tenants/{id}/jobs:batch with FsyncEvery=1, so every ack rides
// the pipelined wait (append+apply under the lock, fsync outside it) and a
// crash can land between the fsync and the ack — or tear the batch's
// frame group mid-write. The reference runs the same jobs singly: a batch
// is atomic at the API but journals as per-job commands, so the recovered
// command count indexes the same per-command state sequence, and a torn
// batch may legitimately recover any prefix of itself (it was never
// acked).
func TestCrashRecoveryBatchSubmit(t *testing.T) {
	// Logical command stream: the per-command granularity both the journal
	// and the reference states use. batchAt[i] marks the start of a
	// 4-job batch in the logical stream.
	var logical []cmd
	batchStarts := map[int]int{} // logical index → batch size
	add := func(c cmd) { logical = append(logical, c) }

	add(cmd{"POST", "/v1/tenants", server.CreateTenantRequest{ID: "A", M: 2}})
	add(cmd{"POST", "/v1/tenants/A/tasks", server.RegisterTaskRequest{Name: "a1", E: 1, P: 2}})
	add(cmd{"POST", "/v1/tenants/A/tasks", server.RegisterTaskRequest{Name: "a2", E: 2, P: 3}})
	for r := 0; r < 10; r++ {
		batchStarts[len(logical)] = 4
		add(cmd{"POST", "/v1/tenants/A/jobs", server.SubmitJobRequest{Task: "a1"}})
		add(cmd{"POST", "/v1/tenants/A/jobs", server.SubmitJobRequest{Task: "a2"}})
		add(cmd{"POST", "/v1/tenants/A/jobs", server.SubmitJobRequest{Task: "a1"}})
		add(cmd{"POST", "/v1/tenants/A/jobs", server.SubmitJobRequest{Task: "a2"}})
		add(cmd{"POST", "/v1/tenants/A/advance", server.AdvanceRequest{By: "2"}})
	}
	add(cmd{"POST", "/v1/tenants/A/drain", nil})

	// Reference: the logical stream applied one command at a time.
	ref := server.New()
	states := make([]serverState, 0, len(logical)+1)
	states = append(states, captureState(t, ref.Handler()))
	for i, c := range logical {
		if code := doCmd(t, ref.Handler(), c); code >= 300 {
			t.Fatalf("reference command %d (%s %s) failed: %d", i, c.method, c.path, code)
		}
		states = append(states, captureState(t, ref.Handler()))
	}

	for seed := 0; seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			budget := int64(96 + seed*seed*420)
			ffs := faultfs.New(faultfs.Options{Seed: int64(seed), CrashAtByte: budget})

			acked, issued := 0, 0
			srvA, err := server.Open(server.Options{
				DataDir: dir, FsyncEvery: 1, FsyncMaxDelay: -1, SnapshotEvery: 64, FS: ffs,
			})
			if err == nil {
			drive:
				for i := 0; i < len(logical); {
					if size, ok := batchStarts[i]; ok {
						var breq server.SubmitJobsRequest
						for j := 0; j < size; j++ {
							breq.Jobs = append(breq.Jobs, logical[i+j].body.(server.SubmitJobRequest))
						}
						issued += size
						if code := doCmd(t, srvA.Handler(), cmd{"POST", "/v1/tenants/A/jobs:batch", breq}); code >= 300 {
							break drive
						}
						acked += size
						i += size
						continue
					}
					issued++
					if code := doCmd(t, srvA.Handler(), logical[i]); code >= 300 {
						break drive
					}
					acked++
					i++
				}
				_ = srvA.Close()
			}
			if !ffs.Crashed() && acked < len(logical) {
				t.Fatalf("script stopped at command %d without a crash (budget %d)", acked, budget)
			}

			srvB, err := server.Open(server.Options{DataDir: dir, FsyncEvery: 1, SnapshotEvery: 64})
			if err != nil {
				t.Fatalf("recovery Open after crash at byte %d: %v", budget, err)
			}
			defer srvB.Close()
			rec := srvB.Recovery()
			if rec.ReplayErrors != 0 || rec.DispatchMismatches != 0 {
				t.Fatalf("recovery not clean: %d replay errors, %d dispatch mismatches", rec.ReplayErrors, rec.DispatchMismatches)
			}
			if rec.Commands < uint64(acked) || rec.Commands > uint64(issued) {
				t.Fatalf("recovered %d commands outside [acked %d, issued %d] (crash at byte %d, %d truncated)",
					rec.Commands, acked, issued, budget, rec.TruncatedBytes)
			}
			assertStateEqual(t, "recovered vs reference prefix", captureState(t, srvB.Handler()), states[rec.Commands])

			// Converge: run the remaining logical commands singly.
			done := int(rec.Commands)
			for i, c := range logical[done:] {
				if code := doCmd(t, srvB.Handler(), c); code >= 300 {
					t.Fatalf("continuation command %d (%s %s) failed: %d", done+i, c.method, c.path, code)
				}
			}
			final := captureState(t, srvB.Handler())
			assertStateEqual(t, "continuation vs reference final", final, states[len(logical)])
			for id, ti := range final.Infos {
				assertTardinessBound(t, "recovered "+id, ti)
			}
		})
	}
}

func assertStateEqual(t *testing.T, what string, got, want serverState) {
	t.Helper()
	if len(got.Infos) != len(want.Infos) {
		t.Fatalf("%s: %d tenants, want %d", what, len(got.Infos), len(want.Infos))
	}
	for id, wi := range want.Infos {
		gi, ok := got.Infos[id]
		if !ok {
			t.Fatalf("%s: tenant %s missing", what, id)
		}
		if gi != wi {
			t.Fatalf("%s: tenant %s info = %+v, want %+v", what, id, gi, wi)
		}
		ge, we := got.Events[id], want.Events[id]
		if len(ge) != len(we) {
			t.Fatalf("%s: tenant %s has %d dispatch events, want %d", what, id, len(ge), len(we))
		}
		for i := range we {
			if ge[i] != we[i] {
				t.Fatalf("%s: tenant %s decision %d = %+v, want %+v", what, id, i, ge[i], we[i])
			}
		}
		_ = reflect.DeepEqual // structs are comparable; kept for clarity if fields grow
	}
}

func assertTardinessBound(t *testing.T, what string, ti server.TenantInfo) {
	t.Helper()
	tar, err := rat.Parse(ti.MaxTardiness)
	if err != nil {
		t.Fatalf("%s: maxTardiness %q: %v", what, ti.MaxTardiness, err)
	}
	if rat.One.Less(tar) {
		t.Fatalf("%s: max tardiness %s exceeds Theorem 3's one-quantum bound", what, tar)
	}
}
