package server

import (
	"errors"
	"net/http"
	"runtime"
	"testing"

	"desyncpfair/internal/model"
)

// TestRingFullBackpressure pins the bounded-ring contract: when the loop
// is busy and the ring is at capacity, exec refuses immediately with
// ErrRingFull (mapped to 429) instead of blocking the handler.
func TestRingFullBackpressure(t *testing.T) {
	tn, err := newTenant("ring", 1, "", 1) // ring capacity 1
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()

	// Park the loop inside a control command so the ring cannot drain.
	entered := make(chan struct{})
	gate := make(chan struct{})
	ctlDone := make(chan cmdResult, 1)
	go func() {
		ctlDone <- tn.ctlExec(&command{kind: cmdCtl, fn: func() {
			close(entered)
			<-gate
		}})
	}()
	<-entered

	// Fill the single ring slot.
	queued := make(chan cmdResult, 1)
	go func() { queued <- tn.exec(&command{kind: cmdDrain}) }()
	for len(tn.ring) == 0 {
		runtime.Gosched()
	}

	res := tn.exec(&command{kind: cmdDrain})
	if !errors.Is(res.err, ErrRingFull) {
		t.Fatalf("exec on a full ring: err = %v, want ErrRingFull", res.err)
	}
	if got := statusOf(res.err, http.StatusBadRequest); got != http.StatusTooManyRequests {
		t.Fatalf("statusOf(ErrRingFull) = %d, want 429", got)
	}

	// Release the loop: the queued command must complete normally.
	close(gate)
	if r := <-ctlDone; r.err != nil {
		t.Fatalf("control command: %v", r.err)
	}
	if r := <-queued; r.err != nil {
		t.Fatalf("queued drain after release: %v", r.err)
	}
}

// TestCloseDrainsBacklogThenRefuses pins the close protocol: commands
// accepted before the close gate are applied (not lost, not failed), and
// commands after it fail errTenantGone.
func TestCloseDrainsBacklogThenRefuses(t *testing.T) {
	tn, err := NewTenant("closing", 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tn.RegisterTask("a", model.W(1, 2)); err != nil {
		t.Fatal(err)
	}

	// Park the loop and stuff the ring with submits while it cannot drain.
	entered := make(chan struct{})
	gate := make(chan struct{})
	ctlDone := make(chan cmdResult, 1)
	go func() {
		ctlDone <- tn.ctlExec(&command{kind: cmdCtl, fn: func() {
			close(entered)
			<-gate
		}})
	}()
	<-entered
	const backlog = 5
	pending := make(chan cmdResult, backlog)
	for i := 0; i < backlog; i++ {
		go func() {
			pending <- tn.exec(&command{kind: cmdSubmit, submit: SubmitJobRequest{Task: "a"}})
		}()
	}
	for len(tn.ring) < backlog {
		runtime.Gosched()
	}

	closed := make(chan struct{})
	go func() {
		close(gate) // un-park the loop as Close starts racing it
		tn.Close()
		close(closed)
	}()
	<-ctlDone
	for i := 0; i < backlog; i++ {
		if r := <-pending; r.err != nil {
			t.Fatalf("backlogged submit %d failed across close: %v", i, r.err)
		}
	}
	<-closed

	if _, _, err := tn.SubmitJob("a", "", 0); !errors.Is(err, errTenantGone) {
		t.Fatalf("submit after close: err = %v, want errTenantGone", err)
	}
	select {
	case <-tn.Closed():
	default:
		t.Fatal("Closed() channel not closed after Close")
	}
	tn.Close() // idempotent
}

// TestSnapshotReadersSeeClosedTenantState pins that the read paths stay
// serviceable after close: the last published snapshot remains readable
// (streams use it to flush before ending).
func TestSnapshotReadersSeeClosedTenantState(t *testing.T) {
	tn, err := NewTenant("readers", 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tn.RegisterTask("a", model.W(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tn.SubmitJob("a", "", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tn.Drain(); err != nil {
		t.Fatal(err)
	}
	want := tn.Info()
	if want.Dispatches == 0 {
		t.Fatal("drain dispatched nothing")
	}
	tn.Close()
	if got := tn.Info(); got != want {
		t.Fatalf("Info after close = %+v, want %+v", got, want)
	}
	if got := len(tn.EventsSince(0)); int64(got) != want.Dispatches {
		t.Fatalf("EventsSince after close returned %d events, want %d", got, want.Dispatches)
	}
}
