package server_test

// Concurrency tests for the single-writer tenant loop: submitters racing
// scrapers across compaction and tenant churn (run the package with -race
// to make these meaningful), and seeded crash runs proving the ring never
// acknowledges a command the journal did not capture.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"desyncpfair/internal/faultfs"
	"desyncpfair/internal/server"
)

// TestConcurrentSubmittersAndScrapers drives N submitters against two
// long-lived tenants while scrapers hammer every lock-free read path
// (/metrics, /healthz, dispatch replay, trace replay), a churner
// registers/unregisters a task, and a third tenant is deleted and
// recreated mid-traffic — all over a durable server with a snapshot
// interval small enough that compaction (which checkpoints every tenant
// through its control channel) interleaves with the load. Under -race
// this is the proof that snapshot publication, the frozen route map, and
// the close protocol synchronize correctly; the final close/reopen proves
// the interleaving journals a replayable history.
func TestConcurrentSubmittersAndScrapers(t *testing.T) {
	dir := t.TempDir()
	srv, err := server.Open(server.Options{
		DataDir: dir, FsyncEvery: 8, FsyncMaxDelay: -1, SnapshotEvery: 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	do := func(c cmd) int { return doCmd(t, h, c) }
	mustDo := func(c cmd) {
		if code := do(c); code >= 300 {
			t.Fatalf("setup %s %s: status %d", c.method, c.path, code)
		}
	}
	for _, id := range []string{"s0", "s1"} {
		mustDo(cmd{"POST", "/v1/tenants", server.CreateTenantRequest{ID: id, M: 2}})
		for k := 0; k < 4; k++ {
			mustDo(cmd{"POST", "/v1/tenants/" + id + "/tasks",
				server.RegisterTaskRequest{Name: fmt.Sprintf("t%d", k), E: 1, P: 4}})
		}
	}

	// Every status below 500 is a legal outcome while tenants churn:
	// 404 (deleted tenant), 409 (recreate race), 429 (ring full),
	// 400 (unregister with pending work). 5xx means the server broke.
	var bad atomic.Int64
	check := func(code int) {
		if code >= 500 {
			bad.Add(1)
		}
	}

	const submitters = 6
	const iters = 60
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", w%2)
			task := fmt.Sprintf("t%d", w%4)
			for i := 0; i < iters; i++ {
				check(do(cmd{"POST", "/v1/tenants/" + id + "/jobs", server.SubmitJobRequest{Task: task}}))
				if i%8 == 7 {
					check(do(cmd{"POST", "/v1/tenants/" + id + "/advance", server.AdvanceRequest{By: "1"}}))
				}
			}
		}(w)
	}
	// Tenant churn: create, load, delete, repeat — exercising the close
	// protocol (backlog flush, journal-ordered delete) under live traffic
	// from the scrapers enumerating all tenants.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			check(do(cmd{"POST", "/v1/tenants", server.CreateTenantRequest{ID: "victim", M: 1}}))
			check(do(cmd{"POST", "/v1/tenants/victim/tasks", server.RegisterTaskRequest{Name: "v", E: 1, P: 2}}))
			check(do(cmd{"POST", "/v1/tenants/victim/jobs", server.SubmitJobRequest{Task: "v"}}))
			check(do(cmd{"POST", "/v1/tenants/victim/drain", nil}))
			check(do(cmd{"DELETE", "/v1/tenants/victim", nil}))
		}
	}()
	// Task churn on a live tenant: drain-then-unregister races fresh
	// submits, so both outcomes (gone before or after) must be clean.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			check(do(cmd{"POST", "/v1/tenants/s0/tasks", server.RegisterTaskRequest{Name: "churn", E: 1, P: 8}}))
			check(do(cmd{"POST", "/v1/tenants/s0/jobs", server.SubmitJobRequest{Task: "churn"}}))
			check(do(cmd{"POST", "/v1/tenants/s0/drain", nil}))
			check(do(cmd{"DELETE", "/v1/tenants/s0/tasks/churn", nil}))
		}
	}()
	const scrapers = 3
	stop := make(chan struct{})
	var swg sync.WaitGroup
	for g := 0; g < scrapers; g++ {
		swg.Add(1)
		go func(g int) {
			defer swg.Done()
			paths := []string{
				"/metrics",
				"/healthz",
				"/v1/tenants",
				"/v1/tenants/s0/dispatches?follow=false",
				"/v1/tenants/s1/trace?follow=false",
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest("GET", paths[(i+g)%len(paths)], nil)
				rw := httptest.NewRecorder()
				h.ServeHTTP(rw, req)
				check(rw.Code)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	swg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d requests answered 5xx during concurrent load", n)
	}

	before := captureState(t, h)
	for id, ti := range before.Infos {
		assertTardinessBound(t, "loaded "+id, ti)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	srv2, err := server.Open(server.Options{DataDir: dir, FsyncEvery: 8, SnapshotEvery: 48})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer srv2.Close()
	rec := srv2.Recovery()
	if rec.ReplayErrors != 0 || rec.DispatchMismatches != 0 {
		t.Fatalf("reopen degraded: %d replay errors, %d dispatch mismatches",
			rec.ReplayErrors, rec.DispatchMismatches)
	}
	assertStateEqual(t, "reopened vs pre-close", captureState(t, srv2.Handler()), before)
}

// TestCrashNeverAcksUnjournaled runs concurrent submitters against a
// filesystem that dies mid-write at a seeded byte budget, then recovers
// and checks the acknowledgment invariant: every 2xx-acked command is in
// the recovered state (acked ≤ rec.Commands), and the journal never
// invents work (rec.Commands ≤ issued). Because submitters ack only after
// waitDurable, a command the ring accepted but the journal lost must have
// answered 5xx — if the loop ever completed a command before its journal
// frame group, some seed here catches it as acked > rec.Commands.
func TestCrashNeverAcksUnjournaled(t *testing.T) {
	for seed := 0; seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			budget := int64(512 + seed*seed*700)
			ffs := faultfs.New(faultfs.Options{Seed: int64(seed), CrashAtByte: budget})

			var acked, issued atomic.Int64
			srvA, err := server.Open(server.Options{
				DataDir: dir, FsyncEvery: 4, FsyncMaxDelay: -1, SnapshotEvery: 64, FS: ffs,
			})
			if err == nil {
				h := srvA.Handler()
				do := func(c cmd) int {
					issued.Add(1)
					code := doCmd(t, h, c)
					if code < 300 {
						acked.Add(1)
					}
					return code
				}
				setupOK := true
				if do(cmd{"POST", "/v1/tenants", server.CreateTenantRequest{ID: "w", M: 2}}) >= 300 {
					setupOK = false
				}
				for k := 0; setupOK && k < 4; k++ {
					if do(cmd{"POST", "/v1/tenants/w/tasks",
						server.RegisterTaskRequest{Name: fmt.Sprintf("t%d", k), E: 1, P: 4}}) >= 300 {
						setupOK = false
					}
				}
				if setupOK {
					var wg sync.WaitGroup
					for g := 0; g < 4; g++ {
						wg.Add(1)
						go func(g int) {
							defer wg.Done()
							task := fmt.Sprintf("t%d", g)
							for i := 0; i < 60; i++ {
								code := do(cmd{"POST", "/v1/tenants/w/jobs", server.SubmitJobRequest{Task: task}})
								if code >= 500 {
									return // journal wedged after the crash
								}
								if i%8 == 7 {
									if do(cmd{"POST", "/v1/tenants/w/advance", server.AdvanceRequest{By: "1"}}) >= 500 {
										return
									}
								}
							}
						}(g)
					}
					wg.Wait()
				}
				_ = srvA.Close() // errors expected post-crash
			}

			srvB, err := server.Open(server.Options{DataDir: dir, FsyncEvery: 4, SnapshotEvery: 64})
			if err != nil {
				t.Fatalf("recovery Open after crash at byte %d: %v", budget, err)
			}
			defer srvB.Close()
			rec := srvB.Recovery()
			if rec.ReplayErrors != 0 {
				t.Fatalf("recovery replayed with %d errors", rec.ReplayErrors)
			}
			if rec.DispatchMismatches != 0 {
				t.Fatalf("recovery saw %d dispatch mismatches", rec.DispatchMismatches)
			}
			a, i := uint64(acked.Load()), uint64(issued.Load())
			if rec.Commands < a || rec.Commands > i {
				t.Fatalf("recovered %d commands outside [acked %d, issued %d] (crash at byte %d, %d truncated): an acked command escaped the journal",
					rec.Commands, a, i, budget, rec.TruncatedBytes)
			}
			if ffs.Crashed() {
				var health server.HealthResponse
				hreq := httptest.NewRequest("GET", "/healthz", nil)
				hrw := httptest.NewRecorder()
				srvB.Handler().ServeHTTP(hrw, hreq)
				if hrw.Code != http.StatusOK {
					t.Fatalf("healthz after recovery: %d", hrw.Code)
				}
				if json.Unmarshal(hrw.Body.Bytes(), &health); health.Status != "ok" {
					t.Fatalf("recovered server health %q, want ok", health.Status)
				}
			}
		})
	}
}
