package server

// Benchmarks for the encode-once egress plane. BenchmarkDispatchFanout
// measures the cached-frame path: one op serializes a 64-record batch
// exactly once and fans the shared frames out to N subscribers through
// the reused net.Buffers vector. BenchmarkDispatchFanoutEncode is the
// pre-PR baseline it replaced — every subscriber runs its own
// json.Encoder over every record — so the acceptance ratio
// (allocs/op and ns/op-per-subscriber at 64 subs) is read straight off
// `go test -bench 'DispatchFanout' -benchmem`.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
)

// benchEvents builds a representative 64-record dispatch batch.
func benchEvents() []DispatchEvent {
	evs := make([]DispatchEvent, 64)
	for i := range evs {
		evs[i] = DispatchEvent{
			Seq:       int64(i),
			Task:      fmt.Sprintf("task-%d", i%8),
			Index:     int64(i / 8),
			Proc:      i % 4,
			Start:     fmt.Sprintf("%d", i),
			Finish:    fmt.Sprintf("%d", i+1),
			Deadline:  int64(i + 2),
			Tardiness: "0",
		}
	}
	return evs
}

func BenchmarkDispatchFanout(b *testing.B) {
	evs := benchEvents()
	for _, subs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("%dsubs", subs), func(b *testing.B) {
			writers := make([]*frameWriter, subs)
			for i := range writers {
				writers[i] = &frameWriter{w: discardResponseWriter{}}
			}
			frames := make([][]byte, len(evs))
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				// Encode once — the tenant loop's side of the contract —
				// then every subscriber writes the same frames by reference.
				for i, ev := range evs {
					frames[i] = marshalDispatchFrame(ev)
				}
				for _, fw := range writers {
					if err := fw.writeFrames(frames); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkDispatchFanoutEncode is the replaced design: no shared cache,
// each subscriber encodes every record itself.
func BenchmarkDispatchFanoutEncode(b *testing.B) {
	evs := benchEvents()
	for _, subs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("%dsubs", subs), func(b *testing.B) {
			encs := make([]*json.Encoder, subs)
			for i := range encs {
				encs[i] = json.NewEncoder(io.Discard)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				for _, enc := range encs {
					for _, ev := range evs {
						if err := enc.Encode(ev); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// discardResponseWriter is the minimal ResponseWriter the frameWriter
// needs in a benchmark: writes vanish, there is no Flusher and no
// deadline support, exactly like an httptest recorder.
type discardResponseWriter struct{}

func (discardResponseWriter) Header() http.Header         { return nil }
func (discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (discardResponseWriter) WriteHeader(int)             {}

// BenchmarkMetricsExposition measures a full /metrics render on the
// pooled strconv.Append* path, over a server with eight live tenants.
func BenchmarkMetricsExposition(b *testing.B) {
	s := New()
	defer s.Shutdown()
	for i := 0; i < 8; i++ {
		t, err := newTenant(fmt.Sprintf("bench-%d", i), 2, "", s.submitRing)
		if err != nil {
			b.Fatal(err)
		}
		s.opMu.RLock()
		_, err = s.addTenant(t)
		s.opMu.RUnlock()
		if err != nil {
			b.Fatal(err)
		}
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var infos []TenantInfo
		var snaps []tenantObsSnap
		for _, t := range s.allTenants() {
			infos = append(infos, t.Info())
			snaps = append(snaps, t.obsSnapshot())
		}
		buf = buf[:0]
		buf = s.obs.appendBuildInfo(buf)
		buf = s.metrics.appendMetrics(buf, infos)
		buf = s.obs.appendObsMetrics(buf, snaps)
		buf = s.appendWALMetrics(buf)
	}
	if len(buf) == 0 {
		b.Fatal("empty exposition")
	}
}
