package server

// Wire types of the pfaird JSON API, shared with internal/client. All
// rational quantities (virtual times, tardiness, utilization) travel as
// exact strings in internal/rat syntax ("7", "3/2") — never as floats —
// so a client can round-trip them without losing the paper's exactness.

// CreateTenantRequest creates a tenant: an isolated online executive on M
// processors under the named priority policy ("PD2" when empty; also
// "PD", "PF", "EPDF").
type CreateTenantRequest struct {
	ID     string `json:"id"`
	M      int    `json:"m"`
	Policy string `json:"policy,omitempty"`
}

// TenantInfo is a point-in-time snapshot of one tenant. PendingM is the
// target of a drain-mode shrink still waiting for utilization to fall (0
// when none is queued).
type TenantInfo struct {
	ID           string `json:"id"`
	M            int    `json:"m"`
	PendingM     int    `json:"pendingM,omitempty"`
	Policy       string `json:"policy"`
	Now          string `json:"now"`          // current virtual time
	Utilization  string `json:"utilization"`  // Σ wt of admitted tasks
	Tasks        int    `json:"tasks"`        // admitted task count
	Pending      int    `json:"pending"`      // released, undispatched subtasks
	Dispatches   int64  `json:"dispatches"`   // decisions made so far
	MaxTardiness string `json:"maxTardiness"` // worst tardiness observed (≤ 1 by Theorem 3)
	Rejections   int64  `json:"rejections"`   // admission rejections so far
}

// RegisterTaskRequest admits a task of weight E/P into a tenant.
type RegisterTaskRequest struct {
	Name string `json:"name"`
	E    int64  `json:"e"`
	P    int64  `json:"p"`
}

// RegisterTaskResponse reports the admission decision. Admitted is false
// when the task would push Σ wt over M; the tenant is unchanged then.
type RegisterTaskResponse struct {
	Admitted  bool   `json:"admitted"`
	Guarantee string `json:"guarantee"`
	Reason    string `json:"reason"`
}

// SubmitJobRequest releases one job (E subtasks) of a registered task. An
// empty At means "at the tenant's current virtual time", which is the
// race-free choice for concurrent clients. Earliness enables early
// releasing by up to that many slots (eq. 6).
//
// Key is an optional client-supplied idempotency key: resubmitting a job
// with a key the tenant has already applied returns the original response
// without applying again, which makes the POST safe to retry after an
// ambiguous failure or a promotion. Keys are remembered per tenant in a
// bounded FIFO (the most recent 4096), journaled with the command, and
// survive crash recovery and replication.
type SubmitJobRequest struct {
	Task      string `json:"task"`
	At        string `json:"at,omitempty"`
	Earliness int64  `json:"earliness,omitempty"`
	Key       string `json:"key,omitempty"`
}

// SubmitJobResponse echoes the effective arrival time.
type SubmitJobResponse struct {
	At      string `json:"at"`
	Pending int    `json:"pending"`
}

// SubmitJobsRequest releases a batch of jobs in one request
// (POST /v1/tenants/{id}/jobs:batch). The batch is atomic: every job is
// validated before any is applied, one bad job rejects the whole batch,
// and on a durable server the batch is journaled as one frame group and
// acknowledged after a single fsync.
type SubmitJobsRequest struct {
	Jobs []SubmitJobRequest `json:"jobs"`
}

// SubmitJobsResponse reports a fully-accepted batch; Results[i] matches
// Jobs[i] of the request.
type SubmitJobsResponse struct {
	Accepted int                 `json:"accepted"`
	Results  []SubmitJobResponse `json:"results"`
}

// ResizeRequest changes a tenant's processor count
// (POST /v1/tenants/{id}/resize). A grow takes effect at the tenant's
// next quantum boundary. A shrink is feasibility-checked: while Σwt
// exceeds the target it is rejected (HTTP 409), or with Drain set queued
// (HTTP 202) — new registrations are then gated by the target and the
// shrink applies at the unregister that brings Σwt within it.
type ResizeRequest struct {
	M     int  `json:"m"`
	Drain bool `json:"drain,omitempty"`
}

// ResizeResponse reports what the resize did: Outcome is "applied",
// "queued", or "rejected"; M is the effective processor count after the
// call and PendingM the queued shrink target, if any.
type ResizeResponse struct {
	Outcome     string `json:"outcome"`
	M           int    `json:"m"`
	PendingM    int    `json:"pendingM,omitempty"`
	Utilization string `json:"utilization"`
	Reason      string `json:"reason"`
}

// AdvanceRequest advances a tenant's virtual time, dispatching work on the
// way. Exactly one of Until (absolute) or By (relative) must be set; By is
// the race-free choice for concurrent clients.
type AdvanceRequest struct {
	Until string `json:"until,omitempty"`
	By    string `json:"by,omitempty"`
}

// AdvanceResponse reports the new virtual time and how many dispatch
// decisions the advance produced.
type AdvanceResponse struct {
	Now        string `json:"now"`
	Dispatched int64  `json:"dispatched"`
	Pending    int    `json:"pending"`
}

// DispatchEvent is one scheduling decision, as streamed by
// GET /v1/tenants/{id}/dispatches (one JSON object per line). Seq is the
// 0-based decision index within the tenant; a stream opened with ?from=N
// replays the log from decision N before following live decisions.
type DispatchEvent struct {
	Seq       int64  `json:"seq"`
	Task      string `json:"task"`
	Index     int64  `json:"index"`
	Proc      int    `json:"proc"`
	Start     string `json:"start"`
	Finish    string `json:"finish"`
	Deadline  int64  `json:"deadline"`
	Tardiness string `json:"tardiness"`
}

// HealthResponse is the body of GET /healthz. Status is "ok", "degraded"
// (recovery saw replay errors or dispatch mismatches, or replication is
// erroring — state is being served but warrants attention),
// "bootstrapping" (a follower still loading its snapshot/backlog; served
// with HTTP 503 so routers never send traffic to a cold node), or
// "wal-failed" (the journal wedged; mutations return 503 until restart).
// Role is "leader", "follower", or "candidate"; AppliedLSN the highest
// journal position reflected in served state. ReplicationLagLSN is
// present on followers: how far the leader's durable LSN is ahead (-1
// until first measured). Recovery is present on durable servers and
// describes what the last boot rebuilt from disk.
type HealthResponse struct {
	Status            string        `json:"status"`
	Role              string        `json:"role"`
	Term              uint64        `json:"term,omitempty"`
	AppliedLSN        uint64        `json:"appliedLSN,omitempty"`
	ReplicationLagLSN *int64        `json:"replicationLagLSN,omitempty"`
	Recovery          *RecoveryInfo `json:"recovery,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
