package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"desyncpfair/internal/admission"
	"desyncpfair/internal/model"
	"desyncpfair/internal/obs"
	"desyncpfair/internal/online"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/wal"
)

// Tenant wraps one online.Executive behind a single-writer event loop.
// online.Executive is single-goroutine by contract; instead of a mutex,
// each tenant runs one loop goroutine (runLoop, loop.go) fed by a bounded
// MPSC submit ring. HTTP handlers validate the wire input, enqueue a
// command, and wait on its completion; the loop journals, applies, and
// publishes an immutable tenantSnap through an atomic pointer. Every read
// path — Info, /metrics, stream replay, recovery verification — loads the
// snapshot and never synchronizes with the writer, so scrapes and
// followers cost the hot path nothing.
//
// Field ownership:
//   - loop-owned (no lock; only the loop goroutine may touch them after
//     start): ex, ctrl, tasks, log, maxTar, reject, pendDisp, cur*, m
//     (mirrors the controller's processor count across resizes; readers
//     use the snapshot).
//   - immutable after construction: id, policy, ring, ctl, closed.
//   - atomics: snap (published state), hooks (journal callbacks), obsP
//     (tracer + histograms), closing (delete gate).
//   - locks: ringMu is the enqueue/close barrier (see loop.go); subMu
//     guards the stream-follower set.
type Tenant struct {
	id     string
	policy string
	m      int

	ring    chan *command
	ctl     chan *command
	ringMu  sync.RWMutex
	closing atomic.Bool
	closed  chan struct{}

	snap  atomic.Pointer[tenantSnap]
	hooks atomic.Pointer[journalHooks]
	obsP  atomic.Pointer[tenantObs]

	// Loop-owned state.
	ex    *online.Executive
	ctrl  *admission.Controller
	tasks map[string]*model.Task
	log   []DispatchEvent
	// frames mirrors log entry-for-entry with each event's NDJSON wire
	// bytes (json.Marshal + '\n'), encoded once here — by the loop that
	// owns the record — and then served by reference to every dispatch
	// stream and ?from replay. Entries recorded while no subscriber was
	// attached are nil (the submit path pays nothing for egress nobody
	// is reading); FramesSince fills those on demand without touching
	// the shared array. Same aliasing discipline as log: the visible
	// prefix of the backing array is immutable.
	frames [][]byte
	maxTar rat.Rat
	reject int64
	// pendDisp buffers the dispatch records one command's apply produced;
	// flushAfterApply journals them as a single frame group.
	pendDisp []wal.Record
	// curCmd/curStart/curOp tie dispatch trace events to the command
	// whose apply produced them.
	curCmd   int64
	curStart time.Time
	curOp    string
	// idem/idemQ remember responses of keyed job submits (bounded FIFO,
	// MaxIdemKeys): a resubmit with a seen key returns the original
	// response without applying or journaling again. Rebuilt identically
	// on replay — records carry the key — so retry-after-crash and
	// retry-after-promotion both dedupe.
	idem  map[string]SubmitJobResponse
	idemQ []string

	subMu sync.Mutex
	subs  map[*subscriber]struct{}
	// subCount mirrors len(subs) for the loop's record path: with no
	// follower attached the loop skips the eager frame encode entirely.
	// The read is racy by design — a follower arriving mid-command at
	// worst finds nil entries, which FramesSince encodes on demand.
	subCount atomic.Int64
}

// tenantSnap is the immutable state image the loop publishes after every
// command. The log slice aliases the loop's backing array up to its
// length — the loop only ever appends past it, so the visible prefix
// never mutates and readers serve it with zero copying.
type tenantSnap struct {
	now      rat.Rat
	util     rat.Rat
	m        int // current processor count (resizable)
	pendingM int // queued drain-mode shrink target, 0 when none
	tasks    int
	pending  int
	log      []DispatchEvent
	frames   [][]byte // wire bytes of log, index-aligned (see Tenant.frames)
	maxTar   rat.Rat
	reject   int64
}

// tenantObs bundles the tenant's observability sinks behind one atomic
// pointer: the trace ring, the per-tenant histograms, and the aggregate
// sinks. Allocated lazily — a server-attached tenant never pays for the
// standalone defaults (previously every tenant allocated its trace ring
// twice: once in NewTenant, once in attachObs).
type tenantObs struct {
	tr        *obs.Tracer    // command-lifecycle trace ring
	submitAck *obs.Histogram // submit→ack latency, this tenant
	lag       *obs.Histogram // dispatch tardiness in quanta, this tenant
	sobs      *serverObs     // aggregate sinks (nil on a bare tenant)
}

// subscriber is one dispatch-stream follower. ping has capacity 1; the
// loop's post-command non-blocking send coalesces any number of new
// events into one wakeup, and the follower re-reads the log to catch up.
type subscriber struct {
	ping chan struct{}
}

// PolicyByName maps a wire policy name to a prio.Policy. Empty selects PD².
func PolicyByName(name string) (prio.Policy, error) {
	switch name {
	case "", "PD2":
		return prio.PD2{}, nil
	case "PD":
		return prio.PD{}, nil
	case "PF":
		return prio.PF{}, nil
	case "EPDF":
		return prio.EPDF{}, nil
	default:
		return nil, fmt.Errorf("server: unknown policy %q (want PD2, PD, PF or EPDF)", name)
	}
}

// NewTenant creates a tenant with id on m processors under the named
// policy ("" = PD²) with the default submit-ring capacity.
func NewTenant(id string, m int, policyName string) (*Tenant, error) {
	return newTenant(id, m, policyName, 0)
}

func newTenant(id string, m int, policyName string, ringSize int) (*Tenant, error) {
	if id == "" {
		return nil, fmt.Errorf("server: empty tenant id")
	}
	if m < 1 {
		return nil, fmt.Errorf("server: tenant %q needs m ≥ 1, got %d", id, m)
	}
	if m > MaxM {
		return nil, fmt.Errorf("server: tenant %q wants m = %d > %d processors", id, m, MaxM)
	}
	pol, err := PolicyByName(policyName)
	if err != nil {
		return nil, err
	}
	t := newTenantCore(id, pol.Name(), m, online.New(m, pol), admission.NewController(m), ringSize)
	t.start()
	return t, nil
}

// newTenantCore builds the shared tenant shell. The loop is NOT started:
// callers finish wiring loop-owned state (restoreTenant re-admits tasks,
// installs the log) and then call start. Both the live-create and the
// recovery-restore path come through here.
func newTenantCore(id, policy string, m int, ex *online.Executive, ctrl *admission.Controller, ringSize int) *Tenant {
	if ringSize <= 0 {
		ringSize = defaultSubmitRing
	}
	t := &Tenant{
		id:     id,
		policy: policy,
		m:      m,
		ring:   make(chan *command, ringSize),
		ctl:    make(chan *command),
		closed: make(chan struct{}),
		ex:     ex,
		ctrl:   ctrl,
		tasks:  map[string]*model.Task{},
		idem:   map[string]SubmitJobResponse{},
		maxTar: rat.Zero,
		subs:   map[*subscriber]struct{}{},
	}
	t.ex.SetOnDispatch(t.record)
	return t
}

// start publishes the initial snapshot and launches the event loop. After
// start, loop-owned fields belong to the loop goroutine exclusively.
func (t *Tenant) start() {
	t.publish()
	go t.runLoop()
}

// publish stores the post-command state image and reports whether the
// dispatch log grew since the last published snapshot (the signal to wake
// stream followers). Loop goroutine only (callable before start, while
// the loop cannot be running).
func (t *Tenant) publish() bool {
	prev := t.snap.Load()
	t.snap.Store(&tenantSnap{
		now:      t.ex.Now(),
		util:     t.ctrl.Utilization(),
		m:        t.ctrl.M(),
		pendingM: t.ctrl.PendingM(),
		tasks:    t.ctrl.Len(),
		pending:  t.ex.Pending(),
		log:      t.log,
		frames:   t.frames,
		maxTar:   t.maxTar,
		reject:   t.reject,
	})
	return prev == nil || len(t.log) > len(prev.log)
}

// pingSubs wakes every stream follower (coalesced, non-blocking).
func (t *Tenant) pingSubs() {
	t.subMu.Lock()
	for sub := range t.subs {
		select {
		case sub.ping <- struct{}{}:
		default: // a wakeup is already queued; the follower will catch up
		}
	}
	t.subMu.Unlock()
}

// obs returns the tenant's observability sinks, installing standalone
// defaults on first use if the server never attached its own.
func (t *Tenant) obs() *tenantObs {
	if o := t.obsP.Load(); o != nil {
		return o
	}
	def := &tenantObs{
		tr:        obs.NewTracer(obs.NewRing(defaultTraceCap), obs.Real{}),
		submitAck: obs.NewHistogram(obs.DefaultLatencyBuckets),
		lag:       obs.NewHistogram(obs.QuantaBuckets),
	}
	if t.obsP.CompareAndSwap(nil, def) {
		return def
	}
	return t.obsP.Load()
}

// attachObs rewires the tenant onto the server's observability: its
// injected clock, its trace-ring capacity, and the aggregate histograms
// that /metrics sums across tenants. addTenant calls it before the tenant
// is visible to requests, so the swap races with nothing — and it is the
// one chokepoint covering both live-created and recovery-restored
// tenants.
func (t *Tenant) attachObs(o *serverObs) {
	t.obsP.Store(&tenantObs{
		tr:        obs.NewTracer(obs.NewRing(o.traceCap), o.clock),
		submitAck: obs.NewHistogram(obs.DefaultLatencyBuckets),
		lag:       obs.NewHistogram(obs.QuantaBuckets),
		sobs:      o,
	})
}

// traceRing returns the tenant's trace ring for the streaming handler.
func (t *Tenant) traceRing() *obs.Ring {
	return t.obs().tr.Ring()
}

// obsSnapshot snapshots the tenant's observability series for /metrics.
func (t *Tenant) obsSnapshot() tenantObsSnap {
	o := t.obs()
	return tenantObsSnap{
		id:        t.id,
		submitAck: o.submitAck.Snapshot(),
		lag:       o.lag.Snapshot(),
		traceLen:  o.tr.Ring().Next(),
	}
}

// observeSubmitAck records one submit→ack latency into the tenant and
// aggregate histograms. Histograms carry their own locks, so the HTTP
// handler calls this directly.
func (t *Tenant) observeSubmitAck(d time.Duration) {
	o := t.obs()
	s := d.Seconds()
	o.submitAck.Observe(s)
	if o.sobs != nil {
		o.sobs.submitAck.Observe(s)
	}
}

// traceBegin opens a traced command and parks its context for record() to
// stamp onto the dispatch events it produces. Loop goroutine only.
func (t *Tenant) traceBegin(op, task, at string) {
	o := t.obs()
	t.curCmd, t.curStart = o.tr.Begin(t.id, op, task, at)
	t.curOp = op
}

// traceStage marks the current command's next completed lifecycle stage.
func (t *Tenant) traceStage(stage string) {
	t.obs().tr.Stage(t.id, t.curCmd, t.curStart, t.curOp, stage, "")
}

// traceFail marks the current command failed at stage; no further stages
// follow for it.
func (t *Tenant) traceFail(stage string, err error) {
	t.obs().tr.Stage(t.id, t.curCmd, t.curStart, t.curOp, stage, err.Error())
}

// SetJournal installs the durability hooks: append enqueues one record,
// batch enqueues a frame group, fail permanently wedges the journal after
// a post-journal apply failure. append/batch return a wal.Commit the
// enqueuing handler waits on after the command completes (group commit:
// the first waiter fsyncs for everyone queued behind it). Like
// SetOnDispatch it must be called before the tenant serves traffic.
func (t *Tenant) SetJournal(append func(wal.Record) (wal.Commit, error), batch func([]wal.Record) (wal.Commit, error), fail func(error)) {
	t.hooks.Store(&journalHooks{append: append, batch: batch, fail: fail})
}

// record is the executive's OnDispatch hook. It runs on the loop
// goroutine (dispatches only happen inside a command's apply), so plain
// field access is safe. Dispatch WAL records are buffered in pendDisp and
// flushed as one frame group after the apply; follower wakeups happen
// once per command, after the snapshot publishes.
func (t *Tenant) record(d online.Dispatch) {
	deadline := d.Sub.Deadline()
	tard := d.Finish.Sub(rat.FromInt(deadline))
	if tard.Sign() < 0 {
		tard = rat.Zero
	}
	if t.maxTar.Less(tard) {
		t.maxTar = tard
	}
	t.log = append(t.log, DispatchEvent{
		Seq:       int64(len(t.log)),
		Task:      d.Sub.Task.Name,
		Index:     d.Sub.Index,
		Proc:      d.Proc,
		Start:     d.Start.String(),
		Finish:    d.Finish.String(),
		Deadline:  deadline,
		Tardiness: tard.String(),
	})
	ev := t.log[len(t.log)-1]
	var frame []byte
	if t.subCount.Load() > 0 {
		frame = marshalDispatchFrame(ev)
	}
	t.frames = append(t.frames, frame)
	o := t.obs()
	lagf := tard.Float64()
	o.lag.Observe(lagf)
	if o.sobs != nil {
		o.sobs.dispatchLag.Observe(lagf)
	}
	o.tr.Dispatch(t.id, t.curCmd, t.curStart, t.curOp, ev.Task, ev.Seq, ev.Tardiness)
	if t.hooks.Load() != nil {
		t.pendDisp = append(t.pendDisp, wal.Record{
			Op: wal.OpDispatch, Tenant: t.id,
			Name: ev.Task, DSeq: ev.Seq, Index: ev.Index, Finish: ev.Finish,
		})
	}
}

// ID returns the tenant id.
func (t *Tenant) ID() string { return t.id }

// --- public API: each method enqueues one command and waits ---

// RegisterTask admits a task through the admission controller and, when
// admitted, registers it with the executive. A negative decision leaves
// the tenant unchanged and is counted in the rejection metric. The
// returned commit is the journal position to wait durable before acking
// (zero when nothing was journaled).
func (t *Tenant) RegisterTask(name string, w model.Weight) (admission.Decision, wal.Commit, error) {
	res := t.exec(&command{kind: cmdRegister, name: name, w: w})
	return res.dec, res.commit, res.err
}

// UnregisterTask removes a task and releases its capacity. It fails while
// the task still has undispatched subtasks (advance or drain first).
func (t *Tenant) UnregisterTask(name string) (wal.Commit, error) {
	res := t.exec(&command{kind: cmdUnregister, name: name})
	return res.commit, res.err
}

// SubmitJob releases one job of the named task. An empty `at` submits at
// the tenant's current virtual time (the race-free choice for concurrent
// clients); otherwise `at` is parsed as a rat and must not precede it.
func (t *Tenant) SubmitJob(taskName, at string, earliness int64) (SubmitJobResponse, wal.Commit, error) {
	return t.SubmitJobReq(SubmitJobRequest{Task: taskName, At: at, Earliness: earliness})
}

// SubmitJobReq is SubmitJob taking the full wire request, including the
// optional idempotency key that makes the submit safe to retry.
func (t *Tenant) SubmitJobReq(req SubmitJobRequest) (SubmitJobResponse, wal.Commit, error) {
	res := t.exec(&command{kind: cmdSubmit, submit: req})
	return res.submit, res.commit, res.err
}

// SubmitJobs releases a batch of jobs atomically: every job is validated
// against the tenant's current state first (all-or-nothing — one bad job
// rejects the whole batch with no state change), then the batch is
// journaled as one contiguous frame group and applied. The caller waits
// on the one returned commit, so N jobs cost one fsync even with
// FsyncEvery=1.
func (t *Tenant) SubmitJobs(reqs []SubmitJobRequest) (SubmitJobsResponse, wal.Commit, error) {
	res := t.exec(&command{kind: cmdSubmitBatch, batch: reqs})
	return res.subs, res.commit, res.err
}

// Advance moves virtual time forward. Exactly one of until/by must be
// non-empty; `by` is relative to the tenant's current virtual time.
func (t *Tenant) Advance(until, by string) (AdvanceResponse, wal.Commit, error) {
	res := t.exec(&command{kind: cmdAdvance, until: until, by: by})
	return res.adv, res.commit, res.err
}

// Drain dispatches everything released so far and returns the final
// virtual time.
func (t *Tenant) Drain() (AdvanceResponse, wal.Commit, error) {
	res := t.exec(&command{kind: cmdDrain})
	return res.adv, res.commit, res.err
}

// Resize changes the tenant's processor count. A grow takes effect at
// the next quantum boundary; a shrink below current utilization is
// rejected (Outcome "rejected", nothing journaled), or with drain queued
// as a pending target that applies once unregisters bring Σwt within it.
func (t *Tenant) Resize(m int, drain bool) (ResizeResponse, wal.Commit, error) {
	res := t.exec(&command{kind: cmdResize, resizeM: m, drain: drain})
	return res.resize, res.commit, res.err
}

// --- loop-side appliers (loop goroutine only) ---

func (t *Tenant) applyRegister(name string, w model.Weight) (admission.Decision, wal.Commit, error) {
	if w.P > MaxPeriod {
		return admission.Decision{}, wal.Commit{}, fmt.Errorf("server: task %q period %d exceeds %d", name, w.P, MaxPeriod)
	}
	if err := w.Validate(); err != nil {
		return admission.Decision{}, wal.Commit{}, err
	}
	if !t.utilOverflowSafe(w) {
		return admission.Decision{}, wal.Commit{}, fmt.Errorf("server: task %q weight %s: utilization sum leaves exact-arithmetic range", name, w)
	}
	d, err := t.ctrl.Register(name, w)
	if err != nil {
		return admission.Decision{}, wal.Commit{}, err
	}
	if !d.Admitted {
		// Rejections are not journaled: they leave no state behind, and
		// the rejection metric is restored from the last snapshot.
		t.reject++
		return d, wal.Commit{}, nil
	}
	var commit wal.Commit
	h := t.hooks.Load()
	t.traceBegin(wal.OpTaskRegister, name, "")
	if h != nil {
		c, jerr := h.append(wal.Record{Op: wal.OpTaskRegister, Tenant: t.id, Name: name, E: w.E, P: w.P})
		if jerr != nil {
			_ = t.ctrl.Unregister(name)
			t.traceFail(obs.StageWALAppend, jerr)
			return admission.Decision{}, wal.Commit{}, jerr
		}
		commit = c
		t.traceStage(obs.StageWALAppend)
	}
	task, err := t.ex.Register(name, w)
	if err != nil {
		// Unreachable while controller and executive enforce the same
		// Σwt ≤ M bound; roll the controller back if it ever happens.
		_ = t.ctrl.Unregister(name)
		t.traceFail(obs.StageApply, err)
		return admission.Decision{}, wal.Commit{}, err
	}
	t.tasks[name] = task
	t.traceStage(obs.StageApply)
	return d, commit, nil
}

func (t *Tenant) applyUnregister(name string) (wal.Commit, error) {
	task, ok := t.tasks[name]
	if !ok {
		return wal.Commit{}, fmt.Errorf("server: tenant %q has no task %q", t.id, name)
	}
	// Pre-validate the one way Unregister can fail (t.tasks only holds
	// active tasks) so the journaled command always applies on replay.
	if n := t.ex.Undispatched(task); n > 0 {
		return wal.Commit{}, fmt.Errorf("server: task %q has %d undispatched subtasks; drain before unregistering", name, n)
	}
	var commit wal.Commit
	h := t.hooks.Load()
	t.traceBegin(wal.OpTaskUnregister, name, "")
	if h != nil {
		c, jerr := h.append(wal.Record{Op: wal.OpTaskUnregister, Tenant: t.id, Name: name})
		if jerr != nil {
			t.traceFail(obs.StageWALAppend, jerr)
			return wal.Commit{}, jerr
		}
		commit = c
		t.traceStage(obs.StageWALAppend)
	}
	if err := t.ex.Unregister(task); err != nil {
		t.traceFail(obs.StageApply, err)
		return wal.Commit{}, err
	}
	if err := t.ctrl.Unregister(name); err != nil {
		t.traceFail(obs.StageApply, err)
		return wal.Commit{}, err
	}
	delete(t.tasks, name)
	// The release may have applied a queued drain-mode shrink in the
	// controller; mirror it into the executive. The controller only applies
	// once Σwt fits the target, so the executive's own feasibility check
	// cannot fail here — if it ever does, the journaled history no longer
	// matches applied state, so wedge.
	if t.ctrl.M() != t.ex.M() {
		if err := t.ex.Resize(t.ctrl.M()); err != nil {
			if h != nil && h.fail != nil {
				h.fail(err)
			}
			t.traceFail(obs.StageApply, err)
			return wal.Commit{}, err
		}
		t.m = t.ctrl.M()
	}
	t.traceStage(obs.StageApply)
	return commit, nil
}

// applyResize changes the tenant's processor count through the admission
// controller and the executive. Pre-validation is PlanResize: rejections
// (a non-drain shrink below Σwt) leave no state behind and are not
// journaled, exactly like rejected registrations; applied and queued
// resizes journal an OpResize record first so recovery replays the
// capacity history.
func (t *Tenant) applyResize(m int, drain bool) (ResizeResponse, wal.Commit, error) {
	if m < 1 {
		return ResizeResponse{}, wal.Commit{}, fmt.Errorf("server: tenant %q resize needs m ≥ 1, got %d", t.id, m)
	}
	if m > MaxM {
		return ResizeResponse{}, wal.Commit{}, fmt.Errorf("server: tenant %q resize wants m = %d > %d processors", t.id, m, MaxM)
	}
	plan, err := t.ctrl.PlanResize(m, drain)
	if err != nil {
		return ResizeResponse{}, wal.Commit{}, err
	}
	if plan.Outcome == admission.ResizeRejected {
		t.reject++
		return t.resizeResponse(plan), wal.Commit{}, nil
	}
	var commit wal.Commit
	h := t.hooks.Load()
	t.traceBegin(wal.OpResize, "", fmt.Sprintf("%d", m))
	if h != nil {
		mode := ""
		if plan.Outcome == admission.ResizeQueued {
			mode = "drain"
		}
		c, jerr := h.append(wal.Record{Op: wal.OpResize, Tenant: t.id, M: m, Mode: mode})
		if jerr != nil {
			t.traceFail(obs.StageWALAppend, jerr)
			return ResizeResponse{}, wal.Commit{}, jerr
		}
		commit = c
		t.traceStage(obs.StageWALAppend)
	}
	d, err := t.ctrl.Resize(m, drain)
	if err != nil {
		// Unreachable after PlanResize; the record is journaled but not
		// applied, so wedge — same contract as the batch submit path.
		if h != nil && h.fail != nil {
			h.fail(err)
		}
		t.traceFail(obs.StageApply, err)
		return ResizeResponse{}, wal.Commit{}, err
	}
	if d.Outcome == admission.ResizeApplied {
		if err := t.ex.Resize(m); err != nil {
			// Unreachable: the controller certified Σwt ≤ m, which is the
			// executive's own check. Wedge if it ever diverges.
			if h != nil && h.fail != nil {
				h.fail(err)
			}
			t.traceFail(obs.StageApply, err)
			return ResizeResponse{}, wal.Commit{}, err
		}
		t.m = m
	}
	t.traceStage(obs.StageApply)
	return t.resizeResponse(d), commit, nil
}

// resizeResponse shapes an admission resize decision for the wire. Loop
// goroutine only (reads controller state).
func (t *Tenant) resizeResponse(d admission.ResizeDecision) ResizeResponse {
	return ResizeResponse{
		Outcome:     d.Outcome.String(),
		M:           d.M,
		PendingM:    d.PendingM,
		Utilization: t.ctrl.Utilization().String(),
		Reason:      d.Reason,
	}
}

func (t *Tenant) applySubmit(req SubmitJobRequest) (SubmitJobResponse, wal.Commit, error) {
	if resp, seen := t.idemSeen(req.Key); seen {
		// A retry of an already-applied submit: replay the original
		// response. Nothing is journaled, so the zero commit is already
		// durable by definition.
		return resp, wal.Commit{}, nil
	}
	task, when, err := t.validateSubmit(req)
	if err != nil {
		return SubmitJobResponse{}, wal.Commit{}, err
	}
	var commit wal.Commit
	h := t.hooks.Load()
	t.traceBegin(wal.OpJobSubmit, req.Task, when.String())
	if h != nil {
		c, jerr := h.append(wal.Record{Op: wal.OpJobSubmit, Tenant: t.id, Name: req.Task, At: when.String(), Earliness: req.Earliness, Key: req.Key})
		if jerr != nil {
			t.traceFail(obs.StageWALAppend, jerr)
			return SubmitJobResponse{}, wal.Commit{}, jerr
		}
		commit = c
		t.traceStage(obs.StageWALAppend)
	}
	if err := t.applySubmitJob(task, when, req.Earliness); err != nil {
		t.traceFail(obs.StageApply, err)
		return SubmitJobResponse{}, wal.Commit{}, err
	}
	t.traceStage(obs.StageApply)
	resp := SubmitJobResponse{At: when.String(), Pending: t.ex.Pending()}
	t.idemRemember(req.Key, resp)
	return resp, commit, nil
}

// idemSeen reports whether a keyed submit was already applied and returns
// its original response. Loop goroutine only.
func (t *Tenant) idemSeen(key string) (SubmitJobResponse, bool) {
	if key == "" {
		return SubmitJobResponse{}, false
	}
	resp, ok := t.idem[key]
	return resp, ok
}

// idemRemember records a keyed submit's response, evicting the oldest key
// once MaxIdemKeys are held. Eviction order is insertion order, which is
// deterministic under replay because replay re-applies the same records
// in the same order. Loop goroutine only.
func (t *Tenant) idemRemember(key string, resp SubmitJobResponse) {
	if key == "" {
		return
	}
	if _, ok := t.idem[key]; ok {
		return
	}
	if len(t.idemQ) >= MaxIdemKeys {
		delete(t.idem, t.idemQ[0])
		t.idemQ = t.idemQ[1:]
	}
	t.idem[key] = resp
	t.idemQ = append(t.idemQ, key)
}

// validateSubmit runs every check the executive would enforce on a job
// submit and resolves an empty `at` to the tenant's current virtual time.
// A nil error guarantees applySubmitJob with the returned values cannot
// fail — that is the pre-validation contract that makes journal-before-
// apply safe.
func (t *Tenant) validateSubmit(req SubmitJobRequest) (*model.Task, rat.Rat, error) {
	task, ok := t.tasks[req.Task]
	if !ok {
		return nil, rat.Zero, fmt.Errorf("server: tenant %q has no task %q", t.id, req.Task)
	}
	when := t.ex.Now()
	if req.At != "" {
		var err error
		when, err = rat.Parse(req.At)
		if err != nil {
			return nil, rat.Zero, err
		}
		if err := checkTime("arrival", when); err != nil {
			return nil, rat.Zero, err
		}
	}
	// Pre-validate everything the executive would reject, then journal the
	// *resolved* arrival time: an empty `at` means "now", which only the
	// live server knows — replay must not re-resolve it.
	if when.Less(t.ex.Now()) {
		return nil, rat.Zero, fmt.Errorf("server: job of %q submitted at %s, before virtual time %s", req.Task, when, t.ex.Now())
	}
	if req.Earliness < 0 {
		return nil, rat.Zero, fmt.Errorf("server: negative earliness %d", req.Earliness)
	}
	if req.Earliness > MaxEarliness {
		return nil, rat.Zero, fmt.Errorf("server: earliness %d exceeds %d", req.Earliness, MaxEarliness)
	}
	if len(req.Key) > MaxKeyLen {
		return nil, rat.Zero, fmt.Errorf("server: idempotency key length %d exceeds %d", len(req.Key), MaxKeyLen)
	}
	return task, when, nil
}

// applySubmitJob releases one pre-validated job into the executive.
func (t *Tenant) applySubmitJob(task *model.Task, when rat.Rat, earliness int64) error {
	if earliness > 0 {
		return t.ex.SubmitJobEarly(task, when, earliness)
	}
	return t.ex.SubmitJob(task, when)
}

func (t *Tenant) applySubmitBatch(reqs []SubmitJobRequest) (SubmitJobsResponse, wal.Commit, error) {
	// Idempotency across a batch is all-or-nothing, mirroring the batch's
	// own atomicity: a retry where every keyed job was already applied
	// replays the cached responses; a partial overlap means the caller is
	// replaying against a batch that never fully applied (impossible for a
	// faithful retry) and is rejected outright.
	if resp, done, err := t.batchIdemCheck(reqs); err != nil {
		return SubmitJobsResponse{}, wal.Commit{}, err
	} else if done {
		return resp, wal.Commit{}, nil
	}
	tasks := make([]*model.Task, len(reqs))
	whens := make([]rat.Rat, len(reqs))
	recs := make([]wal.Record, len(reqs))
	for i, req := range reqs {
		task, when, err := t.validateSubmit(req)
		if err != nil {
			return SubmitJobsResponse{}, wal.Commit{}, fmt.Errorf("job %d: %w", i, err)
		}
		tasks[i], whens[i] = task, when
		recs[i] = wal.Record{Op: wal.OpJobSubmit, Tenant: t.id, Name: req.Task, At: when.String(), Earliness: req.Earliness, Key: req.Key}
	}
	// Jobs within a batch are validated independently against the state at
	// entry; submits only add pending work and never move virtual time, so
	// independent validity implies sequential validity.
	var commit wal.Commit
	h := t.hooks.Load()
	if h != nil {
		c, jerr := h.batch(recs)
		if jerr != nil {
			// Trace one failed command for the whole batch so the ring
			// shows why nothing applied.
			t.traceBegin(wal.OpJobSubmit, fmt.Sprintf("batch[%d]", len(reqs)), "")
			t.traceFail(obs.StageWALAppend, jerr)
			return SubmitJobsResponse{}, wal.Commit{}, jerr
		}
		commit = c
	}
	resp := SubmitJobsResponse{Results: make([]SubmitJobResponse, len(reqs))}
	for i := range reqs {
		t.traceBegin(wal.OpJobSubmit, reqs[i].Task, whens[i].String())
		if h != nil {
			t.traceStage(obs.StageWALAppend)
		}
		if err := t.applySubmitJob(tasks[i], whens[i], reqs[i].Earliness); err != nil {
			// Unreachable after pre-validation; if it ever happens the
			// journaled suffix no longer matches applied state, so wedge.
			if h != nil && h.fail != nil {
				h.fail(err)
			}
			t.traceFail(obs.StageApply, err)
			return SubmitJobsResponse{}, wal.Commit{}, fmt.Errorf("job %d: %w", i, err)
		}
		t.traceStage(obs.StageApply)
		resp.Results[i] = SubmitJobResponse{At: whens[i].String(), Pending: t.ex.Pending()}
		t.idemRemember(reqs[i].Key, resp.Results[i])
	}
	resp.Accepted = len(reqs)
	return resp, commit, nil
}

// batchIdemCheck resolves a batch against the idempotency memory. done
// means every job was a seen keyed submit and resp replays the original
// results; an error means the batch mixes seen and unseen jobs (or
// repeats a key within itself) and cannot be applied atomically.
func (t *Tenant) batchIdemCheck(reqs []SubmitJobRequest) (SubmitJobsResponse, bool, error) {
	seen, keyed := 0, 0
	inBatch := map[string]struct{}{}
	for i, req := range reqs {
		if req.Key == "" {
			continue
		}
		keyed++
		if _, dup := inBatch[req.Key]; dup {
			return SubmitJobsResponse{}, false, fmt.Errorf("job %d: duplicate idempotency key %q within the batch", i, req.Key)
		}
		inBatch[req.Key] = struct{}{}
		if _, ok := t.idem[req.Key]; ok {
			seen++
		}
	}
	if seen == 0 {
		return SubmitJobsResponse{}, false, nil
	}
	if seen < len(reqs) || keyed < len(reqs) {
		return SubmitJobsResponse{}, false, fmt.Errorf("server: batch replays %d of %d idempotency keys; a batch retry must repeat the original batch exactly", seen, len(reqs))
	}
	resp := SubmitJobsResponse{Accepted: len(reqs), Results: make([]SubmitJobResponse, len(reqs))}
	for i, req := range reqs {
		resp.Results[i] = t.idem[req.Key]
	}
	return resp, true, nil
}

func (t *Tenant) applyAdvance(until, by string) (AdvanceResponse, wal.Commit, error) {
	var target rat.Rat
	switch {
	case until != "" && by != "":
		return AdvanceResponse{}, wal.Commit{}, fmt.Errorf("server: advance takes until or by, not both")
	case until != "":
		var err error
		if target, err = rat.Parse(until); err != nil {
			return AdvanceResponse{}, wal.Commit{}, err
		}
		if err := checkTime("advance target", target); err != nil {
			return AdvanceResponse{}, wal.Commit{}, err
		}
	case by != "":
		d, err := rat.Parse(by)
		if err != nil {
			return AdvanceResponse{}, wal.Commit{}, err
		}
		if d.Sign() < 0 {
			return AdvanceResponse{}, wal.Commit{}, fmt.Errorf("server: advance by negative %s", by)
		}
		// Bound the step before adding it to now: the addition itself is
		// exact arithmetic and must stay in range.
		if err := checkTime("advance step", d); err != nil {
			return AdvanceResponse{}, wal.Commit{}, err
		}
		target = t.ex.Now().Add(d)
		if err := checkTime("advance target", target); err != nil {
			return AdvanceResponse{}, wal.Commit{}, err
		}
	default:
		return AdvanceResponse{}, wal.Commit{}, fmt.Errorf("server: advance needs until or by")
	}
	if target.Less(t.ex.Now()) {
		return AdvanceResponse{}, wal.Commit{}, fmt.Errorf("server: cannot advance to %s, already at %s", target, t.ex.Now())
	}
	var commit wal.Commit
	h := t.hooks.Load()
	t.traceBegin(wal.OpAdvance, "", target.String())
	if h != nil {
		// Journal the resolved absolute target: `by` is relative to a
		// virtual time only the live server knows.
		c, jerr := h.append(wal.Record{Op: wal.OpAdvance, Tenant: t.id, At: target.String()})
		if jerr != nil {
			t.traceFail(obs.StageWALAppend, jerr)
			return AdvanceResponse{}, wal.Commit{}, jerr
		}
		commit = c
		t.traceStage(obs.StageWALAppend)
	}
	before := int64(len(t.log))
	if err := t.ex.Run(target, nil, nil); err != nil {
		t.traceFail(obs.StageApply, err)
		return AdvanceResponse{}, wal.Commit{}, err
	}
	t.traceStage(obs.StageApply)
	return AdvanceResponse{
		Now:        t.ex.Now().String(),
		Dispatched: int64(len(t.log)) - before,
		Pending:    t.ex.Pending(),
	}, commit, nil
}

func (t *Tenant) applyDrain() (AdvanceResponse, wal.Commit, error) {
	var commit wal.Commit
	h := t.hooks.Load()
	t.traceBegin(wal.OpDrain, "", "")
	if h != nil {
		c, jerr := h.append(wal.Record{Op: wal.OpDrain, Tenant: t.id})
		if jerr != nil {
			t.traceFail(obs.StageWALAppend, jerr)
			return AdvanceResponse{}, wal.Commit{}, jerr
		}
		commit = c
		t.traceStage(obs.StageWALAppend)
	}
	before := int64(len(t.log))
	if _, err := t.ex.Drain(nil); err != nil {
		// Drain's convergence guards are the one failure pre-validation
		// cannot rule out. The command is already journaled and may have
		// partially applied, so wedge the journal: refusing further writes
		// is the only way to keep recovered state trustworthy.
		if h != nil && h.fail != nil {
			h.fail(err)
		}
		t.traceFail(obs.StageApply, err)
		return AdvanceResponse{}, wal.Commit{}, err
	}
	t.traceStage(obs.StageApply)
	return AdvanceResponse{
		Now:        t.ex.Now().String(),
		Dispatched: int64(len(t.log)) - before,
		Pending:    t.ex.Pending(),
	}, commit, nil
}

// --- snapshot readers (any goroutine, never block the loop) ---

// Info snapshots the tenant for GET /v1/tenants/{id} and /metrics.
func (t *Tenant) Info() TenantInfo {
	sn := t.snap.Load()
	return TenantInfo{
		ID:           t.id,
		M:            sn.m,
		PendingM:     sn.pendingM,
		Policy:       t.policy,
		Now:          sn.now.String(),
		Utilization:  sn.util.String(),
		Tasks:        sn.tasks,
		Pending:      sn.pending,
		Dispatches:   int64(len(sn.log)),
		MaxTardiness: sn.maxTar.String(),
		Rejections:   sn.reject,
	}
}

// EventsSince returns the dispatch log from seq `from` on. The returned
// slice aliases the published snapshot's immutable prefix — no copy, no
// lock; the loop only ever appends past it.
func (t *Tenant) EventsSince(from int64) []DispatchEvent {
	sn := t.snap.Load()
	if from < 0 {
		from = 0
	}
	if from >= int64(len(sn.log)) {
		return nil
	}
	return sn.log[from:]
}

// FramesSince is EventsSince in wire form: the cached NDJSON frames from
// seq `from` on, index-aligned with the log. Streaming handlers write
// these bytes verbatim, so one encode (at record time) feeds every
// follower. Entries recorded while nobody was subscribed are nil in the
// cache; those are encoded here, on demand, into a private slice — the
// shared snapshot array is never written. The same zero-copy aliasing
// rules apply; callers must treat the frames as immutable.
func (t *Tenant) FramesSince(from int64) [][]byte {
	sn := t.snap.Load()
	if from < 0 {
		from = 0
	}
	if from >= int64(len(sn.frames)) {
		return nil
	}
	frames := sn.frames[from:]
	for i, f := range frames {
		if f != nil {
			continue
		}
		out := append([][]byte(nil), frames...)
		for j := i; j < len(out); j++ {
			if out[j] == nil {
				out[j] = marshalDispatchFrame(sn.log[from+int64(j)])
			}
		}
		return out
	}
	return frames
}

// LogLen returns the published dispatch-log length — the seq the next
// decision will get. Stream handlers use it to measure follower lag.
func (t *Tenant) LogLen() int64 {
	return int64(len(t.snap.Load().log))
}

// installLog seats a checkpointed dispatch log before start(), while no
// loop can be running, re-seating the egress frame cache so restored
// tenants serve ?from replay from wire bytes like live ones.
func (t *Tenant) installLog(log []DispatchEvent) {
	t.log = log
	// All-nil cache: restored history is encoded lazily on first replay,
	// so restarting a server with large checkpoints pays no egress cost
	// for logs nobody streams.
	t.frames = make([][]byte, len(log))
}

// eventAt returns the dispatch event with sequence number seq, if the log
// holds it. Recovery uses it to verify regenerated decisions against the
// journaled dispatch records.
func (t *Tenant) eventAt(seq int64) (DispatchEvent, bool) {
	sn := t.snap.Load()
	if seq < 0 || seq >= int64(len(sn.log)) {
		return DispatchEvent{}, false
	}
	return sn.log[seq], true
}

// Subscribe registers a stream follower; its ping channel receives a
// (coalesced) wakeup after new dispatches land in the log.
func (t *Tenant) Subscribe() *subscriber {
	sub := &subscriber{ping: make(chan struct{}, 1)}
	t.subMu.Lock()
	t.subs[sub] = struct{}{}
	t.subCount.Store(int64(len(t.subs)))
	t.subMu.Unlock()
	return sub
}

// Unsubscribe removes a follower registered with Subscribe.
func (t *Tenant) Unsubscribe(sub *subscriber) {
	t.subMu.Lock()
	delete(t.subs, sub)
	t.subCount.Store(int64(len(t.subs)))
	t.subMu.Unlock()
}

var errTenantGone = fmt.Errorf("server: tenant deleted")

// Service-boundary limits. The scheduling core uses exact int64 rational
// arithmetic that panics on overflow by design (internal/rat); these caps
// keep everything a client can introduce far inside the representable
// range, so arbitrary request parameters are rejected with a 4xx instead
// of tripping that panic — in particular never *after* a command has been
// journaled, which would poison replay.
const (
	// MaxM caps processors per tenant; it also bounds the per-tenant
	// freeAt allocation a single create or resize request can force. It
	// aliases the admission-layer cap so both reject the same range.
	MaxM = admission.MaxM
	// MaxPeriod caps a task period. Subtask deadlines scale with
	// index·P/E, so bounding P keeps per-job arithmetic in range for any
	// realistic job count.
	MaxPeriod = int64(1) << 20
	// MaxEarliness caps early-release offsets (eq. (6) shifts scale with
	// it).
	MaxEarliness = int64(1) << 20
	// MaxBatchJobs caps jobs per batch submit: it bounds how long one
	// request may occupy the tenant loop and how large a WAL frame group
	// the journal writes in one go.
	MaxBatchJobs = 1024
	// MaxIdemKeys caps remembered idempotency keys per tenant (FIFO
	// eviction); MaxKeyLen caps one key's length so keys cannot bloat
	// journal records or snapshots.
	MaxIdemKeys = 4096
	MaxKeyLen   = 128
	// maxTimeDen / maxTimeValue bound virtual-time instants a client may
	// name. rat.Cmp cross-multiplies numerator × opposing denominator, so
	// a comparable time needs value·den_a·den_b ≤ 2^62; 2^28 quanta with
	// denominators ≤ 2^16 leaves headroom for sums of two bounded times.
	maxTimeDen   = int64(1) << 16
	maxTimeValue = int64(1) << 28
)

// checkTime rejects virtual-time instants outside the service's
// representable horizon. The denominator check must come first: Cmp
// cross-multiplies, so even comparing an unbounded rational against the
// bound could overflow.
func checkTime(what string, r rat.Rat) error {
	if r.Den() > maxTimeDen {
		return fmt.Errorf("server: %s %s: denominator exceeds 2^16", what, r)
	}
	if rat.FromInt(maxTimeValue).Less(r) {
		return fmt.Errorf("server: %s %s is beyond the service horizon 2^28", what, r)
	}
	return nil
}

// utilOverflowSafe reports whether adding w to the running utilization
// sums stays inside exact int64 arithmetic. Admitted periods are bounded,
// but the least common denominator across many coprime periods can still
// outgrow int64; probing here (before journaling, before mutating) turns
// the rat package's deliberate overflow panic into a clean rejection.
func (t *Tenant) utilOverflowSafe(w model.Weight) (ok bool) {
	defer func() { ok = recover() == nil }()
	t.ctrl.Utilization().Add(w.Rat())
	t.ex.ActiveUtilization().Add(w.Rat())
	return true
}
