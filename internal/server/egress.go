package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// This file is the egress side of the encode-once plane. Records are
// serialized to NDJSON wire bytes exactly once, by the goroutine that
// owns them — the tenant loop for dispatch events (Tenant.record), the
// trace ring for trace events (obs.Ring.FramesSince), the WAL appender
// for replication frames (wal.Reader.NextRaw ships the on-disk payload)
// — and every subscriber writes the cached frames by reference. The
// frameWriter below batches contiguous frames into one vectored
// net.Buffers write per wakeup with a reused backing slice, flushes once
// per batch, and bounds how long any write may block on a wedged client.
//
// Slow-consumer policy: replication followers are never evicted (the WAL
// reader paces them against the durable horizon and the log is on disk
// anyway), but dispatch-stream followers hold a position in the in-memory
// frame cache, so a follower that falls more than the lag bound behind is
// cut loose with an in-band StreamGone control line instead of pinning
// the process. Fully-wedged clients — ones that stop reading entirely —
// die on the per-write stall deadline instead.

const (
	// DefaultStreamMaxLag is how many records a following dispatch stream
	// may lag behind the log tip before it is evicted with a 410 control
	// line. SetStreamPolicy / Options.StreamMaxLag override it.
	DefaultStreamMaxLag = 65536
	// DefaultStreamStall bounds how long one streamed write may block on
	// an unresponsive client before the connection is severed.
	DefaultStreamStall = 30 * time.Second
	// maxStreamBatch caps the frames per vectored write so lag checks and
	// deadline re-arms happen at a bounded granularity.
	maxStreamBatch = 256
)

// StreamGone is the in-band control line a read stream receives instead
// of an event when the server evicts it for lagging past the stream
// policy's bound. Events never carry an "error" key, so clients detect it
// unambiguously; ResumeFrom is the seq to reconnect with (?from=N).
type StreamGone struct {
	Error      string `json:"error"`
	Status     int    `json:"status"`
	ResumeFrom int64  `json:"resumeFrom"`
}

// marshalDispatchFrame renders ev exactly as a json.Encoder would:
// Marshal plus a trailing newline. Byte identity with the per-subscriber
// encoder it replaced is what lets the frame cache swap in invisibly.
func marshalDispatchFrame(ev DispatchEvent) []byte {
	b, err := json.Marshal(ev)
	if err != nil {
		// DispatchEvent is plain ints and strings; Marshal cannot fail.
		b = []byte("{}")
	}
	return append(b, '\n')
}

// frameWriter writes cached NDJSON frames to one streaming response. It
// reuses a net.Buffers backing slice across batches (zero allocation per
// wakeup once warm) and arms a write deadline around every batch so a
// wedged client can only stall its own connection for stall, never the
// handler forever. A deadline that the connection does not support
// (httptest recorders) is silently skipped.
type frameWriter struct {
	w     http.ResponseWriter
	rc    *http.ResponseController
	fl    http.Flusher
	stall time.Duration
	bufs  net.Buffers
}

func newFrameWriter(w http.ResponseWriter, stall time.Duration) *frameWriter {
	fw := &frameWriter{w: w, rc: http.NewResponseController(w), stall: stall}
	fw.fl, _ = w.(http.Flusher)
	return fw
}

func (fw *frameWriter) armDeadline() {
	if fw.stall > 0 {
		_ = fw.rc.SetWriteDeadline(time.Now().Add(fw.stall))
	}
}

func (fw *frameWriter) clearDeadline() {
	if fw.stall > 0 {
		_ = fw.rc.SetWriteDeadline(time.Time{})
	}
}

// writeFrames writes a contiguous run of frames as one vectored write.
// net.Buffers consumes its entries, so the reused backing slice is
// repopulated from the frame refs on every call; the frames themselves
// are shared and never copied.
func (fw *frameWriter) writeFrames(frames [][]byte) error {
	fw.bufs = append(fw.bufs[:0], frames...)
	fw.armDeadline()
	_, err := fw.bufs.WriteTo(fw.w)
	fw.clearDeadline()
	return err
}

// flush pushes buffered bytes to the client, bounded by the stall
// deadline like any other write.
func (fw *frameWriter) flush() {
	if fw.fl == nil {
		return
	}
	fw.armDeadline()
	fw.fl.Flush()
	fw.clearDeadline()
}

// writeGone emits the eviction control line: the stream stays a valid
// NDJSON sequence, the client learns the position to reconnect from, and
// the handler returns without pinning the frame cache any longer. Best
// effort — a client that stopped reading may never see it.
func (fw *frameWriter) writeGone(resume int64) {
	line, err := json.Marshal(StreamGone{
		Error:      fmt.Sprintf("stream evicted: lagging past the server's bound; reconnect with ?from=%d", resume),
		Status:     http.StatusGone,
		ResumeFrom: resume,
	})
	if err != nil {
		return
	}
	fw.armDeadline()
	if _, err := fw.w.Write(append(line, '\n')); err == nil && fw.fl != nil {
		fw.fl.Flush()
	}
	fw.clearDeadline()
}

// SetStreamPolicy configures the slow-consumer policy for the read
// streams (dispatch and trace): maxLag is the record-count bound past
// which a following dispatch stream is evicted with a 410 control line
// (0 default, negative disables), stall the per-write deadline on every
// stream write (0 default, negative disables). Call before serving
// traffic, like SetClock.
func (s *Server) SetStreamPolicy(maxLag int64, stall time.Duration) {
	switch {
	case maxLag < 0:
		s.streamMaxLag = 0
	case maxLag == 0:
		s.streamMaxLag = DefaultStreamMaxLag
	default:
		s.streamMaxLag = maxLag
	}
	switch {
	case stall < 0:
		s.streamStall = 0
	case stall == 0:
		s.streamStall = DefaultStreamStall
	default:
		s.streamStall = stall
	}
}

// StreamEvictions reports how many read streams this server has evicted
// for lagging past the policy bound.
func (s *Server) StreamEvictions() int64 { return s.streamEvict.Load() }
