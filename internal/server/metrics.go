package server

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the request-duration
// histogram, powers of four from 16µs to ~67ms plus +Inf.
var latencyBuckets = []float64{
	16e-6, 64e-6, 256e-6, 1024e-6, 4096e-6, 16384e-6, 65536e-6,
}

// metrics aggregates per-route request counters without any lock on the
// request path. The route map is built once at registration (route()) and
// read-only afterwards, so observe() is a map lookup plus atomic adds —
// a /metrics scrape never contends with a request, and requests never
// contend with each other on a counter mutex. Tenant-level series
// (dispatch counts, tardiness, rejections) are not stored here — they are
// read live from the tenants at exposition time, so the two can never
// drift apart.
type metrics struct {
	routes map[string]*routeStats
}

// routeStats is one route's counters, updated and read with atomics only.
// Writers order their updates so a concurrent reader always sees an
// internally consistent histogram (see observe / snapshot).
type routeStats struct {
	count   atomic.Int64
	errors  atomic.Int64  // 4xx + 5xx responses
	sum     atomic.Uint64 // float64 bits, CAS-updated
	buckets [7]atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{routes: map[string]*routeStats{}}
}

// register pre-creates a route's counters. Called only from route() while
// the server is being built, before any request can run; after that the
// map is never written again, which is what makes lock-free observe safe.
func (m *metrics) register(route string) {
	m.routes[route] = &routeStats{}
}

// observe records one request against its route pattern. Update order is
// the consistency protocol: count first, then buckets from the widest
// down. A reader going the other way (buckets ascending, count last; see
// snapshot) therefore sees, for every bucket, at most as many increments
// as the next wider one and never more than count — the histogram it
// reads is always cumulative and `bucket ≤ count` holds even mid-update.
func (m *metrics) observe(route string, d time.Duration, status int) {
	rs := m.routes[route]
	if rs == nil {
		// Unregistered patterns cannot happen via route(); drop rather
		// than grow the map (which is lock-free only because it's frozen).
		return
	}
	secs := d.Seconds()
	rs.count.Add(1)
	if status >= 400 {
		rs.errors.Add(1)
	}
	for old := rs.sum.Load(); ; old = rs.sum.Load() {
		if rs.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+secs)) {
			break
		}
	}
	for i := len(latencyBuckets) - 1; i >= 0; i-- {
		if secs <= latencyBuckets[i] {
			rs.buckets[i].Add(1)
		}
	}
}

// routeSnap is one route's counters as read at exposition time.
type routeSnap struct {
	count   int64
	errors  int64
	sum     float64
	buckets [7]int64
}

// snapshot reads rs in the order that pairs with observe's write order:
// buckets ascending first, count last. Every value is monotone, so the
// result is a valid cumulative histogram with bucket[i] ≤ bucket[j≥i] ≤
// count even while writers are mid-flight.
func (rs *routeStats) snapshot() routeSnap {
	var s routeSnap
	for i := range rs.buckets {
		s.buckets[i] = rs.buckets[i].Load()
	}
	s.errors = rs.errors.Load()
	s.sum = math.Float64frombits(rs.sum.Load())
	s.count = rs.count.Load()
	return s
}

// write renders the text exposition: request counters per route, then the
// live per-tenant series pulled from `infos`. Routes that have never been
// hit are filtered, so the page's route set matches what has actually
// served traffic (as it did when routes were created on first hit).
func (m *metrics) write(b *strings.Builder, infos []TenantInfo) {
	routes := make([]string, 0, len(m.routes))
	snaps := make(map[string]routeSnap, len(m.routes))
	for r, rs := range m.routes {
		s := rs.snapshot()
		if s.count == 0 {
			continue
		}
		routes = append(routes, r)
		snaps[r] = s
	}
	sort.Strings(routes)
	b.WriteString("# HELP pfaird_requests_total HTTP requests served, by route.\n")
	b.WriteString("# TYPE pfaird_requests_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(b, "pfaird_requests_total{route=%q} %d\n", r, snaps[r].count)
	}
	b.WriteString("# HELP pfaird_request_errors_total HTTP 4xx/5xx responses, by route.\n")
	b.WriteString("# TYPE pfaird_request_errors_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(b, "pfaird_request_errors_total{route=%q} %d\n", r, snaps[r].errors)
	}
	b.WriteString("# HELP pfaird_request_duration_seconds Request latency histogram, by route.\n")
	b.WriteString("# TYPE pfaird_request_duration_seconds histogram\n")
	for _, r := range routes {
		rs := snaps[r]
		for i, ub := range latencyBuckets {
			fmt.Fprintf(b, "pfaird_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				r, fmt.Sprintf("%g", ub), rs.buckets[i])
		}
		fmt.Fprintf(b, "pfaird_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, rs.count)
		fmt.Fprintf(b, "pfaird_request_duration_seconds_sum{route=%q} %g\n", r, rs.sum)
		fmt.Fprintf(b, "pfaird_request_duration_seconds_count{route=%q} %d\n", r, rs.count)
	}

	b.WriteString("# HELP pfaird_tenants Current tenant count.\n")
	b.WriteString("# TYPE pfaird_tenants gauge\n")
	fmt.Fprintf(b, "pfaird_tenants %d\n", len(infos))
	b.WriteString("# HELP pfaird_tenant_dispatches_total Scheduling decisions made, per tenant.\n")
	b.WriteString("# TYPE pfaird_tenant_dispatches_total counter\n")
	for _, ti := range infos {
		fmt.Fprintf(b, "pfaird_tenant_dispatches_total{tenant=%q} %d\n", ti.ID, ti.Dispatches)
	}
	b.WriteString("# HELP pfaird_tenant_max_tardiness Worst observed tardiness in quanta (Theorem 3 bounds it by 1).\n")
	b.WriteString("# TYPE pfaird_tenant_max_tardiness gauge\n")
	for _, ti := range infos {
		fmt.Fprintf(b, "pfaird_tenant_max_tardiness{tenant=%q} %s\n", ti.ID, ratToFloat(ti.MaxTardiness))
	}
	b.WriteString("# HELP pfaird_tenant_admission_rejections_total Register requests rejected by admission control, per tenant.\n")
	b.WriteString("# TYPE pfaird_tenant_admission_rejections_total counter\n")
	for _, ti := range infos {
		fmt.Fprintf(b, "pfaird_tenant_admission_rejections_total{tenant=%q} %d\n", ti.ID, ti.Rejections)
	}
	b.WriteString("# HELP pfaird_tenant_pending_subtasks Released but undispatched subtasks, per tenant.\n")
	b.WriteString("# TYPE pfaird_tenant_pending_subtasks gauge\n")
	for _, ti := range infos {
		fmt.Fprintf(b, "pfaird_tenant_pending_subtasks{tenant=%q} %d\n", ti.ID, ti.Pending)
	}
	b.WriteString("# HELP pfaird_tenant_m Current processor count, per tenant (changes on resize).\n")
	b.WriteString("# TYPE pfaird_tenant_m gauge\n")
	for _, ti := range infos {
		fmt.Fprintf(b, "pfaird_tenant_m{tenant=%q} %d\n", ti.ID, ti.M)
	}
	b.WriteString("# HELP pfaird_tenant_pending_m Queued drain-mode shrink target, per tenant (0 = none).\n")
	b.WriteString("# TYPE pfaird_tenant_pending_m gauge\n")
	for _, ti := range infos {
		fmt.Fprintf(b, "pfaird_tenant_pending_m{tenant=%q} %d\n", ti.ID, ti.PendingM)
	}
}

// writeWALMetrics appends the journal counters to the exposition. A
// non-durable server emits nothing, so PR 2's scrape output is unchanged
// for it.
func (s *Server) writeWALMetrics(b *strings.Builder) {
	if s.wal == nil {
		return
	}
	st := s.wal.Stats()
	b.WriteString("# HELP pfaird_wal_appends_total Journal records appended.\n")
	b.WriteString("# TYPE pfaird_wal_appends_total counter\n")
	fmt.Fprintf(b, "pfaird_wal_appends_total %d\n", st.Appends)
	b.WriteString("# HELP pfaird_wal_fsyncs_total Group-commit fsyncs issued.\n")
	b.WriteString("# TYPE pfaird_wal_fsyncs_total counter\n")
	fmt.Fprintf(b, "pfaird_wal_fsyncs_total %d\n", st.Fsyncs)
	b.WriteString("# HELP pfaird_wal_append_errors_total Journal appends refused or failed.\n")
	b.WriteString("# TYPE pfaird_wal_append_errors_total counter\n")
	fmt.Fprintf(b, "pfaird_wal_append_errors_total %d\n", st.AppendErrors)
	b.WriteString("# HELP pfaird_wal_snapshots_total Snapshots written (compactions).\n")
	b.WriteString("# TYPE pfaird_wal_snapshots_total counter\n")
	fmt.Fprintf(b, "pfaird_wal_snapshots_total %d\n", st.Snapshots)
	b.WriteString("# HELP pfaird_wal_unsynced_records Records written to the journal but not yet covered by an fsync.\n")
	b.WriteString("# TYPE pfaird_wal_unsynced_records gauge\n")
	fmt.Fprintf(b, "pfaird_wal_unsynced_records %d\n", st.Unsynced)
	b.WriteString("# HELP pfaird_wal_wedged Whether the journal has failed and refuses writes.\n")
	b.WriteString("# TYPE pfaird_wal_wedged gauge\n")
	fmt.Fprintf(b, "pfaird_wal_wedged %d\n", boolGauge(st.Wedged))
	b.WriteString("# HELP pfaird_commands_total Commands acknowledged (journaled and applied) since the data dir was created.\n")
	b.WriteString("# TYPE pfaird_commands_total counter\n")
	fmt.Fprintf(b, "pfaird_commands_total %d\n", s.cmdSeq.Load())
	if rec := s.recovery; rec != nil {
		b.WriteString("# HELP pfaird_recovery_records_replayed Journal records replayed at the last boot.\n")
		b.WriteString("# TYPE pfaird_recovery_records_replayed gauge\n")
		fmt.Fprintf(b, "pfaird_recovery_records_replayed %d\n", rec.RecordsReplayed)
		b.WriteString("# HELP pfaird_recovery_truncated_bytes Bytes discarded at torn segment tails at the last boot.\n")
		b.WriteString("# TYPE pfaird_recovery_truncated_bytes gauge\n")
		fmt.Fprintf(b, "pfaird_recovery_truncated_bytes %d\n", rec.TruncatedBytes)
		b.WriteString("# HELP pfaird_recovery_replay_errors Commands that failed to re-apply at the last boot (0 on a healthy recovery).\n")
		b.WriteString("# TYPE pfaird_recovery_replay_errors gauge\n")
		fmt.Fprintf(b, "pfaird_recovery_replay_errors %d\n", rec.ReplayErrors)
		b.WriteString("# HELP pfaird_recovery_dispatch_mismatches Journaled dispatch records that contradicted replay at the last boot (0 on a healthy recovery).\n")
		b.WriteString("# TYPE pfaird_recovery_dispatch_mismatches gauge\n")
		fmt.Fprintf(b, "pfaird_recovery_dispatch_mismatches %d\n", rec.DispatchMismatches)
	}
	b.WriteString("# HELP pfaird_replication_is_leader Whether this node accepts writes (1) or replicates from a leader (0).\n")
	b.WriteString("# TYPE pfaird_replication_is_leader gauge\n")
	fmt.Fprintf(b, "pfaird_replication_is_leader %d\n", boolGauge(s.Role() == RoleLeader))
	b.WriteString("# HELP pfaird_replication_term Leadership term of the journal.\n")
	b.WriteString("# TYPE pfaird_replication_term gauge\n")
	fmt.Fprintf(b, "pfaird_replication_term %d\n", s.wal.Term())
	b.WriteString("# HELP pfaird_replication_applied_lsn Highest journal LSN reflected in served state.\n")
	b.WriteString("# TYPE pfaird_replication_applied_lsn gauge\n")
	fmt.Fprintf(b, "pfaird_replication_applied_lsn %d\n", s.AppliedLSN())
	b.WriteString("# HELP pfaird_replication_lag_lsn LSNs this follower trails its leader's durable tip (0 on a leader, -1 before first measurement).\n")
	b.WriteString("# TYPE pfaird_replication_lag_lsn gauge\n")
	fmt.Fprintf(b, "pfaird_replication_lag_lsn %d\n", s.replicationLag())
	s.obs.writeWALTimingMetrics(b)
}

// replicationLag is the exported lag gauge: a leader is definitionally
// current; a follower reports what its tailer last measured.
func (s *Server) replicationLag() int64 {
	if s.Role() == RoleLeader {
		return 0
	}
	return s.replLagLSN.Load()
}

func boolGauge(v bool) int {
	if v {
		return 1
	}
	return 0
}

// ratToFloat renders a rat string ("3/2") as a float for the exposition
// format, which has no exact rationals. Metrics are the one place the
// repo tolerates the loss; the JSON API never does this.
func ratToFloat(s string) string {
	if i := strings.IndexByte(s, '/'); i >= 0 {
		var n, d float64
		fmt.Sscanf(s[:i], "%g", &n)
		fmt.Sscanf(s[i+1:], "%g", &d)
		if d != 0 {
			return fmt.Sprintf("%g", n/d)
		}
	}
	return s
}
