package server

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the request-duration
// histogram, powers of four from 16µs to ~67ms plus +Inf.
var latencyBuckets = []float64{
	16e-6, 64e-6, 256e-6, 1024e-6, 4096e-6, 16384e-6, 65536e-6,
}

// metrics aggregates per-route request counters without any lock on the
// request path. The route map is built once at registration (route()) and
// read-only afterwards, so observe() is a map lookup plus atomic adds —
// a /metrics scrape never contends with a request, and requests never
// contend with each other on a counter mutex. Tenant-level series
// (dispatch counts, tardiness, rejections) are not stored here — they are
// read live from the tenants at exposition time, so the two can never
// drift apart.
type metrics struct {
	routes map[string]*routeStats
}

// routeStats is one route's counters, updated and read with atomics only.
// Writers order their updates so a concurrent reader always sees an
// internally consistent histogram (see observe / snapshot).
type routeStats struct {
	count   atomic.Int64
	errors  atomic.Int64  // 4xx + 5xx responses
	sum     atomic.Uint64 // float64 bits, CAS-updated
	buckets [7]atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{routes: map[string]*routeStats{}}
}

// register pre-creates a route's counters. Called only from route() while
// the server is being built, before any request can run; after that the
// map is never written again, which is what makes lock-free observe safe.
func (m *metrics) register(route string) {
	m.routes[route] = &routeStats{}
}

// observe records one request against its route pattern. Update order is
// the consistency protocol: count first, then buckets from the widest
// down. A reader going the other way (buckets ascending, count last; see
// snapshot) therefore sees, for every bucket, at most as many increments
// as the next wider one and never more than count — the histogram it
// reads is always cumulative and `bucket ≤ count` holds even mid-update.
func (m *metrics) observe(route string, d time.Duration, status int) {
	rs := m.routes[route]
	if rs == nil {
		// Unregistered patterns cannot happen via route(); drop rather
		// than grow the map (which is lock-free only because it's frozen).
		return
	}
	secs := d.Seconds()
	rs.count.Add(1)
	if status >= 400 {
		rs.errors.Add(1)
	}
	for old := rs.sum.Load(); ; old = rs.sum.Load() {
		if rs.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+secs)) {
			break
		}
	}
	for i := len(latencyBuckets) - 1; i >= 0; i-- {
		if secs <= latencyBuckets[i] {
			rs.buckets[i].Add(1)
		}
	}
}

// routeSnap is one route's counters as read at exposition time.
type routeSnap struct {
	count   int64
	errors  int64
	sum     float64
	buckets [7]int64
}

// snapshot reads rs in the order that pairs with observe's write order:
// buckets ascending first, count last. Every value is monotone, so the
// result is a valid cumulative histogram with bucket[i] ≤ bucket[j≥i] ≤
// count even while writers are mid-flight.
func (rs *routeStats) snapshot() routeSnap {
	var s routeSnap
	for i := range rs.buckets {
		s.buckets[i] = rs.buckets[i].Load()
	}
	s.errors = rs.errors.Load()
	s.sum = math.Float64frombits(rs.sum.Load())
	s.count = rs.count.Load()
	return s
}

// latencyBucketLe are the pre-rendered le label values of latencyBuckets
// (what %g produced before the exposition moved off fmt).
var latencyBucketLe = func() []string {
	out := make([]string, len(latencyBuckets))
	for i, ub := range latencyBuckets {
		out[i] = strconv.FormatFloat(ub, 'g', -1, 64)
	}
	return out
}()

// appendLabeled1 appends one `name{label="value"} v\n` sample line.
func appendLabeled1(b []byte, name, label, value string, v int64) []byte {
	b = append(b, name...)
	b = append(b, '{')
	b = append(b, label...)
	b = append(b, '=')
	b = strconv.AppendQuote(b, value)
	b = append(b, "} "...)
	b = strconv.AppendInt(b, v, 10)
	return append(b, '\n')
}

// appendBare appends one unlabeled `name v\n` sample line.
func appendBare(b []byte, name string, v int64) []byte {
	b = append(b, name...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, v, 10)
	return append(b, '\n')
}

// appendMetrics renders the text exposition: request counters per route,
// then the live per-tenant series pulled from `infos`. Routes that have
// never been hit are filtered, so the page's route set matches what has
// actually served traffic. Everything appends into the caller's (pooled)
// buffer through strconv — no fmt verbs, no per-sample allocation.
func (m *metrics) appendMetrics(b []byte, infos []TenantInfo) []byte {
	routes := make([]string, 0, len(m.routes))
	snaps := make(map[string]routeSnap, len(m.routes))
	for r, rs := range m.routes {
		s := rs.snapshot()
		if s.count == 0 {
			continue
		}
		routes = append(routes, r)
		snaps[r] = s
	}
	sort.Strings(routes)
	b = append(b, "# HELP pfaird_requests_total HTTP requests served, by route.\n"...)
	b = append(b, "# TYPE pfaird_requests_total counter\n"...)
	for _, r := range routes {
		b = appendLabeled1(b, "pfaird_requests_total", "route", r, snaps[r].count)
	}
	b = append(b, "# HELP pfaird_request_errors_total HTTP 4xx/5xx responses, by route.\n"...)
	b = append(b, "# TYPE pfaird_request_errors_total counter\n"...)
	for _, r := range routes {
		b = appendLabeled1(b, "pfaird_request_errors_total", "route", r, snaps[r].errors)
	}
	b = append(b, "# HELP pfaird_request_duration_seconds Request latency histogram, by route.\n"...)
	b = append(b, "# TYPE pfaird_request_duration_seconds histogram\n"...)
	for _, r := range routes {
		rs := snaps[r]
		for i := range latencyBuckets {
			b = append(b, "pfaird_request_duration_seconds_bucket{route="...)
			b = strconv.AppendQuote(b, r)
			b = append(b, ",le="...)
			b = strconv.AppendQuote(b, latencyBucketLe[i])
			b = append(b, "} "...)
			b = strconv.AppendInt(b, rs.buckets[i], 10)
			b = append(b, '\n')
		}
		b = append(b, "pfaird_request_duration_seconds_bucket{route="...)
		b = strconv.AppendQuote(b, r)
		b = append(b, ",le=\"+Inf\"} "...)
		b = strconv.AppendInt(b, rs.count, 10)
		b = append(b, '\n')
		b = append(b, "pfaird_request_duration_seconds_sum{route="...)
		b = strconv.AppendQuote(b, r)
		b = append(b, "} "...)
		b = strconv.AppendFloat(b, rs.sum, 'g', -1, 64)
		b = append(b, '\n')
		b = appendLabeled1(b, "pfaird_request_duration_seconds_count", "route", r, rs.count)
	}

	b = append(b, "# HELP pfaird_tenants Current tenant count.\n"...)
	b = append(b, "# TYPE pfaird_tenants gauge\n"...)
	b = appendBare(b, "pfaird_tenants", int64(len(infos)))
	b = append(b, "# HELP pfaird_tenant_dispatches_total Scheduling decisions made, per tenant.\n"...)
	b = append(b, "# TYPE pfaird_tenant_dispatches_total counter\n"...)
	for _, ti := range infos {
		b = appendLabeled1(b, "pfaird_tenant_dispatches_total", "tenant", ti.ID, ti.Dispatches)
	}
	b = append(b, "# HELP pfaird_tenant_max_tardiness Worst observed tardiness in quanta (Theorem 3 bounds it by 1).\n"...)
	b = append(b, "# TYPE pfaird_tenant_max_tardiness gauge\n"...)
	for _, ti := range infos {
		b = append(b, "pfaird_tenant_max_tardiness{tenant="...)
		b = strconv.AppendQuote(b, ti.ID)
		b = append(b, "} "...)
		b = append(b, ratToFloat(ti.MaxTardiness)...)
		b = append(b, '\n')
	}
	b = append(b, "# HELP pfaird_tenant_admission_rejections_total Register requests rejected by admission control, per tenant.\n"...)
	b = append(b, "# TYPE pfaird_tenant_admission_rejections_total counter\n"...)
	for _, ti := range infos {
		b = appendLabeled1(b, "pfaird_tenant_admission_rejections_total", "tenant", ti.ID, ti.Rejections)
	}
	b = append(b, "# HELP pfaird_tenant_pending_subtasks Released but undispatched subtasks, per tenant.\n"...)
	b = append(b, "# TYPE pfaird_tenant_pending_subtasks gauge\n"...)
	for _, ti := range infos {
		b = appendLabeled1(b, "pfaird_tenant_pending_subtasks", "tenant", ti.ID, int64(ti.Pending))
	}
	b = append(b, "# HELP pfaird_tenant_m Current processor count, per tenant (changes on resize).\n"...)
	b = append(b, "# TYPE pfaird_tenant_m gauge\n"...)
	for _, ti := range infos {
		b = appendLabeled1(b, "pfaird_tenant_m", "tenant", ti.ID, int64(ti.M))
	}
	b = append(b, "# HELP pfaird_tenant_pending_m Queued drain-mode shrink target, per tenant (0 = none).\n"...)
	b = append(b, "# TYPE pfaird_tenant_pending_m gauge\n"...)
	for _, ti := range infos {
		b = appendLabeled1(b, "pfaird_tenant_pending_m", "tenant", ti.ID, int64(ti.PendingM))
	}
	return b
}

// appendUBare appends one unlabeled `name v\n` line for unsigned values.
func appendUBare(b []byte, name string, v uint64) []byte {
	b = append(b, name...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, v, 10)
	return append(b, '\n')
}

// appendWALMetrics appends the journal counters to the exposition. A
// non-durable server emits nothing, so PR 2's scrape output is unchanged
// for it.
func (s *Server) appendWALMetrics(b []byte) []byte {
	if s.wal == nil {
		return b
	}
	st := s.wal.Stats()
	b = append(b, "# HELP pfaird_wal_appends_total Journal records appended.\n"...)
	b = append(b, "# TYPE pfaird_wal_appends_total counter\n"...)
	b = appendUBare(b, "pfaird_wal_appends_total", st.Appends)
	b = append(b, "# HELP pfaird_wal_fsyncs_total Group-commit fsyncs issued.\n"...)
	b = append(b, "# TYPE pfaird_wal_fsyncs_total counter\n"...)
	b = appendUBare(b, "pfaird_wal_fsyncs_total", st.Fsyncs)
	b = append(b, "# HELP pfaird_wal_append_errors_total Journal appends refused or failed.\n"...)
	b = append(b, "# TYPE pfaird_wal_append_errors_total counter\n"...)
	b = appendUBare(b, "pfaird_wal_append_errors_total", st.AppendErrors)
	b = append(b, "# HELP pfaird_wal_snapshots_total Snapshots written (compactions).\n"...)
	b = append(b, "# TYPE pfaird_wal_snapshots_total counter\n"...)
	b = appendUBare(b, "pfaird_wal_snapshots_total", st.Snapshots)
	b = append(b, "# HELP pfaird_wal_unsynced_records Records written to the journal but not yet covered by an fsync.\n"...)
	b = append(b, "# TYPE pfaird_wal_unsynced_records gauge\n"...)
	b = appendUBare(b, "pfaird_wal_unsynced_records", st.Unsynced)
	b = append(b, "# HELP pfaird_wal_wedged Whether the journal has failed and refuses writes.\n"...)
	b = append(b, "# TYPE pfaird_wal_wedged gauge\n"...)
	b = appendBare(b, "pfaird_wal_wedged", int64(boolGauge(st.Wedged)))
	b = append(b, "# HELP pfaird_commands_total Commands acknowledged (journaled and applied) since the data dir was created.\n"...)
	b = append(b, "# TYPE pfaird_commands_total counter\n"...)
	b = appendUBare(b, "pfaird_commands_total", s.cmdSeq.Load())
	if rec := s.recovery; rec != nil {
		b = append(b, "# HELP pfaird_recovery_records_replayed Journal records replayed at the last boot.\n"...)
		b = append(b, "# TYPE pfaird_recovery_records_replayed gauge\n"...)
		b = appendBare(b, "pfaird_recovery_records_replayed", int64(rec.RecordsReplayed))
		b = append(b, "# HELP pfaird_recovery_truncated_bytes Bytes discarded at torn segment tails at the last boot.\n"...)
		b = append(b, "# TYPE pfaird_recovery_truncated_bytes gauge\n"...)
		b = appendBare(b, "pfaird_recovery_truncated_bytes", rec.TruncatedBytes)
		b = append(b, "# HELP pfaird_recovery_replay_errors Commands that failed to re-apply at the last boot (0 on a healthy recovery).\n"...)
		b = append(b, "# TYPE pfaird_recovery_replay_errors gauge\n"...)
		b = appendBare(b, "pfaird_recovery_replay_errors", int64(rec.ReplayErrors))
		b = append(b, "# HELP pfaird_recovery_dispatch_mismatches Journaled dispatch records that contradicted replay at the last boot (0 on a healthy recovery).\n"...)
		b = append(b, "# TYPE pfaird_recovery_dispatch_mismatches gauge\n"...)
		b = appendBare(b, "pfaird_recovery_dispatch_mismatches", int64(rec.DispatchMismatches))
	}
	b = append(b, "# HELP pfaird_replication_is_leader Whether this node accepts writes (1) or replicates from a leader (0).\n"...)
	b = append(b, "# TYPE pfaird_replication_is_leader gauge\n"...)
	b = appendBare(b, "pfaird_replication_is_leader", int64(boolGauge(s.Role() == RoleLeader)))
	b = append(b, "# HELP pfaird_replication_term Leadership term of the journal.\n"...)
	b = append(b, "# TYPE pfaird_replication_term gauge\n"...)
	b = appendUBare(b, "pfaird_replication_term", s.wal.Term())
	b = append(b, "# HELP pfaird_replication_applied_lsn Highest journal LSN reflected in served state.\n"...)
	b = append(b, "# TYPE pfaird_replication_applied_lsn gauge\n"...)
	b = appendUBare(b, "pfaird_replication_applied_lsn", s.AppliedLSN())
	b = append(b, "# HELP pfaird_replication_lag_lsn LSNs this follower trails its leader's durable tip (0 on a leader, -1 before first measurement).\n"...)
	b = append(b, "# TYPE pfaird_replication_lag_lsn gauge\n"...)
	b = appendBare(b, "pfaird_replication_lag_lsn", s.replicationLag())
	return s.obs.appendWALTimingMetrics(b)
}

// replicationLag is the exported lag gauge: a leader is definitionally
// current; a follower reports what its tailer last measured.
func (s *Server) replicationLag() int64 {
	if s.Role() == RoleLeader {
		return 0
	}
	return s.replLagLSN.Load()
}

func boolGauge(v bool) int {
	if v {
		return 1
	}
	return 0
}

// ratToFloat renders a rat string ("3/2") as a float for the exposition
// format, which has no exact rationals. Metrics are the one place the
// repo tolerates the loss; the JSON API never does this.
func ratToFloat(s string) string {
	if i := strings.IndexByte(s, '/'); i >= 0 {
		n, errN := strconv.ParseFloat(s[:i], 64)
		d, errD := strconv.ParseFloat(s[i+1:], 64)
		if errN == nil && errD == nil && d != 0 {
			return strconv.FormatFloat(n/d, 'g', -1, 64)
		}
	}
	return s
}
