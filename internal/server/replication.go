package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"
	"time"

	"desyncpfair/internal/wal"
)

// Replication endpoints and the role state machine.
//
// pfaird replicates by log shipping: a follower bootstraps from the
// leader's snapshot (GET /v1/replication/snapshot), then tails the
// journal (GET /v1/replication/log?from=<lsn>&follow=true) and feeds each
// record through ApplyReplicated — append-to-local-journal first, then
// the same applyRecord dispatcher crash recovery uses. A follower is
// therefore always a legal crash-recovery state: its journal is a prefix
// of the leader's (capped at the leader's *durable* LSN — the log reader
// never serves an unsynced suffix), and its in-memory state is exactly
// what Open would rebuild from that prefix.
//
// Promotion reuses the same machinery in the other direction: the
// follower seals its tail stream, bumps the journal term, appends a
// durable OpTerm marker, and flips writable. Terms are monotonic in LSN
// order; AppendReplicated rejects records below the local term, so a
// deposed leader that comes back and tries to ship its divergent suffix
// is fenced with ErrStaleTerm instead of corrupting the new timeline.

// Role is a node's position in the replication topology. The zero value
// is RoleLeader so New() keeps single-node semantics: a standalone pfaird
// is a leader of one.
type Role int32

const (
	RoleLeader Role = iota
	RoleFollower
	RoleCandidate
)

func (r Role) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	default:
		return fmt.Sprintf("role(%d)", int32(r))
	}
}

// Role returns the node's current replication role.
func (s *Server) Role() Role { return Role(s.role.Load()) }

// AppliedLSN is the highest journal LSN reflected in served state: on a
// leader everything written is applied; on a follower it trails the
// replication tailer.
func (s *Server) AppliedLSN() uint64 {
	if s.Role() == RoleLeader {
		if s.wal == nil {
			return 0
		}
		return s.wal.WrittenLSN()
	}
	return s.appliedLSN.Load()
}

// SetReplicationLag records how many LSNs this follower trails its
// leader's durable tip (-1 = unknown). Maintained by the cluster tailer;
// surfaces in /healthz and as pfaird_replication_lag_lsn.
func (s *Server) SetReplicationLag(lag int64) { s.replLagLSN.Store(lag) }

// SetReplicationError records (or, with "", clears) a replication fault.
// A non-empty error turns /healthz "degraded" without stopping reads.
func (s *Server) SetReplicationError(msg string) {
	if msg == "" {
		s.replErr.Store(nil)
		return
	}
	s.replErr.Store(&msg)
}

// ReplicationError returns the recorded replication fault, if any.
func (s *Server) ReplicationError() string {
	if p := s.replErr.Load(); p != nil {
		return *p
	}
	return ""
}

// SetCaughtUp marks a bootstrapping follower as caught up to its
// leader's durable tip; /healthz flips from 503 "bootstrapping" to 200
// and routers may start serving reads from it.
func (s *Server) SetCaughtUp() { s.bootstrapping.Store(false) }

// SetPromoteHook installs a callback Promote (and POST
// /v1/cluster/promote) runs first — the cluster follower uses it to seal
// its tail stream so no replicated append can race the term bump.
func (s *Server) SetPromoteHook(fn func() error) { s.promoteHook.Store(&fn) }

// MaybeCompact folds the journal into a snapshot when one is due. The
// replication tailer calls it between applied records — followers never
// run the handler path that normally triggers compaction.
func (s *Server) MaybeCompact() { s.maybeCompact() }

// ApplyReplicated feeds one leader-journaled record into a follower:
// journal first (AppendReplicated preserves the record's LSN and term,
// rejects discontinuities and stale terms), then apply through the same
// dispatcher recovery replays with. Journal errors are fatal to the
// stream — the local log refused the record, so applying it would fork
// state from disk. Apply errors are counted and degrade /healthz but do
// not stop replication, mirroring recovery's counted-never-fatal
// contract. Called from the single tailer goroutine only.
func (s *Server) ApplyReplicated(r wal.Record) error {
	if s.Role() != RoleFollower {
		return fmt.Errorf("server: %s does not accept replicated records", s.Role())
	}
	if s.wal == nil {
		return fmt.Errorf("server: replication needs a durable server")
	}
	s.opMu.RLock()
	defer s.opMu.RUnlock()
	if _, err := s.wal.AppendReplicated(r); err != nil {
		return err
	}
	before := s.replInfo.ReplayErrors + s.replInfo.DispatchMismatches
	s.applyRecord(r, &s.replInfo)
	if after := s.replInfo.ReplayErrors + s.replInfo.DispatchMismatches; after > before {
		s.SetReplicationError(fmt.Sprintf("replicated record %d (%s) did not apply cleanly", r.LSN, r.Op))
	}
	s.appliedLSN.Store(r.LSN)
	return nil
}

// Promote flips a follower writable: raise the journal term, append a
// durable OpTerm marker (the fence every stale-leader append dies on),
// re-arm the journal hooks, and become leader. Idempotent on a leader.
// The caller must stop feeding ApplyReplicated first (POST
// /v1/cluster/promote runs the promote hook, which seals the tailer).
func (s *Server) Promote() error {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.Role() == RoleLeader {
		return nil
	}
	if s.wal == nil {
		return fmt.Errorf("server: cannot promote a non-durable server")
	}
	s.role.Store(int32(RoleCandidate))
	term := s.wal.Term() + 1
	if err := s.wal.SetTerm(term); err != nil {
		s.role.Store(int32(RoleFollower))
		return err
	}
	// The OpTerm record makes the new term durable at a definite LSN:
	// recovery finds it, and any record the old leader still ships below
	// this term is fenced. Append waits for the fsync, which also seals
	// everything replicated before the promotion.
	if _, err := s.wal.Append(wal.Record{Op: wal.OpTerm}); err != nil {
		s.role.Store(int32(RoleFollower))
		return err
	}
	s.journaling.Store(true)
	s.bootstrapping.Store(false)
	s.replLagLSN.Store(0)
	s.replErr.Store(nil)
	s.appliedLSN.Store(s.wal.WrittenLSN())
	s.role.Store(int32(RoleLeader))
	return nil
}

// gateMutation answers 503 (with Retry-After) on every mutating route of
// a non-leader, so only the replication stream can change a follower.
func (s *Server) gateMutation(w http.ResponseWriter) bool {
	if role := s.Role(); role != RoleLeader {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("server: %s does not accept mutations; write to the leader", role))
		return false
	}
	return true
}

// --- wire types ---

// ReplStatusResponse is the body of GET /v1/replication/status.
type ReplStatusResponse struct {
	Role          string `json:"role"`
	Term          uint64 `json:"term"`
	DurableLSN    uint64 `json:"durableLSN"`
	WrittenLSN    uint64 `json:"writtenLSN"`
	AppliedLSN    uint64 `json:"appliedLSN"`
	SnapshotLSN   uint64 `json:"snapshotLSN"`
	Bootstrapping bool   `json:"bootstrapping,omitempty"`
}

// ReplFrame is one journal record on the replication stream, NDJSON, one
// per line. CRC is crc32(IEEE) of Rec's raw bytes, re-verified by the
// receiver so a corrupted proxy hop cannot silently fork a follower.
type ReplFrame struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// Verify recomputes the frame checksum and decodes the record.
func (f ReplFrame) Verify() (wal.Record, error) {
	if got := crc32.ChecksumIEEE(f.Rec); got != f.CRC {
		return wal.Record{}, fmt.Errorf("server: replication frame CRC mismatch (got %08x want %08x)", got, f.CRC)
	}
	var rec wal.Record
	if err := json.Unmarshal(f.Rec, &rec); err != nil {
		return wal.Record{}, fmt.Errorf("server: replication frame: %v", err)
	}
	return rec, nil
}

// ReplSnapshotResponse is the body of GET /v1/replication/snapshot: the
// latest journal snapshot, exactly as InstallSnapshot wants it.
type ReplSnapshotResponse struct {
	LSN     uint64          `json:"lsn"`
	Term    uint64          `json:"term"`
	Payload json.RawMessage `json:"payload"`
}

// PromoteResponse is the body of POST /v1/cluster/promote.
type PromoteResponse struct {
	Role string `json:"role"`
	Term uint64 `json:"term"`
}

// --- handlers ---

func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	resp := ReplStatusResponse{
		Role:          s.Role().String(),
		AppliedLSN:    s.AppliedLSN(),
		Bootstrapping: s.bootstrapping.Load(),
	}
	if s.wal != nil {
		resp.Term = s.wal.Term()
		resp.DurableLSN = s.wal.DurableLSN()
		resp.WrittenLSN = s.wal.WrittenLSN()
		resp.SnapshotLSN = s.wal.SnapshotLSN()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReplSnapshot serves the latest snapshot for follower bootstrap.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.wal == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: no journal (in-memory server)"))
		return
	}
	payload, lsn, term, err := s.wal.Snapshot()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if payload == nil {
		// Open always boot-compacts, so this only happens before Open
		// finished arming — treat as not-ready.
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("server: no snapshot yet"))
		return
	}
	writeJSON(w, http.StatusOK, ReplSnapshotResponse{LSN: lsn, Term: term, Payload: payload})
}

// handleReplLog streams journal records as NDJSON ReplFrames from
// ?from=<lsn> (default 1), never past the durable LSN. ?follow=true (the
// default, mirroring the dispatch stream) keeps the stream open and
// tails new records as they become durable; ?follow=false stops at the
// current durable tip. A cursor below the snapshot horizon answers 410
// Gone: the records were folded away and the follower must re-bootstrap
// from the snapshot.
func (s *Server) handleReplLog(w http.ResponseWriter, r *http.Request) {
	if s.wal == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: no journal (in-memory server)"))
		return
	}
	from := uint64(1)
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("server: bad from %q", v))
			return
		}
		if n > 0 {
			from = n
		}
	}
	follow := r.URL.Query().Get("follow") != "false"

	rd := s.wal.NewReader(from)
	defer rd.Close()

	// Resolve the first batch before committing to a 200, so a compacted
	// cursor can still answer 410.
	frames, err := rd.NextRaw(replLogBatch)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, wal.ErrCompacted) {
			status = http.StatusGone
		}
		writeErr(w, status, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}

	// Encode-once shipping: each frame's payload is the exact bytes the
	// journal holds on disk — json.Marshal of the final stamped record —
	// and the header CRC is crc32(payload), so the ReplFrame wire line
	// {"crc":N,"rec":<payload>} is assembled byte-for-byte from the raw
	// frame without decoding or re-marshaling a single record. The batch
	// buffer is reused across wakeups: one Write and one Flush per batch.
	// Replication followers are never evicted for lag — the reader paces
	// them against the durable horizon and the log is on disk anyway.
	var line []byte
	ticker := time.NewTicker(replLogPoll)
	defer ticker.Stop()
	for {
		line = line[:0]
		for _, f := range frames {
			line = append(line, `{"crc":`...)
			line = strconv.AppendUint(line, uint64(f.CRC), 10)
			line = append(line, `,"rec":`...)
			line = append(line, f.Payload...)
			line = append(line, '}', '\n')
		}
		if len(line) > 0 {
			if _, werr := w.Write(line); werr != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if len(frames) == 0 {
			if !follow {
				return
			}
			select {
			case <-ticker.C:
			case <-r.Context().Done():
				return
			case <-s.shutdown:
				return
			}
		}
		frames, err = rd.NextRaw(replLogBatch)
		if err != nil {
			// Mid-stream errors (including a compaction overtaking a slow
			// cursor) just end the stream; the follower re-queries and
			// gets the precise status then.
			return
		}
	}
}

const (
	// replLogBatch bounds records per write on the replication stream.
	replLogBatch = 256
	// replLogPoll is the tail-poll interval when the stream is caught up.
	replLogPoll = 15 * time.Millisecond
)

// handlePromote flips this node writable. Idempotent: promoting a leader
// reports the current term. The configured promote hook (the cluster
// follower's tail-stream seal) runs first, so no replicated append races
// the term bump.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.Role() != RoleLeader {
		if hook := s.promoteHook.Load(); hook != nil {
			if err := (*hook)(); err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
		}
		if err := s.Promote(); err != nil {
			writeErr(w, statusOf(err, http.StatusServiceUnavailable), err)
			return
		}
	}
	resp := PromoteResponse{Role: s.Role().String()}
	if s.wal != nil {
		resp.Term = s.wal.Term()
	}
	writeJSON(w, http.StatusOK, resp)
}
