package server_test

// Tests for the encode-once egress plane: byte-identity of every NDJSON
// stream with an independent re-encode (the frames a subscriber receives
// must be exactly what a per-subscriber json.Encoder would have written),
// fan-out correctness under churn with -race, and the slow-consumer
// policy — lag-bound eviction with an in-band 410 control line, and the
// write-stall deadline that severs a fully wedged reader.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"desyncpfair/internal/client"
	"desyncpfair/internal/model"
	"desyncpfair/internal/obs"
	"desyncpfair/internal/server"
)

// pumpDispatches drives `batches` rounds of (batch submit to every task,
// advance) so the tenant's dispatch log grows quickly: unit-weight tasks
// release one subtask per job, so each round yields tasks×per decisions.
func pumpDispatches(t testing.TB, c *client.Client, tenant string, tasks, batches, per int) {
	t.Helper()
	ctx := context.Background()
	for b := 0; b < batches; b++ {
		for k := 0; k < tasks; k++ {
			jobs := make([]server.SubmitJobRequest, per)
			for i := range jobs {
				jobs[i] = server.SubmitJobRequest{Task: fmt.Sprintf("t%d", k)}
			}
			if _, err := c.SubmitJobs(ctx, tenant, jobs); err != nil {
				t.Fatalf("batch submit: %v", err)
			}
		}
		if _, err := c.AdvanceBy(ctx, tenant, fmt.Sprint(per)); err != nil {
			t.Fatalf("advance: %v", err)
		}
	}
}

// unitTenant creates a tenant with `tasks` unit-weight tasks (E=1, P=1):
// the densest possible dispatch stream, m decisions per quantum.
func unitTenant(t testing.TB, c *client.Client, id string, tasks int) {
	t.Helper()
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, id, tasks, ""); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < tasks; k++ {
		if _, err := c.RegisterTask(ctx, id, fmt.Sprintf("t%d", k), model.W(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
}

// ndjsonLines fetches url and splits the body into its non-empty lines,
// each still carrying the trailing newline the wire had.
func ndjsonLines(t *testing.T, url string) [][]byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var lines [][]byte
	for _, ln := range bytes.SplitAfter(body, []byte("\n")) {
		if len(bytes.TrimSpace(ln)) > 0 {
			lines = append(lines, ln)
		}
	}
	return lines
}

// TestStreamByteIdentity20Seeds sweeps 20 seeded random workloads and
// asserts every egress stream is byte-identical to an independent
// re-encode of its records: decode each NDJSON line into the wire type
// and marshal it back — the bytes must match exactly, which is precisely
// what the per-subscriber json.Encoder this PR removed used to produce.
func TestStreamByteIdentity20Seeds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			srv, err := server.Open(server.Options{DataDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			hs := httptest.NewServer(srv.Handler())
			t.Cleanup(hs.Close)
			t.Cleanup(func() { srv.Close() })
			c := client.New(hs.URL, hs.Client())
			ctx := context.Background()

			tasks := 1 + rng.Intn(4)
			if _, err := c.CreateTenant(ctx, "acme", 2, ""); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < tasks; k++ {
				if _, err := c.RegisterTask(ctx, "acme", fmt.Sprintf("t%d", k), model.W(1, int64(tasks))); err != nil {
					t.Fatal(err)
				}
			}
			for i, n := 0, 5+rng.Intn(20); i < n; i++ {
				task := fmt.Sprintf("t%d", rng.Intn(tasks))
				if _, err := c.SubmitJob(ctx, "acme", task, ""); err != nil {
					t.Fatal(err)
				}
				if rng.Intn(3) == 0 {
					if _, err := c.AdvanceBy(ctx, "acme", fmt.Sprint(1+rng.Intn(4))); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := c.Drain(ctx, "acme"); err != nil {
				t.Fatal(err)
			}

			// Dispatch stream: frame bytes == Marshal(event) + '\n'.
			dispatches := ndjsonLines(t, hs.URL+"/v1/tenants/acme/dispatches?from=0&follow=false")
			if len(dispatches) == 0 {
				t.Fatal("no dispatch lines")
			}
			for i, ln := range dispatches {
				var ev server.DispatchEvent
				if err := json.Unmarshal(ln, &ev); err != nil {
					t.Fatalf("dispatch line %d: %v", i, err)
				}
				want, _ := json.Marshal(ev)
				if !bytes.Equal(ln, append(want, '\n')) {
					t.Fatalf("dispatch line %d not byte-identical:\n got %swant %s\n", i, ln, want)
				}
			}

			// Trace stream: same contract for the ring's memoized frames.
			traces := ndjsonLines(t, hs.URL+"/v1/tenants/acme/trace?from=0&follow=false")
			if len(traces) == 0 {
				t.Fatal("no trace lines")
			}
			for i, ln := range traces {
				var ev obs.Event
				if err := json.Unmarshal(ln, &ev); err != nil {
					t.Fatalf("trace line %d: %v", i, err)
				}
				want, _ := json.Marshal(ev)
				if !bytes.Equal(ln, append(want, '\n')) {
					t.Fatalf("trace line %d not byte-identical:\n got %swant %s\n", i, ln, want)
				}
			}

			// Replication stream: each raw-shipped line must re-verify its
			// CRC and round-trip through the ReplFrame encoder unchanged.
			repl := ndjsonLines(t, hs.URL+"/v1/replication/log?from=1&follow=false")
			if len(repl) == 0 {
				t.Fatal("no replication lines")
			}
			for i, ln := range repl {
				var f server.ReplFrame
				if err := json.Unmarshal(ln, &f); err != nil {
					t.Fatalf("repl line %d: %v", i, err)
				}
				if _, err := f.Verify(); err != nil {
					t.Fatalf("repl line %d: %v", i, err)
				}
				want, _ := json.Marshal(f)
				if !bytes.Equal(ln, append(want, '\n')) {
					t.Fatalf("repl line %d not byte-identical:\n got %swant %s\n", i, ln, want)
				}
			}
		})
	}
}

// TestFanoutStress runs 1 tenant × 32 follow-mode subscribers against
// concurrent submit churn plus subscribe/unsubscribe churn, under -race.
// Every follower must see the complete dispatch log, in order, with no
// gaps and no duplicates — the shared frame cache may never tear.
func TestFanoutStress(t *testing.T) {
	srv, c := newTestServer(t)
	_ = srv
	unitTenant(t, c, "acme", 4)

	const (
		followers = 32
		rounds    = 60
		perBatch  = 8
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	counts := make([]atomic.Int64, followers)
	errs := make([]error, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.StreamDispatches(ctx, "acme", 0, true)
			if err != nil {
				errs[i] = err
				return
			}
			defer st.Close()
			var next int64
			for {
				ev, err := st.Next()
				if err != nil {
					if ctx.Err() == nil && !errors.Is(err, io.EOF) {
						errs[i] = err
					}
					return
				}
				if ev.Seq != next {
					errs[i] = fmt.Errorf("follower %d: got seq %d, want %d", i, ev.Seq, next)
					return
				}
				next++
				counts[i].Store(next)
			}
		}(i)
	}

	// Subscribe/unsubscribe churn: short-lived replays racing the cache.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for j := 0; j < 40 && ctx.Err() == nil; j++ {
			st, err := c.StreamDispatches(ctx, "acme", int64(j), false)
			if err != nil {
				continue
			}
			for {
				if _, err := st.Next(); err != nil {
					break
				}
			}
			st.Close()
		}
	}()

	pumpDispatches(t, c, "acme", 4, rounds, perBatch)
	info, err := c.Tenant(context.Background(), "acme")
	if err != nil {
		t.Fatal(err)
	}
	total := info.Dispatches
	if want := int64(4 * rounds * perBatch); total != want {
		t.Fatalf("dispatched %d, want %d", total, want)
	}

	// Every follower must drain the full log; the backlog is finite now.
	deadline := time.Now().Add(15 * time.Second)
	for {
		done := true
		for i := range counts {
			if counts[i].Load() < total && errs[i] == nil {
				done = false
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	<-churnDone
	for i := range counts {
		if errs[i] != nil {
			t.Errorf("follower %d: %v", i, errs[i])
		}
		if got := counts[i].Load(); got != total {
			t.Errorf("follower %d consumed %d/%d frames", i, got, total)
		}
	}
}

// smallWriteBufListener shrinks each accepted connection's kernel send
// buffer so a few kilobytes of unread frames are enough to exert real
// TCP backpressure on the handler — the slow-consumer tests would
// otherwise need megabytes of traffic to fill default buffers.
type smallWriteBufListener struct{ net.Listener }

func (l smallWriteBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if tc, ok := c.(*net.TCPConn); err == nil && ok {
		tc.SetWriteBuffer(2048)
	}
	return c, err
}

// smallReadBufTransport dials with a tiny kernel receive buffer, the
// client half of the same backpressure setup.
func smallReadBufTransport() *http.Transport {
	return &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			c, err := (&net.Dialer{}).DialContext(ctx, network, addr)
			if tc, ok := c.(*net.TCPConn); err == nil && ok {
				tc.SetReadBuffer(2048)
			}
			return c, err
		},
	}
}

// TestStreamEvictsLaggingSubscriber: a follower that keeps reading, but
// slower than the log grows, must be evicted once it lags past the bound
// — with an in-band 410 control line whose resumeFrom equals exactly the
// number of events it was delivered, so reconnecting there loses nothing.
func TestStreamEvictsLaggingSubscriber(t *testing.T) {
	srv := server.New()
	srv.SetStreamPolicy(16, 10*time.Second)
	hs := httptest.NewUnstartedServer(srv.Handler())
	hs.Listener = smallWriteBufListener{hs.Listener}
	hs.Start()
	t.Cleanup(hs.Close)
	t.Cleanup(srv.Shutdown)
	c := client.New(hs.URL, hs.Client())
	unitTenant(t, c, "acme", 4)

	// The lagging follower: reads 1 KiB every 2 ms — alive, just slow.
	slow := &http.Client{Transport: smallReadBufTransport()}
	resp, err := slow.Get(hs.URL + "/v1/tenants/acme/dispatches?from=0&follow=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var (
		gotMu sync.Mutex
		got   bytes.Buffer
	)
	readerDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 1024)
		for {
			n, err := resp.Body.Read(buf)
			gotMu.Lock()
			got.Write(buf[:n])
			gotMu.Unlock()
			if err != nil {
				readerDone <- err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Outpace it until the server cuts it loose.
	deadline := time.Now().Add(10 * time.Second)
	for srv.StreamEvictions() == 0 && time.Now().Before(deadline) {
		pumpDispatches(t, c, "acme", 4, 1, 64)
	}
	if srv.StreamEvictions() == 0 {
		t.Fatal("no eviction despite sustained lag")
	}

	// The handler returned, so the reader drains the tail and hits EOF.
	select {
	case err := <-readerDone:
		if err != io.EOF {
			t.Fatalf("reader ended with %v, want EOF", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("evicted stream did not terminate")
	}

	gotMu.Lock()
	defer gotMu.Unlock()
	lines := bytes.Split(bytes.TrimSpace(got.Bytes()), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("stream delivered only %d lines", len(lines))
	}
	var gone server.StreamGone
	last := lines[len(lines)-1]
	if err := json.Unmarshal(last, &gone); err != nil || gone.Error == "" {
		t.Fatalf("last line is not the eviction control line: %s (%v)", last, err)
	}
	if gone.Status != http.StatusGone {
		t.Fatalf("control line status %d, want 410", gone.Status)
	}
	if !strings.Contains(gone.Error, fmt.Sprintf("?from=%d", gone.ResumeFrom)) {
		t.Fatalf("control line lacks the restart hint: %q", gone.Error)
	}
	if want := int64(len(lines) - 1); gone.ResumeFrom != want {
		t.Fatalf("resumeFrom %d, but %d events were delivered", gone.ResumeFrom, want)
	}
	// Every delivered line before the control line is a well-formed event.
	for i, ln := range lines[:len(lines)-1] {
		var ev server.DispatchEvent
		if err := json.Unmarshal(ln, &ev); err != nil {
			t.Fatalf("event line %d: %v", i, err)
		}
		if ev.Seq != int64(i) {
			t.Fatalf("event line %d has seq %d", i, ev.Seq)
		}
	}

	// Reconnecting at the hint replays the rest of the log seamlessly.
	st, err := c.StreamDispatches(context.Background(), "acme", gone.ResumeFrom, false)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ev, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != gone.ResumeFrom {
		t.Fatalf("resumed stream starts at seq %d, want %d", ev.Seq, gone.ResumeFrom)
	}
}

// TestStreamStallSeversWedgedReader: a reader that stops reading entirely
// cannot be delivered a 410 line — its pipe is full. The per-write stall
// deadline must sever it so the handler goroutine is reclaimed, and the
// server must remain fully serviceable afterwards.
func TestStreamStallSeversWedgedReader(t *testing.T) {
	srv := server.New()
	srv.SetStreamPolicy(-1, 300*time.Millisecond) // isolate the stall path
	hs := httptest.NewUnstartedServer(srv.Handler())
	hs.Listener = smallWriteBufListener{hs.Listener}
	hs.Start()
	t.Cleanup(hs.Close)
	t.Cleanup(srv.Shutdown)
	c := client.New(hs.URL, hs.Client())
	unitTenant(t, c, "acme", 4)

	// A raw TCP client that sends the request and then never reads.
	conn, err := net.Dial("tcp", hs.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.(*net.TCPConn).SetReadBuffer(2048)
	fmt.Fprintf(conn, "GET /v1/tenants/acme/dispatches?from=0&follow=true HTTP/1.1\r\nHost: pfaird\r\n\r\n")

	// Enough frames to fill both kernel buffers and jam the handler.
	pumpDispatches(t, c, "acme", 4, 12, 64)

	// Once the stall deadline fires the handler returns and the server
	// closes the connection: a bounded read-drain must reach an end (EOF
	// or reset) rather than time out against a still-open stream.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	rd := bufio.NewReader(conn)
	for {
		if _, err := rd.Discard(4096); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("connection still open: stall deadline did not sever the wedged reader")
			}
			break // EOF / reset: the server cut the connection
		}
	}

	// The server itself is unharmed: health and a fresh replay both work.
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err := c.StreamDispatches(context.Background(), "acme", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var n int64
	for {
		if _, err := st.Next(); err != nil {
			break
		}
		n++
	}
	if want := int64(4 * 12 * 64); n != want {
		t.Fatalf("fresh replay saw %d events, want %d", n, want)
	}
}
