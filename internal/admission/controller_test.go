package admission

import (
	"testing"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// Boundary: total utilization exactly M is feasible (the condition is an
// iff), one grain over is not. With q = 10, filling M = 2 with 19 tasks of
// 1/10 plus one more lands exactly on 2; a twentieth-plus-one of weight
// 1/10 would overflow by 1/q.
func TestControllerBoundaryExactlyM(t *testing.T) {
	const q = 10
	c := NewController(2)
	for i := 0; i < 2*q; i++ {
		d, err := c.Register(string(rune('a'+i%26))+string(rune('0'+i/26)), model.W(1, q))
		if err != nil {
			t.Fatal(err)
		}
		if !d.Admitted {
			t.Fatalf("task %d of %d rejected at utilization %s: %s", i+1, 2*q, c.Utilization(), d.Reason)
		}
	}
	if !c.Utilization().Equal(rat.FromInt(2)) {
		t.Fatalf("utilization %s, want exactly 2", c.Utilization())
	}
	if got := c.Len(); got != 2*q {
		t.Fatalf("Len() = %d, want %d", got, 2*q)
	}

	// M + 1/q: must reject, and must leave the state untouched.
	d, err := c.Register("straw", model.W(1, q))
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted {
		t.Fatalf("admitted at utilization M + 1/%d", q)
	}
	if d.Guarantee != NoGuarantee {
		t.Errorf("rejection carries guarantee %v", d.Guarantee)
	}
	if !c.Utilization().Equal(rat.FromInt(2)) {
		t.Errorf("rejection changed utilization to %s", c.Utilization())
	}
}

func TestControllerReadmissionAfterUnregister(t *testing.T) {
	c := NewController(1)
	if d, err := c.Register("a", model.W(1, 2)); err != nil || !d.Admitted {
		t.Fatalf("register a: %v %+v", err, d)
	}
	if d, err := c.Register("b", model.W(1, 2)); err != nil || !d.Admitted {
		t.Fatalf("register b: %v %+v", err, d)
	}
	if d, err := c.Register("c", model.W(1, 3)); err != nil || d.Admitted {
		t.Fatalf("register c at full utilization: %v %+v", err, d)
	}
	if err := c.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unregister("a"); err == nil {
		t.Error("double unregister accepted")
	}
	d, err := c.Register("c", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatalf("re-admission after unregister rejected: %s", d.Reason)
	}
	if d.Guarantee != SoftRealTime {
		t.Errorf("guarantee %v, want SoftRealTime", d.Guarantee)
	}
	if !c.Utilization().Equal(rat.One) {
		t.Errorf("utilization %s, want 1", c.Utilization())
	}
}

func TestControllerRejectsBadInput(t *testing.T) {
	c := NewController(1)
	if _, err := c.Register("", model.W(1, 2)); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := c.Register("a", model.W(3, 2)); err == nil {
		t.Error("weight > 1 accepted")
	}
	if _, err := c.Register("a", model.W(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("a", model.W(1, 4)); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := c.Unregister("ghost"); err == nil {
		t.Error("unregister of unknown task accepted")
	}
	if got := len(c.Weights()); got != 1 {
		t.Errorf("Weights() has %d entries, want 1", got)
	}
}
