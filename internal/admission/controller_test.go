package admission

import (
	"testing"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// Boundary: total utilization exactly M is feasible (the condition is an
// iff), one grain over is not. With q = 10, filling M = 2 with 19 tasks of
// 1/10 plus one more lands exactly on 2; a twentieth-plus-one of weight
// 1/10 would overflow by 1/q.
func TestControllerBoundaryExactlyM(t *testing.T) {
	const q = 10
	c := NewController(2)
	for i := 0; i < 2*q; i++ {
		d, err := c.Register(string(rune('a'+i%26))+string(rune('0'+i/26)), model.W(1, q))
		if err != nil {
			t.Fatal(err)
		}
		if !d.Admitted {
			t.Fatalf("task %d of %d rejected at utilization %s: %s", i+1, 2*q, c.Utilization(), d.Reason)
		}
	}
	if !c.Utilization().Equal(rat.FromInt(2)) {
		t.Fatalf("utilization %s, want exactly 2", c.Utilization())
	}
	if got := c.Len(); got != 2*q {
		t.Fatalf("Len() = %d, want %d", got, 2*q)
	}

	// M + 1/q: must reject, and must leave the state untouched.
	d, err := c.Register("straw", model.W(1, q))
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted {
		t.Fatalf("admitted at utilization M + 1/%d", q)
	}
	if d.Guarantee != NoGuarantee {
		t.Errorf("rejection carries guarantee %v", d.Guarantee)
	}
	if !c.Utilization().Equal(rat.FromInt(2)) {
		t.Errorf("rejection changed utilization to %s", c.Utilization())
	}
}

func TestControllerReadmissionAfterUnregister(t *testing.T) {
	c := NewController(1)
	if d, err := c.Register("a", model.W(1, 2)); err != nil || !d.Admitted {
		t.Fatalf("register a: %v %+v", err, d)
	}
	if d, err := c.Register("b", model.W(1, 2)); err != nil || !d.Admitted {
		t.Fatalf("register b: %v %+v", err, d)
	}
	if d, err := c.Register("c", model.W(1, 3)); err != nil || d.Admitted {
		t.Fatalf("register c at full utilization: %v %+v", err, d)
	}
	if err := c.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unregister("a"); err == nil {
		t.Error("double unregister accepted")
	}
	d, err := c.Register("c", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted {
		t.Fatalf("re-admission after unregister rejected: %s", d.Reason)
	}
	if d.Guarantee != SoftRealTime {
		t.Errorf("guarantee %v, want SoftRealTime", d.Guarantee)
	}
	if !c.Utilization().Equal(rat.One) {
		t.Errorf("utilization %s, want 1", c.Utilization())
	}
}

func TestControllerRejectsBadInput(t *testing.T) {
	c := NewController(1)
	if _, err := c.Register("", model.W(1, 2)); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := c.Register("a", model.W(3, 2)); err == nil {
		t.Error("weight > 1 accepted")
	}
	if _, err := c.Register("a", model.W(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("a", model.W(1, 4)); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := c.Unregister("ghost"); err == nil {
		t.Error("unregister of unknown task accepted")
	}
	if got := len(c.Weights()); got != 1 {
		t.Errorf("Weights() has %d entries, want 1", got)
	}
}

// Boundary tests for resize: shrinking to exactly m′ = Σwt is feasible
// (the condition is an iff), while Σwt = m′ + 1/q forces a rejection (or
// a queued drain). With q = 10 and 15 tasks of 1/10, Σwt = 3/2: m′ = 2
// applies; after topping up to Σwt = 2 + 1/10, a shrink to 2 is exactly
// 1/q over.
func TestControllerResizeBoundaryExactlyM(t *testing.T) {
	const q = 10
	c := NewController(4)
	for i := 0; i < 2*q; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i/26))
		if d, err := c.Register(name, model.W(1, q)); err != nil || !d.Admitted {
			t.Fatalf("register %d: %v %+v", i, err, d)
		}
	}
	// Σwt = 2 exactly: shrink to m′ = 2 is feasible.
	d, err := c.Resize(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != ResizeApplied || c.M() != 2 {
		t.Fatalf("shrink to exactly Σwt: %+v, m=%d", d, c.M())
	}

	// Grow back and push utilization to m′ + 1/q.
	if d, err = c.Resize(4, false); err != nil || d.Outcome != ResizeApplied {
		t.Fatalf("grow back: %v %+v", err, d)
	}
	if d2, err := c.Register("straw", model.W(1, q)); err != nil || !d2.Admitted {
		t.Fatalf("register straw: %v %+v", err, d2)
	}
	// Σwt = 2 + 1/q: shrink to 2 must be rejected without drain...
	d, err = c.Resize(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != ResizeRejected || c.M() != 4 || c.PendingM() != 0 {
		t.Fatalf("shrink 1/%d over Σwt: %+v, m=%d pending=%d", q, d, c.M(), c.PendingM())
	}
	// ...and queued with drain.
	d, err = c.Resize(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != ResizeQueued || c.M() != 4 || c.PendingM() != 2 {
		t.Fatalf("drain shrink 1/%d over Σwt: %+v, m=%d pending=%d", q, d, c.M(), c.PendingM())
	}
	// One unregister of 1/q brings Σwt to exactly 2 ≤ 2: the shrink applies.
	if err := c.Unregister("straw"); err != nil {
		t.Fatal(err)
	}
	if c.M() != 2 || c.PendingM() != 0 {
		t.Fatalf("drain did not apply at exactly m′: m=%d pending=%d", c.M(), c.PendingM())
	}
}

// Re-admission after Unregister must validate against the current M, not
// the construction-time M (the PR 9 fix): after a shrink, freed capacity
// below the old M is gone.
func TestControllerReadmissionUsesCurrentM(t *testing.T) {
	c := NewController(2)
	if d, err := c.Register("a", model.W(1, 1)); err != nil || !d.Admitted {
		t.Fatalf("register a: %v %+v", err, d)
	}
	if d, err := c.Register("b", model.W(1, 1)); err != nil || !d.Admitted {
		t.Fatalf("register b: %v %+v", err, d)
	}
	if err := c.Unregister("b"); err != nil {
		t.Fatal(err)
	}
	if d, err := c.Resize(1, false); err != nil || d.Outcome != ResizeApplied {
		t.Fatalf("shrink to 1: %v %+v", err, d)
	}
	// Against the construction-time M = 2 this would fit; against the
	// current M = 1 with Σwt = 1 it must not.
	d, err := c.Register("c", model.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted {
		t.Fatalf("re-admission validated against construction-time M: %+v", d)
	}
	if err := c.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	if d, err = c.Register("c", model.W(1, 1)); err != nil || !d.Admitted {
		t.Fatalf("register within current M: %v %+v", err, d)
	}
}

// While a drain-mode shrink is pending, new registrations are gated by
// the pending target, not the still-current M — otherwise the drain
// would never converge.
func TestControllerPendingGatesRegistration(t *testing.T) {
	c := NewController(3)
	for _, name := range []string{"a", "b", "c"} {
		if d, err := c.Register(name, model.W(1, 1)); err != nil || !d.Admitted {
			t.Fatalf("register %s: %v %+v", name, err, d)
		}
	}
	d, err := c.Resize(1, true)
	if err != nil || d.Outcome != ResizeQueued {
		t.Fatalf("queue drain: %v %+v", err, d)
	}
	// Σwt = 3 > 1 pending: even a tiny task must be refused against the
	// target of 1, though M is still 3.
	d2, err := c.Register("d", model.W(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Admitted {
		t.Fatalf("registration during drain admitted against old M: %+v", d2)
	}
	if err := c.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	if c.PendingM() != 1 || c.M() != 3 {
		t.Fatalf("drain applied early: m=%d pending=%d util=%s", c.M(), c.PendingM(), c.Utilization())
	}
	if err := c.Unregister("b"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unregister("c"); err != nil {
		t.Fatal(err)
	}
	if c.M() != 1 || c.PendingM() != 0 {
		t.Fatalf("drain did not apply: m=%d pending=%d", c.M(), c.PendingM())
	}
}

// A grow cancels a pending shrink — the newest target wins — and resize
// input validation mirrors the service boundary.
func TestControllerResizeValidationAndCancel(t *testing.T) {
	c := NewController(2)
	if _, err := c.Resize(0, false); err == nil {
		t.Error("resize to 0 accepted")
	}
	if _, err := c.Resize(MaxM+1, false); err == nil {
		t.Error("resize beyond MaxM accepted")
	}
	for _, name := range []string{"a", "b"} {
		if d, err := c.Register(name, model.W(1, 1)); err != nil || !d.Admitted {
			t.Fatalf("register %s: %v %+v", name, err, d)
		}
	}
	if d, err := c.Resize(1, true); err != nil || d.Outcome != ResizeQueued {
		t.Fatalf("queue drain: %v %+v", err, d)
	}
	if d, err := c.Resize(4, false); err != nil || d.Outcome != ResizeApplied {
		t.Fatalf("grow over pending: %v %+v", err, d)
	}
	if c.M() != 4 || c.PendingM() != 0 {
		t.Fatalf("grow left pending shrink: m=%d pending=%d", c.M(), c.PendingM())
	}

	// RestorePendingResize enforces the pending invariant.
	if err := c.RestorePendingResize(1); err != nil {
		t.Fatalf("restore valid pending: %v", err)
	}
	if err := c.RestorePendingResize(0); err != nil {
		t.Fatalf("restore clear: %v", err)
	}
	if err := c.RestorePendingResize(4); err == nil {
		t.Error("pending ≥ m accepted")
	}
	if err := c.RestorePendingResize(3); err == nil {
		t.Error("pending ≥ Σwt accepted (should have applied)")
	}
}
