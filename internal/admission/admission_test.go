package admission

import (
	"math/rand"
	"strings"
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sfq"
)

func TestPfairExactBoundary(t *testing.T) {
	atM := []model.Weight{model.W(1, 2), model.W(1, 2), model.W(1, 2), model.W(1, 2)}
	if d := PfairSFQ(atM, 2); !d.Admitted || d.Guarantee != HardRealTime {
		t.Errorf("utilization exactly M rejected: %+v", d)
	}
	over := append(atM, model.W(1, 1000))
	if d := PfairSFQ(over, 2); d.Admitted {
		t.Errorf("utilization M + 1/1000 admitted: %+v", d)
	}
	if d := PfairDVQ(atM, 2); !d.Admitted || d.Guarantee != SoftRealTime {
		t.Errorf("DVQ guarantee wrong: %+v", d)
	}
}

func TestEPDFGuaranteeByProcessorCount(t *testing.T) {
	ws := []model.Weight{model.W(1, 2), model.W(1, 2), model.W(1, 2)}
	if d := EPDF(ws, 2); !d.Admitted || d.Guarantee != HardRealTime {
		t.Errorf("EPDF on M=2: %+v", d)
	}
	ws4 := []model.Weight{model.W(1, 2), model.W(1, 2), model.W(1, 2), model.W(1, 2), model.W(1, 2), model.W(1, 2)}
	if d := EPDF(ws4, 3); !d.Admitted || d.Guarantee != NoGuarantee {
		t.Errorf("EPDF on M=3 should admit without guarantee: %+v", d)
	}
	if d := EPDF(ws4, 2); d.Admitted {
		t.Errorf("overloaded EPDF admitted: %+v", d)
	}
}

func TestPartitionedTests(t *testing.T) {
	heavy := []model.Weight{model.W(6, 11), model.W(6, 11), model.W(6, 11)}
	if d := PartitionedEDF(heavy, 2); d.Admitted {
		t.Errorf("three 6/11 tasks on 2 procs partitioned: %+v", d)
	}
	if d := PartitionedRM(heavy, 2); d.Admitted {
		t.Errorf("RM admitted the heavy set: %+v", d)
	}
	light := []model.Weight{model.W(1, 4), model.W(1, 4), model.W(1, 4), model.W(1, 4)}
	if d := PartitionedEDF(light, 2); !d.Admitted {
		t.Errorf("light set rejected by P-EDF: %+v", d)
	}
	if d := PartitionedRM(light, 2); !d.Admitted {
		t.Errorf("light set rejected by P-RM: %+v", d)
	}
}

func TestWithOverhead(t *testing.T) {
	ws := []model.Weight{model.W(9, 10), model.W(9, 10)}
	// Without overhead: fits on 2 processors.
	if d := PfairSFQ(ws, 2); !d.Admitted {
		t.Fatalf("base set rejected: %+v", d)
	}
	// With 20% overhead: 9 × 1.2 = 10.8 → 11 > 10: infeasible weights.
	if d := WithOverhead(PfairSFQ, ws, 2, rat.New(1, 5)); d.Admitted {
		t.Errorf("overhead-inflated set admitted: %+v", d)
	}
	// With 10% overhead: 9 × 1.1 = 9.9 → 10/10 each; Σ = 2 ≤ M: admitted.
	if d := WithOverhead(PfairSFQ, ws, 2, rat.New(1, 10)); !d.Admitted {
		t.Errorf("10%% overhead set rejected: %+v", d)
	}
	if !strings.Contains(WithOverhead(PfairSFQ, ws, 2, rat.New(1, 10)).Reason, "overhead") {
		t.Error("reason should mention overhead")
	}
}

func TestInvalidWeightsRejectedEverywhere(t *testing.T) {
	bad := []model.Weight{model.W(3, 2)}
	for _, d := range All(bad, 2) {
		if d.Admitted {
			t.Errorf("%s admitted an invalid weight", d.Scheduler)
		}
	}
}

func TestAllReturnsEveryScheduler(t *testing.T) {
	ds := All([]model.Weight{model.W(1, 2)}, 2)
	if len(ds) != 5 {
		t.Fatalf("decisions = %d", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Scheduler] = true
		if d.Reason == "" {
			t.Errorf("%s has empty reason", d.Scheduler)
		}
	}
	for _, want := range []string{"PD2/SFQ", "PD2/DVQ", "EPDF", "P-EDF", "P-RM"} {
		if !names[want] {
			t.Errorf("missing scheduler %s", want)
		}
	}
}

func TestGuaranteeStrings(t *testing.T) {
	if HardRealTime.String() != "hard" || NoGuarantee.String() != "none" {
		t.Error("guarantee strings wrong")
	}
	if !strings.Contains(SoftRealTime.String(), "quantum") {
		t.Error("soft guarantee should mention the quantum bound")
	}
}

// The admission tests must be sound: anything PfairSFQ admits is in fact
// scheduled by PD² without misses.
func TestPfairAdmissionSound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(3)
		q := int64(6 + rng.Intn(6))
		n := m + 1 + rng.Intn(2*m)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		if d := PfairSFQ(ws, m); !d.Admitted {
			t.Fatalf("full-utilization set rejected: %+v", d)
		}
		sys := model.Periodic(ws, 2*q)
		s, err := sfq.Run(sys, sfq.Options{M: m})
		if err != nil {
			t.Fatal(err)
		}
		if s.MissCount() != 0 {
			t.Fatalf("admitted set missed deadlines")
		}
	}
}
