// Package admission collects the schedulability tests for every scheduler
// family in this repository in one planning API: given a weight set and a
// processor count, which schedulers can take the workload, and with what
// guarantee? It is the decision companion to the simulators — the tests
// here are analytical, not empirical.
package admission

import (
	"fmt"

	"desyncpfair/internal/baseline"
	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// Guarantee describes what a positive admission decision buys.
type Guarantee int

const (
	// HardRealTime: every deadline met.
	HardRealTime Guarantee = iota
	// SoftRealTime: deadlines may be missed by a bounded amount (one
	// quantum, for the DVQ results of the paper).
	SoftRealTime
	// NoGuarantee: the test cannot certify the workload.
	NoGuarantee
)

func (g Guarantee) String() string {
	switch g {
	case HardRealTime:
		return "hard"
	case SoftRealTime:
		return "soft (tardiness ≤ 1 quantum)"
	default:
		return "none"
	}
}

// Decision is the outcome of one scheduler's admission test.
type Decision struct {
	Scheduler string
	Admitted  bool
	Guarantee Guarantee
	Reason    string
}

// Total returns Σ wt as an exact rational, with validation.
func Total(ws []model.Weight) (rat.Rat, error) {
	u := rat.Zero
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			return rat.Zero, err
		}
		u = u.Add(w.Rat())
	}
	return u, nil
}

// PfairSFQ admits iff total utilization ≤ M — the exact feasibility
// condition, and PD² (or PF/PD) then meets every deadline (hard).
func PfairSFQ(ws []model.Weight, m int) Decision {
	u, err := Total(ws)
	if err != nil {
		return Decision{Scheduler: "PD2/SFQ", Reason: err.Error(), Guarantee: NoGuarantee}
	}
	if u.LessEq(rat.FromInt(int64(m))) {
		return Decision{Scheduler: "PD2/SFQ", Admitted: true, Guarantee: HardRealTime,
			Reason: fmt.Sprintf("Σwt = %s ≤ M = %d (Pfair feasibility, exact)", u, m)}
	}
	return Decision{Scheduler: "PD2/SFQ", Guarantee: NoGuarantee,
		Reason: fmt.Sprintf("Σwt = %s > M = %d", u, m)}
}

// PfairDVQ admits iff total utilization ≤ M; by Theorem 3 of the paper the
// guarantee is soft: tardiness at most one quantum.
func PfairDVQ(ws []model.Weight, m int) Decision {
	d := PfairSFQ(ws, m)
	d.Scheduler = "PD2/DVQ"
	if d.Admitted {
		d.Guarantee = SoftRealTime
		d.Reason += "; DVQ tardiness ≤ 1 quantum (Theorem 3)"
	}
	return d
}

// EPDF admits with a hard guarantee only on up to two processors (where
// EPDF is optimal); beyond that it reports no analytical guarantee.
func EPDF(ws []model.Weight, m int) Decision {
	u, err := Total(ws)
	if err != nil {
		return Decision{Scheduler: "EPDF", Reason: err.Error(), Guarantee: NoGuarantee}
	}
	if !u.LessEq(rat.FromInt(int64(m))) {
		return Decision{Scheduler: "EPDF", Guarantee: NoGuarantee,
			Reason: fmt.Sprintf("Σwt = %s > M = %d", u, m)}
	}
	if m <= 2 {
		return Decision{Scheduler: "EPDF", Admitted: true, Guarantee: HardRealTime,
			Reason: "EPDF is optimal on at most two processors"}
	}
	return Decision{Scheduler: "EPDF", Admitted: true, Guarantee: NoGuarantee,
		Reason: "EPDF is suboptimal beyond two processors; misses possible (see E14)"}
}

// PartitionedEDF admits iff first-fit-decreasing finds a partition with
// per-processor utilization ≤ 1 (then uniprocessor EDF is hard).
func PartitionedEDF(ws []model.Weight, m int) Decision {
	if _, err := Total(ws); err != nil {
		return Decision{Scheduler: "P-EDF", Reason: err.Error(), Guarantee: NoGuarantee}
	}
	if _, err := baseline.PartitionFFD(ws, m); err != nil {
		return Decision{Scheduler: "P-EDF", Guarantee: NoGuarantee, Reason: err.Error()}
	}
	return Decision{Scheduler: "P-EDF", Admitted: true, Guarantee: HardRealTime,
		Reason: "FFD partition with per-processor utilization ≤ 1"}
}

// PartitionedRM admits iff first-fit-decreasing under the Liu–Layland
// per-processor bound succeeds (then per-processor RM is hard).
func PartitionedRM(ws []model.Weight, m int) Decision {
	if _, err := Total(ws); err != nil {
		return Decision{Scheduler: "P-RM", Reason: err.Error(), Guarantee: NoGuarantee}
	}
	if _, err := baseline.PartitionFFDRM(ws, m); err != nil {
		return Decision{Scheduler: "P-RM", Guarantee: NoGuarantee, Reason: err.Error()}
	}
	return Decision{Scheduler: "P-RM", Admitted: true, Guarantee: HardRealTime,
		Reason: "FFD partition within the Liu–Layland bound"}
}

// WithOverhead re-runs a test with execution costs inflated by the given
// preemption/migration overhead (Sec. 3 of the paper: such costs are folded
// into execution costs). The returned decision is for the inflated set.
func WithOverhead(test func([]model.Weight, int) Decision, ws []model.Weight, m int, overhead rat.Rat) Decision {
	inflated, err := inflate(ws, overhead)
	if err != nil {
		return Decision{Scheduler: "overhead", Guarantee: NoGuarantee, Reason: err.Error()}
	}
	d := test(inflated, m)
	d.Reason = fmt.Sprintf("with %s overhead folded in: %s", overhead, d.Reason)
	return d
}

func inflate(ws []model.Weight, overhead rat.Rat) ([]model.Weight, error) {
	if overhead.Sign() < 0 {
		return nil, fmt.Errorf("admission: negative overhead")
	}
	factor := rat.One.Add(overhead)
	out := make([]model.Weight, len(ws))
	for i, w := range ws {
		e := factor.Mul(rat.FromInt(w.E)).Ceil()
		if e > w.P {
			return nil, fmt.Errorf("admission: weight %s exceeds 1 after %s overhead", w, overhead)
		}
		out[i] = model.W(e, w.P)
	}
	return out, nil
}

// All runs every admission test and returns the decisions, Pfair first.
func All(ws []model.Weight, m int) []Decision {
	return []Decision{
		PfairSFQ(ws, m),
		PfairDVQ(ws, m),
		EPDF(ws, m),
		PartitionedEDF(ws, m),
		PartitionedRM(ws, m),
	}
}
