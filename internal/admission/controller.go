package admission

import (
	"fmt"
	"sort"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// Controller is the stateful counterpart of the analytical tests in this
// package: it tracks the set of currently admitted weights against a fixed
// processor count and answers register/unregister requests online, the way
// a long-running service must. The invariant it maintains is exactly the
// Pfair feasibility condition Σ wt ≤ M, so everything it admits is
// schedulable by PD² under SFQ (hard) and under DVQ with at most one
// quantum of tardiness (Theorem 3).
//
// Controller is not safe for concurrent use; callers (internal/server's
// Tenant) serialize access.
type Controller struct {
	m       int
	pending int // queued shrink target (drain mode); 0 when none
	util    rat.Rat
	tasks   map[string]model.Weight
}

// MaxM caps the processor count a resize (or construction, via the
// service boundary that aliases this) may name. The scheduling core uses
// exact int64 rational arithmetic that panics on overflow by design;
// bounding M keeps every capacity comparison far inside the representable
// range.
const MaxM = 1 << 12

// NewController creates a controller for m processors.
func NewController(m int) *Controller {
	if m < 1 {
		panic("admission: m must be ≥ 1")
	}
	return &Controller{m: m, util: rat.Zero, tasks: map[string]model.Weight{}}
}

// M returns the processor count the controller currently admits against.
// While a drain-mode shrink is pending, new registrations are gated by
// PendingM instead, so the count here is the capacity still serving
// already-admitted work.
func (c *Controller) M() int { return c.m }

// PendingM returns the queued drain-mode shrink target, or 0 when no
// shrink is pending. The invariant is pending ≠ 0 ⇒ pending < m and
// Σwt > pending: the moment unregisters bring utilization within the
// target, the shrink applies and pending clears.
func (c *Controller) PendingM() int { return c.pending }

// Utilization returns Σ wt over currently admitted tasks.
func (c *Controller) Utilization() rat.Rat { return c.util }

// Len returns the number of currently admitted tasks.
func (c *Controller) Len() int { return len(c.tasks) }

// Weights returns the admitted weight set in name order (for reports and
// for re-running the analytical tests of this package on the live set).
func (c *Controller) Weights() []model.Weight {
	names := make([]string, 0, len(c.tasks))
	for name := range c.tasks {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]model.Weight, len(names))
	for i, name := range names {
		out[i] = c.tasks[name]
	}
	return out
}

// Register admits the named task iff the resulting total utilization stays
// ≤ M (utilization exactly M is admitted — the feasibility condition is an
// iff). Duplicate names and invalid weights are rejected.
func (c *Controller) Register(name string, w model.Weight) (Decision, error) {
	if name == "" {
		return Decision{}, fmt.Errorf("admission: empty task name")
	}
	if _, dup := c.tasks[name]; dup {
		return Decision{}, fmt.Errorf("admission: task %q already registered", name)
	}
	if err := w.Validate(); err != nil {
		return Decision{}, err
	}
	// Admission is always against the *current* target, not the
	// construction-time M: after a resize the cap is the live m, and while
	// a drain-mode shrink is pending the cap is the pending target — new
	// work must not push utilization further above where we are draining to.
	cap := c.m
	if c.pending != 0 {
		cap = c.pending
	}
	newTotal := c.util.Add(w.Rat())
	if rat.FromInt(int64(cap)).Less(newTotal) {
		return Decision{
			Scheduler: "PD2/DVQ",
			Guarantee: NoGuarantee,
			Reason:    fmt.Sprintf("registering %q (weight %s) would raise Σwt to %s > M = %d", name, w, newTotal, cap),
		}, nil
	}
	c.tasks[name] = w
	c.util = newTotal
	return Decision{
		Scheduler: "PD2/DVQ",
		Admitted:  true,
		Guarantee: SoftRealTime,
		Reason:    fmt.Sprintf("Σwt = %s ≤ M = %d; DVQ tardiness ≤ 1 quantum (Theorem 3)", newTotal, cap),
	}, nil
}

// Unregister releases the named task's capacity so later Register calls
// can reuse it. If a drain-mode shrink is pending and the release brings
// utilization within its target, the shrink applies now: M drops to the
// target and the pending state clears. Callers that mirror M elsewhere
// (the server's tenant loop) should re-read M after every Unregister.
func (c *Controller) Unregister(name string) error {
	w, ok := c.tasks[name]
	if !ok {
		return fmt.Errorf("admission: task %q not registered", name)
	}
	delete(c.tasks, name)
	c.util = c.util.Sub(w.Rat())
	if c.pending != 0 && !rat.FromInt(int64(c.pending)).Less(c.util) {
		c.m = c.pending
		c.pending = 0
	}
	return nil
}

// ResizeOutcome classifies what a Resize request did.
type ResizeOutcome int

const (
	// ResizeApplied: the new M is in effect.
	ResizeApplied ResizeOutcome = iota
	// ResizeQueued: a drain-mode shrink was accepted but Σwt is still above
	// the target; M is unchanged, new registrations are gated by the target,
	// and the shrink applies at the Unregister that brings Σwt within it.
	ResizeQueued
	// ResizeRejected: a non-drain shrink below Σwt; nothing changed.
	ResizeRejected
)

// String implements fmt.Stringer for reports and wire responses.
func (o ResizeOutcome) String() string {
	switch o {
	case ResizeApplied:
		return "applied"
	case ResizeQueued:
		return "queued"
	case ResizeRejected:
		return "rejected"
	}
	return fmt.Sprintf("ResizeOutcome(%d)", int(o))
}

// ResizeDecision reports the result of a Resize or PlanResize call.
type ResizeDecision struct {
	Outcome  ResizeOutcome
	M        int    // effective processor count after the call
	PendingM int    // queued shrink target, 0 if none
	Reason   string // human-readable rationale, always set
}

// PlanResize answers what Resize(m, drain) would do without changing any
// state. The server journals resizes before applying them, and the WAL
// contract requires validation to be complete pre-journal — this is that
// validation.
func (c *Controller) PlanResize(m int, drain bool) (ResizeDecision, error) {
	if m < 1 || m > MaxM {
		return ResizeDecision{}, fmt.Errorf("admission: resize target %d out of range [1, %d]", m, MaxM)
	}
	if m >= c.m {
		return ResizeDecision{
			Outcome: ResizeApplied, M: m,
			Reason: fmt.Sprintf("M %d → %d; Σwt = %s still ≤ M", c.m, m, c.util),
		}, nil
	}
	if rat.FromInt(int64(m)).Less(c.util) {
		if drain {
			return ResizeDecision{
				Outcome: ResizeQueued, M: c.m, PendingM: m,
				Reason: fmt.Sprintf("Σwt = %s > %d; draining — shrink applies when unregisters bring Σwt ≤ %d", c.util, m, m),
			}, nil
		}
		return ResizeDecision{
			Outcome: ResizeRejected, M: c.m, PendingM: c.pending,
			Reason: fmt.Sprintf("shrink to M = %d infeasible: Σwt = %s > %d would void the tardiness bound", m, c.util, m),
		}, nil
	}
	return ResizeDecision{
		Outcome: ResizeApplied, M: m,
		Reason: fmt.Sprintf("M %d → %d; Σwt = %s ≤ %d keeps Theorem 3's bound", c.m, m, c.util, m),
	}, nil
}

// Resize re-evaluates the feasibility condition against a new processor
// count and applies it when Σwt ≤ m. A grow always applies (and cancels
// any pending shrink — the newest target wins). A shrink below current
// utilization is rejected, or with drain=true queued as a pending target
// that Unregister applies once utilization allows.
func (c *Controller) Resize(m int, drain bool) (ResizeDecision, error) {
	d, err := c.PlanResize(m, drain)
	if err != nil {
		return d, err
	}
	switch d.Outcome {
	case ResizeApplied:
		c.m = m
		c.pending = 0
	case ResizeQueued:
		c.pending = m
	}
	return d, nil
}

// RestorePendingResize reinstates a queued shrink target from a
// checkpoint. It enforces the pending invariant (target below both m and
// current utilization — otherwise it would have applied already), so a
// corrupt checkpoint cannot smuggle in an inconsistent drain state.
func (c *Controller) RestorePendingResize(m int) error {
	if m == 0 {
		c.pending = 0
		return nil
	}
	if m < 1 || m >= c.m {
		return fmt.Errorf("admission: pending resize target %d not below m = %d", m, c.m)
	}
	if !rat.FromInt(int64(m)).Less(c.util) {
		return fmt.Errorf("admission: pending resize target %d not below Σwt = %s; it should have applied", m, c.util)
	}
	c.pending = m
	return nil
}
