package admission

import (
	"fmt"
	"sort"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// Controller is the stateful counterpart of the analytical tests in this
// package: it tracks the set of currently admitted weights against a fixed
// processor count and answers register/unregister requests online, the way
// a long-running service must. The invariant it maintains is exactly the
// Pfair feasibility condition Σ wt ≤ M, so everything it admits is
// schedulable by PD² under SFQ (hard) and under DVQ with at most one
// quantum of tardiness (Theorem 3).
//
// Controller is not safe for concurrent use; callers (internal/server's
// Tenant) serialize access.
type Controller struct {
	m     int
	util  rat.Rat
	tasks map[string]model.Weight
}

// NewController creates a controller for m processors.
func NewController(m int) *Controller {
	if m < 1 {
		panic("admission: m must be ≥ 1")
	}
	return &Controller{m: m, util: rat.Zero, tasks: map[string]model.Weight{}}
}

// M returns the processor count the controller admits against.
func (c *Controller) M() int { return c.m }

// Utilization returns Σ wt over currently admitted tasks.
func (c *Controller) Utilization() rat.Rat { return c.util }

// Len returns the number of currently admitted tasks.
func (c *Controller) Len() int { return len(c.tasks) }

// Weights returns the admitted weight set in name order (for reports and
// for re-running the analytical tests of this package on the live set).
func (c *Controller) Weights() []model.Weight {
	names := make([]string, 0, len(c.tasks))
	for name := range c.tasks {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]model.Weight, len(names))
	for i, name := range names {
		out[i] = c.tasks[name]
	}
	return out
}

// Register admits the named task iff the resulting total utilization stays
// ≤ M (utilization exactly M is admitted — the feasibility condition is an
// iff). Duplicate names and invalid weights are rejected.
func (c *Controller) Register(name string, w model.Weight) (Decision, error) {
	if name == "" {
		return Decision{}, fmt.Errorf("admission: empty task name")
	}
	if _, dup := c.tasks[name]; dup {
		return Decision{}, fmt.Errorf("admission: task %q already registered", name)
	}
	if err := w.Validate(); err != nil {
		return Decision{}, err
	}
	newTotal := c.util.Add(w.Rat())
	if rat.FromInt(int64(c.m)).Less(newTotal) {
		return Decision{
			Scheduler: "PD2/DVQ",
			Guarantee: NoGuarantee,
			Reason:    fmt.Sprintf("registering %q (weight %s) would raise Σwt to %s > M = %d", name, w, newTotal, c.m),
		}, nil
	}
	c.tasks[name] = w
	c.util = newTotal
	return Decision{
		Scheduler: "PD2/DVQ",
		Admitted:  true,
		Guarantee: SoftRealTime,
		Reason:    fmt.Sprintf("Σwt = %s ≤ M = %d; DVQ tardiness ≤ 1 quantum (Theorem 3)", newTotal, c.m),
	}, nil
}

// Unregister releases the named task's capacity so later Register calls
// can reuse it.
func (c *Controller) Unregister(name string) error {
	w, ok := c.tasks[name]
	if !ok {
		return fmt.Errorf("admission: task %q not registered", name)
	}
	delete(c.tasks, name)
	c.util = c.util.Sub(w.Rat())
	return nil
}
