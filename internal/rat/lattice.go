package rat

// Lattice is a fixed-point time grid: the set {k/den : k ∈ int64}. When
// every rational that an engine compares lives on one lattice — the common
// case, since task periods and yields share a small LCM of denominators —
// ordering and addition collapse to single int64 operations on the tick
// count k, with no gcd reductions and no overflow-checked cross
// multiplication. The exact Rat engine remains the oracle: every lattice
// operation either returns the exact answer or reports ok=false, and the
// caller falls back to Rat arithmetic. A Lattice never approximates.
//
// The zero Lattice is the integer grid (den 1).
type Lattice struct {
	den int64
}

// LatticeOf returns the lattice with the given denominator. It panics on
// den ≤ 0 — callers construct lattices from Rat denominators, which are
// always positive.
func LatticeOf(den int64) Lattice {
	if den <= 0 {
		panic("rat: lattice denominator must be positive")
	}
	return Lattice{den: den}
}

// Den returns the lattice denominator (1 for the zero Lattice).
func (l Lattice) Den() int64 {
	if l.den == 0 {
		return 1
	}
	return l.den
}

// Extend returns the coarsest lattice containing both l and the grid
// 1/den — the LCM of the two denominators. ok is false when the LCM
// overflows int64, in which case the receiver is returned unchanged.
func (l Lattice) Extend(den int64) (Lattice, bool) {
	if den <= 0 {
		return l, false
	}
	a := l.Den()
	g := gcd(a, den)
	step := den / g
	hi := a * step
	if a != 0 && hi/a != step { // overflow check: a*step must round-trip
		return l, false
	}
	return Lattice{den: hi}, true
}

// FromRat converts r to a tick count on l. ok is false when r is not on
// the lattice or the tick count overflows int64.
func (l Lattice) FromRat(r Rat) (int64, bool) {
	d := r.den()
	den := l.Den()
	if den%d != 0 {
		return 0, false
	}
	scale := den / d
	t := r.n * scale
	if r.n != 0 && t/r.n != scale {
		return 0, false
	}
	return t, true
}

// FromInt converts an integer to a tick count on l. ok is false on
// overflow.
func (l Lattice) FromInt(n int64) (int64, bool) {
	den := l.Den()
	t := n * den
	if n != 0 && t/n != den {
		return 0, false
	}
	return t, true
}

// ToRat converts a tick count back to the exact rational it denotes.
func (l Lattice) ToRat(t int64) Rat { return New(t, l.Den()) }

// Rescale converts a tick count on l to the equivalent tick count on the
// finer lattice to. ok is false when to is not a refinement of l or the
// result overflows.
func (l Lattice) Rescale(t int64, to Lattice) (int64, bool) {
	from, dest := l.Den(), to.Den()
	if dest%from != 0 {
		return 0, false
	}
	scale := dest / from
	r := t * scale
	if t != 0 && r/t != scale {
		return 0, false
	}
	return r, true
}

// AddTicks returns a+b with overflow detection: two on-lattice values on
// the same lattice sum tick-wise.
func AddTicks(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// SubTicks returns a−b with overflow detection.
func SubTicks(a, b int64) (int64, bool) {
	if b == minInt64 {
		if a >= 0 {
			return 0, false
		}
		return a - b, true
	}
	return AddTicks(a, -b)
}

const minInt64 = -1 << 63

// MulTicks multiplies two on-lattice values a/den and b/den, returning
// the product as ticks on the same lattice: (a·b)/den. ok is false when
// the intermediate product overflows or the product leaves the lattice
// (a·b not divisible by den).
func (l Lattice) MulTicks(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/a != b || (a == -1 && b == minInt64) || (b == -1 && a == minInt64) {
		return 0, false
	}
	den := l.Den()
	if p%den != 0 {
		return 0, false
	}
	return p / den, true
}

// CmpTicks compares two tick counts on the same lattice: −1, 0, or +1.
// On-lattice comparison is exact — this is the single-int64 fast path
// that replaces Rat.Cmp's cross multiplication.
func CmpTicks(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
