// Package rat implements exact rational arithmetic on int64 numerators and
// denominators.
//
// The DVQ model of Devi & Anderson makes scheduling decisions at
// non-integral times: a quantum may end anywhere in (t, t+1]. Comparing such
// times with floating point would eventually misorder events whose
// difference is a tiny rational (the paper's tightness construction uses
// yields at 2−δ for δ → 0), so every simulation time in this repository is a
// Rat. Values stay small — times are bounded by the hyperperiod and
// denominators by the yield grid — but all multiplications are
// overflow-checked and panic rather than silently wrapping.
package rat

import (
	"fmt"
	"math/bits"
)

// Rat is an immutable rational number n/d in lowest terms with d > 0.
// The zero value represents 0.
type Rat struct {
	n, d int64 // invariant (after normalization): d >= 1, gcd(|n|, d) == 1. d == 0 is read as 1.
}

// Zero and One are the two rationals used pervasively by the schedulers.
var (
	Zero = Rat{0, 1}
	One  = Rat{1, 1}
)

// New returns the rational n/d in lowest terms. It panics if d == 0.
func New(n, d int64) Rat {
	if d == 0 {
		panic("rat: zero denominator")
	}
	if d < 0 {
		n, d = -n, -d
	}
	if g := gcd(abs(n), d); g > 1 {
		n /= g
		d /= g
	}
	return Rat{n, d}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// den returns the denominator, mapping the zero value's 0 to 1.
func (r Rat) den() int64 {
	if r.d == 0 {
		return 1
	}
	return r.d
}

// Num returns the numerator of r in lowest terms.
func (r Rat) Num() int64 { return r.n }

// Den returns the (positive) denominator of r in lowest terms.
func (r Rat) Den() int64 { return r.den() }

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// mul64 multiplies two int64s, panicking on overflow.
func mul64(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(abs(a)), uint64(abs(b))
	hi, lo := bits.Mul64(ua, ub)
	if hi != 0 || (neg && lo > 1<<63) || (!neg && lo > 1<<63-1) {
		panic(fmt.Sprintf("rat: int64 overflow in %d*%d", a, b))
	}
	if neg {
		return -int64(lo)
	}
	return int64(lo)
}

// add64 adds two int64s, panicking on overflow.
func add64(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		panic(fmt.Sprintf("rat: int64 overflow in %d+%d", a, b))
	}
	return s
}

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	rd, sd := r.den(), s.den()
	// Reduce cross terms by gcd of denominators first to delay overflow.
	g := gcd(rd, sd)
	// r.n*(sd/g) + s.n*(rd/g) over rd*(sd/g)
	n := add64(mul64(r.n, sd/g), mul64(s.n, rd/g))
	d := mul64(rd, sd/g)
	return New(n, d)
}

// Sub returns r − s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Neg returns −r.
func (r Rat) Neg() Rat { return Rat{-r.n, r.den()} }

// Mul returns r × s.
func (r Rat) Mul(s Rat) Rat {
	rn, rd := r.n, r.den()
	sn, sd := s.n, s.den()
	// Cross-reduce before multiplying to keep magnitudes small.
	if g := gcd(abs(rn), sd); g > 1 {
		rn /= g
		sd /= g
	}
	if g := gcd(abs(sn), rd); g > 1 {
		sn /= g
		rd /= g
	}
	return Rat{mul64(rn, sn), mul64(rd, sd)}
}

// Div returns r ÷ s. It panics if s is zero.
func (r Rat) Div(s Rat) Rat {
	if s.n == 0 {
		panic("rat: division by zero")
	}
	sn, sd := s.n, s.den()
	if sn < 0 {
		sn, sd = -sn, -sd
	}
	return r.Mul(Rat{sd, sn})
}

// Cmp compares r and s, returning −1 if r < s, 0 if r == s, +1 if r > s.
func (r Rat) Cmp(s Rat) int {
	rd, sd := r.den(), s.den()
	if rd == sd {
		// Values are in lowest terms, so equal denominators reduce the
		// comparison to the numerators — the common case for simulation
		// times drawn from one yield grid, and the hot path of the DVQ
		// event queue.
		switch {
		case r.n < s.n:
			return -1
		case r.n > s.n:
			return 1
		default:
			return 0
		}
	}
	// r.n/rd ? s.n/sd  ⇔  r.n*sd ? s.n*rd (denominators positive).
	g := gcd(rd, sd)
	a := mul64(r.n, sd/g)
	b := mul64(s.n, rd/g)
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Less reports whether r < s.
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// LessEq reports whether r ≤ s.
func (r Rat) LessEq(s Rat) bool { return r.Cmp(s) <= 0 }

// Equal reports whether r == s.
func (r Rat) Equal(s Rat) bool { return r.n == s.n && r.den() == s.den() }

// Sign returns −1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	switch {
	case r.n < 0:
		return -1
	case r.n > 0:
		return 1
	default:
		return 0
	}
}

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.den() == 1 }

// Floor returns ⌊r⌋ as an int64.
func (r Rat) Floor() int64 {
	d := r.den()
	q := r.n / d
	if r.n%d != 0 && r.n < 0 {
		q--
	}
	return q
}

// Ceil returns ⌈r⌉ as an int64.
func (r Rat) Ceil() int64 {
	d := r.den()
	q := r.n / d
	if r.n%d != 0 && r.n > 0 {
		q++
	}
	return q
}

// Int returns r as an int64 and panics if r is not integral.
func (r Rat) Int() int64 {
	if !r.IsInt() {
		panic(fmt.Sprintf("rat: %s is not integral", r))
	}
	return r.n
}

// Min returns the smaller of r and s.
func Min(r, s Rat) Rat {
	if r.Cmp(s) <= 0 {
		return r
	}
	return s
}

// Max returns the larger of r and s.
func Max(r, s Rat) Rat {
	if r.Cmp(s) >= 0 {
		return r
	}
	return s
}

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs ...Rat) Rat {
	s := Zero
	for _, x := range xs {
		s = s.Add(x)
	}
	return s
}

// Float64 returns the nearest float64 to r, for reporting only.
func (r Rat) Float64() float64 { return float64(r.n) / float64(r.den()) }

// String formats r as "n" when integral and "n/d" otherwise.
func (r Rat) String() string {
	if r.IsInt() {
		return fmt.Sprintf("%d", r.n)
	}
	return fmt.Sprintf("%d/%d", r.n, r.den())
}

// FloorDiv returns ⌊a/b⌋ for int64 a and b > 0.
func FloorDiv(a, b int64) int64 {
	if b <= 0 {
		panic("rat: FloorDiv requires b > 0")
	}
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// CeilDiv returns ⌈a/b⌉ for int64 a and b > 0.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("rat: CeilDiv requires b > 0")
	}
	q := a / b
	if a%b != 0 && a > 0 {
		q++
	}
	return q
}

// Parse parses "n", "n/d" or a decimal like "0.75" (exactly, as a rational)
// into a Rat. Unlike the arithmetic methods, Parse reports overflow as an
// error rather than panicking — it handles external input.
func Parse(s string) (r Rat, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			r, err = Rat{}, fmt.Errorf("rat: overflow parsing %q", s)
		}
	}()
	if s == "" {
		return Rat{}, fmt.Errorf("rat: empty string")
	}
	if i := indexByte(s, '/'); i >= 0 {
		n, err1 := parseInt(s[:i])
		d, err2 := parseInt(s[i+1:])
		if err1 != nil {
			return Rat{}, err1
		}
		if err2 != nil {
			return Rat{}, err2
		}
		if d == 0 {
			return Rat{}, fmt.Errorf("rat: zero denominator in %q", s)
		}
		return New(n, d), nil
	}
	if i := indexByte(s, '.'); i >= 0 {
		whole, err := parseInt(s[:i])
		if err != nil {
			return Rat{}, err
		}
		fracStr := s[i+1:]
		if fracStr == "" {
			return FromInt(whole), nil
		}
		frac, err := parseInt(fracStr)
		if err != nil || frac < 0 {
			return Rat{}, fmt.Errorf("rat: bad decimal %q", s)
		}
		den := int64(1)
		for range fracStr {
			den = mul64(den, 10)
		}
		f := New(frac, den)
		if whole < 0 || (whole == 0 && s[0] == '-') {
			return FromInt(whole).Sub(f), nil
		}
		return FromInt(whole).Add(f), nil
	}
	n, err := parseInt(s)
	if err != nil {
		return Rat{}, err
	}
	return FromInt(n), nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func parseInt(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("rat: empty number")
	}
	neg := false
	i := 0
	if s[0] == '+' || s[0] == '-' {
		neg = s[0] == '-'
		i++
	}
	if i == len(s) {
		return 0, fmt.Errorf("rat: bad number %q", s)
	}
	var v int64
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, fmt.Errorf("rat: bad number %q", s)
		}
		v = add64(mul64(v, 10), int64(s[i]-'0'))
	}
	if neg {
		v = -v
	}
	return v, nil
}
