package rat

import (
	"testing"
)

func TestLatticeExtend(t *testing.T) {
	l := Lattice{}
	if l.Den() != 1 {
		t.Fatalf("zero lattice den = %d, want 1", l.Den())
	}
	cases := []struct {
		den  int64
		want int64
	}{
		{2, 2}, {3, 6}, {4, 12}, {6, 12}, {5, 60},
	}
	for _, c := range cases {
		var ok bool
		l, ok = l.Extend(c.den)
		if !ok || l.Den() != c.want {
			t.Fatalf("Extend(%d) = den %d ok=%v, want den %d", c.den, l.Den(), ok, c.want)
		}
	}
	if _, ok := l.Extend(1 << 62); ok {
		t.Fatal("Extend(1<<62) on den=60 lattice should overflow")
	}
	if _, ok := l.Extend(0); ok {
		t.Fatal("Extend(0) should fail")
	}
}

func TestLatticeFromRat(t *testing.T) {
	l := LatticeOf(12)
	for _, c := range []struct {
		r    Rat
		tick int64
		ok   bool
	}{
		{New(1, 3), 4, true},
		{New(5, 4), 15, true},
		{FromInt(-2), -24, true},
		{New(1, 5), 0, false}, // off-lattice
	} {
		tick, ok := l.FromRat(c.r)
		if ok != c.ok || (ok && tick != c.tick) {
			t.Fatalf("FromRat(%s) = %d,%v want %d,%v", c.r, tick, ok, c.tick, c.ok)
		}
		if ok && !l.ToRat(tick).Equal(c.r) {
			t.Fatalf("ToRat(FromRat(%s)) = %s", c.r, l.ToRat(tick))
		}
	}
	// Tick overflow: a huge numerator times the scale factor must report
	// not-ok rather than wrap.
	if _, ok := l.FromRat(New(1<<61, 2)); ok {
		t.Fatal("FromRat with overflowing scale should fail")
	}
}

func TestLatticeRescale(t *testing.T) {
	c := LatticeOf(4)
	f := LatticeOf(12)
	tick, ok := c.Rescale(5, f) // 5/4 → 15/12
	if !ok || tick != 15 {
		t.Fatalf("Rescale(5, den 12) = %d,%v want 15,true", tick, ok)
	}
	if _, ok := f.Rescale(1, c); ok {
		t.Fatal("rescaling to a coarser lattice should fail")
	}
	if _, ok := c.Rescale(1<<62, f); ok {
		t.Fatal("overflowing rescale should fail")
	}
}

func TestTickArith(t *testing.T) {
	if s, ok := AddTicks(1<<62, 1<<62); ok {
		t.Fatalf("AddTicks overflow returned %d", s)
	}
	if s, ok := SubTicks(0, minInt64); ok {
		t.Fatalf("SubTicks(0, min) returned %d", s)
	}
	if s, ok := SubTicks(-1, minInt64); !ok || s != (1<<63-1) {
		t.Fatalf("SubTicks(-1, min) = %d,%v", s, ok)
	}
	l := LatticeOf(4)
	if p, ok := l.MulTicks(6, 2); !ok || p != 3 { // (6/4)·(2/4) = 12/16 = 3/4
		t.Fatalf("MulTicks(6,2) = %d,%v want 3,true", p, ok)
	}
	if _, ok := l.MulTicks(3, 2); ok { // 6/16 is off the 1/4 lattice
		t.Fatal("MulTicks leaving lattice should fail")
	}
	if _, ok := l.MulTicks(1<<40, 1<<40); ok {
		t.Fatal("MulTicks overflow should fail")
	}
}

// FuzzLatticeEquivalence pins the lattice fast path to the exact Rat
// oracle: any two rationals that both land on a lattice must Cmp, Add,
// and Mul identically tick-wise and exactly, and every operation that
// cannot be represented must report ok=false — never a wrapped or
// off-grid value.
func FuzzLatticeEquivalence(f *testing.F) {
	f.Add(int64(1), int64(3), int64(5), int64(4), int64(12))
	f.Add(int64(-7), int64(2), int64(9), int64(6), int64(6))
	f.Add(int64(1)<<40, int64(3), int64(1)<<40, int64(5), int64(15))
	f.Add(int64(0), int64(1), int64(0), int64(1), int64(1))
	f.Fuzz(func(t *testing.T, an, ad, bn, bd, den int64) {
		if ad == 0 || bd == 0 || den <= 0 {
			t.Skip()
		}
		defer func() {
			// Rat construction itself panics on int64 overflow in
			// normalization; that is the exact engine's documented
			// contract, not a lattice bug.
			_ = recover()
		}()
		a, b := New(an, ad), New(bn, bd)
		l := LatticeOf(den)
		ta, okA := l.FromRat(a)
		tb, okB := l.FromRat(b)
		if okA && !l.ToRat(ta).Equal(a) {
			t.Fatalf("round trip %s on den %d gave %s", a, den, l.ToRat(ta))
		}
		if okB && !l.ToRat(tb).Equal(b) {
			t.Fatalf("round trip %s on den %d gave %s", b, den, l.ToRat(tb))
		}
		if !okA || !okB {
			return
		}
		if got, want := CmpTicks(ta, tb), a.Cmp(b); got != want {
			t.Fatalf("CmpTicks(%s,%s) = %d, Rat.Cmp = %d", a, b, got, want)
		}
		if sum, ok := AddTicks(ta, tb); ok {
			want := a.Add(b)
			if !l.ToRat(sum).Equal(want) {
				t.Fatalf("AddTicks(%s,%s) = %s, want %s", a, b, l.ToRat(sum), want)
			}
		}
		if diff, ok := SubTicks(ta, tb); ok {
			want := a.Sub(b)
			if !l.ToRat(diff).Equal(want) {
				t.Fatalf("SubTicks(%s,%s) = %s, want %s", a, b, l.ToRat(diff), want)
			}
		}
		if prod, ok := l.MulTicks(ta, tb); ok {
			want := a.Mul(b)
			if !l.ToRat(prod).Equal(want) {
				t.Fatalf("MulTicks(%s,%s) = %s, want %s", a, b, l.ToRat(prod), want)
			}
		}
	})
}
