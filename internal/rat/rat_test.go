package rat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewNormalizes(t *testing.T) {
	cases := []struct {
		n, d, wantN, wantD int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 7, 0, 1},
		{6, 3, 2, 1},
		{-9, 3, -3, 1},
		{7, 7, 1, 1},
	}
	for _, c := range cases {
		r := New(c.n, c.d)
		if r.Num() != c.wantN || r.Den() != c.wantD {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.n, c.d, r.Num(), r.Den(), c.wantN, c.wantD)
		}
	}
}

func TestNewPanicsOnZeroDenominator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1, 0) did not panic")
		}
	}()
	New(1, 0)
}

func TestZeroValueIsZero(t *testing.T) {
	var z Rat
	if !z.Equal(Zero) {
		t.Errorf("zero value = %s, want 0", z)
	}
	if got := z.Add(One); !got.Equal(One) {
		t.Errorf("0 + 1 = %s, want 1", got)
	}
	if z.Den() != 1 {
		t.Errorf("zero value Den = %d, want 1", z.Den())
	}
	if !z.IsInt() {
		t.Error("zero value should be integral")
	}
}

func TestArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	if got, want := half.Add(third), New(5, 6); !got.Equal(want) {
		t.Errorf("1/2 + 1/3 = %s, want %s", got, want)
	}
	if got, want := half.Sub(third), New(1, 6); !got.Equal(want) {
		t.Errorf("1/2 - 1/3 = %s, want %s", got, want)
	}
	if got, want := half.Mul(third), New(1, 6); !got.Equal(want) {
		t.Errorf("1/2 * 1/3 = %s, want %s", got, want)
	}
	if got, want := half.Div(third), New(3, 2); !got.Equal(want) {
		t.Errorf("(1/2) / (1/3) = %s, want %s", got, want)
	}
	if got, want := half.Neg(), New(-1, 2); !got.Equal(want) {
		t.Errorf("-(1/2) = %s, want %s", got, want)
	}
}

func TestDivByNegative(t *testing.T) {
	if got, want := One.Div(New(-1, 2)), FromInt(-2); !got.Equal(want) {
		t.Errorf("1 / (-1/2) = %s, want %s", got, want)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero did not panic")
		}
	}()
	One.Div(Zero)
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b Rat
		want int
	}{
		{New(1, 2), New(1, 3), 1},
		{New(1, 3), New(1, 2), -1},
		{New(2, 4), New(1, 2), 0},
		{New(-1, 2), New(1, 2), -1},
		{New(-1, 2), New(-1, 3), -1},
		{Zero, Zero, 0},
		{FromInt(5), FromInt(5), 0},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r           Rat
		floor, ceil int64
	}{
		{New(7, 2), 3, 4},
		{New(-7, 2), -4, -3},
		{FromInt(3), 3, 3},
		{FromInt(-3), -3, -3},
		{New(1, 1000), 0, 1},
		{New(-1, 1000), -1, 0},
		{Zero, 0, 0},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("Floor(%s) = %d, want %d", c.r, got, c.floor)
		}
		if got := c.r.Ceil(); got != c.ceil {
			t.Errorf("Ceil(%s) = %d, want %d", c.r, got, c.ceil)
		}
	}
}

func TestIntPanicsOnNonIntegral(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int() on 1/2 did not panic")
		}
	}()
	New(1, 2).Int()
}

func TestString(t *testing.T) {
	if got := New(3, 2).String(); got != "3/2" {
		t.Errorf("String(3/2) = %q", got)
	}
	if got := FromInt(-4).String(); got != "-4" {
		t.Errorf("String(-4) = %q", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	a, b := New(1, 3), New(1, 2)
	if !Min(a, b).Equal(a) || !Min(b, a).Equal(a) {
		t.Error("Min wrong")
	}
	if !Max(a, b).Equal(b) || !Max(b, a).Equal(b) {
		t.Error("Max wrong")
	}
	if got, want := Sum(a, b, One), New(11, 6); !got.Equal(want) {
		t.Errorf("Sum = %s, want %s", got, want)
	}
	if !Sum().Equal(Zero) {
		t.Error("empty Sum should be 0")
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct {
		a, b, floor, ceil int64
	}{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{6, 3, 2, 2},
		{0, 5, 0, 0},
		{1, 7, 0, 1},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.floor {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := CeilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
	}
}

func TestMulOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing Mul did not panic")
		}
	}()
	big := Rat{math.MaxInt64 / 2, 1}
	big.Mul(big)
}

// small draws a Rat with numerator in [-limit, limit] and denominator in
// [1, limit] so that property-test arithmetic stays far from overflow.
func small(n, d int64) Rat {
	const limit = 1000
	n = n % limit
	d = d % limit
	if d < 0 {
		d = -d
	}
	if d == 0 {
		d = 1
	}
	return New(n, d)
}

func TestPropAddCommutative(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		a, b := small(an, ad), small(bn, bd)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddAssociative(t *testing.T) {
	f := func(an, ad, bn, bd, cn, cd int64) bool {
		a, b, c := small(an, ad), small(bn, bd), small(cn, cd)
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMulDistributesOverAdd(t *testing.T) {
	f := func(an, ad, bn, bd, cn, cd int64) bool {
		a, b, c := small(an, ad), small(bn, bd), small(cn, cd)
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSubInverse(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		a, b := small(an, ad), small(bn, bd)
		return a.Add(b).Sub(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropNormalized(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		r := small(an, ad).Mul(small(bn, bd))
		if r.Den() < 1 {
			return false
		}
		return gcd(abs(r.Num()), r.Den()) <= 1 || r.Num() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropFloorCeilConsistent(t *testing.T) {
	f := func(an, ad int64) bool {
		r := small(an, ad)
		fl, ce := r.Floor(), r.Ceil()
		if FromInt(fl).Cmp(r) > 0 || FromInt(ce).Cmp(r) < 0 {
			return false
		}
		if r.IsInt() {
			return fl == ce
		}
		return ce == fl+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCmpAntisymmetric(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		a, b := small(an, ad), small(bn, bd)
		return a.Cmp(b) == -b.Cmp(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDivMulRoundTrip(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		a, b := small(an, ad), small(bn, bd)
		if b.Sign() == 0 {
			return true
		}
		return a.Div(b).Mul(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Rat
	}{
		{"3", FromInt(3)},
		{"-7", FromInt(-7)},
		{"1/2", New(1, 2)},
		{"-3/4", New(-3, 4)},
		{"6/4", New(3, 2)},
		{"0.75", New(3, 4)},
		{"-0.5", New(-1, 2)},
		{"2.", FromInt(2)},
		{"+5", FromInt(5)},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %s, want %s", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "a", "1/0", "1/", "/2", "1.a", "--3", "1e3"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestPropParseRoundTrip(t *testing.T) {
	f := func(an, ad int64) bool {
		r := small(an, ad)
		got, err := Parse(r.String())
		return err == nil && got.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// FuzzParse asserts Parse never panics and successful parses round-trip.
func FuzzParse(f *testing.F) {
	for _, s := range []string{"3", "-7", "1/2", "0.75", "6/4", "+5", "2.", "x", "1/0", "", "9223372036854775807"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return
		}
		back, err2 := Parse(r.String())
		if err2 != nil || !back.Equal(r) {
			t.Fatalf("round trip failed for %q → %s", s, r)
		}
	})
}

func TestParseOverflowIsError(t *testing.T) {
	if _, err := Parse("99999999999999999999999999"); err == nil {
		t.Error("overflowing integer parse should error, not panic")
	}
	if _, err := Parse("1.000000000000000000000001"); err == nil {
		t.Error("overflowing decimal parse should error")
	}
}
