package replay

import (
	"testing"
	"time"

	"desyncpfair/internal/core"
	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

func fig2Schedule(t *testing.T) *sched.Schedule {
	t.Helper()
	sys := model.Periodic([]model.Weight{
		model.W(1, 6), model.W(1, 6), model.W(1, 6),
		model.W(1, 2), model.W(1, 2), model.W(1, 2),
	}, 6)
	y := func(s *model.Subtask) rat.Rat {
		if (s.Task.Name == "A" || s.Task.Name == "F") && s.Index == 1 {
			return rat.New(3, 4)
		}
		return rat.One
	}
	s, err := core.RunDVQ(sys, core.DVQOptions{M: 2, Yield: y})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReplayDeliversAllEventsInOrder(t *testing.T) {
	s := fig2Schedule(t)
	clk := &FakeClock{T: time.Unix(0, 0)}
	var events []Event
	n, err := Run(s, Options{
		Quantum: time.Millisecond,
		Clock:   clk,
		OnEvent: func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2*s.Len() || len(events) != n {
		t.Fatalf("events = %d, want %d", len(events), 2*s.Len())
	}
	// Time-ordered, completions before dispatches at equal instants.
	for i := 1; i < len(events); i++ {
		c := events[i-1].At.Cmp(events[i].At)
		if c > 0 {
			t.Fatalf("event %d out of order", i)
		}
		if c == 0 && events[i-1].Kind == Dispatch && events[i].Kind == Complete &&
			events[i-1].Asg == events[i].Asg {
			continue // same assignment with zero-length wait is impossible (cost > 0)
		}
	}
	// The fake clock ends at the makespan.
	wantEnd := time.Unix(0, 0).Add(time.Duration(s.Makespan().Mul(rat.FromInt(int64(time.Millisecond))).Float64()))
	if gap := clk.Now().Sub(wantEnd); gap < -time.Microsecond || gap > time.Microsecond {
		t.Errorf("clock ended at %v, want ≈%v", clk.Now(), wantEnd)
	}
}

func TestReplayExactRationalTiming(t *testing.T) {
	s := fig2Schedule(t)
	clk := &FakeClock{T: time.Unix(0, 0)}
	var b1Dispatch time.Time
	_, err := Run(s, Options{
		Quantum: time.Millisecond,
		Clock:   clk,
		OnEvent: func(e Event) {
			if e.Kind == Dispatch && e.Asg.Sub.String() == "B_1" {
				b1Dispatch = clk.Now()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// B_1 starts at 7/4 quanta = 1.75 ms.
	want := time.Unix(0, 0).Add(1750 * time.Microsecond)
	if !b1Dispatch.Equal(want) {
		t.Errorf("B_1 dispatched at %v, want %v", b1Dispatch, want)
	}
}

func TestReplayRejectsBadQuantum(t *testing.T) {
	s := fig2Schedule(t)
	if _, err := Run(s, Options{Quantum: 0}); err == nil {
		t.Error("zero quantum accepted")
	}
}

func TestReplayWallClockSmoke(t *testing.T) {
	// A tiny schedule against the real clock with a microscopic quantum:
	// should finish quickly and deliver events.
	sys := model.Periodic([]model.Weight{model.W(1, 2)}, 2)
	s, err := core.RunDVQ(sys, core.DVQOptions{M: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Run(s, Options{Quantum: 10 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("events = %d", n)
	}
}

func TestToDurationRounding(t *testing.T) {
	if got := toDuration(rat.New(1, 3), 3*time.Nanosecond); got != time.Nanosecond {
		t.Errorf("1/3 of 3ns = %v", got)
	}
	if got := toDuration(rat.New(1, 2), time.Nanosecond); got != time.Nanosecond {
		t.Errorf("rounding half up: %v", got)
	}
}
