// Package replay plays a computed schedule against a clock: each
// assignment's start and completion become timed callbacks, with one
// quantum mapped to a configurable real duration. It is the bridge from
// the simulators to a host that actually dispatches work (or drives a
// visualization): compute a schedule with any engine — or keep an online
// executive's schedule — and replay it.
//
// The clock is an interface so tests (and batch tooling) can drive the
// replay through a fake clock deterministically; production callers use
// WallClock.
package replay

import (
	"fmt"
	"sort"
	"time"

	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

// Clock abstracts time for the replayer.
type Clock interface {
	Now() time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// WallClock is the real time.Now/time.Sleep clock.
type WallClock struct{}

func (WallClock) Now() time.Time        { return time.Now() }
func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }

// FakeClock advances only when Sleep is called; for deterministic tests.
type FakeClock struct {
	T time.Time
}

func (f *FakeClock) Now() time.Time        { return f.T }
func (f *FakeClock) Sleep(d time.Duration) { f.T = f.T.Add(d) }

// EventKind distinguishes replay callbacks.
type EventKind int

const (
	// Dispatch fires when a quantum begins.
	Dispatch EventKind = iota
	// Complete fires when a quantum ends (after its actual cost).
	Complete
)

func (k EventKind) String() string {
	if k == Dispatch {
		return "dispatch"
	}
	return "complete"
}

// Event is one timed callback.
type Event struct {
	Kind EventKind
	At   rat.Rat // schedule time (quanta)
	Asg  *sched.Assignment
}

// Options configures a replay.
type Options struct {
	// Quantum is the real duration of one schedule time unit (required).
	Quantum time.Duration
	// Clock defaults to WallClock.
	Clock Clock
	// OnEvent receives every dispatch and completion, in time order.
	OnEvent func(Event)
}

// Run replays the schedule: it sleeps the clock to each event's time and
// invokes the callback. It returns the number of events delivered.
func Run(s *sched.Schedule, opts Options) (int, error) {
	if opts.Quantum <= 0 {
		return 0, fmt.Errorf("replay: quantum %v", opts.Quantum)
	}
	clock := opts.Clock
	if clock == nil {
		clock = WallClock{}
	}
	events := make([]Event, 0, 2*s.Len())
	for _, a := range s.Assignments() {
		events = append(events, Event{Kind: Dispatch, At: a.Start, Asg: a})
		events = append(events, Event{Kind: Complete, At: a.Finish(), Asg: a})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if c := events[i].At.Cmp(events[j].At); c != 0 {
			return c < 0
		}
		// Completions before dispatches at the same instant: a processor
		// frees before its next quantum begins.
		return events[i].Kind == Complete && events[j].Kind == Dispatch
	})
	start := clock.Now()
	for _, ev := range events {
		due := start.Add(toDuration(ev.At, opts.Quantum))
		if wait := due.Sub(clock.Now()); wait > 0 {
			clock.Sleep(wait)
		}
		if opts.OnEvent != nil {
			opts.OnEvent(ev)
		}
	}
	return len(events), nil
}

// toDuration converts a rational schedule time to a real duration at the
// given quantum length, rounding to the nearest nanosecond.
func toDuration(t rat.Rat, quantum time.Duration) time.Duration {
	ns := rat.FromInt(int64(quantum)).Mul(t)
	// Round: ⌊x + 1/2⌋.
	return time.Duration(ns.Add(rat.New(1, 2)).Floor())
}
