package exp

import (
	"math/rand"

	"desyncpfair/internal/analysis"
	"desyncpfair/internal/core"
	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
)

// E18: policy comparison matrix under the DVQ model. The paper proves the
// bound for PD² and remarks it extends to prior algorithms; this table
// puts EPDF, PF, PD and PD² side by side on identical workloads and
// yields.

// PolicyPoint is one policy row of E18.
type PolicyPoint struct {
	Policy       string
	Trials       int
	Subtasks     int
	Misses       int
	MaxTardiness rat.Rat
	MeanResponse float64
}

// E18PolicyMatrix runs every policy over the same random feasible systems
// under DVQ with uniform yields.
func E18PolicyMatrix(seed int64, trials, m int) ([]PolicyPoint, error) {
	pols := prio.All()
	pts := make([]PolicyPoint, len(pols))
	for i, p := range pols {
		pts[i] = PolicyPoint{Policy: p.Name(), MaxTardiness: rat.Zero}
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		sys := randomSystem(rng, m, true)
		y := gen.UniformYield(seed+int64(trial), 8)
		for i, p := range pols {
			s, err := core.RunDVQ(sys, core.DVQOptions{M: m, Policy: p, Yield: y})
			if err != nil {
				return nil, err
			}
			sum := analysis.Summarize(s)
			pts[i].Trials++
			pts[i].Subtasks += sum.Subtasks
			pts[i].Misses += sum.Misses
			pts[i].MaxTardiness = rat.Max(pts[i].MaxTardiness, sum.MaxTardiness)
			pts[i].MeanResponse += sum.MeanResponse
		}
	}
	for i := range pts {
		if pts[i].Trials > 0 {
			pts[i].MeanResponse /= float64(pts[i].Trials)
		}
	}
	return pts, nil
}

// E19: does the paper's M = 2 tightness construction scale by replication?
// Running M/2 independent copies of the Fig. 2 task set on M processors
// does NOT simply replicate the worst case: the global scheduler mixes the
// copies and partially absorbs the blocking. Measured: tardiness is
// exactly 1−δ at M = 2 but dampens (to 3/4 at δ = 1/8) for every larger
// even M — worst-case constructions are per-M, not compositional, even
// though the one-quantum *bound* holds uniformly.

// TightnessByMPoint is one machine size of E19.
type TightnessByMPoint struct {
	M                   int
	MaxTardiness        rat.Rat
	EqualsOneMinusDelta bool
}

// E19TightnessByM builds M/2 copies of the Fig. 2 task set, applies the
// adversarial yield to each copy's A_1 and F_1, and measures tardiness
// under PD²-DVQ.
func E19TightnessByM(delta rat.Rat, ms []int) ([]TightnessByMPoint, error) {
	want := rat.One.Sub(delta)
	var out []TightnessByMPoint
	for _, m := range ms {
		if m%2 != 0 {
			continue
		}
		sys := model.NewSystem()
		pairs := m / 2
		victims := map[string]bool{}
		for p := 0; p < pairs; p++ {
			for _, w := range []struct {
				base string
				wt   model.Weight
			}{
				{"A", model.W(1, 6)}, {"B", model.W(1, 6)}, {"C", model.W(1, 6)},
				{"D", model.W(1, 2)}, {"E", model.W(1, 2)}, {"F", model.W(1, 2)},
			} {
				name := w.base
				if pairs > 1 {
					name = w.base + string(rune('0'+p))
				}
				sys.AddPeriodic(name, w.wt, 6)
				if w.base == "A" || w.base == "F" {
					victims[name] = true
				}
			}
		}
		c := rat.One.Sub(delta)
		y := func(s *model.Subtask) rat.Rat {
			if victims[s.Task.Name] && s.Index == 1 {
				return c
			}
			return rat.One
		}
		s, err := core.RunDVQ(sys, core.DVQOptions{M: m, Yield: y})
		if err != nil {
			return nil, err
		}
		out = append(out, TightnessByMPoint{
			M:                   m,
			MaxTardiness:        s.MaxTardiness(),
			EqualsOneMinusDelta: s.MaxTardiness().Equal(want),
		})
	}
	return out, nil
}

// E20: sensitivity of the bound to IS/GIS dynamics. Theorem 3 covers
// every feasible GIS system; the sweep turns up release jitter and
// subtask omission rates to confirm the guarantee is insensitive to the
// dynamics (while misses and blocking vary).

// DynamicsPoint is one (jitter, omission) cell of E20.
type DynamicsPoint struct {
	JitterPct    int
	OmitPct      int
	Trials       int
	Subtasks     int
	Misses       int
	MaxTardiness rat.Rat
	Blocking     int // eligibility + predecessor events observed
}

// E20Dynamics sweeps IS jitter and GIS omission probabilities under
// PD²-DVQ with adversarial yields.
func E20Dynamics(seed int64, trials, m int) ([]DynamicsPoint, error) {
	var out []DynamicsPoint
	for _, jit := range []int{0, 20, 40} {
		for _, omit := range []int{0, 20} {
			rng := rand.New(rand.NewSource(seed + int64(100*jit+omit)))
			pt := DynamicsPoint{JitterPct: jit, OmitPct: omit, MaxTardiness: rat.Zero}
			for trial := 0; trial < trials; trial++ {
				q := int64(6 + rng.Intn(6))
				n := m + 1 + rng.Intn(m)
				for int64(n) > int64(m)*q {
					n--
				}
				ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
				sys := gen.System(rng, ws, gen.SystemOptions{
					Horizon:    3 * q,
					JitterProb: jit,
					MaxJitter:  2,
					OmitProb:   omit,
				})
				s, err := core.RunDVQ(sys, core.DVQOptions{
					M:     m,
					Yield: gen.AdversarialYield(rat.New(1, 16), nil),
				})
				if err != nil {
					return nil, err
				}
				st := core.CountBlocking(s, prio.PD2{})
				pt.Trials++
				pt.Subtasks += s.Len()
				pt.Misses += s.MissCount()
				pt.MaxTardiness = rat.Max(pt.MaxTardiness, s.MaxTardiness())
				pt.Blocking += st.Eligibility + st.Predecessor
			}
			out = append(out, pt)
		}
	}
	return out, nil
}
