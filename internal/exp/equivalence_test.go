package exp

import (
	"fmt"
	"math/rand"
	"testing"

	"desyncpfair/internal/core"
	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
	"desyncpfair/internal/sfq"
)

// TestEngineEquivalence pins the fast-path engines to their retained seed
// implementations on the DESIGN.md experiment systems: the engineered
// Fig. 2 and Fig. 3 constructions (with their adversarial yields) and the
// random-system draws the E-experiments sweep over.
func TestEngineEquivalence(t *testing.T) {
	type cfg struct {
		name string
		sys  *model.System
		m    int
		y    sched.YieldFn
	}
	cases := []cfg{
		{"fig2-δ=1/4", Fig2System(), 2, Fig2Yield(rat.New(1, 4))},
		{"fig2-δ=1/64", Fig2System(), 2, Fig2Yield(rat.New(1, 64))},
		{"fig3-δ=1/4", Fig3System(5), 3, Fig3Yield(rat.New(1, 4))},
	}
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		m := 2 + rng.Intn(3)
		sys := randomSystem(rng, m, trial%2 == 0)
		_, y := yieldFor(trial, int64(trial))
		cases = append(cases, cfg{fmt.Sprintf("random-%d", trial), sys, m, y})
	}
	for _, c := range cases {
		for _, pol := range prio.All() {
			dvqFast, err := core.RunDVQ(c.sys, core.DVQOptions{M: c.m, Policy: pol, Yield: c.y})
			if err != nil {
				t.Fatalf("%s/%s: fast DVQ: %v", c.name, pol.Name(), err)
			}
			dvqRef, err := core.RunDVQReference(c.sys, core.DVQOptions{M: c.m, Policy: pol, Yield: c.y})
			if err != nil {
				t.Fatalf("%s/%s: reference DVQ: %v", c.name, pol.Name(), err)
			}
			if !sched.Equal(dvqFast, dvqRef) {
				for _, d := range sched.Diff(dvqFast, dvqRef) {
					t.Errorf("%s/%s: %s", c.name, pol.Name(), d)
				}
				t.Fatalf("%s/%s: fast DVQ diverges from reference", c.name, pol.Name())
			}
			sfqFast, err := sfq.Run(c.sys, sfq.Options{M: c.m, Policy: pol, Yield: c.y})
			if err != nil {
				t.Fatalf("%s/%s: fast SFQ: %v", c.name, pol.Name(), err)
			}
			sfqRef, err := sfq.RunReference(c.sys, sfq.Options{M: c.m, Policy: pol, Yield: c.y})
			if err != nil {
				t.Fatalf("%s/%s: reference SFQ: %v", c.name, pol.Name(), err)
			}
			if !sched.Equal(sfqFast, sfqRef) {
				for _, d := range sched.Diff(sfqFast, sfqRef) {
					t.Errorf("%s/%s: %s", c.name, pol.Name(), d)
				}
				t.Fatalf("%s/%s: fast SFQ diverges from reference", c.name, pol.Name())
			}
		}
	}
}
