package exp

import (
	"fmt"
	"io"
	"reflect"
	"strings"
)

// WriteCSV renders a slice of flat result structs (the E-suite row types)
// as CSV: one column per exported field, with nested structs flattened as
// Outer.Inner and fmt.Stringer values (e.g. rat.Rat) rendered via String.
// It lets cmd/experiments emit machine-readable artifacts without a
// hand-written encoder per experiment.
func WriteCSV(w io.Writer, rows interface{}) error {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("exp: WriteCSV wants a slice, got %T", rows)
	}
	if v.Len() == 0 {
		return fmt.Errorf("exp: WriteCSV got an empty slice")
	}
	first := v.Index(0)
	if first.Kind() != reflect.Struct {
		return fmt.Errorf("exp: WriteCSV wants a slice of structs, got %s", first.Kind())
	}
	var header []string
	collectHeader(first.Type(), "", &header)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i := 0; i < v.Len(); i++ {
		var cells []string
		collectCells(v.Index(i), &cells)
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

var stringerType = reflect.TypeOf((*fmt.Stringer)(nil)).Elem()

func collectHeader(t reflect.Type, prefix string, out *[]string) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := prefix + f.Name
		if f.Type.Kind() == reflect.Struct && !f.Type.Implements(stringerType) {
			collectHeader(f.Type, name+".", out)
			continue
		}
		*out = append(*out, name)
	}
}

func collectCells(v reflect.Value, out *[]string) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		fv := v.Field(i)
		if fv.Kind() == reflect.Struct && !fv.Type().Implements(stringerType) {
			collectCells(fv, out)
			continue
		}
		*out = append(*out, cell(fv))
	}
}

func cell(v reflect.Value) string {
	if v.Type().Implements(stringerType) {
		s := v.Interface().(fmt.Stringer).String()
		if strings.ContainsAny(s, ",\"\n") {
			s = `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	s := fmt.Sprintf("%v", v.Interface())
	if strings.ContainsAny(s, ",\"\n") {
		s = `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
