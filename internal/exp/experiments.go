package exp

import (
	"math/rand"
	"strings"

	"desyncpfair/internal/analysis"
	"desyncpfair/internal/baseline"
	"desyncpfair/internal/core"
	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
	"desyncpfair/internal/sfq"
)

// randomSystem draws one random feasible GIS system at full utilization m,
// with optional IS jitter and GIS omissions, from rng.
func randomSystem(rng *rand.Rand, m int, dynamics bool) *model.System {
	q := int64(6 + rng.Intn(8))
	n := m + 1 + rng.Intn(2*m)
	for int64(n) > int64(m)*q {
		n--
	}
	var ws []model.Weight
	if rng.Intn(3) == 0 {
		// UUniFast draws: heavy-tailed spreads typical of the literature.
		ws = gen.UUniFastGrid(rng, n, q, int64(m)*q)
	} else {
		ws = gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(rng.Intn(3)))
	}
	opts := gen.SystemOptions{Horizon: 3 * q}
	if dynamics {
		opts.JitterProb = rng.Intn(30)
		opts.MaxJitter = 2
		opts.OmitProb = rng.Intn(20)
	}
	return gen.System(rng, ws, opts)
}

// yieldFor rotates through the experiment yield models.
func yieldFor(kind int, seed int64) (string, sched.YieldFn) {
	switch kind % 4 {
	case 0:
		return "full", sched.FullCost
	case 1:
		return "uniform", gen.UniformYield(seed, 8)
	case 2:
		return "bimodal", gen.BimodalYield(seed, 60, 8)
	default:
		return "adversarial", gen.AdversarialYield(rat.New(1, 16), nil)
	}
}

// --- E1: tightness of the Theorem 3 bound -------------------------------

// TightnessPoint is one δ in the E1 sweep on the Fig. 2 task set.
type TightnessPoint struct {
	Delta        rat.Rat
	MaxTardiness rat.Rat
}

// E1Tightness sweeps δ → 0 on the Fig. 2 construction: max tardiness is
// exactly 1−δ, showing the bound of Theorem 3 is tight (approached but
// never reached). The δ points are independent simulations and run in
// parallel (Sweep).
func E1Tightness(deltas []rat.Rat) ([]TightnessPoint, error) {
	return Sweep(Workers, deltas, func(d rat.Rat) (TightnessPoint, error) {
		s, err := core.RunDVQ(Fig2System(), core.DVQOptions{M: 2, Yield: Fig2Yield(d)})
		if err != nil {
			return TightnessPoint{}, err
		}
		return TightnessPoint{Delta: d, MaxTardiness: s.MaxTardiness()}, nil
	})
}

// DefaultDeltas is the E1 sweep: δ = 1/2, 1/4, …, 1/1024.
func DefaultDeltas() []rat.Rat {
	var ds []rat.Rat
	for d := int64(2); d <= 1024; d *= 2 {
		ds = append(ds, rat.New(1, d))
	}
	return ds
}

// --- E2/E4: tardiness bounds at scale ------------------------------------

// BoundPoint aggregates one (M, yield-model) cell of a tardiness-bound
// validation.
type BoundPoint struct {
	M            int
	YieldModel   string
	Trials       int
	Subtasks     int
	Misses       int
	MaxTardiness rat.Rat
	BoundHolds   bool // max tardiness ≤ 1 across all trials
}

// E2DVQTardiness validates Theorem 3 at scale: PD²-DVQ over random feasible
// GIS systems and all yield models, per processor count.
func E2DVQTardiness(seed int64, trials int, ms []int) ([]BoundPoint, error) {
	return boundSweep(seed, trials, ms, func(sys *model.System, m int, y sched.YieldFn) (*sched.Schedule, error) {
		return core.RunDVQ(sys, core.DVQOptions{M: m, Yield: y})
	})
}

// E4PDBTardiness validates Theorem 2 at scale: PD^B over the same space.
func E4PDBTardiness(seed int64, trials int, ms []int) ([]BoundPoint, error) {
	return boundSweep(seed, trials, ms, func(sys *model.System, m int, y sched.YieldFn) (*sched.Schedule, error) {
		res, err := core.RunPDB(sys, core.PDBOptions{M: m, Yield: y})
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	})
}

// boundSweep runs one engine over every (M, yield-model) cell. Each cell
// seeds its own RNG from (seed, m, kind) alone, so the cells are
// independent and Sweep runs them in parallel with results identical to
// the serial loop.
func boundSweep(seed int64, trials int, ms []int, run func(*model.System, int, sched.YieldFn) (*sched.Schedule, error)) ([]BoundPoint, error) {
	type cell struct{ m, kind int }
	var cells []cell
	for _, m := range ms {
		for kind := 0; kind < 4; kind++ {
			cells = append(cells, cell{m, kind})
		}
	}
	return Sweep(Workers, cells, func(c cell) (BoundPoint, error) {
		rng := rand.New(rand.NewSource(seed + int64(c.m*4+c.kind)))
		name, _ := yieldFor(c.kind, 0)
		pt := BoundPoint{M: c.m, YieldModel: name, BoundHolds: true, MaxTardiness: rat.Zero}
		for trial := 0; trial < trials; trial++ {
			sys := randomSystem(rng, c.m, true)
			_, y := yieldFor(c.kind, seed+int64(trial))
			s, err := run(sys, c.m, y)
			if err != nil {
				return pt, err
			}
			pt.Trials++
			pt.Subtasks += s.Len()
			pt.Misses += s.MissCount()
			pt.MaxTardiness = rat.Max(pt.MaxTardiness, s.MaxTardiness())
			if rat.One.Less(s.MaxTardiness()) {
				pt.BoundHolds = false
			}
		}
		return pt, nil
	})
}

// --- E3: PD² optimality anchor -------------------------------------------

// OptimalityPoint is one policy row of E3.
type OptimalityPoint struct {
	Policy   string
	Trials   int
	Subtasks int
	Misses   int
}

// E3SFQOptimality verifies that the optimal policies (PF, PD, PD²) miss no
// deadlines under the SFQ model on random feasible systems, and reports
// EPDF (suboptimal beyond two processors) alongside.
func E3SFQOptimality(seed int64, trials int) ([]OptimalityPoint, error) {
	// Every policy replays the same seed-derived system sequence, so the
	// policy rows are independent cells and sweep in parallel.
	return Sweep(Workers, prio.All(), func(pol prio.Policy) (OptimalityPoint, error) {
		rng := rand.New(rand.NewSource(seed))
		pt := OptimalityPoint{Policy: pol.Name()}
		for trial := 0; trial < trials; trial++ {
			m := 2 + rng.Intn(3)
			sys := randomSystem(rng, m, true)
			s, err := sfq.Run(sys, sfq.Options{M: m, Policy: pol})
			if err != nil {
				return pt, err
			}
			pt.Trials++
			pt.Subtasks += s.Len()
			pt.Misses += s.MissCount()
		}
		return pt, nil
	})
}

// --- E5: the S_DQ → S_B transform ----------------------------------------

// TransformPoint aggregates E5.
type TransformPoint struct {
	Trials          int
	Aligned         int
	Olapped         int
	Free            int
	MaxSDQTardiness rat.Rat
	MaxSBTardiness  rat.Rat
	AllLemmasHold   bool
}

// E5Transform builds S_B for random DVQ schedules and checks Lemmas 3, 4
// and the S_B structure (Lemma 5).
func E5Transform(seed int64, trials int) (TransformPoint, error) {
	rng := rand.New(rand.NewSource(seed))
	pt := TransformPoint{AllLemmasHold: true, MaxSDQTardiness: rat.Zero, MaxSBTardiness: rat.Zero}
	for trial := 0; trial < trials; trial++ {
		m := 2 + rng.Intn(3)
		sys := randomSystem(rng, m, true)
		_, y := yieldFor(1+trial%3, seed+int64(trial))
		dq, err := core.RunDVQ(sys, core.DVQOptions{M: m, Yield: y})
		if err != nil {
			return pt, err
		}
		tr := core.BuildSB(dq)
		a, o, f := tr.CountByClass()
		pt.Trials++
		pt.Aligned += a
		pt.Olapped += o
		pt.Free += f
		pt.MaxSDQTardiness = rat.Max(pt.MaxSDQTardiness, dq.MaxTardiness())
		pt.MaxSBTardiness = rat.Max(pt.MaxSBTardiness, tr.MaxTardinessB())
		if tr.CheckLemma3() != nil || tr.CheckLemma4() != nil || tr.CheckSBStructure() != nil {
			pt.AllLemmasHold = false
		}
	}
	return pt, nil
}

// --- E6: Property PB ------------------------------------------------------

// PBPoint aggregates E6.
type PBPoint struct {
	Trials            int
	EligibilityEvents int
	PredecessorEvents int
	PropertyHolds     bool
}

// E6PropertyPB counts priority inversions in random PD²-DVQ schedules
// (including the engineered Fig. 3 scenario) and verifies Lemma 1 on every
// schedule.
func E6PropertyPB(seed int64, trials int) (PBPoint, error) {
	rng := rand.New(rand.NewSource(seed))
	pt := PBPoint{PropertyHolds: true}
	check := func(dq *sched.Schedule) {
		st := core.CountBlocking(dq, prio.PD2{})
		pt.Trials++
		pt.EligibilityEvents += st.Eligibility
		pt.PredecessorEvents += st.Predecessor
		if core.CheckPropertyPB(dq, prio.PD2{}) != nil {
			pt.PropertyHolds = false
		}
	}
	// The engineered predecessor-blocking scenario first.
	dq, err := core.RunDVQ(Fig3System(5), core.DVQOptions{M: 3, Yield: Fig3Yield(rat.New(1, 4))})
	if err != nil {
		return pt, err
	}
	check(dq)
	for trial := 1; trial < trials; trial++ {
		m := 2 + rng.Intn(3)
		sys := randomSystem(rng, m, true)
		_, y := yieldFor(1+trial%3, seed+int64(trial))
		dq, err := core.RunDVQ(sys, core.DVQOptions{M: m, Yield: y})
		if err != nil {
			return pt, err
		}
		check(dq)
	}
	return pt, nil
}

// --- E7: work-conservation gain ------------------------------------------

// ReclaimPoint is one mean-cost level of the E7 sweep.
type ReclaimPoint struct {
	FullProb     int // percent of subtasks using their whole quantum
	SFQ, DVQ     analysis.Summary
	ResidueFrac  float64 // SFQ residue / total allocated quanta
	MakespanGain float64 // SFQ makespan / DVQ makespan
}

// E7Reclamation quantifies the paper's motivating claim: early-completing
// quanta strand processor time under SFQ, which the DVQ model reclaims.
// The sweep varies the fraction of subtasks that use their full quantum.
func E7Reclamation(seed int64, trials int, m int) ([]ReclaimPoint, error) {
	// One cell per mean-cost level, each with its own (seed, pFull) RNG.
	return Sweep(Workers, []int{100, 80, 60, 40, 20}, func(pFull int) (ReclaimPoint, error) {
		rng := rand.New(rand.NewSource(seed + int64(pFull)))
		var pt ReclaimPoint
		pt.FullProb = pFull
		var sfqResidue, sfqQuanta, sfqMakespan, dvqMakespan, sfqResp, dvqResp float64
		for trial := 0; trial < trials; trial++ {
			sys := randomSystem(rng, m, false)
			y := gen.BimodalYield(seed+int64(trial), pFull, 8)
			ss, err := sfq.Run(sys, sfq.Options{M: m, Yield: y})
			if err != nil {
				return pt, err
			}
			ds, err := core.RunDVQ(sys, core.DVQOptions{M: m, Yield: y})
			if err != nil {
				return pt, err
			}
			sumS, sumD := analysis.Summarize(ss), analysis.Summarize(ds)
			pt.SFQ.Subtasks += sumS.Subtasks
			pt.DVQ.Subtasks += sumD.Subtasks
			pt.SFQ.Misses += sumS.Misses
			pt.DVQ.Misses += sumD.Misses
			pt.SFQ.MaxTardiness = rat.Max(pt.SFQ.MaxTardiness, sumS.MaxTardiness)
			pt.DVQ.MaxTardiness = rat.Max(pt.DVQ.MaxTardiness, sumD.MaxTardiness)
			sfqResidue += sumS.Residue.Float64()
			sfqQuanta += float64(sumS.Subtasks)
			sfqMakespan += sumS.Makespan.Float64()
			dvqMakespan += sumD.Makespan.Float64()
			sfqResp += sumS.MeanResponse
			dvqResp += sumD.MeanResponse
		}
		if sfqQuanta > 0 {
			pt.ResidueFrac = sfqResidue / sfqQuanta
		}
		if dvqMakespan > 0 {
			pt.MakespanGain = sfqMakespan / dvqMakespan
		}
		pt.SFQ.MeanResponse = sfqResp / float64(trials)
		pt.DVQ.MeanResponse = dvqResp / float64(trials)
		return pt, nil
	})
}

// --- E8: suboptimal policies under DVQ -----------------------------------

// EPDFPoint is one processor count of E8.
type EPDFPoint struct {
	M            int
	Trials       int
	MaxSFQ       rat.Rat // max EPDF tardiness under SFQ
	MaxDVQ       rat.Rat // max EPDF tardiness under DVQ
	DeltaAtMost1 bool    // DVQ − SFQ ≤ 1 on every trial (paper's remark)
}

// E8EPDF measures how the DVQ model worsens EPDF — the suboptimal Pfair
// policy — versus its SFQ behaviour: by at most one quantum.
func E8EPDF(seed int64, trials int, ms []int) ([]EPDFPoint, error) {
	// One cell per processor count, each with its own (seed, m) RNG.
	return Sweep(Workers, ms, func(m int) (EPDFPoint, error) {
		rng := rand.New(rand.NewSource(seed + int64(m)))
		pt := EPDFPoint{M: m, DeltaAtMost1: true, MaxSFQ: rat.Zero, MaxDVQ: rat.Zero}
		for trial := 0; trial < trials; trial++ {
			sys := randomSystem(rng, m, false)
			_, y := yieldFor(1+trial%3, seed+int64(trial))
			ss, err := sfq.Run(sys, sfq.Options{M: m, Policy: prio.EPDF{}})
			if err != nil {
				return pt, err
			}
			ds, err := core.RunDVQ(sys, core.DVQOptions{M: m, Policy: prio.EPDF{}, Yield: y})
			if err != nil {
				return pt, err
			}
			pt.Trials++
			pt.MaxSFQ = rat.Max(pt.MaxSFQ, ss.MaxTardiness())
			pt.MaxDVQ = rat.Max(pt.MaxDVQ, ds.MaxTardiness())
			if rat.One.Less(ds.MaxTardiness().Sub(ss.MaxTardiness())) {
				pt.DeltaAtMost1 = false
			}
		}
		return pt, nil
	})
}

// --- E9: the staggered model ----------------------------------------------

// StaggerPoint is one processor count of E9.
type StaggerPoint struct {
	M            int
	Trials       int
	MaxTardiness rat.Rat
	// MaxBurst is the largest number of scheduling decisions made at one
	// instant — M for aligned SFQ, 1 for staggered quanta (the property
	// Holman & Anderson stagger for).
	AlignedBurst, StaggeredBurst int
}

// E9Staggered compares aligned and staggered quanta: tardiness stays within
// one quantum while the per-instant decision burst drops from M to 1.
func E9Staggered(seed int64, trials int, ms []int) ([]StaggerPoint, error) {
	// One cell per processor count, each with its own (seed, m) RNG.
	return Sweep(Workers, ms, func(m int) (StaggerPoint, error) {
		rng := rand.New(rand.NewSource(seed + int64(m)))
		pt := StaggerPoint{M: m, MaxTardiness: rat.Zero}
		for trial := 0; trial < trials; trial++ {
			sys := randomSystem(rng, m, false)
			al, err := sfq.Run(sys, sfq.Options{M: m})
			if err != nil {
				return pt, err
			}
			st, err := sfq.Run(sys, sfq.Options{M: m, Staggered: true})
			if err != nil {
				return pt, err
			}
			pt.Trials++
			pt.MaxTardiness = rat.Max(pt.MaxTardiness, st.MaxTardiness())
			if b := maxBurst(al); b > pt.AlignedBurst {
				pt.AlignedBurst = b
			}
			if b := maxBurst(st); b > pt.StaggeredBurst {
				pt.StaggeredBurst = b
			}
		}
		return pt, nil
	})
}

func maxBurst(s *sched.Schedule) int {
	counts := map[rat.Rat]int{}
	best := 0
	for _, a := range s.Assignments() {
		counts[a.Start]++
		if counts[a.Start] > best {
			best = counts[a.Start]
		}
	}
	return best
}

// --- E10: the utilization-bound comparison --------------------------------

// UtilPoint is one utilization level of E10.
type UtilPoint struct {
	UtilPct         int // total utilization as a percentage of M
	Trials          int
	PartitionOK     int // trials where FFD partitioning (EDF bins) succeeded
	PartitionRMOK   int // trials where Liu–Layland RM partitioning succeeded
	GEDFMissTrials  int // trials where global EDF missed a deadline
	GRMMissTrials   int // trials where global RM missed a deadline
	PfairMissTrials int // trials where PD² (SFQ) missed — always 0
}

// E10UtilizationBound sweeps total utilization from 55% to 100% of M and
// compares: partitioned EDF (fails to partition beyond ~50% with heavy
// tasks), global EDF (Dhall-style misses), and PD² (schedules everything).
func E10UtilizationBound(seed int64, trials, m int) ([]UtilPoint, error) {
	q := int64(20)
	// One cell per utilization level, each with its own (seed, pct) RNG.
	return Sweep(Workers, []int{55, 65, 75, 85, 95, 100}, func(pct int) (UtilPoint, error) {
		rng := rand.New(rand.NewSource(seed + int64(pct)))
		pt := UtilPoint{UtilPct: pct}
		for trial := 0; trial < trials; trial++ {
			sum := int64(m) * q * int64(pct) / 100
			n := m + 1 + rng.Intn(m)
			for int64(n) > sum {
				n--
			}
			// Heavy-leaning weights expose the partitioning cap.
			ws := gen.GridWeights(rng, n, q, sum, gen.HeavyWeights)
			pt.Trials++
			if _, err := baseline.PartitionFFD(ws, m); err == nil {
				pt.PartitionOK++
			}
			if _, err := baseline.PartitionFFDRM(ws, m); err == nil {
				pt.PartitionRMOK++
			}
			if r := baseline.GlobalEDF(ws, m, 3*q); r.Misses > 0 {
				pt.GEDFMissTrials++
			}
			if r := baseline.GlobalRM(ws, m, 3*q); r.Misses > 0 {
				pt.GRMMissTrials++
			}
			sys := model.Periodic(ws, 3*q)
			s, err := sfq.Run(sys, sfq.Options{M: m})
			if err != nil {
				return pt, err
			}
			if s.MissCount() > 0 {
				pt.PfairMissTrials++
			}
		}
		return pt, nil
	})
}

// --- E11: the k-compliance induction ---------------------------------------

// CompliancePoint aggregates E11.
type CompliancePoint struct {
	Trials     int
	TotalK     int // total k values checked (Σ n+1)
	AllValid   bool
	MaxPDBTard rat.Rat
}

// E11Compliance runs the full Lemma 6 induction on random systems.
func E11Compliance(seed int64, trials int) (CompliancePoint, error) {
	rng := rand.New(rand.NewSource(seed))
	pt := CompliancePoint{AllValid: true, MaxPDBTard: rat.Zero}
	for trial := 0; trial < trials; trial++ {
		m := 2 + rng.Intn(2)
		sys := randomSystem(rng, m, true)
		pdb, err := core.RunPDB(sys, core.PDBOptions{M: m})
		if err != nil {
			return pt, err
		}
		pt.Trials++
		pt.TotalK += sys.NumSubtasks() + 1
		pt.MaxPDBTard = rat.Max(pt.MaxPDBTard, pdb.Schedule.MaxTardiness())
		if core.CheckLemma6(sys, pdb) != nil {
			pt.AllValid = false
		}
	}
	return pt, nil
}

// --- E12: fractional execution costs (the paper's future work) -------------

// FracCostPoint aggregates E12.
type FracCostPoint struct {
	Trials       int
	MaxTardiness rat.Rat
	SFQResidue   float64 // stranded time under SFQ for the same workload
	BoundHolds   bool
}

// E12FractionalCosts explores the extension flagged in the paper's
// conclusion: execution costs that are not integral multiples of the
// quantum. Each job's final subtask uses only part of its quantum
// (deterministically c = 1/2), modelling a job cost of e−1/2 quanta. Under
// DVQ the tail is reclaimed and tardiness stays within one quantum; under
// SFQ the tail of every job is stranded.
func E12FractionalCosts(seed int64, trials int) (FracCostPoint, error) {
	rng := rand.New(rand.NewSource(seed))
	pt := FracCostPoint{BoundHolds: true, MaxTardiness: rat.Zero}
	for trial := 0; trial < trials; trial++ {
		m := 2 + rng.Intn(3)
		sys := randomSystem(rng, m, false)
		y := func(s *model.Subtask) rat.Rat {
			if s.Index%s.Task.W.E == 0 { // last subtask of its job
				return rat.New(1, 2)
			}
			return rat.One
		}
		ds, err := core.RunDVQ(sys, core.DVQOptions{M: m, Yield: y})
		if err != nil {
			return pt, err
		}
		ss, err := sfq.Run(sys, sfq.Options{M: m, Yield: y})
		if err != nil {
			return pt, err
		}
		pt.Trials++
		pt.MaxTardiness = rat.Max(pt.MaxTardiness, ds.MaxTardiness())
		pt.SFQResidue += analysis.QuantumResidue(ss).Float64()
		if rat.One.Less(ds.MaxTardiness()) {
			pt.BoundHolds = false
		}
	}
	return pt, nil
}

// Table renders rows of fmt.Stringer-ish structs as a simple aligned table;
// the cmd layer uses it for uniform output.
func Table(header string, rows []string) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", len(header)))
	b.WriteString("\n")
	for _, r := range rows {
		b.WriteString(r)
		b.WriteString("\n")
	}
	return b.String()
}

// Bool renders a pass/fail flag.
func Bool(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
