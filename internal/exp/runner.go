package exp

import (
	"runtime"
	"sync"
)

// Workers is the default parallelism of the experiment sweeps: the worker
// count Sweep falls back to when its caller passes workers ≤ 0. Zero (the
// package default) means runtime.NumCPU(). The exported experiment
// functions all sweep with this default, so a cmd layer tunes parallelism
// by setting Workers once — no experiment signature changes. Results are
// identical at every setting because each sweep cell owns an independent,
// deterministically seeded RNG and Sweep returns results in item order.
var Workers int

// Sweep runs fn over every item on a fixed-size worker pool and returns
// the results in item order, regardless of completion order. workers ≤ 0
// selects the package default (Workers, then runtime.NumCPU()). A failing
// item does not cancel the others — every item runs — and Sweep returns
// the error of the lowest-indexed failure, which is the error a serial
// loop over items would have hit first.
func Sweep[T, R any](workers int, items []T, fn func(T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = Workers
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]R, len(items))
	errs := make([]error, len(items))
	if workers <= 1 {
		// One worker: run inline and skip the goroutine machinery, so the
		// serial path is exactly a plain loop (useful under -race and in
		// determinism tests).
		for i := range items {
			out[i], errs[i] = fn(items[i])
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i], errs[i] = fn(items[i])
				}
			}()
		}
		for i := range items {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
