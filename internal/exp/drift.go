package exp

import (
	"math/rand"

	"desyncpfair/internal/core"
	"desyncpfair/internal/drift"
	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/quantize"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sfq"
)

// E15: the paper's first motivation, quantified. SFQ needs synchronized
// timer interrupts; with unsynchronized per-processor clocks the quantum
// supply falls below demand and tardiness grows with the horizon, while
// the DVQ model — which needs no quantum boundaries — keeps its
// one-quantum bound at any drift.

// DriftPoint is one drift magnitude of the E15 sweep.
type DriftPoint struct {
	EpsDen        int64 // ε = 1/EpsDen (0 means no drift)
	Trials        int
	TardShort     rat.Rat // max drifting-SFQ tardiness over a short horizon
	TardLong      rat.Rat // … over a 4× horizon: grows when ε > 0
	TardDVQ       rat.Rat // PD²-DVQ on the long horizon (same workload)
	DVQBoundHolds bool
}

// E15ClockDrift sweeps per-processor clock drift ε and compares
// unsynchronized SFQ against the DVQ model on full-utilization workloads.
func E15ClockDrift(seed int64, trials, m int) ([]DriftPoint, error) {
	var out []DriftPoint
	q := int64(12)
	for _, den := range []int64{0, 200, 50, 20} {
		rng := rand.New(rand.NewSource(seed + den))
		pt := DriftPoint{EpsDen: den, DVQBoundHolds: true,
			TardShort: rat.Zero, TardLong: rat.Zero, TardDVQ: rat.Zero}
		eps := make([]rat.Rat, m)
		for k := range eps {
			if den > 0 {
				eps[k] = rat.New(1, den)
			}
		}
		for trial := 0; trial < trials; trial++ {
			n := m + 1 + rng.Intn(m)
			ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
			run := func(h int64) (rat.Rat, rat.Rat, error) {
				sys := model.Periodic(ws, h)
				ds, err := drift.Run(sys, drift.Options{M: m, Epsilon: eps})
				if err != nil {
					return rat.Zero, rat.Zero, err
				}
				dv, err := core.RunDVQ(sys, core.DVQOptions{M: m})
				if err != nil {
					return rat.Zero, rat.Zero, err
				}
				return ds.MaxTardiness(), dv.MaxTardiness(), nil
			}
			tShort, _, err := run(2 * q)
			if err != nil {
				return nil, err
			}
			tLong, tDVQ, err := run(8 * q)
			if err != nil {
				return nil, err
			}
			pt.Trials++
			pt.TardShort = rat.Max(pt.TardShort, tShort)
			pt.TardLong = rat.Max(pt.TardLong, tLong)
			pt.TardDVQ = rat.Max(pt.TardDVQ, tDVQ)
			if rat.One.Less(tDVQ) {
				pt.DVQBoundHolds = false
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// E16: quantum-size selection. Pfair requires parameters in whole quanta
// (Sec. 2); quantizing a real workload inflates utilization as the quantum
// grows, while per-quantum overhead burns capacity as it shrinks —
// feasibility is not even monotone in Q. The experiment maps the tradeoff
// for a reference workload.

// QuantumPoint is one quantum size of the E16 sweep.
type QuantumPoint struct {
	Q           int64
	Utilization rat.Rat
	Feasible    bool
	Misses      int // PD² misses when simulated at this Q (−1 if infeasible)
}

// E16QuantumSize sweeps candidate quantum sizes for a reference media
// workload on m processors, with per-quantum overhead, and verifies by
// simulation that every feasible choice indeed yields zero misses.
func E16QuantumSize(m int, overhead int64) ([]QuantumPoint, error) {
	rts := []quantize.RealTask{
		{Name: "video0", C: 2700, T: 10000},
		{Name: "video1", C: 2700, T: 10000},
		{Name: "audio", C: 900, T: 5000},
		{Name: "ctrl", C: 850, T: 20000},
		{Name: "ui", C: 1300, T: 40000},
	}
	var out []QuantumPoint
	for _, pt := range quantize.Curve(rts, m, overhead, []int64{125, 250, 500, 1000, 2000, 4000}) {
		qp := QuantumPoint{Q: pt.Q, Utilization: pt.Utilization, Feasible: pt.Feasible, Misses: -1}
		if pt.Feasible {
			ws, err := quantize.Weights(rts, pt.Q, overhead)
			if err != nil {
				return nil, err
			}
			sys := model.Periodic(ws, 2*lcmAll(ws))
			s, err := sfq.Run(sys, sfq.Options{M: m})
			if err != nil {
				return nil, err
			}
			qp.Misses = s.MissCount()
		}
		out = append(out, qp)
	}
	return out, nil
}

func lcmAll(ws []model.Weight) int64 {
	l := int64(1)
	for _, w := range ws {
		l = l / gcd64(l, w.P) * w.P
		if l > 4096 { // keep the simulated horizon sane
			return 4096
		}
	}
	return l
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// E17: necessity of the feasibility precondition. Theorem 3's bound is
// conditioned on Σwt ≤ M; over that line no guarantee exists, and
// tardiness must grow without bound. The experiment overloads PD²-DVQ
// slightly and watches tardiness scale with the horizon.

// OverloadPoint is one utilization level of E17.
type OverloadPoint struct {
	UtilPct   int // total utilization as % of M (may exceed 100)
	Trials    int
	TardShort rat.Rat
	TardLong  rat.Rat // over a 4× horizon; grows iff UtilPct > 100
}

// E17Overload sweeps utilization through and past M on PD²-DVQ.
func E17Overload(seed int64, trials, m int) ([]OverloadPoint, error) {
	q := int64(20)
	var out []OverloadPoint
	for _, pct := range []int{100, 105, 115} {
		rng := rand.New(rand.NewSource(seed + int64(pct)))
		pt := OverloadPoint{UtilPct: pct, TardShort: rat.Zero, TardLong: rat.Zero}
		for trial := 0; trial < trials; trial++ {
			sum := int64(m) * q * int64(pct) / 100
			n := m + 1 + rng.Intn(m)
			for int64(n) > sum {
				n--
			}
			// Utilization above M requires more tasks than processors to
			// stay within per-task weight ≤ 1.
			for sum > int64(n)*q {
				n++
			}
			ws := gen.GridWeights(rng, n, q, sum, gen.MixedWeights)
			run := func(h int64) (rat.Rat, error) {
				sys := model.Periodic(ws, h)
				s, err := core.RunDVQ(sys, core.DVQOptions{M: m})
				if err != nil {
					return rat.Zero, err
				}
				return s.MaxTardiness(), nil
			}
			tShort, err := run(2 * q)
			if err != nil {
				return nil, err
			}
			tLong, err := run(8 * q)
			if err != nil {
				return nil, err
			}
			pt.Trials++
			pt.TardShort = rat.Max(pt.TardShort, tShort)
			pt.TardLong = rat.Max(pt.TardLong, tLong)
		}
		out = append(out, pt)
	}
	return out, nil
}
