// Package exp is the experiment harness: one entry point per figure and
// experiment in DESIGN.md §3, each returning typed results that
// cmd/figures, cmd/experiments and the root bench suite share. The paper
// has no measurement tables — its artifacts are worked example figures and
// theorems — so the "experiments" regenerate each figure's schedule and
// validate each theorem statistically (see EXPERIMENTS.md for outcomes).
package exp

import (
	"fmt"
	"strings"

	"desyncpfair/internal/core"
	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
	"desyncpfair/internal/sfq"
	"desyncpfair/internal/trace"
)

// Fig1System returns the task of Fig. 1 in the requested variant:
// a weight-3/4 task, periodic (a); with T_3 one unit late (b); with T_2
// absent and T_3 one unit late (c).
func Fig1System(variant byte) *model.System {
	sys := model.NewSystem()
	tk := sys.AddTask("T", model.W(3, 4))
	switch variant {
	case 'a':
		for i := int64(1); i <= 6; i++ {
			s := model.Subtask{Task: tk, Index: i}
			sys.AddSubtask(tk, i, 0, s.Release())
		}
	case 'b':
		sys.AddSubtask(tk, 1, 0, 0)
		sys.AddSubtask(tk, 2, 0, 1)
		sys.AddSubtask(tk, 3, 1, 3)
	case 'c':
		sys.AddSubtask(tk, 1, 0, 0)
		sys.AddSubtask(tk, 3, 1, 3)
	default:
		panic("exp: Fig1System variant must be 'a', 'b' or 'c'")
	}
	return sys
}

// Fig1 renders the three window diagrams of Fig. 1.
func Fig1() string {
	var b strings.Builder
	for _, v := range []struct {
		tag  byte
		desc string
	}{
		{'a', "periodic task, weight 3/4 (two jobs shown)"},
		{'b', "IS task: T_3 eligible one time unit late"},
		{'c', "GIS task: T_2 absent, T_3 one time unit late"},
	} {
		sys := Fig1System(v.tag)
		fmt.Fprintf(&b, "Fig. 1(%c) — %s\n", v.tag, v.desc)
		b.WriteString(trace.RenderWindows(sys, sys.Tasks[0]))
		b.WriteString("\n")
	}
	return b.String()
}

// Fig2System is the running example of Figs. 2 and 6: tasks A, B, C of
// weight 1/6 and D, E, F of weight 1/2 (total utilization two).
func Fig2System() *model.System {
	return model.Periodic([]model.Weight{
		model.W(1, 6), model.W(1, 6), model.W(1, 6),
		model.W(1, 2), model.W(1, 2), model.W(1, 2),
	}, 6)
}

// Fig2Yield reproduces Fig. 2(b)'s behaviour: A_1 and F_1 yield δ before
// the end of their quanta; everything else runs fully.
func Fig2Yield(delta rat.Rat) sched.YieldFn {
	c := rat.One.Sub(delta)
	return func(s *model.Subtask) rat.Rat {
		if (s.Task.Name == "A" || s.Task.Name == "F") && s.Index == 1 {
			return c
		}
		return rat.One
	}
}

// Fig2 regenerates all three insets of Fig. 2 (δ = 1/4 for legibility) and
// reports F_2's DVQ tardiness, the paper's miss example.
func Fig2() (string, error) {
	delta := rat.New(1, 4)
	var b strings.Builder

	sfqSched, err := sfq.Run(Fig2System(), sfq.Options{M: 2})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "Fig. 2(a) — PD² under the SFQ model (all deadlines met):\n%s\n", trace.RenderSlots(sfqSched))

	dvq, err := core.RunDVQ(Fig2System(), core.DVQOptions{M: 2, Yield: Fig2Yield(delta)})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "Fig. 2(b) — PD² under the DVQ model, A_1 and F_1 yield at 2−δ (δ=%s):\n%s", delta, trace.RenderTimeline(dvq))
	fmt.Fprintf(&b, "max tardiness: %s (F_2, deadline 4, completes 5−δ)\n\n", dvq.MaxTardiness())

	pdb, err := core.RunPDB(Fig2System(), core.PDBOptions{M: 2})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "Fig. 2(c) — PD^B in the SFQ model (DVQ allocations postponed to boundaries):\n%s", trace.RenderSlots(pdb.Schedule))
	fmt.Fprintf(&b, "max tardiness: %s\n", pdb.Schedule.MaxTardiness())
	fmt.Fprintf(&b, "\nPD^B decision trace (EB/PB/DB partitions per slot):\n%s", trace.RenderPDBTrace(pdb.Slots))
	return b.String(), nil
}

// Fig3System reconstructs the predecessor-blocking scenario of Fig. 3 (the
// paper does not give its task parameters — see DESIGN.md §5). Five tasks
// on three processors: V (weight 1), W (3/4, with W_2 released one slot
// late), W′ (3/5), U (3/5) and X (1/30); total utilization 2 + 59/60.
// With V_2 yielding δ early, X_1 grabs the freed processor mid-slot and U_2
// — ready exactly at time 2 because U_1 executes up to 2 — is
// predecessor-blocked by X_1 while V_3 and W_2 (eligibility exactly 2,
// priority ≥ U_2) take the two processors that free on the boundary.
func Fig3System(horizon int64) *model.System {
	sys := model.NewSystem()
	v := sys.AddTask("V", model.W(1, 1))
	w := sys.AddTask("W", model.W(3, 4))
	wp := sys.AddTask("W'", model.W(3, 5))
	u := sys.AddTask("U", model.W(3, 5))
	x := sys.AddTask("X", model.W(1, 30))
	addUpTo := func(t *model.Task, theta func(i int64) int64) {
		for i := int64(1); ; i++ {
			th := theta(i)
			s := model.Subtask{Task: t, Index: i, Theta: th}
			if s.Release() >= horizon {
				break
			}
			sys.AddSubtask(t, i, th, s.Release())
		}
	}
	zero := func(int64) int64 { return 0 }
	addUpTo(v, zero)
	addUpTo(w, func(i int64) int64 { // W_2 onward released one slot late
		if i >= 2 {
			return 1
		}
		return 0
	})
	addUpTo(wp, zero)
	addUpTo(u, zero)
	addUpTo(x, zero)
	return sys
}

// Fig3Yield makes V_2 yield δ early; everything else runs fully.
func Fig3Yield(delta rat.Rat) sched.YieldFn {
	c := rat.One.Sub(delta)
	return func(s *model.Subtask) rat.Rat {
		if s.Task.Name == "V" && s.Index == 2 {
			return c
		}
		return rat.One
	}
}

// Fig3 runs the reconstruction, renders the DVQ timeline, lists the
// blocking events, and verifies Property PB on the schedule.
func Fig3() (string, []core.BlockingEvent, error) {
	delta := rat.New(1, 4)
	sys := Fig3System(5)
	dq, err := core.RunDVQ(sys, core.DVQOptions{M: 3, Yield: Fig3Yield(delta)})
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 (reconstruction) — predecessor blocking under PD²-DVQ (δ=%s):\n%s", delta, trace.RenderTimeline(dq))
	events := core.FindBlocking(dq, prio.PD2{})
	for _, e := range events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	if err := core.CheckPropertyPB(dq, prio.PD2{}); err != nil {
		return b.String(), events, fmt.Errorf("Property PB violated: %w", err)
	}
	b.WriteString("  Property PB verified: every blocked set has its witness set 𝒱.\n")
	return b.String(), events, nil
}

// Fig4 demonstrates the Aligned/Olapped/Free classification and the S_B
// construction on a single-processor DVQ fragment, as in Fig. 4.
func Fig4() (string, error) {
	// A one-processor system with mixed yields produces all three classes.
	sys := model.Periodic([]model.Weight{model.W(1, 2), model.W(1, 4), model.W(1, 4)}, 8)
	y := func(s *model.Subtask) rat.Rat {
		switch (s.Task.ID + int(s.Index)) % 3 {
		case 0:
			return rat.One
		case 1:
			return rat.New(3, 4)
		default:
			return rat.New(1, 2)
		}
	}
	dq, err := core.RunDVQ(sys, core.DVQOptions{M: 1, Yield: y})
	if err != nil {
		return "", err
	}
	tr := core.BuildSB(dq)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4(a) — single-processor DVQ schedule with classification:\n%s", trace.RenderTimeline(dq))
	for _, a := range dq.Assignments() {
		fmt.Fprintf(&b, "  %-6s [%s,%s)  %s\n", a.Sub.String(), a.Start, a.Finish(), tr.Class[a.Sub])
	}
	b.WriteString("\nFig. 4(b) — S_B for the Charged subtasks (Olapped postponed to boundaries):\n")
	for _, a := range dq.Assignments() {
		if bAsg, ok := tr.B[a.Sub]; ok {
			fmt.Fprintf(&b, "  %-6s slot %d (was %s)\n", a.Sub.String(), bAsg.Start.Int(), a.Start)
		}
	}
	if err := tr.CheckLemma3(); err != nil {
		return b.String(), err
	}
	if err := tr.CheckSBStructure(); err != nil {
		return b.String(), err
	}
	b.WriteString("Lemma 3 and the S_B structure verified.\n")
	return b.String(), nil
}

// Fig6 regenerates the three insets of Fig. 6: the PD^B schedule with its
// rank order, the 0-compliant right-shifted PD² schedule, and the
// 4-compliant system.
func Fig6() (string, error) {
	sys := Fig2System()
	pdb, err := core.RunPDB(sys, core.PDBOptions{M: 2})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6(a) — PD^B schedule S_B (F_2 misses by one quantum):\n%s", trace.RenderSlots(pdb.Schedule))
	b.WriteString("ranks: ")
	for i, sub := range pdb.Schedule.Ranks() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%s", i+1, sub)
	}
	b.WriteString("\n\n")

	for _, k := range []int{0, 4, sys.NumSubtasks()} {
		res, err := core.RunCompliant(sys, pdb, k)
		if err != nil {
			return b.String(), err
		}
		label := fmt.Sprintf("%d-compliant", k)
		switch k {
		case 0:
			label += " (Fig. 6(b): plain PD² on the right-shifted system)"
		case 4:
			label += " (Fig. 6(c))"
		default:
			label += " (k = n: all of S_B pinned — Theorem 2 certified)"
		}
		fmt.Fprintf(&b, "Fig. 6 — %s:\n%s", label, trace.RenderSlots(res.Schedule))
		if err := res.Schedule.ValidatePfair(); err != nil {
			return b.String(), fmt.Errorf("k=%d schedule invalid: %w", k, err)
		}
		b.WriteString("valid: every subtask inside its shifted IS-window.\n\n")
	}
	return b.String(), nil
}

// Fig3VariantB is the counterfactual of Fig. 3(b): the early yield that
// frees a processor mid-slot does not happen, and the predecessor blocking
// disappears. (All subtasks run full quanta.)
func Fig3VariantB() (*sched.Schedule, error) {
	return core.RunDVQ(Fig3System(5), core.DVQOptions{M: 3})
}

// Fig3VariantC is the counterfactual of Fig. 3(c): the blocked subtask's
// own predecessor also yields early, so the subtask starts mid-slot and the
// inversion turns into *eligibility* blocking of the subtask released
// exactly at the boundary — exactly the paper's inset (c) phenomenon.
func Fig3VariantC(delta rat.Rat) (*sched.Schedule, error) {
	c := rat.One.Sub(delta)
	y := func(s *model.Subtask) rat.Rat {
		if (s.Task.Name == "V" && s.Index == 2) || (s.Task.Name == "U" && s.Index == 1) {
			return c
		}
		return rat.One
	}
	return core.RunDVQ(Fig3System(5), core.DVQOptions{M: 3, Yield: y})
}
