package exp

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestSweepOrderAndCompleteness checks that results come back in item
// order at every worker count, including counts above len(items).
func TestSweepOrderAndCompleteness(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 3, 7, 100, 1000} {
		got, err := Sweep(workers, items, func(x int) (int, error) { return x * x, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(items) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(items))
		}
		for i, r := range got {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

// TestSweepEmpty checks the degenerate inputs.
func TestSweepEmpty(t *testing.T) {
	got, err := Sweep(4, nil, func(x int) (int, error) { return x, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("Sweep(nil) = %v, %v; want empty, nil", got, err)
	}
}

// TestSweepFirstError checks that Sweep runs every item, and that with
// several failures it reports the lowest-indexed one — the error a serial
// loop would have returned.
func TestSweepFirstError(t *testing.T) {
	var ran atomic.Int64
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := Sweep(4, items, func(x int) (int, error) {
		ran.Add(1)
		if x%3 == 2 { // items 2 and 5 fail
			return 0, fmt.Errorf("item %d failed", x)
		}
		return x, nil
	})
	if err == nil || err.Error() != "item 2 failed" {
		t.Fatalf("err = %v, want the lowest-indexed failure (item 2)", err)
	}
	if ran.Load() != int64(len(items)) {
		t.Fatalf("ran %d items, want all %d", ran.Load(), len(items))
	}
}

// TestSweepDefaultWorkers checks the fallback chain: explicit argument,
// then the Workers package variable, then NumCPU (implicitly exercised by
// every other test that passes 0 with Workers unset).
func TestSweepDefaultWorkers(t *testing.T) {
	old := Workers
	defer func() { Workers = old }()
	Workers = 1
	got, err := Sweep(0, []int{1, 2, 3}, func(x int) (int, error) { return -x, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{-1, -2, -3}) {
		t.Fatalf("got %v", got)
	}
	if _, err := Sweep(0, []int{1}, func(x int) (int, error) { return 0, errors.New("boom") }); err == nil {
		t.Fatal("error not propagated on the serial path")
	}
}

// TestSweepSerialParallelEquivalence pins the tentpole guarantee: the
// experiment functions return bit-identical results at any worker count,
// because every sweep cell owns an independent deterministic RNG.
func TestSweepSerialParallelEquivalence(t *testing.T) {
	run := func() (interface{}, interface{}, interface{}) {
		e2, err := E2DVQTardiness(7, 2, []int{2, 3})
		if err != nil {
			t.Fatal(err)
		}
		e3, err := E3SFQOptimality(7, 2)
		if err != nil {
			t.Fatal(err)
		}
		e8, err := E8EPDF(7, 2, []int{2, 3})
		if err != nil {
			t.Fatal(err)
		}
		return e2, e3, e8
	}
	old := Workers
	defer func() { Workers = old }()
	Workers = 1
	s2, s3, s8 := run()
	Workers = 4
	p2, p3, p8 := run()
	if !reflect.DeepEqual(s2, p2) {
		t.Errorf("E2 serial/parallel mismatch:\n  serial   %+v\n  parallel %+v", s2, p2)
	}
	if !reflect.DeepEqual(s3, p3) {
		t.Errorf("E3 serial/parallel mismatch:\n  serial   %+v\n  parallel %+v", s3, p3)
	}
	if !reflect.DeepEqual(s8, p8) {
		t.Errorf("E8 serial/parallel mismatch:\n  serial   %+v\n  parallel %+v", s8, p8)
	}
}
