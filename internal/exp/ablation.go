package exp

import (
	"math/rand"

	"desyncpfair/internal/baseline"
	"desyncpfair/internal/gen"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
	"desyncpfair/internal/sfq"
)

// E13 and E14: two experiments beyond the paper's own artifacts that
// DESIGN.md §3 commits to — the early-release comparison the paper invokes
// against DFS's auxiliary scheduler, and the ablation showing PD²'s
// tie-break rules are each load-bearing for the optimality that Theorem 3's
// proof leans on.

// --- E13: early releasing vs DFS's auxiliary scheduler --------------------

// ERPoint is one slack level of E13.
type ERPoint struct {
	UtilPct    int // total utilization as % of M
	Trials     int
	PlainSlack float64 // mean (deadline − completion) under plain PD²
	ERSlack    float64 // … under early-release PD² (eligibility 2 slots early)
	DFSAux     int     // aux quanta granted by work-conserving DFS
	ERMisses   int     // must stay 0: ER-fair PD² remains optimal
}

// E13EarlyRelease quantifies the paper's remark that "the early-release
// model provides a less-expensive and simpler alternative to using an
// auxiliary scheduler" (Sec. 1): on systems with slack, early releasing
// lets PD² pull work forward — growing each subtask's completion margin —
// without any second scheduler, while DFS achieves its reclamation through
// auxiliary dispatching.
func E13EarlyRelease(seed int64, trials, m int) ([]ERPoint, error) {
	var out []ERPoint
	q := int64(12)
	for _, pct := range []int{60, 75, 90} {
		rng := rand.New(rand.NewSource(seed + int64(pct)))
		pt := ERPoint{UtilPct: pct}
		for trial := 0; trial < trials; trial++ {
			sum := int64(m) * q * int64(pct) / 100
			n := m + rng.Intn(m)
			for int64(n) > sum {
				n--
			}
			ws := gen.GridWeights(rng, n, q, sum, gen.MixedWeights)

			plain := gen.System(rng, ws, gen.SystemOptions{Horizon: 3 * q})
			er := gen.System(rng, ws, gen.SystemOptions{Horizon: 3 * q, EarlyRelease: 2})

			ps, err := sfq.Run(plain, sfq.Options{M: m})
			if err != nil {
				return nil, err
			}
			es, err := sfq.Run(er, sfq.Options{M: m})
			if err != nil {
				return nil, err
			}
			pt.Trials++
			pt.PlainSlack += meanSlack(ps)
			pt.ERSlack += meanSlack(es)
			pt.ERMisses += es.MissCount()
			pt.DFSAux += baseline.DFS(ws, m, 3*q, true).AuxQuanta
		}
		pt.PlainSlack /= float64(pt.Trials)
		pt.ERSlack /= float64(pt.Trials)
		out = append(out, pt)
	}
	return out, nil
}

// meanSlack is the mean of (deadline − completion) over all subtasks:
// larger means work runs further ahead of its deadlines.
func meanSlack(s *sched.Schedule) float64 {
	total, n := 0.0, 0
	for _, a := range s.Assignments() {
		total += rat.FromInt(a.Sub.Deadline()).Sub(a.Finish()).Float64()
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// --- E14: tie-break ablation ----------------------------------------------

// AblationPoint is one policy row of E14.
type AblationPoint struct {
	Policy       string
	Trials       int
	MissTrials   int // trials with ≥ 1 deadline miss under SFQ
	Misses       int
	MaxTardiness rat.Rat
}

// E14TieBreakAblation removes PD²'s tie-break rules one at a time and
// schedules heavy random systems under SFQ at M ∈ {3,4,5}. Full PD² must
// never miss; each ablation has known counterexamples (two are pinned
// below so the effect is reproducible at small trial counts).
func E14TieBreakAblation(seed int64, trials int) ([]AblationPoint, error) {
	pols := []prio.Policy{prio.PD2{}, prio.PD2NoGroup{}, prio.PD2NoBBit{}}
	// Deterministic counterexample system generators (found by search; see
	// prio's ablation tests): seeds into the same generator family.
	pinned := []int64{696, 8}
	var out []AblationPoint
	for _, pol := range pols {
		pt := AblationPoint{Policy: pol.Name(), MaxTardiness: rat.Zero}
		runOne := func(sysSeed int64) error {
			rng := rand.New(rand.NewSource(sysSeed))
			m := 3 + rng.Intn(3)
			q := int64(6 + rng.Intn(10))
			n := m + 1 + rng.Intn(2*m)
			if int64(n) > int64(m)*q {
				return nil
			}
			ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.HeavyWeights)
			sys := gen.System(rng, ws, gen.SystemOptions{Horizon: 3 * q})
			s, err := sfq.Run(sys, sfq.Options{M: m, Policy: pol})
			if err != nil {
				return err
			}
			pt.Trials++
			if s.MissCount() > 0 {
				pt.MissTrials++
				pt.Misses += s.MissCount()
				pt.MaxTardiness = rat.Max(pt.MaxTardiness, s.MaxTardiness())
			}
			return nil
		}
		for _, ps := range pinned {
			if err := runOne(ps); err != nil {
				return nil, err
			}
		}
		for trial := 0; trial < trials; trial++ {
			if err := runOne(seed + int64(trial)); err != nil {
				return nil, err
			}
		}
		out = append(out, pt)
	}
	return out, nil
}
