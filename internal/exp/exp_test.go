package exp

import (
	"strings"
	"testing"

	"desyncpfair/internal/core"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
)

func TestFig1Renders(t *testing.T) {
	out := Fig1()
	for _, want := range []string{"Fig. 1(a)", "Fig. 1(b)", "Fig. 1(c)", "T_1", "T_3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 output missing %q", want)
		}
	}
	// Fig 1(c) omits T_2: its section must not contain a T_2 window row
	// (the caption text mentions "T_2 absent", so check row starts only).
	cIdx := strings.Index(out, "Fig. 1(c)")
	for _, line := range strings.Split(out[cIdx:], "\n") {
		if strings.HasPrefix(line, "T_2") {
			t.Error("GIS variant should not render a T_2 row")
		}
	}
}

func TestFig1SystemPanicsOnBadVariant(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Fig1System('z')
}

func TestFig2EndToEnd(t *testing.T) {
	out, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 2(a)", "Fig. 2(b)", "Fig. 2(c)", "max tardiness: 3/4", "B_1@[7/4,"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 output missing %q in:\n%s", want, out)
		}
	}
}

// The engineered Fig. 3 scenario must show U_2 predecessor-blocked at t=2
// by X_1, with Property PB verified.
func TestFig3PredecessorBlocking(t *testing.T) {
	out, events, err := Fig3()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	found := false
	for _, e := range events {
		if e.Kind == core.PredecessorBlocked && e.T == 2 &&
			e.Sub.String() == "U_2" && e.By.String() == "X_1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("U_2 not predecessor-blocked by X_1 at t=2; events: %v\n%s", events, out)
	}
	if !strings.Contains(out, "Property PB verified") {
		t.Error("Property PB verification missing from output")
	}
}

func TestFig3SystemFeasible(t *testing.T) {
	sys := Fig3System(5)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sys.Feasible(3) {
		t.Fatalf("Fig. 3 system utilization %s exceeds 3", sys.TotalUtilization())
	}
}

func TestFig4Classification(t *testing.T) {
	out, err := Fig4()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"Aligned", "Olapped", "Free", "Lemma 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 output missing %q", want)
		}
	}
}

func TestFig6AllInsets(t *testing.T) {
	out, err := Fig6()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"Fig. 6(a)", "0-compliant", "4-compliant", "Theorem 2 certified", "ranks: 1:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 output missing %q", want)
		}
	}
}

func TestE1TightnessIsExactlyOneMinusDelta(t *testing.T) {
	pts, err := E1Tightness(DefaultDeltas())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		want := rat.One.Sub(p.Delta)
		if !p.MaxTardiness.Equal(want) {
			t.Errorf("δ=%s: tardiness %s, want %s", p.Delta, p.MaxTardiness, want)
		}
	}
	// Monotone approach to 1, never reaching it.
	for i := 1; i < len(pts); i++ {
		if !pts[i-1].MaxTardiness.Less(pts[i].MaxTardiness) {
			t.Error("tardiness not increasing as δ decreases")
		}
	}
	if !pts[len(pts)-1].MaxTardiness.Less(rat.One) {
		t.Error("tardiness reached 1")
	}
}

func TestE2BoundHolds(t *testing.T) {
	pts, err := E2DVQTardiness(1, 6, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 { // 2 Ms × 4 yield models
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if !p.BoundHolds {
			t.Errorf("M=%d yield=%s: Theorem 3 bound violated (max %s)", p.M, p.YieldModel, p.MaxTardiness)
		}
		if p.YieldModel == "full" && p.Misses != 0 {
			t.Errorf("full quanta should have zero misses, got %d", p.Misses)
		}
	}
}

func TestE3OptimalPoliciesNeverMiss(t *testing.T) {
	pts, err := E3SFQOptimality(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Policy != "EPDF" && p.Misses != 0 {
			t.Errorf("%s missed %d deadlines under SFQ", p.Policy, p.Misses)
		}
	}
}

func TestE4PDBBoundHolds(t *testing.T) {
	pts, err := E4PDBTardiness(3, 6, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !p.BoundHolds {
			t.Errorf("M=%d yield=%s: Theorem 2 bound violated", p.M, p.YieldModel)
		}
	}
}

func TestE5TransformLemmas(t *testing.T) {
	pt, err := E5Transform(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.AllLemmasHold {
		t.Error("transform lemmas violated")
	}
	if pt.Aligned == 0 {
		t.Error("no Aligned subtasks across 12 trials")
	}
	if rat.One.Less(pt.MaxSBTardiness) {
		t.Errorf("S_B tardiness %s > 1", pt.MaxSBTardiness)
	}
}

func TestE6PropertyPBHoldsWithPredecessorEvents(t *testing.T) {
	pt, err := E6PropertyPB(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.PropertyHolds {
		t.Error("Property PB violated")
	}
	if pt.PredecessorEvents == 0 {
		t.Error("engineered Fig. 3 scenario should contribute predecessor events")
	}
	if pt.EligibilityEvents == 0 {
		t.Error("expected eligibility blocking in random trials")
	}
}

func TestE7ReclamationShape(t *testing.T) {
	pts, err := E7Reclamation(6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	// With all-full quanta (pFull=100) there is no residue and no gain.
	if pts[0].ResidueFrac != 0 {
		t.Errorf("full-quanta residue = %f", pts[0].ResidueFrac)
	}
	// With early yields the SFQ model strands time and DVQ finishes sooner.
	last := pts[len(pts)-1]
	if last.ResidueFrac <= 0 {
		t.Error("no residue at pFull=20")
	}
	if last.MakespanGain <= 1 {
		t.Errorf("makespan gain = %f, want > 1", last.MakespanGain)
	}
	// DVQ tardiness stays within a quantum even while reclaiming.
	for _, p := range pts {
		if rat.One.Less(p.DVQ.MaxTardiness) {
			t.Errorf("pFull=%d: DVQ tardiness %s > 1", p.FullProb, p.DVQ.MaxTardiness)
		}
	}
}

func TestE8EPDFWithinOneQuantum(t *testing.T) {
	pts, err := E8EPDF(7, 6, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !p.DeltaAtMost1 {
			t.Errorf("M=%d: EPDF DVQ−SFQ tardiness gap exceeded one quantum", p.M)
		}
	}
}

func TestE9StaggeredBurst(t *testing.T) {
	pts, err := E9Staggered(8, 4, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.AlignedBurst != p.M {
			t.Errorf("M=%d: aligned burst = %d, want M", p.M, p.AlignedBurst)
		}
		if p.StaggeredBurst != 1 {
			t.Errorf("M=%d: staggered burst = %d, want 1", p.M, p.StaggeredBurst)
		}
		if rat.One.Less(p.MaxTardiness) {
			t.Errorf("M=%d: staggered tardiness %s > 1", p.M, p.MaxTardiness)
		}
	}
}

func TestE10UtilizationBound(t *testing.T) {
	pts, err := E10UtilizationBound(9, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.PfairMissTrials != 0 {
			t.Errorf("util %d%%: PD² missed deadlines", p.UtilPct)
		}
	}
	// At 100% of M with heavy tasks, partitioning must fail sometimes and
	// global EDF must miss sometimes; at 55% both mostly succeed.
	last := pts[len(pts)-1]
	if last.PartitionOK == last.Trials {
		t.Error("partitioning never failed at 100% utilization with heavy tasks")
	}
	first := pts[0]
	if first.PartitionOK == 0 {
		t.Error("partitioning always failed even at 55% utilization")
	}
}

func TestE11ComplianceValid(t *testing.T) {
	pt, err := E11Compliance(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.AllValid {
		t.Error("Lemma 6 induction failed")
	}
	if rat.One.Less(pt.MaxPDBTard) {
		t.Errorf("PD^B tardiness %s > 1", pt.MaxPDBTard)
	}
}

func TestE12FractionalCosts(t *testing.T) {
	pt, err := E12FractionalCosts(11, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.BoundHolds {
		t.Errorf("fractional-cost tardiness exceeded one quantum: %s", pt.MaxTardiness)
	}
	if pt.SFQResidue <= 0 {
		t.Error("SFQ should strand the fractional tails")
	}
}

func TestTableAndBool(t *testing.T) {
	out := Table("h1  h2", []string{"a  b", "c  d"})
	if !strings.Contains(out, "h1") || !strings.Contains(out, "c  d") || !strings.Contains(out, "---") {
		t.Errorf("table malformed:\n%s", out)
	}
	if Bool(true) != "yes" || Bool(false) != "NO" {
		t.Error("Bool labels wrong")
	}
}

// The Fig. 3 counterfactuals: inset (b) — no early yield, no predecessor
// blocking; inset (c) — the predecessor also yields early, turning the
// inversion into eligibility blocking.
func TestFig3Variants(t *testing.T) {
	b, err := Fig3VariantB()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range core.FindBlocking(b, prio.PD2{}) {
		if e.Kind == core.PredecessorBlocked {
			t.Errorf("variant (b) still has predecessor blocking: %v", e)
		}
	}

	c, err := Fig3VariantC(rat.New(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	events := core.FindBlocking(c, prio.PD2{})
	sawElig := false
	for _, e := range events {
		if e.Kind == core.PredecessorBlocked {
			t.Errorf("variant (c) should not have predecessor blocking: %v", e)
		}
		if e.Kind == core.EligibilityBlocked && e.T == 2 {
			sawElig = true
		}
	}
	if !sawElig {
		t.Errorf("variant (c) should show eligibility blocking at t=2; events: %v", events)
	}
	if err := core.CheckPropertyPB(c, prio.PD2{}); err != nil {
		t.Error(err)
	}
}

func TestWriteCSVOverExperimentRows(t *testing.T) {
	pts, err := E1Tightness(DefaultDeltas()[:3])
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCSV(&b, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "Delta,MaxTardiness" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 || lines[1] != "1/2,1/2" {
		t.Errorf("rows = %v", lines)
	}

	// Nested-struct flattening: E7's rows embed analysis.Summary twice.
	e7, err := E7Reclamation(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := WriteCSV(&b, e7); err != nil {
		t.Fatal(err)
	}
	head := strings.Split(strings.TrimSpace(b.String()), "\n")[0]
	for _, want := range []string{"FullProb", "SFQ.MaxTardiness", "DVQ.MeanResponse"} {
		if !strings.Contains(head, want) {
			t.Errorf("flattened header missing %q: %s", want, head)
		}
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, 42); err == nil {
		t.Error("non-slice accepted")
	}
	if err := WriteCSV(&b, []TightnessPoint{}); err == nil {
		t.Error("empty slice accepted")
	}
	if err := WriteCSV(&b, []int{1}); err == nil {
		t.Error("slice of non-structs accepted")
	}
}
