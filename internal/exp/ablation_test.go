package exp

import (
	"testing"

	"desyncpfair/internal/rat"
)

func TestE13EarlyReleaseIncreasesSlack(t *testing.T) {
	pts, err := E13EarlyRelease(12, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// Early releasing must never cause misses (ER-fair PD² is optimal)
		// and must not reduce the completion margin.
		if p.ERMisses != 0 {
			t.Errorf("util %d%%: ER-PD² missed %d deadlines", p.UtilPct, p.ERMisses)
		}
		if p.ERSlack < p.PlainSlack {
			t.Errorf("util %d%%: ER slack %.3f below plain %.3f", p.UtilPct, p.ERSlack, p.PlainSlack)
		}
	}
	// On systems with slack the DFS auxiliary scheduler must be active —
	// that is the mechanism ER replaces.
	if pts[0].DFSAux == 0 {
		t.Error("DFS granted no aux quanta at 60% utilization")
	}
}

func TestE14AblationShowsTieBreaksAreLoadBearing(t *testing.T) {
	pts, err := E14TieBreakAblation(100, 40)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationPoint{}
	for _, p := range pts {
		byName[p.Policy] = p
	}
	if p := byName["PD2"]; p.Misses != 0 {
		t.Errorf("full PD² missed %d deadlines", p.Misses)
	}
	if p := byName["PD2-noD"]; p.Misses == 0 {
		t.Error("dropping the group deadline should cost deadlines (pinned counterexample)")
	}
	if p := byName["PD2-nob"]; p.Misses == 0 {
		t.Error("dropping the b-bit should cost deadlines (pinned counterexample)")
	}
}

func TestE15ClockDrift(t *testing.T) {
	pts, err := E15ClockDrift(15, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if !p.DVQBoundHolds {
			t.Errorf("ε=1/%d: DVQ bound violated", p.EpsDen)
		}
		if p.EpsDen == 0 {
			if p.TardLong.Sign() != 0 {
				t.Errorf("zero drift long-horizon tardiness %s", p.TardLong)
			}
			continue
		}
		// Drift makes tardiness grow with the horizon.
		if !p.TardShort.Less(p.TardLong) {
			t.Errorf("ε=1/%d: tardiness did not grow (%s → %s)", p.EpsDen, p.TardShort, p.TardLong)
		}
	}
	// Larger drift ⇒ larger long-horizon tardiness (monotone across the sweep).
	if !pts[1].TardLong.Less(pts[3].TardLong) {
		t.Errorf("tardiness not increasing in drift: 1/200→%s, 1/20→%s", pts[1].TardLong, pts[3].TardLong)
	}
}

func TestE16QuantumSize(t *testing.T) {
	pts, err := E16QuantumSize(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	sawFeasible, sawInfeasible := false, false
	for _, p := range pts {
		if p.Feasible {
			sawFeasible = true
			if p.Misses != 0 {
				t.Errorf("Q=%d declared feasible but missed %d deadlines", p.Q, p.Misses)
			}
		} else {
			sawInfeasible = true
		}
	}
	if !sawFeasible {
		t.Error("no feasible quantum size in the sweep")
	}
	if !sawInfeasible {
		t.Error("sweep should include an infeasible (coarse) quantum size")
	}
}

func TestE17Overload(t *testing.T) {
	pts, err := E17Overload(18, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	byPct := map[int]OverloadPoint{}
	for _, p := range pts {
		byPct[p.UtilPct] = p
	}
	// At exactly M: the bound holds at any horizon.
	if p := byPct[100]; rat.One.Less(p.TardLong) {
		t.Errorf("util 100%%: tardiness %s > 1", p.TardLong)
	}
	// Past M: tardiness grows with the horizon and exceeds one quantum.
	for _, pct := range []int{105, 115} {
		p := byPct[pct]
		if !p.TardShort.Less(p.TardLong) {
			t.Errorf("util %d%%: tardiness did not grow (%s → %s)", pct, p.TardShort, p.TardLong)
		}
		if !rat.One.Less(p.TardLong) {
			t.Errorf("util %d%%: overload tardiness %s should exceed 1", pct, p.TardLong)
		}
	}
}

func TestE18PolicyMatrix(t *testing.T) {
	pts, err := E18PolicyMatrix(19, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("policies = %d", len(pts))
	}
	for _, p := range pts {
		// On M=2 every listed policy is optimal under SFQ, so under DVQ all
		// stay within one quantum.
		if rat.One.Less(p.MaxTardiness) {
			t.Errorf("%s: tardiness %s > 1 on M=2", p.Policy, p.MaxTardiness)
		}
		if p.Subtasks == 0 || p.MeanResponse <= 0 {
			t.Errorf("%s: empty stats", p.Policy)
		}
	}
}

func TestE19TightnessScalesWithM(t *testing.T) {
	delta := rat.New(1, 8)
	pts, err := E19TightnessByM(delta, []int{2, 4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// The one-quantum bound holds at every size; the construction is
		// exactly worst-case only at M ∈ {2, 4} (see the E19 doc comment).
		if p.MaxTardiness.Sign() <= 0 || rat.One.Less(p.MaxTardiness) {
			t.Errorf("M=%d: max tardiness %s outside (0, 1]", p.M, p.MaxTardiness)
		}
		if p.M == 2 && !p.EqualsOneMinusDelta {
			t.Errorf("M=2: max tardiness %s, want exactly %s", p.MaxTardiness, rat.One.Sub(delta))
		}
		if p.M >= 4 && p.EqualsOneMinusDelta {
			t.Logf("note: replication reached 1−δ at M=%d (stronger than previously observed)", p.M)
		}
	}
	// Odd machine sizes are skipped by construction.
	odd, err := E19TightnessByM(delta, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(odd) != 0 {
		t.Error("odd M should be skipped")
	}
}

func TestE20Dynamics(t *testing.T) {
	pts, err := E20Dynamics(21, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if rat.One.Less(p.MaxTardiness) {
			t.Errorf("jitter %d%% omit %d%%: tardiness %s > 1", p.JitterPct, p.OmitPct, p.MaxTardiness)
		}
		if p.Subtasks == 0 {
			t.Errorf("empty cell at jitter %d omit %d", p.JitterPct, p.OmitPct)
		}
	}
}
