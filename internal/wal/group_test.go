package wal

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// fakeTimer is a manually-fired Timer: tests trigger the FsyncMaxDelay
// callback themselves, so the idle-flush path needs no sleeps and no real
// clock.
type fakeTimer struct {
	mu      sync.Mutex
	d       time.Duration
	fn      func()
	stopped bool
}

func (ft *fakeTimer) Stop() bool {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	st := ft.stopped
	ft.stopped = true
	return !st
}

func (ft *fakeTimer) fire() {
	ft.mu.Lock()
	fn, stopped := ft.fn, ft.stopped
	ft.stopped = true
	ft.mu.Unlock()
	if !stopped {
		fn()
	}
}

// timerFactory collects every timer the log arms.
type timerFactory struct {
	mu     sync.Mutex
	timers []*fakeTimer
}

func (tf *timerFactory) afterFunc(d time.Duration, f func()) Timer {
	tf.mu.Lock()
	defer tf.mu.Unlock()
	ft := &fakeTimer{d: d, fn: f}
	tf.timers = append(tf.timers, ft)
	return ft
}

func (tf *timerFactory) all() []*fakeTimer {
	tf.mu.Lock()
	defer tf.mu.Unlock()
	return append([]*fakeTimer(nil), tf.timers...)
}

// TestFsyncMaxDelayFlushesIdleTail pins the idle-flush fix: with
// FsyncEvery > 1, a final partial group used to sit unsynced forever once
// traffic stopped. The FsyncMaxDelay timer — armed by the first record of
// each unsynced batch — must bring the idle log to Stats().Unsynced == 0.
// The injected timer makes the test fully deterministic: no sleeps.
func TestFsyncMaxDelayFlushesIdleTail(t *testing.T) {
	tf := &timerFactory{}
	fs := &countingFS{}
	l, _ := mustOpen(t, t.TempDir(), Options{
		FS:            fs,
		FsyncEvery:    8,
		FsyncMaxDelay: 50 * time.Millisecond,
		AfterFunc:     tf.afterFunc,
	})
	defer l.Close()

	appendN(t, l, 3) // below the threshold: no fsync yet
	if st := l.Stats(); st.Unsynced != 3 || st.Fsyncs != 0 {
		t.Fatalf("before timer: Unsynced=%d Fsyncs=%d, want 3/0", st.Unsynced, st.Fsyncs)
	}
	timers := tf.all()
	if len(timers) != 1 {
		t.Fatalf("armed %d timers for one partial batch, want 1", len(timers))
	}
	if timers[0].d != 50*time.Millisecond {
		t.Fatalf("timer delay = %v, want FsyncMaxDelay", timers[0].d)
	}

	timers[0].fire()
	if st := l.Stats(); st.Unsynced != 0 || st.Fsyncs != 1 {
		t.Fatalf("after timer: Unsynced=%d Fsyncs=%d, want 0/1", st.Unsynced, st.Fsyncs)
	}

	// The next partial batch arms a fresh timer; firing it flushes again.
	appendN(t, l, 2)
	timers = tf.all()
	if len(timers) != 2 {
		t.Fatalf("second batch armed %d timers total, want 2", len(timers))
	}
	timers[1].fire()
	if st := l.Stats(); st.Unsynced != 0 || st.Fsyncs != 2 {
		t.Fatalf("after second timer: Unsynced=%d Fsyncs=%d, want 0/2", st.Unsynced, st.Fsyncs)
	}

	// A timer that fires with nothing pending (threshold sync already
	// covered the batch) is a no-op, not an extra fsync.
	appendN(t, l, 8) // hits FsyncEvery == 8 exactly: threshold sync
	st := l.Stats()
	if st.Unsynced != 0 || st.Fsyncs != 3 {
		t.Fatalf("after threshold batch: Unsynced=%d Fsyncs=%d, want 0/3", st.Unsynced, st.Fsyncs)
	}
	for _, ft := range tf.all() {
		ft.fire()
	}
	if got := l.Stats().Fsyncs; got != 3 {
		t.Fatalf("stale timer fire issued an fsync: Fsyncs=%d, want 3", got)
	}
}

// gateFS blocks the first `gated` Sync calls until released, so a test
// can deterministically pile followers behind a leader's in-flight fsync.
type gateFS struct {
	OSFS
	mu      sync.Mutex
	started chan struct{} // one send per gated Sync entering
	release chan struct{} // one receive unblocks one gated Sync
	gated   int
	syncs   int
}

func (g *gateFS) Create(path string) (File, error) {
	f, err := g.OSFS.Create(path)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, fs: g}, nil
}

type gateFile struct {
	File
	fs *gateFS
}

func (f *gateFile) Sync() error {
	g := f.fs
	g.mu.Lock()
	g.syncs++
	gate := g.gated > 0
	if gate {
		g.gated--
	}
	g.mu.Unlock()
	if gate {
		g.started <- struct{}{}
		<-g.release
	}
	return f.File.Sync()
}

// TestLeaderFollowerCoalescing is the deterministic proof of group
// commit: while the leader's fsync is blocked, K more appends enqueue and
// wait behind it; releasing the gate lets one follower lead a single
// second fsync that acks all K. K+1 durable appends, exactly 2 fsyncs.
func TestLeaderFollowerCoalescing(t *testing.T) {
	const followers = 8
	g := &gateFS{
		started: make(chan struct{}, followers+2),
		release: make(chan struct{}),
		gated:   2,
	}
	l, _ := mustOpen(t, t.TempDir(), Options{FS: g, FsyncEvery: 1})
	defer l.Close()

	done := make(chan error, followers+1)
	go func() {
		_, err := l.Append(Record{Op: OpAdvance, Tenant: "a", At: "0"})
		done <- err
	}()
	<-g.started // the leader is inside its fsync, mutex released

	// Enqueue the followers. Each lands its write (Appends counts at
	// enqueue) and blocks in Wait behind the in-flight leader.
	for i := 0; i < followers; i++ {
		go func(i int) {
			_, err := l.Append(Record{Op: OpAdvance, Tenant: "a", At: fmt.Sprint(i + 1)})
			done <- err
		}(i)
	}
	waitFor(t, func() bool { return l.Stats().Appends == followers+1 })

	g.release <- struct{}{} // leader completes: record 1 durable
	<-g.started             // one follower took over as the next leader
	waitFor(t, func() bool { return l.Stats().Fsyncs == 1 })
	g.release <- struct{}{} // second sync covers all followers at once

	for i := 0; i < followers+1; i++ {
		if err := <-done; err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Fsyncs != 2 {
		t.Fatalf("%d appends completed with %d fsyncs, want exactly 2 (1 leader + 1 coalesced group)", followers+1, st.Fsyncs)
	}
	if st.Unsynced != 0 {
		t.Fatalf("Unsynced = %d after all acks, want 0", st.Unsynced)
	}
	g.mu.Lock()
	syncs := g.syncs
	g.mu.Unlock()
	if syncs != 2 {
		t.Fatalf("file saw %d Sync calls, want 2", syncs)
	}
}

// waitFor polls cond until it holds; the conditions used here are
// guaranteed to become true once the goroutines already launched make
// progress, so this converges without any timing assumptions beyond the
// test binary's own deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestConcurrentAppendRace is the -race workout for the append pipeline:
// N goroutines append concurrently with durable acks (FsyncEvery == 1)
// and the log must hand out unique, gap-free, per-goroutine-monotone
// LSNs with consistent counters.
func TestConcurrentAppendRace(t *testing.T) {
	const (
		goroutines = 8
		perG       = 50
	)
	l, _ := mustOpen(t, t.TempDir(), Options{FsyncEvery: 1})

	lsns := make([][]uint64, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn, err := l.Append(Record{Op: OpAdvance, Tenant: fmt.Sprintf("g%d", g), At: fmt.Sprint(i)})
				if err != nil {
					errs[g] = err
					return
				}
				lsns[g] = append(lsns[g], lsn)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	var all []uint64
	for g := range lsns {
		for i := 1; i < len(lsns[g]); i++ {
			if lsns[g][i] <= lsns[g][i-1] {
				t.Fatalf("goroutine %d saw non-monotone LSNs %d then %d", g, lsns[g][i-1], lsns[g][i])
			}
		}
		all = append(all, lsns[g]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, lsn := range all {
		if lsn != uint64(i+1) {
			t.Fatalf("LSN sequence has a gap or duplicate at position %d: got %d, want %d", i, lsn, i+1)
		}
	}

	st := l.Stats()
	if st.Appends != goroutines*perG {
		t.Fatalf("Appends = %d, want %d", st.Appends, goroutines*perG)
	}
	if st.AppendErrors != 0 || st.Wedged {
		t.Fatalf("Stats = %+v, want no errors", st)
	}
	if st.Unsynced != 0 {
		t.Fatalf("Unsynced = %d after all durable acks, want 0", st.Unsynced)
	}
	if st.Fsyncs == 0 || st.Fsyncs > st.Appends {
		t.Fatalf("Fsyncs = %d, want in [1, %d]", st.Fsyncs, st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Every acked record survives a reopen, in LSN order.
	l2, rec := mustOpen(t, l.dir, Options{})
	defer l2.Close()
	if len(rec.Records) != goroutines*perG {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), goroutines*perG)
	}
	for i, r := range rec.Records {
		if r.LSN != uint64(i+1) {
			t.Fatalf("recovered record %d has LSN %d", i, r.LSN)
		}
	}
}

// failSyncFS fails the k-th file Sync (1-based) and succeeds otherwise.
type failSyncFS struct {
	OSFS
	mu     sync.Mutex
	syncs  int
	failAt int
}

func (c *failSyncFS) Create(path string) (File, error) {
	f, err := c.OSFS.Create(path)
	if err != nil {
		return nil, err
	}
	return &failSyncFile{File: f, fs: c}, nil
}

type failSyncFile struct {
	File
	fs *failSyncFS
}

func (f *failSyncFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.syncs++
	fail := f.fs.syncs == f.fs.failAt
	f.fs.mu.Unlock()
	if fail {
		return errors.New("injected fsync failure")
	}
	return f.File.Sync()
}

// TestLeaderFsyncFailureWedgesOnce: when the group-commit leader's fsync
// fails, every waiter sharing that sync gets an ErrWedged-wrapped error,
// the wedge is sticky, and the log wedges exactly once — later appends
// are refused without re-reporting the I/O failure.
func TestLeaderFsyncFailureWedgesOnce(t *testing.T) {
	const writers = 4
	fs := &failSyncFS{failAt: 1}
	l, _ := mustOpen(t, t.TempDir(), Options{FS: fs, FsyncEvery: 1})
	defer l.Close()

	errsCh := make(chan error, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, err := l.Append(Record{Op: OpAdvance, Tenant: fmt.Sprintf("g%d", g), At: "0"})
			errsCh <- err
		}(g)
	}
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		if !errors.Is(err, ErrWedged) {
			t.Fatalf("append error = %v, want ErrWedged", err)
		}
	}
	if !l.Wedged() {
		t.Fatal("log not wedged after leader fsync failure")
	}
	if _, err := l.Append(Record{Op: OpDrain}); !errors.Is(err, ErrWedged) {
		t.Fatalf("post-wedge append = %v, want ErrWedged", err)
	}
	st := l.Stats()
	// Each of the writers' Waits failed (one per call) plus the refused
	// post-wedge append.
	if st.AppendErrors != writers+1 {
		t.Fatalf("AppendErrors = %d, want %d", st.AppendErrors, writers+1)
	}
	if st.Fsyncs != 0 {
		t.Fatalf("Fsyncs = %d after a failed leader sync, want 0", st.Fsyncs)
	}
}

// TestAppendBatchSingleWrite: a batch lands as one contiguous frame group
// — one write, contiguous LSNs written back into the records — and one
// Wait on its commit yields one fsync for the whole group.
func TestAppendBatchSingleWrite(t *testing.T) {
	fs := &countingFS{}
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{FS: fs, FsyncEvery: 1})

	rs := make([]Record, 5)
	for i := range rs {
		rs[i] = Record{Op: OpJobSubmit, Tenant: "a", Name: fmt.Sprintf("t%d", i), At: "0"}
	}
	c, err := l.AppendBatch(rs)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	for i, r := range rs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("batch record %d assigned LSN %d, want %d", i, r.LSN, i+1)
		}
	}
	if c.LSN != 5 {
		t.Fatalf("batch commit LSN = %d, want 5", c.LSN)
	}
	if st := l.Stats(); st.Appends != 5 || st.Unsynced != 5 || st.Fsyncs != 0 {
		t.Fatalf("after enqueue: %+v, want 5 appends, 5 unsynced, 0 fsyncs", st)
	}
	if err := l.Wait(c); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st := l.Stats(); st.Fsyncs != 1 || st.Unsynced != 0 {
		t.Fatalf("after Wait: %+v, want exactly 1 fsync covering the group", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec.Records))
	}
	for i, r := range rec.Records {
		want := rs[i]
		if r != want {
			t.Fatalf("recovered record %d = %+v, want %+v", i, r, want)
		}
	}

	// The zero commit (no journal) waits for nothing.
	if err := l2.Wait(Commit{}); err != nil {
		t.Fatalf("Wait(zero) = %v", err)
	}
	// An empty batch is a no-op.
	if c, err := l2.AppendBatch(nil); err != nil || c.LSN != 0 {
		t.Fatalf("AppendBatch(nil) = (%+v, %v), want zero commit", c, err)
	}
}
