package wal

import (
	"testing"
	"time"
)

// stepClock is a deterministic clock for timing tests: every call returns
// the previous instant plus one step, so each measured duration is an
// exact function of how many times the code path read the clock.
type stepClock struct {
	now  time.Time
	step time.Duration
}

func (c *stepClock) Now() time.Time {
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

// recTimings records every observation in order.
type recTimings struct {
	appends []time.Duration
	fsyncs  []time.Duration
	logSync []time.Duration
}

func (r *recTimings) ObserveAppend(d time.Duration)     { r.appends = append(r.appends, d) }
func (r *recTimings) ObserveFsync(d time.Duration)      { r.fsyncs = append(r.fsyncs, d) }
func (r *recTimings) ObserveLogToFsync(d time.Duration) { r.logSync = append(r.logSync, d) }

// TestTimingsGroupCommit pins the journal's instrumentation exactly: with
// a 1ms step clock, each append write measures 1ms, the group-commit
// fsync measures 1ms, and each of the batch's records reports a log→fsync
// latency that shrinks by 2ms per position — the group-commit window made
// visible. No tolerances: the fake clock makes the arithmetic exact.
func TestTimingsGroupCommit(t *testing.T) {
	clock := &stepClock{now: time.Unix(0, 0), step: time.Millisecond}
	rec := &recTimings{}
	l, _ := mustOpen(t, t.TempDir(), Options{
		FsyncEvery: 4, Now: clock.Now, Timings: rec,
	})
	defer l.Close()

	appendN(t, l, 4)

	if len(rec.appends) != 4 {
		t.Fatalf("append observations: got %d, want 4", len(rec.appends))
	}
	for i, d := range rec.appends {
		if d != time.Millisecond {
			t.Errorf("append %d duration %v, want 1ms", i, d)
		}
	}
	if len(rec.fsyncs) != 1 || rec.fsyncs[0] != time.Millisecond {
		t.Fatalf("fsync observations: %v, want one 1ms", rec.fsyncs)
	}
	// Appends read the clock at steps 0/1, 2/3, 4/5, 6/7 (t0/t1 pairs);
	// the fsync reads 8/9. Record i became durable at step 9 having landed
	// at step 2i+1: latencies 8, 6, 4, 2 ms.
	want := []time.Duration{8 * time.Millisecond, 6 * time.Millisecond, 4 * time.Millisecond, 2 * time.Millisecond}
	if len(rec.logSync) != len(want) {
		t.Fatalf("log→fsync observations: got %d, want %d", len(rec.logSync), len(want))
	}
	for i, d := range rec.logSync {
		if d != want[i] {
			t.Errorf("log→fsync %d: %v, want %v", i, d, want[i])
		}
	}
}

// TestTimingsExplicitSync: records awaiting group commit get their
// log→fsync latency observed when Sync (or Close) flushes them early.
func TestTimingsExplicitSync(t *testing.T) {
	clock := &stepClock{now: time.Unix(0, 0), step: time.Millisecond}
	rec := &recTimings{}
	l, _ := mustOpen(t, t.TempDir(), Options{
		FsyncEvery: 1000, Now: clock.Now, Timings: rec,
	})
	appendN(t, l, 2)
	if len(rec.fsyncs) != 0 {
		t.Fatalf("no fsync expected before Sync, got %v", rec.fsyncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(rec.fsyncs) != 1 || len(rec.logSync) != 2 {
		t.Fatalf("after Sync: %d fsyncs, %d log→fsync", len(rec.fsyncs), len(rec.logSync))
	}
	// A second Sync with nothing pending observes nothing.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(rec.fsyncs) != 1 {
		t.Fatalf("idle Sync observed an fsync")
	}
	appendN(t, l, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rec.fsyncs) != 2 || len(rec.logSync) != 3 {
		t.Fatalf("after Close: %d fsyncs, %d log→fsync", len(rec.fsyncs), len(rec.logSync))
	}
}

// TestTimingsNilIsUninstrumented: without a Timings sink the log never
// reads the clock — the hot path stays exactly as cheap as before.
func TestTimingsNilIsUninstrumented(t *testing.T) {
	calls := 0
	clock := func() time.Time { calls++; return time.Unix(0, 0) }
	l, _ := mustOpen(t, t.TempDir(), Options{FsyncEvery: 1, Now: clock})
	appendN(t, l, 8)
	l.Close()
	if calls != 0 {
		t.Fatalf("uninstrumented log read the clock %d times", calls)
	}
}
