package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(Record{Op: OpAdvance, Tenant: "a", At: fmt.Sprint(i)}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %d records, snapshot=%v", len(rec.Records), rec.Snapshot)
	}
	want := []Record{
		{Op: OpTenantCreate, Tenant: "a", M: 2, Policy: "PD2"},
		{Op: OpTaskRegister, Tenant: "a", Name: "x", E: 1, P: 2},
		{Op: OpJobSubmit, Tenant: "a", Name: "x", At: "0"},
		{Op: OpDispatch, Tenant: "a", Name: "x", DSeq: 0, Index: 1, Finish: "1"},
	}
	for i, r := range want {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(want))
	}
	for i, r := range rec2.Records {
		w := want[i]
		w.LSN = uint64(i + 1)
		if r != w {
			t.Fatalf("record %d = %+v, want %+v", i, r, w)
		}
	}
	// New appends continue the LSN sequence past the recovered tail.
	if lsn, err := l2.Append(Record{Op: OpDrain, Tenant: "a"}); err != nil || lsn != uint64(len(want)+1) {
		t.Fatalf("post-recovery Append = (%d, %v), want lsn %d", lsn, err, len(want)+1)
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 4, 7, 8, 9} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := mustOpen(t, dir, Options{})
			appendN(t, l, 3)
			l.Close()

			segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
			if len(segs) != 1 {
				t.Fatalf("want 1 segment, got %v", segs)
			}
			data, err := os.ReadFile(segs[0])
			if err != nil {
				t.Fatal(err)
			}
			// Chop the last record's frame mid-way: a torn final write.
			if err := os.WriteFile(segs[0], data[:len(data)-cut], 0o644); err != nil {
				t.Fatal(err)
			}

			l2, rec := mustOpen(t, dir, Options{})
			defer l2.Close()
			if len(rec.Records) != 2 {
				t.Fatalf("recovered %d records after torn tail, want 2", len(rec.Records))
			}
			if rec.TruncatedBytes == 0 {
				t.Fatalf("TruncatedBytes = 0, want > 0")
			}
		})
	}
}

func TestCorruptPayloadStopsSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendN(t, l, 3)
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload (records are equal
	// length here); CRC catches it and recovery keeps only the first.
	n := binary.LittleEndian.Uint32(data[0:])
	frame := 8 + int(n)
	data[frame+8+2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records after corrupt frame, want 1", len(rec.Records))
	}
}

func TestCompactionSupersedesLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendN(t, l, 5)
	payload := []byte(`{"state":"after five"}`)
	if err := l.Compact(payload); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	appendN(t, l, 2) // tail beyond the snapshot
	l.Close()

	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if string(rec.Snapshot) != string(payload) {
		t.Fatalf("snapshot = %q, want %q", rec.Snapshot, payload)
	}
	if rec.SnapshotLSN != 5 {
		t.Fatalf("SnapshotLSN = %d, want 5", rec.SnapshotLSN)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d tail records, want 2", len(rec.Records))
	}
	if rec.Records[0].LSN != 6 || rec.Records[1].LSN != 7 {
		t.Fatalf("tail LSNs = %d,%d want 6,7", rec.Records[0].LSN, rec.Records[1].LSN)
	}
}

func TestStaleSegmentFilteredByLSN(t *testing.T) {
	// A crash between snapshot rename and segment deletion leaves stale
	// segments whose records the snapshot already covers; recovery must
	// skip them by LSN. Simulate by copying the pre-compaction segment
	// back in after Compact deleted it.
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendN(t, l, 4)
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	stale, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact([]byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], stale, 0o644); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 0 {
		t.Fatalf("recovered %d records from stale segment, want 0", len(rec.Records))
	}
	if rec.SnapshotLSN != 4 {
		t.Fatalf("SnapshotLSN = %d, want 4", rec.SnapshotLSN)
	}
}

func TestCorruptSnapshotIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendN(t, l, 1)
	if err := l.Compact([]byte(`{"k":1}`)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// The snapshot is written atomically, so corruption means real damage
	// — unlike a torn log tail it must not be silently ignored.
	path := filepath.Join(dir, "snapshot.json")
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded on corrupt snapshot")
	}
}

// countingFS wraps OSFS to count Sync calls.
type countingFS struct {
	OSFS
	syncs int
}

func (c *countingFS) Create(path string) (File, error) {
	f, err := c.OSFS.Create(path)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

type countingFile struct {
	File
	fs *countingFS
}

func (f *countingFile) Sync() error {
	f.fs.syncs++
	return f.File.Sync()
}

func TestGroupCommitBatchesFsync(t *testing.T) {
	dir := t.TempDir()
	fs := &countingFS{}
	l, _ := mustOpen(t, dir, Options{FS: fs, FsyncEvery: 4})
	base := fs.syncs // segment creation may sync
	appendN(t, l, 8)
	if got := fs.syncs - base; got != 2 {
		t.Fatalf("8 appends at FsyncEvery=4 issued %d fsyncs, want 2", got)
	}
	appendN(t, l, 3)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := fs.syncs - base; got != 3 {
		t.Fatalf("after explicit Sync: %d fsyncs, want 3", got)
	}
	st := l.Stats()
	if st.Appends != 11 || st.Fsyncs != 3 {
		t.Fatalf("Stats = %+v, want 11 appends / 3 fsyncs", st)
	}
	l.Close()
}

// failFS fails every write after the first n.
type failFS struct {
	OSFS
	budget int
}

func (c *failFS) Create(path string) (File, error) {
	f, err := c.OSFS.Create(path)
	if err != nil {
		return nil, err
	}
	return &failFile{File: f, fs: c}, nil
}

type failFile struct {
	File
	fs *failFS
}

func (f *failFile) Write(p []byte) (int, error) {
	if f.fs.budget <= 0 {
		return 0, errors.New("injected write failure")
	}
	f.fs.budget--
	return f.File.Write(p)
}

func TestWriteFailureWedges(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{FS: &failFS{budget: 2}})
	appendN(t, l, 2)
	if _, err := l.Append(Record{Op: OpDrain}); err == nil {
		t.Fatal("Append succeeded past the write budget")
	}
	if !l.Wedged() {
		t.Fatal("log not wedged after write failure")
	}
	// Every later append fails with ErrWedged, even though the fs would
	// now accept writes again — the wedge is sticky by design.
	if _, err := l.Append(Record{Op: OpDrain}); !errors.Is(err, ErrWedged) {
		t.Fatalf("post-wedge Append error = %v, want ErrWedged", err)
	}
	if err := l.Compact([]byte(`{}`)); !errors.Is(err, ErrWedged) {
		t.Fatalf("post-wedge Compact error = %v, want ErrWedged", err)
	}
	st := l.Stats()
	if !st.Wedged || st.AppendErrors != 2 {
		t.Fatalf("Stats = %+v, want wedged with 2 append errors", st)
	}
	l.Close()

	// The two acknowledged records survived.
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want the 2 acknowledged ones", len(rec.Records))
	}
}

func TestOversizeRecordRejectedCleanly(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	defer l.Close()
	if _, err := l.Append(Record{Op: OpJobSubmit, Name: strings.Repeat("x", maxPayload)}); err == nil {
		t.Fatal("oversize record accepted")
	}
	if l.Wedged() {
		t.Fatal("oversize record wedged the log; it should be rejected without side effects")
	}
	if _, err := l.Append(Record{Op: OpDrain}); err != nil {
		t.Fatalf("append after oversize rejection: %v", err)
	}
}

func TestShouldCompact(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SnapshotEvery: 3})
	defer l.Close()
	appendN(t, l, 2)
	if l.ShouldCompact() {
		t.Fatal("ShouldCompact before threshold")
	}
	appendN(t, l, 1)
	if !l.ShouldCompact() {
		t.Fatal("ShouldCompact false at threshold")
	}
	if err := l.Compact([]byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if l.ShouldCompact() {
		t.Fatal("ShouldCompact true right after Compact")
	}
}

// FuzzWALReplay pins the recovery contract: arbitrary bytes on disk never
// panic or fail Open (they are a torn tail to truncate), and whatever
// valid record prefix they contain round-trips — appending a sentinel
// after recovery and reopening yields exactly the recovered prefix plus
// the sentinel.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	// One valid frame followed by junk.
	payload := []byte(`{"lsn":1,"op":"advance","tenant":"a","at":"1"}`)
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	f.Add(frame)
	f.Add(append(append([]byte{}, frame...), 0xde, 0xad))
	// Huge declared length.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 'x'})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		prefix := rec.Records
		lsn, err := l.Append(Record{Op: OpDrain, Tenant: "sentinel"})
		if err != nil {
			t.Fatalf("Append after fuzzed recovery: %v", err)
		}
		l.Close()

		l2, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		if len(rec2.Records) != len(prefix)+1 {
			t.Fatalf("reopen recovered %d records, want %d+1", len(rec2.Records), len(prefix))
		}
		for i, r := range prefix {
			if rec2.Records[i] != r {
				t.Fatalf("record %d changed across reopen: %+v vs %+v", i, rec2.Records[i], r)
			}
		}
		last := rec2.Records[len(prefix)]
		if last.Op != OpDrain || last.Tenant != "sentinel" || last.LSN != lsn {
			t.Fatalf("sentinel did not round-trip: %+v (lsn %d)", last, lsn)
		}
	})
}
