package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"strconv"
	"strings"
)

// Reader is a sequential, tailing view of the log's durable prefix, the
// substrate replication streams are served from. It decodes frames
// straight off the segment files but never emits a record beyond the
// durable LSN, so a follower can only ever observe state the leader could
// itself recover after a crash — an unsynced suffix, a torn frame, or a
// half-written group-commit batch is invisible by construction.
//
// A Reader is owned by one goroutine; the log itself may be appended to
// and compacted concurrently. When compaction folds the cursor's position
// into a snapshot, Next returns ErrCompacted and the consumer must
// re-bootstrap from the snapshot.
type Reader struct {
	l        *Log
	next     uint64 // LSN of the next record to emit
	f        File
	segFirst uint64 // first LSN of the open segment (from its name)
	buf      []byte // undecoded carry-over bytes from the open segment
	off      int    // consumed prefix of buf
	scratch  []byte
}

// NewReader returns a reader positioned at LSN from (0 is treated as 1,
// the first LSN a log ever assigns).
func (l *Log) NewReader(from uint64) *Reader {
	if from == 0 {
		from = 1
	}
	return &Reader{l: l, next: from, scratch: make([]byte, 32<<10)}
}

// horizon snapshots the durability and compaction bounds.
func (l *Log) horizon() (durable, snap uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableLSN, l.snapLSN
}

// Next returns up to max records starting at the cursor, advancing it.
// An empty, nil-error result means nothing new is durable yet — poll
// again. ErrCompacted means the cursor's records were folded into a
// snapshot; other errors are environmental (reads through a failed
// filesystem) and the reader stays usable for a retry.
func (r *Reader) Next(max int) ([]Record, error) {
	if max <= 0 {
		max = 1
	}
	durable, snap := r.l.horizon()
	if r.next <= snap {
		return nil, ErrCompacted
	}
	var out []Record
	for len(out) < max && r.next <= durable {
		rec, ok, err := r.decodeOne()
		if err != nil {
			return out, err
		}
		if !ok {
			n, err := r.fill()
			if err != nil {
				return out, err
			}
			if n == 0 {
				hopped, err := r.hop()
				if err != nil {
					return out, err
				}
				if !hopped {
					// The durable bytes are not visible from here yet
					// (e.g. a concurrent compaction just rolled the
					// segment); the next call re-resolves.
					return out, nil
				}
			}
			continue
		}
		if rec.LSN < r.next {
			continue // pre-cursor record in a shared segment
		}
		if rec.LSN != r.next {
			return out, fmt.Errorf("wal: reader expected LSN %d, segment holds %d", r.next, rec.LSN)
		}
		out = append(out, rec)
		r.next++
	}
	return out, nil
}

// RawFrame is one durable record in wire form: the exact JSON payload
// bytes appended to the log plus the frame header's CRC32-IEEE over those
// bytes. Payload is a copy the caller owns — the reader's carry buffer is
// reused across fills. Because the appender stamps LSN and Term before
// encoding, Payload is json.Marshal of the final Record, so consumers can
// ship it verbatim (and re-verify CRC) without ever re-encoding.
type RawFrame struct {
	LSN     uint64
	CRC     uint32
	Payload []byte
}

// NextRaw is Next without the decode: it returns up to max frames in wire
// form, advancing the cursor, with the same horizon, ErrCompacted, and
// LSN-continuity semantics. The replication log server uses it to ship
// the bytes already on disk instead of re-marshaling every record for
// every follower.
func (r *Reader) NextRaw(max int) ([]RawFrame, error) {
	if max <= 0 {
		max = 1
	}
	durable, snap := r.l.horizon()
	if r.next <= snap {
		return nil, ErrCompacted
	}
	var out []RawFrame
	for len(out) < max && r.next <= durable {
		payload, crc, size, ok, err := r.rawOne()
		if err != nil {
			return out, err
		}
		if !ok {
			n, err := r.fill()
			if err != nil {
				return out, err
			}
			if n == 0 {
				hopped, err := r.hop()
				if err != nil {
					return out, err
				}
				if !hopped {
					return out, nil
				}
			}
			continue
		}
		lsn, err := payloadLSN(payload)
		if err != nil {
			return out, err
		}
		r.off += size
		if lsn < r.next {
			continue // pre-cursor record in a shared segment
		}
		if lsn != r.next {
			return out, fmt.Errorf("wal: reader expected LSN %d, segment holds %d", r.next, lsn)
		}
		out = append(out, RawFrame{LSN: lsn, CRC: crc, Payload: append([]byte(nil), payload...)})
		r.next++
	}
	return out, nil
}

// payloadLSN extracts the record's LSN without a full decode. Frames are
// marshaled from Record, whose first field is `lsn`, so the payload always
// starts `{"lsn":<digits>`; anything else falls back to a full unmarshal.
func payloadLSN(payload []byte) (uint64, error) {
	const pfx = `{"lsn":`
	if len(payload) > len(pfx) && string(payload[:len(pfx)]) == pfx {
		v := uint64(0)
		i := len(pfx)
		start := i
		for i < len(payload) && payload[i] >= '0' && payload[i] <= '9' {
			v = v*10 + uint64(payload[i]-'0')
			i++
		}
		if i > start && i < len(payload) && (payload[i] == ',' || payload[i] == '}') {
			return v, nil
		}
	}
	var rec struct {
		LSN uint64 `json:"lsn"`
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return 0, fmt.Errorf("wal: reader hit an undecodable frame: %v", err)
	}
	return rec.LSN, nil
}

// decodeOne tries to decode one frame from the carry buffer. ok=false
// means the buffer holds no complete, checksummed frame yet. A CRC
// mismatch is treated the same way: a frame below the durable horizon is
// never torn, but the buffered bytes may straddle an in-flight write of a
// later frame, which the next fill completes.
func (r *Reader) decodeOne() (Record, bool, error) {
	payload, _, size, ok, err := r.rawOne()
	if !ok || err != nil {
		return Record{}, false, err
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, false, fmt.Errorf("wal: reader hit an undecodable frame: %v", err)
	}
	r.off += size
	return rec, true, nil
}

// rawOne locates the next complete, checksummed frame in the carry buffer
// without consuming it: the caller advances r.off by size on acceptance.
// The returned payload aliases r.buf and is only valid until the next
// fill.
func (r *Reader) rawOne() (payload []byte, crc uint32, size int, ok bool, err error) {
	b := r.buf[r.off:]
	if len(b) < frameHeader {
		return nil, 0, 0, false, nil
	}
	n := binary.LittleEndian.Uint32(b)
	crc = binary.LittleEndian.Uint32(b[4:])
	if n == 0 || n > maxPayload {
		return nil, 0, 0, false, fmt.Errorf("wal: reader hit a corrupt frame header (len %d)", n)
	}
	if len(b)-frameHeader < int(n) {
		return nil, 0, 0, false, nil
	}
	payload = b[frameHeader : frameHeader+int(n)]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, 0, false, nil
	}
	return payload, crc, frameHeader + int(n), true, nil
}

// fill reads more bytes from the open segment into the carry buffer,
// opening the right segment for the cursor first if none is open.
// Returns the number of bytes gained.
func (r *Reader) fill() (int, error) {
	if r.f == nil {
		if err := r.openSegmentFor(r.next); err != nil {
			return 0, err
		}
		if r.f == nil {
			return 0, nil
		}
	}
	if r.off > 0 {
		r.buf = r.buf[:copy(r.buf, r.buf[r.off:])]
		r.off = 0
	}
	n, err := r.f.Read(r.scratch)
	if n > 0 {
		r.buf = append(r.buf, r.scratch[:n]...)
	}
	if err != nil && err != io.EOF {
		return n, err
	}
	return n, nil
}

// hop switches to a newer segment that covers the cursor, if one exists
// (compaction rolls the active segment; the exhausted old one never grows
// again). Reports whether it moved.
func (r *Reader) hop() (bool, error) {
	first, name, err := r.bestSegment(r.next)
	if err != nil {
		return false, err
	}
	if name == "" || (r.f != nil && first == r.segFirst) {
		return false, nil
	}
	if err := r.openSegment(first, name); err != nil {
		return false, err
	}
	return true, nil
}

// bestSegment picks the segment whose first LSN is the largest one ≤ lsn
// — the segment that contains lsn if any does.
func (r *Reader) bestSegment(lsn uint64) (first uint64, name string, err error) {
	names, err := r.l.fs.ReadDir(r.l.dir)
	if err != nil {
		return 0, "", err
	}
	for _, n := range names {
		if !strings.HasPrefix(n, segPrefix) || !strings.HasSuffix(n, segSuffix) {
			continue
		}
		f, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, segPrefix), segSuffix), 16, 64)
		if perr != nil {
			continue
		}
		if f <= lsn && (name == "" || f > first) {
			first, name = f, n
		}
	}
	return first, name, nil
}

func (r *Reader) openSegmentFor(lsn uint64) error {
	first, name, err := r.bestSegment(lsn)
	if err != nil {
		return err
	}
	if name == "" {
		return nil // nothing on disk yet for this cursor
	}
	return r.openSegment(first, name)
}

func (r *Reader) openSegment(first uint64, name string) error {
	f, err := r.l.fs.Open(filepath.Join(r.l.dir, name))
	if err != nil {
		return err
	}
	if r.f != nil {
		r.f.Close()
	}
	r.f = f
	r.segFirst = first
	r.buf = r.buf[:0]
	r.off = 0
	return nil
}

// Close releases the open segment handle. The reader must not be used
// afterwards.
func (r *Reader) Close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}
