package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"strconv"
	"strings"
)

// Reader is a sequential, tailing view of the log's durable prefix, the
// substrate replication streams are served from. It decodes frames
// straight off the segment files but never emits a record beyond the
// durable LSN, so a follower can only ever observe state the leader could
// itself recover after a crash — an unsynced suffix, a torn frame, or a
// half-written group-commit batch is invisible by construction.
//
// A Reader is owned by one goroutine; the log itself may be appended to
// and compacted concurrently. When compaction folds the cursor's position
// into a snapshot, Next returns ErrCompacted and the consumer must
// re-bootstrap from the snapshot.
type Reader struct {
	l        *Log
	next     uint64 // LSN of the next record to emit
	f        File
	segFirst uint64 // first LSN of the open segment (from its name)
	buf      []byte // undecoded carry-over bytes from the open segment
	off      int    // consumed prefix of buf
	scratch  []byte
}

// NewReader returns a reader positioned at LSN from (0 is treated as 1,
// the first LSN a log ever assigns).
func (l *Log) NewReader(from uint64) *Reader {
	if from == 0 {
		from = 1
	}
	return &Reader{l: l, next: from, scratch: make([]byte, 32<<10)}
}

// horizon snapshots the durability and compaction bounds.
func (l *Log) horizon() (durable, snap uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableLSN, l.snapLSN
}

// Next returns up to max records starting at the cursor, advancing it.
// An empty, nil-error result means nothing new is durable yet — poll
// again. ErrCompacted means the cursor's records were folded into a
// snapshot; other errors are environmental (reads through a failed
// filesystem) and the reader stays usable for a retry.
func (r *Reader) Next(max int) ([]Record, error) {
	if max <= 0 {
		max = 1
	}
	durable, snap := r.l.horizon()
	if r.next <= snap {
		return nil, ErrCompacted
	}
	var out []Record
	for len(out) < max && r.next <= durable {
		rec, ok, err := r.decodeOne()
		if err != nil {
			return out, err
		}
		if !ok {
			n, err := r.fill()
			if err != nil {
				return out, err
			}
			if n == 0 {
				hopped, err := r.hop()
				if err != nil {
					return out, err
				}
				if !hopped {
					// The durable bytes are not visible from here yet
					// (e.g. a concurrent compaction just rolled the
					// segment); the next call re-resolves.
					return out, nil
				}
			}
			continue
		}
		if rec.LSN < r.next {
			continue // pre-cursor record in a shared segment
		}
		if rec.LSN != r.next {
			return out, fmt.Errorf("wal: reader expected LSN %d, segment holds %d", r.next, rec.LSN)
		}
		out = append(out, rec)
		r.next++
	}
	return out, nil
}

// decodeOne tries to decode one frame from the carry buffer. ok=false
// means the buffer holds no complete, checksummed frame yet. A CRC
// mismatch is treated the same way: a frame below the durable horizon is
// never torn, but the buffered bytes may straddle an in-flight write of a
// later frame, which the next fill completes.
func (r *Reader) decodeOne() (Record, bool, error) {
	b := r.buf[r.off:]
	if len(b) < frameHeader {
		return Record{}, false, nil
	}
	n := binary.LittleEndian.Uint32(b)
	crc := binary.LittleEndian.Uint32(b[4:])
	if n == 0 || n > maxPayload {
		return Record{}, false, fmt.Errorf("wal: reader hit a corrupt frame header (len %d)", n)
	}
	if len(b)-frameHeader < int(n) {
		return Record{}, false, nil
	}
	payload := b[frameHeader : frameHeader+int(n)]
	if crc32.ChecksumIEEE(payload) != crc {
		return Record{}, false, nil
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, false, fmt.Errorf("wal: reader hit an undecodable frame: %v", err)
	}
	r.off += frameHeader + int(n)
	return rec, true, nil
}

// fill reads more bytes from the open segment into the carry buffer,
// opening the right segment for the cursor first if none is open.
// Returns the number of bytes gained.
func (r *Reader) fill() (int, error) {
	if r.f == nil {
		if err := r.openSegmentFor(r.next); err != nil {
			return 0, err
		}
		if r.f == nil {
			return 0, nil
		}
	}
	if r.off > 0 {
		r.buf = r.buf[:copy(r.buf, r.buf[r.off:])]
		r.off = 0
	}
	n, err := r.f.Read(r.scratch)
	if n > 0 {
		r.buf = append(r.buf, r.scratch[:n]...)
	}
	if err != nil && err != io.EOF {
		return n, err
	}
	return n, nil
}

// hop switches to a newer segment that covers the cursor, if one exists
// (compaction rolls the active segment; the exhausted old one never grows
// again). Reports whether it moved.
func (r *Reader) hop() (bool, error) {
	first, name, err := r.bestSegment(r.next)
	if err != nil {
		return false, err
	}
	if name == "" || (r.f != nil && first == r.segFirst) {
		return false, nil
	}
	if err := r.openSegment(first, name); err != nil {
		return false, err
	}
	return true, nil
}

// bestSegment picks the segment whose first LSN is the largest one ≤ lsn
// — the segment that contains lsn if any does.
func (r *Reader) bestSegment(lsn uint64) (first uint64, name string, err error) {
	names, err := r.l.fs.ReadDir(r.l.dir)
	if err != nil {
		return 0, "", err
	}
	for _, n := range names {
		if !strings.HasPrefix(n, segPrefix) || !strings.HasSuffix(n, segSuffix) {
			continue
		}
		f, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, segPrefix), segSuffix), 16, 64)
		if perr != nil {
			continue
		}
		if f <= lsn && (name == "" || f > first) {
			first, name = f, n
		}
	}
	return first, name, nil
}

func (r *Reader) openSegmentFor(lsn uint64) error {
	first, name, err := r.bestSegment(lsn)
	if err != nil {
		return err
	}
	if name == "" {
		return nil // nothing on disk yet for this cursor
	}
	return r.openSegment(first, name)
}

func (r *Reader) openSegment(first uint64, name string) error {
	f, err := r.l.fs.Open(filepath.Join(r.l.dir, name))
	if err != nil {
		return err
	}
	if r.f != nil {
		r.f.Close()
	}
	r.f = f
	r.segFirst = first
	r.buf = r.buf[:0]
	r.off = 0
	return nil
}

// Close releases the open segment handle. The reader must not be used
// afterwards.
func (r *Reader) Close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}
