package wal_test

import (
	"fmt"
	"testing"

	"desyncpfair/internal/faultfs"
	"desyncpfair/internal/wal"
)

// TestCrashMidBatchReaderObservesOnlyRecoverablePrefix is the seeded
// leader-kill proof at the log layer: a tailing reader (the substrate a
// follower replicates from) runs against a log whose filesystem dies
// mid-group-commit. Whatever the reader observed before the kill must be
// a prefix of what crash recovery rebuilds from the same directory —
// i.e. a follower can never hold state the leader itself lost.
func TestCrashMidBatchReaderObservesOnlyRecoverablePrefix(t *testing.T) {
	for _, crashAt := range []int64{900, 1500, 3000} {
		t.Run(fmt.Sprintf("crashAt%d", crashAt), func(t *testing.T) {
			const fsyncEvery = 4
			dir := t.TempDir()
			ffs := faultfs.New(faultfs.Options{Seed: crashAt, CrashAtByte: crashAt})
			l, _, err := wal.Open(dir, wal.Options{FS: ffs, FsyncEvery: fsyncEvery})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}

			r := l.NewReader(1)
			var observed []wal.Record
			var acked uint64
			for i := 0; ; i++ {
				lsn, err := l.Append(wal.Record{Op: wal.OpAdvance, Tenant: "a", At: fmt.Sprint(i)})
				if err != nil {
					break // the filesystem died mid-batch
				}
				acked = lsn
				if recs, err := r.Next(16); err == nil {
					observed = append(observed, recs...)
				}
			}
			if recs, err := r.Next(64); err == nil { // drain the last durable bytes
				observed = append(observed, recs...)
			}
			r.Close()
			l.Close() // wedged; error irrelevant
			if !ffs.Crashed() {
				t.Fatalf("append loop ended without the injected crash (acked %d)", acked)
			}

			l2, rec, err := wal.Open(dir, wal.Options{})
			if err != nil {
				t.Fatalf("recovery Open: %v", err)
			}
			defer l2.Close()
			recovered := rec.Records
			for i, rr := range recovered {
				if rr.LSN != uint64(i+1) {
					t.Fatalf("recovered log not contiguous: record %d has LSN %d", i, rr.LSN)
				}
			}
			if len(observed) > len(recovered) {
				t.Fatalf("reader observed %d records, recovery rebuilt only %d", len(observed), len(recovered))
			}
			for i, o := range observed {
				if o.LSN != uint64(i+1) || o.At != recovered[i].At {
					t.Fatalf("observed record %d = %+v diverges from recovered %+v", i, o, recovered[i])
				}
			}
			// Group commit may ack up to one unsynced batch before the
			// kill; anything beyond that bound would be real data loss.
			if acked > uint64(len(recovered))+fsyncEvery {
				t.Fatalf("acked through LSN %d but recovered only %d records (> one batch lost)", acked, len(recovered))
			}
		})
	}
}
