package wal

import (
	"io"
	"os"
)

// FS is the narrow filesystem surface the log writes through. The real
// implementation is OSFS; internal/faultfs wraps it to inject short
// writes, fsync failures, and crash-at-byte-N for the recovery suite.
type FS interface {
	// Create truncates or creates path for appending.
	Create(path string) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	// ReadDir lists the names (not paths) of dir's entries.
	ReadDir(dir string) ([]string, error)
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory itself so renames and creates are
	// durable, not just the file contents.
	SyncDir(dir string) error
}

// File is the per-file surface: sequential reads or appends plus fsync.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (OSFS) Open(path string) (File, error) { return os.Open(path) }

func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
